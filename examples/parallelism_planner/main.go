// Parallelism planner: run the paper's word-LM case study (Table 5), then
// replay it on hypothetical accelerators with more memory and bigger caches —
// the hardware directions the paper's conclusion argues for.
package main

import (
	"fmt"
	"log"
	"os"

	cat "catamount"
	"catamount/internal/parallel"
)

func main() {
	log.SetFlags(0)

	fmt.Println("=== Baseline: paper's Table 4 accelerator (32 GB HBM, 6 MB L2) ===")
	base, err := cat.DefaultEngine().WordLMCaseStudy()
	if err != nil {
		log.Fatal(err)
	}
	cat.PrintTable5(os.Stdout, base)

	// What-if 1: 4x the on-chip cache (paper: "build larger on-chip caches
	// to avoid excessive memory data streaming for large matrix multiplies").
	bigCache := parallel.DefaultCaseStudyConfig()
	bigCache.Acc.CacheBytes *= 4
	csCache, err := parallel.RunWordLMCaseStudy(bigCache)
	if err != nil {
		log.Fatal(err)
	}

	// What-if 2: 4x the memory capacity (paper: "significantly increase
	// accelerator memory capacity" to simplify large-scale RNN parallelism).
	bigMem := parallel.DefaultCaseStudyConfig()
	bigMem.Acc.MemCapacity *= 4
	csMem, err := parallel.RunWordLMCaseStudy(bigMem)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n=== What-if: 24 MB on-chip cache ===")
	compare(base, csCache, 1) // row 1 = cache-hierarchy-aware baseline
	fmt.Println("\n=== What-if: 128 GB memory capacity ===")
	fits := 0
	for _, st := range csMem.Stages {
		if st.Fits {
			fits++
		}
	}
	fmt.Printf("stages that now fit per-accelerator memory: %d of %d\n",
		fits, len(csMem.Stages))
	for _, st := range csMem.Stages {
		fmt.Printf("  %-34s mem/accel %.0f GB  fits=%v\n",
			st.Name, maxOf(st.MemPerAccelGB), st.Fits)
	}

	fmt.Println("\nConclusion check: bigger caches recover cache-hierarchy losses;")
	fmt.Println("bigger memories remove the model-parallel requirement — exactly the")
	fmt.Println("two directions §6.2.3 recommends against compute-centric designs.")

	// Finally, replay the full plan across the named accelerator catalog:
	// the same frontier model on every hardware generation the catalog
	// models, using the Engine's per-device memoization.
	fmt.Println("\n=== Catalog sweep: final-stage days/epoch per accelerator ===")
	eng := cat.DefaultEngine()
	for _, acc := range cat.Accelerators() {
		cs, err := eng.WordLMCaseStudyOn(acc)
		if err != nil {
			log.Fatal(err)
		}
		last := cs.Stages[len(cs.Stages)-1]
		fmt.Printf("  %-18s %6.1f days/epoch  %5.1f%% util  mem/accel %.0f GB  fits=%v\n",
			acc.Name, last.DaysPerEpoch, 100*last.Utilization,
			maxOf(last.MemPerAccelGB), last.Fits)
	}
}

func compare(a, b *cat.CaseStudy, row int) {
	sa, sb := a.Stages[row], b.Stages[row]
	fmt.Printf("%s:\n", sa.Name)
	fmt.Printf("  utilization %.1f%% -> %.1f%%\n", 100*sa.Utilization, 100*sb.Utilization)
	fmt.Printf("  days/epoch  %.0f -> %.0f\n", sa.DaysPerEpoch, sb.DaysPerEpoch)
}

func maxOf(v []float64) float64 {
	var m float64
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}
