// Parallelism planner: ask the capacity planner which cluster reaches the
// frontier word LM on each catalog accelerator, then replay the search on
// the hypothetical parts the paper's conclusion argues for (bigger
// memories). The search logic lives in internal/plan; this example only
// frames the what-ifs.
package main

import (
	"fmt"
	"log"

	cat "catamount"
)

func main() {
	log.SetFlags(0)

	eng := cat.DefaultEngine()

	// Baseline: the frontier word LM searched across the whole catalog.
	res, err := eng.Plan(cat.PlanSpec{Domain: "wordlm"})
	if err != nil {
		log.Fatal(err)
	}
	t := res.Target
	fmt.Printf("Frontier word LM: %.3g params, %.3g %ss (%s %.3g)\n",
		t.Params, t.DataSamples, t.SampleUnit, t.Metric, t.TargetErr)
	fmt.Printf("Catalog search: %d candidates, %d Pareto-optimal, objectives %v\n\n",
		res.Candidates, len(res.Frontier), res.Objectives)

	// Per-accelerator verdict: the fastest feasible plan, or why none fits.
	fmt.Println("=== Fastest feasible plan per catalog accelerator ===")
	for _, acc := range cat.Accelerators() {
		per, err := eng.Plan(cat.PlanSpec{Domain: "wordlm", Accelerators: []string{acc.Name}})
		if err != nil {
			log.Fatal(err)
		}
		if len(per.Frontier) == 0 {
			// Every candidate is annotated; report the memory wall.
			reason := "infeasible"
			for _, p := range per.Plans {
				if len(p.Infeasible) > 0 {
					reason = p.Infeasible[len(p.Infeasible)-1]
					break
				}
			}
			fmt.Printf("  %-18s no feasible plan (%s)\n", acc.Name, reason)
			continue
		}
		best := per.Frontier[0]
		fmt.Printf("  %-18s %6d workers (%s, b=%.0f)  %8.1f days  $%.2fM  mem/dev %.0f GB\n",
			acc.Name, best.Workers, best.Strategy, best.Subbatch,
			best.TrainHours/24, best.CostUSD/1e6, best.MemPerDeviceGB)
	}

	// What-if: the paper's §6.2.3 hardware direction — significantly more
	// accelerator memory. Same V100-class part with 8x the capacity
	// (enough for the frontier model's sharded activations).
	bigMem := cat.TargetAccelerator()
	bigMem.Name = "v100-8x-memory"
	bigMem.MemCapacity *= 8
	whatIf, err := eng.Plan(cat.PlanSpec{Domain: "wordlm", Custom: []cat.Accelerator{bigMem}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== What-if: %s (%.0f GB) ===\n", bigMem.Name, bigMem.MemCapacity/1e9)
	feasible := 0
	for _, p := range whatIf.Plans {
		if p.Feasible {
			feasible++
		}
	}
	fmt.Printf("feasible plans: %d of %d (the 32 GB part had none)\n",
		feasible, whatIf.Candidates)
	if len(whatIf.Frontier) > 0 {
		best := whatIf.Frontier[0]
		fmt.Printf("fastest: %d workers (%s, b=%.0f) -> %.1f days at %.1f%% utilization\n",
			best.Workers, best.Strategy, best.Subbatch, best.TrainHours/24, 100*best.Utilization)
	}

	fmt.Println("\nConclusion check: on today's 32-80 GB parts no data-parallel plan")
	fmt.Println("fits the frontier word LM — only huge-memory CPU nodes carry it;")
	fmt.Println("8x the device memory makes GPU plans feasible — exactly the")
	fmt.Println("memory-capacity direction §6.2.3 recommends.")
}
