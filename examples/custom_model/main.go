// Custom model: build your own training graph with the ops.Builder API,
// attach the backward pass, characterize it symbolically, and validate the
// analytical FLOP counts by actually executing the step on the CPU
// reference executor (the repository's TFprof substitute).
package main

import (
	"fmt"
	"log"

	"catamount/internal/core"
	"catamount/internal/exec"
	"catamount/internal/graph"
	"catamount/internal/ops"
	"catamount/internal/symbolic"
	"catamount/internal/tensor"
)

func main() {
	log.SetFlags(0)

	// A small convolutional classifier: conv -> BN -> ReLU -> pool -> FC.
	b := ops.NewBuilder("custom-cnn")
	bs := symbolic.S("b") // symbolic batch: one graph, any batch size

	b.Group("stem")
	x := b.Input("image", tensor.F32, bs, 16, 16, 3)
	w1 := b.Param("conv1_w", 3, 3, 3, 8)
	y := b.ReLU(b.BatchNormLayer("bn1", b.Conv2D(x, w1, 1, 1)))
	y = b.Pool(y, 2, 2, 2, 2, true)

	b.Group("head")
	flat := b.Reshape(y, bs, 8*8*8)
	wFC := b.Param("fc_w", 8*8*8, 10)
	bFC := b.Param("fc_b", 10)
	logits := b.BiasAdd(b.MatMul(flat, wFC), bFC)
	labels := b.Input("labels", tensor.I32, bs)
	loss := b.SoftmaxXentLoss(logits, labels)

	// Backward pass + SGD momentum updates make it a full training step.
	if err := ops.Backprop(b, loss, ops.SGDMomentum{LR: 0.05, Mu: 0.9}); err != nil {
		log.Fatal(err)
	}
	if err := b.G.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Built %s: %d nodes, %d params tensors\n",
		b.G.Name, len(b.G.Nodes()), len(b.G.Params()))
	fmt.Println("Symbolic step FLOPs:", b.G.TotalFLOPs())

	// Analytical characterization at batch 4, through the compiled bundle:
	// every cost expression is lowered to a slot-indexed program once, and
	// each new evaluation point is just "write slots, run programs".
	env := symbolic.Env{"b": 4}
	c := b.G.Compile()
	slots := c.NewSlots()
	if err := c.Bind(slots, env); err != nil {
		log.Fatal(err)
	}
	stats := c.EvalStats(slots)
	fp, err := c.Footprint(slots, graph.PolicyMemGreedy, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAnalytical @ b=4: params=%.0f  FLOPs=%.0f  bytes=%.0f  "+
		"intensity=%.2f  footprint=%.1f KB\n",
		stats.Params, stats.FLOPs, stats.Bytes, stats.Intensity, fp.PeakBytes/1e3)

	// Execute the training step numerically and compare executed FLOPs.
	rt, err := exec.NewRuntime(b.G, env, 7)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := rt.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Executed  @ b=4: FLOPs=%.0f (match: %v)\n",
		prof.TotalFLOPs, prof.TotalFLOPs == stats.FLOPs)

	lossVal, _ := rt.Value(loss.Name)
	fmt.Printf("Training-step loss: %.4f (random init, 10 classes: ~ln(10)=2.30)\n",
		lossVal.F[0])

	// The same compiled graph re-characterized at a larger batch — no
	// rebuild, no recompilation, just a new slot value.
	if err := c.Bind(slots, symbolic.Env{"b": 64}); err != nil {
		log.Fatal(err)
	}
	stats64 := c.EvalStats(slots)
	fmt.Printf("\nAnalytical @ b=64: FLOPs=%.0f (%.1fx the b=4 step)\n",
		stats64.FLOPs, stats64.FLOPs/stats.FLOPs)
	_ = core.LogSpace // the core package offers sweeps for custom models too
}
