// Quickstart: characterize the paper's word language model at current-SOTA
// scale, print its requirement report and symbolic cost formulas, then
// project it to the accuracy frontier.
package main

import (
	"fmt"
	"log"
	"os"

	cat "catamount"
)

func main() {
	log.SetFlags(0)

	// 1. Start an analysis session and get the word LM training graph
	//    (embedding -> 2 LSTM layers unrolled 80 steps -> softmax output,
	//    with explicit backward ops). The Engine builds and compiles each
	//    domain's model once and reuses it for every query below.
	eng := cat.NewEngine()
	m, err := eng.Model(cat.WordLM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Model:", m.Name)
	fmt.Println("Graph nodes:", len(m.Graph.Nodes()))
	fmt.Println("Symbolic parameter count: p =", m.ParamExpr())
	fmt.Println()

	// 2. Characterize one training step at the current-SOTA parameter count
	//    (~1B params, the paper's Jozefowicz-scale LM) and subbatch 128.
	r, err := eng.Analyze(cat.WordLM, 1.03e9, 128)
	if err != nil {
		log.Fatal(err)
	}
	cat.PrintRequirements(os.Stdout, r)
	fmt.Println()

	// 3. Project to the accuracy frontier: Table 1 scaling plus Table 3
	//    step/epoch times on the Table 4 accelerator.
	projs, err := cat.AccuracyProjections()
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range projs {
		if p.Spec.Domain != cat.WordLM {
			continue
		}
		fmt.Printf("To reach %.3g %s (from %.3g), the paper projects %.0fx more data "+
			"and a %.0fx larger model:\n",
			p.Spec.DesiredSOTA, p.Spec.Metric, p.Spec.CurrentSOTA,
			p.PaperDataScale, p.PaperModelScale)
		fr, err := eng.FrontierTable(cat.TargetAccelerator())
		if err != nil {
			log.Fatal(err)
		}
		for _, f := range fr {
			if f.Spec.Domain == cat.WordLM {
				fmt.Printf("  %.3g params, %.0f TFLOPs/step, %.0f GB footprint, "+
					"%.0f s/step, %.3g days/epoch on one accelerator\n",
					f.TargetParams, f.TFLOPsPerStep, f.FootprintGB,
					f.StepSeconds, f.EpochDays)
			}
		}
	}
}
