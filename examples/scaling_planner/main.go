// Scaling planner: given a domain's power-law learning curve, sweep desired
// accuracy targets and report the data, model size, and single-accelerator
// training time each target implies — the paper's §3+§5 pipeline as a
// planning tool.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	cat "catamount"
	"catamount/internal/graph"
	"catamount/internal/hw"
	"catamount/internal/models"
	"catamount/internal/scaling"
)

func main() {
	log.SetFlags(0)

	spec, err := cat.SpecFor(cat.WordLM)
	if err != nil {
		log.Fatal(err)
	}
	// One compiled Analyzer serves the whole accuracy sweep: the model is
	// built and its cost expressions compiled exactly once.
	a, err := cat.DefaultEngine().Analyzer(cat.WordLM)
	if err != nil {
		log.Fatal(err)
	}
	m := a.Model
	acc := hw.TargetAccelerator()
	curve := scaling.NormalizedModelCurve(spec.BetaP, spec.CurrentDataSamples, spec.CurrentParams)

	fmt.Printf("Planning for %s (current SOTA %.3g %s at %.3g %ss)\n\n",
		spec.Name, spec.CurrentSOTA, spec.Metric, spec.CurrentDataSamples, spec.SampleUnit)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Target (nats/word)\tData needed\tData scale\tParams\tStep (s)\tEpoch (days)")
	for _, target := range []float64{3.2, 3.0, 2.8, 2.6, 2.48} {
		data, err := spec.Curve.DataForError(target)
		if err != nil {
			log.Fatal(err)
		}
		params := curve.Params(data)
		size, err := a.SizeForParams(params)
		if err != nil {
			log.Fatal(err)
		}
		r, err := a.Characterize(size, m.DefaultBatch, graph.PolicyMemGreedy)
		if err != nil {
			log.Fatal(err)
		}
		step := acc.StepTime(r.FLOPsPerStep, r.BytesPerStep)
		steps := data / (m.DefaultBatch * spec.TokensPerSample)
		fmt.Fprintf(tw, "%.3g\t%.3g %ss\t%.1fx\t%.3g\t%.2f\t%.3g\n",
			target, data, spec.SampleUnit, data/spec.CurrentDataSamples,
			params, step, steps*step/86400)
	}
	tw.Flush()

	fmt.Println("\nReading: each step down the accuracy curve multiplies data and")
	fmt.Println("compute; the final row is the paper's frontier target (Table 3).")
	_ = models.AllDomains
}
