// Scaling planner: walk a domain's accuracy curve toward desired SOTA and,
// at each target, ask the capacity planner the inverse question — what
// data, model size, and cluster does this accuracy cost? All planning
// logic lives in internal/plan (Engine.Plan); this example only chooses
// targets and formats the answers.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	cat "catamount"
)

func main() {
	log.SetFlags(0)

	spec, err := cat.SpecFor(cat.WordLM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Planning for %s (current SOTA %.3g %s at %.3g %ss)\n\n",
		spec.Name, spec.CurrentSOTA, spec.Metric, spec.CurrentDataSamples, spec.SampleUnit)

	// One Engine memoizes every search: each target's model characterization
	// is computed once, and repeated runs are map lookups.
	eng := cat.DefaultEngine()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Target (nats/word)\tData needed\tData scale\tParams\tBest plan\tTrain (days)\tCost")
	for _, target := range []float64{3.2, 3.0, 2.8, 2.6, 2.48} {
		res, err := eng.Plan(cat.PlanSpec{Domain: "wordlm", TargetErr: target})
		if err != nil {
			log.Fatal(err)
		}
		t := res.Target
		if len(res.Frontier) == 0 {
			fmt.Fprintf(tw, "%.3g\t%.3g %ss\t%.1fx\t%.3g\tno feasible plan\t\t\n",
				t.TargetErr, t.DataSamples, t.SampleUnit, t.DataScale, t.Params)
			continue
		}
		best := res.Frontier[0] // fastest Pareto-optimal plan
		fmt.Fprintf(tw, "%.3g\t%.3g %ss\t%.1fx\t%.3g\t%d x %s (%s, b=%.0f)\t%.3g\t$%.3gk\n",
			t.TargetErr, t.DataSamples, t.SampleUnit, t.DataScale, t.Params,
			best.Workers, best.Accelerator, best.Strategy, best.Subbatch,
			best.TrainHours/24, best.CostUSD/1e3)
	}
	tw.Flush()

	fmt.Println("\nReading: each step down the accuracy curve multiplies data, model")
	fmt.Println("size, and compute; the final row is the paper's frontier target, and")
	fmt.Println("the \"best plan\" column is the fastest Pareto-optimal cluster for it.")
}
