// Command frontier regenerates the paper's projection tables:
//
//	frontier -table 1    accuracy-scaling projections (Table 1)
//	frontier -table 2    asymptotic requirement models (Table 2)
//	frontier -table 3    frontier training requirements (Table 3)
//	frontier -table 4    target accelerator configuration (Table 4)
//	frontier -table all  everything
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	cat "catamount"
	"catamount/internal/obs"
)

func main() {
	table := flag.String("table", "all", "table to print: 1, 2, 3, 4 or all")
	accel := flag.String("accel", "",
		"Roofline accelerator for Tables 3 and 4: catalog name (v100, a100, h100, tpuv3, cpu), @file.json, or empty for the paper's target")
	costmodel := flag.String("costmodel", "",
		"step-time cost model for Table 3: graph (default, §5.2 graph-level roofline) or perop (per-op roofline, §4.1/§5.1)")
	listAccels := flag.Bool("list-accels", false, "list the accelerator catalog with aliases and exit")
	logLevel := flag.String("log-level", "info", "log level (debug, info, warn, error)")
	logFormat := flag.String("log-format", "text", "log format (text, json)")
	flag.Parse()
	if _, _, err := obs.SetupCLI(os.Stderr, "frontier", *logLevel, *logFormat); err != nil {
		fmt.Fprintln(os.Stderr, "frontier:", err)
		os.Exit(1)
	}
	if *listAccels {
		cat.PrintAcceleratorCatalog(os.Stdout)
		return
	}

	acc, err := cat.ResolveAccelerator(*accel)
	if err != nil {
		fatal(err)
	}
	cm, err := cat.ParseCostModel(*costmodel)
	if err != nil {
		fatal(err)
	}
	want := func(t string) bool { return *table == "all" || *table == t }

	// Tables 2 and 3 share one Engine session: each domain model is built
	// and compiled once, then reused across both fits and projections.
	eng := cat.DefaultEngine()

	if want("1") {
		projs, err := cat.AccuracyProjections()
		if err != nil {
			fatal(err)
		}
		fmt.Println("Table 1: learning-curve and model-size scaling projections")
		cat.PrintTable1(os.Stdout, projs)
		fmt.Println()
	}
	if want("2") {
		asyms, err := eng.AsymptoticTable()
		if err != nil {
			fatal(err)
		}
		fmt.Println("Table 2: asymptotic application-level compute requirements")
		cat.PrintTable2(os.Stdout, asyms)
		fmt.Println()
	}
	if want("3") {
		rows, err := eng.FrontierTableWith(acc, cm)
		if err != nil {
			fatal(err)
		}
		header := "Table 3: training requirements projected to target accuracy"
		if *costmodel != "" {
			header += fmt.Sprintf(" (costmodel %s)", cm.Name())
		}
		fmt.Println(header)
		cat.PrintTable3For(os.Stdout, rows, acc)
		fmt.Println()
	}
	if want("4") {
		fmt.Println("Table 4: target accelerator configuration")
		cat.PrintTable4(os.Stdout, acc)
	}
}

func fatal(err error) {
	slog.Error(err.Error())
	os.Exit(1)
}
