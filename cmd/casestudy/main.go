// Command casestudy reproduces the paper's §6 word-LM parallelization plan
// (Table 5): algorithmic optimization, cache-hierarchy-aware baseline,
// ring-allreduce data parallelism, layer-wise model parallelism, and
// embedding sharding.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	cat "catamount"
	"catamount/internal/obs"
)

func main() {
	accel := flag.String("accel", "",
		"Roofline accelerator: catalog name (v100, a100, h100, tpuv3, cpu), @file.json, or empty for the paper's target")
	costmodel := flag.String("costmodel", "",
		"step-time cost model: graph (default, §5.2 graph-level roofline) or perop (per-op roofline, §4.1/§5.1)")
	listAccels := flag.Bool("list-accels", false, "list the accelerator catalog with aliases and exit")
	logLevel := flag.String("log-level", "info", "log level (debug, info, warn, error)")
	logFormat := flag.String("log-format", "text", "log format (text, json)")
	flag.Parse()
	if _, _, err := obs.SetupCLI(os.Stderr, "casestudy", *logLevel, *logFormat); err != nil {
		fmt.Fprintln(os.Stderr, "casestudy:", err)
		os.Exit(1)
	}
	if *listAccels {
		cat.PrintAcceleratorCatalog(os.Stdout)
		return
	}

	acc, err := cat.ResolveAccelerator(*accel)
	if err != nil {
		fatal(err)
	}
	cm, err := cat.ParseCostModel(*costmodel)
	if err != nil {
		fatal(err)
	}
	cs, err := cat.DefaultEngine().WordLMCaseStudyOnWith(acc, cm)
	if err != nil {
		fatal(err)
	}
	if *accel != "" {
		fmt.Printf("Replayed on %s (%.1f TFLOP/s, %.0f GB/s, %.0f GB)\n\n",
			acc.Name, acc.PeakFLOPS/1e12, acc.MemBandwidth/1e9, acc.MemCapacity/1e9)
	}
	if *costmodel != "" {
		fmt.Printf("Step times under the %s cost model\n\n", cs.CostModel)
	}
	fmt.Println("Table 5: step-by-step process of training the word LM to target accuracy")
	cat.PrintTable5For(os.Stdout, cs, acc)
	fmt.Println()
	fmt.Println("Notes:")
	fmt.Println("  - the LSTM projection + production vocabulary model is sized so its")
	fmt.Println("    per-step footprint matches the paper's 113.8 GB starting point;")
	fmt.Println("  - the cache-hierarchy-aware row models tiled-GEMM input re-streaming;")
	fmt.Println("  - layer parallelism places {embedding, LSTM0, LSTM1, output} on a")
	fmt.Println("    4-stage pipeline; sharding water-fills the embedding across stages.")
}

func fatal(err error) {
	slog.Error(err.Error())
	os.Exit(1)
}
