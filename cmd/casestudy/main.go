// Command casestudy reproduces the paper's §6 word-LM parallelization plan
// (Table 5): algorithmic optimization, cache-hierarchy-aware baseline,
// ring-allreduce data parallelism, layer-wise model parallelism, and
// embedding sharding.
package main

import (
	"fmt"
	"log"
	"os"

	cat "catamount"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("casestudy: ")
	cs, err := cat.DefaultEngine().WordLMCaseStudy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table 5: step-by-step process of training the word LM to target accuracy")
	cat.PrintTable5(os.Stdout, cs)
	fmt.Println()
	fmt.Println("Notes:")
	fmt.Println("  - the LSTM projection + production vocabulary model is sized so its")
	fmt.Println("    per-step footprint matches the paper's 113.8 GB starting point;")
	fmt.Println("  - the cache-hierarchy-aware row models tiled-GEMM input re-streaming;")
	fmt.Println("  - layer parallelism places {embedding, LSTM0, LSTM1, output} on a")
	fmt.Println("    4-stage pipeline; sharding water-fills the embedding across stages.")
}
