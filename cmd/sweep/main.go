// Command sweep is the bulk grid evaluator CLI: one invocation regenerates
// an entire domain × parameter count × subbatch × accelerator grid through
// one compiled Engine session, streaming results as they complete.
//
//	sweep -params 1e8,1e9 -subbatch 32,128 -accel all          NDJSON grid to stdout
//	sweep -param-min 1e7 -param-max 1e9 -param-steps 8 -format csv
//	sweep -table3 -accel v100,a100,h100,tpuv3,cpu              Table 3 on each accelerator
//	sweep -figure 11 -accel all                                Figure 11 CSV per accelerator
//	sweep -figure 12 -accel all                                Figure 12 CSV per accelerator
//	sweep -bench BENCH.json                                    run the reference bench harness
//	sweep -bench-batch BENCH.json                              batched-vs-scalar bench harness
//
// The -accel list accepts catalog names and aliases, @file.json custom
// devices, and "all" for the whole catalog. Grid rows stream in a
// deterministic order (domain-major, then params, then subbatch, then
// accelerator) regardless of evaluation parallelism.
//
// -cpuprofile and -memprofile write pprof profiles of any mode (grid,
// tables, figures, bench harnesses) for chasing hot-loop regressions:
//
//	sweep -bench - -cpuprofile cpu.pprof -memprofile mem.pprof >/dev/null
//	go tool pprof -top cpu.pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"text/tabwriter"

	cat "catamount"
	"catamount/internal/api"
	"catamount/internal/obs"
	"catamount/internal/sweep"
)

func main() {
	domains := flag.String("domains", "", "comma-separated domains (wordlm,charlm,nmt,speech,image); empty or \"all\" = all five")
	params := flag.String("params", "", "comma-separated parameter-count targets, e.g. 1e8,1e9")
	paramMin := flag.Float64("param-min", 0, "log-spaced range: smallest parameter target")
	paramMax := flag.Float64("param-max", 0, "log-spaced range: largest parameter target")
	paramSteps := flag.Int("param-steps", 0, "log-spaced range: number of targets")
	subbatch := flag.String("subbatch", "", "comma-separated subbatch sizes; empty = each domain's profiling subbatch")
	accel := flag.String("accel", "",
		"comma-separated accelerators: catalog names/aliases, @file.json custom devices, \"all\" for the catalog; empty = the paper's target")
	costmodel := flag.String("costmodel", "",
		"step-time cost model: graph (default, §5.2 graph-level roofline) or perop (per-op roofline, §4.1/§5.1)")
	format := flag.String("format", "ndjson", "grid output: ndjson, csv or table")
	workers := flag.Int("workers", 0, "evaluation workers (0 = GOMAXPROCS)")
	table3 := flag.Bool("table3", false, "print Table 3 on each -accel instead of a grid sweep")
	figure := flag.String("figure", "", "print figure \"11\" or \"12\" CSV on each -accel instead of a grid sweep")
	bench := flag.String("bench", "", "run the reference bench harness and write its BENCH json to this path (\"-\" = stdout)")
	benchCostModel := flag.String("bench-costmodel", "",
		"run the graph-vs-perop cost-model bench harness and write its BENCH json to this path (\"-\" = stdout)")
	benchBatch := flag.String("bench-batch", "",
		"run the batched-vs-scalar bench harness and write its BENCH json to this path (\"-\" = stdout)")
	listAccels := flag.Bool("list-accels", false, "list the accelerator catalog with aliases and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	logLevel := flag.String("log-level", "info", "log level (debug, info, warn, error)")
	logFormat := flag.String("log-format", "text", "log format (text, json)")
	traceOut := flag.String("trace-out", "",
		"write a Chrome trace-event (Perfetto) JSON trace of this run to this file")
	flag.Parse()
	runCtx, _, err := obs.SetupCLI(os.Stderr, "sweep", *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	if *listAccels {
		cat.PrintAcceleratorCatalog(os.Stdout)
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatalf("-cpuprofile: %v", err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatalf("-memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC() // settle live heap so the profile reflects retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatalf("-memprofile: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(runCtx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	ctx, finishTrace := obs.StartCLITrace(ctx, "sweep", *traceOut)
	defer func() {
		if err := finishTrace(); err != nil {
			fmt.Fprintln(os.Stderr, "sweep: -trace-out:", err)
		}
	}()

	eng := cat.DefaultEngine()

	if *bench != "" {
		runBench(ctx, *bench)
		return
	}
	if *benchCostModel != "" {
		runCostModelBench(ctx, *benchCostModel)
		return
	}
	if *benchBatch != "" {
		runBatchBench(ctx, *benchBatch)
		return
	}

	accs, err := resolveAccelerators(*accel)
	if err != nil {
		fatal(err)
	}
	cm, err := cat.ParseCostModel(*costmodel)
	if err != nil {
		fatal(err)
	}

	switch {
	case *table3:
		if err := eng.WriteFrontierGridWith(os.Stdout, accs, cm); err != nil {
			fatal(err)
		}
		return
	case *figure == "11":
		if err := eng.WriteFigure11GridWith(os.Stdout, accs, cm); err != nil {
			fatal(err)
		}
		return
	case *figure == "12":
		if err := eng.WriteFigure12GridWith(os.Stdout, accs, cm); err != nil {
			fatal(err)
		}
		return
	case *figure != "":
		fatalf("unknown -figure %q (11 or 12)", *figure)
	}

	// The CLI builds the same versioned wire spec the server decodes —
	// internal/api owns the schema; cat.SweepSpec is an alias of it.
	spec := api.SweepSpec{
		ParamMin:   *paramMin,
		ParamMax:   *paramMax,
		ParamSteps: *paramSteps,
		CostModel:  *costmodel,
		Workers:    *workers,
	}
	if *domains != "" && *domains != "all" {
		spec.Domains = splitList(*domains)
	}
	if spec.Params, err = parseFloats(*params); err != nil {
		fatalf("-params: %v", err)
	}
	if spec.Subbatches, err = parseFloats(*subbatch); err != nil {
		fatalf("-subbatch: %v", err)
	}
	// The CLI resolves accelerators itself (for @file.json support) and
	// hands the spec resolved devices.
	spec.Custom = accs

	// Validate before the emitter writes anything: a bad spec must not
	// leave a bare CSV header in piped output.
	runner, err := sweep.New(eng, spec)
	if err != nil {
		fatal(err)
	}
	emit, finish := emitter(*format)
	if err := runner.Run(ctx, emit); err != nil {
		fatal(err)
	}
	finish()
}

// emitter returns the per-point writer for a grid output format plus a
// final flush.
func emitter(format string) (func(cat.SweepPoint) error, func()) {
	switch format {
	case "ndjson":
		enc := sweep.NewLineEncoder(os.Stdout)
		return func(p cat.SweepPoint) error {
			return enc.NDJSON(p)
		}, func() {}
	case "csv":
		enc := sweep.NewLineEncoder(os.Stdout)
		if err := enc.CSVHeader(); err != nil {
			fatal(err)
		}
		return func(p cat.SweepPoint) error {
			return enc.CSVRecord(p)
		}, func() {}
	case "table":
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "Domain\tAccelerator\tParams\tSubbatch\tTFLOPs/step\tTB/step\tIntensity\tFootprint GB\tStep (s)\tUtil\tFits")
		return func(p cat.SweepPoint) error {
				if p.Error != "" {
					fmt.Fprintf(tw, "%s\t%s\t%.3g\t%.0f\terror: %s\n",
						p.Domain, p.Accelerator, p.ParamTarget, p.Subbatch, p.Error)
					return nil
				}
				fmt.Fprintf(tw, "%s\t%s\t%.3g\t%.0f\t%.1f\t%.2f\t%.1f\t%.1f\t%.3g\t%.1f%%\t%v\n",
					p.Domain, p.Accelerator, p.Params, p.Subbatch,
					p.FLOPsPerStep/1e12, p.BytesPerStep/1e12, p.Intensity,
					p.FootprintBytes/1e9, p.StepSeconds, 100*p.Utilization, p.FitsMemory)
				return nil
			}, func() {
				tw.Flush()
			}
	default:
		fatalf("unknown -format %q (ndjson, csv, table)", format)
		return nil, nil
	}
}

// runBench runs the fixed reference grid through the bench harness and
// writes the BENCH json snapshot the CI bench job publishes and gates on.
func runBench(ctx context.Context, path string) {
	rep, err := sweep.RunBench(ctx, sweep.ReferenceSpec())
	if err != nil {
		fatal(err)
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := sweep.WriteReport(out, rep); err != nil {
		fatal(err)
	}
	slog.Info("bench complete",
		slog.Int("points", rep.GridPoints),
		slog.Float64("cold_s", rep.ColdSeconds),
		slog.Float64("cold_pts_per_s", rep.ColdPointsPerSec),
		slog.Float64("warm_s", rep.WarmSeconds),
		slog.Float64("warm_pts_per_s", rep.WarmPointsPerSec),
		slog.Float64("cold_over_warm", rep.ColdOverWarm),
		slog.Float64("allocs_per_point", rep.AllocsPerPoint))
}

// runCostModelBench runs the reference grid under both step-time backends
// and writes the BENCH json snapshot the CI bench job publishes and gates
// on.
func runCostModelBench(ctx context.Context, path string) {
	rep, err := sweep.RunCostModelBench(ctx)
	if err != nil {
		fatal(err)
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := sweep.WriteCostModelReport(out, rep); err != nil {
		fatal(err)
	}
	slog.Info("costmodel bench complete",
		slog.Int("points", rep.GridPoints),
		slog.Float64("graph_proj_per_s", rep.GraphProjectionsPerSec),
		slog.Float64("graph_allocs", rep.GraphAllocsPerProjection),
		slog.Float64("perop_proj_per_s", rep.PerOpProjectionsPerSec),
		slog.Float64("perop_allocs", rep.PerOpAllocsPerProjection),
		slog.Float64("perop_over_graph", rep.PerOpOverGraph))
}

// runBatchBench runs the reference grid batched and as a scalar per-point
// replay and writes the BENCH json snapshot the CI bench job publishes and
// gates on.
func runBatchBench(ctx context.Context, path string) {
	rep, err := sweep.RunBatchBench(ctx)
	if err != nil {
		fatal(err)
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := sweep.WriteBatchBenchReport(out, rep); err != nil {
		fatal(err)
	}
	slog.Info("batch bench complete",
		slog.Int("points", rep.GridPoints),
		slog.Float64("batched_pts_per_s", rep.BatchedPointsPerSec),
		slog.Float64("batched_bytes_per_point", rep.BatchedBytesPerPoint),
		slog.Float64("scalar_pts_per_s", rep.ScalarPointsPerSec),
		slog.Float64("batched_over_scalar", rep.BatchedOverScalar),
		slog.Float64("perop_over_graph", rep.PerOpOverGraph),
		slog.Float64("bytes_reduction", rep.BytesReduction))
}

// resolveAccelerators parses the -accel list: names, aliases, @file.json,
// "all" for the whole catalog, empty for the paper's target.
func resolveAccelerators(list string) ([]cat.Accelerator, error) {
	if list == "" {
		return []cat.Accelerator{cat.TargetAccelerator()}, nil
	}
	if list == "all" {
		return cat.Accelerators(), nil
	}
	var out []cat.Accelerator
	for _, ref := range splitList(list) {
		acc, err := cat.ResolveAccelerator(ref)
		if err != nil {
			return nil, err
		}
		out = append(out, acc)
	}
	return out, nil
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseFloats(list string) ([]float64, error) {
	var out []float64
	for _, p := range splitList(list) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid number %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	slog.Error(err.Error())
	os.Exit(1)
}

func fatalf(format string, args ...any) {
	slog.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}
