// Command plan is the inverse-query capacity planner CLI: name a desired
// accuracy (or take the paper's Table 1 desired SOTA), optionally a time
// or dollar budget, and get back the Pareto-optimal cluster plans —
// accelerator, worker count, per-worker subbatch, and parallelism
// strategy — that reach it, with infeasible configurations annotated
// (OOM, below minimum subbatch, over budget) rather than dropped.
//
//	plan -domain wordlm                             Pareto frontier for desired SOTA
//	plan -domain image -target-err 0.08             custom accuracy target
//	plan -domain nmt -budget-hours 720 -accel a100,h100
//	plan -domain wordlm -format ndjson -all         every candidate, one JSON per line
//	plan -list-accels                               the accelerator catalog with aliases
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"text/tabwriter"

	cat "catamount"
	"catamount/internal/api"
	"catamount/internal/obs"
	"catamount/internal/plan"
	"catamount/internal/sweep"
)

func main() {
	domain := flag.String("domain", "wordlm", "domain: wordlm, charlm, nmt, speech, image")
	targetErr := flag.Float64("target-err", 0,
		"desired accuracy in the domain's error metric (0 = the paper's Table 1 desired SOTA)")
	budgetHours := flag.Float64("budget-hours", 0, "time-to-train budget in hours (0 = unbounded)")
	budgetUSD := flag.Float64("budget-usd", 0, "dollar budget (0 = unbounded)")
	epochs := flag.Float64("epochs", 0, "passes over the target dataset (0 = 1)")
	accel := flag.String("accel", "",
		"comma-separated accelerators to search: catalog names/aliases, @file.json custom devices; empty = the whole catalog")
	// Named -worker-counts, not -workers: on cmd/sweep -workers sizes the
	// evaluation pool, while this flag is a search axis (cluster sizes).
	workersList := flag.String("worker-counts", "",
		"comma-separated data-parallel cluster sizes to search; empty = powers of two 1..16384")
	pool := flag.Int("pool", 0, "candidate-evaluation workers (0 = GOMAXPROCS)")
	subbatch := flag.String("subbatch", "", "comma-separated per-worker subbatch sizes; empty = powers of two 8..512")
	strategies := flag.String("strategies", "", "comma-separated strategies (allreduce, overlap, sharded); empty = all")
	costmodel := flag.String("costmodel", "",
		"step-time cost model: graph (default, §5.2 graph-level roofline) or perop (per-op roofline, §4.1/§5.1)")
	format := flag.String("format", "table", "output: table or ndjson")
	all := flag.Bool("all", false, "emit every candidate (annotated), not just the Pareto frontier")
	listAccels := flag.Bool("list-accels", false, "list the accelerator catalog with aliases and exit")
	bench := flag.String("bench", "", "run the reference bench harness and write its BENCH json to this path (\"-\" = stdout)")
	logLevel := flag.String("log-level", "info", "log level (debug, info, warn, error)")
	logFormat := flag.String("log-format", "text", "log format (text, json)")
	traceOut := flag.String("trace-out", "",
		"write a Chrome trace-event (Perfetto) JSON trace of this run to this file")
	flag.Parse()

	runCtx, _, err := obs.SetupCLI(os.Stderr, "plan", *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "plan:", err)
		os.Exit(1)
	}
	if *listAccels {
		cat.PrintAcceleratorCatalog(os.Stdout)
		return
	}

	// The run ID rides the signal context into plan_evaluate stage spans.
	ctx, stop := signal.NotifyContext(runCtx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	ctx, finishTrace := obs.StartCLITrace(ctx, "plan", *traceOut)
	defer func() {
		if err := finishTrace(); err != nil {
			fmt.Fprintln(os.Stderr, "plan: -trace-out:", err)
		}
	}()

	if *bench != "" {
		runBench(ctx, *bench)
		return
	}

	// The CLI builds the same versioned wire spec the server decodes —
	// internal/api owns the schema; cat.PlanSpec is an alias of it.
	spec := api.PlanSpec{
		Domain:      *domain,
		TargetErr:   *targetErr,
		Epochs:      *epochs,
		BudgetHours: *budgetHours,
		BudgetUSD:   *budgetUSD,
		Strategies:  splitList(*strategies),
		CostModel:   *costmodel,
		Workers:     *pool,
	}
	if spec.Subbatches, err = parseFloats(*subbatch); err != nil {
		fatalf("-subbatch: %v", err)
	}
	if spec.WorkerCounts, err = parseInts(*workersList); err != nil {
		fatalf("-worker-counts: %v", err)
	}
	// The CLI resolves accelerators itself (for @file.json support) and
	// hands the spec resolved devices, like cmd/sweep.
	if *accel != "" {
		for _, ref := range splitList(*accel) {
			acc, err := cat.ResolveAccelerator(ref)
			if err != nil {
				fatal(err)
			}
			spec.Custom = append(spec.Custom, acc)
		}
	}

	res, err := cat.DefaultEngine().PlanSearch(ctx, spec)
	if err != nil {
		fatal(err)
	}

	switch *format {
	case "ndjson":
		plans := res.Frontier
		if *all {
			plans = res.Plans
		}
		for _, p := range plans {
			if err := sweep.WriteJSONLine(os.Stdout, p); err != nil {
				fatal(err)
			}
		}
	case "table":
		printTable(res, *all)
	default:
		fatalf("unknown -format %q (table, ndjson)", *format)
	}
}

// runBench runs the fixed reference search through the bench harness and
// writes the BENCH json snapshot the CI bench job publishes and gates on.
func runBench(ctx context.Context, path string) {
	rep, err := plan.RunBench(ctx, plan.ReferenceSearch())
	if err != nil {
		fatal(err)
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := plan.WriteReport(out, rep); err != nil {
		fatal(err)
	}
	slog.Info("plan bench complete",
		slog.Int("candidates", rep.Candidates),
		slog.Float64("cold_s", rep.ColdSeconds),
		slog.Float64("cold_plans_per_s", rep.ColdPlansPerSec),
		slog.Float64("warm_s", rep.WarmSeconds),
		slog.Float64("warm_plans_per_s", rep.WarmPlansPerSec),
		slog.Float64("cold_over_warm", rep.ColdOverWarm))
}

func printTable(res *cat.PlanResult, all bool) {
	t := res.Target
	fmt.Printf("Target: %s at %.3g %s\n", t.Name, t.TargetErr, t.Metric)
	fmt.Printf("  needs %.3g %ss (%.0fx current data) and %.3g parameters (%.1fx current model)\n",
		t.DataSamples, t.SampleUnit, t.DataScale, t.Params, t.ModelScale)
	fmt.Printf("  searched %d candidate plans; objectives: %s; costmodel: %s\n\n",
		res.Candidates, strings.Join(res.Objectives, ", "), res.CostModel)

	if len(res.Frontier) == 0 {
		fmt.Println("No feasible plan in the searched space.")
	} else {
		fmt.Println("Pareto-optimal plans (fastest first):")
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "Accelerator\tStrategy\tWorkers\tSubbatch\tStep (s)\tTrain\tCost\tEnergy\tUtil\tMem/dev")
		for _, p := range res.Frontier {
			fmt.Fprintf(tw, "%s\t%s\t%d\t%.0f\t%.3g\t%s\t%s\t%.3g MWh\t%.1f%%\t%.0f GB\n",
				p.Accelerator, p.Strategy, p.Workers, p.Subbatch, p.StepSeconds,
				fmtHours(p.TrainHours), fmtCost(p.CostUSD), p.EnergyKWh/1000,
				100*p.Utilization, p.MemPerDeviceGB)
		}
		tw.Flush()
	}

	if all {
		fmt.Println("\nAll candidates:")
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "Accelerator\tStrategy\tWorkers\tSubbatch\tTrain\tCost\tStatus")
		for _, p := range res.Plans {
			status := "feasible"
			switch {
			case p.OnFrontier:
				status = "pareto-optimal"
			case !p.Feasible:
				status = strings.Join(p.Infeasible, "; ")
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%.0f\t%s\t%s\t%s\n",
				p.Accelerator, p.Strategy, p.Workers, p.Subbatch,
				fmtHours(p.TrainHours), fmtCost(p.CostUSD), status)
		}
		tw.Flush()
	}
}

func fmtHours(h float64) string {
	if h == 0 {
		return "-"
	}
	if h < 48 {
		return fmt.Sprintf("%.1f h", h)
	}
	return fmt.Sprintf("%.1f d", h/24)
}

func fmtCost(usd float64) string {
	if usd == 0 {
		return "-"
	}
	if usd >= 1e6 {
		return fmt.Sprintf("$%.2fM", usd/1e6)
	}
	return fmt.Sprintf("$%.0f", usd)
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func parseFloats(list string) ([]float64, error) {
	var out []float64
	for _, p := range splitList(list) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid number %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(list string) ([]int, error) {
	var out []int
	for _, p := range splitList(list) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("invalid integer %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	slog.Error(err.Error())
	os.Exit(1)
}

func fatalf(format string, args ...any) {
	slog.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}
