// Command catamount characterizes one of the paper's five deep learning
// training workloads at a chosen model size and subbatch: algorithmic FLOPs,
// bytes accessed, operational intensity, and minimal memory footprint, plus
// the Roofline step time on the target accelerator.
//
// Usage:
//
//	catamount -domain wordlm -params 1.03e9 -batch 128
//	catamount -domain image -params 61e6 -batch 32 -formulas
//	catamount -domain nmt -params 2e8 -accel a100
//	catamount -domain nmt -params 2e8 -accel @my-device.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	cat "catamount"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("catamount: ")
	domain := flag.String("domain", "wordlm",
		"domain: wordlm, charlm, nmt, speech, image")
	params := flag.Float64("params", 1.03e9, "target trainable parameter count")
	batch := flag.Float64("batch", 0, "subbatch size (0 = domain default)")
	formulas := flag.Bool("formulas", false,
		"also print the symbolic parameter and FLOP formulas")
	profile := flag.Bool("profile", false,
		"print the per-op-kind and per-group cost breakdown")
	save := flag.String("save", "", "write the compute graph checkpoint to this file")
	accel := flag.String("accel", "",
		"Roofline accelerator: catalog name (v100, a100, h100, tpuv3, cpu), @file.json, or empty for the paper's target")
	listAccels := flag.Bool("list-accels", false, "list the accelerator catalog with aliases and exit")
	flag.Parse()
	if *listAccels {
		cat.PrintAcceleratorCatalog(os.Stdout)
		return
	}

	acc, err := cat.ResolveAccelerator(*accel)
	if err != nil {
		log.Fatal(err)
	}

	// One Engine session serves every query below; the model is built and
	// compiled exactly once.
	eng := cat.DefaultEngine()
	m, err := eng.Model(cat.Domain(*domain))
	if err != nil {
		log.Fatal(err)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		if err := cat.SaveCheckpoint(f, m); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("checkpoint written to", *save)
	}
	if *batch == 0 {
		*batch = m.DefaultBatch
	}
	r, err := eng.Analyze(cat.Domain(*domain), *params, *batch)
	if err != nil {
		log.Fatal(err)
	}
	cat.PrintRequirements(os.Stdout, r)

	step := acc.StepTime(r.FLOPsPerStep, r.BytesPerStep)
	fmt.Printf("Roofline step time on %s\t%.4g s (%.1f%% utilization, %s-bound)\n",
		acc.Name, step, 100*acc.Utilization(r.FLOPsPerStep, step), bound(acc, r))

	if *formulas {
		fmt.Println("\nSymbolic parameter count:")
		fmt.Println("  p =", m.ParamExpr())
		fmt.Println("\nSymbolic per-step algorithmic FLOPs:")
		fmt.Println("  c_t =", m.FLOPsExpr())
	}
	if *profile {
		p, err := eng.Profile(cat.Domain(*domain), *params, *batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nPer-op profile (top 12 kinds by FLOPs):")
		p.Print(os.Stdout, 12)
	}
}

func bound(acc cat.Accelerator, r cat.Requirements) string {
	if acc.ComputeBound(r.FLOPsPerStep, r.BytesPerStep) {
		return "compute"
	}
	return "bandwidth"
}
