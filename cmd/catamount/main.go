// Command catamount characterizes one of the paper's five deep learning
// training workloads at a chosen model size and subbatch: algorithmic FLOPs,
// bytes accessed, operational intensity, and minimal memory footprint, plus
// the Roofline step time on the target accelerator under a selectable
// cost-model backend.
//
// Usage:
//
//	catamount -domain wordlm -params 1.03e9 -batch 128
//	catamount -domain image -params 61e6 -batch 32 -formulas
//	catamount -domain nmt -params 2e8 -accel a100
//	catamount -domain nmt -params 2e8 -accel @my-device.json
//	catamount -domain wordlm -params 1e9 -costmodel perop
//	catamount -domain wordlm -params 1e9 -profile -format csv
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	cat "catamount"
	"catamount/internal/obs"
	"catamount/internal/sweep"
)

func main() {
	domain := flag.String("domain", "wordlm",
		"domain: wordlm, charlm, nmt, speech, image")
	params := flag.Float64("params", 1.03e9, "target trainable parameter count")
	batch := flag.Float64("batch", 0, "subbatch size (0 = domain default)")
	formulas := flag.Bool("formulas", false,
		"also print the symbolic parameter and FLOP formulas")
	profile := flag.Bool("profile", false,
		"print the per-op-kind and per-group cost breakdown")
	format := flag.String("format", "table",
		"-profile output: table (full breakdown), json (one JSON line per op kind), csv (per-op-kind rows)")
	save := flag.String("save", "", "write the compute graph checkpoint to this file")
	accel := flag.String("accel", "",
		"Roofline accelerator: catalog name (v100, a100, h100, tpuv3, cpu), @file.json, or empty for the paper's target")
	costmodel := flag.String("costmodel", "",
		"step-time cost model: graph (default, §5.2 graph-level roofline) or perop (per-op roofline, §4.1/§5.1)")
	listAccels := flag.Bool("list-accels", false, "list the accelerator catalog with aliases and exit")
	logLevel := flag.String("log-level", "info", "log level (debug, info, warn, error)")
	logFormat := flag.String("log-format", "text", "log format (text, json)")
	traceOut := flag.String("trace-out", "",
		"write a Chrome trace-event (Perfetto) JSON trace of this run to this file")
	flag.Parse()
	runCtx, _, err := obs.SetupCLI(os.Stderr, "catamount", *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "catamount:", err)
		os.Exit(1)
	}
	runCtx, finishTrace := obs.StartCLITrace(runCtx, "catamount", *traceOut)
	defer func() {
		if err := finishTrace(); err != nil {
			fmt.Fprintln(os.Stderr, "catamount: -trace-out:", err)
		}
	}()
	if *listAccels {
		cat.PrintAcceleratorCatalog(os.Stdout)
		return
	}

	acc, err := cat.ResolveAccelerator(*accel)
	if err != nil {
		fatal(err)
	}
	cm, err := cat.ParseCostModel(*costmodel)
	if err != nil {
		fatal(err)
	}
	if *format != "table" && *format != "json" && *format != "csv" {
		fatalf("unknown -format %q (table, json, csv)", *format)
	}
	if *format != "table" && !*profile {
		fatalf("-format %s applies to the -profile breakdown; add -profile", *format)
	}

	// One Engine session serves every query below; the model is built and
	// compiled exactly once.
	eng := cat.DefaultEngine()
	m, err := eng.Model(cat.Domain(*domain))
	if err != nil {
		fatal(err)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := cat.SaveCheckpoint(f, m); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("checkpoint written to", *save)
	}
	if *batch == 0 {
		*batch = m.DefaultBatch
	}

	// Machine-readable profile formats own stdout entirely (piped output
	// stays parseable) and depend on no accelerator or step-time backend,
	// so they skip the Roofline estimate altogether.
	if *profile && *format != "table" {
		p, err := eng.Profile(cat.Domain(*domain), *params, *batch)
		if err != nil {
			fatal(err)
		}
		switch *format {
		case "json":
			for _, kp := range p.ByKind {
				if err := sweep.WriteJSONLine(os.Stdout, kp); err != nil {
					fatal(err)
				}
			}
		case "csv":
			if err := p.WriteKindCSV(os.Stdout); err != nil {
				fatal(err)
			}
		}
		return
	}

	r, est, err := eng.AnalyzeOn(runCtx, cat.Domain(*domain), *params, *batch, acc, cm)
	if err != nil {
		fatal(err)
	}
	cat.PrintRequirements(os.Stdout, r)

	bound := "bandwidth"
	if est.ComputeBound {
		bound = "compute"
	}
	label := ""
	if *costmodel != "" {
		label = fmt.Sprintf(" [%s]", est.CostModel)
	}
	fmt.Printf("Roofline step time on %s%s\t%.4g s (%.1f%% utilization, %s-bound)\n",
		acc.Name, label, est.StepSeconds, 100*est.Utilization, bound)

	if *formulas {
		fmt.Println("\nSymbolic parameter count:")
		fmt.Println("  p =", m.ParamExpr())
		fmt.Println("\nSymbolic per-step algorithmic FLOPs:")
		fmt.Println("  c_t =", m.FLOPsExpr())
	}
	if *profile {
		p, err := eng.Profile(cat.Domain(*domain), *params, *batch)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nPer-op profile (top 12 kinds by FLOPs):")
		p.Print(os.Stdout, 12)
	}
}

func fatal(err error) {
	slog.Error(err.Error())
	os.Exit(1)
}

func fatalf(format string, args ...any) {
	slog.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}
