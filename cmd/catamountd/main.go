// Command catamountd serves the catamount analysis engine over HTTP/JSON:
// per-domain characterization, frontier projections, figure sweeps,
// subbatch selection, the word-LM case study, the accelerator catalog,
// checkpoint upload-and-analyze, and streaming bulk grid sweeps — with
// single-flight request coalescing, a bounded LRU response cache, a
// concurrency limiter, request deadlines, and graceful shutdown.
//
// Usage:
//
//	catamountd -addr :8080
//	curl 'localhost:8080/v1/analyze?domain=wordlm&params=1.03e9&batch=128'
//	curl 'localhost:8080/v1/frontier?accel=a100'
//	curl -d '{"params":[1e8,1e9],"accelerators":["v100","a100"]}' localhost:8080/v1/sweep
//	curl 'localhost:8080/metrics'
//
// Observability:
//
//	catamountd -log-format json -log-level debug   # structured request + span logs
//	catamountd -pprof-addr localhost:6060          # net/http/pprof on a second listener
//	curl 'localhost:8080/metrics'                  # Prometheus text exposition
//	curl 'localhost:8080/metrics.json'             # legacy JSON counters
//
// See the README's "Serving: catamountd" and "Observability" sections for
// the full API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	cat "catamount"
	"catamount/internal/jobs"
	"catamount/internal/obs"
	"catamount/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheEntries := flag.Int("cache", 1024, "LRU response cache entries")
	maxInFlight := flag.Int("max-inflight", 0, "concurrent request limit (0 = 4x GOMAXPROCS)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	maxSweep := flag.Int("max-sweep-points", 0, "largest grid POST /v1/sweep may stream (0 = 100000)")
	grace := flag.Duration("grace", 10*time.Second, "graceful shutdown drain window")
	warm := flag.Bool("warm", false, "build and compile every domain model before listening")
	cacheSnapshot := flag.String("cache-snapshot", "", "persist the response cache to this file (loaded at boot, saved on shutdown)")
	snapshotEvery := flag.Duration("snapshot-every", 0, "also save the cache snapshot at this interval (0 = only on shutdown)")
	jobsDir := flag.String("jobs-dir", "", "persist async jobs under this directory (empty = in-memory; jobs then do not survive restarts)")
	jobWorkers := flag.Int("job-workers", 2, "concurrent async job executions")
	logLevel := flag.String("log-level", "info", "log level (debug, info, warn, error)")
	logFormat := flag.String("log-format", "text", "log format (text, json)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (off when empty)")
	flag.Parse()

	if err := run(*addr, *cacheEntries, *maxInFlight, *timeout, *maxSweep,
		*grace, *warm, *cacheSnapshot, *snapshotEvery,
		*logLevel, *logFormat, *pprofAddr, *jobsDir, *jobWorkers); err != nil {
		fmt.Fprintln(os.Stderr, "catamountd:", err)
		os.Exit(1)
	}
}

func run(addr string, cacheEntries, maxInFlight int, timeout time.Duration,
	maxSweep int, grace time.Duration, warm bool, cacheSnapshot string,
	snapshotEvery time.Duration, logLevel, logFormat, pprofAddr,
	jobsDir string, jobWorkers int) error {
	_, logger, err := obs.SetupCLI(os.Stderr, "catamountd", logLevel, logFormat)
	if err != nil {
		return err
	}

	eng := cat.NewEngine()
	if warm {
		start := time.Now()
		for _, d := range cat.Domains() {
			if _, err := eng.Analyzer(d); err != nil {
				return fmt.Errorf("warming %s: %w", d, err)
			}
		}
		logger.Info("warmed domain models",
			slog.Int("domains", len(cat.Domains())),
			slog.Duration("took", time.Since(start).Round(time.Millisecond)))
	}

	// The job service is file-backed when -jobs-dir is set: submitted jobs
	// survive restarts, and jobs found mid-run resume from their last
	// checkpoint before the listener even opens.
	var jobStore jobs.Store
	if jobsDir != "" {
		fs, err := jobs.NewFileStore(jobsDir)
		if err != nil {
			return err
		}
		jobStore = fs
	}
	jobSvc, err := jobs.New(jobs.Config{
		Source:  eng,
		Store:   jobStore,
		Workers: jobWorkers,
		Logger:  logger,
	})
	if err != nil {
		return fmt.Errorf("job service: %w", err)
	}
	defer jobSvc.Close()

	srv := server.New(server.Config{
		Engine:         eng,
		CacheEntries:   cacheEntries,
		MaxInFlight:    maxInFlight,
		Timeout:        timeout,
		MaxSweepPoints: maxSweep,
		Logger:         logger,
		Jobs:           jobSvc,
	})
	// Cache persistence: reload the previous run's working set before the
	// listener opens (a stale or missing snapshot just means a cold start),
	// save periodically when asked, and always save on shutdown — after the
	// drain, so in-flight responses land in the saved set.
	if cacheSnapshot != "" {
		if n, err := srv.LoadSnapshotFile(cacheSnapshot); err != nil {
			if errors.Is(err, os.ErrNotExist) {
				logger.Info("no cache snapshot; starting cold", slog.String("path", cacheSnapshot))
			} else {
				logger.Warn("cache snapshot rejected; starting cold",
					slog.String("path", cacheSnapshot), slog.Any("err", err))
			}
		} else {
			logger.Info("cache snapshot restored",
				slog.String("path", cacheSnapshot), slog.Int("entries", n))
		}
		if snapshotEvery > 0 {
			ticker := time.NewTicker(snapshotEvery)
			defer ticker.Stop()
			go func() {
				for range ticker.C {
					if err := srv.SaveSnapshotFile(cacheSnapshot); err != nil {
						logger.Warn("periodic cache snapshot failed", slog.Any("err", err))
					}
				}
			}()
		}
	}

	hs := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		// Bound body reads too: checkpoint uploads stream through the
		// handler, and a stalled upload should not hold a connection (and
		// an admission slot) past the request deadline.
		ReadTimeout: timeout + 10*time.Second,
	}

	// The profiling listener is separate from the API listener so pprof is
	// never exposed on the serving port, skips the admission limiter and
	// request deadline, and can be bound to localhost only.
	if pprofAddr != "" {
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ps := &http.Server{Addr: pprofAddr, Handler: pm, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("pprof listening", slog.String("addr", pprofAddr))
			if err := ps.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener failed", slog.Any("err", err))
			}
		}()
		defer ps.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		logger.Info("shutting down", slog.Duration("grace", grace))
		shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			logger.Warn("forced shutdown", slog.Any("err", err))
			hs.Close()
		}
	}()

	logger.Info("listening",
		slog.String("addr", addr),
		slog.Int("cache_entries", cacheEntries),
		slog.Duration("timeout", timeout),
		slog.String("jobs_dir", jobsDir),
		slog.Int("job_workers", jobWorkers))
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-done
	if cacheSnapshot != "" {
		if err := srv.SaveSnapshotFile(cacheSnapshot); err != nil {
			logger.Warn("cache snapshot save failed", slog.Any("err", err))
		} else {
			logger.Info("cache snapshot saved",
				slog.String("path", cacheSnapshot),
				slog.Int("entries", srv.Metrics().CacheEntries))
		}
	}
	logger.Info("bye")
	return nil
}
