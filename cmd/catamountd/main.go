// Command catamountd serves the catamount analysis engine over HTTP/JSON:
// per-domain characterization, frontier projections, figure sweeps,
// subbatch selection, the word-LM case study, the accelerator catalog,
// checkpoint upload-and-analyze, and streaming bulk grid sweeps — with
// single-flight request coalescing, a bounded LRU response cache, a
// concurrency limiter, request deadlines, and graceful shutdown.
//
// Usage:
//
//	catamountd -addr :8080
//	curl 'localhost:8080/v1/analyze?domain=wordlm&params=1.03e9&batch=128'
//	curl 'localhost:8080/v1/frontier?accel=a100'
//	curl -d '{"params":[1e8,1e9],"accelerators":["v100","a100"]}' localhost:8080/v1/sweep
//	curl 'localhost:8080/metrics'
//
// See the README's "Serving: catamountd" section for the full API.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	cat "catamount"
	"catamount/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("catamountd: ")
	addr := flag.String("addr", ":8080", "listen address")
	cacheEntries := flag.Int("cache", 1024, "LRU response cache entries")
	maxInFlight := flag.Int("max-inflight", 0, "concurrent request limit (0 = 4x GOMAXPROCS)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	maxSweep := flag.Int("max-sweep-points", 0, "largest grid POST /v1/sweep may stream (0 = 100000)")
	grace := flag.Duration("grace", 10*time.Second, "graceful shutdown drain window")
	warm := flag.Bool("warm", false, "build and compile every domain model before listening")
	flag.Parse()

	eng := cat.NewEngine()
	if *warm {
		start := time.Now()
		for _, d := range cat.Domains() {
			if _, err := eng.Analyzer(d); err != nil {
				log.Fatalf("warming %s: %v", d, err)
			}
		}
		log.Printf("warmed %d domain models in %v", len(cat.Domains()), time.Since(start).Round(time.Millisecond))
	}

	srv := server.New(server.Config{
		Engine:         eng,
		CacheEntries:   *cacheEntries,
		MaxInFlight:    *maxInFlight,
		Timeout:        *timeout,
		MaxSweepPoints: *maxSweep,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		// Bound body reads too: checkpoint uploads stream through the
		// handler, and a stalled upload should not hold a connection (and
		// an admission slot) past the request deadline.
		ReadTimeout: *timeout + 10*time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		log.Printf("shutting down, draining for up to %v", *grace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Printf("forced shutdown: %v", err)
			hs.Close()
		}
	}()

	log.Printf("listening on %s (cache %d entries, timeout %v)", *addr, *cacheEntries, *timeout)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
	log.Printf("bye")
}
