// Command figures emits the data series behind the paper's Figures 6–12 as
// CSV, either to stdout or to per-figure files in a directory.
//
//	figures -fig 7             one figure to stdout
//	figures -fig all -out out/ every figure to out/figure_N.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"

	cat "catamount"
	"catamount/internal/obs"
)

func main() {
	fig := flag.String("fig", "all", "figure to emit: 6, 7, 8, 9, 10, 11, 12 or all")
	out := flag.String("out", "", "output directory (default stdout)")
	accel := flag.String("accel", "",
		"Roofline accelerator for Figures 11 and 12: catalog name (v100, a100, h100, tpuv3, cpu), @file.json, or empty for the paper's target")
	costmodel := flag.String("costmodel", "",
		"step-time cost model for Figures 11 and 12: graph (default, §5.2 graph-level roofline) or perop (per-op roofline, §4.1/§5.1)")
	listAccels := flag.Bool("list-accels", false, "list the accelerator catalog with aliases and exit")
	logLevel := flag.String("log-level", "info", "log level (debug, info, warn, error)")
	logFormat := flag.String("log-format", "text", "log format (text, json)")
	flag.Parse()
	if _, _, err := obs.SetupCLI(os.Stderr, "figures", *logLevel, *logFormat); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	if *listAccels {
		cat.PrintAcceleratorCatalog(os.Stdout)
		return
	}

	acc, err := cat.ResolveAccelerator(*accel)
	if err != nil {
		fatal(err)
	}
	cm, err := cat.ParseCostModel(*costmodel)
	if err != nil {
		fatal(err)
	}

	writer := func(name string) (io.Writer, func(), error) {
		if *out == "" {
			fmt.Printf("# --- %s ---\n", name)
			return os.Stdout, func() {}, nil
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return nil, nil, err
		}
		f, err := os.Create(filepath.Join(*out, name+".csv"))
		if err != nil {
			return nil, nil, err
		}
		return f, func() { f.Close() }, nil
	}
	want := func(t string) bool { return *fig == "all" || *fig == t }

	// One Engine session backs every figure, so the domains' models are
	// built and compiled once even when emitting all figures.
	eng := cat.DefaultEngine()

	// Figures 7-9 share one sweep.
	var sweeps []cat.SweepSeries
	if want("7") || want("8") || want("9") {
		var err error
		sweeps, err = eng.FigureSweeps()
		if err != nil {
			fatal(err)
		}
	}

	if want("6") {
		w, done, err := writer("figure_6_learning_curve")
		if err != nil {
			fatal(err)
		}
		pts, err := cat.Figure6(cat.WordLM)
		if err != nil {
			fatal(err)
		}
		cat.WriteFigure6CSV(w, pts)
		done()
	}
	for _, n := range []string{"7", "8", "9"} {
		if !want(n) {
			continue
		}
		w, done, err := writer("figure_" + n + "_sweep")
		if err != nil {
			fatal(err)
		}
		cat.WriteSweepCSV(w, sweeps)
		done()
		if *fig != "all" {
			break // 7, 8 and 9 emit the same sweep columns
		}
		break
	}
	if want("10") {
		w, done, err := writer("figure_10_footprint")
		if err != nil {
			fatal(err)
		}
		series, err := eng.Figure10()
		if err != nil {
			fatal(err)
		}
		cat.WriteFootprintCSV(w, series)
		done()
	}
	if want("11") {
		w, done, err := writer("figure_11_subbatch")
		if err != nil {
			fatal(err)
		}
		data, err := eng.Figure11With(acc, cm)
		if err != nil {
			fatal(err)
		}
		cat.WriteFigure11CSV(w, data)
		done()
	}
	if want("12") {
		w, done, err := writer("figure_12_data_parallel")
		if err != nil {
			fatal(err)
		}
		data, err := eng.Figure12OnWith(acc, cm)
		if err != nil {
			fatal(err)
		}
		cat.WriteFigure12CSV(w, data)
		done()
	}
}

func fatal(err error) {
	slog.Error(err.Error())
	os.Exit(1)
}
