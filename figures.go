package catamount

import (
	"catamount/internal/core"
	"catamount/internal/hw"
	"catamount/internal/parallel"
	"catamount/internal/scaling"
)

// LearningCurvePoint is one Figure 6 sample.
type LearningCurvePoint = scaling.CurvePoint

// Figure6 samples the three-region learning curve sketch for a domain.
func Figure6(d Domain) ([]LearningCurvePoint, error) {
	spec, err := scaling.SpecFor(d)
	if err != nil {
		return nil, err
	}
	return scaling.LearningCurveSeries(spec, 1e3, 1e15, 4), nil
}

// SweepSeries is one domain's model-size sweep, the substrate of
// Figures 7–10.
type SweepSeries struct {
	Domain Domain         `json:"domain"`
	Points []Requirements `json:"points"`
}

// FigureSweeps characterizes every domain across its Figure 7–10 parameter
// range at the paper's profiling subbatch sizes, through the shared
// DefaultEngine.
func FigureSweeps() ([]SweepSeries, error) {
	return defaultEngine.FigureSweeps()
}

// FootprintSeries is one domain's Figure 10 sweep with the simulated
// framework-allocator view (12 GB device, 80% usable).
type FootprintSeries struct {
	Domain Domain                `json:"domain"`
	Points []core.FootprintPoint `json:"points"`
}

// Figure10 runs the footprint sweep with the allocator simulation, through
// the shared DefaultEngine.
func Figure10() ([]FootprintSeries, error) {
	return defaultEngine.Figure10()
}

// Figure11Data is the word-LM subbatch sweep with the accelerator ridge
// point and the three §5.2.1 policy choices marked.
type Figure11Data struct {
	Points     []hw.SubbatchPoint          `json:"points"`
	RidgePoint float64                     `json:"ridge_point"`
	Chosen     map[string]hw.SubbatchPoint `json:"chosen"`
}

// Figure11 sweeps subbatch sizes for the frontier word LM, through the
// shared DefaultEngine.
func Figure11(acc Accelerator) (*Figure11Data, error) {
	return defaultEngine.Figure11(acc)
}

// Figure12Data is the data-parallel scaling sweep of the case-study word LM.
type Figure12Data struct {
	Points []parallel.DataParallelPoint `json:"points"`
}

// Figure12 sweeps data-parallel worker counts (1 → 16384) for the
// cache-aware case-study step, through the shared DefaultEngine.
func Figure12() (*Figure12Data, error) {
	return defaultEngine.Figure12()
}

// fmtDomain renders the short domain tag used in CSV headers.
func fmtDomain(d Domain) string { return string(d) }
