package catamount

import (
	"fmt"

	"catamount/internal/core"
	"catamount/internal/graph"
	"catamount/internal/hw"
	"catamount/internal/models"
	"catamount/internal/parallel"
	"catamount/internal/scaling"
)

// LearningCurvePoint is one Figure 6 sample.
type LearningCurvePoint = scaling.CurvePoint

// Figure6 samples the three-region learning curve sketch for a domain.
func Figure6(d Domain) ([]LearningCurvePoint, error) {
	spec, err := scaling.SpecFor(d)
	if err != nil {
		return nil, err
	}
	return scaling.LearningCurveSeries(spec, 1e3, 1e15, 4), nil
}

// SweepSeries is one domain's model-size sweep, the substrate of
// Figures 7–10.
type SweepSeries struct {
	Domain Domain
	Points []Requirements
}

// FigureSweeps characterizes every domain across its Figure 7–10 parameter
// range at the paper's profiling subbatch sizes.
func FigureSweeps() ([]SweepSeries, error) {
	out := make([]SweepSeries, 0, len(models.AllDomains))
	for _, d := range models.AllDomains {
		m, err := models.Build(d)
		if err != nil {
			return nil, err
		}
		pts, err := core.SweepParams(m, core.DefaultSweepTargets(d), m.DefaultBatch,
			graph.PolicyMemGreedy)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepSeries{Domain: d, Points: pts})
	}
	return out, nil
}

// FootprintSeries is one domain's Figure 10 sweep with the simulated
// framework-allocator view (12 GB device, 80% usable).
type FootprintSeries struct {
	Domain Domain
	Points []core.FootprintPoint
}

// Figure10 runs the footprint sweep with the allocator simulation.
func Figure10() ([]FootprintSeries, error) {
	out := make([]FootprintSeries, 0, len(models.AllDomains))
	for _, d := range models.AllDomains {
		m, err := models.Build(d)
		if err != nil {
			return nil, err
		}
		pts, err := core.FootprintSweep(m, core.DefaultSweepTargets(d), m.DefaultBatch,
			graph.PolicyMemGreedy)
		if err != nil {
			return nil, err
		}
		out = append(out, FootprintSeries{Domain: d, Points: pts})
	}
	return out, nil
}

// Figure11Data is the word-LM subbatch sweep with the accelerator ridge
// point and the three §5.2.1 policy choices marked.
type Figure11Data struct {
	Points     []hw.SubbatchPoint
	RidgePoint float64
	Chosen     map[string]hw.SubbatchPoint
}

// Figure11 sweeps subbatch sizes for the frontier word LM.
func Figure11(acc Accelerator) (*Figure11Data, error) {
	m, err := models.Build(WordLM)
	if err != nil {
		return nil, err
	}
	spec, err := scaling.SpecFor(WordLM)
	if err != nil {
		return nil, err
	}
	proj, err := scaling.Project(spec)
	if err != nil {
		return nil, err
	}
	size, err := m.SizeForParams(proj.TargetParams)
	if err != nil {
		return nil, err
	}
	pts, err := hw.SubbatchSweep(core.StepEvalAt(m, size), acc, hw.PowersOfTwo(18))
	if err != nil {
		return nil, err
	}
	data := &Figure11Data{
		Points:     pts,
		RidgePoint: acc.EffectiveRidgePoint(),
		Chosen:     make(map[string]hw.SubbatchPoint, 3),
	}
	for _, pol := range []hw.SubbatchPolicy{
		hw.MinTimePerSample, hw.RidgePointMatch, hw.IntensitySaturation,
	} {
		pt, err := hw.ChooseSubbatch(pts, acc, pol, 0.05)
		if err != nil {
			return nil, err
		}
		data.Chosen[pol.String()] = pt
	}
	return data, nil
}

// Figure12Data is the data-parallel scaling sweep of the case-study word LM.
type Figure12Data struct {
	Points []parallel.DataParallelPoint
}

// Figure12 sweeps data-parallel worker counts (1 → 16384) for the
// cache-aware case-study step.
func Figure12() (*Figure12Data, error) {
	cs, err := WordLMCaseStudy()
	if err != nil {
		return nil, err
	}
	cfg := parallel.DefaultCaseStudyConfig()
	dp := parallel.DataParallelConfig{
		StepTime:          cfg.Acc.StepTime(cs.StepFLOPs, cs.CacheAwareBytes),
		StepFLOPs:         cs.StepFLOPs,
		GradientBytes:     4 * cs.Params,
		SubbatchPerWorker: cfg.Subbatch,
		EpochSamples:      cfg.EpochTokens / float64(cs.Model.SeqLen),
		Acc:               cfg.Acc,
		Link:              cfg.Link,
		Reduce:            parallel.RingAllReduceTime,
	}
	var workers []int
	for w := 1; w <= 16384; w *= 2 {
		workers = append(workers, w)
	}
	return &Figure12Data{Points: dp.Sweep(workers)}, nil
}

// fmtDomain renders the short domain tag used in CSV headers.
func fmtDomain(d Domain) string { return fmt.Sprintf("%s", string(d)) }
