package catamount

import (
	"context"

	"catamount/internal/plan"
)

// PlanSpec describes an inverse capacity query: an accuracy target plus a
// search space of accelerators, worker counts, subbatches, and parallelism
// strategies. See internal/plan.Spec for field semantics; this is also the
// JSON schema of the catamountd POST /v1/plan endpoint.
type PlanSpec = plan.Spec

// PlanResult is one full search: the resolved target, every candidate
// (infeasible ones annotated), and the deterministic Pareto frontier over
// {time, devices, cost}.
type PlanResult = plan.Result

// TrainingPlan is one evaluated cluster configuration.
type TrainingPlan = plan.Plan

// PlanTarget is the learning-curve inversion of a requested accuracy.
type PlanTarget = plan.Target

// maxPlanEntries bounds the per-key planner memo, mirroring the
// case-study memo: generous for the catalog-search working set while
// long-tail custom searches evict least-recently-used entries.
const maxPlanEntries = 64

// Plan answers the inverse query: what cluster configurations reach the
// target, and which are Pareto-optimal over {time, devices, cost}? The
// search composes the session's compiled models through the sweep worker
// pool, and results are memoized by canonical search key in a sharded LRU
// — repeated queries for the same target cost one per-shard lock and a map
// lookup, and concurrent callers for one key share a single search.
func (e *Engine) Plan(spec PlanSpec) (*PlanResult, error) {
	p, err := plan.New(e, spec)
	if err != nil {
		return nil, err
	}
	ent, _ := e.plans.GetOrCreate(p.Key(), func() *planEntry { return &planEntry{} })
	ent.once.Do(func() {
		// Detached context: the memoized result outlives any one caller,
		// so one caller's cancellation must not poison the entry.
		ent.res, ent.err = p.Run(context.Background())
	})
	return ent.res, ent.err
}

// PlanSearch runs an unmemoized search under the caller's context —
// cancellable, and never retained. Long-tail interactive what-ifs belong
// here; repeated queries belong on Plan.
func (e *Engine) PlanSearch(ctx context.Context, spec PlanSpec) (*PlanResult, error) {
	p, err := plan.New(e, spec)
	if err != nil {
		return nil, err
	}
	return p.Run(ctx)
}
