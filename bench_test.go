// Benchmarks regenerate every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding harness end-to-end and reports the
// headline quantities as custom metrics, so `go test -bench . -benchmem`
// doubles as the experiment driver; the metric names carry the paper's
// published values for comparison.
package catamount_test

import (
	"math"
	"testing"
	"time"

	cat "catamount"
	"catamount/internal/cache"
	"catamount/internal/core"
	"catamount/internal/graph"
	"catamount/internal/hw"
	"catamount/internal/models"
	"catamount/internal/parallel"
	"catamount/internal/symbolic"
	"catamount/internal/tensor"
)

// BenchmarkTable1AccuracyScaling regenerates Table 1 (data/model scale
// factors to reach desired SOTA).
func BenchmarkTable1AccuracyScaling(b *testing.B) {
	var wordScale, charScale float64
	for i := 0; i < b.N; i++ {
		projs, err := cat.AccuracyProjections()
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range projs {
			switch p.Spec.Domain {
			case cat.WordLM:
				wordScale = p.ComputedDataScale
			case cat.CharLM:
				charScale = p.ComputedDataScale
			}
		}
	}
	b.ReportMetric(wordScale, "wordlm-data-scale-x(paper:100)")
	b.ReportMetric(charScale, "charlm-data-scale-x(paper:971)")
}

// BenchmarkTable2Asymptotics regenerates Table 2 (γ, λ, µ, δ fits).
func BenchmarkTable2Asymptotics(b *testing.B) {
	var gammaWord, lambdaWord, deltaWord float64
	for i := 0; i < b.N; i++ {
		asyms, err := cat.AsymptoticTable()
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range asyms {
			if a.Domain == cat.WordLM {
				gammaWord, lambdaWord, deltaWord = a.Gamma, a.Lambda, a.Delta
			}
		}
	}
	b.ReportMetric(gammaWord, "wordlm-gamma(paper:481)")
	b.ReportMetric(lambdaWord, "wordlm-lambda(paper:1755)")
	b.ReportMetric(deltaWord, "wordlm-delta(paper:11.94)")
}

// BenchmarkTable3FrontierProjection regenerates Table 3 (frontier training
// requirements and Roofline times).
func BenchmarkTable3FrontierProjection(b *testing.B) {
	var wordStep, charEpoch, speechEpoch float64
	for i := 0; i < b.N; i++ {
		rows, err := cat.FrontierTable(cat.TargetAccelerator())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Spec.Domain {
			case cat.WordLM:
				wordStep = r.StepSeconds
			case cat.CharLM:
				charEpoch = r.EpochDays
			case cat.Speech:
				speechEpoch = r.EpochDays
			}
		}
	}
	b.ReportMetric(wordStep, "wordlm-step-s(paper:115)")
	b.ReportMetric(charEpoch/1e6, "charlm-epoch-Mdays(paper:3.5)")
	b.ReportMetric(speechEpoch, "speech-epoch-days(paper:93)")
}

// BenchmarkTable4Accelerator verifies the Table 4 Roofline configuration.
func BenchmarkTable4Accelerator(b *testing.B) {
	var ridge float64
	for i := 0; i < b.N; i++ {
		ridge = cat.TargetAccelerator().EffectiveRidgePoint()
	}
	b.ReportMetric(ridge, "ridge-FLOP/B(paper:19.9)")
}

// BenchmarkTable5CaseStudy regenerates the word-LM parallelization plan.
func BenchmarkTable5CaseStudy(b *testing.B) {
	var bestUtil, awareUtil, finalUtil, finalDays float64
	for i := 0; i < b.N; i++ {
		cs, err := cat.WordLMCaseStudy()
		if err != nil {
			b.Fatal(err)
		}
		bestUtil = cs.Stages[0].Utilization
		awareUtil = cs.Stages[1].Utilization
		finalUtil = cs.Stages[len(cs.Stages)-1].Utilization
		finalDays = cs.Stages[len(cs.Stages)-1].DaysPerEpoch
	}
	b.ReportMetric(100*bestUtil, "best-util-%(paper:80)")
	b.ReportMetric(100*awareUtil, "cache-aware-util-%(paper:46)")
	b.ReportMetric(100*finalUtil, "final-util-%(paper:14.5)")
	b.ReportMetric(finalDays, "final-days/epoch(paper:7.2)")
}

// BenchmarkFigure6LearningCurve samples the three-region learning curve.
func BenchmarkFigure6LearningCurve(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		pts, err := cat.Figure6(cat.WordLM)
		if err != nil {
			b.Fatal(err)
		}
		n = len(pts)
	}
	b.ReportMetric(float64(n), "points")
}

// figureSweeps memoizes the shared Figure 7–9 sweep within one bench run.
func figureSweeps(b *testing.B) []cat.SweepSeries {
	b.Helper()
	s, err := cat.FigureSweeps()
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkFigure7Flops regenerates the FLOPs-vs-params series.
func BenchmarkFigure7Flops(b *testing.B) {
	var gflops float64
	for i := 0; i < b.N; i++ {
		for _, s := range figureSweeps(b) {
			if s.Domain == cat.WordLM {
				last := s.Points[len(s.Points)-1]
				gflops = last.FLOPsPerSample / 1e9
			}
		}
	}
	b.ReportMetric(gflops, "wordlm-max-GFLOPs/sample(paper:~250)")
}

// BenchmarkFigure8Bytes regenerates the bytes-vs-params series.
func BenchmarkFigure8Bytes(b *testing.B) {
	var gb float64
	for i := 0; i < b.N; i++ {
		for _, s := range figureSweeps(b) {
			if s.Domain == cat.CharLM {
				last := s.Points[len(s.Points)-1]
				gb = last.BytesPerStep / 1e9
			}
		}
	}
	b.ReportMetric(gb, "charlm-max-GB/step")
}

// BenchmarkFigure9Intensity regenerates the intensity-vs-params series.
func BenchmarkFigure9Intensity(b *testing.B) {
	var oi float64
	for i := 0; i < b.N; i++ {
		for _, s := range figureSweeps(b) {
			if s.Domain == cat.WordLM {
				last := s.Points[len(s.Points)-1]
				oi = last.Intensity
			}
		}
	}
	b.ReportMetric(oi, "wordlm-op-intensity(paper:~30-60)")
}

// BenchmarkFigure10Footprint regenerates the footprint series with the
// 12 GB allocator simulation.
func BenchmarkFigure10Footprint(b *testing.B) {
	var swaps float64
	for i := 0; i < b.N; i++ {
		series, err := cat.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		swaps = 0
		for _, s := range series {
			for _, p := range s.Points {
				if p.AllocatorReport.Swapping {
					swaps++
				}
			}
		}
	}
	b.ReportMetric(swaps, "points-hitting-12GB-cap")
}

// BenchmarkFigure11SubbatchSweep regenerates the word-LM subbatch sweep.
func BenchmarkFigure11SubbatchSweep(b *testing.B) {
	var chosen float64
	for i := 0; i < b.N; i++ {
		data, err := cat.Figure11(cat.TargetAccelerator())
		if err != nil {
			b.Fatal(err)
		}
		chosen = data.Chosen["min-time-per-sample"].Subbatch
	}
	b.ReportMetric(chosen, "chosen-subbatch(paper:128)")
}

// BenchmarkFigure12DataParallel regenerates the data-parallel scaling sweep.
func BenchmarkFigure12DataParallel(b *testing.B) {
	var days1024 float64
	for i := 0; i < b.N; i++ {
		data, err := cat.Figure12()
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range data.Points {
			if p.Workers == 1024 {
				days1024 = p.EpochDays
			}
		}
	}
	b.ReportMetric(days1024, "epoch-days-at-1024(paper:6.2)")
}

// ---------------------------------------------------------------------------
// Engine-vs-seed evaluation path

// seedTables reproduces the seed code path for Tables 2 and 3: every domain
// model is rebuilt (and recompiled) from scratch on each call, exactly as
// the pre-Engine package-level functions did.
func seedTables(b *testing.B, acc hw.Accelerator) {
	b.Helper()
	for _, d := range models.AllDomains {
		m, err := models.Build(d)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.FitAsymptotics(m, core.AsymptoticFitTargets(d),
			[]float64{16, 64, 256}, m.DefaultBatch, graph.PolicyMemGreedy); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := core.ProjectAllFrontiers(acc, graph.PolicyMemGreedy); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSeedAsymptoticsPlusFrontier measures Table 2 + Table 3
// back-to-back with per-call model rebuilds (the seed path).
func BenchmarkSeedAsymptoticsPlusFrontier(b *testing.B) {
	acc := cat.TargetAccelerator()
	for i := 0; i < b.N; i++ {
		seedTables(b, acc)
	}
}

// BenchmarkEngineAsymptoticsPlusFrontier measures the same two tables
// through one Engine session: each model is built and compiled exactly once
// across all iterations.
func BenchmarkEngineAsymptoticsPlusFrontier(b *testing.B) {
	acc := cat.TargetAccelerator()
	eng := cat.NewEngine()
	// Warm the session so the steady-state iteration measures pure
	// evaluation, the serving-path cost the Engine exists to minimize.
	if _, err := eng.AsymptoticTable(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.AsymptoticTable(); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.FrontierTable(acc); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEngineTablesSpeedup asserts the PR's acceptance criterion directly:
// AsymptoticTable + FrontierTable through one Engine is at least 5x faster
// than the seed rebuild-per-call path.
func TestEngineTablesSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison runs full table sweeps")
	}
	acc := cat.TargetAccelerator()

	eng := cat.NewEngine()
	if _, err := eng.AsymptoticTable(); err != nil { // build + compile once
		t.Fatal(err)
	}
	// Best-of-3 keeps a single scheduling or GC hiccup in the short engine
	// measurement from failing the ratio assertion on a loaded machine.
	engElapsed := time.Duration(math.MaxInt64)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := eng.AsymptoticTable(); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.FrontierTable(acc); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < engElapsed {
			engElapsed = d
		}
	}

	seedStart := time.Now()
	for _, d := range models.AllDomains {
		m, err := models.Build(d)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.FitAsymptotics(m, core.AsymptoticFitTargets(d),
			[]float64{16, 64, 256}, m.DefaultBatch, graph.PolicyMemGreedy); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := core.ProjectAllFrontiers(acc, graph.PolicyMemGreedy); err != nil {
		t.Fatal(err)
	}
	seedElapsed := time.Since(seedStart)

	t.Logf("engine %v vs seed %v (%.1fx)", engElapsed, seedElapsed,
		float64(seedElapsed)/float64(engElapsed))
	if engElapsed*5 > seedElapsed {
		t.Fatalf("engine path %v not 5x faster than seed path %v", engElapsed, seedElapsed)
	}
}

// ---------------------------------------------------------------------------
// Ablation benchmarks

// BenchmarkAblationCacheAwareVsRoofline isolates the Table 5 rows 1→2 drop.
func BenchmarkAblationCacheAwareVsRoofline(b *testing.B) {
	m := models.BuildWordLM(models.CaseStudyWordLMConfig())
	size, err := m.SizeForParams(8e9)
	if err != nil {
		b.Fatal(err)
	}
	acc := hw.TargetAccelerator()
	env := m.Env(size, 128)
	flops := symbolic.MustEval(m.FLOPsExpr(), env)
	var best, aware float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := cache.GraphTraffic(m.Graph, env, cache.NewTileModel(acc.CacheBytes))
		if err != nil {
			b.Fatal(err)
		}
		best, aware = cache.UtilizationDrop(flops, rep, acc.StepTime, acc.Utilization)
	}
	b.ReportMetric(100*best, "roofline-util-%")
	b.ReportMetric(100*aware, "cache-aware-util-%")
}

// BenchmarkAblationSubbatchPolicies compares the three §5.2.1 policies.
func BenchmarkAblationSubbatchPolicies(b *testing.B) {
	m := models.MustBuild(models.WordLM)
	size, err := m.SizeForParams(23.8e9)
	if err != nil {
		b.Fatal(err)
	}
	acc := hw.TargetAccelerator()
	chosen := map[hw.SubbatchPolicy]float64{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := hw.SubbatchSweep(core.StepEvalAt(m, size), acc, hw.PowersOfTwo(18))
		if err != nil {
			b.Fatal(err)
		}
		for _, pol := range []hw.SubbatchPolicy{
			hw.MinTimePerSample, hw.RidgePointMatch, hw.IntensitySaturation,
		} {
			pt, err := hw.ChooseSubbatch(pts, acc, pol, 0.05)
			if err != nil {
				b.Fatal(err)
			}
			chosen[pol] = pt.Subbatch
		}
	}
	b.ReportMetric(chosen[hw.MinTimePerSample], "min-time-subbatch")
	b.ReportMetric(chosen[hw.RidgePointMatch], "ridge-match-subbatch")
	b.ReportMetric(chosen[hw.IntensitySaturation], "saturation-subbatch")
}

// BenchmarkAblationSchedulerPolicies compares footprint estimates under the
// FIFO and memory-greedy traversals.
func BenchmarkAblationSchedulerPolicies(b *testing.B) {
	m := models.MustBuild(models.WordLM)
	size, err := m.SizeForParams(1.03e9)
	if err != nil {
		b.Fatal(err)
	}
	env := m.Env(size, 128)
	var fifo, greedy float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rf, err := m.Graph.Footprint(env, graph.PolicyFIFO)
		if err != nil {
			b.Fatal(err)
		}
		rg, err := m.Graph.Footprint(env, graph.PolicyMemGreedy)
		if err != nil {
			b.Fatal(err)
		}
		fifo, greedy = rf.PeakBytes, rg.PeakBytes
	}
	b.ReportMetric(fifo/1e9, "fifo-footprint-GB")
	b.ReportMetric(greedy/1e9, "greedy-footprint-GB")
}

// BenchmarkAblationRingVsNaiveAllReduce compares gradient collectives at the
// case-study scale.
func BenchmarkAblationRingVsNaiveAllReduce(b *testing.B) {
	link := parallel.DefaultInterconnect()
	payload := 4 * 8e9 // fp32 gradients of the case-study model
	var ring, naive float64
	for i := 0; i < b.N; i++ {
		ring = parallel.RingAllReduceTime(payload, 1024, link)
		naive = parallel.NaiveAllReduceTime(payload, 1024, link)
	}
	b.ReportMetric(ring, "ring-s")
	b.ReportMetric(naive, "naive-s")
	b.ReportMetric(naive/ring, "speedup-x")
}

// BenchmarkAblationLSTMProjection measures the case study's algorithmic
// optimization (§6.1): per-step FLOPs of the unoptimized Table 3 frontier
// word LM versus the optimized case-study model (LSTM projection +
// production vocabulary, sized to the 113.8 GB footprint).
func BenchmarkAblationLSTMProjection(b *testing.B) {
	base := models.MustBuild(models.WordLM)
	size, err := base.SizeForParams(23.8e9)
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fBase := symbolic.MustEval(base.FLOPsExpr(), base.Env(size, 128))
		cs, err := cat.WordLMCaseStudy()
		if err != nil {
			b.Fatal(err)
		}
		ratio = fBase / cs.StepFLOPs
	}
	b.ReportMetric(ratio, "step-flops-reduction-x(paper:11.7)")
}

// BenchmarkAblationCommOverlap measures how gradient bucketing hides
// allreduce time behind backward compute at case-study scale.
func BenchmarkAblationCommOverlap(b *testing.B) {
	cfg := parallel.OverlapConfig{
		ForwardTime:  3.0,
		BackwardTime: 6.0,
		UpdateTime:   0.2,
		GradBytes:    4 * 8e9,
		Workers:      512,
		Link:         parallel.DefaultInterconnect(),
	}
	var serial, overlapped float64
	for i := 0; i < b.N; i++ {
		cfg.Buckets = 1
		r1, err := parallel.SimulateOverlap(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Buckets = 32
		r32, err := parallel.SimulateOverlap(cfg)
		if err != nil {
			b.Fatal(err)
		}
		serial, overlapped = r1.StepTime, r32.StepTime
	}
	b.ReportMetric(serial, "serial-step-s")
	b.ReportMetric(overlapped, "32-bucket-step-s")
	b.ReportMetric(serial/overlapped, "speedup-x")
}

// BenchmarkAblationHalfPrecision measures the §6.2.3 low-precision memory
// reduction on the word LM.
func BenchmarkAblationHalfPrecision(b *testing.B) {
	full := models.BuildWordLM(models.DefaultWordLMConfig())
	halfCfg := models.DefaultWordLMConfig()
	halfCfg.DType = tensor.F16
	half := models.BuildWordLM(halfCfg)
	size, err := full.SizeForParams(1.03e9)
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f32, err := full.Graph.Footprint(full.Env(size, 128), graph.PolicyMemGreedy)
		if err != nil {
			b.Fatal(err)
		}
		f16, err := half.Graph.Footprint(half.Env(size, 128), graph.PolicyMemGreedy)
		if err != nil {
			b.Fatal(err)
		}
		ratio = f32.PeakBytes / f16.PeakBytes
	}
	b.ReportMetric(ratio, "footprint-reduction-x(paper:1.5-10)")
}

// BenchmarkAblationEmbeddingSharding isolates the Table 5 final-row memory
// balancing.
func BenchmarkAblationEmbeddingSharding(b *testing.B) {
	stages := []float64{60e9, 17e9, 17e9, 32e9}
	var before, after float64
	for i := 0; i < b.N; i++ {
		out, err := parallel.ShardGroupBytes(stages, 0, 59.5e9)
		if err != nil {
			b.Fatal(err)
		}
		before = parallel.MaxLoad(stages)
		after = parallel.MaxLoad(out)
	}
	b.ReportMetric(before/1e9, "max-GB-before(paper:60)")
	b.ReportMetric(after/1e9, "max-GB-after(paper:32)")
	if math.IsNaN(after) {
		b.Fatal("nan")
	}
}
