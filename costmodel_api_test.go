package catamount_test

import (
	"context"
	"testing"

	cat "catamount"
)

// sharedCMEngine amortizes model build+compile across this file's tests.
var sharedCMEngine = cat.NewEngine()

func mustParseCM(t *testing.T, name string) cat.CostModel {
	t.Helper()
	cm, err := cat.ParseCostModel(name)
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

// TestEngineCaseStudyMemoCanonicalAcrossAliases: the (device, backend)
// case-study memo keys on the canonical backend name, so every alias
// spelling — and the nil default — lands on the same entry.
func TestEngineCaseStudyMemoCanonicalAcrossAliases(t *testing.T) {
	if testing.Short() {
		t.Skip("case study sizes the projected LSTM")
	}
	eng := sharedCMEngine
	acc := cat.TargetAccelerator()

	base, err := eng.WordLMCaseStudyOnWith(acc, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, alias := range []string{"graph", "graph-roofline", "roofline"} {
		cs, err := eng.WordLMCaseStudyOnWith(acc, mustParseCM(t, alias))
		if err != nil {
			t.Fatal(err)
		}
		if cs != base {
			t.Fatalf("alias %q missed the default-backend memo entry", alias)
		}
	}

	perop, err := eng.WordLMCaseStudyOnWith(acc, mustParseCM(t, "perop"))
	if err != nil {
		t.Fatal(err)
	}
	if perop == base {
		t.Fatal("perop case study shares the graph backend's memo entry")
	}
	for _, alias := range []string{"per-op", "perop-roofline", "per-op-roofline"} {
		cs, err := eng.WordLMCaseStudyOnWith(acc, mustParseCM(t, alias))
		if err != nil {
			t.Fatal(err)
		}
		if cs != perop {
			t.Fatalf("alias %q missed the perop memo entry", alias)
		}
	}
	// The per-op case study is honest about its backend and never faster.
	if perop.CostModel != "perop" || base.CostModel != "graph" {
		t.Fatalf("backend labels: %q / %q", perop.CostModel, base.CostModel)
	}
	if perop.StepSeconds < base.StepSeconds {
		t.Fatalf("per-op cache-aware step %.6g faster than graph %.6g",
			perop.StepSeconds, base.StepSeconds)
	}
}

// TestEnginePlanMemoCanonicalAcrossAliases: Engine.Plan memoizes by the
// canonical search key, so backend alias spellings return the identical
// memoized *PlanResult.
func TestEnginePlanMemoCanonicalAcrossAliases(t *testing.T) {
	if testing.Short() {
		t.Skip("plan search characterizes the frontier model")
	}
	eng := sharedCMEngine
	spec := cat.PlanSpec{
		Domain:       "image",
		Accelerators: []string{"v100"},
		Subbatches:   []float64{32},
		WorkerCounts: []int{1, 4},
		CostModel:    "perop",
	}
	first, err := eng.Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, alias := range []string{"per-op", "perop-roofline", "per-op-roofline"} {
		spec.CostModel = alias
		res, err := eng.Plan(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res != first {
			t.Fatalf("alias %q recomputed the memoized plan search", alias)
		}
	}
	spec.CostModel = "graph"
	graphRes, err := eng.Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if graphRes == first {
		t.Fatal("graph and perop searches share a memo entry")
	}
}

// TestFrontierTablePerOpDominates: the end-to-end acceptance property at
// the Engine API — per-op Table 3 rows are never faster than graph rows on
// any catalog accelerator.
func TestFrontierTablePerOpDominates(t *testing.T) {
	if testing.Short() {
		t.Skip("frontier projection on the full catalog")
	}
	eng := sharedCMEngine
	perop := mustParseCM(t, "perop")
	for _, acc := range cat.Accelerators() {
		graphRows, err := eng.FrontierTableWith(acc, nil)
		if err != nil {
			t.Fatal(err)
		}
		peropRows, err := eng.FrontierTableWith(acc, perop)
		if err != nil {
			t.Fatal(err)
		}
		if len(graphRows) != len(peropRows) {
			t.Fatalf("%s: row counts differ", acc.Name)
		}
		for i := range graphRows {
			g, p := graphRows[i], peropRows[i]
			if p.StepSeconds < g.StepSeconds {
				t.Errorf("%s row %d (%s): per-op step %.6g faster than graph %.6g",
					acc.Name, i, g.Spec.Domain, p.StepSeconds, g.StepSeconds)
			}
			if p.EpochDays < g.EpochDays && p.Subbatch == g.Subbatch {
				t.Errorf("%s row %d (%s): per-op epoch days %.6g below graph %.6g at equal subbatch",
					acc.Name, i, g.Spec.Domain, p.EpochDays, g.EpochDays)
			}
		}
	}
}

// TestAnalyzeOnBackends: the Engine estimate API labels its backend and
// preserves dominance at a characterization point.
func TestAnalyzeOnBackends(t *testing.T) {
	eng := sharedCMEngine
	acc := cat.TargetAccelerator()
	req, g, err := eng.AnalyzeOn(context.Background(), cat.ImageCl, 5e7, 32, acc, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, p, err := eng.AnalyzeOn(context.Background(), cat.ImageCl, 5e7, 32, acc, mustParseCM(t, "perop"))
	if err != nil {
		t.Fatal(err)
	}
	if g.CostModel != "graph" || p.CostModel != "perop" {
		t.Fatalf("backend labels: %q / %q", g.CostModel, p.CostModel)
	}
	if g.StepSeconds != acc.StepTime(req.FLOPsPerStep, req.BytesPerStep) {
		t.Fatalf("graph estimate %.6g diverged from the legacy formula", g.StepSeconds)
	}
	if p.StepSeconds < g.StepSeconds {
		t.Fatalf("per-op estimate %.6g faster than graph %.6g", p.StepSeconds, g.StepSeconds)
	}
	if p.Utilization > g.Utilization {
		t.Fatalf("per-op utilization %.4g above graph %.4g", p.Utilization, g.Utilization)
	}
}
