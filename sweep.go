package catamount

import (
	"context"
	"fmt"
	"io"

	"catamount/internal/costmodel"
	"catamount/internal/sweep"
)

// SweepSpec describes a bulk evaluation grid: domains × parameter targets ×
// subbatches × accelerators. See internal/sweep.Spec for field semantics;
// this is also the JSON schema of the catamountd POST /v1/sweep endpoint.
type SweepSpec = sweep.Spec

// SweepPoint is one grid evaluation result, streamed in deterministic
// order; failed points carry Error instead of Requirements.
type SweepPoint = sweep.Point

// Sweep evaluates a bulk grid through the session's compiled models,
// streaming every point through yield in deterministic order (domain-major,
// then parameter target, then subbatch, then accelerator) while cells
// evaluate concurrently across a worker pool. Model build/compile, size
// solves, and characterizations are amortized across the whole grid —
// every accelerator of a cell shares one characterization — so a
// five-accelerator grid costs roughly one-fifth of the equivalent
// per-point Analyze loop before worker parallelism is even counted.
//
// Failures are per-point (SweepPoint.Error), not fail-the-grid; Sweep
// itself returns an error only for an invalid spec, a cancelled context,
// or a failing yield.
func (e *Engine) Sweep(ctx context.Context, spec SweepSpec, yield func(SweepPoint) error) error {
	r, err := sweep.New(e, spec)
	if err != nil {
		return err
	}
	return r.Run(ctx, yield)
}

// SweepAll is Sweep collected into a slice, for callers that want the grid
// in memory rather than streamed.
func (e *Engine) SweepAll(ctx context.Context, spec SweepSpec) ([]SweepPoint, error) {
	r, err := sweep.New(e, spec)
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, 0, r.Points())
	if err := r.Run(ctx, func(p SweepPoint) error {
		out = append(out, p)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteFrontierGrid renders Table 3 on each accelerator in order — the
// paper's frontier grid from one invocation. The per-accelerator output is
// byte-identical to calling FrontierTable and PrintTable3For yourself with
// the same header line.
func (e *Engine) WriteFrontierGrid(w io.Writer, accs []Accelerator) error {
	return e.WriteFrontierGridWith(w, accs, nil)
}

// WriteFrontierGridWith is WriteFrontierGrid under a pluggable step-time
// backend (nil means the default): non-default backends are named in each
// table's header line so grid outputs stay self-describing.
func (e *Engine) WriteFrontierGridWith(w io.Writer, accs []Accelerator, cm costmodel.Model) error {
	for i, acc := range accs {
		if i > 0 {
			fmt.Fprintln(w)
		}
		rows, err := e.FrontierTableWith(acc, cm)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Table 3: training requirements projected to target accuracy on %s%s\n",
			acc.Name, costModelSuffix(cm))
		PrintTable3For(w, rows, acc)
	}
	return nil
}

// WriteFigure11Grid emits the Figure 11 subbatch sweep as CSV for each
// accelerator in order, separated by an accelerator comment line.
func (e *Engine) WriteFigure11Grid(w io.Writer, accs []Accelerator) error {
	return e.WriteFigure11GridWith(w, accs, nil)
}

// WriteFigure11GridWith is WriteFigure11Grid under a pluggable step-time
// backend (nil means the default).
func (e *Engine) WriteFigure11GridWith(w io.Writer, accs []Accelerator, cm costmodel.Model) error {
	for i, acc := range accs {
		if i > 0 {
			fmt.Fprintln(w)
		}
		data, err := e.Figure11With(acc, cm)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "# figure 11 on %s%s\n", acc.Name, costModelSuffix(cm))
		WriteFigure11CSV(w, data)
	}
	return nil
}

// WriteFigure12Grid emits the Figure 12 data-parallel scaling sweep as CSV
// for each accelerator in order, separated by an accelerator comment line.
func (e *Engine) WriteFigure12Grid(w io.Writer, accs []Accelerator) error {
	return e.WriteFigure12GridWith(w, accs, nil)
}

// WriteFigure12GridWith is WriteFigure12Grid under a pluggable step-time
// backend (nil means the default).
func (e *Engine) WriteFigure12GridWith(w io.Writer, accs []Accelerator, cm costmodel.Model) error {
	for i, acc := range accs {
		if i > 0 {
			fmt.Fprintln(w)
		}
		data, err := e.Figure12OnWith(acc, cm)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "# figure 12 on %s%s\n", acc.Name, costModelSuffix(cm))
		WriteFigure12CSV(w, data)
	}
	return nil
}

// costModelSuffix labels grid headers with a non-default backend; the
// default stays unlabeled so pinned outputs are unchanged.
func costModelSuffix(cm costmodel.Model) string {
	if cm == nil || cm.Name() == costmodel.Default().Name() {
		return ""
	}
	return fmt.Sprintf(" (costmodel %s)", cm.Name())
}
