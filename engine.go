package catamount

import (
	"context"
	"sync"
	"sync/atomic"

	"catamount/internal/core"
	"catamount/internal/costmodel"
	"catamount/internal/graph"
	"catamount/internal/hw"
	"catamount/internal/models"
	"catamount/internal/obs"
	"catamount/internal/parallel"
	"catamount/internal/scaling"
	"catamount/internal/shard"
)

// Engine is a reusable analysis session. It memoizes each domain's built
// model together with its compiled program bundle, so repeated queries —
// table regenerations, figure sweeps, interactive what-ifs — pay the graph
// construction and expression compilation cost exactly once per domain.
//
// Every memo is built for contention-free concurrent serving: the domain
// set is tiny and build-once, so lookups read an atomic snapshot map with
// no lock at all; the case-study and planner memos are sharded LRUs whose
// operations take one per-shard mutex only.
//
// An Engine is safe for concurrent use. The zero value is not usable; call
// NewEngine.
type Engine struct {
	// domains is the copy-on-write snapshot of the per-domain analyzer
	// entries: reads are a single atomic load plus a map lookup (the map
	// is never mutated after publication), and only the rare first-use of
	// a new domain takes domainsMu to publish an extended copy.
	domainsMu sync.Mutex
	domains   atomic.Pointer[map[Domain]*engineEntry]

	// caseStudies memoizes the §6 parallelization plan per (accelerator,
	// cost-model backend): the case study is deterministic for a given
	// device and backend, and several figures and endpoints reuse it.
	// Keys combine the canonical backend name with the device fingerprint
	// (every projection-relevant field), so alias spellings share one
	// entry while two configs differing in any device field memoize
	// separately. The sharded LRU bounds long-tail custom devices without
	// a memo-wide lock.
	caseStudies *shard.LRU[*caseStudyEntry]

	// plans memoizes capacity-planner searches by their canonical key
	// (plan.Planner.Key): a search is deterministic, and the serving layer
	// replays popular targets. Same sharded LRU discipline as caseStudies.
	plans *shard.LRU[*planEntry]
}

// planEntry runs one planner search at most once, outside the memo lock.
type planEntry struct {
	once sync.Once
	res  *PlanResult
	err  error
}

// caseStudyEntry runs one accelerator's case study at most once, outside
// the memo lock.
type caseStudyEntry struct {
	once sync.Once
	cs   *CaseStudy
	err  error
}

// engineEntry builds one domain's analyzer at most once. Builds run outside
// the snapshot lock, so a slow first build of one domain never blocks
// memoized lookups of another.
type engineEntry struct {
	once sync.Once
	a    *core.Analyzer
	err  error
}

// NewEngine creates an empty analysis session. Models are built and compiled
// lazily, on first use of each domain.
func NewEngine() *Engine {
	return &Engine{
		caseStudies: shard.NewLRU[*caseStudyEntry](maxCaseStudyEntries, 0),
		plans:       shard.NewLRU[*planEntry](maxPlanEntries, 0),
	}
}

// domainEntry returns the build-once entry for d, publishing an extended
// snapshot map on first use. The published maps are immutable, so the
// Analyzer fast path never takes this lock.
func (e *Engine) domainEntry(d Domain) *engineEntry {
	e.domainsMu.Lock()
	defer e.domainsMu.Unlock()
	old := e.domains.Load()
	if old != nil {
		if ent, ok := (*old)[d]; ok {
			return ent
		}
	}
	next := make(map[Domain]*engineEntry, len(models.AllDomains))
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	ent := &engineEntry{}
	next[d] = ent
	e.domains.Store(&next)
	return ent
}

// Analyzer returns the domain's compiled analysis session, building and
// compiling the model on first use. The memoized path is lock-free: an
// atomic snapshot load, a map lookup, and a completed sync.Once.
func (e *Engine) Analyzer(d Domain) (*core.Analyzer, error) {
	ent, ok := (*engineEntry)(nil), false
	if m := e.domains.Load(); m != nil {
		ent, ok = (*m)[d]
	}
	if !ok {
		ent = e.domainEntry(d)
	}
	ent.once.Do(func() {
		// The build-and-compile is the engine's coldest stage: its latency
		// distribution (one observation per domain per process, ~100ms-1s)
		// separates cold-start cost from steady-state serving in /metrics.
		defer obs.Span(context.Background(), "model_build").End()
		m, err := models.Build(d)
		if err != nil {
			ent.err = err
			return
		}
		ent.a, ent.err = core.NewAnalyzer(m)
	})
	return ent.a, ent.err
}

// CacheStats is a point-in-time view of the engine's memo layer: how many
// domain models are built and compiled, occupancy/capacity/shard fan-out
// of the case-study and planner memos, and their lifetime eviction counts.
// The serving layer reports it in /healthz.
type CacheStats struct {
	Domains            int   `json:"domains"`
	CaseStudies        int   `json:"case_studies"`
	Plans              int   `json:"plans"`
	CaseStudyCapacity  int   `json:"case_study_capacity"`
	PlanCapacity       int   `json:"plan_capacity"`
	CaseStudyShards    int   `json:"case_study_shards"`
	PlanShards         int   `json:"plan_shards"`
	CaseStudyEvictions int64 `json:"case_study_evictions"`
	PlanEvictions      int64 `json:"plan_evictions"`
}

// CacheStats snapshots the engine's memo occupancy.
func (e *Engine) CacheStats() CacheStats {
	s := CacheStats{
		CaseStudies:       e.caseStudies.Len(),
		Plans:             e.plans.Len(),
		CaseStudyCapacity: e.caseStudies.Capacity(),
		PlanCapacity:      e.plans.Capacity(),
		CaseStudyShards:   e.caseStudies.ShardCount(),
		PlanShards:        e.plans.ShardCount(),
	}
	if m := e.domains.Load(); m != nil {
		s.Domains = len(*m)
	}
	s.CaseStudyEvictions = e.caseStudies.Stats().Evictions
	s.PlanEvictions = e.plans.Stats().Evictions
	return s
}

// Model returns the engine's memoized model for a domain. The model is
// shared: treat it as read-only.
func (e *Engine) Model(d Domain) (*Model, error) {
	a, err := e.Analyzer(d)
	if err != nil {
		return nil, err
	}
	return a.Model, nil
}

// sessionAt resolves a domain's memoized analyzer and the size
// hyperparameter hitting the target parameter count — the shared front
// half of Analyze and Profile.
func (e *Engine) sessionAt(d Domain, paramCount float64) (*core.Analyzer, float64, error) {
	a, err := e.Analyzer(d)
	if err != nil {
		return nil, 0, err
	}
	size, err := a.SizeForParams(paramCount)
	if err != nil {
		return nil, 0, err
	}
	return a, size, nil
}

// Analyze characterizes a domain at a target parameter count and subbatch.
func (e *Engine) Analyze(d Domain, paramCount, subbatch float64) (Requirements, error) {
	a, size, err := e.sessionAt(d, paramCount)
	if err != nil {
		return Requirements{}, err
	}
	return a.Characterize(context.Background(), size, subbatch, graph.PolicyMemGreedy)
}

// RooflineEstimate is one step-time backend's view of a characterization:
// the projected step seconds on a device, the achieved utilization, and
// which resource binds — labeled with the backend that produced it.
type RooflineEstimate struct {
	CostModel    string  `json:"costmodel"`
	StepSeconds  float64 `json:"step_seconds"`
	Utilization  float64 `json:"utilization"`
	ComputeBound bool    `json:"compute_bound"`
}

// AnalyzeOn characterizes a domain at a target parameter count and
// subbatch, and projects the step time on a validated accelerator under
// the given cost-model backend (nil means the default graph-level
// Roofline). This is the shared path behind cmd/catamount and the
// catamountd /v1/analyze endpoint; ctx carries the caller's request trace
// into the characterization stage spans.
func (e *Engine) AnalyzeOn(ctx context.Context, d Domain, paramCount, subbatch float64,
	acc Accelerator, cm costmodel.Model) (Requirements, RooflineEstimate, error) {

	if cm == nil {
		cm = costmodel.Default()
	}
	if err := acc.Validate(); err != nil {
		return Requirements{}, RooflineEstimate{}, err
	}
	a, size, err := e.sessionAt(d, paramCount)
	if err != nil {
		return Requirements{}, RooflineEstimate{}, err
	}
	req, err := a.Characterize(ctx, size, subbatch, graph.PolicyMemGreedy)
	if err != nil {
		return req, RooflineEstimate{}, err
	}
	costs := a.StepCosts(size, subbatch, costmodel.NeedsOpCosts(cm))
	step := cm.StepTime(acc, costs)
	return req, RooflineEstimate{
		CostModel:    cm.Name(),
		StepSeconds:  step,
		Utilization:  acc.Utilization(req.FLOPsPerStep, step),
		ComputeBound: cm.Bound(acc, costs) == costmodel.BoundCompute,
	}, nil
}

// Profile computes the per-op-kind and per-group cost breakdown of a
// domain's training step.
func (e *Engine) Profile(d Domain, paramCount, subbatch float64) (*Profile, error) {
	a, size, err := e.sessionAt(d, paramCount)
	if err != nil {
		return nil, err
	}
	return a.Profile(size, subbatch)
}

// AsymptoticTable fits Table 2's first-order requirement models for every
// domain through the session's compiled models.
func (e *Engine) AsymptoticTable() ([]Asymptotics, error) {
	out := make([]Asymptotics, 0, len(models.AllDomains))
	for _, d := range models.AllDomains {
		a, err := e.Analyzer(d)
		if err != nil {
			return nil, err
		}
		asym, err := a.FitAsymptotics(core.AsymptoticFitTargets(d),
			[]float64{16, 64, 256}, a.Model.DefaultBatch, graph.PolicyMemGreedy)
		if err != nil {
			return nil, err
		}
		out = append(out, asym)
	}
	return out, nil
}

// FrontierTable computes Table 3 through the session's compiled models, on
// any validated accelerator — the Table 4 target, a catalog entry, or a
// custom device — with the default step-time backend.
func (e *Engine) FrontierTable(acc Accelerator) ([]Frontier, error) {
	return e.FrontierTableWith(acc, nil)
}

// FrontierTableWith is FrontierTable under a pluggable step-time backend
// (nil means the default graph-level Roofline): subbatch choice, step
// seconds, utilization and epoch days all route through the backend.
func (e *Engine) FrontierTableWith(acc Accelerator, cm costmodel.Model) ([]Frontier, error) {
	if cm == nil {
		cm = costmodel.Default()
	}
	if err := acc.Validate(); err != nil {
		return nil, err
	}
	projs, err := scaling.ProjectAll()
	if err != nil {
		return nil, err
	}
	out := make([]Frontier, 0, len(projs))
	for _, proj := range projs {
		a, err := e.Analyzer(proj.Spec.Domain)
		if err != nil {
			return nil, err
		}
		f, err := a.ProjectFrontierWith(proj, acc, cm, graph.PolicyMemGreedy)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// WordLMCaseStudy runs the §6 parallelization plan (Table 5) on the paper's
// Table 4 target, memoized.
func (e *Engine) WordLMCaseStudy() (*CaseStudy, error) {
	return e.WordLMCaseStudyOn(hw.TargetAccelerator())
}

// maxCaseStudyEntries bounds the per-accelerator memo: generous for the
// catalog plus interactive what-ifs, while long-tail custom devices (each
// retaining a full case-study result) evict least-recently-used entries
// instead of growing the memo without bound.
const maxCaseStudyEntries = 64

// WordLMCaseStudyOn replays the §6 parallelization plan on another
// accelerator with the default step-time backend, memoizing per device
// (LRU-bounded): the case study is deterministic and several figures and
// server endpoints reuse it.
func (e *Engine) WordLMCaseStudyOn(acc Accelerator) (*CaseStudy, error) {
	return e.WordLMCaseStudyOnWith(acc, nil)
}

// WordLMCaseStudyOnWith is WordLMCaseStudyOn under a pluggable step-time
// backend (nil means the default). Results memoize per (device, canonical
// backend name), so alias spellings of one backend share an entry. The
// memo is a sharded LRU: lookups lock only the key's shard, and concurrent
// callers for one (device, backend) pair share a single computation.
func (e *Engine) WordLMCaseStudyOnWith(acc Accelerator, cm costmodel.Model) (*CaseStudy, error) {
	if cm == nil {
		cm = costmodel.Default()
	}
	if err := acc.Validate(); err != nil {
		return nil, err
	}
	key := cm.Name() + "|" + acc.Fingerprint()
	ent, _ := e.caseStudies.GetOrCreate(key, func() *caseStudyEntry {
		return &caseStudyEntry{}
	})
	ent.once.Do(func() {
		cfg := parallel.CaseStudyConfigFor(acc)
		cfg.Cost = cm
		ent.cs, ent.err = parallel.RunWordLMCaseStudy(cfg)
	})
	return ent.cs, ent.err
}

// FigureSweeps characterizes every domain across its Figure 7–10 parameter
// range at the paper's profiling subbatch sizes.
func (e *Engine) FigureSweeps() ([]SweepSeries, error) {
	out := make([]SweepSeries, 0, len(models.AllDomains))
	for _, d := range models.AllDomains {
		a, err := e.Analyzer(d)
		if err != nil {
			return nil, err
		}
		pts, err := a.SweepParams(core.DefaultSweepTargets(d), a.Model.DefaultBatch,
			graph.PolicyMemGreedy)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepSeries{Domain: d, Points: pts})
	}
	return out, nil
}

// Figure10 runs the footprint sweep with the 12 GB allocator simulation.
func (e *Engine) Figure10() ([]FootprintSeries, error) {
	out := make([]FootprintSeries, 0, len(models.AllDomains))
	for _, d := range models.AllDomains {
		a, err := e.Analyzer(d)
		if err != nil {
			return nil, err
		}
		pts, err := a.FootprintSweep(core.DefaultSweepTargets(d), a.Model.DefaultBatch,
			graph.PolicyMemGreedy)
		if err != nil {
			return nil, err
		}
		out = append(out, FootprintSeries{Domain: d, Points: pts})
	}
	return out, nil
}

// SubbatchSelection is the result of a §5.2.1 subbatch-policy sweep: the
// Figure 11 curve for one domain at a fixed parameter count on one
// accelerator, with the chosen point per policy.
type SubbatchSelection struct {
	Domain     Domain                      `json:"domain"`
	Params     float64                     `json:"params"`
	CostModel  string                      `json:"costmodel"`
	RidgePoint float64                     `json:"effective_ridge_point"`
	Points     []hw.SubbatchPoint          `json:"points"`
	Chosen     map[string]hw.SubbatchPoint `json:"chosen"`
}

// SubbatchSelect sweeps subbatch sizes (1 … 2^18) for a domain at a target
// parameter count on any validated accelerator and applies the given
// policies, with the default step-time backend. params <= 0 selects the
// domain's accuracy-frontier model size (Table 1). This is the one sweep
// pipeline behind both Figure11 and the catamountd /v1/subbatch endpoint.
func (e *Engine) SubbatchSelect(d Domain, params float64, acc Accelerator,
	policies []hw.SubbatchPolicy, tol float64) (*SubbatchSelection, error) {
	return e.SubbatchSelectWith(d, params, acc, nil, policies, tol)
}

// SubbatchSelectWith is SubbatchSelect under a pluggable step-time backend
// (nil means the default): every sweep point's step time — and therefore
// the min-time-per-sample policy choice — routes through the backend.
func (e *Engine) SubbatchSelectWith(d Domain, params float64, acc Accelerator,
	cm costmodel.Model, policies []hw.SubbatchPolicy, tol float64) (*SubbatchSelection, error) {

	if cm == nil {
		cm = costmodel.Default()
	}
	if err := acc.Validate(); err != nil {
		return nil, err
	}
	if params <= 0 {
		spec, err := scaling.SpecFor(d)
		if err != nil {
			return nil, err
		}
		proj, err := scaling.Project(spec)
		if err != nil {
			return nil, err
		}
		params = proj.TargetParams
	}
	a, err := e.Analyzer(d)
	if err != nil {
		return nil, err
	}
	size, err := a.SizeForParams(params)
	if err != nil {
		return nil, err
	}
	eval := a.StepCostEval(size, costmodel.NeedsOpCosts(cm))
	pts, err := costmodel.SubbatchSweep(eval, acc, cm, hw.PowersOfTwo(18))
	if err != nil {
		return nil, err
	}
	sel := &SubbatchSelection{
		Domain:     d,
		Params:     params,
		CostModel:  cm.Name(),
		RidgePoint: acc.EffectiveRidgePoint(),
		Points:     pts,
		Chosen:     make(map[string]hw.SubbatchPoint, len(policies)),
	}
	for _, pol := range policies {
		pt, err := hw.ChooseSubbatch(pts, acc, pol, tol)
		if err != nil {
			return nil, err
		}
		sel.Chosen[pol.String()] = pt
	}
	return sel, nil
}

// AllSubbatchPolicies lists the three §5.2.1 candidate policies.
func AllSubbatchPolicies() []hw.SubbatchPolicy {
	return []hw.SubbatchPolicy{hw.MinTimePerSample, hw.RidgePointMatch, hw.IntensitySaturation}
}

// Figure11 sweeps subbatch sizes for the frontier word LM on any validated
// accelerator with the default step-time backend.
func (e *Engine) Figure11(acc Accelerator) (*Figure11Data, error) {
	return e.Figure11With(acc, nil)
}

// Figure11With is Figure11 under a pluggable step-time backend (nil means
// the default).
func (e *Engine) Figure11With(acc Accelerator, cm costmodel.Model) (*Figure11Data, error) {
	sel, err := e.SubbatchSelectWith(WordLM, 0, acc, cm, AllSubbatchPolicies(), 0.05)
	if err != nil {
		return nil, err
	}
	return &Figure11Data{Points: sel.Points, RidgePoint: sel.RidgePoint, Chosen: sel.Chosen}, nil
}

// Figure12 sweeps data-parallel worker counts (1 → 16384) for the
// cache-aware case-study step on the Table 4 target.
func (e *Engine) Figure12() (*Figure12Data, error) {
	return e.Figure12On(hw.TargetAccelerator())
}

// Figure12On is the data-parallel scaling sweep replayed on another
// accelerator, reusing that device's memoized case study.
func (e *Engine) Figure12On(acc Accelerator) (*Figure12Data, error) {
	return e.Figure12OnWith(acc, nil)
}

// Figure12OnWith is Figure12On under a pluggable step-time backend (nil
// means the default), reusing the (device, backend) memoized case study:
// the per-worker step the sweep scales from is the case study's
// cache-aware step time under that backend.
func (e *Engine) Figure12OnWith(acc Accelerator, cm costmodel.Model) (*Figure12Data, error) {
	cs, err := e.WordLMCaseStudyOnWith(acc, cm)
	if err != nil {
		return nil, err
	}
	cfg := parallel.CaseStudyConfigFor(acc)
	dp := parallel.DataParallelConfig{
		StepTime:          cs.StepSeconds,
		StepFLOPs:         cs.StepFLOPs,
		GradientBytes:     4 * cs.Params,
		SubbatchPerWorker: cfg.Subbatch,
		EpochSamples:      cfg.EpochTokens / float64(cs.Model.SeqLen),
		Acc:               cfg.Acc,
		Link:              cfg.Link,
		Reduce:            parallel.RingAllReduceTime,
	}
	var workers []int
	for w := 1; w <= 16384; w *= 2 {
		workers = append(workers, w)
	}
	return &Figure12Data{Points: dp.Sweep(workers)}, nil
}

// defaultEngine backs the package-level convenience functions, so callers
// that stay on the simple API still share one compiled session per process.
var defaultEngine = NewEngine()

// DefaultEngine returns the shared session behind the package-level
// functions (Analyze, AsymptoticTable, FrontierTable, the figure
// generators). Long-lived callers may also hold their own NewEngine.
func DefaultEngine() *Engine { return defaultEngine }
