package catamount

import (
	"sync"

	"catamount/internal/core"
	"catamount/internal/graph"
	"catamount/internal/hw"
	"catamount/internal/models"
	"catamount/internal/parallel"
	"catamount/internal/scaling"
)

// Engine is a reusable analysis session. It memoizes each domain's built
// model together with its compiled program bundle, so repeated queries —
// table regenerations, figure sweeps, interactive what-ifs — pay the graph
// construction and expression compilation cost exactly once per domain.
//
// An Engine is safe for concurrent use. The zero value is not usable; call
// NewEngine.
type Engine struct {
	mu      sync.Mutex
	entries map[Domain]*engineEntry

	csOnce    sync.Once
	caseStudy *CaseStudy
	csErr     error
}

// engineEntry builds one domain's analyzer at most once. Builds run outside
// the engine-wide lock, so a slow first build of one domain never blocks
// memoized lookups of another.
type engineEntry struct {
	once sync.Once
	a    *core.Analyzer
	err  error
}

// NewEngine creates an empty analysis session. Models are built and compiled
// lazily, on first use of each domain.
func NewEngine() *Engine {
	return &Engine{entries: make(map[Domain]*engineEntry)}
}

// Analyzer returns the domain's compiled analysis session, building and
// compiling the model on first use.
func (e *Engine) Analyzer(d Domain) (*core.Analyzer, error) {
	e.mu.Lock()
	ent, ok := e.entries[d]
	if !ok {
		ent = &engineEntry{}
		e.entries[d] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		m, err := models.Build(d)
		if err != nil {
			ent.err = err
			return
		}
		ent.a, ent.err = core.NewAnalyzer(m)
	})
	return ent.a, ent.err
}

// Model returns the engine's memoized model for a domain. The model is
// shared: treat it as read-only.
func (e *Engine) Model(d Domain) (*Model, error) {
	a, err := e.Analyzer(d)
	if err != nil {
		return nil, err
	}
	return a.Model, nil
}

// Analyze characterizes a domain at a target parameter count and subbatch.
func (e *Engine) Analyze(d Domain, paramCount, subbatch float64) (Requirements, error) {
	a, err := e.Analyzer(d)
	if err != nil {
		return Requirements{}, err
	}
	size, err := a.SizeForParams(paramCount)
	if err != nil {
		return Requirements{}, err
	}
	return a.Characterize(size, subbatch, graph.PolicyMemGreedy)
}

// Profile computes the per-op-kind and per-group cost breakdown of a
// domain's training step.
func (e *Engine) Profile(d Domain, paramCount, subbatch float64) (*Profile, error) {
	a, err := e.Analyzer(d)
	if err != nil {
		return nil, err
	}
	size, err := a.SizeForParams(paramCount)
	if err != nil {
		return nil, err
	}
	return a.Profile(size, subbatch)
}

// AsymptoticTable fits Table 2's first-order requirement models for every
// domain through the session's compiled models.
func (e *Engine) AsymptoticTable() ([]Asymptotics, error) {
	out := make([]Asymptotics, 0, len(models.AllDomains))
	for _, d := range models.AllDomains {
		a, err := e.Analyzer(d)
		if err != nil {
			return nil, err
		}
		asym, err := a.FitAsymptotics(core.AsymptoticFitTargets(d),
			[]float64{16, 64, 256}, a.Model.DefaultBatch, graph.PolicyMemGreedy)
		if err != nil {
			return nil, err
		}
		out = append(out, asym)
	}
	return out, nil
}

// FrontierTable computes Table 3 through the session's compiled models.
func (e *Engine) FrontierTable(acc Accelerator) ([]Frontier, error) {
	projs, err := scaling.ProjectAll()
	if err != nil {
		return nil, err
	}
	out := make([]Frontier, 0, len(projs))
	for _, proj := range projs {
		a, err := e.Analyzer(proj.Spec.Domain)
		if err != nil {
			return nil, err
		}
		f, err := a.ProjectFrontier(proj, acc, graph.PolicyMemGreedy)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// WordLMCaseStudy runs the §6 parallelization plan (Table 5), memoizing the
// result: the case study is deterministic and several figures reuse it.
func (e *Engine) WordLMCaseStudy() (*CaseStudy, error) {
	e.csOnce.Do(func() {
		e.caseStudy, e.csErr = parallel.RunWordLMCaseStudy(parallel.DefaultCaseStudyConfig())
	})
	return e.caseStudy, e.csErr
}

// FigureSweeps characterizes every domain across its Figure 7–10 parameter
// range at the paper's profiling subbatch sizes.
func (e *Engine) FigureSweeps() ([]SweepSeries, error) {
	out := make([]SweepSeries, 0, len(models.AllDomains))
	for _, d := range models.AllDomains {
		a, err := e.Analyzer(d)
		if err != nil {
			return nil, err
		}
		pts, err := a.SweepParams(core.DefaultSweepTargets(d), a.Model.DefaultBatch,
			graph.PolicyMemGreedy)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepSeries{Domain: d, Points: pts})
	}
	return out, nil
}

// Figure10 runs the footprint sweep with the 12 GB allocator simulation.
func (e *Engine) Figure10() ([]FootprintSeries, error) {
	out := make([]FootprintSeries, 0, len(models.AllDomains))
	for _, d := range models.AllDomains {
		a, err := e.Analyzer(d)
		if err != nil {
			return nil, err
		}
		pts, err := a.FootprintSweep(core.DefaultSweepTargets(d), a.Model.DefaultBatch,
			graph.PolicyMemGreedy)
		if err != nil {
			return nil, err
		}
		out = append(out, FootprintSeries{Domain: d, Points: pts})
	}
	return out, nil
}

// Figure11 sweeps subbatch sizes for the frontier word LM.
func (e *Engine) Figure11(acc Accelerator) (*Figure11Data, error) {
	a, err := e.Analyzer(WordLM)
	if err != nil {
		return nil, err
	}
	spec, err := scaling.SpecFor(WordLM)
	if err != nil {
		return nil, err
	}
	proj, err := scaling.Project(spec)
	if err != nil {
		return nil, err
	}
	size, err := a.SizeForParams(proj.TargetParams)
	if err != nil {
		return nil, err
	}
	pts, err := hw.SubbatchSweep(a.StepEval(size), acc, hw.PowersOfTwo(18))
	if err != nil {
		return nil, err
	}
	data := &Figure11Data{
		Points:     pts,
		RidgePoint: acc.EffectiveRidgePoint(),
		Chosen:     make(map[string]hw.SubbatchPoint, 3),
	}
	for _, pol := range []hw.SubbatchPolicy{
		hw.MinTimePerSample, hw.RidgePointMatch, hw.IntensitySaturation,
	} {
		pt, err := hw.ChooseSubbatch(pts, acc, pol, 0.05)
		if err != nil {
			return nil, err
		}
		data.Chosen[pol.String()] = pt
	}
	return data, nil
}

// Figure12 sweeps data-parallel worker counts (1 → 16384) for the
// cache-aware case-study step.
func (e *Engine) Figure12() (*Figure12Data, error) {
	cs, err := e.WordLMCaseStudy()
	if err != nil {
		return nil, err
	}
	cfg := parallel.DefaultCaseStudyConfig()
	dp := parallel.DataParallelConfig{
		StepTime:          cfg.Acc.StepTime(cs.StepFLOPs, cs.CacheAwareBytes),
		StepFLOPs:         cs.StepFLOPs,
		GradientBytes:     4 * cs.Params,
		SubbatchPerWorker: cfg.Subbatch,
		EpochSamples:      cfg.EpochTokens / float64(cs.Model.SeqLen),
		Acc:               cfg.Acc,
		Link:              cfg.Link,
		Reduce:            parallel.RingAllReduceTime,
	}
	var workers []int
	for w := 1; w <= 16384; w *= 2 {
		workers = append(workers, w)
	}
	return &Figure12Data{Points: dp.Sweep(workers)}, nil
}

// defaultEngine backs the package-level convenience functions, so callers
// that stay on the simple API still share one compiled session per process.
var defaultEngine = NewEngine()

// DefaultEngine returns the shared session behind the package-level
// functions (Analyze, AsymptoticTable, FrontierTable, the figure
// generators). Long-lived callers may also hold their own NewEngine.
func DefaultEngine() *Engine { return defaultEngine }
