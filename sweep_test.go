package catamount_test

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	cat "catamount"
)

// sweepTestEngine shares one compiled session across the sweep tests.
var sweepTestEngine = cat.NewEngine()

func catalogNames(t *testing.T) []string {
	t.Helper()
	accs := cat.Accelerators()
	names := make([]string, len(accs))
	for i, a := range accs {
		names[i] = a.Name
	}
	return names
}

// TestSweepMatchesAnalyzePointwise pins the amortization to correctness:
// every sweep point must carry exactly the numbers the one-point Analyze
// path computes — same size solve, same characterization, same Roofline.
func TestSweepMatchesAnalyzePointwise(t *testing.T) {
	eng := sweepTestEngine
	spec := cat.SweepSpec{
		Domains:      []string{"wordlm", "nmt"},
		Params:       []float64{1e8, 3e8},
		Subbatches:   []float64{32, 128},
		Accelerators: []string{"v100", "a100"},
	}
	pts, err := eng.SweepAll(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2*2*2*2 {
		t.Fatalf("grid has %d points, want 16", len(pts))
	}
	for i, p := range pts {
		if p.Seq != i {
			t.Fatalf("point %d has seq %d", i, p.Seq)
		}
		if p.Error != "" {
			t.Fatalf("point %d failed: %s", i, p.Error)
		}
		want, err := eng.Analyze(p.Domain, p.ParamTarget, p.Subbatch)
		if err != nil {
			t.Fatal(err)
		}
		if p.Requirements == nil || *p.Requirements != want {
			t.Fatalf("point %d requirements diverge from Analyze:\n got %+v\nwant %+v",
				i, p.Requirements, want)
		}
		acc, err := cat.AcceleratorByName(p.Accelerator)
		if err != nil {
			t.Fatal(err)
		}
		if step := acc.StepTime(want.FLOPsPerStep, want.BytesPerStep); p.StepSeconds != step {
			t.Fatalf("point %d step %v != Roofline %v", i, p.StepSeconds, step)
		}
	}
}

// TestSweepDeterministicOrder runs the same grid twice and requires
// byte-identical streams: worker scheduling must never leak into output
// order or content.
func TestSweepDeterministicOrder(t *testing.T) {
	spec := cat.SweepSpec{
		Params:       []float64{5e7, 2e8},
		Subbatches:   []float64{32},
		Accelerators: catalogNames(t),
		Workers:      4,
	}
	var runs [2]*bytes.Buffer
	for i := range runs {
		runs[i] = &bytes.Buffer{}
		err := sweepTestEngine.Sweep(context.Background(), spec, func(p cat.SweepPoint) error {
			fmt.Fprintf(runs[i], "%d %s %s %g %g %g\n",
				p.Seq, p.Domain, p.Accelerator, p.ParamTarget, p.Subbatch, p.StepSeconds)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(runs[0].Bytes(), runs[1].Bytes()) {
		t.Fatalf("same grid, different streams:\n%s\nvs\n%s", runs[0], runs[1])
	}
}

// TestWriteFrontierGridByteIdentical is the acceptance criterion for the
// cmd/sweep -table3 mode: the grid writer must reproduce, byte for byte,
// what looping FrontierTable + PrintTable3For produces.
func TestWriteFrontierGridByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("frontier projections sweep every domain")
	}
	eng := sweepTestEngine
	accs := cat.Accelerators()

	var got bytes.Buffer
	if err := eng.WriteFrontierGrid(&got, accs); err != nil {
		t.Fatal(err)
	}

	var want bytes.Buffer
	for i, acc := range accs {
		if i > 0 {
			fmt.Fprintln(&want)
		}
		rows, err := eng.FrontierTable(acc)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&want, "Table 3: training requirements projected to target accuracy on %s\n", acc.Name)
		cat.PrintTable3For(&want, rows, acc)
	}

	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("grid output diverges from the FrontierTable loop:\n--- grid ---\n%s\n--- loop ---\n%s",
			got.String(), want.String())
	}
}

// TestSweepAtLeast5xFasterThanAnalyzeLoop pins the PR's acceptance
// criterion: a full five-domain × five-accelerator grid through
// Engine.Sweep must run at least 5x faster than the equivalent per-point
// Engine.Analyze loop. Two mechanisms stack: each cell's characterization
// (footprint traversal included) is shared by all five accelerators where
// the loop pays it per point, and cells fan out across the worker pool.
// The serial amortization alone approaches 5x exactly, so the wall-clock
// floor needs at least two cores of parallelism for stable margin — true
// of the CI runners that pin it; single-core machines skip.
func TestSweepAtLeast5xFasterThanAnalyzeLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison runs full grids")
	}
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("5x floor = 5x accelerator amortization × worker parallelism; needs >= 2 cores")
	}
	eng := cat.NewEngine()
	domains := cat.Domains()
	params := []float64{1e8, 1e9}
	subbatches := []float64{32, 128}
	accs := cat.Accelerators()
	if len(domains) != 5 || len(accs) != 5 {
		t.Fatalf("grid is %d domains × %d accelerators, want 5 × 5", len(domains), len(accs))
	}
	spec := cat.SweepSpec{
		Params:       params,
		Subbatches:   subbatches,
		Accelerators: catalogNames(t),
	}

	// Warm the session (build + compile every domain) outside both timings:
	// the comparison is evaluation cost, which both paths pay per point.
	if _, err := eng.SweepAll(context.Background(), spec); err != nil {
		t.Fatal(err)
	}

	// Best-of-3 keeps one scheduling hiccup in the short sweep measurement
	// from failing the ratio on a loaded machine.
	var sweepElapsed time.Duration
	for i := 0; i < 3; i++ {
		start := time.Now()
		pts, err := eng.SweepAll(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != len(domains)*len(params)*len(subbatches)*len(accs) {
			t.Fatalf("sweep yielded %d points", len(pts))
		}
		if d := time.Since(start); sweepElapsed == 0 || d < sweepElapsed {
			sweepElapsed = d
		}
	}

	// The per-point path: one Engine.Analyze per grid point, exactly what a
	// client regenerating the grid through the one-point API pays.
	start := time.Now()
	n := 0
	for _, d := range domains {
		for _, p := range params {
			for _, b := range subbatches {
				for _, acc := range accs {
					req, err := eng.Analyze(d, p, b)
					if err != nil {
						t.Fatal(err)
					}
					_ = acc.StepTime(req.FLOPsPerStep, req.BytesPerStep)
					n++
				}
			}
		}
	}
	loopElapsed := time.Since(start)

	t.Logf("sweep %v vs analyze loop %v over %d points (%.1fx)",
		sweepElapsed, loopElapsed, n, float64(loopElapsed)/float64(sweepElapsed))
	if sweepElapsed*5 > loopElapsed {
		t.Fatalf("Engine.Sweep %v not 5x faster than Engine.Analyze loop %v",
			sweepElapsed, loopElapsed)
	}
}
