package catamount

import (
	"context"
	"sync"
	"testing"
)

// smallPlanSpec keeps Engine.Plan tests fast: one domain, two devices,
// a handful of worker counts.
func smallPlanSpec() PlanSpec {
	return PlanSpec{
		Domain:       "wordlm",
		Accelerators: []string{"v100", "cpu"},
		Subbatches:   []float64{32},
		WorkerCounts: []int{1, 16, 256},
	}
}

// TestEnginePlanMemoized checks that repeated and concurrent searches for
// one key share a single computation (pointer identity), that alias
// spellings share the memo entry, and that distinct targets memoize
// separately.
func TestEnginePlanMemoized(t *testing.T) {
	eng := NewEngine()
	const goroutines = 8
	results := make([]*PlanResult, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := eng.Plan(smallPlanSpec())
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = res
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if results[g] != results[0] {
			t.Fatalf("goroutine %d got a different result pointer: memo did not coalesce", g)
		}
	}

	// Alias spelling resolves to the same canonical key, so it shares the
	// memo entry rather than recomputing.
	spec := smallPlanSpec()
	spec.Accelerators = []string{"target-v100-class", "cpu-class"}
	aliased, err := eng.Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if aliased != results[0] {
		t.Fatal("alias spelling missed the memo")
	}

	// A different target is a different entry.
	other := smallPlanSpec()
	other.TargetErr = 3.0
	res, err := eng.Plan(other)
	if err != nil {
		t.Fatal(err)
	}
	if res == results[0] {
		t.Fatal("distinct targets shared one memo entry")
	}
	if res.Target.TargetErr != 3.0 {
		t.Fatalf("resolved target err = %g, want 3.0", res.Target.TargetErr)
	}
}

func TestEnginePlanSearchUnmemoized(t *testing.T) {
	eng := NewEngine()
	a, err := eng.PlanSearch(context.Background(), smallPlanSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.PlanSearch(context.Background(), smallPlanSpec())
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("PlanSearch returned a shared pointer: should be unmemoized")
	}
	if len(a.Frontier) == 0 || len(a.Frontier) != len(b.Frontier) {
		t.Fatalf("frontiers differ: %d vs %d", len(a.Frontier), len(b.Frontier))
	}
	if _, err := eng.PlanSearch(context.Background(), PlanSpec{Domain: "nope"}); err == nil {
		t.Fatal("invalid spec not rejected")
	}
}
