module catamount

go 1.24
