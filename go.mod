module catamount

go 1.23
