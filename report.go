package catamount

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"catamount/internal/hw"
)

// PrintTable1 renders the accuracy-scaling projections (paper Table 1).
func PrintTable1(w io.Writer, projs []Projection) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Domain\tCurrent SOTA\tDesired SOTA\tCurrent Data\tData Scale (computed)\tData Scale (paper)\tModel Scale (computed)\tModel Scale (paper)")
	for _, p := range projs {
		s := p.Spec
		fmt.Fprintf(tw, "%s\t%.3g %s\t%.3g %s\t%.3g %s\t%.0fx\t%.0fx\t%.1fx\t%.1fx\n",
			s.Name, s.CurrentSOTA, s.Metric, s.DesiredSOTA, s.Metric,
			s.CurrentDataSamples, s.SampleUnit,
			p.ComputedDataScale, p.PaperDataScale,
			p.ComputedModelScale, p.PaperModelScale)
	}
	tw.Flush()
}

// PrintTable2 renders the fitted asymptotic requirement models
// (paper Table 2).
func PrintTable2(w io.Writer, asyms []Asymptotics) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Domain\tAlg compute (FLOPs/param)\tAlg memory (Bytes/param)\tAlg op intensity (FLOP/B)\tMin footprint (Bytes/param)")
	for _, a := range asyms {
		fmt.Fprintf(tw, "%s\t%.0f b\t%.0f + %.0f b/sqrt(p)\t%s\t%.2f\n",
			a.Domain, a.Gamma, a.Lambda, a.Mu, a.IntensityForm(), a.Delta)
	}
	tw.Flush()
}

// PrintTable3 renders the frontier training requirements (paper Table 3)
// against the paper's Table 4 target.
func PrintTable3(w io.Writer, rows []Frontier) {
	PrintTable3For(w, rows, TargetAccelerator())
}

// PrintTable3For renders Table 3 with the memory-multiple column labeled
// for the accelerator the rows were projected on.
func PrintTable3For(w io.Writer, rows []Frontier, acc Accelerator) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Domain\tData size\tParams\tSubbatch\tTFLOPs/step\tTB/step\tMin mem (GB)\tStep (s)\tEpoch (days)\tMem multiple of %.0fGB\n",
		acc.MemCapacity/1e9)
	for _, f := range rows {
		fmt.Fprintf(tw, "%s\t%.3g %s\t%.3g\t%.0f\t%.0f\t%.1f\t%.0f\t%.1f\t%.3g\t%.1fx\n",
			f.Spec.Name, f.TargetDataSamples, f.Spec.SampleUnit, f.TargetParams,
			f.Subbatch, f.TFLOPsPerStep, f.TBPerStep, f.FootprintGB,
			f.StepSeconds, f.EpochDays, f.MemoryMultiple)
	}
	tw.Flush()
}

// PrintTable4 renders the target accelerator configuration (paper Table 4).
func PrintTable4(w io.Writer, acc Accelerator) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Component\tConfiguration")
	fmt.Fprintf(tw, "Compute Throughput, 32-bit\t%.2f TFLOP/s\n", acc.PeakFLOPS/1e12)
	fmt.Fprintf(tw, "On-chip Cache\t%.0f MB\n", acc.CacheBytes/1e6)
	fmt.Fprintf(tw, "Memory Bandwidth\t%.0f GB/s\n", acc.MemBandwidth/1e9)
	fmt.Fprintf(tw, "Memory Capacity (off-chip)\t%.0f GB\n", acc.MemCapacity/1e9)
	fmt.Fprintf(tw, "Inter-device Bandwidth\t%.0f GB/s\n", acc.InterconnectBW/1e9)
	fmt.Fprintf(tw, "Ridge point\t%.1f FLOP/B (%.1f achievable)\n",
		acc.RidgePoint(), acc.EffectiveRidgePoint())
	tw.Flush()
}

// PrintTable5 renders the word-LM case study (paper Table 5) against the
// paper's Table 4 target.
func PrintTable5(w io.Writer, cs *CaseStudy) {
	PrintTable5For(w, cs, TargetAccelerator())
}

// PrintTable5For renders Table 5 with the capacity column labeled for the
// accelerator the case study ran on.
func PrintTable5For(w io.Writer, cs *CaseStudy, acc Accelerator) {
	fmt.Fprintf(w, "Case-study word LM: %s\n", cs.Model.Name)
	fmt.Fprintf(w, "  solved hidden width %.0f -> %.3g parameters\n", cs.Size, cs.Params)
	fmt.Fprintf(w, "  per-step: %.1f TFLOPs, %.2f TB algorithmic, %.2f TB cache-aware\n\n",
		cs.StepFLOPs/1e12, cs.AlgBytes/1e12, cs.CacheAwareBytes/1e12)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Optimization Stage\tAccels\tBatch\tMem/Accel (GB)\tDays/epoch\tAlg FLOP util\tFits %.0fGB\n",
		acc.MemCapacity/1e9)
	for _, st := range cs.Stages {
		mem := ""
		for i, v := range st.MemPerAccelGB {
			if i > 0 {
				mem += ", "
			}
			mem += fmt.Sprintf("%.0f", v)
		}
		if len(st.MemPerAccelGB) > 1 {
			mem = "{" + mem + "}"
		}
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%s\t%.1f\t%.1f%%\t%v\n",
			st.Name, st.Accels, st.GlobalBatch, mem, st.DaysPerEpoch,
			100*st.Utilization, st.Fits)
	}
	tw.Flush()
}

// PrintAcceleratorCatalog lists every catalog preset with its Roofline
// numbers, pricing, and accepted aliases — the -list-accels output shared
// by every accelerator-taking CLI, so users can discover valid names
// instead of guessing.
func PrintAcceleratorCatalog(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Name\tPeak TFLOP/s\tMem GB\tBW GB/s\tLink GB/s\t$/hr\tTDP W\tAliases")
	for _, a := range hw.Catalog() {
		cost := "unpriced"
		if a.Priced() {
			cost = fmt.Sprintf("%.2f", a.CostPerHourUSD)
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.0f\t%.0f\t%.0f\t%s\t%.0f\t%s\n",
			a.Name, a.PeakFLOPS/1e12, a.MemCapacity/1e9, a.MemBandwidth/1e9,
			a.InterconnectBW/1e9, cost, a.TDPWatts,
			strings.Join(hw.AliasesFor(a.Name), ", "))
	}
	tw.Flush()
}

// PrintRequirements renders one characterization report.
func PrintRequirements(w io.Writer, r Requirements) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Model\t%s\n", r.Name)
	fmt.Fprintf(tw, "Size hyperparameter\t%.1f\n", r.Size)
	fmt.Fprintf(tw, "Subbatch\t%.0f\n", r.Batch)
	fmt.Fprintf(tw, "Parameters\t%.4g\n", r.Params)
	fmt.Fprintf(tw, "Algorithmic FLOPs/step\t%.4g\n", r.FLOPsPerStep)
	fmt.Fprintf(tw, "Algorithmic FLOPs/step/sample\t%.4g\n", r.FLOPsPerSample)
	fmt.Fprintf(tw, "FLOPs per parameter per sample\t%.1f\n", r.FLOPsPerSample/r.Params)
	fmt.Fprintf(tw, "Algorithmic bytes/step\t%.4g\n", r.BytesPerStep)
	fmt.Fprintf(tw, "Operational intensity\t%.2f FLOP/B\n", r.Intensity)
	fmt.Fprintf(tw, "Minimal memory footprint\t%.3f GB (%.2f B/param)\n",
		r.FootprintBytes/1e9, r.FootprintBytes/r.Params)
	fmt.Fprintf(tw, "  persistent (weights+opt)\t%.3f GB\n", r.PersistentBytes/1e9)
	fmt.Fprintf(tw, "Backward/forward FLOP ratio\t%.2f\n", r.BwdFLOPs/r.FwdFLOPs)
	tw.Flush()
}

// WriteSweepCSV emits Figures 7–9 series as CSV: one row per point with
// params, per-sample GFLOPs, per-step GB, and operational intensity.
func WriteSweepCSV(w io.Writer, series []SweepSeries) {
	fmt.Fprintln(w, "domain,params,gflops_per_step_per_sample,gb_accessed_per_step,op_intensity")
	for _, s := range series {
		for _, p := range s.Points {
			fmt.Fprintf(w, "%s,%.6g,%.6g,%.6g,%.6g\n",
				fmtDomain(s.Domain), p.Params, p.FLOPsPerSample/1e9,
				p.BytesPerStep/1e9, p.Intensity)
		}
	}
}

// WriteFootprintCSV emits Figure 10 as CSV, including the simulated
// allocator view.
func WriteFootprintCSV(w io.Writer, series []FootprintSeries) {
	fmt.Fprintln(w, "domain,params,footprint_gb,allocator_gb,swapping")
	for _, s := range series {
		for _, p := range s.Points {
			fmt.Fprintf(w, "%s,%.6g,%.6g,%.6g,%v\n",
				fmtDomain(s.Domain), p.Params, p.FootprintBytes/1e9,
				p.AllocatorReport.DeviceBytes/1e9, p.AllocatorReport.Swapping)
		}
	}
}

// WriteFigure11CSV emits the subbatch sweep as CSV. The chosen-policy
// comment lines are emitted in sorted order so the output is
// deterministic (map iteration order is not).
func WriteFigure11CSV(w io.Writer, data *Figure11Data) {
	fmt.Fprintf(w, "# effective ridge point: %.2f FLOP/B\n", data.RidgePoint)
	names := make([]string, 0, len(data.Chosen))
	for name := range data.Chosen {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pt := data.Chosen[name]
		fmt.Fprintf(w, "# chosen[%s]: subbatch=%.0f intensity=%.2f time_per_sample=%.4g\n",
			name, pt.Subbatch, pt.Intensity, pt.TimePerSample)
	}
	fmt.Fprintln(w, "subbatch,op_intensity,step_time_s,time_per_sample_s,utilization")
	for _, p := range data.Points {
		fmt.Fprintf(w, "%.0f,%.6g,%.6g,%.6g,%.6g\n",
			p.Subbatch, p.Intensity, p.StepTime, p.TimePerSample, p.Utilization)
	}
}

// WriteFigure12CSV emits the data-parallel scaling sweep as CSV.
func WriteFigure12CSV(w io.Writer, data *Figure12Data) {
	fmt.Fprintln(w, "workers,global_batch,step_time_s,comm_time_s,epoch_days,utilization")
	for _, p := range data.Points {
		fmt.Fprintf(w, "%d,%.0f,%.6g,%.6g,%.6g,%.6g\n",
			p.Workers, p.GlobalBatch, p.StepTime, p.CommTime, p.EpochDays, p.Utilization)
	}
}

// WriteFigure6CSV emits the learning-curve sketch as CSV.
func WriteFigure6CSV(w io.Writer, pts []LearningCurvePoint) {
	fmt.Fprintln(w, "data_samples,error,region")
	for _, p := range pts {
		fmt.Fprintf(w, "%.6g,%.6g,%s\n", p.DataSamples, p.Error, p.Region)
	}
}
