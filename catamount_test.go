package catamount_test

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	cat "catamount"
)

func TestBuildAllDomains(t *testing.T) {
	for _, d := range cat.Domains() {
		m, err := cat.Build(d)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if m.Domain != d {
			t.Fatalf("%s: wrong domain %s", d, m.Domain)
		}
	}
}

func TestAnalyzeWordLMHeadlineNumbers(t *testing.T) {
	// Current-SOTA word LM at the paper's profiling subbatch: the paper's
	// characterization lands at ~481 FLOPs/param/sample (γ), ~12 B/param
	// footprint, and moderate (20–40 FLOP/B) operational intensity.
	r, err := cat.Analyze(cat.WordLM, 1.03e9, 128)
	if err != nil {
		t.Fatal(err)
	}
	gamma := r.FLOPsPerSample / r.Params
	if gamma < 300 || gamma > 500 {
		t.Fatalf("FLOPs/param/sample = %.0f, paper ~481", gamma)
	}
	perParam := r.FootprintBytes / r.Params
	if perParam < 10 || perParam > 20 {
		t.Fatalf("footprint = %.1f B/param, paper ~11.94", perParam)
	}
	if r.Intensity < 20 || r.Intensity > 45 {
		t.Fatalf("intensity = %.1f, paper shows moderate RNN intensity", r.Intensity)
	}
}

func TestAnalyzeUnknownDomain(t *testing.T) {
	if _, err := cat.Analyze(cat.Domain("bogus"), 1e6, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestAccuracyProjectionsTable1(t *testing.T) {
	projs, err := cat.AccuracyProjections()
	if err != nil {
		t.Fatal(err)
	}
	if len(projs) != 5 {
		t.Fatalf("rows = %d", len(projs))
	}
	var buf bytes.Buffer
	cat.PrintTable1(&buf, projs)
	out := buf.String()
	for _, want := range []string{"Word LMs", "Character LMs", "NMT", "Speech", "Image"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestAsymptoticTableOrderings(t *testing.T) {
	if testing.Short() {
		t.Skip("fits Table 2 asymptotes across all domains")
	}
	asyms, err := cat.AsymptoticTable()
	if err != nil {
		t.Fatal(err)
	}
	g := map[cat.Domain]cat.Asymptotics{}
	for _, a := range asyms {
		g[a.Domain] = a
	}
	// γ ordering (paper Table 2: 1111 > 900 > 775 > 481 > 149).
	order := []cat.Domain{cat.ImageCl, cat.CharLM, cat.Speech, cat.WordLM, cat.NMT}
	for i := 1; i < len(order); i++ {
		if g[order[i-1]].Gamma <= g[order[i]].Gamma {
			t.Fatalf("gamma ordering violated: %s (%.0f) <= %s (%.0f)",
				order[i-1], g[order[i-1]].Gamma, order[i], g[order[i]].Gamma)
		}
	}
	// λ ordering: RNNs re-stream weights per timestep; CNNs do not
	// (paper: 3510/3100/1755/533 vs 66.7).
	if g[cat.ImageCl].Lambda >= g[cat.NMT].Lambda {
		t.Fatal("ResNet lambda should be far below every RNN's")
	}
	if g[cat.CharLM].Lambda <= g[cat.WordLM].Lambda {
		t.Fatal("char LM (q=150) must out-stream word LM (q=80)")
	}
	// Word LM specifics vs the paper's 481 and 1755.
	if math.Abs(g[cat.WordLM].Gamma-481)/481 > 0.1 {
		t.Fatalf("wordlm gamma = %.0f, paper 481", g[cat.WordLM].Gamma)
	}
	if math.Abs(g[cat.WordLM].Lambda-1755)/1755 > 0.15 {
		t.Fatalf("wordlm lambda = %.0f, paper 1755", g[cat.WordLM].Lambda)
	}
	// NMT gamma ≈ 149.
	if math.Abs(g[cat.NMT].Gamma-149)/149 > 0.1 {
		t.Fatalf("nmt gamma = %.0f, paper 149", g[cat.NMT].Gamma)
	}
	// Language-model footprints have the ~12 B/param floor.
	if g[cat.WordLM].Delta < 11 {
		t.Fatalf("wordlm delta = %.1f", g[cat.WordLM].Delta)
	}
	var buf bytes.Buffer
	cat.PrintTable2(&buf, asyms)
	if !strings.Contains(buf.String(), "sqrt(p)") {
		t.Fatal("table 2 missing intensity form")
	}
}

func TestFrontierTable3Segmentation(t *testing.T) {
	if testing.Short() {
		t.Skip("projects Table 3 across all domains")
	}
	rows, err := cat.FrontierTable(cat.TargetAccelerator())
	if err != nil {
		t.Fatal(err)
	}
	byDomain := map[cat.Domain]cat.Frontier{}
	for _, r := range rows {
		byDomain[r.Spec.Domain] = r
	}
	// The paper's headline segmentation: language domains need 100x+ more
	// epoch time than speech/vision; char LM is the extreme.
	charlm, wordlm := byDomain[cat.CharLM], byDomain[cat.WordLM]
	speech, image := byDomain[cat.Speech], byDomain[cat.ImageCl]
	if charlm.EpochDays < 100*speech.EpochDays {
		t.Fatalf("char LM epoch (%.3g days) should dwarf speech (%.3g days)",
			charlm.EpochDays, speech.EpochDays)
	}
	if wordlm.EpochDays < 10*image.EpochDays {
		t.Fatalf("word LM epoch (%.3g) should dwarf image (%.3g)",
			wordlm.EpochDays, image.EpochDays)
	}
	// Speech and image are within reach (paper: ~3 months per epoch).
	if speech.EpochDays > 150 || image.EpochDays > 150 {
		t.Fatalf("speech/image epochs too long: %.3g / %.3g days",
			speech.EpochDays, image.EpochDays)
	}
	// Language footprints exceed the 32 GB accelerator many times over
	// (paper: 8–100x); vision/speech are modest.
	if wordlm.MemoryMultiple < 5 || charlm.MemoryMultiple < 20 {
		t.Fatalf("LM memory multiples too small: %.1f / %.1f",
			wordlm.MemoryMultiple, charlm.MemoryMultiple)
	}
	if image.MemoryMultiple > 2 {
		t.Fatalf("image memory multiple = %.1f, should be modest", image.MemoryMultiple)
	}
	// Word LM step time ~115 s in the paper.
	if wordlm.StepSeconds < 50 || wordlm.StepSeconds > 250 {
		t.Fatalf("wordlm step = %.1f s, paper 115 s", wordlm.StepSeconds)
	}
	var buf bytes.Buffer
	cat.PrintTable3(&buf, rows)
	if !strings.Contains(buf.String(), "Epoch") {
		t.Fatal("table 3 header missing")
	}
}

func TestTargetAcceleratorTable4(t *testing.T) {
	acc := cat.TargetAccelerator()
	if acc.PeakFLOPS != 15.67e12 || acc.MemCapacity != 32e9 {
		t.Fatalf("unexpected accelerator: %+v", acc)
	}
	var buf bytes.Buffer
	cat.PrintTable4(&buf, acc)
	for _, want := range []string{"15.67 TFLOP/s", "6 MB", "898 GB/s", "32 GB", "56 GB/s"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("table 4 missing %q", want)
		}
	}
}

func TestCaseStudyTable5(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full parallelization case study")
	}
	cs, err := cat.WordLMCaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cat.PrintTable5(&buf, cs)
	out := buf.String()
	for _, want := range []string{"Best-case", "Cache-hierarchy-aware",
		"Data Parallelism", "Layer Parallelism", "Shard the Embedding"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 5 missing %q", want)
		}
	}
}

func TestFigure6Regions(t *testing.T) {
	pts, err := cat.Figure6(cat.WordLM)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 10 {
		t.Fatalf("points = %d", len(pts))
	}
	var buf bytes.Buffer
	cat.WriteFigure6CSV(&buf, pts)
	if !strings.Contains(buf.String(), "power-law") {
		t.Fatal("missing power-law region")
	}
}

func TestFigureSweepsCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps every domain across its figure range")
	}
	series, err := cat.FigureSweeps()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("series = %d", len(series))
	}
	var buf bytes.Buffer
	cat.WriteSweepCSV(&buf, series)
	head := strings.SplitN(buf.String(), "\n", 2)[0]
	if head != "domain,params,gflops_per_step_per_sample,gb_accessed_per_step,op_intensity" {
		t.Fatalf("bad header: %q", head)
	}
	// Figure 7 shape: per-sample FLOPs grow linearly -> ratio of last to
	// first point tracks the params ratio.
	for _, s := range series {
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		paramRatio := last.Params / first.Params
		flopsRatio := last.FLOPsPerSample / first.FLOPsPerSample
		if flopsRatio < 0.4*paramRatio || flopsRatio > 2.5*paramRatio {
			t.Fatalf("%s: FLOPs growth (%.1fx) far from linear in params (%.1fx)",
				s.Domain, flopsRatio, paramRatio)
		}
		// Figure 9 shape: intensity levels off (sublinear growth).
		if last.Intensity < first.Intensity {
			t.Fatalf("%s: intensity decreased with model size", s.Domain)
		}
	}
}

func TestFigure10AllocatorPlateau(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps every domain footprint range")
	}
	series, err := cat.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	var sawSwap bool
	for _, s := range series {
		for _, p := range s.Points {
			if p.AllocatorReport.DeviceBytes > 9.6e9+1 {
				t.Fatalf("%s: allocator view above 9.6 GB cap", s.Domain)
			}
			if p.AllocatorReport.Swapping {
				sawSwap = true
			}
		}
	}
	if !sawSwap {
		t.Fatal("no domain hit the 12 GB profiling-GPU cap (paper's Figure 10 does)")
	}
	var buf bytes.Buffer
	cat.WriteFootprintCSV(&buf, series)
	if !strings.Contains(buf.String(), "allocator_gb") {
		t.Fatal("CSV header missing")
	}
}

func TestFigure11SubbatchChoices(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps frontier word-LM subbatches")
	}
	acc := cat.TargetAccelerator()
	data, err := cat.Figure11(acc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(data.RidgePoint-acc.EffectiveRidgePoint()) > 1e-9 {
		t.Fatal("ridge point mismatch")
	}
	minT := data.Chosen["min-time-per-sample"]
	ridge := data.Chosen["ridge-point-match"]
	sat := data.Chosen["intensity-saturation"]
	// Paper §5.2.1: ridge-match <= min-time << saturation, with min-time
	// settling near the paper's subbatch 128 (we accept a small multiple).
	if !(ridge.Subbatch <= minT.Subbatch && minT.Subbatch < sat.Subbatch) {
		t.Fatalf("policy ordering broken: ridge=%v min=%v sat=%v",
			ridge.Subbatch, minT.Subbatch, sat.Subbatch)
	}
	if minT.Subbatch < 32 || minT.Subbatch > 1024 {
		t.Fatalf("min-time subbatch = %v, paper chose 128", minT.Subbatch)
	}
	ratio := minT.Subbatch / ridge.Subbatch
	if ratio < 1 || ratio > 8 {
		t.Fatalf("min-time / ridge subbatch ratio = %v, paper ~1.5", ratio)
	}
	var buf bytes.Buffer
	cat.WriteFigure11CSV(&buf, data)
	if !strings.Contains(buf.String(), "ridge point") {
		t.Fatal("CSV missing ridge point annotation")
	}
}

func TestFigure12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the case study and data-parallel sweep")
	}
	data, err := cat.Figure12()
	if err != nil {
		t.Fatal(err)
	}
	pts := data.Points
	if len(pts) < 10 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].EpochDays >= pts[i-1].EpochDays {
			t.Fatalf("epoch days not decreasing at %d workers", pts[i].Workers)
		}
		if pts[i].Utilization > pts[i-1].Utilization+1e-12 {
			t.Fatalf("utilization increased at %d workers", pts[i].Workers)
		}
	}
	// The paper reaches ~6.2 days at 1024 workers; ours should land within
	// a small factor (the sized case-study model differs slightly).
	for _, p := range pts {
		if p.Workers == 1024 {
			if p.EpochDays > 31 || p.EpochDays < 0.1 {
				t.Fatalf("1024-worker epoch = %.2f days, paper ~6.2", p.EpochDays)
			}
		}
	}
	var buf bytes.Buffer
	cat.WriteFigure12CSV(&buf, data)
	if !strings.Contains(buf.String(), "workers,") {
		t.Fatal("CSV header missing")
	}
}

func TestSpecForAllDomains(t *testing.T) {
	for _, d := range cat.Domains() {
		spec, err := cat.SpecFor(d)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Domain != d {
			t.Fatalf("spec domain mismatch for %s", d)
		}
	}
}

func TestCheckpointRoundTripViaFacade(t *testing.T) {
	m, err := cat.Build(cat.NMT)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cat.SaveCheckpoint(&buf, m); err != nil {
		t.Fatal(err)
	}
	g, err := cat.LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes()) != len(m.Graph.Nodes()) {
		t.Fatalf("nodes %d vs %d", len(g.Nodes()), len(m.Graph.Nodes()))
	}
	// The reloaded graph analyzes identically.
	env := m.Env(512, 16)
	a, err := m.Graph.EvalStats(env)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.EvalStats(env)
	if err != nil {
		t.Fatal(err)
	}
	if a.FLOPs != b.FLOPs || a.Bytes != b.Bytes || a.Params != b.Params {
		t.Fatalf("stats changed: %+v vs %+v", a, b)
	}
}

func TestProfileModelFacade(t *testing.T) {
	m, err := cat.Build(cat.WordLM)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cat.ProfileModel(m, 1e8, 32)
	if err != nil {
		t.Fatal(err)
	}
	if p.ByKind[0].Kind != "matmul" {
		t.Fatalf("top kind %s", p.ByKind[0].Kind)
	}
	if p.IOBytes <= 0 {
		t.Fatal("no IO reported")
	}
	var buf bytes.Buffer
	p.Print(&buf, 5)
	if !strings.Contains(buf.String(), "matmul") {
		t.Fatal("profile print missing matmul")
	}
}

func TestPrintRequirementsReport(t *testing.T) {
	r, err := cat.Analyze(cat.ImageCl, 61e6, 32)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cat.PrintRequirements(&buf, r)
	for _, want := range []string{"Parameters", "Operational intensity", "footprint"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestEngineMatchesPackageLevelAnalyze(t *testing.T) {
	eng := cat.NewEngine()
	got, err := eng.Analyze(cat.WordLM, 1e8, 32)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cat.Analyze(cat.WordLM, 1e8, 32)
	if err != nil {
		t.Fatal(err)
	}
	if got.Params != want.Params || got.FLOPsPerStep != want.FLOPsPerStep ||
		got.BytesPerStep != want.BytesPerStep || got.FootprintBytes != want.FootprintBytes {
		t.Fatalf("engine %+v != package-level %+v", got, want)
	}
}

func TestEngineMemoizesAnalyzers(t *testing.T) {
	eng := cat.NewEngine()
	a1, err := eng.Analyzer(cat.ImageCl)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := eng.Analyzer(cat.ImageCl)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("engine rebuilt an analyzer for the same domain")
	}
	m, err := eng.Model(cat.ImageCl)
	if err != nil {
		t.Fatal(err)
	}
	if m != a1.Model {
		t.Fatal("engine model is not the analyzer's model")
	}
	if _, err := eng.Analyzer(cat.Domain("bogus")); err == nil {
		t.Fatal("expected error for unknown domain")
	}
}

func TestEngineProfile(t *testing.T) {
	eng := cat.NewEngine()
	p, err := eng.Profile(cat.WordLM, 1e8, 32)
	if err != nil {
		t.Fatal(err)
	}
	if p.ByKind[0].Kind != "matmul" {
		t.Fatalf("top kind %s", p.ByKind[0].Kind)
	}
	if p.IOBytes <= 0 {
		t.Fatal("no IO reported")
	}
}

func TestEngineConcurrentQueries(t *testing.T) {
	eng := cat.NewEngine()
	// The two smallest graphs keep this fast under -short while still
	// exercising concurrent memoization and evaluation.
	domains := []cat.Domain{cat.ImageCl, cat.NMT}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if _, err := eng.Analyze(domains[w%len(domains)], 5e7, 16); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestSharedModelExprConcurrentAccess(t *testing.T) {
	// Engine.Model hands the same *Model to every caller; its lazy
	// expression caches must be pre-warmed so concurrent access is safe.
	eng := cat.NewEngine()
	m, err := eng.Model(cat.ImageCl)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = m.ParamExpr()
			_ = m.FLOPsExpr()
			_ = m.BytesExpr()
		}()
	}
	wg.Wait()
}
