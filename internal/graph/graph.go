// Package graph implements the compute-graph IR at the heart of the
// Catamount-style analysis: nodes ("ops") connected by tensors, with
// per-op algorithmic FLOP and byte counts expressed symbolically, plus the
// traversal machinery that computes training-step memory footprints.
//
// The quantities follow the paper's definitions (§2.1):
//
//   - algorithmic FLOPs: arithmetic required by the op's mathematical
//     definition, excluding addressing/loop overhead;
//   - algorithmic bytes: tensor bytes an op must read and write;
//   - algorithmic memory footprint: the minimum, over topological
//     traversals, of the peak live-tensor bytes during a training step.
package graph

import (
	"fmt"
	"sort"
	"sync"

	"catamount/internal/symbolic"
	"catamount/internal/tensor"
)

// TensorKind classifies a tensor's lifetime within a training step.
type TensorKind int

// Tensor lifetimes.
const (
	// Activation tensors are produced and consumed within a step and can be
	// freed once every consumer has executed.
	Activation TensorKind = iota
	// Input tensors hold training data staged into the step (freeable after
	// their last consumer, like activations, but produced by no node).
	Input
	// Param tensors are trainable weights; they persist across steps.
	Param
	// State tensors are persistent optimizer state (e.g. momentum slots).
	State
)

func (k TensorKind) String() string {
	switch k {
	case Activation:
		return "activation"
	case Input:
		return "input"
	case Param:
		return "param"
	case State:
		return "state"
	}
	return "unknown"
}

// Tensor is a value flowing between ops.
type Tensor struct {
	Name      string
	Kind      TensorKind
	DType     tensor.DType
	Shape     tensor.Shape
	Group     string // logical layer for parallelism planning
	Producer  *Node
	Consumers []*Node

	id int
}

// NumElements returns the symbolic element count.
func (t *Tensor) NumElements() symbolic.Expr { return t.Shape.NumElements() }

// Bytes returns the symbolic byte size.
func (t *Tensor) Bytes() symbolic.Expr { return t.Shape.Bytes(t.DType) }

// Persistent reports whether the tensor outlives the training step.
func (t *Tensor) Persistent() bool { return t.Kind == Param || t.Kind == State }

func (t *Tensor) String() string {
	return fmt.Sprintf("%s:%s%s", t.Name, t.DType, t.Shape)
}

// Op is a computational kernel attached to a node. Implementations live in
// the ops package; the graph package only needs the analytical quantities.
type Op interface {
	// Kind returns the op type name, e.g. "matmul".
	Kind() string
	// FLOPs returns the algorithmic FLOPs for one execution of node n.
	FLOPs(n *Node) symbolic.Expr
	// Bytes returns the algorithmic bytes accessed by one execution of n.
	Bytes(n *Node) symbolic.Expr
}

// Node is one op instance in the graph.
type Node struct {
	Name    string
	Op      Op
	Group   string
	Inputs  []*Tensor
	Outputs []*Tensor

	id int

	// flopsExpr / bytesExpr cache the op-derived cost expressions, which are
	// pure functions of the (immutable) wiring. Deriving them per query was
	// the dominant cost of repeated graph characterization.
	flopsExpr symbolic.Expr
	bytesExpr symbolic.Expr
}

// FLOPs returns the node's algorithmic FLOPs, derived from the op once and
// cached. The first call per node is an unsynchronized cache fill; the
// graph-level analysis entry points (EvalStats, the totals, Compile) warm
// every node exactly once under Graph.WarmCosts, so concurrent use through
// them is race-free.
func (n *Node) FLOPs() symbolic.Expr {
	if n.flopsExpr == nil {
		n.flopsExpr = n.Op.FLOPs(n)
	}
	return n.flopsExpr
}

// Bytes returns the node's algorithmic bytes accessed, derived once and
// cached under the same rules as FLOPs.
func (n *Node) Bytes() symbolic.Expr {
	if n.bytesExpr == nil {
		n.bytesExpr = n.Op.Bytes(n)
	}
	return n.bytesExpr
}

func (n *Node) String() string {
	return fmt.Sprintf("%s(%s)", n.Name, n.Op.Kind())
}

// IOBytes is the default byte model: every input read once plus every output
// written once.
func IOBytes(n *Node) symbolic.Expr {
	parts := make([]symbolic.Expr, 0, len(n.Inputs)+len(n.Outputs))
	for _, t := range n.Inputs {
		parts = append(parts, t.Bytes())
	}
	for _, t := range n.Outputs {
		parts = append(parts, t.Bytes())
	}
	return symbolic.Add(parts...)
}

// Graph is a directed acyclic compute graph for one training step.
type Graph struct {
	Name string

	nodes    []*Node
	tensors  []*Tensor
	byName   map[string]*Tensor
	nameSeqs map[string]int

	warmOnce sync.Once
}

// WarmCosts derives and caches every node's FLOP and byte expressions,
// exactly once per graph. All graph-level analysis entry points call it
// first, making their per-node cache reads race-free even when several
// goroutines analyze the same graph concurrently. (It must not run while
// nodes are still being added.)
func (g *Graph) WarmCosts() {
	g.warmOnce.Do(func() {
		for _, n := range g.nodes {
			n.FLOPs()
			n.Bytes()
		}
	})
}

// New creates an empty graph.
func New(name string) *Graph {
	return &Graph{
		Name:     name,
		byName:   make(map[string]*Tensor),
		nameSeqs: make(map[string]int),
	}
}

// uniqueName returns name, or name#k when name is taken.
func (g *Graph) uniqueName(name string) string {
	if _, ok := g.byName[name]; !ok {
		return name
	}
	for {
		g.nameSeqs[name]++
		cand := fmt.Sprintf("%s#%d", name, g.nameSeqs[name])
		if _, ok := g.byName[cand]; !ok {
			return cand
		}
	}
}

// NewTensor creates and registers a tensor. Duplicate names are uniquified.
func (g *Graph) NewTensor(name string, kind TensorKind, dt tensor.DType, shape tensor.Shape) *Tensor {
	t := &Tensor{
		Name:  g.uniqueName(name),
		Kind:  kind,
		DType: dt,
		Shape: shape,
		id:    len(g.tensors),
	}
	g.tensors = append(g.tensors, t)
	g.byName[t.Name] = t
	return t
}

// AddNode creates a node wiring inputs to outputs. Each output must not
// already have a producer.
func (g *Graph) AddNode(name, group string, op Op, inputs, outputs []*Tensor) (*Node, error) {
	n := &Node{
		Name:    name,
		Op:      op,
		Group:   group,
		Inputs:  inputs,
		Outputs: outputs,
		id:      len(g.nodes),
	}
	for _, t := range outputs {
		if t.Producer != nil {
			return nil, fmt.Errorf("graph: tensor %q already produced by %q", t.Name, t.Producer.Name)
		}
		if t.Kind == Input || t.Kind == Param || t.Kind == State {
			return nil, fmt.Errorf("graph: node %q cannot produce persistent/input tensor %q", name, t.Name)
		}
		t.Producer = n
		if t.Group == "" {
			t.Group = group
		}
	}
	for _, t := range inputs {
		t.Consumers = append(t.Consumers, n)
		if t.Group == "" {
			t.Group = group
		}
	}
	g.nodes = append(g.nodes, n)
	return n, nil
}

// MustAddNode is AddNode that panics on wiring errors; model builders use it
// because wiring errors there are programming bugs, not runtime conditions.
func (g *Graph) MustAddNode(name, group string, op Op, inputs, outputs []*Tensor) *Node {
	n, err := g.AddNode(name, group, op, inputs, outputs)
	if err != nil {
		panic(err)
	}
	return n
}

// Nodes returns the node list in insertion order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Tensors returns all tensors in creation order.
func (g *Graph) Tensors() []*Tensor { return g.tensors }

// TensorByName looks up a tensor by exact name.
func (g *Graph) TensorByName(name string) (*Tensor, bool) {
	t, ok := g.byName[name]
	return t, ok
}

// Params returns all trainable parameter tensors.
func (g *Graph) Params() []*Tensor {
	var out []*Tensor
	for _, t := range g.tensors {
		if t.Kind == Param {
			out = append(out, t)
		}
	}
	return out
}

// ParamCount returns the symbolic total number of trainable parameters.
func (g *Graph) ParamCount() symbolic.Expr {
	parts := make([]symbolic.Expr, 0, 16)
	for _, t := range g.tensors {
		if t.Kind == Param {
			parts = append(parts, t.NumElements())
		}
	}
	return symbolic.Add(parts...)
}

// AlgorithmicIO returns the training-data bytes staged into one step — the
// total size of Input tensors (paper §2.1: algorithmic IO is proportional to
// batch size but fixed as model size grows).
func (g *Graph) AlgorithmicIO() symbolic.Expr {
	parts := make([]symbolic.Expr, 0, 8)
	for _, t := range g.tensors {
		if t.Kind == Input {
			parts = append(parts, t.Bytes())
		}
	}
	return symbolic.Add(parts...)
}

// TotalFLOPs returns the symbolic algorithmic FLOPs for one traversal of the
// whole graph (one training step if the graph includes backward ops).
func (g *Graph) TotalFLOPs() symbolic.Expr {
	g.WarmCosts()
	parts := make([]symbolic.Expr, 0, len(g.nodes))
	for _, n := range g.nodes {
		parts = append(parts, n.FLOPs())
	}
	return symbolic.Add(parts...)
}

// TotalBytes returns the symbolic algorithmic bytes accessed by one
// traversal of the whole graph.
func (g *Graph) TotalBytes() symbolic.Expr {
	g.WarmCosts()
	parts := make([]symbolic.Expr, 0, len(g.nodes))
	for _, n := range g.nodes {
		parts = append(parts, n.Bytes())
	}
	return symbolic.Add(parts...)
}

// GroupFLOPs returns per-group symbolic FLOPs totals.
func (g *Graph) GroupFLOPs() map[string]symbolic.Expr {
	g.WarmCosts()
	acc := make(map[string][]symbolic.Expr)
	for _, n := range g.nodes {
		acc[n.Group] = append(acc[n.Group], n.FLOPs())
	}
	out := make(map[string]symbolic.Expr, len(acc))
	for k, v := range acc {
		out[k] = symbolic.Add(v...)
	}
	return out
}

// GroupParamBytes returns per-group parameter bytes.
func (g *Graph) GroupParamBytes() map[string]symbolic.Expr {
	acc := make(map[string][]symbolic.Expr)
	for _, t := range g.tensors {
		if t.Kind == Param {
			acc[t.Group] = append(acc[t.Group], t.Bytes())
		}
	}
	out := make(map[string]symbolic.Expr, len(acc))
	for k, v := range acc {
		out[k] = symbolic.Add(v...)
	}
	return out
}

// Groups returns the sorted list of distinct node groups.
func (g *Graph) Groups() []string {
	set := make(map[string]bool)
	for _, n := range g.nodes {
		set[n.Group] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Validate checks structural invariants: every activation has a producer,
// every node input exists, and the graph is acyclic.
func (g *Graph) Validate() error {
	for _, t := range g.tensors {
		if t.Kind == Activation && t.Producer == nil {
			return fmt.Errorf("graph: activation tensor %q has no producer", t.Name)
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns a topological ordering of the nodes (Kahn's algorithm,
// insertion-order tie-breaking) or an error if the graph has a cycle.
func (g *Graph) TopoOrder() ([]*Node, error) {
	indeg := make([]int, len(g.nodes))
	for _, n := range g.nodes {
		for _, t := range n.Inputs {
			if t.Producer != nil {
				indeg[n.id]++
			}
		}
	}
	queue := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		if indeg[n.id] == 0 {
			queue = append(queue, n)
		}
	}
	order := make([]*Node, 0, len(g.nodes))
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, out := range n.Outputs {
			for _, c := range out.Consumers {
				indeg[c.id]--
				if indeg[c.id] == 0 {
					queue = append(queue, c)
				}
			}
		}
	}
	if len(order) != len(g.nodes) {
		return nil, fmt.Errorf("graph: cycle detected (%d of %d nodes ordered)", len(order), len(g.nodes))
	}
	return order, nil
}

// Stats evaluates the headline numeric quantities under env.
type Stats struct {
	Params    float64 // trainable parameter count
	FLOPs     float64 // algorithmic FLOPs per step
	Bytes     float64 // algorithmic bytes accessed per step
	Intensity float64 // FLOPs / byte
}

// EvalStats computes numeric totals under env.
func (g *Graph) EvalStats(env symbolic.Env) (Stats, error) {
	g.WarmCosts()
	p, err := g.ParamCount().Eval(env)
	if err != nil {
		return Stats{}, err
	}
	var flops, bytes float64
	for _, n := range g.nodes {
		f, err := n.FLOPs().Eval(env)
		if err != nil {
			return Stats{}, fmt.Errorf("node %s: %w", n.Name, err)
		}
		b, err := n.Bytes().Eval(env)
		if err != nil {
			return Stats{}, fmt.Errorf("node %s: %w", n.Name, err)
		}
		flops += f
		bytes += b
	}
	s := Stats{Params: p, FLOPs: flops, Bytes: bytes}
	if bytes > 0 {
		s.Intensity = flops / bytes
	}
	return s, nil
}
