package graph

import (
	"math"
	"testing"
)

// TestCompiledDedup pins the program-deduplication invariants: per-node
// program slices alias the unique tables, and a chain graph of repeated
// layers compiles to far fewer unique programs than nodes.
func TestCompiledDedup(t *testing.T) {
	g := buildChainGraph(64)
	c := Compile(g)

	if c.NumCostPrograms() >= 2*len(c.NodeFLOPs) {
		t.Fatalf("no dedup: %d unique cost programs for %d nodes", c.NumCostPrograms(), len(c.NodeFLOPs))
	}
	if c.NumTensorPrograms() >= len(c.TensorBytes) {
		t.Fatalf("no dedup: %d unique tensor programs for %d tensors", c.NumTensorPrograms(), len(c.TensorBytes))
	}
	flopIx, byteIx := c.CostIndexes()
	for i := range c.NodeFLOPs {
		if c.NodeFLOPs[i] != c.costProgs[flopIx[i]] || c.NodeBytes[i] != c.costProgs[byteIx[i]] {
			t.Fatalf("node %d does not alias its unique programs", i)
		}
	}
	for i, ix := range c.TensorIndexes() {
		if c.TensorBytes[i] != c.tensorProgs[ix] {
			t.Fatalf("tensor %d does not alias its unique program", i)
		}
	}
}

// TestBatchedCompiledMatchesScalar asserts every batched Compiled method
// is bit-identical to its scalar counterpart across a grid of bindings.
func TestBatchedCompiledMatchesScalar(t *testing.T) {
	g := buildChainGraph(48)
	c := Compile(g)

	hs := []float64{16, 96.5, 384, 1024}
	rows := len(hs)
	b := c.NewBatch(rows)
	hSlot, ok := c.Syms.Slot("h")
	if !ok {
		t.Fatal("no h slot")
	}
	for r, h := range hs {
		b.Set(r, hSlot, h)
	}

	var bs BatchScratch
	stats := c.EvalStatsBatch(b, nil, &bs)
	slots := c.NewSlots()
	for r, h := range hs {
		slots[hSlot] = h
		want := c.EvalStats(slots)
		if stats[r] != want {
			t.Fatalf("row %d: EvalStatsBatch %+v != EvalStats %+v", r, stats[r], want)
		}
	}

	// Per-node costs: batched matrix gathered per row vs scalar NodeCosts.
	nodeUniq := c.NodeCostsBatch(b, nil, &bs.Eval)
	flopIx, byteIx := c.CostIndexes()
	for r, h := range hs {
		slots[hSlot] = h
		wantF, wantB := c.NodeCosts(slots, nil, nil)
		for i := range wantF {
			gotF := nodeUniq[int(flopIx[i])*rows+r]
			gotB := nodeUniq[int(byteIx[i])*rows+r]
			if math.Float64bits(gotF) != math.Float64bits(wantF[i]) ||
				math.Float64bits(gotB) != math.Float64bits(wantB[i]) {
				t.Fatalf("row %d node %d: batched (%v,%v) != scalar (%v,%v)", r, i, gotF, gotB, wantF[i], wantB[i])
			}
		}
	}

	// Footprints: FootprintFromBatch and FootprintInto vs scalar Footprint.
	tensUniq := c.TensorBytesBatch(b, nil, &bs.Eval)
	var fp FootprintScratch
	for _, policy := range []SchedulePolicy{PolicyFIFO, PolicyMemGreedy} {
		for r, h := range hs {
			slots[hSlot] = h
			want, err := c.Footprint(slots, policy, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.FootprintFromBatch(tensUniq, rows, r, policy, &fp)
			if err != nil {
				t.Fatal(err)
			}
			if got.PeakBytes != want.PeakBytes || got.PersistentBytes != want.PersistentBytes ||
				got.PeakTransientBytes != want.PeakTransientBytes {
				t.Fatalf("row %d %v: FootprintFromBatch %+v != Footprint %+v", r, policy, got, want)
			}
			got2, err := c.FootprintInto(slots, policy, &fp)
			if err != nil {
				t.Fatal(err)
			}
			if got2.PeakBytes != want.PeakBytes || len(got2.Order) != len(want.Order) {
				t.Fatalf("row %d %v: FootprintInto %+v != Footprint %+v", r, policy, got2, want)
			}
			for i := range want.Order {
				if got2.Order[i] != want.Order[i] {
					t.Fatalf("row %d %v: order diverges at %d", r, policy, i)
				}
			}
		}
	}
}

// TestFootprintIntoSteadyStateAllocs pins the point of FootprintScratch:
// warm footprint evaluation does not allocate.
func TestFootprintIntoSteadyStateAllocs(t *testing.T) {
	g := buildChainGraph(32)
	c := Compile(g)
	slots := c.NewSlots()
	hSlot, _ := c.Syms.Slot("h")
	slots[hSlot] = 256
	var fp FootprintScratch
	if _, err := c.FootprintInto(slots, PolicyMemGreedy, &fp); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := c.FootprintInto(slots, PolicyMemGreedy, &fp); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("warm FootprintInto allocates %v times per run", allocs)
	}
}
