package graph

import "catamount/internal/symbolic"

// Batched structure-of-arrays evaluation over a Compiled bundle: callers
// fill a symbolic.Batch with one row per sweep point, then evaluate the
// graph's deduplicated program tables once for all rows. Combined with
// program dedup this turns "evaluate 47k node programs per point" into
// "evaluate ~90 unique programs per batch", which is what lets the per-op
// cost-model backend keep pace with the graph-level one.

// NewBatch allocates a slot batch sized for the bundle's symbol table.
func (c *Compiled) NewBatch(rows int) *symbolic.Batch {
	return c.Syms.NewBatch(rows)
}

// BatchScratch holds the reusable buffers for batched Compiled evaluation:
// one per evaluating goroutine. The zero value is ready to use.
type BatchScratch struct {
	// Eval is the shared operand stack for program evaluation.
	Eval symbolic.BatchScratch

	uniq   []float64
	params []float64
	flops  []float64
	bytes  []float64
}

// CostIndexes returns the per-node indices (in Nodes() order) into the
// unique node-cost matrix produced by NodeCostsBatch: node i's FLOPs live
// at unique row flopIx[i], its bytes at byteIx[i]. The returned slices are
// shared and must not be modified.
func (c *Compiled) CostIndexes() (flopIx, byteIx []int32) {
	return c.nodeFLOPIx, c.nodeByteIx
}

// NumCostPrograms returns the number of unique node-cost programs.
func (c *Compiled) NumCostPrograms() int { return len(c.costProgs) }

// CostValues evaluates the unique node-cost programs for one slot binding
// into dst (grown as needed and returned). Per-node values are gathers
// through CostIndexes — the scalar counterpart of NodeCostsBatch.
func (c *Compiled) CostValues(slots []float64, dst []float64) []float64 {
	return c.evalCostUniq(slots, dst)
}

// NodeCostsBatch evaluates every unique node-cost program over the batch,
// writing program k's row vector at dst[k*rows : (k+1)*rows] (grown as
// needed and returned). Per-node values are gathers through CostIndexes:
// node i's FLOPs for row r sit at dst[flopIx[i]*rows + r].
func (c *Compiled) NodeCostsBatch(b *symbolic.Batch, dst []float64, s *symbolic.BatchScratch) []float64 {
	return symbolic.EvalAllBatch(c.costProgs, b, dst, s)
}

// TensorIndexes returns the per-tensor indices (in Tensors() order) into
// the unique tensor-byte matrix produced by TensorBytesBatch. The returned
// slice is shared and must not be modified.
func (c *Compiled) TensorIndexes() []int32 { return c.tensorIx }

// NumTensorPrograms returns the number of unique tensor-byte programs.
func (c *Compiled) NumTensorPrograms() int { return len(c.tensorProgs) }

// TensorBytesBatch evaluates every unique tensor-byte program over the
// batch, writing program k's row vector at dst[k*rows : (k+1)*rows] (grown
// as needed and returned).
func (c *Compiled) TensorBytesBatch(b *symbolic.Batch, dst []float64, s *symbolic.BatchScratch) []float64 {
	return symbolic.EvalAllBatch(c.tensorProgs, b, dst, s)
}

// EvalStatsBatch computes headline stats for every batch row, writing into
// dst (grown as needed and returned). Row results are bit-for-bit identical
// to EvalStats on the same slot values: per-node FLOPs and bytes accumulate
// in Nodes() order within each row.
func (c *Compiled) EvalStatsBatch(b *symbolic.Batch, dst []Stats, s *BatchScratch) []Stats {
	rows := b.Rows()
	if cap(dst) < rows {
		dst = make([]Stats, rows)
	}
	dst = dst[:rows]
	if rows == 0 {
		return dst
	}
	s.uniq = symbolic.EvalAllBatch(c.costProgs, b, s.uniq, &s.Eval)
	s.params = c.ParamCount.EvalBatchInto(b, s.params, &s.Eval)
	s.flops = growZero(s.flops, rows)
	s.bytes = growZero(s.bytes, rows)
	for i := range c.nodeFLOPIx {
		f := s.uniq[int(c.nodeFLOPIx[i])*rows:][:rows]
		bt := s.uniq[int(c.nodeByteIx[i])*rows:][:rows]
		for r := 0; r < rows; r++ {
			s.flops[r] += f[r]
			s.bytes[r] += bt[r]
		}
	}
	for r := 0; r < rows; r++ {
		st := Stats{Params: s.params[r], FLOPs: s.flops[r], Bytes: s.bytes[r]}
		if st.Bytes > 0 {
			st.Intensity = st.FLOPs / st.Bytes
		}
		dst[r] = st
	}
	return dst
}

func growZero(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// FootprintScratch holds every buffer the footprint simulation needs —
// per-tensor byte sizes, consumer counters, liveness flags, the ready heap,
// and the traversal order — so repeated footprint evaluation allocates
// nothing in steady state. One per goroutine; the zero value is ready.
type FootprintScratch struct {
	uniq  []float64
	bytes []float64
	sim   footprintSim
}

// FootprintInto is Footprint with fully reused simulation state. The
// returned Order aliases the scratch and is valid until the next call.
func (c *Compiled) FootprintInto(slots []float64, policy SchedulePolicy, fs *FootprintScratch) (ScheduleResult, error) {
	fs.uniq = c.tensorUniqScalar(slots, fs.uniq)
	return c.footprintFromUniq(fs.uniq, 1, 0, policy, fs)
}

func (c *Compiled) tensorUniqScalar(slots, uniq []float64) []float64 {
	if cap(uniq) < len(c.tensorProgs) {
		uniq = make([]float64, len(c.tensorProgs))
	}
	uniq = uniq[:len(c.tensorProgs)]
	for i, p := range c.tensorProgs {
		uniq[i] = p.Eval(slots)
	}
	return uniq
}

// FootprintFromBatch runs the schedule simulation for one row of a batched
// tensor-byte matrix previously produced by TensorBytesBatch over a batch
// of `rows` rows. The returned Order aliases the scratch and is valid until
// the next call.
func (c *Compiled) FootprintFromBatch(uniq []float64, rows, row int, policy SchedulePolicy, fs *FootprintScratch) (ScheduleResult, error) {
	return c.footprintFromUniq(uniq, rows, row, policy, fs)
}

func (c *Compiled) footprintFromUniq(uniq []float64, rows, row int, policy SchedulePolicy, fs *FootprintScratch) (ScheduleResult, error) {
	if cap(fs.bytes) < len(c.TensorBytes) {
		fs.bytes = make([]float64, len(c.TensorBytes))
	}
	fs.bytes = fs.bytes[:len(c.TensorBytes)]
	for i, ix := range c.tensorIx {
		fs.bytes[i] = uniq[int(ix)*rows+row]
	}
	return c.Graph.simulateFootprintInto(fs.bytes, policy, &fs.sim)
}
