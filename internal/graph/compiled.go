package graph

import (
	"fmt"

	"catamount/internal/symbolic"
)

// Compiled is a precompiled analysis bundle for one graph: every node's
// FLOP/byte expression and every tensor's byte expression lowered into
// slot-indexed programs against one shared symbol table, plus the headline
// totals. Build it once per graph, then sweep by writing slot values and
// running programs — no expression re-derivation, no tree walking, no map
// lookups per point.
//
// A Compiled is immutable after construction and safe for concurrent use;
// callers supply their own slot buffers (NewSlots), one per goroutine.
type Compiled struct {
	Graph *Graph
	// Syms maps symbol names to slot indices for every program below.
	Syms *symbolic.SymTab

	// NodeFLOPs / NodeBytes hold per-node cost programs in Nodes() order.
	NodeFLOPs []*symbolic.Program
	NodeBytes []*symbolic.Program
	// TensorBytes holds per-tensor byte-size programs in Tensors() order.
	TensorBytes []*symbolic.Program

	// ParamCount, TotalFLOPs, TotalBytes, and IO are the graph-level totals.
	ParamCount *symbolic.Program
	TotalFLOPs *symbolic.Program
	TotalBytes *symbolic.Program
	IO         *symbolic.Program
}

// Compile derives and caches every node's cost expressions, then lowers all
// of them — plus per-tensor byte sizes and the graph totals — into programs
// sharing one symbol table.
func Compile(g *Graph) *Compiled {
	// Warm the per-node expression caches (synchronized, once per graph),
	// then build the symbol table over every expression for deterministic
	// slot order.
	g.WarmCosts()
	exprs := make([]symbolic.Expr, 0, 2*len(g.nodes)+len(g.tensors))
	for _, n := range g.nodes {
		exprs = append(exprs, n.FLOPs(), n.Bytes())
	}
	for _, t := range g.tensors {
		exprs = append(exprs, t.Bytes())
	}
	syms := symbolic.SymTabFor(exprs...)

	c := &Compiled{
		Graph:       g,
		Syms:        syms,
		NodeFLOPs:   make([]*symbolic.Program, len(g.nodes)),
		NodeBytes:   make([]*symbolic.Program, len(g.nodes)),
		TensorBytes: make([]*symbolic.Program, len(g.tensors)),
	}
	for i, n := range g.nodes {
		c.NodeFLOPs[i] = symbolic.Compile(n.FLOPs(), syms)
		c.NodeBytes[i] = symbolic.Compile(n.Bytes(), syms)
	}
	for i, t := range g.tensors {
		c.TensorBytes[i] = symbolic.Compile(t.Bytes(), syms)
	}
	c.ParamCount = symbolic.Compile(g.ParamCount(), syms)
	c.TotalFLOPs = symbolic.Compile(g.TotalFLOPs(), syms)
	c.TotalBytes = symbolic.Compile(g.TotalBytes(), syms)
	c.IO = symbolic.Compile(g.AlgorithmicIO(), syms)
	return c
}

// Compile returns the graph's precompiled analysis bundle.
func (g *Graph) Compile() *Compiled { return Compile(g) }

// NewSlots allocates a slot buffer sized for the bundle's symbol table.
// Each concurrently evaluating goroutine needs its own buffer.
func (c *Compiled) NewSlots() []float64 { return c.Syms.NewSlots() }

// Bind fills slots from env. Every graph symbol must be bound; extra env
// entries are ignored.
func (c *Compiled) Bind(slots []float64, env symbolic.Env) error {
	return c.Syms.Bind(slots, env)
}

// EvalStats computes the headline numeric quantities for one slot binding.
func (c *Compiled) EvalStats(slots []float64) Stats {
	s := Stats{Params: c.ParamCount.Eval(slots)}
	for i := range c.NodeFLOPs {
		s.FLOPs += c.NodeFLOPs[i].Eval(slots)
		s.Bytes += c.NodeBytes[i].Eval(slots)
	}
	if s.Bytes > 0 {
		s.Intensity = s.FLOPs / s.Bytes
	}
	return s
}

// Footprint runs the schedule simulation for one slot binding, evaluating
// tensor sizes through the compiled programs. scratch, when non-nil, is
// reused for the per-tensor byte sizes (it is grown as needed); pass nil to
// allocate internally.
func (c *Compiled) Footprint(slots []float64, policy SchedulePolicy, scratch []float64) (ScheduleResult, error) {
	bytes := scratch
	if cap(bytes) < len(c.TensorBytes) {
		bytes = make([]float64, len(c.TensorBytes))
	}
	bytes = bytes[:len(c.TensorBytes)]
	for i, p := range c.TensorBytes {
		bytes[i] = p.Eval(slots)
	}
	return c.Graph.simulateFootprint(bytes, policy)
}

// NodeCosts evaluates every node's FLOPs and bytes into the provided slices
// (grown as needed) and returns them, in Nodes() order.
func (c *Compiled) NodeCosts(slots []float64, flops, bytes []float64) (f, b []float64) {
	n := len(c.NodeFLOPs)
	if cap(flops) < n {
		flops = make([]float64, n)
	}
	if cap(bytes) < n {
		bytes = make([]float64, n)
	}
	flops, bytes = flops[:n], bytes[:n]
	for i := range c.NodeFLOPs {
		flops[i] = c.NodeFLOPs[i].Eval(slots)
		bytes[i] = c.NodeBytes[i].Eval(slots)
	}
	return flops, bytes
}

// BindValues writes values for the named symbols into slots, for callers
// that sweep a few knobs without rebuilding an Env map per point. Symbols
// absent from the graph are ignored (a cost expression may not reference
// every knob).
func (c *Compiled) BindValues(slots []float64, names []string, values []float64) error {
	if len(names) != len(values) {
		return fmt.Errorf("graph: %d names but %d values", len(names), len(values))
	}
	for i, name := range names {
		if slot, ok := c.Syms.Slot(name); ok {
			slots[slot] = values[i]
		}
	}
	return nil
}
