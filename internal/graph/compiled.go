package graph

import (
	"fmt"

	"catamount/internal/symbolic"
)

// Compiled is a precompiled analysis bundle for one graph: every node's
// FLOP/byte expression and every tensor's byte expression lowered into
// slot-indexed programs against one shared symbol table, plus the headline
// totals. Build it once per graph, then sweep by writing slot values and
// running programs — no expression re-derivation, no tree walking, no map
// lookups per point.
//
// A Compiled is immutable after construction and safe for concurrent use;
// callers supply their own slot buffers (NewSlots), one per goroutine.
type Compiled struct {
	Graph *Graph
	// Syms maps symbol names to slot indices for every program below.
	Syms *symbolic.SymTab

	// NodeFLOPs / NodeBytes hold per-node cost programs in Nodes() order.
	NodeFLOPs []*symbolic.Program
	NodeBytes []*symbolic.Program
	// TensorBytes holds per-tensor byte-size programs in Tensors() order.
	TensorBytes []*symbolic.Program

	// ParamCount, TotalFLOPs, TotalBytes, and IO are the graph-level totals.
	ParamCount *symbolic.Program
	TotalFLOPs *symbolic.Program
	TotalBytes *symbolic.Program
	IO         *symbolic.Program

	// Deduplicated program tables. Training graphs repeat a handful of cost
	// expressions across thousands of structurally identical layers (a
	// 47k-node speech graph compiles to under a hundred unique node-cost
	// programs), so evaluation runs the unique programs and gathers per-node
	// values by index. NodeFLOPs[i] aliases costProgs[nodeFLOPIx[i]], and
	// likewise for NodeBytes and TensorBytes, so per-node iteration keeps
	// working unchanged.
	costProgs  []*symbolic.Program
	nodeFLOPIx []int32
	nodeByteIx []int32

	tensorProgs []*symbolic.Program
	tensorIx    []int32
}

// Compile derives and caches every node's cost expressions, then lowers all
// of them — plus per-tensor byte sizes and the graph totals — into programs
// sharing one symbol table.
func Compile(g *Graph) *Compiled {
	// Warm the per-node expression caches (synchronized, once per graph),
	// then build the symbol table over every expression for deterministic
	// slot order.
	g.WarmCosts()
	exprs := make([]symbolic.Expr, 0, 2*len(g.nodes)+len(g.tensors))
	for _, n := range g.nodes {
		exprs = append(exprs, n.FLOPs(), n.Bytes())
	}
	for _, t := range g.tensors {
		exprs = append(exprs, t.Bytes())
	}
	syms := symbolic.SymTabFor(exprs...)

	c := &Compiled{
		Graph:       g,
		Syms:        syms,
		NodeFLOPs:   make([]*symbolic.Program, len(g.nodes)),
		NodeBytes:   make([]*symbolic.Program, len(g.nodes)),
		TensorBytes: make([]*symbolic.Program, len(g.tensors)),
	}
	// Compile each distinct expression once, keyed by its canonical string
	// form (canonical constructors make equal strings mean equal trees), and
	// point every repeat at the shared program.
	costIndex := make(map[string]int32)
	internCost := func(e symbolic.Expr) int32 {
		key := e.String()
		if ix, ok := costIndex[key]; ok {
			return ix
		}
		ix := int32(len(c.costProgs))
		costIndex[key] = ix
		c.costProgs = append(c.costProgs, symbolic.Compile(e, syms))
		return ix
	}
	c.nodeFLOPIx = make([]int32, len(g.nodes))
	c.nodeByteIx = make([]int32, len(g.nodes))
	for i, n := range g.nodes {
		c.nodeFLOPIx[i] = internCost(n.FLOPs())
		c.nodeByteIx[i] = internCost(n.Bytes())
		c.NodeFLOPs[i] = c.costProgs[c.nodeFLOPIx[i]]
		c.NodeBytes[i] = c.costProgs[c.nodeByteIx[i]]
	}
	tensorIndex := make(map[string]int32)
	c.tensorIx = make([]int32, len(g.tensors))
	for i, t := range g.tensors {
		key := t.Bytes().String()
		ix, ok := tensorIndex[key]
		if !ok {
			ix = int32(len(c.tensorProgs))
			tensorIndex[key] = ix
			c.tensorProgs = append(c.tensorProgs, symbolic.Compile(t.Bytes(), syms))
		}
		c.tensorIx[i] = ix
		c.TensorBytes[i] = c.tensorProgs[ix]
	}
	c.ParamCount = symbolic.Compile(g.ParamCount(), syms)
	c.TotalFLOPs = symbolic.Compile(g.TotalFLOPs(), syms)
	c.TotalBytes = symbolic.Compile(g.TotalBytes(), syms)
	c.IO = symbolic.Compile(g.AlgorithmicIO(), syms)
	return c
}

// Compile returns the graph's precompiled analysis bundle.
func (g *Graph) Compile() *Compiled { return Compile(g) }

// NewSlots allocates a slot buffer sized for the bundle's symbol table.
// Each concurrently evaluating goroutine needs its own buffer.
func (c *Compiled) NewSlots() []float64 { return c.Syms.NewSlots() }

// Bind fills slots from env. Every graph symbol must be bound; extra env
// entries are ignored.
func (c *Compiled) Bind(slots []float64, env symbolic.Env) error {
	return c.Syms.Bind(slots, env)
}

// evalCostUniq evaluates the unique node-cost programs into dst (grown as
// needed). Per-node values are gathers from this table.
func (c *Compiled) evalCostUniq(slots []float64, dst []float64) []float64 {
	if cap(dst) < len(c.costProgs) {
		dst = make([]float64, len(c.costProgs))
	}
	dst = dst[:len(c.costProgs)]
	for i, p := range c.costProgs {
		dst[i] = p.Eval(slots)
	}
	return dst
}

// EvalStats computes the headline numeric quantities for one slot binding.
// Per-node FLOPs and bytes are accumulated in Nodes() order (the unique
// programs are evaluated once and gathered by index, which leaves every
// summand and the summation order unchanged).
func (c *Compiled) EvalStats(slots []float64) Stats {
	uniq := c.evalCostUniq(slots, nil)
	s := Stats{Params: c.ParamCount.Eval(slots)}
	for i := range c.nodeFLOPIx {
		s.FLOPs += uniq[c.nodeFLOPIx[i]]
		s.Bytes += uniq[c.nodeByteIx[i]]
	}
	if s.Bytes > 0 {
		s.Intensity = s.FLOPs / s.Bytes
	}
	return s
}

// Footprint runs the schedule simulation for one slot binding, evaluating
// tensor sizes through the compiled programs. scratch, when non-nil, is
// reused for the per-tensor byte sizes (it is grown as needed); pass nil to
// allocate internally. Loops calling this per point should prefer
// FootprintInto, which also reuses the simulation state.
func (c *Compiled) Footprint(slots []float64, policy SchedulePolicy, scratch []float64) (ScheduleResult, error) {
	bytes := c.tensorBytesGather(slots, scratch, nil)
	return c.Graph.simulateFootprint(bytes, policy)
}

// tensorBytesGather fills per-tensor byte sizes (in Tensors() order) by
// evaluating the unique tensor programs once and scattering by index.
func (c *Compiled) tensorBytesGather(slots, bytes, uniq []float64) []float64 {
	if cap(uniq) < len(c.tensorProgs) {
		uniq = make([]float64, len(c.tensorProgs))
	}
	uniq = uniq[:len(c.tensorProgs)]
	for i, p := range c.tensorProgs {
		uniq[i] = p.Eval(slots)
	}
	if cap(bytes) < len(c.TensorBytes) {
		bytes = make([]float64, len(c.TensorBytes))
	}
	bytes = bytes[:len(c.TensorBytes)]
	for i, ix := range c.tensorIx {
		bytes[i] = uniq[ix]
	}
	return bytes
}

// NodeCosts evaluates every node's FLOPs and bytes into the provided slices
// (grown as needed) and returns them, in Nodes() order.
func (c *Compiled) NodeCosts(slots []float64, flops, bytes []float64) (f, b []float64) {
	uniq := c.evalCostUniq(slots, nil)
	n := len(c.NodeFLOPs)
	if cap(flops) < n {
		flops = make([]float64, n)
	}
	if cap(bytes) < n {
		bytes = make([]float64, n)
	}
	flops, bytes = flops[:n], bytes[:n]
	for i := range c.nodeFLOPIx {
		flops[i] = uniq[c.nodeFLOPIx[i]]
		bytes[i] = uniq[c.nodeByteIx[i]]
	}
	return flops, bytes
}

// BindValues writes values for the named symbols into slots, for callers
// that sweep a few knobs without rebuilding an Env map per point. Symbols
// absent from the graph are ignored (a cost expression may not reference
// every knob).
func (c *Compiled) BindValues(slots []float64, names []string, values []float64) error {
	if len(names) != len(values) {
		return fmt.Errorf("graph: %d names but %d values", len(names), len(values))
	}
	for i, name := range names {
		if slot, ok := c.Syms.Slot(name); ok {
			slots[slot] = values[i]
		}
	}
	return nil
}
