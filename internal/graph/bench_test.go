package graph

import (
	"fmt"
	"testing"

	"catamount/internal/symbolic"
	"catamount/internal/tensor"
)

// buildChainGraph constructs a deep linear graph for scheduler benchmarks.
func buildChainGraph(depth int) *Graph {
	g := New("chain")
	h := symbolic.S("h")
	cur := g.NewTensor("x", Input, tensor.F32, tensor.Of(32, h))
	for i := 0; i < depth; i++ {
		w := g.NewTensor(fmt.Sprintf("w%d", i), Param, tensor.F32, tensor.Of(h, h))
		out := g.NewTensor(fmt.Sprintf("a%d", i), Activation, tensor.F32, tensor.Of(32, h))
		g.MustAddNode(fmt.Sprintf("n%d", i), "", benchOp{}, []*Tensor{cur, w}, []*Tensor{out})
		cur = out
	}
	return g
}

type benchOp struct{}

func (benchOp) Kind() string { return "bench" }
func (benchOp) FLOPs(n *Node) symbolic.Expr {
	return symbolic.Mul(symbolic.C(2), n.Outputs[0].NumElements())
}
func (benchOp) Bytes(n *Node) symbolic.Expr { return IOBytes(n) }

func BenchmarkTopoOrder(b *testing.B) {
	g := buildChainGraph(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.TopoOrder(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFootprintGreedy(b *testing.B) {
	g := buildChainGraph(2000)
	env := map[string]float64{"h": 512}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Footprint(env, PolicyMemGreedy); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFootprintFIFO(b *testing.B) {
	g := buildChainGraph(2000)
	env := map[string]float64{"h": 512}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Footprint(env, PolicyFIFO); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalStats(b *testing.B) {
	g := buildChainGraph(2000)
	env := symbolic.Env{"h": 512}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.EvalStats(env); err != nil {
			b.Fatal(err)
		}
	}
}
