package graph

import (
	"math"
	"sync"
	"testing"

	"catamount/internal/symbolic"
)

func TestCompiledMatchesTreeEval(t *testing.T) {
	g := buildChainGraph(64)
	c := Compile(g)
	env := symbolic.Env{"h": 384}

	want, err := g.EvalStats(env)
	if err != nil {
		t.Fatal(err)
	}
	slots := c.NewSlots()
	if err := c.Bind(slots, env); err != nil {
		t.Fatal(err)
	}
	got := c.EvalStats(slots)
	if got.Params != want.Params || got.FLOPs != want.FLOPs || got.Bytes != want.Bytes {
		t.Fatalf("compiled stats %+v != tree stats %+v", got, want)
	}

	for _, policy := range []SchedulePolicy{PolicyFIFO, PolicyMemGreedy} {
		wantFP, err := g.Footprint(env, policy)
		if err != nil {
			t.Fatal(err)
		}
		gotFP, err := c.Footprint(slots, policy, nil)
		if err != nil {
			t.Fatal(err)
		}
		if gotFP.PeakBytes != wantFP.PeakBytes ||
			gotFP.PersistentBytes != wantFP.PersistentBytes ||
			gotFP.PeakTransientBytes != wantFP.PeakTransientBytes {
			t.Fatalf("%v: compiled footprint %+v != tree %+v", policy, gotFP, wantFP)
		}
		if len(gotFP.Order) != len(wantFP.Order) {
			t.Fatalf("%v: order lengths differ", policy)
		}
	}
}

func TestCompiledNodeCosts(t *testing.T) {
	g := buildChainGraph(8)
	c := g.Compile()
	env := symbolic.Env{"h": 100}
	slots := c.NewSlots()
	if err := c.Bind(slots, env); err != nil {
		t.Fatal(err)
	}
	flops, bytes := c.NodeCosts(slots, nil, nil)
	nodes := g.Nodes()
	if len(flops) != len(nodes) || len(bytes) != len(nodes) {
		t.Fatalf("cost lengths %d/%d, want %d", len(flops), len(bytes), len(nodes))
	}
	for i, n := range nodes {
		wf := symbolic.MustEval(n.FLOPs(), env)
		wb := symbolic.MustEval(n.Bytes(), env)
		if flops[i] != wf || bytes[i] != wb {
			t.Fatalf("node %s: compiled (%g, %g) != tree (%g, %g)", n.Name, flops[i], bytes[i], wf, wb)
		}
	}
}

func TestCompiledBindValues(t *testing.T) {
	g := buildChainGraph(4)
	c := g.Compile()
	slots := c.NewSlots()
	if err := c.BindValues(slots, []string{"h", "not-a-symbol"}, []float64{64, 99}); err != nil {
		t.Fatal(err)
	}
	want, err := g.EvalStats(symbolic.Env{"h": 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.EvalStats(slots); got.FLOPs != want.FLOPs {
		t.Fatalf("FLOPs %g != %g", got.FLOPs, want.FLOPs)
	}
	if err := c.BindValues(slots, []string{"h"}, nil); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestCompiledConcurrentEval(t *testing.T) {
	g := buildChainGraph(128)
	c := g.Compile()
	ref, err := g.EvalStats(symbolic.Env{"h": 256})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			slots := c.NewSlots()
			var scratch []float64
			for i := 0; i < 50; i++ {
				if err := c.Bind(slots, symbolic.Env{"h": 256}); err != nil {
					errs <- err
					return
				}
				if s := c.EvalStats(slots); math.Abs(s.FLOPs-ref.FLOPs) > 0 {
					errs <- errMismatch
					return
				}
				if _, err := c.Footprint(slots, PolicyMemGreedy, scratch); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errMismatch = errorString("concurrent eval mismatch")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestColdGraphConcurrentAnalysis(t *testing.T) {
	// A freshly built (never analyzed) graph must be safe to analyze from
	// several goroutines at once: WarmCosts synchronizes the per-node
	// expression cache fill behind every graph-level entry point.
	g := buildChainGraph(64)
	env := symbolic.Env{"h": 128}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				if _, err := g.EvalStats(env); err != nil {
					errs <- err
				}
				return
			}
			c := Compile(g)
			slots := c.NewSlots()
			if err := c.Bind(slots, env); err != nil {
				errs <- err
			}
			_ = c.EvalStats(slots)
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
