package graph

import (
	"strings"
	"testing"

	"catamount/internal/symbolic"
	"catamount/internal/tensor"
)

// fakeOp is a minimal op for graph-level tests: fixed FLOPs, default bytes.
type fakeOp struct {
	kind  string
	flops float64
}

func (f fakeOp) Kind() string { return f.kind }
func (f fakeOp) FLOPs(*Node) symbolic.Expr {
	return symbolic.C(f.flops)
}
func (f fakeOp) Bytes(n *Node) symbolic.Expr { return IOBytes(n) }

func newTestGraph(t *testing.T) *Graph {
	t.Helper()
	return New("test")
}

func TestAddNodeWiring(t *testing.T) {
	g := newTestGraph(t)
	x := g.NewTensor("x", Input, tensor.F32, tensor.Of(4))
	y := g.NewTensor("y", Activation, tensor.F32, tensor.Of(4))
	n, err := g.AddNode("relu", "layer0", fakeOp{"relu", 4}, []*Tensor{x}, []*Tensor{y})
	if err != nil {
		t.Fatal(err)
	}
	if y.Producer != n {
		t.Fatal("producer not set")
	}
	if len(x.Consumers) != 1 || x.Consumers[0] != n {
		t.Fatal("consumer not set")
	}
	if y.Group != "layer0" {
		t.Fatalf("group = %q, want layer0", y.Group)
	}
}

func TestAddNodeDuplicateProducer(t *testing.T) {
	g := newTestGraph(t)
	x := g.NewTensor("x", Input, tensor.F32, tensor.Of(4))
	y := g.NewTensor("y", Activation, tensor.F32, tensor.Of(4))
	if _, err := g.AddNode("a", "", fakeOp{"a", 1}, []*Tensor{x}, []*Tensor{y}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddNode("b", "", fakeOp{"b", 1}, []*Tensor{x}, []*Tensor{y}); err == nil {
		t.Fatal("expected duplicate-producer error")
	}
}

func TestAddNodeCannotProduceParam(t *testing.T) {
	g := newTestGraph(t)
	w := g.NewTensor("w", Param, tensor.F32, tensor.Of(4))
	if _, err := g.AddNode("bad", "", fakeOp{"x", 1}, nil, []*Tensor{w}); err == nil {
		t.Fatal("expected error producing a param tensor")
	}
}

func TestUniqueTensorNames(t *testing.T) {
	g := newTestGraph(t)
	a := g.NewTensor("t", Activation, tensor.F32, tensor.Of(1))
	b := g.NewTensor("t", Activation, tensor.F32, tensor.Of(1))
	if a.Name == b.Name {
		t.Fatalf("names not uniquified: %q vs %q", a.Name, b.Name)
	}
	if _, ok := g.TensorByName(b.Name); !ok {
		t.Fatal("uniquified tensor not registered")
	}
}

func TestTopoOrderChain(t *testing.T) {
	g := newTestGraph(t)
	x := g.NewTensor("x", Input, tensor.F32, tensor.Of(4))
	mid := g.NewTensor("mid", Activation, tensor.F32, tensor.Of(4))
	out := g.NewTensor("out", Activation, tensor.F32, tensor.Of(4))
	g.MustAddNode("n2", "", fakeOp{"b", 1}, []*Tensor{mid}, []*Tensor{out})
	g.MustAddNode("n1", "", fakeOp{"a", 1}, []*Tensor{x}, []*Tensor{mid})
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0].Name != "n1" || order[1].Name != "n2" {
		t.Fatalf("bad order: %v", order)
	}
}

func TestCycleDetection(t *testing.T) {
	g := newTestGraph(t)
	t0 := g.NewTensor("t0", Activation, tensor.F32, tensor.Of(1))
	t1 := g.NewTensor("t1", Activation, tensor.F32, tensor.Of(1))
	g.MustAddNode("n1", "", fakeOp{"a", 1}, []*Tensor{t1}, []*Tensor{t0})
	g.MustAddNode("n2", "", fakeOp{"b", 1}, []*Tensor{t0}, []*Tensor{t1})
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("expected cycle error")
	}
	if err := g.Validate(); err == nil {
		t.Fatal("expected validate error")
	}
}

func TestValidateOrphanActivation(t *testing.T) {
	g := newTestGraph(t)
	g.NewTensor("orphan", Activation, tensor.F32, tensor.Of(1))
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "no producer") {
		t.Fatalf("expected orphan error, got %v", err)
	}
}

func TestTotalsAndParamCount(t *testing.T) {
	g := newTestGraph(t)
	h := symbolic.S("h")
	w := g.NewTensor("w", Param, tensor.F32, tensor.Of(h, h))
	x := g.NewTensor("x", Input, tensor.F32, tensor.Of(1, h))
	y := g.NewTensor("y", Activation, tensor.F32, tensor.Of(1, h))
	g.MustAddNode("mm", "fc", fakeOp{"matmul", 100}, []*Tensor{x, w}, []*Tensor{y})

	env := symbolic.Env{"h": 8}
	p, err := g.ParamCount().Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if p != 64 {
		t.Fatalf("params = %v, want 64", p)
	}
	st, err := g.EvalStats(env)
	if err != nil {
		t.Fatal(err)
	}
	if st.FLOPs != 100 {
		t.Fatalf("flops = %v", st.FLOPs)
	}
	// bytes = w(64*4) + x(8*4) + y(8*4) = 256+32+32
	if st.Bytes != 320 {
		t.Fatalf("bytes = %v, want 320", st.Bytes)
	}
	if st.Intensity != 100.0/320.0 {
		t.Fatalf("intensity = %v", st.Intensity)
	}
}

func TestFootprintChainFreesActivations(t *testing.T) {
	// x(100B) -> a(400B) -> b(400B) -> out(4B); greedy or fifo both must
	// free a before allocating out is not possible (b needs a), so peak is
	// x+a (500) then a+b (800) then b+out (404). Peak transient = 800.
	g := newTestGraph(t)
	x := g.NewTensor("x", Input, tensor.F32, tensor.Of(25))
	a := g.NewTensor("a", Activation, tensor.F32, tensor.Of(100))
	b := g.NewTensor("b", Activation, tensor.F32, tensor.Of(100))
	out := g.NewTensor("out", Activation, tensor.F32, tensor.Of(1))
	g.MustAddNode("n1", "", fakeOp{"f", 1}, []*Tensor{x}, []*Tensor{a})
	g.MustAddNode("n2", "", fakeOp{"f", 1}, []*Tensor{a}, []*Tensor{b})
	g.MustAddNode("n3", "", fakeOp{"f", 1}, []*Tensor{b}, []*Tensor{out})
	for _, pol := range []SchedulePolicy{PolicyFIFO, PolicyMemGreedy} {
		res, err := g.Footprint(nil, pol)
		if err != nil {
			t.Fatal(err)
		}
		if res.PeakTransientBytes != 800 {
			t.Fatalf("%v: transient peak = %v, want 800", pol, res.PeakTransientBytes)
		}
		if res.PersistentBytes != 0 {
			t.Fatalf("persistent = %v, want 0", res.PersistentBytes)
		}
		if len(res.Order) != 3 {
			t.Fatalf("order len = %d", len(res.Order))
		}
	}
}

func TestFootprintIncludesPersistent(t *testing.T) {
	g := newTestGraph(t)
	w := g.NewTensor("w", Param, tensor.F32, tensor.Of(1000)) // 4000 B
	m := g.NewTensor("m", State, tensor.F32, tensor.Of(1000)) // 4000 B
	x := g.NewTensor("x", Input, tensor.F32, tensor.Of(10))   // 40 B
	y := g.NewTensor("y", Activation, tensor.F32, tensor.Of(10))
	g.MustAddNode("n", "", fakeOp{"f", 1}, []*Tensor{x, w, m}, []*Tensor{y})
	res, err := g.Footprint(nil, PolicyMemGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if res.PersistentBytes != 8000 {
		t.Fatalf("persistent = %v, want 8000", res.PersistentBytes)
	}
	if res.PeakBytes != 8000+80 {
		t.Fatalf("peak = %v, want 8080", res.PeakBytes)
	}
}

func TestMemGreedyBeatsFIFOOnFanOut(t *testing.T) {
	// A producer feeds two consumers: one tiny reducer that frees a big
	// tensor, one that allocates another big tensor. Greedy should run the
	// reducer first. Construct so FIFO picks the allocator first.
	g := newTestGraph(t)
	x := g.NewTensor("x", Input, tensor.F32, tensor.Of(256)) // 1 KiB
	big := g.NewTensor("big", Activation, tensor.F32, tensor.Of(2048))
	big2 := g.NewTensor("big2", Activation, tensor.F32, tensor.Of(2048))
	small := g.NewTensor("small", Activation, tensor.F32, tensor.Of(1))
	sink := g.NewTensor("sink", Activation, tensor.F32, tensor.Of(1))

	g.MustAddNode("produce", "", fakeOp{"f", 1}, []*Tensor{x}, []*Tensor{big})
	// Insertion order: allocator first so FIFO is forced to inflate.
	g.MustAddNode("alloc", "", fakeOp{"f", 1}, []*Tensor{big}, []*Tensor{big2})
	g.MustAddNode("reduce", "", fakeOp{"f", 1}, []*Tensor{big}, []*Tensor{small})
	g.MustAddNode("join", "", fakeOp{"f", 1}, []*Tensor{big2, small}, []*Tensor{sink})

	fifo, err := g.Footprint(nil, PolicyFIFO)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := g.Footprint(nil, PolicyMemGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.PeakBytes > fifo.PeakBytes {
		t.Fatalf("greedy (%v) should not exceed fifo (%v)", greedy.PeakBytes, fifo.PeakBytes)
	}
}

func TestFootprintUnboundSymbolError(t *testing.T) {
	g := newTestGraph(t)
	x := g.NewTensor("x", Input, tensor.F32, tensor.Of(symbolic.S("b")))
	y := g.NewTensor("y", Activation, tensor.F32, tensor.Of(symbolic.S("b")))
	g.MustAddNode("n", "", fakeOp{"f", 1}, []*Tensor{x}, []*Tensor{y})
	if _, err := g.Footprint(map[string]float64{}, PolicyFIFO); err == nil {
		t.Fatal("expected unbound symbol error")
	}
}

func TestAllocatorSim(t *testing.T) {
	sim := AllocatorSim{CapacityBytes: 12e9, UsableFraction: 0.8}
	r := sim.Apply(5e9)
	if r.Swapping || r.DeviceBytes != 5e9 {
		t.Fatalf("unexpected: %+v", r)
	}
	r = sim.Apply(20e9)
	if !r.Swapping {
		t.Fatal("expected swapping")
	}
	if r.DeviceBytes != 9.6e9 {
		t.Fatalf("device = %v, want 9.6e9", r.DeviceBytes)
	}
	if r.SwappedBytes != 20e9-9.6e9 {
		t.Fatalf("swapped = %v", r.SwappedBytes)
	}
}

func TestGroupAccounting(t *testing.T) {
	g := newTestGraph(t)
	h := symbolic.S("h")
	w1 := g.NewTensor("w1", Param, tensor.F32, tensor.Of(h, h))
	w1.Group = "embed"
	w2 := g.NewTensor("w2", Param, tensor.F32, tensor.Of(h, h))
	w2.Group = "output"
	x := g.NewTensor("x", Input, tensor.F32, tensor.Of(1, h))
	m := g.NewTensor("m", Activation, tensor.F32, tensor.Of(1, h))
	y := g.NewTensor("y", Activation, tensor.F32, tensor.Of(1, h))
	g.MustAddNode("mm1", "embed", fakeOp{"matmul", 10}, []*Tensor{x, w1}, []*Tensor{m})
	g.MustAddNode("mm2", "output", fakeOp{"matmul", 20}, []*Tensor{m, w2}, []*Tensor{y})

	env := symbolic.Env{"h": 4}
	gf := g.GroupFLOPs()
	if v, _ := gf["embed"].Eval(env); v != 10 {
		t.Fatalf("embed flops = %v", v)
	}
	if v, _ := gf["output"].Eval(env); v != 20 {
		t.Fatalf("output flops = %v", v)
	}
	pb := g.GroupParamBytes()
	if v, _ := pb["embed"].Eval(env); v != 64 {
		t.Fatalf("embed param bytes = %v", v)
	}
	groups := g.Groups()
	if len(groups) != 2 || groups[0] != "embed" || groups[1] != "output" {
		t.Fatalf("groups = %v", groups)
	}
	fp, err := g.GroupFootprints(symbolic.Env{"h": 4}, PolicyMemGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if fp["embed"] <= 0 || fp["output"] <= 0 {
		t.Fatalf("group footprints = %v", fp)
	}
	names := SortedGroupNames(fp)
	if len(names) != 2 || names[0] != "embed" {
		t.Fatalf("sorted names = %v", names)
	}
}
