package graph

import (
	"fmt"
	"sort"
)

// SchedulePolicy selects the traversal heuristic used when estimating the
// minimal memory footprint. The true minimum over all topological orders is
// NP-hard; the paper's artifact likewise uses a single-traversal estimate.
type SchedulePolicy int

// Scheduling policies.
const (
	// PolicyFIFO executes ready nodes in insertion order, mimicking a
	// straightforward framework executor.
	PolicyFIFO SchedulePolicy = iota
	// PolicyMemGreedy executes the ready node with the smallest net live-set
	// growth (allocation minus frees), a strong footprint-minimizing
	// heuristic for training graphs.
	PolicyMemGreedy
)

func (p SchedulePolicy) String() string {
	switch p {
	case PolicyFIFO:
		return "fifo"
	case PolicyMemGreedy:
		return "mem-greedy"
	}
	return "unknown"
}

// ScheduleResult reports the footprint of one simulated traversal.
type ScheduleResult struct {
	// PeakBytes is the maximum concurrent allocation: persistent tensors
	// plus the peak transient live set. This is the paper's "minimal memory
	// footprint" estimate.
	PeakBytes float64
	// PersistentBytes covers Param and State tensors (weights + optimizer
	// slots), resident for the entire step.
	PersistentBytes float64
	// PeakTransientBytes is the activation/gradient peak alone.
	PeakTransientBytes float64
	// Order is the traversal that produced the estimate.
	Order []*Node
}

// Footprint simulates a topological traversal under env and returns the
// memory footprint estimate for one training step.
func (g *Graph) Footprint(env map[string]float64, policy SchedulePolicy) (ScheduleResult, error) {
	// Pre-evaluate tensor byte sizes.
	bytes := make([]float64, len(g.tensors))
	var persistent float64
	for _, t := range g.tensors {
		v, err := t.Bytes().Eval(env)
		if err != nil {
			return ScheduleResult{}, fmt.Errorf("tensor %s: %w", t.Name, err)
		}
		bytes[t.id] = v
		if t.Persistent() {
			persistent += v
		}
	}

	// Remaining consumer counts for freeable tensors.
	remaining := make([]int, len(g.tensors))
	for _, t := range g.tensors {
		remaining[t.id] = len(t.Consumers)
	}

	// Transient live set: graph inputs are staged in before the step starts.
	live := make([]bool, len(g.tensors))
	var cur float64
	for _, t := range g.tensors {
		if t.Kind == Input {
			live[t.id] = true
			cur += bytes[t.id]
		}
	}
	peakTransient := cur

	indeg := make([]int, len(g.nodes))
	for _, n := range g.nodes {
		for _, t := range n.Inputs {
			if t.Producer != nil {
				indeg[n.id]++
			}
		}
	}
	ready := make([]*Node, 0, 64)
	for _, n := range g.nodes {
		if indeg[n.id] == 0 {
			ready = append(ready, n)
		}
	}

	// netDelta estimates the live-set change from executing n.
	netDelta := func(n *Node) float64 {
		var d float64
		for _, t := range n.Outputs {
			if !t.Persistent() && !live[t.id] {
				d += bytes[t.id]
			}
		}
		for _, t := range n.Inputs {
			if !t.Persistent() && live[t.id] && remaining[t.id] == 1 {
				d -= bytes[t.id]
			}
		}
		return d
	}

	order := make([]*Node, 0, len(g.nodes))
	for len(ready) > 0 {
		var pick int
		switch policy {
		case PolicyMemGreedy:
			best := netDelta(ready[0])
			for i := 1; i < len(ready); i++ {
				d := netDelta(ready[i])
				// Ties break toward insertion order: chained gradient
				// accumulations only become ready in chain order, so
				// honoring creation order lets each partial be folded into
				// the running sum as soon as it is produced.
				if d < best || (d == best && ready[i].id < ready[pick].id) {
					best, pick = d, i
				}
			}
		default: // PolicyFIFO: earliest inserted node.
			pick = 0
			for i := 1; i < len(ready); i++ {
				if ready[i].id < ready[pick].id {
					pick = i
				}
			}
		}
		n := ready[pick]
		ready[pick] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, n)

		// Allocate outputs.
		for _, t := range n.Outputs {
			if !t.Persistent() && !live[t.id] {
				live[t.id] = true
				cur += bytes[t.id]
			}
		}
		if cur > peakTransient {
			peakTransient = cur
		}
		// Free inputs whose last consumer just ran.
		for _, t := range n.Inputs {
			remaining[t.id]--
			if remaining[t.id] == 0 && !t.Persistent() && live[t.id] {
				live[t.id] = false
				cur -= bytes[t.id]
			}
		}
		// Outputs nobody consumes (e.g. the reported loss) are freed at step
		// end; they stay in the live set until then.
		for _, out := range n.Outputs {
			for _, c := range out.Consumers {
				indeg[c.id]--
				if indeg[c.id] == 0 {
					ready = append(ready, c)
				}
			}
		}
	}
	if len(order) != len(g.nodes) {
		return ScheduleResult{}, fmt.Errorf("graph: cycle detected during scheduling")
	}
	return ScheduleResult{
		PeakBytes:          persistent + peakTransient,
		PersistentBytes:    persistent,
		PeakTransientBytes: peakTransient,
		Order:              order,
	}, nil
}

// AllocatorSim models a framework allocator with a fixed device capacity, as
// observed in the paper's Figure 10: once the footprint exceeds the usable
// capacity, the framework swaps tensors to host memory and stops counting
// them, so the reported device footprint plateaus at the cap.
type AllocatorSim struct {
	// CapacityBytes is the device memory size.
	CapacityBytes float64
	// UsableFraction is the fraction of capacity the allocator may use
	// (TensorFlow defaults to ~0.8).
	UsableFraction float64
}

// AllocatorReport describes the simulated allocator outcome.
type AllocatorReport struct {
	// DeviceBytes is the footprint the allocator reports on-device.
	DeviceBytes float64
	// SwappedBytes spilled to host memory.
	SwappedBytes float64
	// Swapping reports whether any spill occurred.
	Swapping bool
}

// Apply converts a true footprint into the allocator-visible view.
func (a AllocatorSim) Apply(footprintBytes float64) AllocatorReport {
	limit := a.CapacityBytes * a.UsableFraction
	if footprintBytes <= limit {
		return AllocatorReport{DeviceBytes: footprintBytes}
	}
	return AllocatorReport{
		DeviceBytes:  limit,
		SwappedBytes: footprintBytes - limit,
		Swapping:     true,
	}
}

// GroupFootprints estimates per-group resident bytes for layer-wise
// parallelism planning: parameters (plus optimizer state and weight
// gradients, which the paper's 12 B/param accounting keeps resident) are
// attributed to their group, and peak transient bytes are attributed to the
// group active at the peak.
func (g *Graph) GroupFootprints(env map[string]float64, policy SchedulePolicy) (map[string]float64, error) {
	res, err := g.Footprint(env, policy)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, t := range g.tensors {
		if t.Persistent() {
			v, err := t.Bytes().Eval(env)
			if err != nil {
				return nil, err
			}
			out[t.Group] += v
		}
	}
	// Attribute the transient peak proportionally to per-group transient
	// traffic, a first-order split adequate for planning.
	groupTransient := make(map[string]float64)
	var totalTransient float64
	for _, t := range g.tensors {
		if !t.Persistent() {
			v, err := t.Bytes().Eval(env)
			if err != nil {
				return nil, err
			}
			groupTransient[t.Group] += v
			totalTransient += v
		}
	}
	if totalTransient > 0 {
		for k, v := range groupTransient {
			out[k] += res.PeakTransientBytes * v / totalTransient
		}
	}
	return out, nil
}

// SortedGroupNames returns map keys in sorted order, for deterministic
// reporting.
func SortedGroupNames(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
