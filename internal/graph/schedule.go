package graph

import (
	"fmt"
	"sort"
)

// SchedulePolicy selects the traversal heuristic used when estimating the
// minimal memory footprint. The true minimum over all topological orders is
// NP-hard; the paper's artifact likewise uses a single-traversal estimate.
type SchedulePolicy int

// Scheduling policies.
const (
	// PolicyFIFO executes ready nodes in insertion order, mimicking a
	// straightforward framework executor.
	PolicyFIFO SchedulePolicy = iota
	// PolicyMemGreedy executes the ready node with the smallest net live-set
	// growth (allocation minus frees), a strong footprint-minimizing
	// heuristic for training graphs.
	PolicyMemGreedy
)

func (p SchedulePolicy) String() string {
	switch p {
	case PolicyFIFO:
		return "fifo"
	case PolicyMemGreedy:
		return "mem-greedy"
	}
	return "unknown"
}

// ScheduleResult reports the footprint of one simulated traversal.
type ScheduleResult struct {
	// PeakBytes is the maximum concurrent allocation: persistent tensors
	// plus the peak transient live set. This is the paper's "minimal memory
	// footprint" estimate.
	PeakBytes float64
	// PersistentBytes covers Param and State tensors (weights + optimizer
	// slots), resident for the entire step.
	PersistentBytes float64
	// PeakTransientBytes is the activation/gradient peak alone.
	PeakTransientBytes float64
	// Order is the traversal that produced the estimate.
	Order []*Node
}

// Footprint simulates a topological traversal under env and returns the
// memory footprint estimate for one training step. Hot paths that sweep many
// evaluation points should compile the graph once and use
// Compiled.Footprint, which replaces the per-tensor tree walk below with
// precompiled programs.
func (g *Graph) Footprint(env map[string]float64, policy SchedulePolicy) (ScheduleResult, error) {
	// Pre-evaluate tensor byte sizes.
	bytes := make([]float64, len(g.tensors))
	for _, t := range g.tensors {
		v, err := t.Bytes().Eval(env)
		if err != nil {
			return ScheduleResult{}, fmt.Errorf("tensor %s: %w", t.Name, err)
		}
		bytes[t.id] = v
	}
	return g.simulateFootprint(bytes, policy)
}

// footprintSim holds every buffer one traversal simulation needs. Reusing
// one across calls removes the multi-megabyte per-call allocations that
// dominated sweep memory traffic on large graphs (a 47k-node speech graph
// needs ~2.3 MB of counters, flags, heap state, and order storage per
// simulation).
type footprintSim struct {
	remaining []int
	live      []bool
	indeg     []int
	order     []*Node
	heap      nodeHeap
}

// reset grows the buffers for a graph with nt tensors and nn nodes and
// clears the state the simulation reads before writing.
func (fs *footprintSim) reset(nt, nn int) {
	if cap(fs.remaining) < nt {
		fs.remaining = make([]int, nt)
		fs.live = make([]bool, nt)
	}
	fs.remaining = fs.remaining[:nt]
	fs.live = fs.live[:nt]
	clear(fs.live)
	if cap(fs.indeg) < nn {
		fs.indeg = make([]int, nn)
	}
	fs.indeg = fs.indeg[:nn]
	clear(fs.indeg)
	if cap(fs.order) < nn {
		fs.order = make([]*Node, 0, nn)
	}
	fs.order = fs.order[:0]
	fs.heap.reset(nn)
}

// simulateFootprint runs the traversal simulation over pre-evaluated
// per-tensor byte sizes (indexed by tensor id), allocating fresh state.
// Hot paths reuse state via simulateFootprintInto.
func (g *Graph) simulateFootprint(bytes []float64, policy SchedulePolicy) (ScheduleResult, error) {
	return g.simulateFootprintInto(bytes, policy, &footprintSim{})
}

// simulateFootprintInto is the shared core of Graph.Footprint,
// Compiled.Footprint, and the batched footprint paths. The returned Order
// aliases fs.order and is valid until fs is reused.
//
// The ready set is an indexed min-heap keyed by the policy's priority
// (net live-set delta for mem-greedy, insertion order for FIFO), with
// decrease-key maintenance instead of a full rescan per pick. A ready
// node's delta can only change when one of its input tensors drops to a
// single remaining consumer — its own inputs cannot be freed and its
// outputs cannot become live while it waits — so adjusting exactly that
// consumer keeps every key equal to a fresh recomputation.
func (g *Graph) simulateFootprintInto(bytes []float64, policy SchedulePolicy, fs *footprintSim) (ScheduleResult, error) {
	fs.reset(len(g.tensors), len(g.nodes))

	var persistent float64
	for _, t := range g.tensors {
		if t.Persistent() {
			persistent += bytes[t.id]
		}
	}

	// Remaining consumer counts for freeable tensors.
	remaining := fs.remaining
	for _, t := range g.tensors {
		remaining[t.id] = len(t.Consumers)
	}

	// Transient live set: graph inputs are staged in before the step starts.
	live := fs.live
	var cur float64
	for _, t := range g.tensors {
		if t.Kind == Input {
			live[t.id] = true
			cur += bytes[t.id]
		}
	}
	peakTransient := cur

	indeg := fs.indeg
	for _, n := range g.nodes {
		for _, t := range n.Inputs {
			if t.Producer != nil {
				indeg[n.id]++
			}
		}
	}

	// netDelta estimates the live-set change from executing n.
	netDelta := func(n *Node) float64 {
		var d float64
		for _, t := range n.Outputs {
			if !t.Persistent() && !live[t.id] {
				d += bytes[t.id]
			}
		}
		for _, t := range n.Inputs {
			if !t.Persistent() && live[t.id] && remaining[t.id] == 1 {
				d -= bytes[t.id]
			}
		}
		return d
	}
	// keyFor orders the ready heap. Ties break toward insertion order (the
	// heap compares node ids after keys): chained gradient accumulations
	// only become ready in chain order, so honoring creation order lets
	// each partial be folded into the running sum as soon as it is produced.
	keyFor := func(n *Node) float64 {
		if policy == PolicyMemGreedy {
			return netDelta(n)
		}
		return float64(n.id) // FIFO: earliest inserted node.
	}

	ready := &fs.heap
	for _, n := range g.nodes {
		if indeg[n.id] == 0 {
			ready.push(n.id, keyFor(n))
		}
	}

	order := fs.order
	for ready.len() > 0 {
		n := g.nodes[ready.pop()]
		order = append(order, n)

		// Allocate outputs.
		for _, t := range n.Outputs {
			if !t.Persistent() && !live[t.id] {
				live[t.id] = true
				cur += bytes[t.id]
			}
		}
		if cur > peakTransient {
			peakTransient = cur
		}
		// Free inputs whose last consumer just ran.
		for _, t := range n.Inputs {
			remaining[t.id]--
			if t.Persistent() || !live[t.id] {
				continue
			}
			switch remaining[t.id] {
			case 0:
				live[t.id] = false
				cur -= bytes[t.id]
			case 1:
				if policy != PolicyMemGreedy {
					break
				}
				// Exactly one unexecuted consumer entry remains; freeing t
				// now counts toward that consumer's net delta. If it is not
				// ready yet, its key is computed fresh when it is pushed.
				for _, c := range t.Consumers {
					if ready.contains(c.id) {
						ready.decrease(c.id, ready.key(c.id)-bytes[t.id])
						break
					}
				}
			}
		}
		// Outputs nobody consumes (e.g. the reported loss) are freed at step
		// end; they stay in the live set until then.
		for _, out := range n.Outputs {
			for _, c := range out.Consumers {
				indeg[c.id]--
				if indeg[c.id] == 0 {
					ready.push(c.id, keyFor(c))
				}
			}
		}
	}
	fs.order = order
	if len(order) != len(g.nodes) {
		return ScheduleResult{}, fmt.Errorf("graph: cycle detected during scheduling")
	}
	return ScheduleResult{
		PeakBytes:          persistent + peakTransient,
		PersistentBytes:    persistent,
		PeakTransientBytes: peakTransient,
		Order:              order,
	}, nil
}

// nodeHeap is an indexed binary min-heap of node ids ordered by (key, id).
// The id tie-break keeps traversal deterministic and insertion-ordered.
type nodeHeap struct {
	keys []float64 // by node id
	pos  []int32   // by node id; -1 when absent
	arr  []int32   // heap order
}

// reset prepares the heap for a graph of n nodes, reusing prior storage.
func (h *nodeHeap) reset(n int) {
	if cap(h.keys) < n {
		h.keys = make([]float64, n)
		h.pos = make([]int32, n)
	}
	if cap(h.arr) < n {
		h.arr = make([]int32, 0, n)
	}
	h.keys = h.keys[:n]
	h.pos = h.pos[:n]
	h.arr = h.arr[:0]
	for i := range h.pos {
		h.pos[i] = -1
	}
}

func (h *nodeHeap) len() int             { return len(h.arr) }
func (h *nodeHeap) contains(id int) bool { return h.pos[id] >= 0 }
func (h *nodeHeap) key(id int) float64   { return h.keys[id] }

func (h *nodeHeap) less(a, b int32) bool {
	if h.keys[a] != h.keys[b] {
		return h.keys[a] < h.keys[b]
	}
	return a < b
}

func (h *nodeHeap) push(id int, key float64) {
	h.keys[id] = key
	h.pos[id] = int32(len(h.arr))
	h.arr = append(h.arr, int32(id))
	h.siftUp(len(h.arr) - 1)
}

func (h *nodeHeap) pop() int {
	top := h.arr[0]
	last := len(h.arr) - 1
	h.arr[0] = h.arr[last]
	h.pos[h.arr[0]] = 0
	h.arr = h.arr[:last]
	h.pos[top] = -1
	if last > 0 {
		h.siftDown(0)
	}
	return int(top)
}

// decrease lowers id's key; key must not exceed the current one.
func (h *nodeHeap) decrease(id int, key float64) {
	h.keys[id] = key
	h.siftUp(int(h.pos[id]))
}

func (h *nodeHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.arr[i], h.arr[parent]) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *nodeHeap) siftDown(i int) {
	n := len(h.arr)
	for {
		left, right := 2*i+1, 2*i+2
		min := i
		if left < n && h.less(h.arr[left], h.arr[min]) {
			min = left
		}
		if right < n && h.less(h.arr[right], h.arr[min]) {
			min = right
		}
		if min == i {
			return
		}
		h.swap(i, min)
		i = min
	}
}

func (h *nodeHeap) swap(i, j int) {
	h.arr[i], h.arr[j] = h.arr[j], h.arr[i]
	h.pos[h.arr[i]] = int32(i)
	h.pos[h.arr[j]] = int32(j)
}

// AllocatorSim models a framework allocator with a fixed device capacity, as
// observed in the paper's Figure 10: once the footprint exceeds the usable
// capacity, the framework swaps tensors to host memory and stops counting
// them, so the reported device footprint plateaus at the cap.
type AllocatorSim struct {
	// CapacityBytes is the device memory size.
	CapacityBytes float64
	// UsableFraction is the fraction of capacity the allocator may use
	// (TensorFlow defaults to ~0.8).
	UsableFraction float64
}

// AllocatorReport describes the simulated allocator outcome.
type AllocatorReport struct {
	// DeviceBytes is the footprint the allocator reports on-device.
	DeviceBytes float64 `json:"device_bytes"`
	// SwappedBytes spilled to host memory.
	SwappedBytes float64 `json:"swapped_bytes"`
	// Swapping reports whether any spill occurred.
	Swapping bool `json:"swapping"`
}

// Apply converts a true footprint into the allocator-visible view.
func (a AllocatorSim) Apply(footprintBytes float64) AllocatorReport {
	limit := a.CapacityBytes * a.UsableFraction
	if footprintBytes <= limit {
		return AllocatorReport{DeviceBytes: footprintBytes}
	}
	return AllocatorReport{
		DeviceBytes:  limit,
		SwappedBytes: footprintBytes - limit,
		Swapping:     true,
	}
}

// GroupFootprints estimates per-group resident bytes for layer-wise
// parallelism planning: parameters (plus optimizer state and weight
// gradients, which the paper's 12 B/param accounting keeps resident) are
// attributed to their group, and peak transient bytes are attributed to the
// group active at the peak.
func (g *Graph) GroupFootprints(env map[string]float64, policy SchedulePolicy) (map[string]float64, error) {
	res, err := g.Footprint(env, policy)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, t := range g.tensors {
		if t.Persistent() {
			v, err := t.Bytes().Eval(env)
			if err != nil {
				return nil, err
			}
			out[t.Group] += v
		}
	}
	// Attribute the transient peak proportionally to per-group transient
	// traffic, a first-order split adequate for planning.
	groupTransient := make(map[string]float64)
	var totalTransient float64
	for _, t := range g.tensors {
		if !t.Persistent() {
			v, err := t.Bytes().Eval(env)
			if err != nil {
				return nil, err
			}
			groupTransient[t.Group] += v
			totalTransient += v
		}
	}
	if totalTransient > 0 {
		for k, v := range groupTransient {
			out[k] += res.PeakTransientBytes * v / totalTransient
		}
	}
	return out, nil
}

// SortedGroupNames returns map keys in sorted order, for deterministic
// reporting.
func SortedGroupNames(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
