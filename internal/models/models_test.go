package models

import (
	"math"
	"testing"

	"catamount/internal/graph"
	"catamount/internal/ops"
	"catamount/internal/symbolic"
)

// tiny configs keep structural tests fast.
func tinyWordLM() WordLMConfig {
	return WordLMConfig{Layers: 2, SeqLen: 4, Vocab: 50}
}

func tinyCharLM() CharLMConfig {
	return CharLMConfig{RecurrenceDepth: 3, SeqLen: 5, Vocab: 30}
}

func tinyNMT() NMTConfig {
	return NMTConfig{SrcLen: 3, TgtLen: 3, Vocab: 40, DecoderLayers: 2}
}

func tinySpeech() SpeechConfig {
	return SpeechConfig{Frames: 8, FeatDim: 8, EncoderLayers: 2, PoolLayers: 1,
		TgtLen: 3, Vocab: 12, LocConvFilters: 4, LocConvWidth: 3}
}

func tinyResNet() ResNetConfig {
	return ResNetConfig{Blocks: [4]int{1, 1, 1, 1}, Classes: 10, Image: 32}
}

func TestAllTinyModelsValidate(t *testing.T) {
	ms := []*Model{
		BuildWordLM(tinyWordLM()),
		BuildCharLM(tinyCharLM()),
		BuildNMT(tinyNMT()),
		BuildSpeech(tinySpeech()),
		BuildResNet(tinyResNet()),
	}
	for _, m := range ms {
		if err := m.Graph.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		if len(m.Graph.Params()) == 0 {
			t.Errorf("%s: no parameters", m.Name)
		}
	}
}

func TestWordLMParamFormula(t *testing.T) {
	// Paper §4.2: p ≈ 8h²l + 2hv (embedding + recurrent + output), plus
	// small bias terms. Check the symbolic parameter count against the
	// closed form at several h.
	cfg := tinyWordLM()
	m := BuildWordLM(cfg)
	for _, h := range []float64{16, 64, 256} {
		got := m.Params(h)
		// Exact accounting: embed hv + per-layer (2h·4h + 4h) + softmax
		// (hv + v).
		v := float64(cfg.Vocab)
		want := h*v + float64(cfg.Layers)*(8*h*h+4*h) + h*v + v
		if math.Abs(got-want) > 0.5 {
			t.Fatalf("h=%v: params=%v, want %v", h, got, want)
		}
	}
}

func TestWordLMForwardFLOPsFormula(t *testing.T) {
	// Paper §4.2: forward FLOPs per sample ≈ q(16h²l + 2hv) for large h.
	cfg := WordLMConfig{Layers: 2, SeqLen: 8, Vocab: 100}
	m := BuildWordLM(cfg)
	h := 4096.0
	env := m.Env(h, 1)
	fwd, _, err := ops.ForwardBackwardSplit(m.Graph, env)
	if err != nil {
		t.Fatal(err)
	}
	q, l, v := float64(cfg.SeqLen), float64(cfg.Layers), float64(cfg.Vocab)
	want := q * (16*h*h*l + 2*h*v)
	if ratio := fwd / want; ratio < 1.0 || ratio > 1.15 {
		t.Fatalf("fwd=%.3g, closed form %.3g, ratio %.3f outside [1, 1.15]", fwd, want, ratio)
	}
}

func TestBackwardTwiceForwardAllDomains(t *testing.T) {
	// Paper §2.1: backprop ≈ 2x forward FLOPs for every architecture.
	ms := []*Model{
		BuildWordLM(tinyWordLM()),
		BuildCharLM(tinyCharLM()),
		BuildNMT(tinyNMT()),
		BuildSpeech(tinySpeech()),
		BuildResNet(tinyResNet()),
	}
	for _, m := range ms {
		size := 64.0
		if m.Domain == ImageCl {
			size = 1
		}
		fwd, bwd, err := ops.ForwardBackwardSplit(m.Graph, m.Env(size, 32))
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		ratio := bwd / fwd
		if ratio < 1.7 || ratio > 2.6 {
			t.Errorf("%s: bwd/fwd = %.2f, want ~2", m.Name, ratio)
		}
	}
}

func TestFLOPsLinearInParams(t *testing.T) {
	// Paper §4.2 (Figure 7): per-step FLOPs grow linearly with parameter
	// count for moderately large models. Check that FLOPs/param stabilizes
	// as h doubles.
	m := BuildWordLM(WordLMConfig{Layers: 2, SeqLen: 8, Vocab: 100})
	var prev float64
	for i, h := range []float64{1024, 2048, 4096} {
		env := m.Env(h, 1)
		f := symbolic.MustEval(m.FLOPsExpr(), env)
		ratio := f / m.Params(h)
		if i > 0 && math.Abs(ratio-prev)/prev > 0.02 {
			t.Fatalf("FLOPs/param drifted: %v -> %v", prev, ratio)
		}
		prev = ratio
	}
	// Asymptote: 3 traversals * 2q FLOPs per parameter per traversal, plus
	// 4 FLOPs/param from the momentum update.
	want := 6.0*8 + 4
	if math.Abs(prev-want)/want > 0.1 {
		t.Fatalf("FLOPs/param = %.1f, want ~%.0f (6q + 4)", prev, want)
	}
}

func TestCharLMSixQ(t *testing.T) {
	// Char LM FLOPs/param → 6q (the paper's 900 at q=150).
	m := BuildCharLM(CharLMConfig{RecurrenceDepth: 3, SeqLen: 10, Vocab: 30})
	h := 4096.0
	ratio := symbolic.MustEval(m.FLOPsExpr(), m.Env(h, 1)) / m.Params(h)
	if math.Abs(ratio-64)/64 > 0.1 {
		t.Fatalf("FLOPs/param = %.1f, want ~64 (6q + 4, q=10)", ratio)
	}
}

func TestSizeForParamsInverts(t *testing.T) {
	ms := []*Model{
		BuildWordLM(tinyWordLM()),
		BuildResNet(tinyResNet()),
	}
	for _, m := range ms {
		target := 5e6
		size, err := m.SizeForParams(target)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		got := m.Params(size)
		if math.Abs(got-target)/target > 1e-6 {
			t.Fatalf("%s: params(size)=%v, want %v", m.Name, got, target)
		}
	}
}

func TestSizeForParamsUnreachable(t *testing.T) {
	m := BuildWordLM(tinyWordLM())
	if _, err := m.SizeForParams(math.Inf(1)); err == nil {
		t.Fatal("expected unreachable error")
	}
}

func TestResNetDepthConfigs(t *testing.T) {
	for _, depth := range []int{26, 50, 101, 152} {
		cfg, err := ResNetDepthConfig(depth)
		if err != nil {
			t.Fatal(err)
		}
		sum := cfg.Blocks[0] + cfg.Blocks[1] + cfg.Blocks[2] + cfg.Blocks[3]
		if sum <= 0 {
			t.Fatalf("depth %d: no blocks", depth)
		}
	}
	if _, err := ResNetDepthConfig(37); err == nil {
		t.Fatal("expected error for unsupported depth")
	}
}

func TestResNet50ParamCountAtWidth1(t *testing.T) {
	// Standard bottleneck ResNet-50 has ~25.5M params; ours should land
	// within a few percent (we use projection-shortcut bottlenecks and
	// same-padding convs).
	m := BuildResNet(DefaultResNetConfig())
	p := m.Params(1)
	if p < 23e6 || p > 29e6 {
		t.Fatalf("ResNet-50 params = %.3gM, want ~25.5M", p/1e6)
	}
}

func TestResNetDeeperHasMoreParams(t *testing.T) {
	c50 := DefaultResNetConfig()
	c152, _ := ResNetDepthConfig(152)
	p50 := BuildResNet(c50).Params(1)
	p152 := BuildResNet(c152).Params(1)
	if p152 <= p50 {
		t.Fatalf("resnet152 (%.3g) should exceed resnet50 (%.3g)", p152, p50)
	}
}

func TestProjectionReducesFLOPs(t *testing.T) {
	// The case study's LSTM projection cuts output-layer FLOPs sharply at
	// production vocabulary sizes (§6.1: 11.7x total step-time reduction).
	base := BuildWordLM(WordLMConfig{Layers: 2, SeqLen: 8, Vocab: 100000})
	proj := BuildWordLM(WordLMConfig{Layers: 2, SeqLen: 8, Vocab: 100000,
		Projection: true, ProjectionFraction: 0.25})
	h := 2048.0
	fBase := symbolic.MustEval(base.FLOPsExpr(), base.Env(h, 1))
	fProj := symbolic.MustEval(proj.FLOPsExpr(), proj.Env(h, 1))
	if fProj >= fBase {
		t.Fatalf("projection did not reduce FLOPs: %.3g vs %.3g", fProj, fBase)
	}
	if fBase/fProj < 2 {
		t.Fatalf("projection reduction only %.2fx at vocab 100k", fBase/fProj)
	}
}

func TestFootprintIncludesOptimizerState(t *testing.T) {
	// Weights + gradients + momentum give the ~12 B/param floor the paper
	// reports for language models (Table 2).
	m := BuildWordLM(WordLMConfig{Layers: 2, SeqLen: 8, Vocab: 100})
	h := 2048.0
	res, err := m.Graph.Footprint(m.Env(h, 1), graph.PolicyMemGreedy)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Params(h)
	perParam := res.PeakBytes / p
	if perParam < 8 || perParam > 20 {
		t.Fatalf("footprint/param = %.2f B, want in [8, 20]", perParam)
	}
	if res.PersistentBytes < 8*p {
		t.Fatalf("persistent %.3g < 8 B/param", res.PersistentBytes)
	}
}

func TestFootprintGrowsWithBatch(t *testing.T) {
	m := BuildCharLM(tinyCharLM())
	small, err := m.Graph.Footprint(m.Env(64, 1), graph.PolicyMemGreedy)
	if err != nil {
		t.Fatal(err)
	}
	big, err := m.Graph.Footprint(m.Env(64, 256), graph.PolicyMemGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if big.PeakBytes <= small.PeakBytes {
		t.Fatalf("footprint did not grow with batch: %v vs %v", small.PeakBytes, big.PeakBytes)
	}
	if big.PersistentBytes != small.PersistentBytes {
		t.Fatal("persistent bytes must not depend on batch")
	}
}

func TestGroupsCoverModelStructure(t *testing.T) {
	m := BuildWordLM(tinyWordLM())
	groups := m.Graph.Groups()
	want := map[string]bool{"embed": true, "lstm0": true, "lstm1": true, "output": true}
	for g := range want {
		found := false
		for _, got := range groups {
			if got == g {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing group %q in %v", g, groups)
		}
	}
}

func TestBuildByDomain(t *testing.T) {
	for _, d := range AllDomains {
		m, err := Build(d)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if m.Domain != d {
			t.Fatalf("domain mismatch: %v vs %v", m.Domain, d)
		}
		if m.DefaultBatch <= 0 || m.SeqLen <= 0 {
			t.Fatalf("%s: bad defaults %+v", d, m)
		}
	}
	if _, err := Build(Domain("nope")); err == nil {
		t.Fatal("expected unknown-domain error")
	}
}

func TestNMTAttentionPresent(t *testing.T) {
	m := BuildNMT(tinyNMT())
	var batched, softmax int
	for _, n := range m.Graph.Nodes() {
		switch n.Op.Kind() {
		case "batched-matmul":
			batched++
		case "softmax":
			softmax++
		}
	}
	if batched < 2*3 { // score + context per decoder step (fwd only)
		t.Fatalf("batched matmuls = %d, want >= 6", batched)
	}
	if softmax < 3 {
		t.Fatalf("attention softmaxes = %d, want >= 3", softmax)
	}
}

func TestSpeechHasLocationConv(t *testing.T) {
	m := BuildSpeech(tinySpeech())
	var convs int
	for _, n := range m.Graph.Nodes() {
		if n.Op.Kind() == "conv2d" {
			convs++
		}
	}
	if convs < 3 { // one per decoder step
		t.Fatalf("location convs = %d, want >= TgtLen", convs)
	}
}

func TestSpeechPyramidalPoolingShrinksTime(t *testing.T) {
	m := BuildSpeech(tinySpeech())
	// With Frames=8 and one pooled layer, the attention should span 4
	// encoder steps: look for softmax over last dim 4.
	found := false
	for _, tns := range m.Graph.Tensors() {
		if tns.Producer != nil && tns.Producer.Op.Kind() == "softmax" &&
			tns.Shape.Rank() == 3 {
			if c, ok := symbolic.IsConst(tns.Shape.Dim(2)); ok && c == 4 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no attention softmax over pooled encoder length 4")
	}
}

func TestRecurrentFootprintSchedulerHandlesAccumulationChains(t *testing.T) {
	// Regression test for the scheduler tie-breaking fix: per-timestep
	// weight-gradient partials must fold into the running sum promptly, so
	// peak transient memory stays near a small multiple of the weight size
	// rather than q times it.
	cfg := WordLMConfig{Layers: 1, SeqLen: 16, Vocab: 64}
	m := BuildWordLM(cfg)
	h := 512.0
	res, err := m.Graph.Footprint(m.Env(h, 1), graph.PolicyMemGreedy)
	if err != nil {
		t.Fatal(err)
	}
	weightBytes := 4 * (8*h*h + 4*h)
	if res.PeakTransientBytes > 6*weightBytes {
		t.Fatalf("transient %.3g > 6x weight bytes %.3g: accumulation chain not folded",
			res.PeakTransientBytes, weightBytes)
	}
}
