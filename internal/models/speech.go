package models

import (
	"fmt"

	"catamount/internal/graph"
	"catamount/internal/ops"
	"catamount/internal/symbolic"
	"catamount/internal/tensor"
)

// SpeechConfig parameterizes the hybrid attention speech model (paper §2.5,
// after Battenberg et al.): a pyramidal bidirectional-LSTM encoder with
// inter-layer time pooling, and an LSTM decoder with a location-aware
// (convolutional) attention context layer.
type SpeechConfig struct {
	// Frames is the input utterance length in feature frames.
	Frames int
	// FeatDim is the per-frame filterbank feature width.
	FeatDim int
	// EncoderLayers is the number of bi-LSTM encoder layers; time pooling
	// by 2 follows each of the first PoolLayers layers.
	EncoderLayers int
	// PoolLayers counts the encoder layers followed by 2x time pooling.
	PoolLayers int
	// TgtLen is the decoded transcript length in characters.
	TgtLen int
	// Vocab is the output character vocabulary.
	Vocab int
	// LocConvFilters and LocConvWidth shape the attention location conv.
	LocConvFilters, LocConvWidth int
	// DType selects the training precision (F32 default, F16 halves the
	// weight and activation footprint — the paper's §6.2.3 low-precision
	// direction).
	DType tensor.DType
}

// DefaultSpeechConfig matches the paper's profiling setup: ~300 recurrent
// encoder steps with pyramidal pooling.
func DefaultSpeechConfig() SpeechConfig {
	return SpeechConfig{
		Frames:         300,
		FeatDim:        40,
		EncoderLayers:  3,
		PoolLayers:     2,
		TgtLen:         100,
		Vocab:          30,
		LocConvFilters: 32,
		LocConvWidth:   15,
	}
}

// BuildSpeech constructs the speech recognition training graph.
func BuildSpeech(cfg SpeechConfig) *Model {
	b := ops.NewBuilder("speech")
	b.DType = cfg.DType
	h := symbolic.S("h")
	bs := symbolic.S("b")

	m := &Model{
		Name: fmt.Sprintf("speech(T=%d,enc=%d,qt=%d)",
			cfg.Frames, cfg.EncoderLayers, cfg.TgtLen),
		Domain:       Speech,
		SizeSymbol:   "h",
		BatchSymbol:  "b",
		SeqLen:       cfg.Frames,
		DefaultBatch: 128,
	}

	// Pyramidal encoder.
	b.Group("encoder")
	audio := b.Input("audio", tensor.F32, bs, cfg.Frames, cfg.FeatDim)
	frames := b.Split(audio, 1, cfg.Frames)
	steps := make([]*graph.Tensor, cfg.Frames)
	for t := range steps {
		steps[t] = b.Reshape(frames[t], bs, cfg.FeatDim)
	}
	inDim := symbolic.Expr(symbolic.C(float64(cfg.FeatDim)))
	two := symbolic.Mul(symbolic.C(2), h)
	for l := 0; l < cfg.EncoderLayers; l++ {
		steps = biLSTMLayer(b, fmt.Sprintf("enc%d", l), steps, inDim, h, bs)
		inDim = two
		if l < cfg.PoolLayers {
			steps = poolTime(b, steps, two, bs, 2)
		}
	}
	qEnc := len(steps)
	henc := stackTime3(b, steps, bs, two) // [b, qEnc, 2h]

	// Decoder with location-aware attention.
	b.Group("decoder")
	table := b.Param("char_embedding", cfg.Vocab, h)
	ids := b.Input("tgt_ids", tensor.I32, bs, cfg.TgtLen)
	emb := b.Embedding(table, ids)
	tgtSlices := b.Split(emb, 1, cfg.TgtLen)
	decW, decB := lstmParams(b, "dec_lstm", h, h)
	decSt := newLSTMState(b, "dec_lstm", bs, h)

	b.Group("attention")
	wQuery := b.Param("attn_query", h, two) // project decoder state to key width
	locConv := b.Param("attn_loc_conv",     // small conv over alignments (§2.5)
		cfg.LocConvWidth, 1, 1, cfg.LocConvFilters)
	wLoc := b.Param("attn_loc_proj", cfg.LocConvFilters, 1)
	wCtx := b.Param("attn_combine", symbolic.Add(h, two), h)
	bCtx := b.Param("attn_combine_b", h)

	align := b.Zeros("attn_align0", bs, qEnc)
	attnSteps := make([]*graph.Tensor, cfg.TgtLen)
	for t := 0; t < cfg.TgtLen; t++ {
		b.Group("decoder")
		x := b.Reshape(tgtSlices[t], bs, h)
		decSt = lstmStep(b, x, decSt, decW, decB)
		b.Group("attention")
		// Location features from the previous alignment.
		loc4 := b.Reshape(align, bs, qEnc, 1, 1)
		locFeat := b.Conv2D(loc4, locConv, 1, 1) // [b, qEnc, 1, F]
		locFlat := b.Reshape(locFeat, symbolic.Mul(bs, symbolic.C(float64(qEnc))), cfg.LocConvFilters)
		locScore := b.MatMul(locFlat, wLoc) // [b*qEnc, 1]
		locScore3 := b.Reshape(locScore, bs, 1, qEnc)
		// Content scores.
		query := b.MatMul(decSt.h, wQuery) // [b, 2h]
		q3 := b.Reshape(query, bs, 1, two)
		content := b.BatchedMatMul(q3, henc, false, true) // [b, 1, qEnc]
		scores := b.Add(content, locScore3)
		attn := b.Softmax(scores)
		ctx3 := b.BatchedMatMul(attn, henc, false, false) // [b, 1, 2h]
		ctx := b.Reshape(ctx3, bs, two)
		align = b.Reshape(attn, bs, qEnc)
		combined := b.Concat(1, decSt.h, ctx)
		attnSteps[t] = b.Tanh(b.BiasAdd(b.MatMul(combined, wCtx), bCtx))
	}

	b.Group("output")
	labels := b.Input("labels", tensor.I32, bs, cfg.TgtLen)
	loss := timeDistributedOutput(b, attnSteps, h, bs, cfg.Vocab, labels)

	return attachTraining(b, loss, m)
}
