package models

import (
	"testing"

	"catamount/internal/graph"
)

func BenchmarkBuildWordLM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = BuildWordLM(DefaultWordLMConfig())
	}
}

func BenchmarkBuildCharLM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = BuildCharLM(DefaultCharLMConfig())
	}
}

func BenchmarkBuildSpeech(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = BuildSpeech(DefaultSpeechConfig())
	}
}

func BenchmarkBuildResNet50(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = BuildResNet(DefaultResNetConfig())
	}
}

func BenchmarkWordLMFootprint(b *testing.B) {
	m := BuildWordLM(DefaultWordLMConfig())
	env := m.Env(5903, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Graph.Footprint(env, graph.PolicyMemGreedy); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWordLMFLOPsEval(b *testing.B) {
	m := BuildWordLM(DefaultWordLMConfig())
	expr := m.FLOPsExpr()
	env := m.Env(5903, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expr.Eval(env); err != nil {
			b.Fatal(err)
		}
	}
}
