package models

import (
	"fmt"

	"catamount/internal/graph"
	"catamount/internal/ops"
	"catamount/internal/symbolic"
	"catamount/internal/tensor"
)

// NMTConfig parameterizes the translation model (paper §2.4, after Luong et
// al.): a bidirectional-LSTM encoder, a stacked-LSTM decoder, and a global
// attention context + selection layer.
type NMTConfig struct {
	// SrcLen and TgtLen are source/target sequence lengths in word pieces
	// (FLOPs/param → ~6·25 ≈ 149 at the paper's sentence lengths).
	SrcLen, TgtLen int
	// Vocab is the shared word-piece vocabulary size.
	Vocab int
	// DecoderLayers is the stacked decoder depth.
	DecoderLayers int
	// DType selects the training precision (F32 default, F16 halves the
	// weight and activation footprint — the paper's §6.2.3 low-precision
	// direction).
	DType tensor.DType
}

// DefaultNMTConfig matches the paper's profiling setup.
func DefaultNMTConfig() NMTConfig {
	return NMTConfig{SrcLen: 25, TgtLen: 25, Vocab: 32000, DecoderLayers: 2}
}

// BuildNMT constructs the NMT training graph.
func BuildNMT(cfg NMTConfig) *Model {
	b := ops.NewBuilder("nmt")
	b.DType = cfg.DType
	h := symbolic.S("h")
	bs := symbolic.S("b")

	m := &Model{
		Name: fmt.Sprintf("nmt(qs=%d,qt=%d,v=%d)",
			cfg.SrcLen, cfg.TgtLen, cfg.Vocab),
		Domain:       NMT,
		SizeSymbol:   "h",
		BatchSymbol:  "b",
		SeqLen:       cfg.SrcLen,
		DefaultBatch: 96,
	}

	// Encoder: embedding → bi-LSTM → uni-LSTM.
	b.Group("encoder")
	srcTable := b.Param("src_embedding", cfg.Vocab, h)
	srcIDs := b.Input("src_ids", tensor.I32, bs, cfg.SrcLen)
	srcEmb := b.Embedding(srcTable, srcIDs)
	srcSlices := b.Split(srcEmb, 1, cfg.SrcLen)
	encSteps := make([]*graph.Tensor, cfg.SrcLen)
	for t := range encSteps {
		encSteps[t] = b.Reshape(srcSlices[t], bs, h)
	}
	bi := biLSTMLayer(b, "enc_bi", encSteps, h, h, bs)
	two := symbolic.Mul(symbolic.C(2), h)
	top := uniLSTMLayer(b, "enc_top", bi, two, h, bs)
	henc := stackTime3(b, top, bs, h) // [b, qs, h]

	// Decoder: embedding → stacked LSTM → attention context + selection.
	b.Group("decoder")
	tgtTable := b.Param("tgt_embedding", cfg.Vocab, h)
	tgtIDs := b.Input("tgt_ids", tensor.I32, bs, cfg.TgtLen)
	tgtEmb := b.Embedding(tgtTable, tgtIDs)
	tgtSlices := b.Split(tgtEmb, 1, cfg.TgtLen)

	decW := make([]*graph.Tensor, cfg.DecoderLayers)
	decB := make([]*graph.Tensor, cfg.DecoderLayers)
	decSt := make([]lstmState, cfg.DecoderLayers)
	for l := 0; l < cfg.DecoderLayers; l++ {
		name := fmt.Sprintf("dec_lstm%d", l)
		decW[l], decB[l] = lstmParams(b, name, h, h)
		decSt[l] = newLSTMState(b, name, bs, h)
	}

	b.Group("attention")
	wCtx := b.Param("attn_combine", two, h)
	bCtx := b.Param("attn_combine_b", h)

	attnSteps := make([]*graph.Tensor, cfg.TgtLen)
	for t := 0; t < cfg.TgtLen; t++ {
		b.Group("decoder")
		x := b.Reshape(tgtSlices[t], bs, h)
		for l := 0; l < cfg.DecoderLayers; l++ {
			decSt[l] = lstmStep(b, x, decSt[l], decW[l], decB[l])
			x = decSt[l].h
		}
		b.Group("attention")
		ctx, _ := dotAttention(b, x, henc, h, bs, cfg.SrcLen)
		combined := b.Concat(1, x, ctx)
		attnSteps[t] = b.Tanh(b.BiasAdd(b.MatMul(combined, wCtx), bCtx))
	}

	b.Group("output")
	labels := b.Input("labels", tensor.I32, bs, cfg.TgtLen)
	loss := timeDistributedOutput(b, attnSteps, h, bs, cfg.Vocab, labels)

	return attachTraining(b, loss, m)
}
