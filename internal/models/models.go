// Package models builds the paper's five application compute graphs (§2):
// word LM (LSTM), character LM (RHN), neural machine translation
// (encoder/decoder + attention), speech recognition (pyramidal
// encoder/decoder + attention), and image classification (bottleneck
// ResNet). Each graph is a complete training step — forward, backward, and
// SGD-momentum updates — with the model-scaling hyperparameter left
// symbolic, so one build supports whole model-size sweeps.
package models

import (
	"fmt"

	"catamount/internal/fit"
	"catamount/internal/graph"
	"catamount/internal/ops"
	"catamount/internal/symbolic"
)

// Domain enumerates the paper's application domains.
type Domain string

// The five studied domains.
const (
	WordLM  Domain = "wordlm"
	CharLM  Domain = "charlm"
	NMT     Domain = "nmt"
	Speech  Domain = "speech"
	ImageCl Domain = "image"
)

// AllDomains lists every domain in the paper's Table 1 order.
var AllDomains = []Domain{WordLM, CharLM, NMT, Speech, ImageCl}

// Model wraps a training-step compute graph with its scaling knobs.
type Model struct {
	// Name describes the configuration.
	Name string
	// Domain is the application domain.
	Domain Domain
	// Graph is the full training step (forward + backward + updates).
	Graph *graph.Graph
	// SizeSymbol is the hyperparameter scaled to grow the model
	// ("h" for recurrent nets, "w" for ResNet width).
	SizeSymbol string
	// BatchSymbol is the per-step subbatch size symbol ("b").
	BatchSymbol string
	// SeqLen is the characteristic unroll length (1 for CNNs).
	SeqLen int
	// DefaultBatch is the paper's profiling subbatch for this domain.
	DefaultBatch float64

	paramExpr symbolic.Expr
	flopsExpr symbolic.Expr
	bytesExpr symbolic.Expr
}

// Env binds the model's size and batch symbols.
func (m *Model) Env(size, batch float64) symbolic.Env {
	return symbolic.Env{m.SizeSymbol: size, m.BatchSymbol: batch}
}

// ParamExpr returns the cached symbolic trainable-parameter count.
func (m *Model) ParamExpr() symbolic.Expr {
	if m.paramExpr == nil {
		m.paramExpr = m.Graph.ParamCount()
	}
	return m.paramExpr
}

// FLOPsExpr returns the cached symbolic per-step algorithmic FLOPs.
func (m *Model) FLOPsExpr() symbolic.Expr {
	if m.flopsExpr == nil {
		m.flopsExpr = m.Graph.TotalFLOPs()
	}
	return m.flopsExpr
}

// BytesExpr returns the cached symbolic per-step algorithmic bytes.
func (m *Model) BytesExpr() symbolic.Expr {
	if m.bytesExpr == nil {
		m.bytesExpr = m.Graph.TotalBytes()
	}
	return m.bytesExpr
}

// Params evaluates the trainable parameter count at the given size.
func (m *Model) Params(size float64) float64 {
	return symbolic.MustEval(m.ParamExpr(), m.Env(size, 1))
}

// SizeForParams inverts Params: the (continuous) size hyperparameter whose
// parameter count hits target.
func (m *Model) SizeForParams(target float64) (float64, error) {
	f := func(s float64) float64 { return m.Params(s) - target }
	lo, hi := 1e-3, 1e-3
	for f(hi) < 0 {
		hi *= 2
		if hi > 1e12 {
			return 0, fmt.Errorf("models: target %g parameters unreachable", target)
		}
	}
	return fit.Bisect(f, lo, hi, 1e-9)
}

// Build constructs the default configuration for a domain.
func Build(d Domain) (*Model, error) {
	switch d {
	case WordLM:
		return BuildWordLM(DefaultWordLMConfig()), nil
	case CharLM:
		return BuildCharLM(DefaultCharLMConfig()), nil
	case NMT:
		return BuildNMT(DefaultNMTConfig()), nil
	case Speech:
		return BuildSpeech(DefaultSpeechConfig()), nil
	case ImageCl:
		return BuildResNet(DefaultResNetConfig()), nil
	}
	return nil, fmt.Errorf("models: unknown domain %q", d)
}

// MustBuild is Build that panics on unknown domains.
func MustBuild(d Domain) *Model {
	m, err := Build(d)
	if err != nil {
		panic(err)
	}
	return m
}

// lstmState carries the recurrent (h, c) pair between time steps.
type lstmState struct {
	h, c *graph.Tensor
}

// newLSTMState allocates zero-initialized initial state tensors. These are
// computed on-device (Fill), not staged training data, so algorithmic IO
// stays proportional to batch size alone (paper §2.1).
func newLSTMState(b *ops.Builder, name string, batch, hidden symbolic.Expr) lstmState {
	return lstmState{
		h: b.Zeros(name+"/h0", batch, hidden),
		c: b.Zeros(name+"/c0", batch, hidden),
	}
}

// lstmStep runs one fused-gate LSTM step: weights w[(in+h), 4h], bias[4h].
func lstmStep(b *ops.Builder, x *graph.Tensor, st lstmState, w, bias *graph.Tensor) lstmState {
	cat := b.Concat(1, x, st.h)
	z := b.BiasAdd(b.MatMul(cat, w), bias)
	gates := b.Split(z, 1, 4)
	i := b.Sigmoid(gates[0])
	f := b.Sigmoid(gates[1])
	g := b.Tanh(gates[2])
	o := b.Sigmoid(gates[3])
	c := b.Add(b.Mul(f, st.c), b.Mul(i, g))
	h := b.Mul(o, b.Tanh(c))
	return lstmState{h: h, c: c}
}

// lstmParams declares one LSTM layer's fused weights for inDim inputs and
// hidden units.
func lstmParams(b *ops.Builder, name string, inDim, hidden symbolic.Expr) (w, bias *graph.Tensor) {
	four := symbolic.Mul(symbolic.C(4), hidden)
	w = b.Param(name+"/w", symbolic.Add(inDim, hidden), four)
	bias = b.Param(name+"/b", four)
	return w, bias
}

// timeDistributedOutput applies the FC softmax output layer per time step —
// the standard unrolled-RNN implementation the paper profiles, in which the
// [outDim, vocab] projection weights are re-streamed every step (this is
// what drives the λ ≈ 6q·4 B/param byte counts of Table 2). Per-step losses
// are chained into one scalar.
func timeDistributedOutput(b *ops.Builder, steps []*graph.Tensor,
	outDim, batch symbolic.Expr, vocab int, labels *graph.Tensor) *graph.Tensor {

	wOut := b.Param("softmax_w", outDim, vocab)
	bOut := b.Param("softmax_b", vocab)
	labSlices := b.Split(labels, 1, len(steps))
	var loss *graph.Tensor
	for t, s := range steps {
		logits := b.BiasAdd(b.MatMul(s, wOut), bOut)
		lab := b.Reshape(labSlices[t], batch)
		l := b.SoftmaxXentLoss(logits, lab)
		if loss == nil {
			loss = l
		} else {
			loss = b.Add(loss, l)
		}
	}
	return loss
}

// stackTime3 joins per-step [b, h] tensors into [b, q, h] (for attention).
func stackTime3(b *ops.Builder, steps []*graph.Tensor, batch, hidden symbolic.Expr) *graph.Tensor {
	q := len(steps)
	expanded := make([]*graph.Tensor, q)
	for t, s := range steps {
		expanded[t] = b.Reshape(s, batch, 1, hidden)
	}
	if q == 1 {
		return expanded[0]
	}
	return b.Concat(1, expanded...)
}

// attachTraining appends the backward pass and optimizer and returns the
// finished model.
func attachTraining(b *ops.Builder, loss *graph.Tensor, m *Model) *Model {
	if err := ops.Backprop(b, loss, ops.SGDMomentum{LR: 0.5, Mu: 0.9}); err != nil {
		panic(fmt.Errorf("models: backprop failed for %s: %w", m.Name, err))
	}
	if err := b.G.Validate(); err != nil {
		panic(fmt.Errorf("models: invalid graph for %s: %w", m.Name, err))
	}
	m.Graph = b.G
	return m
}
