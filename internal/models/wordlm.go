package models

import (
	"fmt"

	"catamount/internal/graph"
	"catamount/internal/ops"
	"catamount/internal/symbolic"
	"catamount/internal/tensor"
)

// WordLMConfig parameterizes the LSTM word language model (paper §2.3):
// embedding → stacked LSTM layers unrolled over SeqLen steps → fully
// connected softmax output. Hidden width stays symbolic ("h").
type WordLMConfig struct {
	// Layers is the stacked LSTM depth.
	Layers int
	// SeqLen is the unroll length in tokens.
	SeqLen int
	// Vocab is the word vocabulary size.
	Vocab int
	// Projection inserts an LSTM projection layer that reduces the last
	// hidden layer to ProjectionFraction·h before the output layer — the
	// case study's algorithmic optimization (§6.1, after Sak et al.).
	Projection bool
	// ProjectionFraction is the reduced width as a fraction of h (e.g. 0.25).
	ProjectionFraction float64
	// DType selects the training precision (F32 default, F16 halves the
	// weight and activation footprint — the paper's §6.2.3 low-precision
	// direction).
	DType tensor.DType
}

// DefaultWordLMConfig matches the paper's profiling setup: 2 LSTM layers
// unrolled 80 steps (FLOPs/param → ~6·80 ≈ 481) with a modest vocabulary.
func DefaultWordLMConfig() WordLMConfig {
	return WordLMConfig{Layers: 2, SeqLen: 80, Vocab: 40000}
}

// CaseStudyWordLMConfig is the §6 variant: production vocabulary (Jozefowicz
// et al.) and the LSTM projection optimization enabled.
func CaseStudyWordLMConfig() WordLMConfig {
	return WordLMConfig{
		Layers:             2,
		SeqLen:             80,
		Vocab:              793470,
		Projection:         true,
		ProjectionFraction: 0.25,
	}
}

// BuildWordLM constructs the word LM training graph.
func BuildWordLM(cfg WordLMConfig) *Model {
	b := ops.NewBuilder("wordlm")
	b.DType = cfg.DType
	h := symbolic.S("h")
	bs := symbolic.S("b")
	q := cfg.SeqLen

	m := &Model{
		Name: fmt.Sprintf("wordlm(l=%d,q=%d,v=%d,proj=%v)",
			cfg.Layers, q, cfg.Vocab, cfg.Projection),
		Domain:       WordLM,
		SizeSymbol:   "h",
		BatchSymbol:  "b",
		SeqLen:       q,
		DefaultBatch: 128,
	}

	// Embedding: a table lookup with no FLOPs but a large share of the
	// weight footprint (§2.3).
	b.Group("embed")
	table := b.Param("embedding", cfg.Vocab, h)
	ids := b.Input("ids", tensor.I32, bs, q)
	emb := b.Embedding(table, ids)
	slices := b.Split(emb, 1, q)
	steps := make([]*graph.Tensor, q)
	for t := 0; t < q; t++ {
		steps[t] = b.Reshape(slices[t], bs, h)
	}

	// Stacked recurrent layers: most compute lives in these matmuls.
	for l := 0; l < cfg.Layers; l++ {
		name := fmt.Sprintf("lstm%d", l)
		b.Group(name)
		w, bias := lstmParams(b, name, h, h)
		st := newLSTMState(b, name, bs, h)
		for t := 0; t < q; t++ {
			st = lstmStep(b, steps[t], st, w, bias)
			steps[t] = st.h
		}
	}

	// Output layer: responsible for a large share of activation footprint.
	b.Group("output")
	outDim := symbolic.Expr(h)
	if cfg.Projection {
		r := symbolic.Mul(symbolic.C(cfg.ProjectionFraction), h)
		wp := b.Param("projection", h, r)
		for t := 0; t < q; t++ {
			steps[t] = b.MatMul(steps[t], wp)
		}
		outDim = r
	}
	labels := b.Input("labels", tensor.I32, bs, q)
	loss := timeDistributedOutput(b, steps, outDim, bs, cfg.Vocab, labels)

	return attachTraining(b, loss, m)
}
