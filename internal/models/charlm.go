package models

import (
	"fmt"

	"catamount/internal/graph"
	"catamount/internal/ops"
	"catamount/internal/symbolic"
	"catamount/internal/tensor"
)

// CharLMConfig parameterizes the recurrent highway network character LM
// (paper §2.3, after Zilly et al.): embedding → one deep RHN layer with
// RecurrenceDepth stacked micro-layers per time step → softmax output.
type CharLMConfig struct {
	// RecurrenceDepth is the number of highway micro-layers per time step.
	RecurrenceDepth int
	// SeqLen is the unroll length in characters (paper: 100–300).
	SeqLen int
	// Vocab is the character vocabulary (small, so embedding/output are a
	// minor share of footprint).
	Vocab int
	// DType selects the training precision (F32 default, F16 halves the
	// weight and activation footprint — the paper's §6.2.3 low-precision
	// direction).
	DType tensor.DType
}

// DefaultCharLMConfig matches the paper's profiling setup: recurrence depth
// 10 unrolled 150 steps (FLOPs/param → ~6·150 ≈ 900).
func DefaultCharLMConfig() CharLMConfig {
	return CharLMConfig{RecurrenceDepth: 10, SeqLen: 150, Vocab: 128}
}

// rhnStep applies one full RHN time step: the first micro-layer consumes
// [x, s], deeper micro-layers transform s alone. Gates are fused into one
// matmul producing (H, T); carry is 1−T.
//
//	s ← s + T ⊙ (H − s)
func rhnStep(b *ops.Builder, x, s *graph.Tensor, firstW, firstB *graph.Tensor,
	deepW, deepB []*graph.Tensor) *graph.Tensor {
	// Micro-layer 0: [x, s]·W → (H, T).
	cat := b.Concat(1, x, s)
	z := b.BiasAdd(b.MatMul(cat, firstW), firstB)
	gates := b.Split(z, 1, 2)
	hGate := b.Tanh(gates[0])
	tGate := b.Sigmoid(gates[1])
	diff := b.Sub(hGate, s)
	s = b.Add(s, b.Mul(tGate, diff))
	// Deeper micro-layers.
	for d := range deepW {
		z := b.BiasAdd(b.MatMul(s, deepW[d]), deepB[d])
		gates := b.Split(z, 1, 2)
		hGate := b.Tanh(gates[0])
		tGate := b.Sigmoid(gates[1])
		diff := b.Sub(hGate, s)
		s = b.Add(s, b.Mul(tGate, diff))
	}
	return s
}

// BuildCharLM constructs the character LM training graph.
func BuildCharLM(cfg CharLMConfig) *Model {
	b := ops.NewBuilder("charlm")
	b.DType = cfg.DType
	h := symbolic.S("h")
	bs := symbolic.S("b")
	q := cfg.SeqLen

	m := &Model{
		Name: fmt.Sprintf("charlm(depth=%d,q=%d,v=%d)",
			cfg.RecurrenceDepth, q, cfg.Vocab),
		Domain:       CharLM,
		SizeSymbol:   "h",
		BatchSymbol:  "b",
		SeqLen:       q,
		DefaultBatch: 96,
	}

	b.Group("embed")
	table := b.Param("embedding", cfg.Vocab, h)
	ids := b.Input("ids", tensor.I32, bs, q)
	emb := b.Embedding(table, ids)
	slices := b.Split(emb, 1, q)

	b.Group("rhn")
	two := symbolic.Mul(symbolic.C(2), h)
	firstW := b.Param("rhn/w0", symbolic.Add(h, h), two)
	firstB := b.Param("rhn/b0", two)
	deepW := make([]*graph.Tensor, cfg.RecurrenceDepth-1)
	deepB := make([]*graph.Tensor, cfg.RecurrenceDepth-1)
	for d := range deepW {
		deepW[d] = b.Param(fmt.Sprintf("rhn/w%d", d+1), h, two)
		deepB[d] = b.Param(fmt.Sprintf("rhn/b%d", d+1), two)
	}
	s := b.Zeros("rhn/s0", bs, h)
	steps := make([]*graph.Tensor, q)
	for t := 0; t < q; t++ {
		x := b.Reshape(slices[t], bs, h)
		s = rhnStep(b, x, s, firstW, firstB, deepW, deepB)
		steps[t] = s
	}

	b.Group("output")
	labels := b.Input("labels", tensor.I32, bs, q)
	loss := timeDistributedOutput(b, steps, h, bs, cfg.Vocab, labels)

	return attachTraining(b, loss, m)
}
