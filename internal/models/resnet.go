package models

import (
	"fmt"

	"catamount/internal/graph"
	"catamount/internal/ops"
	"catamount/internal/symbolic"
	"catamount/internal/tensor"
)

// ResNetConfig parameterizes the bottleneck ResNet (paper §2.2, after He et
// al.): a stem convolution, four residual groups of bottleneck blocks, and a
// fully connected classifier. Width is symbolic ("w", a multiplier on the
// standard 64/128/256/512 channel progression) because the paper grows image
// models by depth and channel count.
type ResNetConfig struct {
	// Blocks is the bottleneck block count per residual group
	// ([3,4,6,3] = ResNet-50, [3,4,23,3] = ResNet-101, [3,8,36,3] = ResNet-152).
	Blocks [4]int
	// Classes is the classifier output width.
	Classes int
	// Image is the (square) input resolution.
	Image int
	// DType selects the training precision (F32 default, F16 halves the
	// weight and activation footprint — the paper's §6.2.3 low-precision
	// direction).
	DType tensor.DType
}

// DefaultResNetConfig is a bottleneck ResNet-50 on ImageNet-sized inputs.
func DefaultResNetConfig() ResNetConfig {
	return ResNetConfig{Blocks: [4]int{3, 4, 6, 3}, Classes: 1000, Image: 224}
}

// ResNetDepthConfig returns the standard bottleneck block layout for the
// given nominal depth (50, 101 or 152).
func ResNetDepthConfig(depth int) (ResNetConfig, error) {
	cfg := DefaultResNetConfig()
	switch depth {
	case 50:
		cfg.Blocks = [4]int{3, 4, 6, 3}
	case 101:
		cfg.Blocks = [4]int{3, 4, 23, 3}
	case 152:
		cfg.Blocks = [4]int{3, 8, 36, 3}
	case 26:
		cfg.Blocks = [4]int{2, 2, 2, 2}
	default:
		return cfg, fmt.Errorf("models: unsupported ResNet depth %d", depth)
	}
	return cfg, nil
}

// bottleneckBlock applies conv1x1(mid) → conv3x3(mid, stride) → conv1x1(out)
// with batch norms, ReLUs, and a (possibly projected) skip connection.
func bottleneckBlock(b *ops.Builder, name string, x *graph.Tensor,
	mid, out symbolic.Expr, stride int) *graph.Tensor {

	inC := x.Shape.Dim(3)
	w1 := b.Param(name+"/conv1_w", 1, 1, inC, mid)
	y := b.ReLU(b.BatchNormLayer(name+"/bn1", b.Conv2D(x, w1, 1, 1)))
	w2 := b.Param(name+"/conv2_w", 3, 3, mid, mid)
	y = b.ReLU(b.BatchNormLayer(name+"/bn2", b.Conv2D(y, w2, stride, stride)))
	w3 := b.Param(name+"/conv3_w", 1, 1, mid, out)
	y = b.BatchNormLayer(name+"/bn3", b.Conv2D(y, w3, 1, 1))

	skip := x
	if stride != 1 || !symbolic.Equal(inC, out) {
		ws := b.Param(name+"/proj_w", 1, 1, inC, out)
		skip = b.BatchNormLayer(name+"/proj_bn", b.Conv2D(x, ws, stride, stride))
	}
	return b.ReLU(b.Add(y, skip))
}

// BuildResNet constructs the ResNet training graph.
func BuildResNet(cfg ResNetConfig) *Model {
	b := ops.NewBuilder("resnet")
	b.DType = cfg.DType
	w := symbolic.S("w")
	bs := symbolic.S("b")

	total := cfg.Blocks[0] + cfg.Blocks[1] + cfg.Blocks[2] + cfg.Blocks[3]
	m := &Model{
		Name:         fmt.Sprintf("resnet(blocks=%v,depth~%d)", cfg.Blocks, 3*total+2),
		Domain:       ImageCl,
		SizeSymbol:   "w",
		BatchSymbol:  "b",
		SeqLen:       1,
		DefaultBatch: 32,
	}

	ch := func(base int) symbolic.Expr {
		return symbolic.Mul(symbolic.C(float64(base)), w)
	}

	b.Group("stem")
	x := b.Input("image", b.DType, bs, cfg.Image, cfg.Image, 3)
	wStem := b.Param("stem/conv_w", 7, 7, 3, ch(64))
	y := b.ReLU(b.BatchNormLayer("stem/bn", b.Conv2D(x, wStem, 2, 2)))
	y = b.Pool(y, 3, 3, 2, 2, true)

	for gi := 0; gi < 4; gi++ {
		b.Group(fmt.Sprintf("group%d", gi+1))
		mid := ch(64 << gi)
		out := ch(256 << gi)
		for blk := 0; blk < cfg.Blocks[gi]; blk++ {
			stride := 1
			if blk == 0 && gi > 0 {
				stride = 2
			}
			y = bottleneckBlock(b, fmt.Sprintf("g%d/blk%d", gi+1, blk), y, mid, out, stride)
		}
	}

	b.Group("head")
	spatial, _ := symbolic.IsConst(y.Shape.Dim(1))
	y = b.Pool(y, int(spatial), int(spatial), int(spatial), int(spatial), false)
	flat := b.Reshape(y, bs, ch(2048))
	wFC := b.Param("fc/w", ch(2048), cfg.Classes)
	bFC := b.Param("fc/b", cfg.Classes)
	logits := b.BiasAdd(b.MatMul(flat, wFC), bFC)
	labels := b.Input("labels", tensor.I32, bs)
	loss := b.SoftmaxXentLoss(logits, labels)

	return attachTraining(b, loss, m)
}
