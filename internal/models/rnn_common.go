package models

import (
	"catamount/internal/graph"
	"catamount/internal/ops"
	"catamount/internal/symbolic"
)

// biLSTMLayer runs forward and backward LSTMs over the step sequence and
// concatenates their per-step outputs into [b, 2h] tensors.
func biLSTMLayer(b *ops.Builder, name string, steps []*graph.Tensor,
	inDim, hidden, batch symbolic.Expr) []*graph.Tensor {

	q := len(steps)
	wf, bf := lstmParams(b, name+"/fwd", inDim, hidden)
	wb, bb := lstmParams(b, name+"/bwd", inDim, hidden)

	fwdOut := make([]*graph.Tensor, q)
	st := newLSTMState(b, name+"/fwd", batch, hidden)
	for t := 0; t < q; t++ {
		st = lstmStep(b, steps[t], st, wf, bf)
		fwdOut[t] = st.h
	}
	bwdOut := make([]*graph.Tensor, q)
	st = newLSTMState(b, name+"/bwd", batch, hidden)
	for t := q - 1; t >= 0; t-- {
		st = lstmStep(b, steps[t], st, wb, bb)
		bwdOut[t] = st.h
	}
	out := make([]*graph.Tensor, q)
	for t := 0; t < q; t++ {
		out[t] = b.Concat(1, fwdOut[t], bwdOut[t])
	}
	return out
}

// uniLSTMLayer runs a single-direction LSTM over the step sequence.
func uniLSTMLayer(b *ops.Builder, name string, steps []*graph.Tensor,
	inDim, hidden, batch symbolic.Expr) []*graph.Tensor {

	w, bias := lstmParams(b, name, inDim, hidden)
	st := newLSTMState(b, name, batch, hidden)
	out := make([]*graph.Tensor, len(steps))
	for t := range steps {
		st = lstmStep(b, steps[t], st, w, bias)
		out[t] = st.h
	}
	return out
}

// poolTime halves the time axis of a step sequence (the pyramidal encoder
// reduction), returning the shorter sequence of [b, d] steps.
func poolTime(b *ops.Builder, steps []*graph.Tensor, dim, batch symbolic.Expr, factor int) []*graph.Tensor {
	seq := stackTime3(b, steps, batch, dim)
	pooled := b.Pool1D(seq, factor)
	q := (len(steps) + factor - 1) / factor
	parts := b.Split(pooled, 1, q)
	out := make([]*graph.Tensor, q)
	for t := range out {
		out[t] = b.Reshape(parts[t], batch, dim)
	}
	return out
}

// dotAttention computes one Luong-style attention read: softmax(q·Kᵀ)·K.
// query is [b, d]; keys is [b, qEnc, d]. Returns ([b, d] context,
// [b, qEnc] alignment).
func dotAttention(b *ops.Builder, query, keys *graph.Tensor,
	dim, batch symbolic.Expr, qEnc int) (*graph.Tensor, *graph.Tensor) {

	q3 := b.Reshape(query, batch, 1, dim)
	scores := b.BatchedMatMul(q3, keys, false, true) // [b, 1, qEnc]
	attn := b.Softmax(scores)
	ctx := b.BatchedMatMul(attn, keys, false, false) // [b, 1, d]
	return b.Reshape(ctx, batch, dim), b.Reshape(attn, batch, qEnc)
}
