// Package jobs is the durable async execution layer behind POST /v1/jobs:
// a bounded worker pool draining a queue of sweep/plan specs, streaming
// each sweep grid through the existing ≤32-row batched chunks, and
// checkpointing progress to a pluggable Store (in-memory or file-backed)
// so jobs survive catamountd restarts.
//
// Durability contract: result lines are appended (and synced) before the
// checkpoint metadata that covers them is committed, so after a kill at
// any instant the store holds a prefix of the deterministic sweep output
// plus possibly a torn tail. Recovery truncates the tail back to the last
// checkpoint and resumes the grid at the checkpointed point count via
// sweep.Runner.RunFrom — re-evaluating nothing already persisted — which
// makes an interrupted job's final results byte-identical to an
// uninterrupted run.
package jobs

import (
	"bufio"
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"catamount/internal/api"
	"catamount/internal/obs"
	"catamount/internal/plan"
	"catamount/internal/sweep"
)

// State is a job's lifecycle state.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCancelled
}

// PlanSummary is the scalar half of a plan job's result — everything in
// plan.Result except the per-candidate Plans, which stream through the
// job's result lines (one candidate per line, search order).
type PlanSummary struct {
	Target     plan.Target `json:"target"`
	CostModel  string      `json:"costmodel"`
	Objectives []string    `json:"objectives"`
	Candidates int         `json:"candidates"`
}

// Meta is a job's persisted metadata: the spec, the lifecycle state, and
// the checkpoint (DonePoints result lines occupying ResultBytes bytes are
// durable). It is the unit SaveMeta commits; everything a restart needs.
type Meta struct {
	ID   string      `json:"id"`
	Spec api.JobSpec `json:"spec"`

	State State  `json:"state"`
	Error string `json:"error,omitempty"`

	// CostModel is the canonical name of the resolved step-time backend
	// the job runs with (spec field already folded with the request's
	// costmodel query parameter at submission).
	CostModel string `json:"costmodel,omitempty"`

	CreatedAt  time.Time `json:"created_at"`
	StartedAt  time.Time `json:"started_at"`
	FinishedAt time.Time `json:"finished_at"`

	// TotalPoints is the grid (or candidate-space) size, known at
	// submission; DonePoints and ResultBytes are the checkpoint: how many
	// deterministic-order result lines, spanning how many bytes, are
	// durable.
	TotalPoints int   `json:"total_points"`
	DonePoints  int   `json:"done_points"`
	ResultBytes int64 `json:"result_bytes"`

	// Resumes counts recovery cycles: how many times a restart found this
	// job mid-run and re-queued it from its checkpoint.
	Resumes int `json:"resumes,omitempty"`

	// PlanSummary carries a finished plan job's scalar result.
	PlanSummary *PlanSummary `json:"plan_summary,omitempty"`
}

// Status is Meta plus derived progress: the GET /v1/jobs/{id} body.
type Status struct {
	Meta
	// Progress is DonePoints/TotalPoints in [0,1].
	Progress float64 `json:"progress"`
	// ETASeconds estimates remaining run time for a running job: from
	// this run's own throughput once points have flowed, else from the
	// obs sweep_chunk stage histogram (mean chunk latency × remaining
	// chunks). Zero when unknown or not running.
	ETASeconds float64 `json:"eta_seconds,omitempty"`
}

// Page is one window of a job's checkpointed result stream.
type Page struct {
	JobID string
	State State
	// Start is the first line index of the page; Count the lines
	// returned; Done the checkpointed lines available; Total the final
	// line count the job will reach.
	Start, Count, Done, Total int
	// NextStart is the cursor for the following page (== Start+Count).
	NextStart int
	// Lines are the raw NDJSON lines, without trailing newlines.
	Lines [][]byte
}

// Service errors beyond ErrNotFound (store.go).
var (
	ErrQueueFull   = errors.New("jobs: queue full")
	ErrClosed      = errors.New("jobs: service closed")
	ErrNotTerminal = errors.New("jobs: job still active")
	ErrTerminal    = errors.New("jobs: job already finished")

	// errCrash is the test hook's sentinel: abandon the job mid-protocol
	// exactly as a process kill would, persisting nothing further.
	errCrash = errors.New("jobs: simulated crash")
)

// Config configures a Service.
type Config struct {
	// Source resolves compiled per-domain sessions; catamount.Engine
	// satisfies it.
	Source sweep.SessionSource
	// Store persists jobs. Nil means a fresh in-memory store.
	Store Store
	// Workers bounds concurrent jobs (default 2).
	Workers int
	// QueueDepth bounds jobs waiting to run (default 1024); Submit fails
	// with ErrQueueFull beyond it.
	QueueDepth int
	// MaxPoints rejects sweep jobs whose grid exceeds it (default 10M).
	MaxPoints int
	// CheckpointEvery is the result-line flush granularity (default 256):
	// the append-then-checkpoint cycle runs once per that many points.
	CheckpointEvery int
	// Logger receives job lifecycle lines; nil discards them.
	Logger *slog.Logger

	// crashAfterCheckpoints, when > 0, kills a job's run between the Nth
	// result append and the checkpoint that would cover it — the torn-tail
	// crash window — without persisting anything further. Durability tests
	// only.
	crashAfterCheckpoints int
}

// Service owns the queue, the worker pool, and the tracker map. Create
// with New; Close drains it.
type Service struct {
	cfg   Config
	src   sweep.SessionSource
	store Store
	log   *slog.Logger

	ctx    context.Context
	cancel context.CancelFunc
	queue  chan string
	wg     sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*tracker
	closed bool
}

// tracker is the in-memory state of one job.
type tracker struct {
	mu         sync.Mutex
	meta       Meta
	cancel     context.CancelFunc // non-nil while running
	userCancel bool               // DELETE-initiated, vs shutdown
	runStart   time.Time          // this run's start (resets on resume)
	runDone    int                // DonePoints when this run started
}

// ---------------------------------------------------------------------------
// Metrics: package-level and registered once — the obs Default registry is
// idempotent per (name, labels), so per-Service closures would silently
// bind gauges to the first Service ever built.

var (
	gaugeRunning atomic.Int64
	gaugeQueued  atomic.Int64

	metricsOnce  sync.Once
	mSubmitted   *obs.Counter
	mResumed     *obs.Counter
	mPoints      *obs.Counter
	mCheckpoints *obs.Counter
	mCompleted   map[State]*obs.Counter

	stageJobRun        *obs.Histogram
	stageJobCheckpoint *obs.Histogram
	stageSweepChunk    *obs.Histogram
)

func initMetrics() {
	metricsOnce.Do(func() {
		mSubmitted = obs.Default.Counter("catamount_job_submitted_total",
			"Jobs accepted by POST /v1/jobs.")
		mResumed = obs.Default.Counter("catamount_job_resumed_total",
			"Jobs re-queued from a checkpoint after a restart.")
		mPoints = obs.Default.Counter("catamount_job_points_total",
			"Result points appended to job result streams.")
		mCheckpoints = obs.Default.Counter("catamount_job_checkpoints_total",
			"Append-then-checkpoint cycles committed.")
		mCompleted = make(map[State]*obs.Counter)
		for _, st := range []State{StateSucceeded, StateFailed, StateCancelled} {
			mCompleted[st] = obs.Default.Counter("catamount_job_completed_total",
				"Jobs reaching a terminal state, by state.",
				obs.Label{Name: "state", Value: string(st)})
		}
		obs.Default.GaugeFunc("catamount_job_running",
			"Jobs currently executing.", func() float64 { return float64(gaugeRunning.Load()) })
		obs.Default.GaugeFunc("catamount_job_queued",
			"Jobs waiting in the queue.", func() float64 { return float64(gaugeQueued.Load()) })
		stageJobRun = obs.Stage("job_run")
		stageJobCheckpoint = obs.Stage("job_checkpoint")
		stageSweepChunk = obs.Stage("sweep_chunk")
	})
}

// ---------------------------------------------------------------------------
// Construction and recovery

// New builds a Service over cfg, recovers every persisted job from the
// store (re-queueing interrupted ones from their checkpoints), and starts
// the worker pool.
func New(cfg Config) (*Service, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("jobs: Config.Source is required")
	}
	if cfg.Store == nil {
		cfg.Store = NewMemStore()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.MaxPoints <= 0 {
		cfg.MaxPoints = 10_000_000
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 256
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	initMetrics()

	metas, err := cfg.Store.LoadAll()
	if err != nil {
		return nil, fmt.Errorf("jobs: load store: %w", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:    cfg,
		src:    cfg.Source,
		store:  cfg.Store,
		log:    cfg.Logger,
		ctx:    ctx,
		cancel: cancel,
		queue:  make(chan string, cfg.QueueDepth+len(metas)),
		jobs:   make(map[string]*tracker, len(metas)),
	}

	for _, m := range metas {
		m := m
		if m.State == StateRunning {
			// Interrupted mid-run: drop any torn tail past the checkpoint
			// and re-queue from it.
			m.State = StateQueued
			m.Resumes++
			if err := s.store.TruncateResults(m.ID, m.ResultBytes); err != nil {
				return nil, fmt.Errorf("jobs: recover %s: %w", m.ID, err)
			}
			if err := s.store.SaveMeta(m); err != nil {
				return nil, fmt.Errorf("jobs: recover %s: %w", m.ID, err)
			}
			mResumed.Inc()
			s.log.Info("job resumed from checkpoint", "job", m.ID,
				"done_points", m.DonePoints, "total_points", m.TotalPoints,
				"resumes", m.Resumes)
		}
		s.jobs[m.ID] = &tracker{meta: m}
		if m.State == StateQueued {
			s.queue <- m.ID
			gaugeQueued.Add(1)
		}
	}

	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Close stops accepting work, cancels running jobs (persisting them back
// to queued, resumable on the next boot), and waits for the pool.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()

	s.cancel()
	s.wg.Wait()

	// Jobs still waiting in the queue keep state=queued in the store;
	// release their gauge slots since no live service owns them now.
	s.mu.Lock()
	for _, t := range s.jobs {
		t.mu.Lock()
		if t.meta.State == StateQueued {
			gaugeQueued.Add(-1)
		}
		t.mu.Unlock()
	}
	s.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Submission and lifecycle

// newID mints a job ID: 16 random hex digits under a "j" prefix.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("j%016x", time.Now().UnixNano())
	}
	return "j" + hex.EncodeToString(b[:])
}

// Submit validates spec (type pairing plus full grid/search validation, so
// every rejection here is a 400), persists it as a queued job, and
// enqueues it. The returned Meta carries the assigned ID.
func (s *Service) Submit(spec api.JobSpec) (Meta, error) {
	if err := spec.Validate(); err != nil {
		return Meta{}, err
	}
	m := Meta{
		ID:        newID(),
		Spec:      spec,
		State:     StateQueued,
		CreatedAt: time.Now().UTC(),
	}
	switch spec.Type {
	case api.JobTypeSweep:
		r, err := sweep.New(s.src, *spec.Sweep)
		if err != nil {
			return Meta{}, err
		}
		m.TotalPoints = r.Points()
		m.CostModel = r.CostModel().Name()
		if m.TotalPoints > s.cfg.MaxPoints {
			return Meta{}, fmt.Errorf("jobs: grid has %d points, exceeding the %d-point job cap",
				m.TotalPoints, s.cfg.MaxPoints)
		}
	case api.JobTypePlan:
		p, err := plan.New(s.src, *spec.Plan)
		if err != nil {
			return Meta{}, err
		}
		m.TotalPoints = p.Candidates()
		m.CostModel = p.CostModel().Name()
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Meta{}, ErrClosed
	}
	if err := s.store.SaveMeta(m); err != nil {
		s.mu.Unlock()
		return Meta{}, fmt.Errorf("jobs: persist: %w", err)
	}
	t := &tracker{meta: m}
	s.jobs[m.ID] = t
	select {
	case s.queue <- m.ID:
	default:
		delete(s.jobs, m.ID)
		s.store.Delete(m.ID)
		s.mu.Unlock()
		return Meta{}, ErrQueueFull
	}
	s.mu.Unlock()

	gaugeQueued.Add(1)
	mSubmitted.Inc()
	s.log.Info("job submitted", "job", m.ID, "type", spec.Type,
		"total_points", m.TotalPoints, "costmodel", m.CostModel)
	return m, nil
}

func (s *Service) tracker(id string) (*tracker, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return t, nil
}

// Get returns a job's metadata.
func (s *Service) Get(id string) (Meta, error) {
	t, err := s.tracker(id)
	if err != nil {
		return Meta{}, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.meta, nil
}

// List returns every job's metadata, oldest first.
func (s *Service) List() []Meta {
	s.mu.Lock()
	out := make([]Meta, 0, len(s.jobs))
	for _, t := range s.jobs {
		t.mu.Lock()
		out = append(out, t.meta)
		t.mu.Unlock()
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].CreatedAt.Equal(out[j].CreatedAt) {
			return out[i].CreatedAt.Before(out[j].CreatedAt)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// StatusOf returns a job's metadata with derived progress and ETA.
func (s *Service) StatusOf(id string) (Status, error) {
	t, err := s.tracker(id)
	if err != nil {
		return Status{}, err
	}
	t.mu.Lock()
	m, runStart, runDone := t.meta, t.runStart, t.runDone
	t.mu.Unlock()

	st := Status{Meta: m}
	if m.TotalPoints > 0 {
		st.Progress = float64(m.DonePoints) / float64(m.TotalPoints)
	}
	if m.State.Terminal() {
		st.Progress = 1
		return st, nil
	}
	if m.State == StateRunning && m.TotalPoints > m.DonePoints {
		st.ETASeconds = etaSeconds(time.Now(), m.TotalPoints, m.DonePoints,
			runDone, runStart, stageSweepChunk.Snapshot())
	}
	return st, nil
}

// etaChunkRows is the grid-row granularity the histogram-fallback ETA
// assumes per sweep chunk, matching the sweep scheduler's chunking.
const etaChunkRows = 32

// etaSeconds estimates the remaining run time for a job that has completed
// done of total points, where runDone points predate the current run
// (resume credit). Preferred signal: this run's own throughput. Before any
// point lands this run, it falls back to the fleet-wide sweep_chunk latency
// snapshot — a rough upper bound (a chunk is ≤ etaChunkRows grid rows),
// refined as soon as points flow. Zero history on both paths yields 0.
// Pure: every input is a parameter, so both paths unit-test directly.
func etaSeconds(now time.Time, total, done, runDone int, runStart time.Time,
	chunk obs.HistogramSnapshot) float64 {

	rem := total - done
	if rem <= 0 {
		return 0
	}
	if d := done - runDone; d > 0 && !runStart.IsZero() {
		return now.Sub(runStart).Seconds() / float64(d) * float64(rem)
	}
	if chunk.Count > 0 {
		mean := chunk.Sum / float64(chunk.Count)
		return mean * float64((rem+etaChunkRows-1)/etaChunkRows)
	}
	return 0
}

// Cancel stops a queued or running job; ErrTerminal if already finished.
// The returned Meta reflects the state at return (a running job transitions
// to cancelled asynchronously once its context unwinds).
func (s *Service) Cancel(id string) (Meta, error) {
	t, err := s.tracker(id)
	if err != nil {
		return Meta{}, err
	}
	t.mu.Lock()
	switch {
	case t.meta.State == StateQueued:
		t.meta.State = StateCancelled
		t.meta.FinishedAt = time.Now().UTC()
		m := t.meta
		t.mu.Unlock()
		gaugeQueued.Add(-1)
		mCompleted[StateCancelled].Inc()
		if err := s.store.SaveMeta(m); err != nil {
			return m, fmt.Errorf("jobs: persist cancel: %w", err)
		}
		s.log.Info("job cancelled", "job", id, "was", "queued")
		return m, nil
	case t.meta.State == StateRunning:
		t.userCancel = true
		if t.cancel != nil {
			t.cancel()
		}
		m := t.meta
		t.mu.Unlock()
		s.log.Info("job cancel requested", "job", id)
		return m, nil
	default:
		m := t.meta
		t.mu.Unlock()
		return m, fmt.Errorf("%w: %s is %s", ErrTerminal, id, m.State)
	}
}

// Delete removes a terminal job's metadata and results; ErrNotTerminal
// while it is queued or running (cancel first).
func (s *Service) Delete(id string) error {
	t, err := s.tracker(id)
	if err != nil {
		return err
	}
	t.mu.Lock()
	terminal := t.meta.State.Terminal()
	t.mu.Unlock()
	if !terminal {
		return fmt.Errorf("%w: %s", ErrNotTerminal, id)
	}
	s.mu.Lock()
	delete(s.jobs, id)
	s.mu.Unlock()
	if err := s.store.Delete(id); err != nil && !errors.Is(err, ErrNotFound) {
		return err
	}
	s.log.Info("job deleted", "job", id)
	return nil
}

// Results reads one page of a job's checkpointed result lines: up to limit
// lines starting at line index start. Reads never cross the checkpoint, so
// a page is always a durable, deterministic prefix window.
func (s *Service) Results(id string, start, limit int) (Page, error) {
	t, err := s.tracker(id)
	if err != nil {
		return Page{}, err
	}
	t.mu.Lock()
	m := t.meta
	t.mu.Unlock()

	if start < 0 {
		start = 0
	}
	if start > m.DonePoints {
		start = m.DonePoints
	}
	if limit <= 0 {
		limit = 1000
	}

	pg := Page{JobID: id, State: m.State, Start: start,
		Done: m.DonePoints, Total: m.TotalPoints, NextStart: start}
	if start >= m.DonePoints {
		return pg, nil
	}

	rc, err := s.store.OpenResults(id, 0)
	if err != nil {
		return Page{}, err
	}
	defer rc.Close()
	// Clamp to the checkpointed byte range: anything beyond it is either
	// in-flight or a torn tail.
	br := bufio.NewReaderSize(io.LimitReader(rc, m.ResultBytes), 64<<10)
	for i := 0; i < start; i++ {
		if err := skipLine(br); err != nil {
			return Page{}, fmt.Errorf("jobs: results %s: %w", id, err)
		}
	}
	for len(pg.Lines) < limit && pg.Start+len(pg.Lines) < m.DonePoints {
		line, err := readLine(br)
		if err != nil {
			return Page{}, fmt.Errorf("jobs: results %s: %w", id, err)
		}
		pg.Lines = append(pg.Lines, line)
	}
	pg.Count = len(pg.Lines)
	pg.NextStart = pg.Start + pg.Count
	return pg, nil
}

func skipLine(br *bufio.Reader) error {
	for {
		_, isPrefix, err := br.ReadLine()
		if err != nil {
			return err
		}
		if !isPrefix {
			return nil
		}
	}
}

func readLine(br *bufio.Reader) ([]byte, error) {
	var out []byte
	for {
		frag, isPrefix, err := br.ReadLine()
		if err != nil {
			return nil, err
		}
		out = append(out, frag...)
		if !isPrefix {
			return out, nil
		}
	}
}

// ---------------------------------------------------------------------------
// Workers

func (s *Service) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case id := <-s.queue:
			s.runJob(id)
		}
	}
}

// runJob drives one job from queued to a terminal state (or back to queued
// on shutdown).
func (s *Service) runJob(id string) {
	t, err := s.tracker(id)
	if err != nil {
		return // deleted while queued
	}
	t.mu.Lock()
	if t.meta.State != StateQueued {
		t.mu.Unlock()
		return // cancelled while queued
	}
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()
	t.cancel = cancel
	t.meta.State = StateRunning
	if t.meta.StartedAt.IsZero() {
		t.meta.StartedAt = time.Now().UTC()
	}
	t.runStart = time.Now()
	t.runDone = t.meta.DonePoints
	m := t.meta
	t.mu.Unlock()

	gaugeQueued.Add(-1)
	gaugeRunning.Add(1)
	if err := s.store.SaveMeta(m); err != nil {
		s.finish(t, StateFailed, fmt.Errorf("persist running state: %w", err))
		return
	}
	s.log.Info("job started", "job", id, "type", m.Spec.Type,
		"from_point", m.DonePoints, "total_points", m.TotalPoints)

	// Root one trace per job run. Workers run detached from the submitting
	// request, so the job ID is the identity everything downstream sees:
	// it tags the worker context (request-ID plumbing for span debug lines
	// and slog), names the trace in the flight recorder, and a resumed job
	// records a fresh trace per run (the recorder disambiguates repeats).
	ctx = obs.WithRequestID(ctx, "job-"+id)
	tr := obs.NewTrace("job-"+id, "job")
	ctx = tr.Context(ctx)
	span := obs.StartSpan(ctx, "job_run", stageJobRun)
	ctx = span.Attach(ctx)
	var runErr error
	switch m.Spec.Type {
	case api.JobTypeSweep:
		runErr = s.runSweep(ctx, t)
	case api.JobTypePlan:
		runErr = s.runPlan(ctx, t)
	default:
		runErr = fmt.Errorf("unknown job type %q", m.Spec.Type)
	}
	span.End()

	if errors.Is(runErr, errCrash) {
		// Simulated kill: the process is "gone" — no final persist, no
		// terminal transition. The store holds the last checkpoint plus a
		// torn tail, exactly the recovery input. The trace dies with the
		// "process": a real kill -9 would never reach the recorder.
		gaugeRunning.Add(-1)
		return
	}
	tr.Finish(runErr != nil && ctx.Err() == nil)
	obs.Flight.Add(tr)
	s.log.Info("job trace recorded", "job", id, "trace_id", tr.ID(),
		"spans", tr.SpanCount(), "duration", tr.Duration())

	switch {
	case runErr == nil:
		s.finish(t, StateSucceeded, nil)
	case ctx.Err() != nil && s.ctx.Err() != nil && !t.isUserCancel():
		// Shutdown, not cancellation: persist back to queued so the next
		// boot resumes from the checkpoint.
		t.mu.Lock()
		t.meta.State = StateQueued
		t.cancel = nil
		m := t.meta
		t.mu.Unlock()
		gaugeRunning.Add(-1)
		s.store.SaveMeta(m)
		s.log.Info("job parked for restart", "job", id, "done_points", m.DonePoints)
	case t.isUserCancel():
		s.finish(t, StateCancelled, nil)
	default:
		s.finish(t, StateFailed, runErr)
	}
}

func (t *tracker) isUserCancel() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.userCancel
}

// finish moves a running job to a terminal state and persists it.
func (s *Service) finish(t *tracker, st State, cause error) {
	t.mu.Lock()
	t.meta.State = st
	t.meta.FinishedAt = time.Now().UTC()
	if cause != nil {
		t.meta.Error = cause.Error()
	}
	t.cancel = nil
	m := t.meta
	t.mu.Unlock()

	gaugeRunning.Add(-1)
	mCompleted[st].Inc()
	if err := s.store.SaveMeta(m); err != nil {
		s.log.Error("job final persist failed", "job", m.ID, "err", err)
	}
	s.log.Info("job finished", "job", m.ID, "state", st,
		"done_points", m.DonePoints, "error", m.Error)
}

// runSweep streams the grid from the job's checkpoint, appending result
// lines and committing a checkpoint every CheckpointEvery points. Lines
// are json.Marshal(point)+"\n" — the same bytes the synchronous NDJSON
// path emits, which is what makes resume byte-identity testable.
func (s *Service) runSweep(ctx context.Context, t *tracker) error {
	t.mu.Lock()
	m := t.meta
	t.mu.Unlock()

	r, err := sweep.New(s.src, *m.Spec.Sweep)
	if err != nil {
		return err
	}

	var buf bytes.Buffer
	pending := 0
	checkpoints := 0
	flush := func() error {
		if pending == 0 {
			return nil
		}
		// A checkpoint span per durable commit: in the job's trace, the
		// sweep reads as chunk spans punctuated by append+persist spans,
		// which is exactly the checkpoint-to-checkpoint cadence resume
		// depends on.
		defer obs.StartSpan(ctx, "job_checkpoint", stageJobCheckpoint).End()
		n := int64(buf.Len())
		if err := s.store.AppendResults(m.ID, buf.Bytes()); err != nil {
			return fmt.Errorf("append results: %w", err)
		}
		checkpoints++
		if s.cfg.crashAfterCheckpoints > 0 && checkpoints >= s.cfg.crashAfterCheckpoints {
			return errCrash // died after the append, before the checkpoint
		}
		t.mu.Lock()
		t.meta.DonePoints += pending
		t.meta.ResultBytes += n
		cp := t.meta
		t.mu.Unlock()
		if err := s.store.SaveMeta(cp); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		mPoints.Add(int64(pending))
		mCheckpoints.Inc()
		buf.Reset()
		pending = 0
		return nil
	}

	runErr := r.RunFrom(ctx, m.DonePoints, func(p sweep.Point) error {
		line, err := json.Marshal(p)
		if err != nil {
			return err
		}
		buf.Write(line)
		buf.WriteByte('\n')
		pending++
		if pending >= s.cfg.CheckpointEvery {
			return flush()
		}
		return nil
	})
	if errors.Is(runErr, errCrash) {
		return runErr
	}
	// Checkpoint whatever completed — on cancellation or shutdown this is
	// what the resume (or the reader of a cancelled job) picks up.
	if ferr := flush(); ferr != nil {
		if errors.Is(ferr, errCrash) || runErr == nil {
			return ferr
		}
	}
	return runErr
}

// runPlan runs the search and appends one line per candidate (search
// order), then records the scalar summary in the job metadata. Plans are
// small relative to sweeps; the append is one cycle at the end.
func (s *Service) runPlan(ctx context.Context, t *tracker) error {
	t.mu.Lock()
	m := t.meta
	t.mu.Unlock()

	p, err := plan.New(s.src, *m.Spec.Plan)
	if err != nil {
		return err
	}
	res, err := p.Run(ctx)
	if err != nil {
		return err
	}

	var buf bytes.Buffer
	for i := range res.Plans {
		line, err := json.Marshal(&res.Plans[i])
		if err != nil {
			return err
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if err := s.store.AppendResults(m.ID, buf.Bytes()); err != nil {
		return fmt.Errorf("append results: %w", err)
	}
	t.mu.Lock()
	t.meta.DonePoints = len(res.Plans)
	t.meta.TotalPoints = len(res.Plans)
	t.meta.ResultBytes += int64(buf.Len())
	t.meta.PlanSummary = &PlanSummary{
		Target:     res.Target,
		CostModel:  res.CostModel,
		Objectives: res.Objectives,
		Candidates: res.Candidates,
	}
	cp := t.meta
	t.mu.Unlock()
	if err := s.store.SaveMeta(cp); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	mPoints.Add(int64(len(res.Plans)))
	mCheckpoints.Inc()
	return nil
}
