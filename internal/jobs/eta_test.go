package jobs

import (
	"math"
	"testing"
	"time"

	"catamount/internal/obs"
)

// chunkSnapshot builds a sweep_chunk-shaped histogram snapshot with the
// given observations, isolated from the process-global stage series.
func chunkSnapshot(obsv ...float64) obs.HistogramSnapshot {
	h := obs.NewRegistry().Histogram("chunk", "h", nil)
	for _, v := range obsv {
		h.Observe(v)
	}
	return h.Snapshot()
}

func TestETAZeroHistory(t *testing.T) {
	// Fresh running job: no points this run, empty chunk histogram. The
	// honest answer is "no estimate", i.e. 0.
	now := time.Now()
	if got := etaSeconds(now, 100, 0, 0, now, chunkSnapshot()); got != 0 {
		t.Fatalf("eta with zero history = %v, want 0", got)
	}
	// Also with a zero runStart (job never started a run).
	if got := etaSeconds(now, 100, 0, 0, time.Time{}, chunkSnapshot()); got != 0 {
		t.Fatalf("eta with zero runStart = %v, want 0", got)
	}
}

func TestETAFromRunThroughput(t *testing.T) {
	// 25 of 100 points in 10s → 2.5 pts/s → 75 remaining at 0.4 s/pt = 30s.
	start := time.Now()
	now := start.Add(10 * time.Second)
	got := etaSeconds(now, 100, 25, 0, start, chunkSnapshot())
	if math.Abs(got-30) > 1e-9 {
		t.Fatalf("eta = %v, want 30", got)
	}
	// Throughput wins even when the chunk histogram has (slower) history.
	got = etaSeconds(now, 100, 25, 0, start, chunkSnapshot(500))
	if math.Abs(got-30) > 1e-9 {
		t.Fatalf("eta ignored run throughput for the fallback: %v", got)
	}
}

func TestETAResumedJobUsesOnlyThisRun(t *testing.T) {
	// A resumed job restarts with checkpoint credit: 60 points predate
	// this run (runDone=60). 10s into the run it has 80 done, so this
	// run's throughput is (80-60)/10 = 2 pts/s → 20 remaining → 10s.
	// Naively dividing by all 80 done points would claim 2.5s.
	start := time.Now()
	now := start.Add(10 * time.Second)
	got := etaSeconds(now, 100, 80, 60, start, chunkSnapshot())
	if math.Abs(got-10) > 1e-9 {
		t.Fatalf("resumed eta = %v, want 10 (this run's throughput only)", got)
	}

	// Resumed but no points yet this run: fall through to the histogram,
	// not a division by the stale checkpoint credit.
	got = etaSeconds(now, 100, 60, 60, start, chunkSnapshot(2, 4))
	// 40 points remaining → 2 chunks of ≤32 rows at mean 3s each.
	if math.Abs(got-6) > 1e-9 {
		t.Fatalf("resumed zero-progress eta = %v, want 6 (chunk fallback)", got)
	}
}

func TestETAChunkFallbackRounding(t *testing.T) {
	start := time.Now()
	now := start.Add(time.Second)
	snap := chunkSnapshot(1, 3) // mean 2s per chunk
	for _, tc := range []struct {
		total, done int
		want        float64
	}{
		{32, 0, 2},   // exactly one chunk
		{33, 0, 4},   // 33 points → 2 chunks
		{100, 90, 2}, // 10 left → 1 chunk
		{64, 0, 4},
	} {
		got := etaSeconds(now, tc.total, tc.done, tc.done, start, snap)
		if math.Abs(got-tc.want) > 1e-9 {
			t.Fatalf("eta(total=%d done=%d) = %v, want %v", tc.total, tc.done, got, tc.want)
		}
	}
}

func TestETACompleteOrOverdone(t *testing.T) {
	start := time.Now()
	now := start.Add(time.Second)
	if got := etaSeconds(now, 50, 50, 0, start, chunkSnapshot(1)); got != 0 {
		t.Fatalf("eta at completion = %v, want 0", got)
	}
	if got := etaSeconds(now, 50, 60, 0, start, chunkSnapshot(1)); got != 0 {
		t.Fatalf("eta past completion = %v, want 0", got)
	}
}
