package jobs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// This file holds the pluggable durability layer behind the job service: a
// Store persists job metadata (the checkpoint) and the append-only result
// stream. Two implementations ship — MemStore for tests and servers that
// accept losing jobs on restart, and FileStore, whose write protocol makes
// a process kill at any instant recoverable:
//
//  1. result lines are appended (and synced) to results.ndjson first,
//  2. then the checkpoint meta (done-point count + result byte offset) is
//     written via tmp-file + rename.
//
// A crash between (1) and (2) leaves the results file longer than the last
// durable checkpoint; recovery truncates the torn tail back to the
// checkpointed offset and resumes the sweep from the checkpointed point
// count, which the sweep's deterministic emission order makes exact.

// ErrNotFound reports an unknown job ID.
var ErrNotFound = errors.New("jobs: no such job")

// Store persists job metadata and append-only result streams. Every method
// must be safe for concurrent use; the service serializes writes per job.
type Store interface {
	// SaveMeta durably records a job's metadata — its spec, state, and
	// checkpoint. For FileStore this is the commit point of a checkpoint.
	SaveMeta(m Meta) error
	// LoadAll returns every persisted job's metadata, for startup
	// recovery. Order is unspecified.
	LoadAll() ([]Meta, error)
	// AppendResults appends a raw chunk of NDJSON result lines to the
	// job's result stream. Durability is append-then-checkpoint: the
	// chunk must be on stable storage before the SaveMeta that covers it.
	AppendResults(id string, chunk []byte) error
	// TruncateResults cuts the job's result stream back to size bytes —
	// recovery's tool for dropping a torn tail past the last checkpoint.
	TruncateResults(id string, size int64) error
	// ResultSize reports the current byte length of the result stream.
	ResultSize(id string) (int64, error)
	// OpenResults opens the job's result stream for reading from the
	// given byte offset.
	OpenResults(id string, offset int64) (io.ReadCloser, error)
	// Delete removes the job's metadata and results.
	Delete(id string) error
}

// ---------------------------------------------------------------------------
// MemStore

// MemStore is the in-memory Store: jobs survive for the life of the
// process. It is the default when catamountd runs without -jobs-dir.
type MemStore struct {
	mu   sync.RWMutex
	meta map[string]Meta
	res  map[string]*bytes.Buffer
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{meta: make(map[string]Meta), res: make(map[string]*bytes.Buffer)}
}

func (s *MemStore) SaveMeta(m Meta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.meta[m.ID] = m
	if _, ok := s.res[m.ID]; !ok {
		s.res[m.ID] = &bytes.Buffer{}
	}
	return nil
}

func (s *MemStore) LoadAll() ([]Meta, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Meta, 0, len(s.meta))
	for _, m := range s.meta {
		out = append(out, m)
	}
	return out, nil
}

func (s *MemStore) AppendResults(id string, chunk []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf, ok := s.res[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	buf.Write(chunk)
	return nil
}

func (s *MemStore) TruncateResults(id string, size int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf, ok := s.res[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if int64(buf.Len()) > size {
		buf.Truncate(int(size))
	}
	return nil
}

func (s *MemStore) ResultSize(id string) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	buf, ok := s.res[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return int64(buf.Len()), nil
}

func (s *MemStore) OpenResults(id string, offset int64) (io.ReadCloser, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	buf, ok := s.res[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	// Copy under the lock: the worker may append while a page is read.
	b := buf.Bytes()
	if offset > int64(len(b)) {
		offset = int64(len(b))
	}
	cp := make([]byte, len(b)-int(offset))
	copy(cp, b[offset:])
	return io.NopCloser(bytes.NewReader(cp)), nil
}

func (s *MemStore) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.meta[id]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	delete(s.meta, id)
	delete(s.res, id)
	return nil
}

// ---------------------------------------------------------------------------
// FileStore

// metaFile and resultsFile are the two files of one job's directory.
const (
	metaFile    = "meta.json"
	resultsFile = "results.ndjson"
)

// FileStore persists each job as a directory under root:
//
//	<root>/<job-id>/meta.json       checkpointed metadata (tmp+rename)
//	<root>/<job-id>/results.ndjson  append-only result lines (synced)
//
// It is the durable Store behind catamountd -jobs-dir.
type FileStore struct {
	root string
	mu   sync.Mutex // serializes meta renames; appends are per-job anyway
}

// NewFileStore opens (creating if needed) a file-backed store rooted at
// dir.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: create store dir: %w", err)
	}
	return &FileStore{root: dir}, nil
}

// Root returns the store's directory.
func (s *FileStore) Root() string { return s.root }

// jobDir validates the ID (it becomes a path segment) and returns its
// directory.
func (s *FileStore) jobDir(id string) (string, error) {
	if id == "" || strings.ContainsAny(id, "/\\.") {
		return "", fmt.Errorf("jobs: invalid job id %q", id)
	}
	return filepath.Join(s.root, id), nil
}

func (s *FileStore) SaveMeta(m Meta) error {
	dir, err := s.jobDir(m.ID)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp := filepath.Join(dir, metaFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, metaFile))
}

func (s *FileStore) LoadAll() ([]Meta, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, err
	}
	var out []Meta
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(s.root, e.Name(), metaFile))
		if err != nil {
			// A job directory without committed metadata (crash before the
			// first SaveMeta rename) holds nothing recoverable; skip it.
			continue
		}
		var m Meta
		if err := json.Unmarshal(b, &m); err != nil || m.ID != e.Name() {
			continue
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CreatedAt.Before(out[j].CreatedAt) })
	return out, nil
}

func (s *FileStore) AppendResults(id string, chunk []byte) error {
	dir, err := s.jobDir(id)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(dir, resultsFile), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		return err
	}
	defer f.Close()
	if _, err := f.Write(chunk); err != nil {
		return err
	}
	// Sync before the caller checkpoints: the append-then-checkpoint
	// ordering is the whole durability argument.
	return f.Sync()
}

func (s *FileStore) TruncateResults(id string, size int64) error {
	dir, err := s.jobDir(id)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, resultsFile)
	st, err := os.Stat(path)
	if os.IsNotExist(err) {
		if size == 0 {
			return nil
		}
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if err != nil {
		return err
	}
	if st.Size() <= size {
		return nil
	}
	return os.Truncate(path, size)
}

func (s *FileStore) ResultSize(id string) (int64, error) {
	dir, err := s.jobDir(id)
	if err != nil {
		return 0, err
	}
	st, err := os.Stat(filepath.Join(dir, resultsFile))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (s *FileStore) OpenResults(id string, offset int64) (io.ReadCloser, error) {
	dir, err := s.jobDir(id)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(dir, resultsFile))
	if err != nil {
		if os.IsNotExist(err) {
			return io.NopCloser(bytes.NewReader(nil)), nil
		}
		return nil, err
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func (s *FileStore) Delete(id string) error {
	dir, err := s.jobDir(id)
	if err != nil {
		return err
	}
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return os.RemoveAll(dir)
}
