package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	cat "catamount"
	"catamount/internal/api"
	"catamount/internal/sweep"
)

// sharedEngine keeps model build+compile cost to once per test binary; it
// satisfies sweep.SessionSource the same way catamountd's engine does.
var sharedEngine = cat.NewEngine()

// testSweepSpec is a 20-point single-domain grid: big enough to span
// several small checkpoints, small enough to finish in well under a second.
func testSweepSpec() api.SweepSpec {
	return api.SweepSpec{
		Domains:      []string{"wordlm"},
		ParamMin:     1e7,
		ParamMax:     1e9,
		ParamSteps:   20,
		Subbatches:   []float64{32},
		Accelerators: []string{"v100"},
	}
}

// syncSweepLines runs spec synchronously through the sweep runner — the
// exact path POST /v1/sweep streams — and returns the NDJSON lines
// (json.Marshal(point)+"\n" each), the byte-identity reference for jobs.
func syncSweepLines(t *testing.T, spec api.SweepSpec) [][]byte {
	t.Helper()
	r, err := sweep.New(sharedEngine, spec)
	if err != nil {
		t.Fatal(err)
	}
	var lines [][]byte
	err = r.Run(context.Background(), func(p sweep.Point) error {
		b, err := json.Marshal(p)
		if err != nil {
			return err
		}
		lines = append(lines, append(b, '\n'))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return lines
}

func joinLines(lines [][]byte) []byte {
	return bytes.Join(lines, nil)
}

// waitState polls a job until pred holds or the deadline passes.
func waitState(t *testing.T, s *Service, id string, pred func(Status) bool) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := s.StatusOf(id)
		if err != nil {
			t.Fatal(err)
		}
		if pred(st) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, _ := s.StatusOf(id)
	t.Fatalf("job %s never reached wanted state; last: %+v", id, st.Meta)
	return Status{}
}

// readAll pages through a job's results with a deliberately small limit,
// exercising the pagination path, and returns the concatenated stream.
func readAll(t *testing.T, s *Service, id string, limit int) []byte {
	t.Helper()
	var out bytes.Buffer
	start := 0
	for {
		pg, err := s.Results(id, start, limit)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range pg.Lines {
			out.Write(line)
			out.WriteByte('\n')
		}
		if pg.Count == 0 || pg.NextStart >= pg.Done {
			return out.Bytes()
		}
		start = pg.NextStart
	}
}

func TestFileStoreProtocol(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	for _, bad := range []string{"", "a/b", `a\b`, "..", "j.1"} {
		if err := fs.SaveMeta(Meta{ID: bad}); err == nil {
			t.Fatalf("SaveMeta accepted invalid id %q", bad)
		}
	}

	m := Meta{ID: "jdeadbeef", State: StateQueued,
		Spec:      api.JobSpec{Type: api.JobTypeSweep, Sweep: &api.SweepSpec{Params: []float64{1e8}}},
		CreatedAt: time.Now().UTC().Truncate(time.Microsecond), TotalPoints: 7}
	if err := fs.SaveMeta(m); err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendResults(m.ID, []byte("one\ntwo\n")); err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendResults(m.ID, []byte("torn-tai")); err != nil {
		t.Fatal(err)
	}
	if n, _ := fs.ResultSize(m.ID); n != 16 {
		t.Fatalf("ResultSize = %d, want 16", n)
	}
	if err := fs.TruncateResults(m.ID, 8); err != nil {
		t.Fatal(err)
	}
	rc, err := fs.OpenResults(m.ID, 4)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 16)
	n, _ := rc.Read(b)
	rc.Close()
	if string(b[:n]) != "two\n" {
		t.Fatalf("OpenResults after truncate read %q, want \"two\\n\"", b[:n])
	}

	// A junk entry (no committed meta.json) and a mismatched meta must both
	// be skipped by recovery.
	os.MkdirAll(filepath.Join(dir, "jabandoned"), 0o755)
	os.MkdirAll(filepath.Join(dir, "jmismatch"), 0o755)
	os.WriteFile(filepath.Join(dir, "jmismatch", metaFile), []byte(`{"id":"other"}`), 0o644)
	metas, err := fs.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 1 || metas[0].ID != m.ID || metas[0].TotalPoints != 7 {
		t.Fatalf("LoadAll = %+v, want exactly the committed job", metas)
	}

	if err := fs.Delete(m.ID); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete(m.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second Delete = %v, want ErrNotFound", err)
	}
}

func TestSweepJobMatchesSynchronousSweep(t *testing.T) {
	spec := testSweepSpec()
	want := joinLines(syncSweepLines(t, spec))

	svc, err := New(Config{Source: sharedEngine, Workers: 1, CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	m, err := svc.Submit(api.JobSpec{Type: api.JobTypeSweep, Sweep: &spec})
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalPoints != 20 {
		t.Fatalf("TotalPoints = %d, want 20", m.TotalPoints)
	}
	st := waitState(t, svc, m.ID, func(st Status) bool { return st.State.Terminal() })
	if st.State != StateSucceeded || st.DonePoints != 20 || st.Progress != 1 {
		t.Fatalf("terminal status = %+v", st)
	}

	got := readAll(t, svc, m.ID, 3)
	if !bytes.Equal(got, want) {
		t.Fatalf("job results differ from synchronous sweep:\njob:  %d bytes\nsync: %d bytes", len(got), len(want))
	}

	// Page windows are stable and never cross the checkpoint.
	pg, err := svc.Results(m.ID, 18, 10)
	if err != nil {
		t.Fatal(err)
	}
	if pg.Start != 18 || pg.Count != 2 || pg.NextStart != 20 || pg.Done != 20 {
		t.Fatalf("tail page = %+v", pg)
	}

	// Lifecycle edges on a terminal job: Cancel conflicts, Delete removes.
	if _, err := svc.Cancel(m.ID); !errors.Is(err, ErrTerminal) {
		t.Fatalf("Cancel(terminal) = %v, want ErrTerminal", err)
	}
	if err := svc.Delete(m.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Get(m.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete = %v, want ErrNotFound", err)
	}
}

func TestPlanJob(t *testing.T) {
	svc, err := New(Config{Source: sharedEngine, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	m, err := svc.Submit(api.JobSpec{Type: api.JobTypePlan, Plan: &api.PlanSpec{
		Domain:       "wordlm",
		Accelerators: []string{"v100"},
		WorkerCounts: []int{1, 2, 4},
		Subbatches:   []float64{32},
	}})
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, svc, m.ID, func(st Status) bool { return st.State.Terminal() })
	if st.State != StateSucceeded {
		t.Fatalf("plan job state = %s (%s)", st.State, st.Error)
	}
	if st.PlanSummary == nil || st.PlanSummary.Candidates != st.DonePoints || st.DonePoints == 0 {
		t.Fatalf("plan summary = %+v, done = %d", st.PlanSummary, st.DonePoints)
	}
	got := readAll(t, svc, m.ID, 2)
	if n := bytes.Count(got, []byte("\n")); n != st.DonePoints {
		t.Fatalf("result lines = %d, want %d", n, st.DonePoints)
	}
}

func TestSubmitRejections(t *testing.T) {
	svc, err := New(Config{Source: sharedEngine, MaxPoints: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	cases := []api.JobSpec{
		{},
		{Type: "bogus"},
		{Type: api.JobTypeSweep},
		{Type: api.JobTypeSweep, Sweep: &api.SweepSpec{}, Plan: &api.PlanSpec{}},
		{Type: api.JobTypeSweep, Sweep: &api.SweepSpec{Domains: []string{"nope"}, Params: []float64{1e8}}},
		{Type: api.JobTypePlan, Plan: &api.PlanSpec{Domain: "nope"}},
		// 20 points over a 5-point cap.
		{Type: api.JobTypeSweep, Sweep: &api.SweepSpec{
			Domains: []string{"wordlm"}, ParamMin: 1e7, ParamMax: 1e9, ParamSteps: 20,
			Subbatches: []float64{32}, Accelerators: []string{"v100"}}},
	}
	for i, spec := range cases {
		if _, err := svc.Submit(spec); err == nil {
			t.Fatalf("case %d: Submit accepted invalid spec %+v", i, spec)
		}
	}
	if got := len(svc.List()); got != 0 {
		t.Fatalf("rejected submissions left %d jobs behind", got)
	}
}

// TestKillAndRestartResumesByteIdentical is the durability acceptance test:
// a file-backed job killed between a result append and its checkpoint (the
// torn-tail window) resumes after "restart" (a fresh Service over the same
// directory) and finishes with results byte-identical to the same spec run
// synchronously through the sweep runner.
func TestKillAndRestartResumesByteIdentical(t *testing.T) {
	spec := testSweepSpec()
	lines := syncSweepLines(t, spec)
	want := joinLines(lines)

	dir := t.TempDir()
	fs1, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// CheckpointEvery=4, crash at the 2nd append: the process "dies" with 8
	// result lines on disk but only 4 covered by the committed checkpoint.
	svc1, err := New(Config{Source: sharedEngine, Store: fs1, Workers: 1,
		CheckpointEvery: 4, crashAfterCheckpoints: 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := svc1.Submit(api.JobSpec{Type: api.JobTypeSweep, Sweep: &spec})
	if err != nil {
		t.Fatal(err)
	}

	// The crash point is deterministic: exactly the first 8 lines are
	// appended, then the worker abandons the job without another persist.
	crashSize := int64(len(joinLines(lines[:8])))
	deadline := time.Now().Add(30 * time.Second)
	for {
		if n, _ := fs1.ResultSize(m.ID); n == crashSize {
			break
		}
		if time.Now().After(deadline) {
			n, _ := fs1.ResultSize(m.ID)
			t.Fatalf("results never reached the crash point: %d bytes, want %d", n, crashSize)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The dead job is still "running" as far as svc1 knows: its checkpoint
	// serves exactly the 4 committed lines, and Delete refuses.
	if err := svc1.Delete(m.ID); !errors.Is(err, ErrNotTerminal) {
		t.Fatalf("Delete(active) = %v, want ErrNotTerminal", err)
	}
	if got := readAll(t, svc1, m.ID, 100); !bytes.Equal(got, joinLines(lines[:4])) {
		t.Fatalf("checkpoint window serves %d bytes, want the 4 committed lines (%d bytes)",
			len(got), len(joinLines(lines[:4])))
	}
	svc1.Close()

	// Make the torn tail worse: a partial line a kill mid-write would leave.
	f, err := os.OpenFile(filepath.Join(dir, m.ID, resultsFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":999,"torn`)
	f.Close()

	// On-disk state before recovery: meta says running with a 4-line
	// checkpoint, results file holds 8 lines plus garbage.
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	metas, err := fs2.LoadAll()
	if err != nil || len(metas) != 1 {
		t.Fatalf("LoadAll = %v, %v", metas, err)
	}
	if metas[0].State != StateRunning || metas[0].DonePoints != 4 {
		t.Fatalf("pre-recovery meta = state %s, done %d; want running/4", metas[0].State, metas[0].DonePoints)
	}

	// "Restart": recovery truncates the torn tail to the checkpoint and
	// re-queues the job, which resumes at point 4 and runs to completion.
	svc2, err := New(Config{Source: sharedEngine, Store: fs2, Workers: 1, CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()

	st := waitState(t, svc2, m.ID, func(st Status) bool { return st.State.Terminal() })
	if st.State != StateSucceeded {
		t.Fatalf("resumed job state = %s (%s)", st.State, st.Error)
	}
	if st.Resumes != 1 {
		t.Fatalf("Resumes = %d, want 1", st.Resumes)
	}
	if st.DonePoints != st.TotalPoints || st.TotalPoints != 20 {
		t.Fatalf("resumed job done %d / total %d, want 20/20", st.DonePoints, st.TotalPoints)
	}

	got := readAll(t, svc2, m.ID, 3)
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed results are not byte-identical to the synchronous sweep:\ngot %d bytes, want %d", len(got), len(want))
	}
	// And the file itself holds exactly the synchronous stream: the torn
	// tail is gone, nothing was double-appended.
	onDisk, err := os.ReadFile(filepath.Join(dir, m.ID, resultsFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, want) {
		t.Fatalf("results.ndjson differs from the synchronous stream: %d bytes, want %d", len(onDisk), len(want))
	}
}

// TestCloseParksRunningJob: shutting the service down mid-run persists the
// job back to queued (resumable), not cancelled or failed.
func TestCloseParksRunningJob(t *testing.T) {
	spec := api.SweepSpec{
		Domains:      []string{"wordlm", "charlm", "nmt", "speech", "image"},
		ParamMin:     1e7,
		ParamMax:     1e9,
		ParamSteps:   400,
		Subbatches:   []float64{32},
		Accelerators: []string{"v100"},
	}
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{Source: sharedEngine, Store: fs, Workers: 1, CheckpointEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	m, err := svc.Submit(api.JobSpec{Type: api.JobTypeSweep, Sweep: &spec})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, svc, m.ID, func(st Status) bool { return st.State == StateRunning })
	svc.Close()

	metas, err := fs.LoadAll()
	if err != nil || len(metas) != 1 {
		t.Fatalf("LoadAll = %v, %v", metas, err)
	}
	got := metas[0]
	if got.State != StateQueued && got.State != StateSucceeded {
		t.Fatalf("state after shutdown = %s, want queued (parked) or succeeded (finished first)", got.State)
	}
	if got.State == StateQueued && got.DonePoints >= got.TotalPoints {
		t.Fatalf("parked job claims completion: %+v", got)
	}
}
