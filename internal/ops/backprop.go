package ops

import (
	"fmt"

	"catamount/internal/graph"
	"catamount/internal/symbolic"
)

// Backprop appends explicit backward ops to the builder's graph for the
// gradient of the scalar loss with respect to every reachable tensor, then
// attaches one SGD-with-momentum update per trainable parameter. The
// resulting graph is a complete training step: forward, backward, update.
//
// Gradient contributions to a tensor consumed by several ops are accumulated
// incrementally (chained adds) in reverse-topological arrival order, which
// mirrors framework behaviour and keeps the live set small.
func Backprop(b *Builder, loss *graph.Tensor, opt SGDMomentum) error {
	if loss.Shape.Rank() != 0 {
		return fmt.Errorf("ops: backprop loss must be scalar, got %s", loss.Shape)
	}
	g := b.G
	forward, err := g.TopoOrder()
	if err != nil {
		return err
	}

	grads := make(map[*graph.Tensor]*graph.Tensor)
	accumulate := func(group string, t, partial *graph.Tensor) {
		if prev, ok := grads[t]; ok {
			sum := g.NewTensor("d:"+t.Name+":acc", graph.Activation, t.DType, t.Shape)
			g.MustAddNode("bwd/acc:"+t.Name, group, GradAccum{},
				[]*graph.Tensor{prev, partial}, []*graph.Tensor{sum})
			grads[t] = sum
			return
		}
		grads[t] = partial
	}
	newGrad := func(t *graph.Tensor) *graph.Tensor {
		return g.NewTensor("d:"+t.Name, graph.Activation, t.DType, t.Shape)
	}

	// Seed: d(loss)/d(loss) = 1.
	seed := newGrad(loss)
	g.MustAddNode("bwd/seed", loss.Group, Fill{Value: 1}, nil, []*graph.Tensor{seed})
	grads[loss] = seed

	for i := len(forward) - 1; i >= 0; i-- {
		n := forward[i]
		if err := backwardNode(b, n, grads, accumulate, newGrad); err != nil {
			return err
		}
	}

	// Optimizer updates.
	for _, p := range g.Params() {
		gr, ok := grads[p]
		if !ok {
			return fmt.Errorf("ops: parameter %q received no gradient", p.Name)
		}
		mom := g.NewTensor("mom:"+p.Name, graph.State, p.DType, p.Shape)
		mom.Group = p.Group
		g.MustAddNode("update:"+p.Name, p.Group, opt,
			[]*graph.Tensor{p, gr, mom}, nil)
	}
	return nil
}

// backwardNode emits the backward ops for one forward node.
func backwardNode(b *Builder, n *graph.Node, grads map[*graph.Tensor]*graph.Tensor,
	accumulate func(string, *graph.Tensor, *graph.Tensor), newGrad func(*graph.Tensor) *graph.Tensor) error {

	g := b.G
	gr := n.Group

	// Gradient of the primary output (most ops have exactly one).
	var dY *graph.Tensor
	if len(n.Outputs) > 0 {
		dY = grads[n.Outputs[0]]
	}

	switch op := n.Op.(type) {
	case MatMul:
		if dY == nil {
			return nil
		}
		if op.TransA {
			return fmt.Errorf("ops: backprop through transA matmul unsupported")
		}
		a, w := n.Inputs[0], n.Inputs[1]
		da := newGrad(a)
		g.MustAddNode("bwd/"+n.Name+":dA", gr, MatMul{TransA: false, TransB: !op.TransB},
			[]*graph.Tensor{dY, w}, []*graph.Tensor{da})
		accumulate(gr, a, da)
		dw := newGrad(w)
		if op.TransB {
			g.MustAddNode("bwd/"+n.Name+":dB", gr, MatMul{TransA: true, TransB: false},
				[]*graph.Tensor{dY, a}, []*graph.Tensor{dw})
		} else {
			g.MustAddNode("bwd/"+n.Name+":dB", gr, MatMul{TransA: true, TransB: false},
				[]*graph.Tensor{a, dY}, []*graph.Tensor{dw})
		}
		accumulate(gr, w, dw)

	case BatchedMatMul:
		if dY == nil {
			return nil
		}
		if op.TransA {
			return fmt.Errorf("ops: backprop through transA batched-matmul unsupported")
		}
		a, w := n.Inputs[0], n.Inputs[1]
		da := newGrad(a)
		g.MustAddNode("bwd/"+n.Name+":dA", gr, BatchedMatMul{TransA: false, TransB: !op.TransB},
			[]*graph.Tensor{dY, w}, []*graph.Tensor{da})
		accumulate(gr, a, da)
		dw := newGrad(w)
		if op.TransB {
			g.MustAddNode("bwd/"+n.Name+":dB", gr, BatchedMatMul{TransA: true, TransB: false},
				[]*graph.Tensor{dY, a}, []*graph.Tensor{dw})
		} else {
			g.MustAddNode("bwd/"+n.Name+":dB", gr, BatchedMatMul{TransA: true, TransB: false},
				[]*graph.Tensor{a, dY}, []*graph.Tensor{dw})
		}
		accumulate(gr, w, dw)

	case Binary:
		if dY == nil {
			return nil
		}
		a, c := n.Inputs[0], n.Inputs[1]
		switch op.Fn {
		case "add":
			accumulate(gr, a, dY)
			accumulate(gr, c, dY)
		case "sub":
			accumulate(gr, a, dY)
			neg := newGrad(c)
			g.MustAddNode("bwd/"+n.Name+":neg", gr, Unary{Fn: "scale", FlopsPerElem: 1, Factor: -1},
				[]*graph.Tensor{dY}, []*graph.Tensor{neg})
			accumulate(gr, c, neg)
		case "mul":
			da := newGrad(a)
			g.MustAddNode("bwd/"+n.Name+":dA", gr, Binary{Fn: "mul"},
				[]*graph.Tensor{dY, c}, []*graph.Tensor{da})
			accumulate(gr, a, da)
			dc := newGrad(c)
			g.MustAddNode("bwd/"+n.Name+":dB", gr, Binary{Fn: "mul"},
				[]*graph.Tensor{dY, a}, []*graph.Tensor{dc})
			accumulate(gr, c, dc)
		default:
			return fmt.Errorf("ops: no gradient for binary op %q", op.Fn)
		}

	case BiasAdd:
		if dY == nil {
			return nil
		}
		x, bias := n.Inputs[0], n.Inputs[1]
		accumulate(gr, x, dY)
		db := newGrad(bias)
		g.MustAddNode("bwd/"+n.Name+":dBias", gr, Reduce{KeepDims: 1},
			[]*graph.Tensor{dY}, []*graph.Tensor{db})
		accumulate(gr, bias, db)

	case Unary:
		if dY == nil {
			return nil
		}
		x := n.Inputs[0]
		y := n.Outputs[0]
		dx := newGrad(x)
		g.MustAddNode("bwd/"+n.Name, gr,
			UnaryGrad{Fn: op.Fn, FlopsPerElem: unaryGradCost(op.Fn), Factor: op.Factor},
			[]*graph.Tensor{y, dY}, []*graph.Tensor{dx})
		accumulate(gr, x, dx)

	case Conv2D:
		if dY == nil {
			return nil
		}
		x, w := n.Inputs[0], n.Inputs[1]
		dx := newGrad(x)
		g.MustAddNode("bwd/"+n.Name+":dX", gr, Conv2DGradInput{StrideH: op.StrideH, StrideW: op.StrideW},
			[]*graph.Tensor{w, dY}, []*graph.Tensor{dx})
		accumulate(gr, x, dx)
		dw := newGrad(w)
		g.MustAddNode("bwd/"+n.Name+":dW", gr, Conv2DGradWeight{StrideH: op.StrideH, StrideW: op.StrideW},
			[]*graph.Tensor{x, dY}, []*graph.Tensor{dw})
		accumulate(gr, w, dw)

	case Embedding:
		if dY == nil {
			return nil
		}
		ids, table := n.Inputs[0], n.Inputs[1]
		dt := newGrad(table)
		g.MustAddNode("bwd/"+n.Name, gr, EmbeddingGrad{},
			[]*graph.Tensor{ids, dY}, []*graph.Tensor{dt})
		accumulate(gr, table, dt)

	case Softmax:
		if dY == nil {
			return nil
		}
		x := n.Inputs[0]
		dx := newGrad(x)
		g.MustAddNode("bwd/"+n.Name, gr, SoftmaxGrad{},
			[]*graph.Tensor{n.Outputs[0], dY}, []*graph.Tensor{dx})
		accumulate(gr, x, dx)

	case SoftmaxXent:
		// Outputs: (loss, probs). Gradient flows from loss to logits via the
		// saved probs; labels get no gradient.
		dLoss := grads[n.Outputs[0]]
		if dLoss == nil {
			return nil
		}
		logits, labels := n.Inputs[0], n.Inputs[1]
		probs := n.Outputs[1]
		dl := newGrad(logits)
		g.MustAddNode("bwd/"+n.Name, gr, SoftmaxXentGrad{},
			[]*graph.Tensor{probs, labels, dLoss}, []*graph.Tensor{dl})
		accumulate(gr, logits, dl)

	case BatchNorm:
		if dY == nil {
			return nil
		}
		x, gamma, beta := n.Inputs[0], n.Inputs[1], n.Inputs[2]
		dx, dg, db := newGrad(x), newGrad(gamma), newGrad(beta)
		g.MustAddNode("bwd/"+n.Name, gr, BatchNormGrad{},
			[]*graph.Tensor{x, gamma, dY}, []*graph.Tensor{dx, dg, db})
		accumulate(gr, x, dx)
		accumulate(gr, gamma, dg)
		accumulate(gr, beta, db)

	case Pool:
		if dY == nil {
			return nil
		}
		x := n.Inputs[0]
		dx := newGrad(x)
		g.MustAddNode("bwd/"+n.Name, gr, PoolGrad{KH: op.KH, KW: op.KW, SH: op.SH, SW: op.SW, Max: op.Max},
			[]*graph.Tensor{x, dY}, []*graph.Tensor{dx})
		accumulate(gr, x, dx)

	case Reduce:
		if dY == nil {
			return nil
		}
		x := n.Inputs[0]
		dx := newGrad(x)
		g.MustAddNode("bwd/"+n.Name, gr, Broadcast{ScaleFlops: op.Mean},
			[]*graph.Tensor{dY}, []*graph.Tensor{dx})
		accumulate(gr, x, dx)

	case Concat:
		if dY == nil {
			return nil
		}
		// Split dY back into per-input grads (inputs may be unequal along
		// the axis, so the outputs take the input shapes directly).
		douts := make([]*graph.Tensor, len(n.Inputs))
		for i, in := range n.Inputs {
			douts[i] = newGrad(in)
		}
		g.MustAddNode("bwd/"+n.Name, gr, Split{Axis: op.Axis, N: len(n.Inputs)},
			[]*graph.Tensor{dY}, douts)
		for i, in := range n.Inputs {
			accumulate(gr, in, douts[i])
		}

	case Split:
		// Concat the output grads; outputs with no gradient get zero fill.
		parts := make([]*graph.Tensor, len(n.Outputs))
		any := false
		for i, out := range n.Outputs {
			if gp := grads[out]; gp != nil {
				parts[i] = gp
				any = true
			}
		}
		if !any {
			return nil
		}
		for i, out := range n.Outputs {
			if parts[i] == nil {
				z := newGrad(out)
				g.MustAddNode("bwd/"+n.Name+":zero", gr, Fill{}, nil, []*graph.Tensor{z})
				parts[i] = z
			}
		}
		x := n.Inputs[0]
		dx := newGrad(x)
		g.MustAddNode("bwd/"+n.Name, gr, Concat{Axis: op.Axis}, parts, []*graph.Tensor{dx})
		accumulate(gr, x, dx)

	case Transpose:
		if dY == nil {
			return nil
		}
		inv := make([]int, len(op.Perm))
		for i, p := range op.Perm {
			inv[p] = i
		}
		x := n.Inputs[0]
		dx := newGrad(x)
		g.MustAddNode("bwd/"+n.Name, gr, Transpose{Perm: inv},
			[]*graph.Tensor{dY}, []*graph.Tensor{dx})
		accumulate(gr, x, dx)

	case Reshape:
		if dY == nil {
			return nil
		}
		x := n.Inputs[0]
		dx := newGrad(x)
		g.MustAddNode("bwd/"+n.Name, gr, Reshape{},
			[]*graph.Tensor{dY}, []*graph.Tensor{dx})
		accumulate(gr, x, dx)

	case Fill, SGDMomentum:
		// No gradient.

	default:
		return fmt.Errorf("ops: no gradient rule for op kind %q", n.Op.Kind())
	}
	return nil
}

// unaryGradCost returns the per-element FLOPs of a unary op's gradient.
func unaryGradCost(fn string) float64 {
	switch fn {
	case "relu", "scale":
		return 1
	case "sigmoid", "tanh":
		return 3 // f'(y) from saved activation plus the dY product
	}
	return 2
}

// ForwardBackwardFLOPs returns the symbolic FLOP totals of the forward and
// backward (including optimizer) node populations, for callers that compile
// the split once and evaluate it per sweep point.
func ForwardBackwardFLOPs(g *graph.Graph) (fwd, bwd symbolic.Expr) {
	g.WarmCosts() // synchronize the per-node cost-cache fill
	var fwdTerms, bwdTerms []symbolic.Expr
	for _, n := range g.Nodes() {
		if isBackwardNode(n) {
			bwdTerms = append(bwdTerms, n.FLOPs())
		} else {
			fwdTerms = append(fwdTerms, n.FLOPs())
		}
	}
	return symbolic.Add(fwdTerms...), symbolic.Add(bwdTerms...)
}

// ForwardBackwardSplit evaluates FLOPs separately for forward and backward
// (including optimizer) node populations — used to validate the paper's
// ~2x-backward observation.
func ForwardBackwardSplit(g *graph.Graph, env map[string]float64) (fwd, bwd float64, err error) {
	fe, be := ForwardBackwardFLOPs(g)
	if fwd, err = fe.Eval(env); err != nil {
		return 0, 0, err
	}
	if bwd, err = be.Eval(env); err != nil {
		return 0, 0, err
	}
	return fwd, bwd, nil
}

func isBackwardNode(n *graph.Node) bool {
	if len(n.Name) >= 4 && n.Name[:4] == "bwd/" {
		return true
	}
	if len(n.Name) >= 7 && n.Name[:7] == "update:" {
		return true
	}
	return false
}

// ZerosLike creates an activation tensor matching t, produced by a Fill node
// (used by tests and synthetic workloads).
func ZerosLike(b *Builder, t *graph.Tensor) *graph.Tensor {
	z := b.G.NewTensor("zeros:"+t.Name, graph.Activation, t.DType, t.Shape)
	b.G.MustAddNode("fill:"+t.Name, t.Group, Fill{}, nil, []*graph.Tensor{z})
	return z
}
