// Package ops provides the operator catalog for the compute-graph IR: each
// op type defines its algorithmic FLOPs and bytes (paper §2.1), a Builder
// that constructs graphs with symbolic shape inference, and Backprop, which
// emits explicit backward ops (gradients flow to both weights and
// activations, and matrix-op backprop costs ~2x the forward FLOPs, §2.1).
package ops

import (
	"fmt"

	"catamount/internal/graph"
	"catamount/internal/symbolic"
)

func numel(t *graph.Tensor) symbolic.Expr { return t.NumElements() }

func out0(n *graph.Node) *graph.Tensor { return n.Outputs[0] }

// ---------------------------------------------------------------------------
// Dense linear algebra

// MatMul multiplies A[m,k] by B[k,n] into Y[m,n], with optional transposes.
type MatMul struct {
	TransA, TransB bool
}

// Kind implements graph.Op.
func (o MatMul) Kind() string { return "matmul" }

// FLOPs implements graph.Op: 2·m·n·k multiply-accumulates.
func (o MatMul) FLOPs(n *graph.Node) symbolic.Expr {
	y := out0(n)
	a := n.Inputs[0]
	kIdx := 1
	if o.TransA {
		kIdx = 0
	}
	return symbolic.Mul(symbolic.C(2), y.Shape.Dim(0), y.Shape.Dim(1), a.Shape.Dim(kIdx))
}

// Bytes implements graph.Op.
func (o MatMul) Bytes(n *graph.Node) symbolic.Expr { return graph.IOBytes(n) }

// BatchedMatMul multiplies A[b,m,k] by B[b,k,n] into Y[b,m,n].
type BatchedMatMul struct {
	TransA, TransB bool
}

// Kind implements graph.Op.
func (o BatchedMatMul) Kind() string { return "batched-matmul" }

// FLOPs implements graph.Op.
func (o BatchedMatMul) FLOPs(n *graph.Node) symbolic.Expr {
	y := out0(n)
	a := n.Inputs[0]
	kIdx := 2
	if o.TransA {
		kIdx = 1
	}
	return symbolic.Mul(symbolic.C(2), y.Shape.Dim(0), y.Shape.Dim(1), y.Shape.Dim(2), a.Shape.Dim(kIdx))
}

// Bytes implements graph.Op.
func (o BatchedMatMul) Bytes(n *graph.Node) symbolic.Expr { return graph.IOBytes(n) }

// ---------------------------------------------------------------------------
// Convolution

// Conv2D convolves X[n,h,w,c] with W[r,s,c,k] into Y[n,h',w',k] (NHWC,
// same-padding, integer strides).
type Conv2D struct {
	StrideH, StrideW int
}

// Kind implements graph.Op.
func (o Conv2D) Kind() string { return "conv2d" }

// FLOPs implements graph.Op: 2·n·h'·w'·r·s·c·k.
func (o Conv2D) FLOPs(n *graph.Node) symbolic.Expr {
	y := out0(n)
	w := n.Inputs[1]
	return symbolic.Mul(symbolic.C(2),
		y.Shape.Dim(0), y.Shape.Dim(1), y.Shape.Dim(2), y.Shape.Dim(3),
		w.Shape.Dim(0), w.Shape.Dim(1), w.Shape.Dim(2))
}

// Bytes implements graph.Op.
func (o Conv2D) Bytes(n *graph.Node) symbolic.Expr { return graph.IOBytes(n) }

// Conv2DGradInput computes dX from (W, dY); same FLOPs as the forward conv.
type Conv2DGradInput struct {
	StrideH, StrideW int
}

// Kind implements graph.Op.
func (o Conv2DGradInput) Kind() string { return "conv2d-grad-input" }

// FLOPs implements graph.Op.
func (o Conv2DGradInput) FLOPs(n *graph.Node) symbolic.Expr {
	// inputs: W[r,s,c,k], dY[n,h',w',k]; output dX[n,h,w,c].
	w := n.Inputs[0]
	dy := n.Inputs[1]
	return symbolic.Mul(symbolic.C(2),
		dy.Shape.Dim(0), dy.Shape.Dim(1), dy.Shape.Dim(2), dy.Shape.Dim(3),
		w.Shape.Dim(0), w.Shape.Dim(1), w.Shape.Dim(2))
}

// Bytes implements graph.Op.
func (o Conv2DGradInput) Bytes(n *graph.Node) symbolic.Expr { return graph.IOBytes(n) }

// Conv2DGradWeight computes dW from (X, dY); same FLOPs as the forward conv.
type Conv2DGradWeight struct {
	StrideH, StrideW int
}

// Kind implements graph.Op.
func (o Conv2DGradWeight) Kind() string { return "conv2d-grad-weight" }

// FLOPs implements graph.Op.
func (o Conv2DGradWeight) FLOPs(n *graph.Node) symbolic.Expr {
	dy := n.Inputs[1]
	dw := out0(n)
	return symbolic.Mul(symbolic.C(2),
		dy.Shape.Dim(0), dy.Shape.Dim(1), dy.Shape.Dim(2), dy.Shape.Dim(3),
		dw.Shape.Dim(0), dw.Shape.Dim(1), dw.Shape.Dim(2))
}

// Bytes implements graph.Op.
func (o Conv2DGradWeight) Bytes(n *graph.Node) symbolic.Expr { return graph.IOBytes(n) }

// ---------------------------------------------------------------------------
// Pointwise ops

// Unary applies an elementwise function with a fixed FLOP cost per element.
type Unary struct {
	Fn           string
	FlopsPerElem float64
	// Factor is the multiplier for the "scale" function (0 means 1).
	Factor float64
}

// Standard unary op costs (algorithmic FLOPs per element).
var (
	ReLUOp    = Unary{Fn: "relu", FlopsPerElem: 1}
	SigmoidOp = Unary{Fn: "sigmoid", FlopsPerElem: 4}
	TanhOp    = Unary{Fn: "tanh", FlopsPerElem: 4}
	ScaleOp   = Unary{Fn: "scale", FlopsPerElem: 1, Factor: 1}
)

// Kind implements graph.Op.
func (o Unary) Kind() string { return o.Fn }

// FLOPs implements graph.Op.
func (o Unary) FLOPs(n *graph.Node) symbolic.Expr {
	return symbolic.Mul(symbolic.C(o.FlopsPerElem), numel(out0(n)))
}

// Bytes implements graph.Op.
func (o Unary) Bytes(n *graph.Node) symbolic.Expr { return graph.IOBytes(n) }

// UnaryGrad computes dX = dY ⊙ f'(act) for a unary op, consuming the saved
// activation.
type UnaryGrad struct {
	Fn           string
	FlopsPerElem float64
	// Factor mirrors Unary.Factor for the "scale" function.
	Factor float64
}

// Kind implements graph.Op.
func (o UnaryGrad) Kind() string { return o.Fn + "-grad" }

// FLOPs implements graph.Op.
func (o UnaryGrad) FLOPs(n *graph.Node) symbolic.Expr {
	return symbolic.Mul(symbolic.C(o.FlopsPerElem), numel(out0(n)))
}

// Bytes implements graph.Op.
func (o UnaryGrad) Bytes(n *graph.Node) symbolic.Expr { return graph.IOBytes(n) }

// Binary applies an elementwise binary function to same-shape operands.
type Binary struct {
	Fn string // "add", "sub", "mul"
}

// Kind implements graph.Op.
func (o Binary) Kind() string { return o.Fn }

// FLOPs implements graph.Op.
func (o Binary) FLOPs(n *graph.Node) symbolic.Expr { return numel(out0(n)) }

// Bytes implements graph.Op.
func (o Binary) Bytes(n *graph.Node) symbolic.Expr { return graph.IOBytes(n) }

// BiasAdd adds a rank-1 bias along the last axis of X.
type BiasAdd struct{}

// Kind implements graph.Op.
func (o BiasAdd) Kind() string { return "bias-add" }

// FLOPs implements graph.Op.
func (o BiasAdd) FLOPs(n *graph.Node) symbolic.Expr { return numel(out0(n)) }

// Bytes implements graph.Op.
func (o BiasAdd) Bytes(n *graph.Node) symbolic.Expr { return graph.IOBytes(n) }

// ---------------------------------------------------------------------------
// Embedding

// Embedding gathers rows of a [v,h] table by integer ids.
type Embedding struct{}

// Kind implements graph.Op.
func (o Embedding) Kind() string { return "embedding" }

// FLOPs implements graph.Op: a table lookup has no arithmetic (paper §2.3).
func (o Embedding) FLOPs(*graph.Node) symbolic.Expr { return symbolic.Zero }

// Bytes implements graph.Op: ids read + gathered rows read + output write.
// The full table is NOT streamed, only the gathered rows.
func (o Embedding) Bytes(n *graph.Node) symbolic.Expr {
	ids := n.Inputs[0]
	out := out0(n)
	return symbolic.Add(ids.Bytes(), symbolic.Mul(symbolic.C(2), out.Bytes()))
}

// EmbeddingGrad scatter-adds dY rows into the (dense) table gradient.
type EmbeddingGrad struct{}

// Kind implements graph.Op.
func (o EmbeddingGrad) Kind() string { return "embedding-grad" }

// FLOPs implements graph.Op: one add per gathered element.
func (o EmbeddingGrad) FLOPs(n *graph.Node) symbolic.Expr { return numel(n.Inputs[1]) }

// Bytes implements graph.Op: ids + dY read + scattered row writes; the dense
// gradient tensor is allocated but only touched rows are written.
func (o EmbeddingGrad) Bytes(n *graph.Node) symbolic.Expr {
	ids := n.Inputs[0]
	dy := n.Inputs[1]
	return symbolic.Add(ids.Bytes(), symbolic.Mul(symbolic.C(2), dy.Bytes()))
}

// ---------------------------------------------------------------------------
// Softmax and loss

// Softmax normalizes the last axis.
type Softmax struct{}

// Kind implements graph.Op.
func (o Softmax) Kind() string { return "softmax" }

// FLOPs implements graph.Op: max-subtract, exp, sum, divide ≈ 4 per element.
func (o Softmax) FLOPs(n *graph.Node) symbolic.Expr {
	return symbolic.Mul(symbolic.C(4), numel(out0(n)))
}

// Bytes implements graph.Op.
func (o Softmax) Bytes(n *graph.Node) symbolic.Expr { return graph.IOBytes(n) }

// SoftmaxGrad computes dX from (Y, dY).
type SoftmaxGrad struct{}

// Kind implements graph.Op.
func (o SoftmaxGrad) Kind() string { return "softmax-grad" }

// FLOPs implements graph.Op.
func (o SoftmaxGrad) FLOPs(n *graph.Node) symbolic.Expr {
	return symbolic.Mul(symbolic.C(4), numel(out0(n)))
}

// Bytes implements graph.Op.
func (o SoftmaxGrad) Bytes(n *graph.Node) symbolic.Expr { return graph.IOBytes(n) }

// SoftmaxXent is the fused softmax + cross-entropy loss over logits [m,n]
// and integer labels [m]. Outputs: loss scalar and probs [m,n].
type SoftmaxXent struct{}

// Kind implements graph.Op.
func (o SoftmaxXent) Kind() string { return "softmax-xent" }

// FLOPs implements graph.Op: softmax (4/elem) plus log-likelihood gather and
// reduction (≈1/elem).
func (o SoftmaxXent) FLOPs(n *graph.Node) symbolic.Expr {
	return symbolic.Mul(symbolic.C(5), numel(n.Inputs[0]))
}

// Bytes implements graph.Op.
func (o SoftmaxXent) Bytes(n *graph.Node) symbolic.Expr { return graph.IOBytes(n) }

// SoftmaxXentGrad computes dLogits = probs - onehot(labels), scaled by dLoss.
type SoftmaxXentGrad struct{}

// Kind implements graph.Op.
func (o SoftmaxXentGrad) Kind() string { return "softmax-xent-grad" }

// FLOPs implements graph.Op.
func (o SoftmaxXentGrad) FLOPs(n *graph.Node) symbolic.Expr {
	return symbolic.Mul(symbolic.C(2), numel(out0(n)))
}

// Bytes implements graph.Op.
func (o SoftmaxXentGrad) Bytes(n *graph.Node) symbolic.Expr { return graph.IOBytes(n) }

// ---------------------------------------------------------------------------
// Normalization and pooling

// BatchNorm normalizes X[n,h,w,c] per channel with scale/shift params.
type BatchNorm struct{}

// Kind implements graph.Op.
func (o BatchNorm) Kind() string { return "batchnorm" }

// FLOPs implements graph.Op: mean, variance, normalize, scale-shift ≈ 8/elem
// in training mode.
func (o BatchNorm) FLOPs(n *graph.Node) symbolic.Expr {
	return symbolic.Mul(symbolic.C(8), numel(out0(n)))
}

// Bytes implements graph.Op.
func (o BatchNorm) Bytes(n *graph.Node) symbolic.Expr { return graph.IOBytes(n) }

// BatchNormGrad computes (dX, dGamma, dBeta) from (X, gamma, dY).
type BatchNormGrad struct{}

// Kind implements graph.Op.
func (o BatchNormGrad) Kind() string { return "batchnorm-grad" }

// FLOPs implements graph.Op.
func (o BatchNormGrad) FLOPs(n *graph.Node) symbolic.Expr {
	return symbolic.Mul(symbolic.C(11), numel(out0(n)))
}

// Bytes implements graph.Op.
func (o BatchNormGrad) Bytes(n *graph.Node) symbolic.Expr { return graph.IOBytes(n) }

// Pool applies max or average pooling with a KHxKW window.
type Pool struct {
	KH, KW, SH, SW int
	Max            bool
}

// Kind implements graph.Op.
func (o Pool) Kind() string {
	if o.Max {
		return "maxpool"
	}
	return "avgpool"
}

// FLOPs implements graph.Op: one compare/add per window element.
func (o Pool) FLOPs(n *graph.Node) symbolic.Expr {
	return symbolic.Mul(symbolic.C(float64(o.KH*o.KW)), numel(out0(n)))
}

// Bytes implements graph.Op.
func (o Pool) Bytes(n *graph.Node) symbolic.Expr { return graph.IOBytes(n) }

// PoolGrad routes or spreads dY back to dX.
type PoolGrad struct {
	KH, KW, SH, SW int
	Max            bool
}

// Kind implements graph.Op.
func (o PoolGrad) Kind() string { return "pool-grad" }

// FLOPs implements graph.Op.
func (o PoolGrad) FLOPs(n *graph.Node) symbolic.Expr { return numel(out0(n)) }

// Bytes implements graph.Op.
func (o PoolGrad) Bytes(n *graph.Node) symbolic.Expr { return graph.IOBytes(n) }

// ---------------------------------------------------------------------------
// Shape and reduction ops

// Reduce sums or averages over the leading axes, keeping the last keep dims.
type Reduce struct {
	KeepDims int  // number of trailing dims kept
	Mean     bool // divide by reduced element count
}

// Kind implements graph.Op.
func (o Reduce) Kind() string { return "reduce" }

// FLOPs implements graph.Op: one add per input element.
func (o Reduce) FLOPs(n *graph.Node) symbolic.Expr { return numel(n.Inputs[0]) }

// Bytes implements graph.Op.
func (o Reduce) Bytes(n *graph.Node) symbolic.Expr { return graph.IOBytes(n) }

// Broadcast expands a tensor along new leading axes (the gradient of
// Reduce). Scaled for mean-reduce gradients.
type Broadcast struct {
	ScaleFlops bool
}

// Kind implements graph.Op.
func (o Broadcast) Kind() string { return "broadcast" }

// FLOPs implements graph.Op.
func (o Broadcast) FLOPs(n *graph.Node) symbolic.Expr {
	if o.ScaleFlops {
		return numel(out0(n))
	}
	return symbolic.Zero
}

// Bytes implements graph.Op.
func (o Broadcast) Bytes(n *graph.Node) symbolic.Expr { return graph.IOBytes(n) }

// Concat joins tensors along an axis.
type Concat struct{ Axis int }

// Kind implements graph.Op.
func (o Concat) Kind() string { return "concat" }

// FLOPs implements graph.Op: pure data movement.
func (o Concat) FLOPs(*graph.Node) symbolic.Expr { return symbolic.Zero }

// Bytes implements graph.Op.
func (o Concat) Bytes(n *graph.Node) symbolic.Expr { return graph.IOBytes(n) }

// Split divides a tensor into N equal parts along an axis.
type Split struct {
	Axis int
	N    int
}

// Kind implements graph.Op.
func (o Split) Kind() string { return "split" }

// FLOPs implements graph.Op.
func (o Split) FLOPs(*graph.Node) symbolic.Expr { return symbolic.Zero }

// Bytes implements graph.Op.
func (o Split) Bytes(n *graph.Node) symbolic.Expr { return graph.IOBytes(n) }

// Transpose permutes tensor axes (real data movement).
type Transpose struct{ Perm []int }

// Kind implements graph.Op.
func (o Transpose) Kind() string { return "transpose" }

// FLOPs implements graph.Op.
func (o Transpose) FLOPs(*graph.Node) symbolic.Expr { return symbolic.Zero }

// Bytes implements graph.Op.
func (o Transpose) Bytes(n *graph.Node) symbolic.Expr { return graph.IOBytes(n) }

// Reshape reinterprets a tensor's shape without moving data.
type Reshape struct{}

// Kind implements graph.Op.
func (o Reshape) Kind() string { return "reshape" }

// FLOPs implements graph.Op.
func (o Reshape) FLOPs(*graph.Node) symbolic.Expr { return symbolic.Zero }

// Bytes implements graph.Op: a view costs nothing.
func (o Reshape) Bytes(*graph.Node) symbolic.Expr { return symbolic.Zero }

// GradAccum folds a gradient partial into a running accumulator. Framework
// profilers (the paper's TFprof methodology) annotate no FLOPs for gradient
// aggregation — the adds fuse into the producing GEMM's beta=1 accumulation —
// but its tensor traffic is real and is what lifts the paper's bytes/param
// to ~6q·4 B (λ = 1755/3510/3100 for word/char/speech at q = 80/150/~130).
type GradAccum struct{}

// Kind implements graph.Op.
func (o GradAccum) Kind() string { return "grad-accum" }

// FLOPs implements graph.Op.
func (o GradAccum) FLOPs(*graph.Node) symbolic.Expr { return symbolic.Zero }

// Bytes implements graph.Op: reads both partials, writes the sum.
func (o GradAccum) Bytes(n *graph.Node) symbolic.Expr { return graph.IOBytes(n) }

// Fill produces a constant tensor (e.g. the backprop seed gradient).
type Fill struct{ Value float64 }

// Kind implements graph.Op.
func (o Fill) Kind() string { return "fill" }

// FLOPs implements graph.Op.
func (o Fill) FLOPs(*graph.Node) symbolic.Expr { return symbolic.Zero }

// Bytes implements graph.Op.
func (o Fill) Bytes(n *graph.Node) symbolic.Expr { return out0(n).Bytes() }

// ---------------------------------------------------------------------------
// Optimizer

// SGDMomentum applies one momentum-SGD update to a parameter in place:
// m ← µ·m + g; w ← w − lr·m. Inputs: (param, grad, momentum); no outputs.
type SGDMomentum struct {
	LR, Mu float64
}

// Kind implements graph.Op.
func (o SGDMomentum) Kind() string { return "sgd-momentum" }

// FLOPs implements graph.Op: 4 FLOPs per parameter.
func (o SGDMomentum) FLOPs(n *graph.Node) symbolic.Expr {
	return symbolic.Mul(symbolic.C(4), numel(n.Inputs[0]))
}

// Bytes implements graph.Op: read w,g,m; write w,m — five accesses/param.
func (o SGDMomentum) Bytes(n *graph.Node) symbolic.Expr {
	return symbolic.Mul(symbolic.C(5), n.Inputs[0].Bytes())
}

// IsGradKind reports whether an op kind string names a backward op. Used by
// analyses that split forward from backward cost.
func IsGradKind(kind string) bool {
	switch kind {
	case "conv2d-grad-input", "conv2d-grad-weight", "softmax-grad",
		"softmax-xent-grad", "batchnorm-grad", "pool-grad", "embedding-grad",
		"sgd-momentum", "fill", "grad-accum":
		return true
	}
	return len(kind) > 5 && kind[len(kind)-5:] == "-grad"
}

var errShape = fmt.Errorf("ops: shape mismatch")
