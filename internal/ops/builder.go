package ops

import (
	"fmt"

	"catamount/internal/graph"
	"catamount/internal/symbolic"
	"catamount/internal/tensor"
)

// Builder constructs compute graphs with shape inference over symbolic
// dimensions. Shape violations panic: builders run at model-definition time,
// where a bad wiring is a programming error.
type Builder struct {
	// G is the graph under construction.
	G *graph.Graph
	// DType is the element type used for new tensors (default F32).
	DType tensor.DType

	group string
	seq   int
}

// NewBuilder creates a builder for a new empty graph.
func NewBuilder(name string) *Builder {
	return &Builder{G: graph.New(name), DType: tensor.F32}
}

// Group sets the logical layer label attached to subsequently created nodes
// and parameters (used by layer-parallelism planning).
func (b *Builder) Group(name string) { b.group = name }

// CurrentGroup returns the active group label.
func (b *Builder) CurrentGroup() string { return b.group }

func (b *Builder) nodeName(kind string) string {
	b.seq++
	return fmt.Sprintf("%s/%s_%d", b.group, kind, b.seq)
}

func (b *Builder) act(kind string, shape tensor.Shape) *graph.Tensor {
	return b.G.NewTensor(b.nodeName(kind)+":out", graph.Activation, b.DType, shape)
}

// actLike creates an activation preserving the dtype of an existing tensor
// (shape ops such as split/concat/reshape/transpose must not change dtype).
func (b *Builder) actLike(kind string, shape tensor.Shape, like *graph.Tensor) *graph.Tensor {
	return b.G.NewTensor(b.nodeName(kind)+":out", graph.Activation, like.DType, shape)
}

func (b *Builder) add(kind string, op graph.Op, in []*graph.Tensor, out []*graph.Tensor) *graph.Node {
	return b.G.MustAddNode(b.nodeName(kind), b.group, op, in, out)
}

// Input declares a training-data input tensor.
func (b *Builder) Input(name string, dt tensor.DType, dims ...any) *graph.Tensor {
	return b.G.NewTensor(name, graph.Input, dt, tensor.Of(dims...))
}

// Param declares a trainable weight tensor in the current group.
func (b *Builder) Param(name string, dims ...any) *graph.Tensor {
	t := b.G.NewTensor(name, graph.Param, b.DType, tensor.Of(dims...))
	t.Group = b.group
	return t
}

// Zeros produces a zero-initialized activation via a Fill node — used for
// initial recurrent states, which are computed on-device rather than staged
// in as training data (and so do not count toward algorithmic IO).
func (b *Builder) Zeros(name string, dims ...any) *graph.Tensor {
	t := b.G.NewTensor(name, graph.Activation, b.DType, tensor.Of(dims...))
	b.add("zeros", Fill{}, nil, []*graph.Tensor{t})
	return t
}

func shapePanic(format string, args ...any) {
	panic(fmt.Errorf("%w: %s", errShape, fmt.Sprintf(format, args...)))
}

func requireRank(t *graph.Tensor, rank int, ctx string) {
	if t.Shape.Rank() != rank {
		shapePanic("%s: want rank %d, got %s", ctx, rank, t.Shape)
	}
}

func requireEqualDim(a, bdim symbolic.Expr, ctx string) {
	if !symbolic.Equal(a, bdim) {
		shapePanic("%s: dimensions %v and %v differ", ctx, a, bdim)
	}
}

// MatMul multiplies x[m,k] by w[k,n], returning y[m,n].
func (b *Builder) MatMul(x, w *graph.Tensor) *graph.Tensor {
	requireRank(x, 2, "matmul lhs")
	requireRank(w, 2, "matmul rhs")
	requireEqualDim(x.Shape.Dim(1), w.Shape.Dim(0), "matmul inner")
	y := b.act("matmul", tensor.Of(x.Shape.Dim(0), w.Shape.Dim(1)))
	b.add("matmul", MatMul{}, []*graph.Tensor{x, w}, []*graph.Tensor{y})
	return y
}

// BatchedMatMul multiplies x[b,m,k] by w[b,k,n] (with optional transposes on
// the trailing two axes), returning y[b,m,n].
func (b *Builder) BatchedMatMul(x, w *graph.Tensor, transA, transB bool) *graph.Tensor {
	requireRank(x, 3, "batched-matmul lhs")
	requireRank(w, 3, "batched-matmul rhs")
	mIdx, kaIdx := 1, 2
	if transA {
		mIdx, kaIdx = 2, 1
	}
	kbIdx, nIdx := 1, 2
	if transB {
		kbIdx, nIdx = 2, 1
	}
	requireEqualDim(x.Shape.Dim(0), w.Shape.Dim(0), "batched-matmul batch")
	requireEqualDim(x.Shape.Dim(kaIdx), w.Shape.Dim(kbIdx), "batched-matmul inner")
	y := b.act("batched-matmul", tensor.Of(x.Shape.Dim(0), x.Shape.Dim(mIdx), w.Shape.Dim(nIdx)))
	b.add("batched-matmul", BatchedMatMul{TransA: transA, TransB: transB},
		[]*graph.Tensor{x, w}, []*graph.Tensor{y})
	return y
}

// Add returns x + y elementwise (same shapes).
func (b *Builder) Add(x, y *graph.Tensor) *graph.Tensor { return b.binary("add", x, y) }

// Mul returns x ⊙ y elementwise (same shapes).
func (b *Builder) Mul(x, y *graph.Tensor) *graph.Tensor { return b.binary("mul", x, y) }

// Sub returns x − y elementwise (same shapes).
func (b *Builder) Sub(x, y *graph.Tensor) *graph.Tensor { return b.binary("sub", x, y) }

func (b *Builder) binary(fn string, x, y *graph.Tensor) *graph.Tensor {
	if !x.Shape.Equal(y.Shape) {
		shapePanic("%s: shapes %s and %s differ", fn, x.Shape, y.Shape)
	}
	out := b.act(fn, x.Shape)
	b.add(fn, Binary{Fn: fn}, []*graph.Tensor{x, y}, []*graph.Tensor{out})
	return out
}

// BiasAdd adds a rank-1 bias along the last axis of x.
func (b *Builder) BiasAdd(x, bias *graph.Tensor) *graph.Tensor {
	requireRank(bias, 1, "bias")
	requireEqualDim(x.Shape.Dim(-1), bias.Shape.Dim(0), "bias-add last dim")
	out := b.act("bias-add", x.Shape)
	b.add("bias-add", BiasAdd{}, []*graph.Tensor{x, bias}, []*graph.Tensor{out})
	return out
}

// Unary applies a predefined unary op.
func (b *Builder) Unary(op Unary, x *graph.Tensor) *graph.Tensor {
	out := b.act(op.Fn, x.Shape)
	b.add(op.Fn, op, []*graph.Tensor{x}, []*graph.Tensor{out})
	return out
}

// Sigmoid applies the logistic function.
func (b *Builder) Sigmoid(x *graph.Tensor) *graph.Tensor { return b.Unary(SigmoidOp, x) }

// Tanh applies the hyperbolic tangent.
func (b *Builder) Tanh(x *graph.Tensor) *graph.Tensor { return b.Unary(TanhOp, x) }

// ReLU applies the rectified linear unit.
func (b *Builder) ReLU(x *graph.Tensor) *graph.Tensor { return b.Unary(ReLUOp, x) }

// Embedding gathers rows of table[v,h] by integer ids, returning
// ids.Shape + [h].
func (b *Builder) Embedding(table, ids *graph.Tensor) *graph.Tensor {
	requireRank(table, 2, "embedding table")
	dims := make([]any, 0, ids.Shape.Rank()+1)
	for _, d := range ids.Shape {
		dims = append(dims, d)
	}
	dims = append(dims, table.Shape.Dim(1))
	out := b.act("embedding", tensor.Of(dims...))
	b.add("embedding", Embedding{}, []*graph.Tensor{ids, table}, []*graph.Tensor{out})
	return out
}

// Concat joins tensors along axis; all other dims must match.
func (b *Builder) Concat(axis int, xs ...*graph.Tensor) *graph.Tensor {
	if len(xs) == 0 {
		shapePanic("concat: no inputs")
	}
	rank := xs[0].Shape.Rank()
	axisParts := make([]symbolic.Expr, 0, len(xs))
	for _, x := range xs {
		requireRank(x, rank, "concat")
		for d := 0; d < rank; d++ {
			if d == axis {
				continue
			}
			requireEqualDim(xs[0].Shape.Dim(d), x.Shape.Dim(d), "concat non-axis dim")
		}
		axisParts = append(axisParts, x.Shape.Dim(axis))
	}
	outShape := make(tensor.Shape, rank)
	copy(outShape, xs[0].Shape)
	outShape[axis] = symbolic.Add(axisParts...)
	out := b.actLike("concat", outShape, xs[0])
	b.add("concat", Concat{Axis: axis}, xs, []*graph.Tensor{out})
	return out
}

// Split divides x into n equal parts along axis.
func (b *Builder) Split(x *graph.Tensor, axis, n int) []*graph.Tensor {
	partDim := symbolic.Div(x.Shape.Dim(axis), symbolic.C(float64(n)))
	if c, ok := symbolic.IsConst(x.Shape.Dim(axis)); ok {
		if int(c)%n != 0 {
			shapePanic("split: axis dim %v not divisible by %d", c, n)
		}
	}
	outShape := make(tensor.Shape, x.Shape.Rank())
	copy(outShape, x.Shape)
	outShape[axis] = partDim
	outs := make([]*graph.Tensor, n)
	for i := range outs {
		outs[i] = b.actLike(fmt.Sprintf("split%d", i), outShape, x)
	}
	b.add("split", Split{Axis: axis, N: n}, []*graph.Tensor{x}, outs)
	return outs
}

// Conv2D convolves x[n,H,W,c] with w[r,s,c,k] using same-padding and the
// given strides. Spatial dims must be concrete.
func (b *Builder) Conv2D(x, w *graph.Tensor, strideH, strideW int) *graph.Tensor {
	requireRank(x, 4, "conv input")
	requireRank(w, 4, "conv weight")
	requireEqualDim(x.Shape.Dim(3), w.Shape.Dim(2), "conv channels")
	h := constDim(x.Shape.Dim(1), "conv H")
	wd := constDim(x.Shape.Dim(2), "conv W")
	outH := (h + strideH - 1) / strideH
	outW := (wd + strideW - 1) / strideW
	out := b.act("conv2d", tensor.Of(x.Shape.Dim(0), outH, outW, w.Shape.Dim(3)))
	b.add("conv2d", Conv2D{StrideH: strideH, StrideW: strideW},
		[]*graph.Tensor{x, w}, []*graph.Tensor{out})
	return out
}

// Pool applies max/avg pooling over x[n,H,W,c].
func (b *Builder) Pool(x *graph.Tensor, kh, kw, sh, sw int, max bool) *graph.Tensor {
	requireRank(x, 4, "pool input")
	h := constDim(x.Shape.Dim(1), "pool H")
	w := constDim(x.Shape.Dim(2), "pool W")
	out := b.act("pool", tensor.Of(x.Shape.Dim(0), (h+sh-1)/sh, (w+sw-1)/sw, x.Shape.Dim(3)))
	b.add("pool", Pool{KH: kh, KW: kw, SH: sh, SW: sw, Max: max},
		[]*graph.Tensor{x}, []*graph.Tensor{out})
	return out
}

// Pool1D pools along the time axis of x[batch, time, feat] — the pyramidal
// encoder reduction used by the speech model. Implemented as an avg pool
// with kernel=stride=factor.
func (b *Builder) Pool1D(x *graph.Tensor, factor int) *graph.Tensor {
	requireRank(x, 3, "pool1d input")
	tDim := constDim(x.Shape.Dim(1), "pool1d time")
	out := b.act("pool1d", tensor.Of(x.Shape.Dim(0), (tDim+factor-1)/factor, x.Shape.Dim(2)))
	b.add("pool1d", Pool{KH: factor, KW: 1, SH: factor, SW: 1, Max: false},
		[]*graph.Tensor{x}, []*graph.Tensor{out})
	return out
}

// BatchNormLayer normalizes x per channel with fresh gamma/beta parameters.
func (b *Builder) BatchNormLayer(name string, x *graph.Tensor) *graph.Tensor {
	c := x.Shape.Dim(-1)
	gamma := b.Param(name+"/gamma", c)
	beta := b.Param(name+"/beta", c)
	out := b.act("batchnorm", x.Shape)
	b.add("batchnorm", BatchNorm{}, []*graph.Tensor{x, gamma, beta}, []*graph.Tensor{out})
	return out
}

// Softmax normalizes the last axis of x.
func (b *Builder) Softmax(x *graph.Tensor) *graph.Tensor {
	out := b.act("softmax", x.Shape)
	b.add("softmax", Softmax{}, []*graph.Tensor{x}, []*graph.Tensor{out})
	return out
}

// SoftmaxXentLoss computes fused softmax cross-entropy between logits [m,n]
// and integer labels [m]. Returns the scalar loss.
func (b *Builder) SoftmaxXentLoss(logits, labels *graph.Tensor) *graph.Tensor {
	requireRank(logits, 2, "xent logits")
	requireRank(labels, 1, "xent labels")
	requireEqualDim(logits.Shape.Dim(0), labels.Shape.Dim(0), "xent rows")
	loss := b.act("loss", tensor.Of())
	probs := b.act("probs", logits.Shape)
	b.add("softmax-xent", SoftmaxXent{}, []*graph.Tensor{logits, labels},
		[]*graph.Tensor{loss, probs})
	return loss
}

// ReduceSum sums over leading axes, keeping the trailing keepDims axes.
func (b *Builder) ReduceSum(x *graph.Tensor, keepDims int) *graph.Tensor {
	return b.reduce(x, keepDims, false)
}

// ReduceMean averages over leading axes, keeping the trailing keepDims axes.
func (b *Builder) ReduceMean(x *graph.Tensor, keepDims int) *graph.Tensor {
	return b.reduce(x, keepDims, true)
}

func (b *Builder) reduce(x *graph.Tensor, keepDims int, mean bool) *graph.Tensor {
	if keepDims >= x.Shape.Rank() {
		shapePanic("reduce: keepDims %d >= rank %d", keepDims, x.Shape.Rank())
	}
	outShape := make(tensor.Shape, keepDims)
	copy(outShape, x.Shape[x.Shape.Rank()-keepDims:])
	out := b.act("reduce", outShape)
	b.add("reduce", Reduce{KeepDims: keepDims, Mean: mean},
		[]*graph.Tensor{x}, []*graph.Tensor{out})
	return out
}

// Reshape reinterprets x with a new shape of identical element count.
func (b *Builder) Reshape(x *graph.Tensor, dims ...any) *graph.Tensor {
	newShape := tensor.Of(dims...)
	if !symbolic.Equal(x.Shape.NumElements(), newShape.NumElements()) {
		shapePanic("reshape: element count %v != %v",
			x.Shape.NumElements(), newShape.NumElements())
	}
	out := b.actLike("reshape", newShape, x)
	b.add("reshape", Reshape{}, []*graph.Tensor{x}, []*graph.Tensor{out})
	return out
}

// Transpose permutes the axes of x.
func (b *Builder) Transpose(x *graph.Tensor, perm ...int) *graph.Tensor {
	if len(perm) != x.Shape.Rank() {
		shapePanic("transpose: perm length %d != rank %d", len(perm), x.Shape.Rank())
	}
	outShape := make(tensor.Shape, len(perm))
	for i, p := range perm {
		outShape[i] = x.Shape.Dim(p)
	}
	out := b.actLike("transpose", outShape, x)
	b.add("transpose", Transpose{Perm: perm}, []*graph.Tensor{x}, []*graph.Tensor{out})
	return out
}

// Scale multiplies x by a constant.
func (b *Builder) Scale(x *graph.Tensor) *graph.Tensor { return b.Unary(ScaleOp, x) }

func constDim(e symbolic.Expr, ctx string) int {
	v, ok := symbolic.IsConst(e)
	if !ok {
		shapePanic("%s must be a concrete dimension, got %v", ctx, e)
	}
	return int(v)
}
