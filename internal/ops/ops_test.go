package ops

import (
	"errors"
	"math"
	"strings"
	"testing"

	"catamount/internal/graph"
	"catamount/internal/symbolic"
	"catamount/internal/tensor"
)

func evalExpr(t *testing.T, e symbolic.Expr, env symbolic.Env) float64 {
	t.Helper()
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("eval %v: %v", e, err)
	}
	return v
}

func TestMatMulFLOPs(t *testing.T) {
	b := NewBuilder("t")
	x := b.Input("x", tensor.F32, 8, 16)
	w := b.Param("w", 16, 32)
	y := b.MatMul(x, w)
	if !y.Shape.Equal(tensor.Of(8, 32)) {
		t.Fatalf("shape = %s", y.Shape)
	}
	n := b.G.Nodes()[0]
	if got := evalExpr(t, n.FLOPs(), nil); got != 2*8*16*32 {
		t.Fatalf("flops = %v, want %v", got, 2*8*16*32)
	}
	// bytes: x(8*16*4) + w(16*32*4) + y(8*32*4)
	want := float64(8*16*4 + 16*32*4 + 8*32*4)
	if got := evalExpr(t, n.Bytes(), nil); got != want {
		t.Fatalf("bytes = %v, want %v", got, want)
	}
}

func TestMatMulSymbolicFLOPs(t *testing.T) {
	b := NewBuilder("t")
	h := symbolic.S("h")
	bs := symbolic.S("b")
	x := b.Input("x", tensor.F32, bs, h)
	w := b.Param("w", h, symbolic.Mul(symbolic.C(4), h))
	y := b.MatMul(x, w)
	_ = y
	n := b.G.Nodes()[0]
	// 2 * b * 4h * h = 8*b*h^2
	want := symbolic.Mul(symbolic.C(8), bs, symbolic.Pow(h, symbolic.C(2)))
	if !symbolic.Equal(n.FLOPs(), want) {
		t.Fatalf("flops = %v, want %v", n.FLOPs(), want)
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		if err, ok := r.(error); !ok || !errors.Is(err, errShape) {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	b := NewBuilder("t")
	x := b.Input("x", tensor.F32, 8, 16)
	w := b.Param("w", 17, 32)
	b.MatMul(x, w)
}

func TestBatchedMatMulShapes(t *testing.T) {
	b := NewBuilder("t")
	bs := symbolic.S("b")
	x := b.Input("x", tensor.F32, bs, 1, 64)
	h := b.Input("henc", tensor.F32, bs, 25, 64)
	// scores = x · hᵀ -> [b, 1, 25]
	scores := b.BatchedMatMul(x, h, false, true)
	if !scores.Shape.Equal(tensor.Of(bs, 1, 25)) {
		t.Fatalf("scores shape = %s", scores.Shape)
	}
	// context = softmax(scores) · h -> [b, 1, 64]
	ctx := b.BatchedMatMul(b.Softmax(scores), h, false, false)
	if !ctx.Shape.Equal(tensor.Of(bs, 1, 64)) {
		t.Fatalf("ctx shape = %s", ctx.Shape)
	}
	env := symbolic.Env{"b": 2}
	n := scores.Producer
	if got := evalExpr(t, n.FLOPs(), env); got != 2*2*1*25*64 {
		t.Fatalf("flops = %v", got)
	}
}

func TestConv2DFLOPs(t *testing.T) {
	b := NewBuilder("t")
	x := b.Input("x", tensor.F32, 1, 56, 56, 64)
	w := b.Param("w", 3, 3, 64, 128)
	y := b.Conv2D(x, w, 1, 1)
	if !y.Shape.Equal(tensor.Of(1, 56, 56, 128)) {
		t.Fatalf("shape = %s", y.Shape)
	}
	want := float64(2 * 1 * 56 * 56 * 128 * 3 * 3 * 64)
	if got := evalExpr(t, y.Producer.FLOPs(), nil); got != want {
		t.Fatalf("flops = %v, want %v", got, want)
	}
}

func TestConv2DStride(t *testing.T) {
	b := NewBuilder("t")
	x := b.Input("x", tensor.F32, 1, 224, 224, 3)
	w := b.Param("w", 7, 7, 3, 64)
	y := b.Conv2D(x, w, 2, 2)
	if !y.Shape.Equal(tensor.Of(1, 112, 112, 64)) {
		t.Fatalf("shape = %s", y.Shape)
	}
}

func TestEmbeddingZeroFLOPs(t *testing.T) {
	b := NewBuilder("t")
	table := b.Param("emb", 40000, 512)
	ids := b.Input("ids", tensor.I32, 4, 20)
	out := b.Embedding(table, ids)
	if !out.Shape.Equal(tensor.Of(4, 20, 512)) {
		t.Fatalf("shape = %s", out.Shape)
	}
	n := out.Producer
	if got := evalExpr(t, n.FLOPs(), nil); got != 0 {
		t.Fatalf("flops = %v, want 0", got)
	}
	// Bytes: ids (4*20*4) + 2 * out (4*20*512*4); table not streamed.
	want := float64(4*20*4) + 2*float64(4*20*512*4)
	if got := evalExpr(t, n.Bytes(), nil); got != want {
		t.Fatalf("bytes = %v, want %v", got, want)
	}
}

func TestConcatSplitRoundTrip(t *testing.T) {
	b := NewBuilder("t")
	x := b.Input("x", tensor.F32, 4, 100)
	h := b.Input("h", tensor.F32, 4, 28)
	cat := b.Concat(1, x, h)
	if !cat.Shape.Equal(tensor.Of(4, 128)) {
		t.Fatalf("concat shape = %s", cat.Shape)
	}
	parts := b.Split(cat, 1, 4)
	if len(parts) != 4 {
		t.Fatalf("parts = %d", len(parts))
	}
	for _, p := range parts {
		if !p.Shape.Equal(tensor.Of(4, 32)) {
			t.Fatalf("part shape = %s", p.Shape)
		}
	}
}

func TestSplitIndivisiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder("t")
	x := b.Input("x", tensor.F32, 4, 10)
	b.Split(x, 1, 3)
}

func TestReshapeFreeAndChecked(t *testing.T) {
	b := NewBuilder("t")
	bs, q, h := symbolic.S("b"), 20, symbolic.S("h")
	x := b.Input("x", tensor.F32, bs, q, h)
	y := b.Reshape(x, symbolic.Mul(bs, symbolic.C(20)), h)
	if got := evalExpr(t, y.Producer.Bytes(), symbolic.Env{"b": 2, "h": 8}); got != 0 {
		t.Fatalf("reshape bytes = %v, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on element count mismatch")
		}
	}()
	b.Reshape(x, bs, h)
}

func TestReducePaths(t *testing.T) {
	b := NewBuilder("t")
	x := b.Input("x", tensor.F32, 6, 5)
	s := b.ReduceSum(x, 1)
	if !s.Shape.Equal(tensor.Of(5)) {
		t.Fatalf("reduce shape = %s", s.Shape)
	}
	if got := evalExpr(t, s.Producer.FLOPs(), nil); got != 30 {
		t.Fatalf("reduce flops = %v", got)
	}
	m := b.ReduceMean(x, 1)
	if !m.Shape.Equal(tensor.Of(5)) {
		t.Fatalf("mean shape = %s", m.Shape)
	}
}

func TestSoftmaxXentLoss(t *testing.T) {
	b := NewBuilder("t")
	logits := b.Input("logits", tensor.F32, 8, 100)
	labels := b.Input("labels", tensor.I32, 8)
	loss := b.SoftmaxXentLoss(logits, labels)
	if loss.Shape.Rank() != 0 {
		t.Fatalf("loss not scalar: %s", loss.Shape)
	}
	n := loss.Producer
	if got := evalExpr(t, n.FLOPs(), nil); got != 5*8*100 {
		t.Fatalf("xent flops = %v", got)
	}
}

func TestBatchNormCreatesParams(t *testing.T) {
	b := NewBuilder("t")
	b.Group("stem")
	x := b.Input("x", tensor.F32, 2, 8, 8, 16)
	y := b.BatchNormLayer("bn0", x)
	if !y.Shape.Equal(x.Shape) {
		t.Fatalf("bn shape changed: %s", y.Shape)
	}
	params := b.G.Params()
	if len(params) != 2 {
		t.Fatalf("params = %d, want 2 (gamma, beta)", len(params))
	}
	for _, p := range params {
		if p.Group != "stem" {
			t.Fatalf("param group = %q", p.Group)
		}
	}
}

func TestPool1D(t *testing.T) {
	b := NewBuilder("t")
	x := b.Input("x", tensor.F32, symbolic.S("b"), 300, 256)
	y := b.Pool1D(x, 2)
	if !y.Shape.Equal(tensor.Of(symbolic.S("b"), 150, 256)) {
		t.Fatalf("pool1d shape = %s", y.Shape)
	}
}

func TestTransposePermutation(t *testing.T) {
	b := NewBuilder("t")
	x := b.Input("x", tensor.F32, 2, 3, 5)
	y := b.Transpose(x, 2, 0, 1)
	if !y.Shape.Equal(tensor.Of(5, 2, 3)) {
		t.Fatalf("transpose shape = %s", y.Shape)
	}
}

// buildTinyMLP constructs a 2-layer perceptron with loss: a minimal complete
// training graph.
func buildTinyMLP(t *testing.T) (*Builder, *graph.Tensor) {
	t.Helper()
	b := NewBuilder("mlp")
	bs := symbolic.S("b")
	b.Group("fc1")
	x := b.Input("x", tensor.F32, bs, 64)
	w1 := b.Param("w1", 64, 32)
	bias1 := b.Param("b1", 32)
	h := b.ReLU(b.BiasAdd(b.MatMul(x, w1), bias1))
	b.Group("fc2")
	w2 := b.Param("w2", 32, 10)
	logits := b.MatMul(h, w2)
	labels := b.Input("labels", tensor.I32, bs)
	loss := b.SoftmaxXentLoss(logits, labels)
	return b, loss
}

func TestBackpropBuildsValidGraph(t *testing.T) {
	b, loss := buildTinyMLP(t)
	fwdNodes := len(b.G.Nodes())
	if err := Backprop(b, loss, SGDMomentum{LR: 0.01, Mu: 0.9}); err != nil {
		t.Fatal(err)
	}
	if err := b.G.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(b.G.Nodes()) <= fwdNodes {
		t.Fatal("backprop added no nodes")
	}
	// All params must have momentum state and an update node.
	var updates int
	for _, n := range b.G.Nodes() {
		if n.Op.Kind() == "sgd-momentum" {
			updates++
		}
	}
	if updates != len(b.G.Params()) {
		t.Fatalf("updates = %d, params = %d", updates, len(b.G.Params()))
	}
}

func TestBackpropRequiresScalarLoss(t *testing.T) {
	b := NewBuilder("t")
	x := b.Input("x", tensor.F32, 4, 4)
	w := b.Param("w", 4, 4)
	y := b.MatMul(x, w)
	if err := Backprop(b, y, SGDMomentum{}); err == nil {
		t.Fatal("expected scalar-loss error")
	}
}

func TestBackwardIsRoughlyTwiceForwardForMatMulGraphs(t *testing.T) {
	// Paper §2.1: backprop of matrix ops costs ~2x the forward FLOPs.
	b := NewBuilder("chain")
	bs := symbolic.S("b")
	x := b.Input("x", tensor.F32, bs, 512)
	cur := x
	for i := 0; i < 4; i++ {
		w := b.Param("w", 512, 512)
		cur = b.MatMul(cur, w)
	}
	// Project to tiny logits so loss-layer FLOPs are negligible.
	wOut := b.Param("wout", 512, 8)
	logits := b.MatMul(cur, wOut)
	labels := b.Input("labels", tensor.I32, bs)
	loss := b.SoftmaxXentLoss(logits, labels)
	if err := Backprop(b, loss, SGDMomentum{LR: 0.1, Mu: 0.9}); err != nil {
		t.Fatal(err)
	}
	fwd, bwd, err := ForwardBackwardSplit(b.G, symbolic.Env{"b": 256})
	if err != nil {
		t.Fatal(err)
	}
	ratio := bwd / fwd
	if math.Abs(ratio-2) > 0.15 {
		t.Fatalf("bwd/fwd = %.3f, want ~2", ratio)
	}
}

func TestBackpropAccumulatesFanOutGrads(t *testing.T) {
	// y = a*x + b*x reuses x twice; dx must be accumulated.
	b := NewBuilder("t")
	bs := symbolic.S("b")
	x := b.Input("x", tensor.F32, bs, 16)
	w1 := b.Param("w1", 16, 16)
	w2 := b.Param("w2", 16, 16)
	y := b.Add(b.MatMul(x, w1), b.MatMul(x, w2))
	wOut := b.Param("wo", 16, 4)
	logits := b.MatMul(y, wOut)
	labels := b.Input("labels", tensor.I32, bs)
	loss := b.SoftmaxXentLoss(logits, labels)
	if err := Backprop(b, loss, SGDMomentum{}); err != nil {
		t.Fatal(err)
	}
	// Exactly one accumulation node should exist for x's gradient.
	var accs int
	for _, n := range b.G.Nodes() {
		if strings.HasPrefix(n.Name, "bwd/acc:") {
			accs++
		}
	}
	if accs < 1 {
		t.Fatal("no gradient accumulation emitted")
	}
	if err := b.G.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBackpropThroughConcatSplit(t *testing.T) {
	// LSTM-style: concat -> matmul -> split -> elementwise merge.
	b := NewBuilder("t")
	bs := symbolic.S("b")
	x := b.Input("x", tensor.F32, bs, 24)
	h := b.Input("h", tensor.F32, bs, 8)
	w := b.Param("w", 32, 16)
	cat := b.Concat(1, x, h)
	z := b.MatMul(cat, w)
	parts := b.Split(z, 1, 2)
	merged := b.Mul(b.Sigmoid(parts[0]), b.Tanh(parts[1]))
	wo := b.Param("wo", 8, 4)
	logits := b.MatMul(merged, wo)
	labels := b.Input("labels", tensor.I32, bs)
	loss := b.SoftmaxXentLoss(logits, labels)
	if err := Backprop(b, loss, SGDMomentum{}); err != nil {
		t.Fatal(err)
	}
	if err := b.G.Validate(); err != nil {
		t.Fatal(err)
	}
	// The concat's backward split must produce grads with the input shapes.
	for _, n := range b.G.Nodes() {
		if n.Op.Kind() == "split" && strings.HasPrefix(n.Name, "bwd/") &&
			strings.Contains(n.Name, "concat") {
			if !n.Outputs[0].Shape.Equal(tensor.Of(bs, 24)) {
				t.Fatalf("dX shape = %s", n.Outputs[0].Shape)
			}
			if !n.Outputs[1].Shape.Equal(tensor.Of(bs, 8)) {
				t.Fatalf("dH shape = %s", n.Outputs[1].Shape)
			}
			return
		}
	}
	t.Fatal("no backward split found for concat")
}

func TestBackpropConvGraph(t *testing.T) {
	b := NewBuilder("cnn")
	bs := symbolic.S("b")
	x := b.Input("x", tensor.F32, bs, 8, 8, 3)
	w := b.Param("w", 3, 3, 3, 16)
	y := b.ReLU(b.BatchNormLayer("bn", b.Conv2D(x, w, 1, 1)))
	p := b.Pool(y, 2, 2, 2, 2, true)
	flat := b.Reshape(p, bs, 4*4*16)
	wo := b.Param("wo", 4*4*16, 10)
	logits := b.MatMul(flat, wo)
	labels := b.Input("labels", tensor.I32, bs)
	loss := b.SoftmaxXentLoss(logits, labels)
	if err := Backprop(b, loss, SGDMomentum{LR: 0.1, Mu: 0.9}); err != nil {
		t.Fatal(err)
	}
	if err := b.G.Validate(); err != nil {
		t.Fatal(err)
	}
	fwd, bwd, err := ForwardBackwardSplit(b.G, symbolic.Env{"b": 32})
	if err != nil {
		t.Fatal(err)
	}
	if bwd <= fwd {
		t.Fatalf("conv backward (%v) should exceed forward (%v)", bwd, fwd)
	}
}

func TestBackpropEmbedding(t *testing.T) {
	b := NewBuilder("emb")
	bs := symbolic.S("b")
	table := b.Param("table", 1000, 32)
	ids := b.Input("ids", tensor.I32, bs, 4)
	e := b.Embedding(table, ids)
	flat := b.Reshape(e, symbolic.Mul(bs, symbolic.C(4)), 32)
	wo := b.Param("wo", 32, 8)
	logits := b.MatMul(flat, wo)
	labels := b.Input("labels", tensor.I32, symbolic.Mul(bs, symbolic.C(4)))
	loss := b.SoftmaxXentLoss(logits, labels)
	if err := Backprop(b, loss, SGDMomentum{}); err != nil {
		t.Fatal(err)
	}
	if err := b.G.Validate(); err != nil {
		t.Fatal(err)
	}
	// The embedding gradient must have the dense table shape.
	found := false
	for _, n := range b.G.Nodes() {
		if n.Op.Kind() == "embedding-grad" {
			found = true
			if !n.Outputs[0].Shape.Equal(tensor.Of(1000, 32)) {
				t.Fatalf("dTable shape = %s", n.Outputs[0].Shape)
			}
		}
	}
	if !found {
		t.Fatal("no embedding-grad node")
	}
}

func TestIsGradKind(t *testing.T) {
	if !IsGradKind("sigmoid-grad") || !IsGradKind("sgd-momentum") || !IsGradKind("fill") {
		t.Fatal("grad kinds misclassified")
	}
	if IsGradKind("matmul") || IsGradKind("conv2d") {
		t.Fatal("forward kinds misclassified")
	}
}

func TestSGDMomentumCosts(t *testing.T) {
	b := NewBuilder("t")
	bs := symbolic.S("b")
	x := b.Input("x", tensor.F32, bs, 16)
	w := b.Param("w", 16, 4)
	logits := b.MatMul(x, w)
	labels := b.Input("labels", tensor.I32, bs)
	loss := b.SoftmaxXentLoss(logits, labels)
	if err := Backprop(b, loss, SGDMomentum{LR: 0.1, Mu: 0.9}); err != nil {
		t.Fatal(err)
	}
	for _, n := range b.G.Nodes() {
		if n.Op.Kind() != "sgd-momentum" {
			continue
		}
		if got := evalExpr(t, n.FLOPs(), symbolic.Env{"b": 1}); got != 4*16*4 {
			t.Fatalf("update flops = %v, want %v", got, 4*16*4)
		}
		if got := evalExpr(t, n.Bytes(), symbolic.Env{"b": 1}); got != 5*16*4*4 {
			t.Fatalf("update bytes = %v, want %v", got, 5*16*4*4)
		}
		return
	}
	t.Fatal("no update node")
}
