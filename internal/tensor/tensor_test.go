package tensor

import (
	"testing"

	"catamount/internal/symbolic"
)

func TestDTypeSizes(t *testing.T) {
	cases := []struct {
		d    DType
		size int
		name string
	}{
		{F32, 4, "f32"},
		{F16, 2, "f16"},
		{I32, 4, "i32"},
		{I64, 8, "i64"},
	}
	for _, c := range cases {
		if c.d.Size() != c.size {
			t.Errorf("%v.Size() = %d, want %d", c.d, c.d.Size(), c.size)
		}
		if c.d.String() != c.name {
			t.Errorf("%v.String() = %q, want %q", c.d, c.d.String(), c.name)
		}
	}
}

func TestOfMixedDims(t *testing.T) {
	b := symbolic.S("b")
	s := Of(b, 128, symbolic.S("h"))
	if s.Rank() != 3 {
		t.Fatalf("rank = %d, want 3", s.Rank())
	}
	n, err := s.NumElements().Eval(symbolic.Env{"b": 4, "h": 16})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4*128*16 {
		t.Fatalf("numel = %v, want %v", n, 4*128*16)
	}
}

func TestBytes(t *testing.T) {
	s := Of(10, 10)
	v, err := s.Bytes(F32).Eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != 400 {
		t.Fatalf("bytes = %v, want 400", v)
	}
	v, err = s.Bytes(F16).Eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != 200 {
		t.Fatalf("f16 bytes = %v, want 200", v)
	}
}

func TestScalarShape(t *testing.T) {
	s := Of()
	if v, _ := s.NumElements().Eval(nil); v != 1 {
		t.Fatalf("scalar numel = %v, want 1", v)
	}
}

func TestDimNegativeIndex(t *testing.T) {
	s := Of(2, 3, 5)
	if v, _ := s.Dim(-1).Eval(nil); v != 5 {
		t.Fatalf("Dim(-1) = %v, want 5", v)
	}
	if v, _ := s.Dim(0).Eval(nil); v != 2 {
		t.Fatalf("Dim(0) = %v, want 2", v)
	}
}

func TestShapeEqual(t *testing.T) {
	h := symbolic.S("h")
	if !Of(h, 4).Equal(Of(h, 4)) {
		t.Fatal("identical shapes not equal")
	}
	if Of(h, 4).Equal(Of(h, 5)) {
		t.Fatal("different shapes equal")
	}
	if Of(h).Equal(Of(h, h)) {
		t.Fatal("different ranks equal")
	}
}

func TestShapeEval(t *testing.T) {
	h := symbolic.S("h")
	dims, err := Of(h, 3).Eval(symbolic.Env{"h": 7})
	if err != nil {
		t.Fatal(err)
	}
	if dims[0] != 7 || dims[1] != 3 {
		t.Fatalf("dims = %v", dims)
	}
	if _, err := Of(symbolic.S("zz")).Eval(symbolic.Env{}); err == nil {
		t.Fatal("expected unbound error")
	}
}

func TestShapeString(t *testing.T) {
	s := Of(symbolic.S("b"), 2)
	if s.String() != "[b, 2]" {
		t.Fatalf("got %q", s.String())
	}
}
