// Package tensor defines symbolic tensor shapes and element types for the
// compute-graph IR. Dimensions are symbolic expressions so a single graph
// can be analyzed across batch sizes and model widths without rebuilding.
package tensor

import (
	"strings"

	"catamount/internal/symbolic"
)

// DType enumerates tensor element types.
type DType int

// Supported element types.
const (
	F32 DType = iota // 32-bit float
	F16              // 16-bit float
	I32              // 32-bit integer (e.g. token ids)
	I64              // 64-bit integer
)

// Size returns the element size in bytes.
func (d DType) Size() int {
	switch d {
	case F32, I32:
		return 4
	case F16:
		return 2
	case I64:
		return 8
	}
	return 4
}

func (d DType) String() string {
	switch d {
	case F32:
		return "f32"
	case F16:
		return "f16"
	case I32:
		return "i32"
	case I64:
		return "i64"
	}
	return "f32"
}

// Shape is an ordered list of symbolic dimensions.
type Shape []symbolic.Expr

// Of builds a shape from a mix of ints and symbolic expressions.
func Of(dims ...any) Shape {
	s := make(Shape, len(dims))
	for i, d := range dims {
		switch v := d.(type) {
		case int:
			s[i] = symbolic.C(float64(v))
		case int64:
			s[i] = symbolic.C(float64(v))
		case float64:
			s[i] = symbolic.C(v)
		case symbolic.Expr:
			s[i] = v
		default:
			panic("tensor: unsupported dimension type")
		}
	}
	return s
}

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s) }

// NumElements returns the symbolic product of all dimensions
// (1 for a scalar).
func (s Shape) NumElements() symbolic.Expr {
	if len(s) == 0 {
		return symbolic.One
	}
	return symbolic.Mul([]symbolic.Expr(s)...)
}

// Bytes returns the symbolic byte size of a tensor with this shape and dtype.
func (s Shape) Bytes(d DType) symbolic.Expr {
	return symbolic.Mul(s.NumElements(), symbolic.C(float64(d.Size())))
}

// Dim returns the i-th dimension; negative indices count from the end.
func (s Shape) Dim(i int) symbolic.Expr {
	if i < 0 {
		i += len(s)
	}
	return s[i]
}

// Equal reports whether two shapes are structurally identical.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if !symbolic.Equal(s[i], o[i]) {
			return false
		}
	}
	return true
}

func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = d.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Eval returns the concrete dimension values under env.
func (s Shape) Eval(env symbolic.Env) ([]int, error) {
	out := make([]int, len(s))
	for i, d := range s {
		v, err := d.Eval(env)
		if err != nil {
			return nil, err
		}
		out[i] = int(v + 0.5)
	}
	return out, nil
}
