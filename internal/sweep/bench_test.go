package sweep

import (
	"context"
	"testing"

	"catamount/internal/graph"
)

// BenchmarkSweepReferenceGridWarm measures steady-state grid throughput:
// the 150-point reference grid through an already-compiled session. This
// is the number the BENCH_*.json trajectory tracks as warm_points_per_sec.
func BenchmarkSweepReferenceGridWarm(b *testing.B) {
	r, err := New(sharedSource, ReferenceSpec())
	if err != nil {
		b.Fatal(err)
	}
	// Warm: build + compile every domain outside the timed region.
	if err := r.Run(context.Background(), func(Point) error { return nil }); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Run(context.Background(), func(Point) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(r.Points()), "points/grid")
}

// BenchmarkSweepCellAmortization isolates the tentpole claim: the same
// 25-point (accelerator-amortized) grid as 25 per-point evaluations versus
// one sweep. Compare ns/op across the two benchmarks.
func BenchmarkSweepCellAmortization(b *testing.B) {
	r, err := New(sharedSource, Spec{
		Domains: []string{"wordlm"},
		Params:  []float64{1e8, 2e8, 4e8, 8e8, 1.6e9},
		Accelerators: []string{
			"target-v100-class", "a100-class", "h100-class", "tpuv3-class", "cpu-class",
		},
		Workers: 1, // isolate amortization from parallelism
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := r.Run(context.Background(), func(Point) error { return nil }); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Run(context.Background(), func(Point) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerPointEquivalent is BenchmarkSweepCellAmortization's per-point
// control: one full solve + characterization per grid point, the cost the
// sweep's cell sharing removes.
func BenchmarkPerPointEquivalent(b *testing.B) {
	a, err := sharedSource.Analyzer("wordlm")
	if err != nil {
		b.Fatal(err)
	}
	params := []float64{1e8, 2e8, 4e8, 8e8, 1.6e9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range params {
			for acc := 0; acc < 5; acc++ {
				size, err := a.SizeForParams(p)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := a.Characterize(context.Background(), size, a.Model.DefaultBatch, graph.PolicyMemGreedy); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}
