package sweep

import (
	"context"
	"encoding/json"
	"io"
	"runtime"
)

// This file is the cost-model benchmark harness behind BENCH_pr5.json: it
// runs the fixed reference grid under both step-time backends — the legacy
// graph-level Roofline and the per-op Roofline, whose cells additionally
// evaluate every node's cost programs — and reports warm projections/sec
// and allocs/projection for each, plus the per-op overhead factor. The CI
// bench job publishes the report and gates on pinned floors
// (TestCostModelBenchFloors); cmd/sweep -bench-costmodel writes it
// locally.

// CostModelBenchSchema versions the report format.
const CostModelBenchSchema = "catamount-costmodel-bench/v1"

// CostModelBenchReport is one harness run. Both backends are timed warm
// (models built and compiled before the timed region) so the delta is the
// backends' evaluation cost, not compile amortization.
type CostModelBenchReport struct {
	Schema    string `json:"schema"`
	Grid      string `json:"grid"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`

	GridPoints int `json:"grid_points"`

	GraphWarmSeconds         float64 `json:"graph_warm_seconds"`
	PerOpWarmSeconds         float64 `json:"perop_warm_seconds"`
	GraphProjectionsPerSec   float64 `json:"graph_projections_per_sec"`
	PerOpProjectionsPerSec   float64 `json:"perop_projections_per_sec"`
	GraphAllocsPerProjection float64 `json:"graph_allocs_per_projection"`
	PerOpAllocsPerProjection float64 `json:"perop_allocs_per_projection"`
	// PerOpOverGraph is the per-op backend's warm-time overhead factor:
	// perop_warm_seconds / graph_warm_seconds. It tracks how much the
	// per-node cost evaluation adds on top of the shared characterization.
	PerOpOverGraph float64 `json:"perop_over_graph_x"`
}

// timedGrid runs a runner warm three times, returning the best wall time
// and its allocs/point.
func timedGrid(ctx context.Context, r *Runner) (best float64, allocsPerPoint float64, err error) {
	best, allocsPerPoint, _, err = timedGridStats(ctx, r, 3)
	return best, allocsPerPoint, err
}

// RunCostModelBench runs the reference grid under both backends over one
// shared compiled source (one warm-up pass per backend precedes timing).
func RunCostModelBench(ctx context.Context) (*CostModelBenchReport, error) {
	src := newBuildSource()

	graphSpec := ReferenceSpec()
	peropSpec := ReferenceSpec()
	peropSpec.CostModel = "perop"

	graphRunner, err := New(src, graphSpec)
	if err != nil {
		return nil, err
	}
	peropRunner, err := New(src, peropSpec)
	if err != nil {
		return nil, err
	}

	rep := &CostModelBenchReport{
		Schema:     CostModelBenchSchema,
		Grid:       "reference",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.GOMAXPROCS(0),
		GridPoints: graphRunner.Points(),
	}

	// Warm-up: build + compile every domain once, outside any timed region.
	if err := graphRunner.Run(ctx, func(Point) error { return nil }); err != nil {
		return nil, err
	}

	rep.GraphWarmSeconds, rep.GraphAllocsPerProjection, err = timedGrid(ctx, graphRunner)
	if err != nil {
		return nil, err
	}
	rep.PerOpWarmSeconds, rep.PerOpAllocsPerProjection, err = timedGrid(ctx, peropRunner)
	if err != nil {
		return nil, err
	}
	rep.GraphProjectionsPerSec = float64(rep.GridPoints) / rep.GraphWarmSeconds
	rep.PerOpProjectionsPerSec = float64(rep.GridPoints) / rep.PerOpWarmSeconds
	rep.PerOpOverGraph = rep.PerOpWarmSeconds / rep.GraphWarmSeconds
	return rep, nil
}

// WriteCostModelReport serializes a report as indented JSON (the
// BENCH_*.json file format), newline-terminated.
func WriteCostModelReport(w io.Writer, rep *CostModelBenchReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
