package sweep

import (
	"context"
	"math"
	"os"
	"testing"
)

// collectGrid runs a spec through the shared source and returns points in
// Seq order.
func collectGrid(t *testing.T, spec Spec) []Point {
	t.Helper()
	r, err := New(sharedSource, spec)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Point, r.Points())
	if err := r.Run(context.Background(), func(p Point) error {
		out[p.Seq] = p
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestPerOpDominatesGraphOnReferenceGrid is the dominance property across
// the paper-scale grid: every catalog accelerator × all five domains ×
// two subbatches × three parameter targets. The per-op backend must never
// report a faster step than the graph-level backend on any point, and its
// points must stay finite and labeled.
func TestPerOpDominatesGraphOnReferenceGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full reference grid under two backends")
	}
	graphSpec := ReferenceSpec()
	peropSpec := ReferenceSpec()
	peropSpec.CostModel = "perop"

	graph := collectGrid(t, graphSpec)
	perop := collectGrid(t, peropSpec)
	if len(graph) != len(perop) || len(graph) == 0 {
		t.Fatalf("grid sizes differ: %d vs %d", len(graph), len(perop))
	}

	dominated := 0
	for i := range graph {
		g, p := graph[i], perop[i]
		if g.Error != "" || p.Error != "" {
			t.Fatalf("point %d errored: %q / %q", i, g.Error, p.Error)
		}
		if g.Domain != p.Domain || g.Accelerator != p.Accelerator ||
			g.ParamTarget != p.ParamTarget || g.Subbatch != p.Subbatch {
			t.Fatalf("point %d identity mismatch: %+v vs %+v", i, g, p)
		}
		if math.IsNaN(p.StepSeconds) || math.IsInf(p.StepSeconds, 0) || p.StepSeconds <= 0 {
			t.Fatalf("point %d: per-op step %v not positive finite", i, p.StepSeconds)
		}
		if p.StepSeconds < g.StepSeconds {
			t.Errorf("%s/%s params=%g b=%g: per-op %.6g faster than graph %.6g",
				p.Domain, p.Accelerator, p.ParamTarget, p.Subbatch, p.StepSeconds, g.StepSeconds)
		}
		if p.StepSeconds > g.StepSeconds {
			dominated++
		}
		if p.Utilization > g.Utilization {
			t.Errorf("%s/%s: per-op utilization %.4g above graph %.4g",
				p.Domain, p.Accelerator, p.Utilization, g.Utilization)
		}
		if g.CostModel != "" {
			t.Errorf("default grid point labeled %q, want unlabeled", g.CostModel)
		}
		if p.CostModel != "perop" {
			t.Errorf("per-op grid point labeled %q, want perop", p.CostModel)
		}
	}
	// The per-op view must actually bite somewhere — if every point ties,
	// the efficiency table is dead weight.
	if dominated == 0 {
		t.Error("per-op backend never strictly exceeded the graph-level estimate")
	}
}

// TestSweepSpecCostModelValidation: unknown backends are a spec error out
// of New (a 400 at the server), and aliases resolve.
func TestSweepSpecCostModelValidation(t *testing.T) {
	base := Spec{Domains: []string{"image"}, Params: []float64{5e7}}

	bad := base
	bad.CostModel = "abacus"
	if _, err := New(sharedSource, bad); err == nil {
		t.Fatal("unknown costmodel accepted")
	}
	for _, name := range []string{"", "graph", "roofline", "perop", "per-op-roofline"} {
		ok := base
		ok.CostModel = name
		if _, err := New(sharedSource, ok); err != nil {
			t.Fatalf("costmodel %q rejected: %v", name, err)
		}
	}
}

// TestCostModelBenchFloors is the CI regression gate on the BENCH_pr5.json
// trajectory: both backends must stay above a pinned warm projections/sec
// floor, and the per-op overhead must stay bounded. Floors are
// conservative (roughly 10x under a 1-core container's measured numbers)
// so they catch structural regressions — recompiling per point, per-op
// evaluation leaking into graph-backend cells — not machine noise. Set
// COSTMODEL_BENCH_OUT to also write the snapshot the CI bench job uploads.
func TestCostModelBenchFloors(t *testing.T) {
	if testing.Short() {
		t.Skip("bench harness runs the full reference grid twice")
	}
	rep, err := RunCostModelBench(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("graph %.3fs (%.0f proj/s, %.1f allocs), perop %.3fs (%.0f proj/s, %.1f allocs), %.2fx overhead",
		rep.GraphWarmSeconds, rep.GraphProjectionsPerSec, rep.GraphAllocsPerProjection,
		rep.PerOpWarmSeconds, rep.PerOpProjectionsPerSec, rep.PerOpAllocsPerProjection,
		rep.PerOpOverGraph)

	const (
		graphFloor  = 100.0 // projections/sec; mirrors TestSweepBenchFloors
		peropFloor  = 40.0  // projections/sec; node-cost evaluation costs more
		maxOverhead = 30.0  // perop may not be more than 30x slower than graph
	)
	if rep.GraphProjectionsPerSec < graphFloor {
		t.Errorf("graph backend %.1f projections/s below pinned floor %.0f",
			rep.GraphProjectionsPerSec, graphFloor)
	}
	if rep.PerOpProjectionsPerSec < peropFloor {
		t.Errorf("per-op backend %.1f projections/s below pinned floor %.0f",
			rep.PerOpProjectionsPerSec, peropFloor)
	}
	if rep.PerOpOverGraph > maxOverhead {
		t.Errorf("per-op overhead %.1fx above pinned ceiling %.0fx", rep.PerOpOverGraph, maxOverhead)
	}

	if path := os.Getenv("COSTMODEL_BENCH_OUT"); path != "" {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := WriteCostModelReport(f, rep); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
	}
}
