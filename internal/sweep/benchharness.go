package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"catamount/internal/core"
	"catamount/internal/models"
)

// This file is the benchmark harness behind the repo's BENCH_*.json
// trajectory: it runs a fixed reference grid through the sweep runner and
// reports throughput (points/sec, cold and warm) and per-point allocation
// cost. The CI bench job publishes the report as an artifact and gates on
// pinned floors (see TestSweepBenchFloors); cmd/sweep -bench writes it
// locally.

// BenchSchema versions the report format.
const BenchSchema = "catamount-bench/v1"

// ReferenceSpec is the fixed grid the bench trajectory tracks across PRs:
// all five domains × three parameter targets × two subbatches × the full
// five-entry accelerator catalog — 150 points, 30 characterizations,
// 15 size solves. Changing it breaks snapshot comparability; add a new
// named grid instead.
func ReferenceSpec() Spec {
	return Spec{
		Params:     []float64{5e7, 2e8, 1e9},
		Subbatches: []float64{32, 128},
		Accelerators: []string{
			"target-v100-class", "a100-class", "h100-class", "tpuv3-class", "cpu-class",
		},
	}
}

// BenchReport is one harness run. Cold timing includes building and
// compiling every domain model (the first-request experience); warm timing
// and the allocation counters measure the steady state the serving layer
// lives in.
type BenchReport struct {
	Schema    string `json:"schema"`
	Grid      string `json:"grid"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`

	GridPoints int `json:"grid_points"`

	ColdSeconds      float64 `json:"cold_seconds"`
	WarmSeconds      float64 `json:"warm_seconds"`
	ColdPointsPerSec float64 `json:"cold_points_per_sec"`
	WarmPointsPerSec float64 `json:"warm_points_per_sec"`
	// ColdOverWarm is the compile-amortization ratio: how much of a cold
	// run is one-time model build+compile rather than evaluation.
	ColdOverWarm float64 `json:"cold_over_warm_x"`

	// AllocsPerPoint / BytesPerPoint are per-point heap costs of the best
	// warm run (mallocs and bytes deltas over the whole grid).
	AllocsPerPoint float64 `json:"allocs_per_point"`
	BytesPerPoint  float64 `json:"bytes_per_point"`
}

// buildSource is a minimal memoizing SessionSource for harness runs: a
// fresh one reproduces the cold (build+compile per domain) experience
// without dragging the full Engine in.
type buildSource struct {
	mu sync.Mutex
	m  map[models.Domain]*buildEntry
}

type buildEntry struct {
	once sync.Once
	a    *core.Analyzer
	err  error
}

func newBuildSource() *buildSource {
	return &buildSource{m: make(map[models.Domain]*buildEntry)}
}

// Analyzer builds and compiles a domain's model at most once.
func (s *buildSource) Analyzer(d models.Domain) (*core.Analyzer, error) {
	s.mu.Lock()
	ent, ok := s.m[d]
	if !ok {
		ent = &buildEntry{}
		s.m[d] = ent
	}
	s.mu.Unlock()
	ent.once.Do(func() {
		m, err := models.Build(d)
		if err != nil {
			ent.err = err
			return
		}
		ent.a, ent.err = core.NewAnalyzer(m)
	})
	return ent.a, ent.err
}

// RunBench runs the grid cold (fresh source) once and warm (same source)
// three times, keeping the best warm run. The context bounds the whole
// harness.
func RunBench(ctx context.Context, spec Spec) (*BenchReport, error) {
	src := newBuildSource()
	runner, err := New(src, spec)
	if err != nil {
		return nil, err
	}
	rep := &BenchReport{
		Schema:     BenchSchema,
		Grid:       "reference",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.GOMAXPROCS(0),
		GridPoints: runner.Points(),
	}

	discard := func(p Point) error {
		if p.Error != "" {
			return fmt.Errorf("sweep: bench grid point %d failed: %s", p.Seq, p.Error)
		}
		return nil
	}

	start := time.Now()
	if err := runner.Run(ctx, discard); err != nil {
		return nil, err
	}
	rep.ColdSeconds = time.Since(start).Seconds()

	var ms0, ms1 runtime.MemStats
	best := -1.0
	for rerun := 0; rerun < 3; rerun++ {
		runtime.ReadMemStats(&ms0)
		start = time.Now()
		if err := runner.Run(ctx, discard); err != nil {
			return nil, err
		}
		elapsed := time.Since(start).Seconds()
		runtime.ReadMemStats(&ms1)
		if best < 0 || elapsed < best {
			best = elapsed
			rep.AllocsPerPoint = float64(ms1.Mallocs-ms0.Mallocs) / float64(rep.GridPoints)
			rep.BytesPerPoint = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(rep.GridPoints)
		}
	}
	rep.WarmSeconds = best
	rep.ColdPointsPerSec = float64(rep.GridPoints) / rep.ColdSeconds
	rep.WarmPointsPerSec = float64(rep.GridPoints) / rep.WarmSeconds
	rep.ColdOverWarm = rep.ColdSeconds / rep.WarmSeconds
	return rep, nil
}

// WriteReport serializes a report as indented JSON (the BENCH_*.json file
// format), newline-terminated.
func WriteReport(w io.Writer, rep *BenchReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
