package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// This file holds the two streaming wire encodings of a sweep — NDJSON
// (one JSON object per line, the /v1/sweep default) and CSV — shared by
// the server endpoint and the cmd/sweep CLI so both emit byte-identical
// rows for the same grid.

// WriteNDJSON writes one point as a single JSON line.
func WriteNDJSON(w io.Writer, p Point) error {
	return WriteJSONLine(w, p)
}

// WriteJSONLine writes any value as a single NDJSON line — shared with
// cmd/plan, which streams plan records the same way sweeps stream points.
func WriteJSONLine(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// CSVHeader is the column row matching CSVRecord, newline-terminated.
func CSVHeader() string {
	return "seq,domain,accelerator,param_target,subbatch,costmodel,params,flops_per_step,bytes_per_step,intensity,footprint_bytes,step_seconds,utilization,compute_bound,fits_memory,error\n"
}

// CSVRecord renders one point as a CSV row, newline-terminated. The
// costmodel column mirrors the NDJSON label: filled when the spec named a
// backend explicitly, empty for default-backend grids, so a saved perop
// grid stays distinguishable from a graph one in either format. Failed
// points leave the numeric columns empty and fill the error column.
func CSVRecord(p Point) string {
	prefix := fmt.Sprintf("%d,%s,%s,%.6g,%.6g,%s", p.Seq, p.Domain, csvEscape(p.Accelerator),
		p.ParamTarget, p.Subbatch, p.CostModel)
	if p.Requirements == nil {
		return fmt.Sprintf("%s,,,,,,,,,,%s\n", prefix, csvEscape(p.Error))
	}
	return fmt.Sprintf("%s,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%v,%v,\n",
		prefix, p.Params, p.FLOPsPerStep, p.BytesPerStep, p.Intensity,
		p.FootprintBytes, p.StepSeconds, p.Utilization, p.ComputeBound, p.FitsMemory)
}

// csvEscape quotes a field when it contains CSV metacharacters — custom
// accelerator names and error messages are the only free-form columns.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
