package sweep

import (
	"encoding/json"
	"io"
	"strconv"
	"strings"
)

// This file holds the two streaming wire encodings of a sweep — NDJSON
// (one JSON object per line, the /v1/sweep default) and CSV — shared by
// the server endpoint and the cmd/sweep CLI so both emit byte-identical
// rows for the same grid.
//
// Streaming callers should hold a LineEncoder for the whole grid: it
// reuses one line buffer across points, so encoding adds no per-point
// garbage on top of the batched evaluation path. The package-level
// WriteNDJSON / CSVRecord helpers remain for one-shot callers and render
// the exact same bytes.

// LineEncoder streams points to one writer, recycling its line buffer
// between calls. Not safe for concurrent use; sweep emit callbacks are
// already serialized by the Runner.
type LineEncoder struct {
	w    io.Writer
	json *json.Encoder // lazily created: CSV-only streams never need it
	buf  []byte
}

// NewLineEncoder returns an encoder bound to w.
func NewLineEncoder(w io.Writer) *LineEncoder {
	return &LineEncoder{w: w}
}

// NDJSON writes one point as a single JSON line.
func (e *LineEncoder) NDJSON(p Point) error {
	return e.JSONLine(p)
}

// JSONLine writes any value as a single NDJSON line. The underlying
// json.Encoder recycles its encode buffer, unlike a Marshal per line.
func (e *LineEncoder) JSONLine(v any) error {
	if e.json == nil {
		e.json = json.NewEncoder(e.w)
	}
	return e.json.Encode(v)
}

// CSVHeader writes the column row matching CSVRecord.
func (e *LineEncoder) CSVHeader() error {
	_, err := io.WriteString(e.w, CSVHeader())
	return err
}

// CSVRecord writes one point as a CSV row into the recycled buffer.
func (e *LineEncoder) CSVRecord(p Point) error {
	e.buf = appendCSVRecord(e.buf[:0], p)
	_, err := e.w.Write(e.buf)
	return err
}

// WriteNDJSON writes one point as a single JSON line.
func WriteNDJSON(w io.Writer, p Point) error {
	return WriteJSONLine(w, p)
}

// WriteJSONLine writes any value as a single NDJSON line — shared with
// cmd/plan, which streams plan records the same way sweeps stream points.
func WriteJSONLine(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// CSVHeader is the column row matching CSVRecord, newline-terminated.
func CSVHeader() string {
	return "seq,domain,accelerator,param_target,subbatch,costmodel,params,flops_per_step,bytes_per_step,intensity,footprint_bytes,step_seconds,utilization,compute_bound,fits_memory,error\n"
}

// CSVRecord renders one point as a CSV row, newline-terminated. The
// costmodel column mirrors the NDJSON label: filled when the spec named a
// backend explicitly, empty for default-backend grids, so a saved perop
// grid stays distinguishable from a graph one in either format. Failed
// points leave the numeric columns empty and fill the error column.
func CSVRecord(p Point) string {
	return string(appendCSVRecord(nil, p))
}

// appendCSVRecord is the single CSV renderer behind both CSVRecord and
// LineEncoder.CSVRecord. Floats use 'g'/6, matching the %.6g the format
// was pinned with.
func appendCSVRecord(b []byte, p Point) []byte {
	b = strconv.AppendInt(b, int64(p.Seq), 10)
	b = append(b, ',')
	b = append(b, p.Domain...)
	b = append(b, ',')
	b = appendCSVEscaped(b, p.Accelerator)
	b = append(b, ',')
	b = strconv.AppendFloat(b, p.ParamTarget, 'g', 6, 64)
	b = append(b, ',')
	b = strconv.AppendFloat(b, p.Subbatch, 'g', 6, 64)
	b = append(b, ',')
	b = append(b, p.CostModel...)
	if p.Requirements == nil {
		b = append(b, ",,,,,,,,,,"...)
		b = appendCSVEscaped(b, p.Error)
		return append(b, '\n')
	}
	for _, f := range [...]float64{
		p.Params, p.FLOPsPerStep, p.BytesPerStep, p.Intensity,
		p.FootprintBytes, p.StepSeconds, p.Utilization,
	} {
		b = append(b, ',')
		b = strconv.AppendFloat(b, f, 'g', 6, 64)
	}
	b = append(b, ',')
	b = strconv.AppendBool(b, p.ComputeBound)
	b = append(b, ',')
	b = strconv.AppendBool(b, p.FitsMemory)
	return append(b, ",\n"...)
}

// appendCSVEscaped appends s, quoted when it contains CSV
// metacharacters — custom accelerator names and error messages are the
// only free-form columns.
func appendCSVEscaped(b []byte, s string) []byte {
	if !strings.ContainsAny(s, ",\"\n") {
		return append(b, s...)
	}
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			b = append(b, '"', '"')
		} else {
			b = append(b, s[i])
		}
	}
	return append(b, '"')
}
