package sweep

import (
	"context"
	"os"
	"testing"
)

// TestBatchBenchFloors is the CI regression gate on the BENCH_pr6.json
// trajectory: the batched pipeline must hold its heap-traffic reduction
// over the PR3 scalar pipeline, and the per-op backend must stay near
// graph-backend throughput now that per-node program evaluation is
// amortized across rows. Ceilings are conservative against 1-core
// container noise (the committed snapshot shows ~1.05x per-op ratio and
// ~850x bytes reduction); they catch structural regressions — per-point
// reallocation creeping back, per-op pricing losing its batched path —
// not scheduler jitter. Set BATCH_BENCH_OUT to also write the snapshot
// the CI bench job uploads.
func TestBatchBenchFloors(t *testing.T) {
	if testing.Short() {
		t.Skip("bench harness runs the full reference grid several times")
	}
	rep, err := RunBatchBench(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("batched %.3fs (%.0f pts/s, %.1f allocs/pt, %.0f B/pt), scalar %.3fs (%.0f pts/s), %.2fx speedup",
		rep.BatchedWarmSeconds, rep.BatchedPointsPerSec, rep.BatchedAllocsPerPoint,
		rep.BatchedBytesPerPoint, rep.ScalarWarmSeconds, rep.ScalarPointsPerSec, rep.BatchedOverScalar)
	t.Logf("perop %.3fs (%.0f pts/s, %.2fx graph), bytes/pt %.0f vs pr3 %.0f (%.0fx reduction)",
		rep.PerOpWarmSeconds, rep.PerOpPointsPerSec, rep.PerOpOverGraph,
		rep.BatchedBytesPerPoint, rep.PR3BytesPerPoint, rep.BytesReduction)

	const (
		warmFloor    = 100.0 // batched points/sec; mirrors TestSweepBenchFloors
		bytesCeiling = pr3BytesPerPoint / 10.0
		peropCeiling = 1.25 // perop warm time over graph warm time
	)
	if rep.BatchedPointsPerSec < warmFloor {
		t.Errorf("batched throughput %.1f points/s below pinned floor %.0f",
			rep.BatchedPointsPerSec, warmFloor)
	}
	if rep.BatchedBytesPerPoint > bytesCeiling {
		t.Errorf("batched heap traffic %.0f B/point above pinned ceiling %.0f (10x under the PR3 scalar pipeline)",
			rep.BatchedBytesPerPoint, bytesCeiling)
	}
	if rep.PerOpOverGraph > peropCeiling {
		t.Errorf("per-op backend %.2fx graph warm time, above pinned ceiling %.2fx",
			rep.PerOpOverGraph, peropCeiling)
	}

	if path := os.Getenv("BATCH_BENCH_OUT"); path != "" {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := WriteBatchBenchReport(f, rep); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
	}
}
