// Package sweep is the bulk grid evaluator: the paper's core artifacts
// (Tables 2–5, Figures 11–12) are all grids — domain × parameter count ×
// subbatch × accelerator — and this package turns "thousands of one-point
// calls" into one streaming evaluation over a shared compiled session.
//
// A Spec describes the grid; a Runner validates it once and then streams
// Points in a deterministic order (domain-major, then parameter target,
// then subbatch, then accelerator) regardless of worker scheduling. Costs
// are amortized across the whole grid: each domain's model is built and
// compiled once by the backing session source, each unique (domain, params)
// size solve runs once and is shared by every subbatch of the cell, each
// (domain, params, subbatch) characterization — the expensive part, with
// its footprint traversal — runs once and is shared by every accelerator,
// and workers reuse per-goroutine evaluation buffers so steady-state points
// allocate almost nothing.
//
// Failure policy is error-per-point, not fail-the-grid: an unreachable
// parameter target yields Points with Error set for that cell while the
// rest of the grid streams on. Cancelling the context stops the run.
package sweep

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"

	"catamount/internal/api"
	"catamount/internal/core"
	"catamount/internal/costmodel"
	"catamount/internal/graph"
	"catamount/internal/hw"
	"catamount/internal/models"
	"catamount/internal/obs"
)

// stageChunk times one (domain, param-chunk) task — the sweep scheduler's
// unit of work. Resolved once; spans off it are allocation-free.
var stageChunk = obs.Stage("sweep_chunk")

// SessionSource resolves a domain's compiled analysis session, building it
// on first use. catamount.Engine satisfies this.
type SessionSource interface {
	Analyzer(models.Domain) (*core.Analyzer, error)
}

// Spec describes a sweep grid. It is an alias of the versioned wire type
// in internal/api — the canonical JSON schema of POST /v1/sweep, the sweep
// half of POST /v1/jobs, and the flag schema of cmd/sweep — so the server,
// the CLIs, and this evaluator provably share one contract.
type Spec = api.SweepSpec

// Point is one grid evaluation result. Requirements is nil when the point
// failed, with Error carrying the cause; the grid streams on either way.
// Seq is the point's position in the deterministic output order.
type Point struct {
	Seq         int           `json:"seq"`
	Domain      models.Domain `json:"domain"`
	Accelerator string        `json:"accelerator"`
	ParamTarget float64       `json:"param_target"`
	Subbatch    float64       `json:"subbatch"`
	// CostModel labels the step-time backend when the spec named one
	// explicitly; it is omitted for default-backend grids so existing
	// consumers (and pinned outputs) see unchanged rows.
	CostModel string `json:"costmodel,omitempty"`

	*core.Requirements

	// StepSeconds/Utilization/ComputeBound are the Roofline estimates on
	// this point's accelerator; FitsMemory compares the footprint against
	// its capacity. The booleans never use omitempty: their false values
	// are the headline results (memory-bound, does not fit), and clients
	// filter on them directly. They are meaningful only when Requirements
	// is present.
	StepSeconds  float64 `json:"step_seconds,omitempty"`
	Utilization  float64 `json:"utilization,omitempty"`
	ComputeBound bool    `json:"compute_bound"`
	FitsMemory   bool    `json:"fits_memory"`

	Error string `json:"error,omitempty"`
}

// Runner is a validated sweep grid bound to a session source. Create with
// New; Run may be called any number of times.
type Runner struct {
	src        SessionSource
	domains    []models.Domain
	params     []float64
	subbatches []float64 // empty: each domain's DefaultBatch
	accs       []hw.Accelerator
	workers    int

	// model is the resolved step-time backend; batchModel is its batched
	// evaluator; label is its canonical name when the spec selected one
	// explicitly (it tags emitted points), and needsOps records whether
	// cells must evaluate per-node costs.
	model      costmodel.Model
	batchModel costmodel.BatchModel
	label      string
	needsOps   bool

	// stageStep times the batched step-time pricing, per backend
	// ("steptime_graph" / "steptime_perop"), resolved once per Runner so
	// the per-task span neither looks up nor builds the stage name.
	stageStep     *obs.Histogram
	stageStepName string

	// pool recycles per-worker session maps across Run calls, so repeated
	// runs (the server, the bench harness) keep their evaluation buffers.
	pool sync.Pool
}

// CostModel returns the runner's resolved step-time backend.
func (r *Runner) CostModel() costmodel.Model { return r.model }

// New validates a spec against the domain registry and accelerator catalog
// and resolves the grid. Every error out of New is a spec problem (the
// server maps them to 400); errors out of Run are per-point or
// cancellation.
func New(src SessionSource, spec Spec) (*Runner, error) {
	r := &Runner{src: src}

	if len(spec.Domains) == 0 {
		r.domains = append(r.domains, models.AllDomains...)
	}
	for _, name := range spec.Domains {
		d, err := parseDomain(name)
		if err != nil {
			return nil, err
		}
		r.domains = append(r.domains, d)
	}

	switch {
	case len(spec.Params) > 0:
		if spec.ParamMin != 0 || spec.ParamMax != 0 || spec.ParamSteps != 0 {
			return nil, fmt.Errorf("sweep: params and param_min/param_max/param_steps are mutually exclusive")
		}
		for _, p := range spec.Params {
			if !positiveFinite(p) {
				return nil, fmt.Errorf("sweep: params must be positive finite, got %v", p)
			}
		}
		r.params = append(r.params, spec.Params...)
	case spec.ParamMin > 0 || spec.ParamMax > 0 || spec.ParamSteps > 0:
		if !positiveFinite(spec.ParamMin) || !positiveFinite(spec.ParamMax) || spec.ParamMax <= spec.ParamMin {
			return nil, fmt.Errorf("sweep: param range needs 0 < param_min < param_max, got [%v, %v]",
				spec.ParamMin, spec.ParamMax)
		}
		if spec.ParamSteps < 2 {
			return nil, fmt.Errorf("sweep: param range needs param_steps >= 2, got %d", spec.ParamSteps)
		}
		r.params = core.LogSpace(spec.ParamMin, spec.ParamMax, spec.ParamSteps)
	default:
		return nil, fmt.Errorf("sweep: spec needs params or a param_min/param_max/param_steps range")
	}

	for _, b := range spec.Subbatches {
		if !positiveFinite(b) {
			return nil, fmt.Errorf("sweep: subbatches must be positive finite, got %v", b)
		}
		r.subbatches = append(r.subbatches, b)
	}

	for _, name := range spec.Accelerators {
		acc, err := hw.Lookup(name)
		if err != nil {
			return nil, err
		}
		r.accs = append(r.accs, acc)
	}
	for _, acc := range spec.Custom {
		if acc.Name == "" {
			return nil, fmt.Errorf("sweep: custom accelerator missing \"name\"")
		}
		if err := acc.Validate(); err != nil {
			return nil, err
		}
		r.accs = append(r.accs, acc)
	}
	if len(r.accs) == 0 {
		r.accs = []hw.Accelerator{hw.TargetAccelerator()}
	}

	cm, err := costmodel.Parse(spec.CostModel)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	r.model = cm
	r.batchModel = costmodel.AsBatch(cm)
	r.needsOps = costmodel.NeedsOpCosts(cm)
	r.stageStepName = "steptime_" + cm.Name()
	r.stageStep = obs.Stage(r.stageStepName)
	if spec.CostModel != "" {
		r.label = cm.Name()
	}

	r.workers = spec.Workers
	if r.workers <= 0 {
		r.workers = runtime.GOMAXPROCS(0)
	}
	if lim := 4 * runtime.GOMAXPROCS(0); r.workers > lim {
		r.workers = lim
	}
	return r, nil
}

// Points returns the grid size: the exact number of Points a Run will
// yield.
func (r *Runner) Points() int {
	return len(r.domains) * len(r.params) * r.cellsPerPair() * len(r.accs)
}

// cellsPerPair is the subbatch multiplicity of one (domain, params) pair.
func (r *Runner) cellsPerPair() int {
	if len(r.subbatches) == 0 {
		return 1
	}
	return len(r.subbatches)
}

// maxRowsPerTask bounds one task's batch width: all subbatches of a chunk
// of parameter targets for one domain. Wide enough to amortize program
// dispatch across rows, small enough to keep several tasks in flight.
const maxRowsPerTask = 32

// solvedSize is one (domain, params) size solve, shared by every subbatch
// and accelerator of the pair.
type solvedSize struct {
	size float64
	err  error
}

// taskResult is one evaluated (domain, param-chunk) row batch: every
// subbatch of every chunk parameter, characterized in one batched pass and
// priced on every accelerator with one batched step-time call each.
// Per-row entries are indexed row-major ((param, subbatch) order); steps
// and bounds hold valid rows only, accelerator-major, via validIdx.
type taskResult struct {
	subbatch []float64 // resolved per row (domain default applied)
	errs     []error   // per row; nil for characterized rows
	validIdx []int     // row -> index into reqs/steps/bounds columns, -1 if errored
	nValid   int
	reqs     []core.Requirements
	steps    []float64         // steps[ai*nValid + vi]
	bounds   []costmodel.Bound // same layout
}

// sessions lazily materializes one evaluation scratchpad per domain for a
// single worker goroutine.
type sessions struct {
	src SessionSource
	m   map[models.Domain]*core.Session
}

func (s *sessions) at(d models.Domain) (*core.Session, error) {
	if ses, ok := s.m[d]; ok {
		return ses, nil
	}
	a, err := s.src.Analyzer(d)
	if err != nil {
		return nil, err
	}
	ses := a.NewSession()
	s.m[d] = ses
	return ses, nil
}

// getSessions hands a worker a session map, recycled across Run calls so
// warm runs keep their compiled-evaluation buffers.
func (r *Runner) getSessions() *sessions {
	if v := r.pool.Get(); v != nil {
		return v.(*sessions)
	}
	return &sessions{src: r.src, m: make(map[models.Domain]*core.Session)}
}

func (r *Runner) putSessions(s *sessions) { r.pool.Put(s) }

// Run evaluates the grid, streaming every point through yield in
// deterministic order (domain-major, then params, then subbatch, then
// accelerator; Point.Seq numbers that order from 0). Workers evaluate
// cells concurrently; a reorder buffer keeps emission in sequence. Run
// returns the yield error if yield fails, ctx.Err() on cancellation, and
// nil otherwise — per-point failures are carried in Point.Error, never
// returned.
func (r *Runner) Run(ctx context.Context, yield func(Point) error) error {
	return r.RunFrom(ctx, 0, yield)
}

// taskSeqEnd returns one past the last Seq that task t emits. Because the
// output order is deterministic, each task owns a contiguous Seq range;
// this is what makes checkpointed resume exact.
func (r *Runner) taskSeqEnd(t, np, nb, chunkLen, tasksPerDomain int) int {
	di := t / tasksPerDomain
	hi := (t%tasksPerDomain)*chunkLen + chunkLen
	if hi > np {
		hi = np
	}
	return (di*np + hi) * nb * len(r.accs)
}

// RunFrom is Run resuming mid-grid: it yields only points with
// Seq >= startSeq, and — because the deterministic order assigns each
// batched task a contiguous Seq range — skips the evaluation of every task
// wholly before the resume point, so restarting a checkpointed job does
// not re-pay for work already persisted. RunFrom(ctx, 0, yield) is exactly
// Run.
func (r *Runner) RunFrom(ctx context.Context, startSeq int, yield func(Point) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if startSeq < 0 {
		startSeq = 0
	}

	np, nb := len(r.params), r.cellsPerPair()

	// Task geometry first: the resume point is expressed in tasks, and
	// phase 1 wants to skip size solves no surviving task will read.
	chunkLen := maxRowsPerTask / nb
	if chunkLen < 1 {
		chunkLen = 1
	}
	if chunkLen > np {
		chunkLen = np
	}
	tasksPerDomain := (np + chunkLen - 1) / chunkLen
	numTasks := len(r.domains) * tasksPerDomain

	// Phase 1: solve each unique (domain, params) size once, shared by
	// every subbatch and accelerator of the pair. Pairs belonging entirely
	// to skipped tasks are left unsolved.
	sizes := make([]solvedSize, len(r.domains)*np)
	r.forEach(ctx, len(sizes), func(i int, ses *sessions) {
		if startSeq > 0 {
			task := (i/np)*tasksPerDomain + (i%np)/chunkLen
			if r.taskSeqEnd(task, np, nb, chunkLen, tasksPerDomain) <= startSeq {
				return
			}
		}
		s, err := ses.at(r.domains[i/np])
		if err != nil {
			sizes[i] = solvedSize{err: err}
			return
		}
		size, err := s.SizeForParams(r.params[i%np])
		sizes[i] = solvedSize{size: size, err: err}
	})
	if err := ctx.Err(); err != nil {
		return err
	}

	// Phase 2: evaluate row-batched tasks across the pool, emitting in
	// order. One task is every subbatch of a chunk of parameter targets for
	// one domain — a whole grid row fed through a single batched
	// characterization and one batched step-time call per accelerator.
	results := make([]taskResult, numTasks)
	evalTask := func(t int, ses *sessions) {
		if r.taskSeqEnd(t, np, nb, chunkLen, tasksPerDomain) <= startSeq {
			return // wholly before the resume point; emits nothing
		}
		results[t] = r.evalTask(ctx, t, np, nb, chunkLen, tasksPerDomain, sizes, ses)
	}

	workers := r.workers
	if workers > numTasks {
		workers = numTasks
	}
	var wg sync.WaitGroup
	next := make(chan int)
	completed := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ses := r.getSessions()
			defer r.putSessions(ses)
			for i := range next {
				evalTask(i, ses)
				select {
				case completed <- i:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(next)
		for i := 0; i < numTasks; i++ {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(completed)
	}()

	ready := make([]bool, numTasks)
	nextEmit := 0
	for idx := range completed {
		ready[idx] = true
		for nextEmit < numTasks && ready[nextEmit] {
			if err := r.emitTask(nextEmit, np, nb, chunkLen, tasksPerDomain, startSeq, &results[nextEmit], yield); err != nil {
				cancel()
				for range completed { // unblock workers until the pool drains
				}
				return err
			}
			ready[nextEmit] = false
			results[nextEmit] = taskResult{} // release row storage early
			nextEmit++
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return nil
}

// evalTask characterizes one (domain, param-chunk) row batch. Rows whose
// size solve failed carry their error; the rest run through one
// CharacterizeBatch and one StepTimesBatch per accelerator. The chunk span
// carries the caller's context, so a server-side sweep's request ID tags
// its trace lines.
func (r *Runner) evalTask(ctx context.Context, t, np, nb, chunkLen, tasksPerDomain int,
	sizes []solvedSize, ses *sessions) taskResult {

	csp := obs.StartSpan(ctx, "sweep_chunk", stageChunk)
	ctx = csp.Attach(ctx)
	defer csp.End()
	di := t / tasksPerDomain
	lo := (t % tasksPerDomain) * chunkLen
	hi := lo + chunkLen
	if hi > np {
		hi = np
	}
	rows := (hi - lo) * nb
	tr := taskResult{
		subbatch: make([]float64, rows),
		errs:     make([]error, rows),
		validIdx: make([]int, rows),
	}

	s, err := ses.at(r.domains[di])
	if err != nil {
		for row := range tr.errs {
			tr.errs[row] = err
			tr.validIdx[row] = -1
		}
		return tr
	}

	sizeCol := make([]float64, 0, rows)
	batchCol := make([]float64, 0, rows)
	for pi := lo; pi < hi; pi++ {
		sol := sizes[di*np+pi]
		for bi := 0; bi < nb; bi++ {
			row := (pi-lo)*nb + bi
			b := s.Analyzer().Model.DefaultBatch
			if len(r.subbatches) > 0 {
				b = r.subbatches[bi]
			}
			tr.subbatch[row] = b
			if sol.err != nil {
				tr.errs[row] = sol.err
				tr.validIdx[row] = -1
				continue
			}
			tr.validIdx[row] = len(sizeCol)
			sizeCol = append(sizeCol, sol.size)
			batchCol = append(batchCol, b)
		}
	}
	tr.nValid = len(sizeCol)
	if tr.nValid == 0 {
		return tr
	}

	reqs, costs, err := s.CharacterizeBatch(ctx, sizeCol, batchCol, graph.PolicyMemGreedy, r.needsOps, nil)
	if err != nil {
		for row := range tr.errs {
			if tr.validIdx[row] >= 0 {
				tr.errs[row] = err
				tr.validIdx[row] = -1
			}
		}
		tr.nValid = 0
		return tr
	}
	tr.reqs = reqs
	// Price every accelerator off the shared cost batch; the step times and
	// bounds are copied out here because the batch aliases session buffers.
	tr.steps = make([]float64, len(r.accs)*tr.nValid)
	tr.bounds = make([]costmodel.Bound, len(r.accs)*tr.nValid)
	ssp := obs.StartSpan(ctx, r.stageStepName, r.stageStep)
	for ai, acc := range r.accs {
		seg := tr.steps[ai*tr.nValid : (ai+1)*tr.nValid]
		r.batchModel.StepTimesBatch(acc, costs, seg, tr.bounds[ai*tr.nValid:(ai+1)*tr.nValid])
	}
	ssp.End()
	return tr
}

// emitTask expands one evaluated row batch into its per-point stream, in
// (param, subbatch, accelerator) order. The Requirements are
// accelerator-independent; only the Roofline numbers differ per device.
// Points with Seq < startSeq are suppressed (resumed runs); a zero-value
// taskResult marks a task skipped entirely.
func (r *Runner) emitTask(t, np, nb, chunkLen, tasksPerDomain, startSeq int,
	tr *taskResult, yield func(Point) error) error {

	if tr.subbatch == nil {
		return nil
	}
	di := t / tasksPerDomain
	lo := (t % tasksPerDomain) * chunkLen
	hi := lo + chunkLen
	if hi > np {
		hi = np
	}
	for pi := lo; pi < hi; pi++ {
		for bi := 0; bi < nb; bi++ {
			row := (pi-lo)*nb + bi
			cell := (di*np+pi)*nb + bi
			if (cell+1)*len(r.accs) <= startSeq {
				continue
			}
			for ai, acc := range r.accs {
				if cell*len(r.accs)+ai < startSeq {
					continue
				}
				p := Point{
					Seq:         cell*len(r.accs) + ai,
					Domain:      r.domains[di],
					Accelerator: acc.Name,
					ParamTarget: r.params[pi],
					Subbatch:    tr.subbatch[row],
					CostModel:   r.label,
				}
				if tr.errs[row] != nil {
					p.Error = tr.errs[row].Error()
				} else {
					vi := tr.validIdx[row]
					req := tr.reqs[vi]
					p.Requirements = &req
					p.StepSeconds = tr.steps[ai*tr.nValid+vi]
					p.Utilization = acc.Utilization(req.FLOPsPerStep, p.StepSeconds)
					p.ComputeBound = tr.bounds[ai*tr.nValid+vi] == costmodel.BoundCompute
					p.FitsMemory = acc.Fits(req.FootprintBytes)
				}
				if err := yield(p); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// forEach runs fn(i) for i in [0, n) across the runner's worker pool, each
// worker holding its own session map. fn records its own results; the loop
// stops dispatching when ctx is cancelled.
func (r *Runner) forEach(ctx context.Context, n int, fn func(i int, ses *sessions)) {
	workers := r.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		ses := r.getSessions()
		defer r.putSessions(ses)
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(i, ses)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ses := r.getSessions()
			defer r.putSessions(ses)
			for i := range next {
				fn(i, ses)
			}
		}()
	}
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			i = n
		}
	}
	close(next)
	wg.Wait()
}

func parseDomain(name string) (models.Domain, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	for _, d := range models.AllDomains {
		if string(d) == key {
			return d, nil
		}
	}
	known := make([]string, 0, len(models.AllDomains))
	for _, d := range models.AllDomains {
		known = append(known, string(d))
	}
	return "", fmt.Errorf("sweep: unknown domain %q (one of: %s)", name, strings.Join(known, ", "))
}

func positiveFinite(v float64) bool {
	return v > 0 && !math.IsNaN(v) && !math.IsInf(v, 0)
}
