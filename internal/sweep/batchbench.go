package sweep

import (
	"context"
	"encoding/json"
	"io"
	"runtime"
	"time"

	"catamount/internal/costmodel"
	"catamount/internal/graph"
)

// This file is the batched-evaluation benchmark harness behind
// BENCH_pr6.json: it runs the fixed reference grid through the row-batched
// SoA pipeline (the production Runner path) and through a per-point scalar
// replay of the pre-batching pipeline, under both step-time backends, and
// reports the batched-vs-scalar speedup, the per-op-vs-graph warm ratio,
// and the heap bytes per point against the PR3 scalar-pipeline baseline.
// The CI bench job publishes the report and gates on pinned floors
// (TestBatchBenchFloors); cmd/sweep -bench-batch writes it locally.

// BatchBenchSchema versions the report format.
const BatchBenchSchema = "catamount-batchbench/v1"

// pr3BytesPerPoint is the committed BENCH_pr3.json bytes_per_point of the
// scalar pipeline on this same reference grid — the baseline the batched
// path's heap traffic is measured against.
const pr3BytesPerPoint = 174483.84

// BatchBenchReport is one harness run. Everything is timed warm (models
// built and compiled before any timed region); the scalar baseline replays
// the per-point evaluation shape the runner had before row batching, on
// the same worker pool, so the delta is the batching itself.
type BatchBenchReport struct {
	Schema    string `json:"schema"`
	Grid      string `json:"grid"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`

	GridPoints int `json:"grid_points"`

	// Batched pipeline, default graph backend.
	BatchedWarmSeconds    float64 `json:"batched_warm_seconds"`
	BatchedPointsPerSec   float64 `json:"batched_points_per_sec"`
	BatchedAllocsPerPoint float64 `json:"batched_allocs_per_point"`
	BatchedBytesPerPoint  float64 `json:"batched_bytes_per_point"`

	// Scalar per-point replay of the same grid, graph backend.
	ScalarWarmSeconds   float64 `json:"scalar_warm_seconds"`
	ScalarPointsPerSec  float64 `json:"scalar_points_per_sec"`
	ScalarBytesPerPoint float64 `json:"scalar_bytes_per_point"`
	// BatchedOverScalar is the headline speedup: scalar warm time over
	// batched warm time on identical grids.
	BatchedOverScalar float64 `json:"batched_over_scalar_x"`

	// Batched pipeline, per-op roofline backend.
	PerOpWarmSeconds  float64 `json:"perop_warm_seconds"`
	PerOpPointsPerSec float64 `json:"perop_points_per_sec"`
	// PerOpOverGraph is the per-op backend's warm-time ratio against the
	// graph backend, both through the batched pipeline. Batching collapses
	// the per-node program evaluations into per-unique-program row sweeps,
	// which is what pulls this toward 1.
	PerOpOverGraph float64 `json:"perop_over_graph_x"`

	// Heap-traffic trajectory: warm bytes/point against the PR3 scalar
	// pipeline's committed 174483.84 on this grid.
	PR3BytesPerPoint float64 `json:"pr3_bytes_per_point"`
	BytesReduction   float64 `json:"bytes_reduction_x"`
}

// runScalarBaseline replays the grid with the per-point evaluation shape
// the runner had before row batching: one scalar characterization and one
// scalar cost vector per (domain, params, subbatch) cell, priced per
// accelerator with scalar StepTime and expanded into discarded Points.
// Same worker pool, same session reuse — only the batching is missing.
func (r *Runner) runScalarBaseline(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	np, nb := len(r.params), r.cellsPerPair()

	sizes := make([]solvedSize, len(r.domains)*np)
	r.forEach(ctx, len(sizes), func(i int, ses *sessions) {
		s, err := ses.at(r.domains[i/np])
		if err != nil {
			sizes[i] = solvedSize{err: err}
			return
		}
		size, err := s.SizeForParams(r.params[i%np])
		sizes[i] = solvedSize{size: size, err: err}
	})
	if err := ctx.Err(); err != nil {
		return err
	}

	r.forEach(ctx, len(r.domains)*np*nb, func(i int, ses *sessions) {
		di, pi, bi := i/(np*nb), (i/nb)%np, i%nb
		sol := sizes[di*np+pi]
		if sol.err != nil {
			return
		}
		s, err := ses.at(r.domains[di])
		if err != nil {
			return
		}
		batch := s.Analyzer().Model.DefaultBatch
		if len(r.subbatches) > 0 {
			batch = r.subbatches[bi]
		}
		req, err := s.Characterize(ctx, sol.size, batch, graph.PolicyMemGreedy)
		if err != nil {
			return
		}
		costs := s.StepCosts(sol.size, batch, r.needsOps)
		for ai, acc := range r.accs {
			reqCopy := req
			p := Point{
				Seq:          ((di*np+pi)*nb+bi)*len(r.accs) + ai,
				Domain:       r.domains[di],
				Accelerator:  acc.Name,
				ParamTarget:  r.params[pi],
				Subbatch:     batch,
				CostModel:    r.label,
				Requirements: &reqCopy,
			}
			p.StepSeconds = r.model.StepTime(acc, costs)
			p.Utilization = acc.Utilization(req.FLOPsPerStep, p.StepSeconds)
			p.ComputeBound = r.model.Bound(acc, costs) == costmodel.BoundCompute
			p.FitsMemory = acc.Fits(req.FootprintBytes)
			sinkPoint(p)
		}
	})
	return ctx.Err()
}

// sinkPoint consumes a replayed Point. noinline keeps the compiler from
// eliding the per-point assembly the real pipeline pays for.
//
//go:noinline
func sinkPoint(Point) {}

// timedScalarGrid is timedGridStats for the scalar baseline replay.
func timedScalarGrid(ctx context.Context, r *Runner) (best, bytesPerPoint float64, err error) {
	var ms0, ms1 runtime.MemStats
	best = -1
	for rerun := 0; rerun < 5; rerun++ {
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		if err := r.runScalarBaseline(ctx); err != nil {
			return 0, 0, err
		}
		elapsed := time.Since(start).Seconds()
		runtime.ReadMemStats(&ms1)
		if best < 0 || elapsed < best {
			best = elapsed
			bytesPerPoint = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(r.Points())
		}
	}
	return best, bytesPerPoint, nil
}

// timedGridStats runs a runner warm reps times, returning the best wall
// time with its allocs/point and bytes/point. Best-of damps scheduler and
// GC noise; the batch harness uses more reps than the older harnesses
// because its headline is a ratio of two measured times.
func timedGridStats(ctx context.Context, r *Runner, reps int) (best, allocsPerPoint, bytesPerPoint float64, err error) {
	discard := func(Point) error { return nil }
	var ms0, ms1 runtime.MemStats
	best = -1
	for rerun := 0; rerun < reps; rerun++ {
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		if err := r.Run(ctx, discard); err != nil {
			return 0, 0, 0, err
		}
		elapsed := time.Since(start).Seconds()
		runtime.ReadMemStats(&ms1)
		if best < 0 || elapsed < best {
			best = elapsed
			allocsPerPoint = float64(ms1.Mallocs-ms0.Mallocs) / float64(r.Points())
			bytesPerPoint = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(r.Points())
		}
	}
	return best, allocsPerPoint, bytesPerPoint, nil
}

// RunBatchBench runs the reference grid batched (graph and per-op
// backends) and as a scalar per-point replay, over one shared compiled
// source.
func RunBatchBench(ctx context.Context) (*BatchBenchReport, error) {
	src := newBuildSource()

	graphSpec := ReferenceSpec()
	peropSpec := ReferenceSpec()
	peropSpec.CostModel = "perop"

	graphRunner, err := New(src, graphSpec)
	if err != nil {
		return nil, err
	}
	peropRunner, err := New(src, peropSpec)
	if err != nil {
		return nil, err
	}
	// A separate runner keeps the scalar replay's session pool distinct
	// from the batched graph runner's, so buffer reuse cannot blur the
	// comparison.
	scalarRunner, err := New(src, graphSpec)
	if err != nil {
		return nil, err
	}

	rep := &BatchBenchReport{
		Schema:           BatchBenchSchema,
		Grid:             "reference",
		GoVersion:        runtime.Version(),
		GOOS:             runtime.GOOS,
		GOARCH:           runtime.GOARCH,
		CPUs:             runtime.GOMAXPROCS(0),
		GridPoints:       graphRunner.Points(),
		PR3BytesPerPoint: pr3BytesPerPoint,
	}

	// Warm-up: build + compile every domain once, outside any timed region.
	if err := graphRunner.Run(ctx, func(Point) error { return nil }); err != nil {
		return nil, err
	}

	rep.BatchedWarmSeconds, rep.BatchedAllocsPerPoint, rep.BatchedBytesPerPoint, err =
		timedGridStats(ctx, graphRunner, 5)
	if err != nil {
		return nil, err
	}
	rep.PerOpWarmSeconds, _, _, err = timedGridStats(ctx, peropRunner, 5)
	if err != nil {
		return nil, err
	}
	rep.ScalarWarmSeconds, rep.ScalarBytesPerPoint, err = timedScalarGrid(ctx, scalarRunner)
	if err != nil {
		return nil, err
	}

	pts := float64(rep.GridPoints)
	rep.BatchedPointsPerSec = pts / rep.BatchedWarmSeconds
	rep.PerOpPointsPerSec = pts / rep.PerOpWarmSeconds
	rep.ScalarPointsPerSec = pts / rep.ScalarWarmSeconds
	rep.BatchedOverScalar = rep.ScalarWarmSeconds / rep.BatchedWarmSeconds
	rep.PerOpOverGraph = rep.PerOpWarmSeconds / rep.BatchedWarmSeconds
	rep.BytesReduction = pr3BytesPerPoint / rep.BatchedBytesPerPoint
	return rep, nil
}

// WriteBatchBenchReport serializes a report as indented JSON (the
// BENCH_*.json file format), newline-terminated.
func WriteBatchBenchReport(w io.Writer, rep *BatchBenchReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
