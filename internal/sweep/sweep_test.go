package sweep

import (
	"context"
	stdcsv "encoding/csv"
	"errors"
	"os"
	"strings"
	"sync"
	"testing"

	"catamount/internal/hw"
	"catamount/internal/models"
)

// sharedSource keeps model build+compile cost to once for the whole test
// binary.
var sharedSource = newBuildSource()

func collect(t *testing.T, r *Runner) []Point {
	t.Helper()
	var out []Point
	if err := r.Run(context.Background(), func(p Point) error {
		out = append(out, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string // error substring
	}{
		{"no params", Spec{}, "needs params"},
		{"unknown domain", Spec{Domains: []string{"tabular"}, Params: []float64{1e8}}, "unknown domain"},
		{"negative param", Spec{Params: []float64{-1}}, "positive finite"},
		{"both param forms", Spec{Params: []float64{1e8}, ParamMin: 1, ParamMax: 2, ParamSteps: 2}, "mutually exclusive"},
		{"inverted range", Spec{ParamMin: 1e9, ParamMax: 1e8, ParamSteps: 4}, "param_min < param_max"},
		{"one step", Spec{ParamMin: 1e8, ParamMax: 1e9, ParamSteps: 1}, "param_steps >= 2"},
		{"bad subbatch", Spec{Params: []float64{1e8}, Subbatches: []float64{0}}, "subbatches must be positive"},
		{"unknown accelerator", Spec{Params: []float64{1e8}, Accelerators: []string{"abacus"}}, "unknown accelerator"},
		{"nameless custom", Spec{Params: []float64{1e8}, Custom: []hw.Accelerator{{PeakFLOPS: 1}}}, "missing \"name\""},
		{"invalid custom", Spec{Params: []float64{1e8},
			Custom: []hw.Accelerator{{Name: "broken", PeakFLOPS: -1}}}, "must be positive"},
	}
	for _, tc := range cases {
		_, err := New(sharedSource, tc.spec)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestDefaultsAndGridSize(t *testing.T) {
	// Empty domains/accelerators default to all five and the Table 4 target;
	// empty subbatches mean one cell per (domain, params) at the domain's
	// profiling subbatch.
	r, err := New(sharedSource, Spec{ParamMin: 1e8, ParamMax: 1e9, ParamSteps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.Points(), 5*3*1*1; got != want {
		t.Fatalf("Points() = %d, want %d", got, want)
	}
	pts := collect(t, r)
	if len(pts) != r.Points() {
		t.Fatalf("yielded %d points, want %d", len(pts), r.Points())
	}
	byDomain := map[models.Domain]float64{}
	for _, p := range pts {
		if p.Error != "" {
			t.Fatalf("point %d failed: %s", p.Seq, p.Error)
		}
		if p.Accelerator != hw.TargetAccelerator().Name {
			t.Fatalf("point %d accelerator = %q", p.Seq, p.Accelerator)
		}
		byDomain[p.Domain] = p.Subbatch
	}
	for _, d := range models.AllDomains {
		m := models.MustBuild(d)
		if byDomain[d] != m.DefaultBatch {
			t.Errorf("%s default subbatch = %v, want profiling subbatch %v", d, byDomain[d], m.DefaultBatch)
		}
	}
}

func TestDeterministicOrderAcrossWorkerCounts(t *testing.T) {
	spec := Spec{
		Domains:      []string{"wordlm", "nmt"},
		Params:       []float64{5e7, 2e8},
		Subbatches:   []float64{32, 128},
		Accelerators: []string{"v100", "a100"},
	}
	var runs [][]Point
	for _, workers := range []int{1, 3, 8} {
		spec.Workers = workers
		r, err := New(sharedSource, spec)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, collect(t, r))
	}
	for i, pts := range runs {
		if len(pts) != len(runs[0]) {
			t.Fatalf("run %d yielded %d points, run 0 yielded %d", i, len(pts), len(runs[0]))
		}
		for j := range pts {
			if pts[j].Seq != j {
				t.Fatalf("run %d point %d has seq %d", i, j, pts[j].Seq)
			}
			a, b := pts[j], runs[0][j]
			if a.Domain != b.Domain || a.Accelerator != b.Accelerator ||
				a.ParamTarget != b.ParamTarget || a.Subbatch != b.Subbatch ||
				*a.Requirements != *b.Requirements || a.StepSeconds != b.StepSeconds {
				t.Fatalf("run %d point %d diverges from run 0:\n%+v\nvs\n%+v", i, j, a, b)
			}
		}
	}
	// Spot-check the documented order: domain-major, then params, then
	// subbatch, then accelerator.
	pts := runs[0]
	if pts[0].Domain != "wordlm" || pts[0].ParamTarget != 5e7 || pts[0].Subbatch != 32 ||
		pts[0].Accelerator != "target-v100-class" {
		t.Fatalf("point 0 = %+v", pts[0])
	}
	if pts[1].Accelerator != "a100-class" {
		t.Fatalf("point 1 accelerator = %q, want a100-class", pts[1].Accelerator)
	}
	if pts[2].Subbatch != 128 {
		t.Fatalf("point 2 subbatch = %v, want 128", pts[2].Subbatch)
	}
	if pts[8].Domain != "nmt" {
		t.Fatalf("point 8 domain = %q, want nmt", pts[8].Domain)
	}
}

func TestPerPointErrorsDoNotTruncateGrid(t *testing.T) {
	// 1e300 parameters is unreachable for any domain: that cell must fail
	// point by point while the 1e8 cells stream through untouched.
	r, err := New(sharedSource, Spec{
		Domains:      []string{"wordlm", "charlm"},
		Params:       []float64{1e8, 1e300},
		Accelerators: []string{"v100", "a100"},
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := collect(t, r)
	if len(pts) != 2*2*1*2 {
		t.Fatalf("yielded %d points, want 8", len(pts))
	}
	var failed, ok int
	for _, p := range pts {
		switch p.ParamTarget {
		case 1e300:
			if p.Error == "" || p.Requirements != nil {
				t.Fatalf("unreachable point %d: error=%q req=%v", p.Seq, p.Error, p.Requirements)
			}
			if !strings.Contains(p.Error, "unreachable") {
				t.Fatalf("point %d error = %q", p.Seq, p.Error)
			}
			failed++
		default:
			if p.Error != "" || p.Requirements == nil {
				t.Fatalf("healthy point %d: error=%q", p.Seq, p.Error)
			}
			ok++
		}
	}
	if failed != 4 || ok != 4 {
		t.Fatalf("failed=%d ok=%d, want 4 and 4", failed, ok)
	}
}

func TestRunCancellation(t *testing.T) {
	r, err := New(sharedSource, Spec{
		Params:     []float64{5e7, 1e8, 2e8, 4e8},
		Subbatches: []float64{16, 32, 64, 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	seen := 0
	runErr := r.Run(ctx, func(Point) error {
		seen++
		if seen == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", runErr)
	}
	if seen >= r.Points() {
		t.Fatalf("cancellation did not stop the stream (%d of %d points)", seen, r.Points())
	}
}

func TestYieldErrorAborts(t *testing.T) {
	r, err := New(sharedSource, Spec{Params: []float64{5e7, 1e8, 2e8}})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("client went away")
	seen := 0
	runErr := r.Run(context.Background(), func(Point) error {
		seen++
		if seen == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(runErr, boom) {
		t.Fatalf("Run = %v, want the yield error", runErr)
	}
	if seen != 2 {
		t.Fatalf("yield called %d times after abort, want 2", seen)
	}
}

func TestRunIsRepeatable(t *testing.T) {
	// The same Runner may stream its grid any number of times (the bench
	// harness re-runs warm); results must match exactly.
	r, err := New(sharedSource, Spec{Domains: []string{"nmt"}, Params: []float64{1e8}})
	if err != nil {
		t.Fatal(err)
	}
	a, b := collect(t, r), collect(t, r)
	if len(a) != len(b) {
		t.Fatalf("runs yielded %d and %d points", len(a), len(b))
	}
	for i := range a {
		if *a[i].Requirements != *b[i].Requirements {
			t.Fatalf("point %d differs across runs", i)
		}
	}
}

func TestConcurrentAnalyzerBuildIsSafe(t *testing.T) {
	// A fresh source with several workers forces concurrent first-touch
	// model builds through the memoizing source.
	r, err := New(newBuildSource(), Spec{
		Domains: []string{"wordlm", "charlm", "nmt"},
		Params:  []float64{5e7},
		Workers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Run(context.Background(), func(Point) error { return nil })
		}()
	}
	wg.Wait()
}

// TestSweepBenchFloors is the CI regression gate on the BENCH_*.json
// trajectory: the reference grid must stay above a pinned throughput floor
// and below a pinned allocation ceiling. The floors are conservative —
// roughly 10x under / 20x over a 1-core container's measured numbers
// (960 points/s warm, 2.7 allocs/point) — so they catch structural
// regressions (recompiling per point, losing cell amortization, per-point
// allocation creep), not machine noise. Set SWEEP_BENCH_OUT to also write
// the BENCH json snapshot the CI bench job uploads.
func TestSweepBenchFloors(t *testing.T) {
	if testing.Short() {
		t.Skip("bench harness runs the full reference grid")
	}
	rep, err := RunBench(context.Background(), ReferenceSpec())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cold %.2fs (%.0f pts/s), warm %.3fs (%.0f pts/s, %.1fx), %.1f allocs/pt, %.0f B/pt",
		rep.ColdSeconds, rep.ColdPointsPerSec, rep.WarmSeconds, rep.WarmPointsPerSec,
		rep.ColdOverWarm, rep.AllocsPerPoint, rep.BytesPerPoint)

	const (
		warmFloor    = 100.0 // points/sec
		allocCeiling = 64.0  // allocs/point
	)
	if rep.WarmPointsPerSec < warmFloor {
		t.Errorf("warm throughput %.1f points/s below pinned floor %.0f", rep.WarmPointsPerSec, warmFloor)
	}
	if rep.AllocsPerPoint > allocCeiling {
		t.Errorf("allocations %.1f/point above pinned ceiling %.0f", rep.AllocsPerPoint, allocCeiling)
	}
	if rep.ColdOverWarm < 2 {
		t.Errorf("cold/warm ratio %.1fx below 2x: grid no longer amortizes model build+compile", rep.ColdOverWarm)
	}

	if path := os.Getenv("SWEEP_BENCH_OUT"); path != "" {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := WriteReport(f, rep); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
	}
}

// TestEncodeFormats checks the two wire encodings stay parseable and
// aligned: NDJSON one object per line, CSV header/row column counts equal,
// error rows carrying the message.
func TestEncodeFormats(t *testing.T) {
	r, err := New(sharedSource, Spec{
		Domains: []string{"wordlm"},
		Params:  []float64{1e8, 1e300},
	})
	if err != nil {
		t.Fatal(err)
	}
	var nd, csv strings.Builder
	csv.WriteString(CSVHeader())
	err = r.Run(context.Background(), func(p Point) error {
		if err := WriteNDJSON(&nd, p); err != nil {
			return err
		}
		csv.WriteString(CSVRecord(p))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ndLines := strings.Split(strings.TrimRight(nd.String(), "\n"), "\n")
	if len(ndLines) != 2 {
		t.Fatalf("ndjson has %d lines, want 2", len(ndLines))
	}
	records, err := stdcsv.NewReader(strings.NewReader(csv.String())).ReadAll()
	if err != nil {
		t.Fatalf("csv stream does not parse: %v", err)
	}
	if len(records) != 3 {
		t.Fatalf("csv has %d records, want header + 2 rows", len(records))
	}
	for i, rec := range records[1:] {
		if len(rec) != len(records[0]) {
			t.Errorf("csv row %d has %d fields, header has %d", i, len(rec), len(records[0]))
		}
	}
	if !strings.Contains(ndLines[0], `"flops_per_step"`) {
		t.Errorf("healthy ndjson line missing requirements: %s", ndLines[0])
	}
	if !strings.Contains(ndLines[1], `"error"`) || strings.Contains(ndLines[1], `"flops_per_step"`) {
		t.Errorf("failed ndjson line should carry error only: %s", ndLines[1])
	}
	if errCol := records[2][len(records[2])-1]; !strings.Contains(errCol, "unreachable") {
		t.Errorf("failed csv row error column = %q", errCol)
	}
}
