package sweep

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"catamount/internal/core"
)

func encodeTestPoints() []Point {
	ok := Point{
		Seq: 7, Domain: "charlm", Accelerator: "tpu-v3", ParamTarget: 2e8,
		Subbatch: 32, CostModel: "perop",
		Requirements: &core.Requirements{
			Domain: "charlm", Name: "charlm", Size: 1234.5, Batch: 32,
			Params: 1.999e8, FLOPsPerStep: 3.25e12, BytesPerStep: 8.5e9,
			Intensity: 382.35, FootprintBytes: 1.75e10,
		},
		StepSeconds: 0.0125, Utilization: 0.6125, ComputeBound: true, FitsMemory: true,
	}
	return []Point{
		ok,
		{Seq: 0, Domain: "speech", Accelerator: `odd,"name`, ParamTarget: 5e7,
			Subbatch: 128, Error: "solve failed: no bracket, try again"},
		{Seq: -1, Error: "context deadline exceeded"},
		{Seq: 3, Domain: "lm", Accelerator: "gpu", ParamTarget: math.Inf(1),
			Subbatch: 1, Requirements: &core.Requirements{Params: math.NaN()},
			StepSeconds: -0.0},
	}
}

// TestLineEncoderMatchesOneShotHelpers pins that the buffered streaming
// encoder emits byte-identical lines to the package-level helpers, for
// both wire formats, including quoting and special float values.
func TestLineEncoderMatchesOneShotHelpers(t *testing.T) {
	pts := encodeTestPoints()

	var got, want bytes.Buffer
	enc := NewLineEncoder(&got)
	if err := enc.CSVHeader(); err != nil {
		t.Fatal(err)
	}
	want.WriteString(CSVHeader())
	for _, p := range pts {
		if err := enc.CSVRecord(p); err != nil {
			t.Fatal(err)
		}
		want.WriteString(CSVRecord(p))
	}
	if got.String() != want.String() {
		t.Fatalf("CSV mismatch:\nenc:  %q\nhelp: %q", got.String(), want.String())
	}
	for _, line := range strings.Split(strings.TrimSuffix(got.String(), "\n"), "\n") {
		if n := strings.Count(csvStripQuoted(line), ","); n != 15 {
			t.Fatalf("row has %d unquoted commas, want 15: %q", n, line)
		}
	}

	got.Reset()
	want.Reset()
	enc = NewLineEncoder(&got)
	for _, p := range pts {
		if p.Requirements != nil && math.IsNaN(p.Requirements.Params) {
			continue // JSON cannot encode NaN; CSV-only fixture
		}
		if err := enc.NDJSON(p); err != nil {
			t.Fatal(err)
		}
		if err := WriteNDJSON(&want, p); err != nil {
			t.Fatal(err)
		}
	}
	if got.String() != want.String() {
		t.Fatalf("NDJSON mismatch:\nenc:  %q\nhelp: %q", got.String(), want.String())
	}
}

// csvStripQuoted blanks out quoted fields so comma counting sees only
// structural separators.
func csvStripQuoted(line string) string {
	var b strings.Builder
	inQuote := false
	for i := 0; i < len(line); i++ {
		switch {
		case line[i] == '"':
			inQuote = !inQuote
		case !inQuote:
			b.WriteByte(line[i])
		}
	}
	return b.String()
}

// TestEncodeAllocsPerPoint pins the point of LineEncoder: steady-state
// CSV encoding is allocation-free, and NDJSON reuses the json.Encoder's
// pooled buffer instead of a fresh Marshal slice per line.
func TestEncodeAllocsPerPoint(t *testing.T) {
	p := encodeTestPoints()[0]
	enc := NewLineEncoder(io.Discard)

	if err := enc.CSVRecord(p); err != nil { // warm the line buffer
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := enc.CSVRecord(p); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Fatalf("warm CSVRecord allocates %v times per point", allocs)
	}

	if err := enc.NDJSON(p); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := enc.NDJSON(p); err != nil {
			t.Fatal(err)
		}
	}); allocs > 4 {
		t.Fatalf("warm NDJSON allocates %v times per point", allocs)
	}
}
