// Package scaling implements the paper's §3 accuracy-scaling machinery:
// power-law learning curves ε(m) = α·m^βg, model-size growth curves
// p(m) = σ·m^βp, and the Table 1 projections from current state-of-the-art
// to expert-defined "desired SOTA" accuracy targets.
package scaling

import (
	"fmt"
	"math"

	"catamount/internal/models"
)

// LearningCurve is the power-law region of a learning curve (paper Eq. 1):
// generalization error ε(m) = Alpha · m^Beta with Beta in [-0.5, 0].
type LearningCurve struct {
	Alpha float64 `json:"alpha"`
	Beta  float64 `json:"beta"`
}

// Error returns ε(m) for a training set of m samples.
func (c LearningCurve) Error(m float64) float64 {
	return c.Alpha * math.Pow(m, c.Beta)
}

// DataForError inverts the curve: the dataset size required to reach err.
func (c LearningCurve) DataForError(err float64) (float64, error) {
	if err <= 0 || c.Alpha <= 0 || c.Beta >= 0 {
		return 0, fmt.Errorf("scaling: degenerate learning curve inversion")
	}
	return math.Pow(err/c.Alpha, 1/c.Beta), nil
}

// ModelCurve is the model-capacity growth law (paper Eq. 2):
// p(m) = Sigma · m^Beta with Beta in [0.5, 1).
type ModelCurve struct {
	Sigma float64
	Beta  float64
}

// Params returns the parameter count required to fit m training samples.
func (c ModelCurve) Params(m float64) float64 {
	return c.Sigma * math.Pow(m, c.Beta)
}

// NormalizedModelCurve builds a model curve with exponent beta calibrated so
// that Params(mRef) == pRef. The paper publishes σ in unstated units, so we
// anchor each curve at the implied current-SOTA model size instead (see
// DESIGN.md "Parameter-count normalization").
func NormalizedModelCurve(beta, mRef, pRef float64) ModelCurve {
	return ModelCurve{Sigma: pRef / math.Pow(mRef, beta), Beta: beta}
}

// DomainSpec is one Table 1 row plus the derived anchors used downstream.
type DomainSpec struct {
	Domain models.Domain `json:"domain"`
	// Display name and accuracy metric, e.g. "Word LMs (LSTM)" / "nats/word".
	Name   string `json:"name"`
	Metric string `json:"metric"`
	// CurrentSOTA and DesiredSOTA are the accuracy values from Table 1
	// (error-like: lower is better).
	CurrentSOTA float64 `json:"current_sota"`
	DesiredSOTA float64 `json:"desired_sota"`
	// CurrentDataSamples / CurrentDataGB describe the current SOTA training
	// set ("Current Data Size" columns).
	CurrentDataSamples float64 `json:"current_data_samples"`
	CurrentDataGB      float64 `json:"current_data_gb"`
	// SampleUnit names the dataset sample unit ("word", "char", "WP", "image").
	SampleUnit string `json:"sample_unit"`
	// Curve holds α and βg ("Learn Curve" columns).
	Curve LearningCurve `json:"curve"`
	// BetaP is βp ("Model Size" column); SigmaPaper is the published σ,
	// retained for reference.
	BetaP      float64 `json:"beta_p"`
	SigmaPaper float64 `json:"sigma_paper"`
	// CurrentParams is the implied current-SOTA parameter count (Table 3
	// target params divided by the published model scale).
	CurrentParams float64 `json:"current_params"`
	// PaperDataScale / PaperModelScale are Table 1's "Projected Scale"
	// columns as published.
	PaperDataScale  float64 `json:"paper_data_scale"`
	PaperModelScale float64 `json:"paper_model_scale"`
	// TokensPerSample converts dataset samples (words/chars) into training
	// samples (sequences) for epoch accounting; 1 for images.
	TokensPerSample float64 `json:"tokens_per_sample"`
	// IrreducibleError and BestGuessError bound the Figure 6 regions.
	IrreducibleError float64 `json:"irreducible_error"`
	BestGuessError   float64 `json:"best_guess_error"`
}

// Specs returns the five Table 1 rows.
func Specs() []DomainSpec {
	return []DomainSpec{
		{
			Domain: models.WordLM, Name: "Word LMs (LSTM)", Metric: "nats/word",
			CurrentSOTA: 3.37, DesiredSOTA: 2.48,
			CurrentDataSamples: 768e6, CurrentDataGB: 3.9, SampleUnit: "word",
			Curve: LearningCurve{Alpha: 13.0, Beta: -0.066},
			BetaP: 0.68, SigmaPaper: 9.4e-4,
			CurrentParams:  23.8e9 / 23,
			PaperDataScale: 100, PaperModelScale: 23,
			TokensPerSample:  80,
			IrreducibleError: 2.48, BestGuessError: 10.6, // ln(40004) best guess
		},
		{
			Domain: models.CharLM, Name: "Character LMs (RHN)", Metric: "bits/char",
			CurrentSOTA: 1.30, DesiredSOTA: 0.70,
			CurrentDataSamples: 3.48e9, CurrentDataGB: 3.9, SampleUnit: "char",
			Curve: LearningCurve{Alpha: 9.39, Beta: -0.092},
			BetaP: 0.89, SigmaPaper: 1.2e-5,
			CurrentParams:  146e9 / 456,
			PaperDataScale: 971, PaperModelScale: 456,
			TokensPerSample:  150,
			IrreducibleError: 0.70, BestGuessError: 7.0, // log2(128)
		},
		{
			Domain: models.NMT, Name: "NMT (enc/dec+attn)", Metric: "WPER",
			CurrentSOTA: 0.28, DesiredSOTA: 0.12,
			CurrentDataSamples: 130e6, CurrentDataGB: 2.6, SampleUnit: "WP",
			Curve: LearningCurve{Alpha: 3.06, Beta: -0.128},
			BetaP: 0.68, SigmaPaper: 6.4e-4,
			CurrentParams:  18.9e9 / 90,
			PaperDataScale: 750, PaperModelScale: 90,
			TokensPerSample:  25,
			IrreducibleError: 0.12, BestGuessError: 1.0,
		},
		{
			Domain: models.Speech, Name: "Speech Recogn. (enc/dec+attn)", Metric: "CER",
			CurrentSOTA: 0.095, DesiredSOTA: 0.04,
			CurrentDataSamples: 425e6, CurrentDataGB: 1674, SampleUnit: "char",
			Curve: LearningCurve{Alpha: 30.5, Beta: -0.291},
			BetaP: 0.54, SigmaPaper: 2.4e-3,
			CurrentParams:  727e6 / 6.6,
			PaperDataScale: 33, PaperModelScale: 6.6,
			TokensPerSample:  100,
			IrreducibleError: 0.04, BestGuessError: 1.0,
		},
		{
			Domain: models.ImageCl, Name: "Image Classification (ResNet)", Metric: "Top-1 error",
			CurrentSOTA: 0.194, DesiredSOTA: 0.05,
			CurrentDataSamples: 1.3e6, CurrentDataGB: 152, SampleUnit: "image",
			Curve: LearningCurve{Alpha: 15.0, Beta: -0.309},
			BetaP: 0.57, SigmaPaper: 2.0e-2,
			CurrentParams:  732e6 / 12,
			PaperDataScale: 81, PaperModelScale: 12,
			TokensPerSample:  1,
			IrreducibleError: 0.05, BestGuessError: 1.0,
		},
	}
}

// SpecFor returns the Table 1 row for a domain.
func SpecFor(d models.Domain) (DomainSpec, error) {
	for _, s := range Specs() {
		if s.Domain == d {
			return s, nil
		}
	}
	return DomainSpec{}, fmt.Errorf("scaling: no spec for domain %q", d)
}

// Projection captures one Table 1 "Projected Scale" row, in both
// computed-from-constants and paper-published forms.
type Projection struct {
	Spec DomainSpec
	// ComputedDataScale/ComputedModelScale are derived from the published
	// (rounded) α, βg, βp constants.
	ComputedDataScale, ComputedModelScale float64
	// PaperDataScale/PaperModelScale are Table 1's published values.
	PaperDataScale, PaperModelScale float64
	// TargetDataSamples and TargetParams are the frontier sizes used by the
	// Table 3 pipeline (paper-calibrated for comparability).
	TargetDataSamples, TargetParams float64
	// AccuracyImprovement is the current/desired ratio ("1.4x–3.9x better").
	AccuracyImprovement float64
}

// Project computes the data and model growth required to reach the desired
// SOTA for one domain.
func Project(spec DomainSpec) (Projection, error) {
	targetData, err := spec.Curve.DataForError(spec.DesiredSOTA)
	if err != nil {
		return Projection{}, fmt.Errorf("%s: %w", spec.Name, err)
	}
	dataScale := targetData / spec.CurrentDataSamples
	modelScale := math.Pow(dataScale, spec.BetaP)
	return Projection{
		Spec:                spec,
		ComputedDataScale:   dataScale,
		ComputedModelScale:  modelScale,
		PaperDataScale:      spec.PaperDataScale,
		PaperModelScale:     spec.PaperModelScale,
		TargetDataSamples:   spec.CurrentDataSamples * spec.PaperDataScale,
		TargetParams:        spec.CurrentParams * spec.PaperModelScale,
		AccuracyImprovement: spec.CurrentSOTA / spec.DesiredSOTA,
	}, nil
}

// ProjectAll projects every domain in Table 1 order.
func ProjectAll() ([]Projection, error) {
	specs := Specs()
	out := make([]Projection, 0, len(specs))
	for _, s := range specs {
		p, err := Project(s)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// CurvePoint is one (dataset size, error) sample of a learning curve.
type CurvePoint struct {
	DataSamples float64 `json:"data_samples"`
	Error       float64 `json:"error"`
	Region      string  `json:"region"` // "small-data", "power-law", "irreducible"
}

// LearningCurveSeries samples the three-region learning curve of Figure 6:
// best-guess plateau, power-law decline, irreducible floor.
func LearningCurveSeries(spec DomainSpec, minData, maxData float64, pointsPerDecade int) []CurvePoint {
	if minData <= 0 || maxData <= minData || pointsPerDecade < 1 {
		return nil
	}
	decades := math.Log10(maxData / minData)
	n := int(decades*float64(pointsPerDecade)) + 1
	out := make([]CurvePoint, 0, n)
	for i := 0; i < n; i++ {
		m := minData * math.Pow(10, float64(i)/float64(pointsPerDecade))
		raw := spec.Curve.Error(m)
		p := CurvePoint{DataSamples: m}
		switch {
		case raw >= spec.BestGuessError:
			p.Error, p.Region = spec.BestGuessError, "small-data"
		case raw <= spec.IrreducibleError:
			p.Error, p.Region = spec.IrreducibleError, "irreducible"
		default:
			p.Error, p.Region = raw, "power-law"
		}
		out = append(out, p)
	}
	return out
}
