package scaling

import (
	"math"
	"testing"
	"testing/quick"

	"catamount/internal/models"
)

func TestLearningCurveRoundTrip(t *testing.T) {
	c := LearningCurve{Alpha: 13.0, Beta: -0.066}
	m := 768e6
	err := c.Error(m)
	back, e := c.DataForError(err)
	if e != nil {
		t.Fatal(e)
	}
	if math.Abs(back-m)/m > 1e-9 {
		t.Fatalf("round trip %v -> %v", m, back)
	}
}

func TestLearningCurveMatchesCurrentSOTA(t *testing.T) {
	// The published (α, βg) evaluated at the current dataset size must
	// reproduce the current SOTA accuracy within rounding (paper Table 1).
	for _, s := range Specs() {
		got := s.Curve.Error(s.CurrentDataSamples)
		if math.Abs(got-s.CurrentSOTA)/s.CurrentSOTA > 0.06 {
			t.Errorf("%s: curve(current data) = %.4g, SOTA = %.4g", s.Name, got, s.CurrentSOTA)
		}
	}
}

func TestDataForErrorRejectsDegenerate(t *testing.T) {
	if _, err := (LearningCurve{Alpha: 1, Beta: 0.1}).DataForError(0.5); err == nil {
		t.Fatal("expected error for positive exponent")
	}
	if _, err := (LearningCurve{Alpha: 1, Beta: -0.1}).DataForError(0); err == nil {
		t.Fatal("expected error for zero target")
	}
}

func TestNormalizedModelCurve(t *testing.T) {
	c := NormalizedModelCurve(0.68, 768e6, 1.03e9)
	if math.Abs(c.Params(768e6)-1.03e9)/1.03e9 > 1e-12 {
		t.Fatalf("anchor violated: %v", c.Params(768e6))
	}
	// 100x data -> 100^0.68 ≈ 23x params.
	scale := c.Params(768e8) / c.Params(768e6)
	if math.Abs(scale-math.Pow(100, 0.68)) > 1e-9 {
		t.Fatalf("scale = %v", scale)
	}
}

func TestSpecsCoverAllDomains(t *testing.T) {
	specs := Specs()
	if len(specs) != 5 {
		t.Fatalf("specs = %d, want 5", len(specs))
	}
	for _, d := range models.AllDomains {
		if _, err := SpecFor(d); err != nil {
			t.Errorf("missing spec for %s", d)
		}
	}
	if _, err := SpecFor(models.Domain("bogus")); err == nil {
		t.Fatal("expected error for unknown domain")
	}
}

func TestProjectionsMatchPaperTable1Shape(t *testing.T) {
	// The computed scales must land in the paper's 33–971x data and
	// 6.6–456x model ranges, preserve the language >> vision/speech
	// ordering, and reproduce word LM / NMT / ResNet scales closely.
	projs, err := ProjectAll()
	if err != nil {
		t.Fatal(err)
	}
	byDomain := map[models.Domain]Projection{}
	for _, p := range projs {
		byDomain[p.Spec.Domain] = p
	}

	within := func(got, want, tol float64) bool {
		return math.Abs(got-want)/want <= tol
	}
	if p := byDomain[models.WordLM]; !within(p.ComputedDataScale, 100, 0.10) {
		t.Errorf("wordlm data scale = %.1f, paper 100", p.ComputedDataScale)
	}
	if p := byDomain[models.NMT]; !within(p.ComputedDataScale, 750, 0.10) {
		t.Errorf("nmt data scale = %.1f, paper 750", p.ComputedDataScale)
	}
	if p := byDomain[models.ImageCl]; !within(p.ComputedDataScale, 81, 0.10) {
		t.Errorf("image data scale = %.1f, paper 81", p.ComputedDataScale)
	}
	if p := byDomain[models.WordLM]; !within(p.ComputedModelScale, 23, 0.15) {
		t.Errorf("wordlm model scale = %.1f, paper 23", p.ComputedModelScale)
	}
	if p := byDomain[models.NMT]; !within(p.ComputedModelScale, 90, 0.15) {
		t.Errorf("nmt model scale = %.1f, paper 90", p.ComputedModelScale)
	}
	// Language domains need far more data than speech/vision.
	if byDomain[models.CharLM].ComputedDataScale <= byDomain[models.ImageCl].ComputedDataScale {
		t.Error("char LM should need more data growth than image classification")
	}
	if byDomain[models.NMT].ComputedDataScale <= byDomain[models.Speech].ComputedDataScale {
		t.Error("NMT should need more data growth than speech")
	}
	// Published-scale consistency: model scale == data scale ^ βp.
	for _, p := range projs {
		want := math.Pow(p.PaperDataScale, p.Spec.BetaP)
		if !within(p.PaperModelScale, want, 0.06) {
			t.Errorf("%s: paper scales inconsistent: %v vs %v^%v",
				p.Spec.Name, p.PaperModelScale, p.PaperDataScale, p.Spec.BetaP)
		}
	}
}

func TestProjectionTargetsMatchTable3(t *testing.T) {
	cases := map[models.Domain]struct{ data, params float64 }{
		models.WordLM:  {77e9, 23.8e9},
		models.CharLM:  {3.4e12, 146e9},
		models.NMT:     {97.4e9, 18.9e9},
		models.Speech:  {14e9, 727e6},
		models.ImageCl: {103e6, 732e6},
	}
	for d, want := range cases {
		spec, err := SpecFor(d)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Project(spec)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.TargetDataSamples-want.data)/want.data > 0.05 {
			t.Errorf("%s: target data %.3g, Table 3 %.3g", d, p.TargetDataSamples, want.data)
		}
		if math.Abs(p.TargetParams-want.params)/want.params > 0.05 {
			t.Errorf("%s: target params %.3g, Table 3 %.3g", d, p.TargetParams, want.params)
		}
	}
}

func TestAccuracyImprovementRange(t *testing.T) {
	// Paper: desired SOTA is 1.4x–3.9x better than current SOTA.
	projs, err := ProjectAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range projs {
		if p.AccuracyImprovement < 1.3 || p.AccuracyImprovement > 4.0 {
			t.Errorf("%s: improvement %.2fx outside the paper's 1.4–3.9x", p.Spec.Name, p.AccuracyImprovement)
		}
	}
}

func TestLearningCurveSeriesRegions(t *testing.T) {
	spec, _ := SpecFor(models.WordLM)
	pts := LearningCurveSeries(spec, 1, 1e15, 4)
	if len(pts) == 0 {
		t.Fatal("empty series")
	}
	seen := map[string]bool{}
	prev := math.Inf(1)
	for _, p := range pts {
		seen[p.Region] = true
		if p.Error > prev+1e-12 {
			t.Fatalf("error increased along the curve at m=%g", p.DataSamples)
		}
		prev = p.Error
		if p.Error > spec.BestGuessError || p.Error < spec.IrreducibleError {
			t.Fatalf("error %v outside [irreducible, best-guess]", p.Error)
		}
	}
	for _, r := range []string{"small-data", "power-law", "irreducible"} {
		if !seen[r] {
			t.Errorf("region %q never sampled", r)
		}
	}
}

func TestLearningCurveSeriesDegenerateInputs(t *testing.T) {
	spec, _ := SpecFor(models.WordLM)
	if pts := LearningCurveSeries(spec, -1, 10, 4); pts != nil {
		t.Fatal("expected nil for negative min")
	}
	if pts := LearningCurveSeries(spec, 10, 5, 4); pts != nil {
		t.Fatal("expected nil for max < min")
	}
}

func TestPropProjectionMonotone(t *testing.T) {
	// Easier targets require less data; projection must be monotone in the
	// desired error.
	spec, _ := SpecFor(models.CharLM)
	f := func(a, b uint8) bool {
		e1 := 0.3 + float64(a%100)/100 // in [0.3, 1.3)
		e2 := 0.3 + float64(b%100)/100
		if e1 == e2 {
			return true
		}
		d1, err1 := spec.Curve.DataForError(e1)
		d2, err2 := spec.Curve.DataForError(e2)
		if err1 != nil || err2 != nil {
			return false
		}
		return (e1 < e2) == (d1 > d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
