package fit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearLeastSquaresExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	l, err := LinearLeastSquares(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Slope-2) > 1e-12 || math.Abs(l.Intercept-1) > 1e-12 {
		t.Fatalf("got slope=%v intercept=%v, want 2, 1", l.Slope, l.Intercept)
	}
	if l.R2 < 0.999999 {
		t.Fatalf("R2 = %v, want ~1", l.R2)
	}
}

func TestLinearLeastSquaresErrors(t *testing.T) {
	if _, err := LinearLeastSquares([]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected too-few-points error")
	}
	if _, err := LinearLeastSquares([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("expected degenerate-x error")
	}
	if _, err := LinearLeastSquares([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected mismatched-length error")
	}
}

func TestProportionalLeastSquares(t *testing.T) {
	xs := []float64{1, 2, 5}
	ys := []float64{3, 6, 15}
	l, err := ProportionalLeastSquares(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Slope-3) > 1e-12 {
		t.Fatalf("slope = %v, want 3", l.Slope)
	}
}

func TestPowerLawFitExact(t *testing.T) {
	// y = 13 * x^-0.066 (the paper's word LM learning curve).
	xs := []float64{1e6, 1e7, 1e8, 1e9}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 13 * math.Pow(x, -0.066)
	}
	p, err := PowerLawFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Alpha-13) > 1e-6 || math.Abs(p.Beta+0.066) > 1e-9 {
		t.Fatalf("got alpha=%v beta=%v", p.Alpha, p.Beta)
	}
	if math.Abs(p.Eval(1e8)-13*math.Pow(1e8, -0.066)) > 1e-9 {
		t.Fatal("Eval mismatch")
	}
}

func TestPowerLawFitRejectsNonPositive(t *testing.T) {
	if _, err := PowerLawFit([]float64{1, -2}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for negative x")
	}
}

func TestTwoTermLeastSquares(t *testing.T) {
	// y = 1755*u + 30784*v, the paper's word-LM bytes/param form.
	us := []float64{1, 2, 3, 4, 5}
	vs := []float64{10, 7, 3, 9, 2}
	ys := make([]float64, len(us))
	for i := range us {
		ys[i] = 1755*us[i] + 30784*vs[i]
	}
	tt, err := TwoTermLeastSquares(us, vs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tt.A-1755) > 1e-6 || math.Abs(tt.B-30784) > 1e-6 {
		t.Fatalf("got A=%v B=%v", tt.A, tt.B)
	}
}

func TestTwoTermCollinear(t *testing.T) {
	if _, err := TwoTermLeastSquares([]float64{1, 2}, []float64{2, 4}, []float64{1, 2}); err == nil {
		t.Fatal("expected collinearity error")
	}
}

func TestAsymptoticSlope(t *testing.T) {
	xs := []float64{1, 10, 100, 1000}
	ys := []float64{500, 5000, 50000, 500000} // slope 500 everywhere
	s, err := AsymptoticSlope(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-500) > 1e-9 {
		t.Fatalf("slope = %v, want 500", s)
	}
}

func TestAsymptoticSlopeIgnoresSmallXCurvature(t *testing.T) {
	// y = 481x + 1e6 (affine): asymptotic slope uses the two largest x.
	xs := []float64{1e6, 1e7, 1e8, 1e9}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 481*x + 1e6
	}
	s, err := AsymptoticSlope(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-481) > 1e-6 {
		t.Fatalf("slope = %v, want 481", s)
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-9 {
		t.Fatalf("root = %v", root)
	}
}

func TestBisectNoBracket(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return x + 10 }, 0, 1, 1e-9); err == nil {
		t.Fatal("expected bracket error")
	}
}

func TestPropLinearFitRecoversLine(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		slope := r.Float64()*100 - 50
		icept := r.Float64()*100 - 50
		xs := make([]float64, 8)
		ys := make([]float64, 8)
		for i := range xs {
			xs[i] = float64(i + 1)
			ys[i] = slope*xs[i] + icept
		}
		l, err := LinearLeastSquares(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(l.Slope-slope) < 1e-6 && math.Abs(l.Intercept-icept) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropPowerLawRecovers(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		alpha := 0.5 + r.Float64()*20
		beta := -0.5 + r.Float64() // in [-0.5, 0.5], the paper's βg range
		xs := []float64{1e3, 1e4, 1e5, 1e6, 1e7}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = alpha * math.Pow(x, beta)
		}
		p, err := PowerLawFit(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(p.Alpha-alpha) < 1e-5*alpha && math.Abs(p.Beta-beta) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
