// Package fit provides the small regression toolkit used by the
// characterization engine: ordinary least-squares linear fits, power-law
// (log-log) fits, and multi-variable linear fits for the paper's
// first-order requirement models (c_t ≈ γ·p, a_t ≈ λ·p + µ·b·√p, f_t ≈ δ·p).
package fit

import (
	"errors"
	"math"
)

// Linear holds y ≈ Slope·x + Intercept.
type Linear struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// ErrTooFewPoints is returned when a fit is requested with fewer points than
// free parameters.
var ErrTooFewPoints = errors.New("fit: too few points")

// LinearLeastSquares fits y ≈ slope·x + intercept by ordinary least squares.
func LinearLeastSquares(xs, ys []float64) (Linear, error) {
	if len(xs) != len(ys) {
		return Linear{}, errors.New("fit: mismatched lengths")
	}
	if len(xs) < 2 {
		return Linear{}, ErrTooFewPoints
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Linear{}, errors.New("fit: degenerate x values")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	return Linear{Slope: slope, Intercept: intercept, R2: r2(xs, ys, func(x float64) float64 {
		return slope*x + intercept
	})}, nil
}

// ProportionalLeastSquares fits y ≈ slope·x (no intercept).
func ProportionalLeastSquares(xs, ys []float64) (Linear, error) {
	if len(xs) != len(ys) {
		return Linear{}, errors.New("fit: mismatched lengths")
	}
	if len(xs) < 1 {
		return Linear{}, ErrTooFewPoints
	}
	var sxx, sxy float64
	for i := range xs {
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	if sxx == 0 {
		return Linear{}, errors.New("fit: degenerate x values")
	}
	slope := sxy / sxx
	return Linear{Slope: slope, R2: r2(xs, ys, func(x float64) float64 { return slope * x })}, nil
}

// PowerLaw holds y ≈ Alpha·x^Beta.
type PowerLaw struct {
	Alpha float64
	Beta  float64
	R2    float64
}

// PowerLawFit fits y ≈ alpha·x^beta via least squares in log-log space.
// All xs and ys must be strictly positive.
func PowerLawFit(xs, ys []float64) (PowerLaw, error) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return PowerLaw{}, errors.New("fit: power-law fit requires positive data")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	lin, err := LinearLeastSquares(lx, ly)
	if err != nil {
		return PowerLaw{}, err
	}
	return PowerLaw{Alpha: math.Exp(lin.Intercept), Beta: lin.Slope, R2: lin.R2}, nil
}

// Eval returns alpha·x^beta.
func (p PowerLaw) Eval(x float64) float64 { return p.Alpha * math.Pow(x, p.Beta) }

// TwoTerm holds y ≈ A·u + B·v, the shape of the paper's memory-access model
// a_t(p, b) = λ·p + µ·b·√p with u = p and v = b·√p.
type TwoTerm struct {
	A  float64
	B  float64
	R2 float64
}

// TwoTermLeastSquares fits y ≈ A·u + B·v by normal equations.
func TwoTermLeastSquares(us, vs, ys []float64) (TwoTerm, error) {
	if len(us) != len(vs) || len(us) != len(ys) {
		return TwoTerm{}, errors.New("fit: mismatched lengths")
	}
	if len(us) < 2 {
		return TwoTerm{}, ErrTooFewPoints
	}
	var suu, svv, suv, suy, svy float64
	for i := range us {
		suu += us[i] * us[i]
		svv += vs[i] * vs[i]
		suv += us[i] * vs[i]
		suy += us[i] * ys[i]
		svy += vs[i] * ys[i]
	}
	den := suu*svv - suv*suv
	if den == 0 {
		return TwoTerm{}, errors.New("fit: collinear regressors")
	}
	a := (suy*svv - svy*suv) / den
	b := (svy*suu - suy*suv) / den
	// R² against the mean of y.
	var my float64
	for _, y := range ys {
		my += y
	}
	my /= float64(len(ys))
	var ssRes, ssTot float64
	for i := range ys {
		pred := a*us[i] + b*vs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - my) * (ys[i] - my)
	}
	r := 1.0
	if ssTot > 0 {
		r = 1 - ssRes/ssTot
	}
	return TwoTerm{A: a, B: b, R2: r}, nil
}

func r2(xs, ys []float64, pred func(float64) float64) float64 {
	var my float64
	for _, y := range ys {
		my += y
	}
	my /= float64(len(ys))
	var ssRes, ssTot float64
	for i := range ys {
		d := ys[i] - pred(xs[i])
		ssRes += d * d
		ssTot += (ys[i] - my) * (ys[i] - my)
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}

// AsymptoticSlope estimates lim x→∞ y/x from the two largest-x samples,
// which is how the characterization engine extracts γ and δ from sweeps.
func AsymptoticSlope(xs, ys []float64) (float64, error) {
	if len(xs) < 2 || len(xs) != len(ys) {
		return 0, ErrTooFewPoints
	}
	// Find indices of the two largest x values.
	i1, i2 := -1, -1
	for i := range xs {
		if i1 == -1 || xs[i] > xs[i1] {
			i2 = i1
			i1 = i
		} else if i2 == -1 || xs[i] > xs[i2] {
			i2 = i
		}
	}
	dx := xs[i1] - xs[i2]
	if dx == 0 {
		return 0, errors.New("fit: duplicate extreme x values")
	}
	return (ys[i1] - ys[i2]) / dx, nil
}

// Bisect finds x in [lo, hi] with f(x) ≈ 0 for a monotone f, to within
// relative tolerance tol. It returns the midpoint after convergence.
func Bisect(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, errors.New("fit: bisection endpoints do not bracket a root")
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		fm := f(mid)
		if fm == 0 || (hi-lo) <= tol*math.Max(math.Abs(mid), 1) {
			return mid, nil
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
