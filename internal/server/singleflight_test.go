package server

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
)

// TestFlightGroupForgetsErrors is the forget-on-error regression test: a
// key whose computation fails transiently must be unregistered before its
// waiters wake, so the next request for that key retries instead of
// replaying the stale error forever.
func TestFlightGroupForgetsErrors(t *testing.T) {
	g := newFlightGroup()
	var calls atomic.Int64
	transient := errors.New("upstream hiccup")

	fn := func() ([]byte, error) {
		if calls.Add(1) == 1 {
			return nil, transient
		}
		return []byte("ok"), nil
	}

	c1, leader := g.do("k", fn)
	if !leader {
		t.Fatal("first caller must lead")
	}
	<-c1.done
	if !errors.Is(c1.err, transient) {
		t.Fatalf("first call err = %v, want transient failure", c1.err)
	}

	c2, leader := g.do("k", fn)
	if !leader {
		t.Fatal("retry after error must start a fresh computation, not join the dead one")
	}
	<-c2.done
	if c2.err != nil || string(c2.val) != "ok" {
		t.Fatalf("retry = (%q, %v), want (ok, nil)", c2.val, c2.err)
	}
	if calls.Load() != 2 {
		t.Fatalf("computation ran %d times, want 2", calls.Load())
	}
}

// TestFlightGroupForgetsPanics: same contract when the computation panics —
// the key unregisters, waiters see the panic as an error, and a retry
// computes afresh.
func TestFlightGroupForgetsPanics(t *testing.T) {
	g := newFlightGroup()
	var calls atomic.Int64
	fn := func() ([]byte, error) {
		if calls.Add(1) == 1 {
			panic("boom")
		}
		return []byte("ok"), nil
	}

	c1, _ := g.do("k", fn)
	<-c1.done
	if !errors.Is(c1.err, errComputePanic) {
		t.Fatalf("panic surfaced as %v, want errComputePanic", c1.err)
	}
	c2, leader := g.do("k", fn)
	if !leader {
		t.Fatal("retry after panic must lead")
	}
	<-c2.done
	if c2.err != nil || string(c2.val) != "ok" {
		t.Fatalf("retry = (%q, %v), want (ok, nil)", c2.val, c2.err)
	}
}

// TestFlightGroupStripesIndependently: concurrent do calls on distinct
// keys each lead their own computation (no false coalescing across
// stripes) and all complete.
func TestFlightGroupStripesIndependently(t *testing.T) {
	g := newFlightGroup()
	var wg sync.WaitGroup
	var leaders atomic.Int64
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("key-%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, leader := g.do(key, func() ([]byte, error) { return []byte(key), nil })
			if leader {
				leaders.Add(1)
			}
			<-c.done
			if string(c.val) != key {
				t.Errorf("key %s got %q", key, c.val)
			}
		}()
	}
	wg.Wait()
	if leaders.Load() != 32 {
		t.Fatalf("%d leaders for 32 distinct keys", leaders.Load())
	}
}

// TestServerRetriesAfterTransientComputeError drives the same contract
// through respondCached: a request whose computation fails transiently
// answers with an error, and the *next* request for the same key
// recomputes and succeeds — nothing stale is cached or coalesced onto.
func TestServerRetriesAfterTransientComputeError(t *testing.T) {
	s := newTestServer(Config{})
	var calls atomic.Int64
	compute := func() (any, error) {
		if calls.Add(1) == 1 {
			return nil, errors.New("transient backend failure")
		}
		return map[string]string{"answer": "42"}, nil
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/analyze", nil)
	rec := httptest.NewRecorder()
	s.respondCached(rec, req, "transient-key", compute)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("failed computation = %d, want 422", rec.Code)
	}

	rec = httptest.NewRecorder()
	s.respondCached(rec, req, "transient-key", compute)
	if rec.Code != http.StatusOK {
		t.Fatalf("retry = %d %s, want 200", rec.Code, rec.Body.String())
	}

	// Third request: the success must have been cached.
	rec = httptest.NewRecorder()
	s.respondCached(rec, req, "transient-key", compute)
	if rec.Code != http.StatusOK {
		t.Fatalf("cached retry = %d, want 200", rec.Code)
	}
	if calls.Load() != 2 {
		t.Fatalf("computation ran %d times, want 2 (fail, succeed, hit)", calls.Load())
	}
}
