package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	cat "catamount"
)

// sharedEngine keeps model build+compile cost to once for the whole test
// binary; individual tests construct their own Servers over it.
var sharedEngine = cat.NewEngine()

func newTestServer(cfg Config) *Server {
	if cfg.Engine == nil {
		cfg.Engine = sharedEngine
	}
	return New(cfg)
}

// errMessage digs the human-readable message out of the v1 error envelope
// {"error": {"code", "message", "request_id"}}.
func errMessage(body map[string]any) string {
	env, _ := body["error"].(map[string]any)
	msg, _ := env["message"].(string)
	return msg
}

func get(t *testing.T, s *Server, path string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	return request(t, s, http.MethodGet, path, nil)
}

func request(t *testing.T, s *Server, method, path string, body []byte) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var decoded map[string]any
	if rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
			// Non-object payloads (arrays) are fine; callers that care decode
			// themselves.
			decoded = nil
		}
	}
	return rec, decoded
}

func TestHealthz(t *testing.T) {
	s := newTestServer(Config{})
	rec, body := get(t, s, "/healthz")
	if rec.Code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz = %d %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
}

func TestDomainsAndAccelerators(t *testing.T) {
	s := newTestServer(Config{})
	rec, body := get(t, s, "/v1/domains")
	if rec.Code != http.StatusOK {
		t.Fatalf("domains = %d %s", rec.Code, rec.Body)
	}
	if n := len(body["domains"].([]any)); n != 5 {
		t.Fatalf("domains = %d, want 5", n)
	}
	rec, body = get(t, s, "/v1/accelerators")
	if rec.Code != http.StatusOK {
		t.Fatalf("accelerators = %d %s", rec.Code, rec.Body)
	}
	accs := body["accelerators"].([]any)
	if len(accs) < 5 {
		t.Fatalf("catalog has %d entries, want >= 5", len(accs))
	}
	first := accs[0].(map[string]any)
	if first["name"] != "target-v100-class" {
		t.Fatalf("catalog[0] = %v", first["name"])
	}
}

func TestAnalyzeAndCacheHit(t *testing.T) {
	s := newTestServer(Config{})
	const path = "/v1/analyze?domain=wordlm&params=1e8&batch=64"
	rec1, body := get(t, s, path)
	if rec1.Code != http.StatusOK {
		t.Fatalf("analyze = %d %s", rec1.Code, rec1.Body)
	}
	req := body["requirements"].(map[string]any)
	if req["params"].(float64) < 0.9e8 || req["params"].(float64) > 1.1e8 {
		t.Fatalf("solved params = %v, want ~1e8", req["params"])
	}
	if body["accelerator"] != "target-v100-class" {
		t.Fatalf("default accelerator = %v", body["accelerator"])
	}
	if body["step_seconds"].(float64) <= 0 {
		t.Fatalf("step_seconds = %v", body["step_seconds"])
	}

	m := s.Metrics()
	if m.CacheMisses != 1 || m.CacheHits != 0 {
		t.Fatalf("after first request: %+v", m)
	}
	rec2, _ := get(t, s, path)
	if rec2.Code != http.StatusOK {
		t.Fatalf("second analyze = %d", rec2.Code)
	}
	if !bytes.Equal(rec1.Body.Bytes(), rec2.Body.Bytes()) {
		t.Fatal("cached response differs from computed one")
	}
	m = s.Metrics()
	if m.CacheMisses != 1 || m.CacheHits != 1 {
		t.Fatalf("after second request: %+v", m)
	}
	if m.CacheEntries != 1 {
		t.Fatalf("cache entries = %d", m.CacheEntries)
	}
}

func TestAnalyzeOnCatalogAccelerator(t *testing.T) {
	s := newTestServer(Config{})
	rec, body := get(t, s, "/v1/analyze?domain=charlm&params=5e7&accel=a100")
	if rec.Code != http.StatusOK {
		t.Fatalf("analyze on a100 = %d %s", rec.Code, rec.Body)
	}
	if body["accelerator"] != "a100-class" {
		t.Fatalf("accelerator = %v", body["accelerator"])
	}
	// Same query on a faster part must not collide in the cache.
	rec2, body2 := get(t, s, "/v1/analyze?domain=charlm&params=5e7&accel=h100")
	if rec2.Code != http.StatusOK {
		t.Fatalf("analyze on h100 = %d", rec2.Code)
	}
	if body2["step_seconds"].(float64) >= body["step_seconds"].(float64) {
		t.Fatalf("h100 step %v not faster than a100 %v",
			body2["step_seconds"], body["step_seconds"])
	}
}

func TestCoalescingOneUpstreamComputation(t *testing.T) {
	const k = 8
	s := newTestServer(Config{MaxInFlight: 2 * k})
	gate := make(chan struct{})
	s.computeHook = func(string) { <-gate }

	var wg sync.WaitGroup
	codes := make([]int, k)
	bodies := make([][]byte, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodGet,
				"/v1/analyze?domain=nmt&params=2e8&batch=32", nil)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			codes[i] = rec.Code
			bodies[i] = rec.Body.Bytes()
		}(i)
	}

	// All K requests target one key on a cold cache: exactly one upstream
	// computation may start, and the other K-1 must coalesce onto it.
	// The hook keeps the computation pinned until every request has joined.
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := s.Metrics()
		if m.CacheMisses == 1 && m.Coalesced == k-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("requests never coalesced: %+v", m)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	for i := 0; i < k; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d = %d %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs", i)
		}
	}
	m := s.Metrics()
	if m.CacheMisses != 1 {
		t.Fatalf("upstream computations = %d, want exactly 1 for %d concurrent requests", m.CacheMisses, k)
	}
	if m.Coalesced != k-1 {
		t.Fatalf("coalesced = %d, want %d", m.Coalesced, k-1)
	}
	// The computation backfilled the cache: one more request is a pure hit.
	rec, _ := get(t, s, "/v1/analyze?domain=nmt&params=2e8&batch=32")
	if rec.Code != http.StatusOK || s.Metrics().CacheHits != 1 {
		t.Fatalf("post-coalesce request: code %d, metrics %+v", rec.Code, s.Metrics())
	}
}

func TestMalformedRequests(t *testing.T) {
	s := newTestServer(Config{})
	cases := []struct {
		name, path string
		want       int
	}{
		{"missing domain", "/v1/analyze?params=1e8", http.StatusBadRequest},
		{"unknown domain", "/v1/analyze?domain=tabular&params=1e8", http.StatusBadRequest},
		{"missing params", "/v1/analyze?domain=wordlm", http.StatusBadRequest},
		{"bad params", "/v1/analyze?domain=wordlm&params=banana", http.StatusBadRequest},
		{"negative params", "/v1/analyze?domain=wordlm&params=-5", http.StatusBadRequest},
		{"bad batch", "/v1/analyze?domain=wordlm&params=1e8&batch=NaN", http.StatusBadRequest},
		{"unknown accel", "/v1/analyze?domain=wordlm&params=1e8&accel=abacus", http.StatusBadRequest},
		{"unknown figure", "/v1/figures/42", http.StatusBadRequest},
		{"figure 6 needs domain", "/v1/figures/6", http.StatusBadRequest},
		{"unknown subbatch policy", "/v1/subbatch?domain=wordlm&policy=vibes", http.StatusBadRequest},
		{"bad tol", "/v1/subbatch?domain=wordlm&tol=-1", http.StatusBadRequest},
		{"unknown path", "/v1/nonsense", http.StatusNotFound},
	}
	for _, tc := range cases {
		rec, body := get(t, s, tc.path)
		if rec.Code != tc.want {
			t.Errorf("%s: code = %d, want %d (%s)", tc.name, rec.Code, tc.want, rec.Body)
			continue
		}
		if tc.want == http.StatusBadRequest && (body == nil || errMessage(body) == "") {
			t.Errorf("%s: missing error envelope: %s", tc.name, rec.Body)
		}
	}
	// Wrong method on a registered pattern.
	rec, _ := request(t, s, http.MethodDelete, "/v1/analyze?domain=wordlm&params=1e8", nil)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE analyze = %d, want 405", rec.Code)
	}
	// None of the malformed requests may have reached the engine or cache.
	if m := s.Metrics(); m.CacheMisses != 0 || m.CacheEntries != 0 {
		t.Fatalf("malformed requests touched the cache: %+v", m)
	}
}

func TestUnservableRequestIs422(t *testing.T) {
	// Valid syntax, impossible request: deterministic compute errors are
	// the client's problem, not a 500.
	s := newTestServer(Config{})
	rec, body := get(t, s, "/v1/analyze?domain=wordlm&params=1e300&batch=64")
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("unreachable params = %d, want 422 (%s)", rec.Code, rec.Body)
	}
	if errMessage(body) == "" {
		t.Fatalf("missing error envelope: %s", rec.Body)
	}
}

func TestSubbatchPolicyAliasesShareCache(t *testing.T) {
	s := newTestServer(Config{})
	for _, p := range []string{"min-time", "min-time-per-sample"} {
		rec, _ := get(t, s, "/v1/subbatch?domain=wordlm&params=1e8&policy="+p)
		if rec.Code != http.StatusOK {
			t.Fatalf("policy %s = %d %s", p, rec.Code, rec.Body)
		}
	}
	if m := s.Metrics(); m.CacheMisses != 1 || m.CacheHits != 1 {
		t.Fatalf("aliased policies did not share a cache entry: %+v", m)
	}
}

func TestCustomAcceleratorUpload(t *testing.T) {
	s := newTestServer(Config{})
	custom := `{"name":"hypothetical-4x","peak_flops":6.268e13,"cache_bytes":2.4e7,
		"mem_bandwidth":3.592e12,"mem_capacity":1.28e11,"interconnect_bw":2.24e11,
		"achievable_compute":0.8,"achievable_mem_bw":0.7}`
	rec, body := request(t, s, http.MethodPost,
		"/v1/analyze?domain=wordlm&params=1e8&batch=64", []byte(custom))
	if rec.Code != http.StatusOK {
		t.Fatalf("custom accel analyze = %d %s", rec.Code, rec.Body)
	}
	if body["accelerator"] != "hypothetical-4x" {
		t.Fatalf("accelerator = %v", body["accelerator"])
	}
	// Invalid custom device is a 4xx, not a NaN-poisoned 200.
	bad := `{"name":"broken","peak_flops":-1,"mem_bandwidth":1e11,"mem_capacity":1e9,
		"achievable_compute":0.8,"achievable_mem_bw":0.7}`
	rec, _ = request(t, s, http.MethodPost,
		"/v1/analyze?domain=wordlm&params=1e8", []byte(bad))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("invalid custom accel = %d, want 400", rec.Code)
	}
}

func TestCacheKeyInjectionViaCustomDeviceName(t *testing.T) {
	// A custom device whose name embeds key separators must not be able to
	// collide with a different request's cache entry. This name, with the
	// target's exact numeric fields, forged the key of the default-target
	// batch=64 query under the old flat key scheme.
	evil := cat.TargetAccelerator()
	evil.Name = "4|" + evil.Name
	body, err := json.Marshal(evil)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(Config{})
	rec, _ := request(t, s, http.MethodPost, "/v1/analyze?domain=wordlm&params=1e8&batch=6", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("poison attempt = %d %s", rec.Code, rec.Body)
	}
	rec, resp := get(t, s, "/v1/analyze?domain=wordlm&params=1e8&batch=64")
	if rec.Code != http.StatusOK {
		t.Fatalf("victim request = %d", rec.Code)
	}
	req := resp["requirements"].(map[string]any)
	if got := req["batch"].(float64); got != 64 {
		t.Fatalf("cache poisoned: batch = %v, want 64", got)
	}
	if resp["accelerator"] != "target-v100-class" {
		t.Fatalf("cache poisoned: accelerator = %v", resp["accelerator"])
	}
	if m := s.Metrics(); m.CacheMisses != 2 || m.CacheHits != 0 {
		t.Fatalf("keys collided: %+v", m)
	}
}

func TestSubbatchEndpoint(t *testing.T) {
	s := newTestServer(Config{})
	rec, body := get(t, s, "/v1/subbatch?domain=wordlm&params=1e8&policy=min-time")
	if rec.Code != http.StatusOK {
		t.Fatalf("subbatch = %d %s", rec.Code, rec.Body)
	}
	chosen := body["chosen"].(map[string]any)
	if _, ok := chosen["min-time-per-sample"]; !ok {
		t.Fatalf("chosen missing policy: %v", chosen)
	}
	if len(body["points"].([]any)) != 19 {
		t.Fatalf("sweep has %d points, want 19 (2^0..2^18)", len(body["points"].([]any)))
	}
}

func TestCheckpointUploadAnalyze(t *testing.T) {
	m, err := cat.Build(cat.WordLM)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cat.SaveCheckpoint(&buf, m); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(Config{})

	// Missing bindings name the free symbols.
	rec, body := request(t, s, http.MethodPost, "/v1/checkpoint/analyze", buf.Bytes())
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unbound checkpoint = %d, want 400 (%s)", rec.Code, rec.Body)
	}
	if msg := errMessage(body); !strings.Contains(msg, m.SizeSymbol) {
		t.Fatalf("error %q does not name symbol %q", msg, m.SizeSymbol)
	}

	path := fmt.Sprintf("/v1/checkpoint/analyze?%s=1024&%s=64", m.SizeSymbol, m.BatchSymbol)
	rec, body = request(t, s, http.MethodPost, path, buf.Bytes())
	if rec.Code != http.StatusOK {
		t.Fatalf("checkpoint analyze = %d %s", rec.Code, rec.Body)
	}
	if body["params"].(float64) <= 0 || body["flops"].(float64) <= 0 {
		t.Fatalf("degenerate characterization: %s", rec.Body)
	}
	if body["footprint_bytes"].(float64) <= 0 {
		t.Fatalf("no footprint: %s", rec.Body)
	}
	// The uploaded graph must characterize like the library path (the
	// library re-solves the size by bisection, so allow its tolerance).
	want, err := cat.AnalyzeModel(m, body["params"].(float64), 64)
	if err != nil {
		t.Fatal(err)
	}
	got := body["flops"].(float64)
	if rel := math.Abs(got-want.FLOPsPerStep) / want.FLOPsPerStep; rel > 1e-6 {
		t.Fatalf("uploaded FLOPs %v != library %v (rel %v)", got, want.FLOPsPerStep, rel)
	}

	// Malformed body.
	rec, _ = request(t, s, http.MethodPost, "/v1/checkpoint/analyze?h=1&b=1", []byte("{nope"))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad checkpoint JSON = %d, want 400", rec.Code)
	}
}

func TestCheckpointSymbolNamedPolicy(t *testing.T) {
	// A graph dimension named "policy" collides with the reserved schedule
	// selector and must bind through the "bind." escape prefix.
	g := `{"version":1,"name":"p","tensors":[
		{"name":"x","kind":"input","dtype":"f32","shape":["policy"]},
		{"name":"y","kind":"activation","dtype":"f32","shape":["policy"]}],
		"nodes":[{"name":"n","op":"unary","attrs":{"fn":"relu","flops":1,"factor":1},
		"inputs":["x"],"outputs":["y"]}]}`
	s := newTestServer(Config{})
	rec, body := request(t, s, http.MethodPost, "/v1/checkpoint/analyze?policy=fifo", []byte(g))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unbound = %d, want 400 (%s)", rec.Code, rec.Body)
	}
	if msg := errMessage(body); !strings.Contains(msg, "bind.policy") {
		t.Fatalf("error %q does not point at the escape prefix", msg)
	}
	rec, body = request(t, s, http.MethodPost,
		"/v1/checkpoint/analyze?policy=fifo&bind.policy=8", []byte(g))
	if rec.Code != http.StatusOK {
		t.Fatalf("escaped binding = %d %s", rec.Code, rec.Body)
	}
	if body["policy"] != "fifo" || body["bindings"].(map[string]any)["policy"].(float64) != 8 {
		t.Fatalf("unexpected payload: %s", rec.Body)
	}
}

func TestHostileCheckpointDoesNotCrashServer(t *testing.T) {
	// A conv2d with one input passes graph validation but panics during
	// cost derivation; the detached goroutine must contain it as a 4xx,
	// not kill the process.
	evil := `{"version":1,"name":"evil","tensors":[
		{"name":"x","kind":"input","dtype":"f32","shape":["1","1","4","4"]},
		{"name":"y","kind":"activation","dtype":"f32","shape":["1","1","4","4"]}],
		"nodes":[{"name":"c","op":"conv2d","attrs":{"strideH":1,"strideW":1},
		"inputs":["x"],"outputs":["y"]}]}`
	s := newTestServer(Config{})
	rec, body := request(t, s, http.MethodPost, "/v1/checkpoint/analyze", []byte(evil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("hostile checkpoint = %d, want 400 (%s)", rec.Code, rec.Body)
	}
	if msg := errMessage(body); !strings.Contains(msg, "invalid checkpoint graph") {
		t.Fatalf("error envelope %q", msg)
	}
	// The server is still alive and serving.
	if rec, _ := get(t, s, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz after hostile upload = %d", rec.Code)
	}
}

func TestComputePanicContained(t *testing.T) {
	s := newTestServer(Config{})
	s.computeHook = func(string) { panic("boom") }
	rec, body := get(t, s, "/v1/analyze?domain=wordlm&params=1e8&batch=64")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking compute = %d, want 500 (%s)", rec.Code, rec.Body)
	}
	if msg := errMessage(body); !strings.Contains(msg, "internal computation failure") {
		t.Fatalf("error envelope %q", msg)
	}
	// The flight key was unregistered and the process survived: the same
	// request succeeds once the fault is gone.
	s.computeHook = nil
	rec, _ = get(t, s, "/v1/analyze?domain=wordlm&params=1e8&batch=64")
	if rec.Code != http.StatusOK {
		t.Fatalf("request after contained panic = %d %s", rec.Code, rec.Body)
	}
}

func TestLRUEviction(t *testing.T) {
	s := newTestServer(Config{CacheEntries: 2})
	paths := []string{
		"/v1/analyze?domain=wordlm&params=1e8&batch=64",
		"/v1/analyze?domain=wordlm&params=2e8&batch=64",
		"/v1/analyze?domain=wordlm&params=3e8&batch=64",
	}
	for _, p := range paths {
		if rec, _ := get(t, s, p); rec.Code != http.StatusOK {
			t.Fatalf("%s = %d", p, rec.Code)
		}
	}
	m := s.Metrics()
	if m.CacheEntries != 2 {
		t.Fatalf("cache entries = %d, want bounded at 2", m.CacheEntries)
	}
	// Oldest was evicted: re-requesting it computes again.
	get(t, s, paths[0])
	if m := s.Metrics(); m.CacheMisses != 4 {
		t.Fatalf("misses = %d, want 4 (evicted entry recomputed)", m.CacheMisses)
	}
}

func TestRequestTimeout(t *testing.T) {
	s := newTestServer(Config{Timeout: 50 * time.Millisecond})
	release := make(chan struct{})
	s.computeHook = func(string) { <-release }
	defer close(release)

	rec, _ := get(t, s, "/v1/analyze?domain=speech&params=1e8&batch=16")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("slow request = %d, want 504", rec.Code)
	}
	if m := s.Metrics(); m.Timeouts != 1 {
		t.Fatalf("timeouts = %d", m.Timeouts)
	}
}

func TestConcurrencyLimiterRejects(t *testing.T) {
	s := newTestServer(Config{MaxInFlight: 1, Timeout: 10 * time.Second})
	release := make(chan struct{})
	s.computeHook = func(string) { <-release }

	var wg sync.WaitGroup
	first := httptest.NewRecorder()
	wg.Add(1)
	go func() {
		defer wg.Done()
		req := httptest.NewRequest(http.MethodGet, "/v1/analyze?domain=image&params=6e7&batch=32", nil)
		s.ServeHTTP(first, req)
	}()
	// Wait until the first request holds the only slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.inFlight.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	// A different key cannot coalesce and must be shed at the limiter —
	// while probes stay reachable.
	rec, _ := get(t, s, "/v1/analyze?domain=image&params=7e7&batch=32")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity request = %d, want 503", rec.Code)
	}
	if m := s.Metrics(); m.Rejected != 1 {
		t.Fatalf("rejected = %d", m.Rejected)
	}
	if hrec, _ := get(t, s, "/healthz"); hrec.Code != http.StatusOK {
		t.Fatalf("healthz during saturation = %d, want 200", hrec.Code)
	}
	close(release)
	wg.Wait()
	if first.Code != http.StatusOK {
		t.Fatalf("admitted request = %d %s", first.Code, first.Body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(Config{})
	get(t, s, "/v1/analyze?domain=wordlm&params=1e8&batch=64")
	get(t, s, "/v1/analyze?domain=wordlm&params=1e8&batch=64")
	rec, body := get(t, s, "/metrics.json")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	if body["cache_hits"].(float64) != 1 || body["cache_misses"].(float64) != 1 {
		t.Fatalf("metrics payload: %s", rec.Body)
	}
	if body["max_in_flight"].(float64) <= 0 || body["cache_limit"].(float64) != 1024 {
		t.Fatalf("limits missing from metrics: %s", rec.Body)
	}
}

func TestFigureEndpoints(t *testing.T) {
	if testing.Short() {
		// Figure sweeps span every domain; keep the short suite fast and
		// exercise only the cheap curve endpoint.
		s := newTestServer(Config{})
		rec, _ := get(t, s, "/v1/figures/curve?domain=wordlm")
		if rec.Code != http.StatusOK {
			t.Fatalf("figure curve = %d %s", rec.Code, rec.Body)
		}
		return
	}
	s := newTestServer(Config{})
	for _, fig := range []string{"curve?domain=wordlm", "subbatch", "dataparallel", "subbatch?accel=h100"} {
		rec, _ := get(t, s, "/v1/figures/"+fig)
		if rec.Code != http.StatusOK {
			t.Fatalf("figure %s = %d %s", fig, rec.Code, rec.Body)
		}
	}
}
