package server

import (
	"bytes"
	"net/http"
	"runtime/debug"
	"sync"

	"catamount/internal/costmodel"
	"catamount/internal/obs"
)

// This file is the Prometheus side of the serving metrics: GET /metrics
// renders (1) the serving counters, captured through the same consistent
// snapshot path the JSON view uses, (2) the per-endpoint request-duration
// histograms and response-byte counters from the server's own registry,
// and (3) the engine stage-latency histograms from obs.Default — so one
// scrape decomposes a sweep request into model build, characterize-batch,
// footprint, per-backend step-time and chunk latency.

// Family names for the per-endpoint series, shared with New's route
// registration.
const (
	reqDurationMetric = "catamount_http_request_duration_seconds"
	respBytesMetric   = "catamount_http_response_bytes_total"
)

// expositionContentType is the Prometheus text format version we emit.
const expositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// writePrometheus renders the full exposition. The snapshot counters are
// loaded into a scratch registry so every family funnels through the one
// text writer (one grammar implementation, one escaping path) instead of a
// second hand-rolled renderer.
func (s *Server) writePrometheus(w http.ResponseWriter) {
	c := s.snapshot()
	scratch := obs.NewRegistry()
	add := func(name, help string, v int64, labels ...obs.Label) {
		scratch.Counter(name, help, labels...).Add(v)
	}
	add("catamount_http_requests_total", "Requests received, all endpoints.", c.requests)
	add("catamount_cache_hits_total", "Response cache hits.", c.hits)
	add("catamount_cache_misses_total", "Response cache misses (upstream computations started).", c.misses)
	add("catamount_cache_evictions_total", "Response cache entries evicted, all shards.", c.cacheEvictions)
	add("catamount_coalesced_total", "Requests coalesced into an in-flight computation.", c.coalesced)
	add("catamount_rejected_total", "Requests shed by the concurrency limiter.", c.rejected)
	add("catamount_timeouts_total", "Requests that exceeded their deadline.", c.timeouts)
	add("catamount_sweep_streams_total", "POST /v1/sweep runs admitted.", c.sweepStreams)
	add("catamount_sweep_points_total", "Sweep grid points streamed out.", c.sweepPoints)
	add("catamount_plan_runs_total", "Planner searches computed (cache misses).", c.planRuns)
	add("catamount_plan_plans_total", "Candidate plans evaluated by those searches.", c.planPlans)
	add("catamount_costmodel_requests_total", "Requests served per step-time backend.",
		c.cmGraph, obs.Label{Name: "backend", Value: costmodel.GraphName})
	add("catamount_costmodel_requests_total", "Requests served per step-time backend.",
		c.cmPerop, obs.Label{Name: "backend", Value: costmodel.PerOpName})

	var buf bytes.Buffer
	scratch.WritePrometheus(&buf)
	s.reg.WritePrometheus(&buf)
	obs.Default.WritePrometheus(&buf)
	w.Header().Set("Content-Type", expositionContentType)
	w.Write(buf.Bytes())
}

// buildRevision reads the VCS revision stamped into the binary, once.
var buildRevision = sync.OnceValues(func() (string, bool) {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "", false
	}
	var rev string
	var modified bool
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value == "true"
		}
	}
	return rev, modified
})
