package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postSweep(t *testing.T, s *Server, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

type sweepLine struct {
	Seq          int     `json:"seq"`
	Domain       string  `json:"domain"`
	Accelerator  string  `json:"accelerator"`
	ParamTarget  float64 `json:"param_target"`
	Subbatch     float64 `json:"subbatch"`
	Params       float64 `json:"params"`
	FLOPsPerStep float64 `json:"flops_per_step"`
	StepSeconds  float64 `json:"step_seconds"`
	Error        string  `json:"error"`
}

func decodeNDJSON(t *testing.T, body *bytes.Buffer) []sweepLine {
	t.Helper()
	var out []sweepLine
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var l sweepLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("line %d is not JSON: %v: %s", len(out), err, sc.Text())
		}
		out = append(out, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSweepStreamNDJSON(t *testing.T) {
	s := newTestServer(Config{})
	rec := postSweep(t, s, `{
		"domains": ["wordlm", "nmt"],
		"params": [1e8, 2e8],
		"subbatches": [64],
		"accelerators": ["v100", "a100"]
	}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep = %d %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	lines := decodeNDJSON(t, rec.Body)
	if len(lines) != 2*2*1*2 {
		t.Fatalf("streamed %d lines, want 8", len(lines))
	}
	for i, l := range lines {
		if l.Seq != i {
			t.Fatalf("line %d has seq %d: order not deterministic", i, l.Seq)
		}
		if l.Error != "" || l.FLOPsPerStep <= 0 || l.StepSeconds <= 0 {
			t.Fatalf("line %d degenerate: %+v", i, l)
		}
	}
	// Flush-per-chunk: the recorder saw at least one explicit flush.
	if !rec.Flushed {
		t.Fatal("stream was never flushed")
	}
	m := s.Metrics()
	if m.SweepStreams != 1 || m.SweepPoints != 8 {
		t.Fatalf("sweep counters: %+v", m)
	}
	// Streams bypass the response cache.
	if m.CacheEntries != 0 || m.CacheMisses != 0 {
		t.Fatalf("sweep touched the cache: %+v", m)
	}
}

func TestSweepStreamCSV(t *testing.T) {
	s := newTestServer(Config{})
	rec := postSweep(t, s, `{"domains":["wordlm"],"params":[1e8]}`,
		map[string]string{"Accept": "text/csv"})
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep = %d %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/csv" {
		t.Fatalf("content type %q", ct)
	}
	records, err := csv.NewReader(rec.Body).ReadAll()
	if err != nil {
		t.Fatalf("body is not CSV: %v", err)
	}
	if len(records) != 2 {
		t.Fatalf("%d CSV records, want header + 1 row", len(records))
	}
	if records[0][0] != "seq" || records[1][1] != "wordlm" {
		t.Fatalf("unexpected CSV: %v", records)
	}
}

func TestSweepMalformedSpecs(t *testing.T) {
	s := newTestServer(Config{MaxSweepPoints: 100})
	cases := []struct {
		name, body string
		wantSub    string
	}{
		{"not json", `{nope`, "invalid sweep spec"},
		{"unknown field", `{"parms": [1e8]}`, "unknown field"},
		{"no params", `{"domains": ["wordlm"]}`, "needs params"},
		{"unknown domain", `{"domains": ["tabular"], "params": [1e8]}`, "unknown domain"},
		{"unknown accelerator", `{"params": [1e8], "accelerators": ["abacus"]}`, "unknown accelerator"},
		{"negative params", `{"params": [-1]}`, "positive finite"},
		{"grid too large", `{"params": [1e8,2e8,3e8,4e8,5e8], "subbatches":[1,2,4,8,16]}`, "server limit"},
	}
	for _, tc := range cases {
		rec := postSweep(t, s, tc.body, nil)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: code = %d, want 400 (%s)", tc.name, rec.Code, rec.Body)
			continue
		}
		var env struct {
			Error struct {
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || !strings.Contains(env.Error.Message, tc.wantSub) {
			t.Errorf("%s: error envelope %q missing %q", tc.name, rec.Body, tc.wantSub)
		}
	}
	// Nothing was admitted as a stream.
	if m := s.Metrics(); m.SweepStreams != 0 || m.SweepPoints != 0 {
		t.Fatalf("malformed specs started streams: %+v", m)
	}
	// Wrong method on the pattern.
	req := httptest.NewRequest(http.MethodGet, "/v1/sweep", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/sweep = %d, want 405", rec.Code)
	}
}

func TestSweepPerPointErrorsKeepStreaming(t *testing.T) {
	// One unreachable parameter target must fail its own points and leave
	// the rest of the stream intact — error-per-point, not fail-the-grid.
	s := newTestServer(Config{})
	rec := postSweep(t, s, `{
		"domains": ["wordlm", "charlm"],
		"params": [1e8, 1e300],
		"accelerators": ["v100", "h100"]
	}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep = %d %s", rec.Code, rec.Body)
	}
	lines := decodeNDJSON(t, rec.Body)
	if len(lines) != 2*2*1*2 {
		t.Fatalf("stream truncated: %d lines, want 8", len(lines))
	}
	var failed, healthy int
	for _, l := range lines {
		switch {
		case l.ParamTarget == 1e300:
			if l.Error == "" {
				t.Fatalf("unreachable point %d has no error: %+v", l.Seq, l)
			}
			failed++
		default:
			if l.Error != "" {
				t.Fatalf("healthy point %d failed: %s", l.Seq, l.Error)
			}
			healthy++
		}
	}
	if failed != 4 || healthy != 4 {
		t.Fatalf("failed=%d healthy=%d, want 4 and 4", failed, healthy)
	}
}

// disconnectingWriter simulates a client that drops mid-stream: after
// `after` successful writes it cancels the request context and fails every
// subsequent write, as net/http does once the peer is gone.
type disconnectingWriter struct {
	h      http.Header
	writes int
	after  int
	cancel context.CancelFunc
	gone   bool
}

func (d *disconnectingWriter) Header() http.Header { return d.h }
func (d *disconnectingWriter) WriteHeader(int)     {}
func (d *disconnectingWriter) Flush()              {}
func (d *disconnectingWriter) Write(b []byte) (int, error) {
	if d.gone {
		return 0, errors.New("write on closed connection")
	}
	d.writes++
	if d.writes >= d.after {
		d.gone = true
		d.cancel()
	}
	return len(b), nil
}

func TestSweepClientDisconnectMidStream(t *testing.T) {
	s := newTestServer(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &disconnectingWriter{h: make(http.Header), after: 3, cancel: cancel}
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(
		`{"params": [5e7, 1e8, 2e8], "subbatches": [16, 32, 64, 128]}`)).WithContext(ctx)

	// ServeHTTP must return instead of hanging once the client is gone.
	s.ServeHTTP(w, req)

	total := int64(5 * 3 * 4 * 1)
	if pts := s.Metrics().SweepPoints; pts >= total {
		t.Fatalf("streamed all %d points to a disconnected client", pts)
	}
	// The server survived and still serves.
	if rec, _ := get(t, s, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz after disconnect = %d", rec.Code)
	}
	// The stream's compute-semaphore token was released: a follow-up sweep
	// still streams to completion.
	rec := postSweep(t, s, `{"domains":["wordlm"],"params":[1e8]}`, nil)
	if rec.Code != http.StatusOK || len(decodeNDJSON(t, rec.Body)) != 1 {
		t.Fatalf("sweep after disconnect = %d %s", rec.Code, rec.Body)
	}
}
