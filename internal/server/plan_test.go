package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"
)

// waitFor polls cond until it holds or a 10s deadline expires.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

// planBody is a small, fast search reused across the endpoint tests.
func planBody(t *testing.T) []byte {
	t.Helper()
	b, err := json.Marshal(map[string]any{
		"domain":        "wordlm",
		"accelerators":  []string{"v100", "cpu"},
		"subbatches":    []float64{32},
		"worker_counts": []int{1, 16, 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestPlanEndpoint(t *testing.T) {
	s := newTestServer(Config{})
	rec, body := request(t, s, http.MethodPost, "/v1/plan", planBody(t))
	if rec.Code != http.StatusOK {
		t.Fatalf("plan = %d %s", rec.Code, rec.Body)
	}
	target := body["target"].(map[string]any)
	if target["target_err"].(float64) != 2.48 {
		t.Fatalf("resolved target err = %v, want the Table 1 desired SOTA 2.48", target["target_err"])
	}
	plans := body["plans"].([]any)
	if len(plans) != 2*1*3*3 {
		t.Fatalf("plans = %d, want 18", len(plans))
	}
	if body["frontier"] == nil {
		t.Fatal("missing frontier")
	}
	if len(body["frontier"].([]any)) == 0 {
		t.Fatal("empty frontier")
	}

	// Cache parity with the point endpoints: a repeat is a byte-identical
	// cache hit, and plan_runs does not advance.
	m1 := s.Metrics()
	if m1.PlanRuns != 1 || m1.PlanPlans != 18 {
		t.Fatalf("after first plan: runs=%d plans=%d", m1.PlanRuns, m1.PlanPlans)
	}
	rec2, _ := request(t, s, http.MethodPost, "/v1/plan", planBody(t))
	if rec2.Code != http.StatusOK {
		t.Fatalf("second plan = %d", rec2.Code)
	}
	if !bytes.Equal(rec.Body.Bytes(), rec2.Body.Bytes()) {
		t.Fatal("cached plan response differs from the original")
	}
	m2 := s.Metrics()
	if m2.PlanRuns != 1 || m2.CacheHits != m1.CacheHits+1 {
		t.Fatalf("repeat plan recomputed: %+v", m2)
	}
}

func TestPlanCoalescesConcurrentSearches(t *testing.T) {
	s := newTestServer(Config{Engine: nil, MaxInFlight: 64})
	gate := make(chan struct{})
	s.computeHook = func(string) { <-gate }

	const k = 8
	codes := make([]int, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec, _ := request(t, s, http.MethodPost, "/v1/plan", planBody(t))
			codes[i] = rec.Code
		}(i)
	}
	// Wait until every request joined the flight, then release the leader.
	waitFor(t, func() bool {
		m := s.Metrics()
		return m.CacheMisses == 1 && m.Coalesced == k-1
	})
	close(gate)
	wg.Wait()

	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d = %d", i, code)
		}
	}
	m := s.Metrics()
	if m.PlanRuns != 1 {
		t.Fatalf("plan_runs = %d, want 1 (single-flighted)", m.PlanRuns)
	}
	if m.Coalesced != k-1 {
		t.Fatalf("coalesced = %d, want %d", m.Coalesced, k-1)
	}
}

func TestPlanSpecValidation(t *testing.T) {
	s := newTestServer(Config{})
	for name, body := range map[string]string{
		"malformed json":  `{`,
		"unknown field":   `{"domain":"wordlm","flux_capacitors":3}`,
		"unknown domain":  `{"domain":"tabular"}`,
		"bad target":      `{"domain":"wordlm","target_err":0.5}`,
		"bad worker":      `{"domain":"wordlm","worker_counts":[0]}`,
		"bad accelerator": `{"domain":"wordlm","accelerators":["abacus"]}`,
	} {
		rec, _ := request(t, s, http.MethodPost, "/v1/plan", []byte(body))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, rec.Code)
		}
	}

	// Oversized searches are rejected up front, like oversized sweeps.
	small := newTestServer(Config{MaxSweepPoints: 10})
	rec, _ := request(t, small, http.MethodPost, "/v1/plan", planBody(t))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("oversized search = %d, want 400", rec.Code)
	}
	if m := small.Metrics(); m.PlanRuns != 0 {
		t.Fatalf("oversized search still ran: %+v", m)
	}
}

func TestAcceleratorsIncludeAliasesAndPricing(t *testing.T) {
	s := newTestServer(Config{})
	rec, body := get(t, s, "/v1/accelerators")
	if rec.Code != http.StatusOK {
		t.Fatalf("accelerators = %d %s", rec.Code, rec.Body)
	}
	aliases := body["aliases"].(map[string]any)
	if aliases["v100"] != "target-v100-class" {
		t.Fatalf("aliases missing v100: %v", aliases)
	}
	for _, raw := range body["accelerators"].([]any) {
		acc := raw.(map[string]any)
		if acc["cost_per_hour_usd"].(float64) <= 0 {
			t.Errorf("catalog entry %v unpriced", acc["name"])
		}
		if acc["tdp_watts"].(float64) <= 0 {
			t.Errorf("catalog entry %v missing TDP", acc["name"])
		}
	}
}
