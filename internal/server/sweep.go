package server

import (
	"catamount/internal/api"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"time"

	"catamount/internal/sweep"
)

// sweepWriteTimeout bounds each chunk write of a sweep stream: a healthy
// client acknowledges within this window even across slow links, while a
// vanished one turns into a write error that releases the stream's
// compute token.
const sweepWriteTimeout = 15 * time.Second

// This file is the bulk-sweep endpoint: POST /v1/sweep takes a SweepSpec
// JSON body and streams the grid back as NDJSON (or CSV via Accept:
// text/csv), one point per line, flushed per chunk so clients see results
// as cells complete. Streams bypass the response cache and single-flight
// group — the key space is the body and the value is unbounded — but hold
// one compute-semaphore token for their whole run, so sweeps and point
// queries share the same upstream concurrency budget.

// handleSweep validates the spec (every validation failure is a 400 before
// any byte of the stream is written), then streams the grid. Per-point
// failures ride inside their points without truncating the stream; a
// run-level failure after streaming has begun is appended as a final
// `{"error": ...}` line (NDJSON) or error-column row (CSV), since the
// status line is already on the wire.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var spec sweep.Spec
	if err := api.DecodeJSON(w, r.Body, 1<<20, &spec); err != nil {
		apiError(w, r, http.StatusBadRequest, "invalid sweep spec: "+err.Error())
		return
	}
	// The "costmodel" query parameter wins over the spec field — the one
	// precedence rule, owned by internal/api.
	api.OverrideCostModel(&spec.CostModel, r.URL.Query().Get("costmodel"))
	// A stream is admitted as one compute-semaphore token, so its worker
	// pool must stay one machine share wide: the spec's workers knob may
	// shrink the pool but never exceed GOMAXPROCS, or K admitted streams
	// would fan out to 4·K·GOMAXPROCS goroutines and starve every other
	// token holder.
	if spec.Workers <= 0 || spec.Workers > runtime.GOMAXPROCS(0) {
		spec.Workers = runtime.GOMAXPROCS(0)
	}
	runner, err := sweep.New(s.eng, spec)
	if err != nil {
		apiError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	if n := runner.Points(); n > s.maxSweepPoints {
		// The limit guards the serving process, not the analysis: huge
		// grids belong on cmd/sweep, where no request deadline applies.
		apiError(w, r, http.StatusBadRequest, fmt.Sprintf(
			"sweep grid has %d points, server limit is %d (split the grid or use cmd/sweep)",
			n, s.maxSweepPoints))
		return
	}
	// Metered only once the grid is admitted: rejected requests must not
	// inflate the per-backend served counters.
	s.countCostModel(runner.CostModel())

	select {
	case s.computeSem <- struct{}{}:
	case <-r.Context().Done():
		s.timeouts.Add(1)
		apiError(w, r, http.StatusGatewayTimeout, "request deadline exceeded")
		return
	}
	defer func() { <-s.computeSem }()
	s.sweepStreams.Add(1)

	asCSV := wantsCSV(r.Header.Get("Accept"))
	if asCSV {
		w.Header().Set("Content-Type", "text/csv")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	flusher, _ := w.(http.Flusher)
	// Per-chunk write deadlines (best-effort: recorders don't support
	// them) keep a stalled reader from pinning this stream's compute
	// token forever: the request context cancels the workers, but only a
	// deadline can unblock a Write stuck on a full socket buffer. The
	// deadline rolls forward with each chunk and is cleared on exit so a
	// kept-alive connection starts its next request clean.
	rc := http.NewResponseController(w)
	armWriteDeadline := func() {
		_ = rc.SetWriteDeadline(time.Now().Add(sweepWriteTimeout))
	}
	defer func() { _ = rc.SetWriteDeadline(time.Time{}) }()
	enc := sweep.NewLineEncoder(w)
	streaming := false
	if asCSV {
		armWriteDeadline()
		if err := enc.CSVHeader(); err != nil {
			return
		}
		streaming = true
		if flusher != nil {
			flusher.Flush()
		}
	}

	runErr := runner.Run(r.Context(), func(p sweep.Point) error {
		armWriteDeadline()
		var werr error
		if asCSV {
			werr = enc.CSVRecord(p)
		} else {
			werr = enc.NDJSON(p)
		}
		if werr != nil {
			return werr
		}
		streaming = true
		s.sweepPoints.Add(1)
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if runErr == nil {
		return
	}
	if errors.Is(runErr, r.Context().Err()) && r.Context().Err() != nil {
		s.timeouts.Add(1)
	}
	if !streaming {
		// Nothing on the wire yet: a clean error response is still possible.
		apiError(w, r, http.StatusGatewayTimeout, runErr.Error())
		return
	}
	// Mid-stream: the status is committed, so append the error in-band. A
	// disconnected client never sees it; a deadline-hit one does.
	armWriteDeadline()
	if asCSV {
		enc.CSVRecord(sweep.Point{Seq: -1, Error: runErr.Error()})
	} else {
		enc.NDJSON(sweep.Point{Seq: -1, Error: runErr.Error()})
	}
}

// wantsCSV reports whether the Accept header prefers CSV over the NDJSON
// default. A full content-negotiation parse is overkill for two formats.
func wantsCSV(accept string) bool {
	return strings.Contains(accept, "text/csv")
}
