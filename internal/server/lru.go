package server

import (
	"container/list"
	"sync"
)

// lruCache is the original single-mutex LRU response cache, kept as the
// reference implementation: the sharded-cache property tests use it as the
// behavioral oracle, and the serve bench harness measures the sharded
// cache's lock-scaling ratio against a single-lock configuration. The
// serving hot path itself runs on shard.LRU (see server.go), whose
// single-shard configuration reproduces exactly this cache's observable
// behavior.
type lruCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recent
	items    map[string]*list.Element
}

type lruEntry struct {
	key string
	val []byte
}

func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// get returns the cached payload and refreshes its recency.
func (c *lruCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// add inserts (or refreshes) a payload, evicting the least-recently-used
// entry beyond capacity.
func (c *lruCache) add(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// len reports the live entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
