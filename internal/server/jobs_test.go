package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"

	"catamount/internal/api"
)

// jobSweepBody is an 8-point grid shared by the lifecycle tests; identical
// to a spec the synchronous /v1/sweep tests use, so job output can be
// compared against the streaming endpoint byte for byte.
const jobSweepBody = `{"type": "sweep", "sweep": {
	"domains": ["wordlm", "nmt"],
	"params": [1e8, 2e8],
	"subbatches": [64],
	"accelerators": ["v100", "a100"]
}}`

// jobRequest performs one request against the server and decodes the JSON
// object body (nil when the body is not a JSON object).
func jobRequest(t *testing.T, s *Server, method, path, body string, hdr map[string]string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var decoded map[string]any
	if rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
			decoded = nil
		}
	}
	return rec, decoded
}

// waitJobState polls GET /v1/jobs/{id} until the job reaches state, failing
// the test on timeout or a terminal detour.
func waitJobState(t *testing.T, s *Server, id, state string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		rec, body := get(t, s, "/v1/jobs/"+id)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s = %d %s", id, rec.Code, rec.Body)
		}
		if body["state"] == state {
			return body
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q", id, state)
	return nil
}

func TestJobLifecycle(t *testing.T) {
	s := newTestServer(Config{})
	defer s.Close()

	// Submit: 202, Location header, queued-or-beyond status body.
	rec, body := jobRequest(t, s, http.MethodPost, "/v1/jobs", jobSweepBody, nil)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d %s", rec.Code, rec.Body)
	}
	id, _ := body["id"].(string)
	if id == "" {
		t.Fatalf("submit body has no id: %s", rec.Body)
	}
	if loc := rec.Header().Get("Location"); loc != "/v1/jobs/"+id {
		t.Fatalf("Location = %q", loc)
	}
	if body["total_points"].(float64) != 8 {
		t.Fatalf("total_points = %v, want 8", body["total_points"])
	}

	// List includes it.
	rec, body = get(t, s, "/v1/jobs")
	if rec.Code != http.StatusOK || body["count"].(float64) < 1 {
		t.Fatalf("list = %d %s", rec.Code, rec.Body)
	}

	final := waitJobState(t, s, id, "succeeded")
	if final["progress"].(float64) != 1 || final["done_points"].(float64) != 8 {
		t.Fatalf("final status = %v", final)
	}

	// The job's NDJSON results are byte-identical to the synchronous
	// streaming endpoint fed the same spec.
	sweepRec := postSweep(t, s, `{
		"domains": ["wordlm", "nmt"],
		"params": [1e8, 2e8],
		"subbatches": [64],
		"accelerators": ["v100", "a100"]
	}`, nil)
	if sweepRec.Code != http.StatusOK {
		t.Fatalf("sync sweep = %d", sweepRec.Code)
	}
	resRec, _ := jobRequest(t, s, http.MethodGet, "/v1/jobs/"+id+"/results", "", nil)
	if resRec.Code != http.StatusOK {
		t.Fatalf("results = %d %s", resRec.Code, resRec.Body)
	}
	if ct := resRec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results content type = %q", ct)
	}
	if !bytes.Equal(resRec.Body.Bytes(), sweepRec.Body.Bytes()) {
		t.Fatalf("job results differ from synchronous sweep stream:\njob:  %q\nsync: %q", resRec.Body, sweepRec.Body)
	}
	if resRec.Header().Get("X-Job-State") != "succeeded" ||
		resRec.Header().Get("X-Total-Points") != "8" ||
		resRec.Header().Get("X-Done-Points") != "8" {
		t.Fatalf("results headers = %v", resRec.Header())
	}
	// A fully-served page of a terminal job has no next cursor.
	if c := resRec.Header().Get("X-Next-Cursor"); c != "" {
		t.Fatalf("complete terminal page still advertises cursor %q", c)
	}

	// Pagination: limit=3 pages chained by X-Next-Cursor reproduce the
	// stream, and the last page stops advertising a cursor.
	var paged bytes.Buffer
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > 8 {
			t.Fatal("pagination never terminated")
		}
		url := "/v1/jobs/" + id + "/results?limit=3"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		pr, _ := jobRequest(t, s, http.MethodGet, url, "", nil)
		if pr.Code != http.StatusOK {
			t.Fatalf("page = %d %s", pr.Code, pr.Body)
		}
		paged.Write(pr.Body.Bytes())
		cursor = pr.Header().Get("X-Next-Cursor")
		if cursor == "" {
			break
		}
	}
	if !bytes.Equal(paged.Bytes(), sweepRec.Body.Bytes()) {
		t.Fatal("concatenated pages differ from the synchronous stream")
	}

	// ETag: replaying a page with If-None-Match answers 304 with no body.
	pr, _ := jobRequest(t, s, http.MethodGet, "/v1/jobs/"+id+"/results?limit=3", "", nil)
	etag := pr.Header().Get("ETag")
	if etag == "" {
		t.Fatal("results page has no ETag")
	}
	pr304, _ := jobRequest(t, s, http.MethodGet, "/v1/jobs/"+id+"/results?limit=3", "",
		map[string]string{"If-None-Match": etag})
	if pr304.Code != http.StatusNotModified || pr304.Body.Len() != 0 {
		t.Fatalf("If-None-Match replay = %d with %d body bytes, want 304 empty", pr304.Code, pr304.Body.Len())
	}

	// format=json envelope.
	jr, jbody := jobRequest(t, s, http.MethodGet, "/v1/jobs/"+id+"/results?format=json&limit=5", "", nil)
	if jr.Code != http.StatusOK {
		t.Fatalf("json page = %d", jr.Code)
	}
	pts := jbody["points"].([]any)
	if len(pts) != 5 || jbody["next_cursor"].(string) == "" {
		t.Fatalf("json page = %v", jbody)
	}

	// format=csv: header row plus one record per point.
	cr, _ := jobRequest(t, s, http.MethodGet, "/v1/jobs/"+id+"/results?format=csv", "", nil)
	if cr.Code != http.StatusOK || cr.Header().Get("Content-Type") != "text/csv" {
		t.Fatalf("csv page = %d %q", cr.Code, cr.Header().Get("Content-Type"))
	}
	if n := strings.Count(cr.Body.String(), "\n"); n != 9 {
		t.Fatalf("csv has %d lines, want header + 8 records", n)
	}

	// DELETE a terminal job removes it; the ID then 404s.
	dr, dbody := jobRequest(t, s, http.MethodDelete, "/v1/jobs/"+id, "", nil)
	if dr.Code != http.StatusOK || dbody["deleted"] != true {
		t.Fatalf("delete = %d %s", dr.Code, dr.Body)
	}
	gr, _ := get(t, s, "/v1/jobs/"+id)
	if gr.Code != http.StatusNotFound {
		t.Fatalf("GET after delete = %d", gr.Code)
	}
}

func TestJobCostModelQueryParamWins(t *testing.T) {
	s := newTestServer(Config{})
	defer s.Close()

	// Spec says graph; the query parameter overrides to perop, and the
	// recorded job spec carries the folded value.
	body := `{"type": "sweep", "sweep": {"domains": ["wordlm"], "params": [1e8], "costmodel": "graph"}}`
	rec, st := jobRequest(t, s, http.MethodPost, "/v1/jobs?costmodel=perop", body, nil)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d %s", rec.Code, rec.Body)
	}
	if st["costmodel"] != "perop" {
		t.Fatalf("resolved costmodel = %v, want perop", st["costmodel"])
	}
	spec := st["spec"].(map[string]any)["sweep"].(map[string]any)
	if spec["costmodel"] != "perop" {
		t.Fatalf("persisted spec costmodel = %v, want perop", spec["costmodel"])
	}
}

// TestErrorEnvelopeEverywhere pins the one error shape of the v1 surface:
// every failure — any endpoint, any method, matched or not — answers
// {"error": {"code", "message", "request_id"}} with the code derived from
// the status, including 400-before-stream on the streaming endpoints and
// enveloped 404/405 for unmatched routes.
func TestErrorEnvelopeEverywhere(t *testing.T) {
	s := newTestServer(Config{})
	defer s.Close()

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
	}{
		{"unmatched path", http.MethodGet, "/v1/nope", "", http.StatusNotFound},
		{"unmatched method", http.MethodDelete, "/v1/domains", "", http.StatusMethodNotAllowed},
		{"analyze bad domain", http.MethodGet, "/v1/analyze?domain=bogus", "", http.StatusBadRequest},
		{"analyze bad param", http.MethodGet, "/v1/analyze?domain=wordlm&params=zap", "", http.StatusBadRequest},
		{"profile bad domain", http.MethodGet, "/v1/profile?domain=bogus", "", http.StatusBadRequest},
		{"frontier bad body", http.MethodPost, "/v1/frontier", "{", http.StatusBadRequest},
		{"sweep bad json", http.MethodPost, "/v1/sweep", "{", http.StatusBadRequest},
		{"sweep unknown field", http.MethodPost, "/v1/sweep", `{"zap": 1}`, http.StatusBadRequest},
		{"sweep bad spec", http.MethodPost, "/v1/sweep", `{"domains": ["bogus"]}`, http.StatusBadRequest},
		{"sweep oversized grid", http.MethodPost, "/v1/sweep",
			`{"domains": ["wordlm"], "param_min": 1e7, "param_max": 1e9, "param_steps": 2000000}`,
			http.StatusBadRequest},
		{"plan bad json", http.MethodPost, "/v1/plan", "{", http.StatusBadRequest},
		{"plan bad spec", http.MethodPost, "/v1/plan", `{"domain": "bogus"}`, http.StatusBadRequest},
		{"checkpoint bad body", http.MethodPost, "/v1/checkpoint/analyze", "not json", http.StatusBadRequest},
		{"figures unknown", http.MethodGet, "/v1/figures/fig99", "", http.StatusBadRequest},
		{"job submit bad json", http.MethodPost, "/v1/jobs", "{", http.StatusBadRequest},
		{"job submit no type", http.MethodPost, "/v1/jobs", `{}`, http.StatusBadRequest},
		{"job submit type mismatch", http.MethodPost, "/v1/jobs",
			`{"type": "plan", "sweep": {"params": [1e8]}}`, http.StatusBadRequest},
		{"job submit bad grid", http.MethodPost, "/v1/jobs",
			`{"type": "sweep", "sweep": {"domains": ["bogus"]}}`, http.StatusBadRequest},
		{"job get unknown", http.MethodGet, "/v1/jobs/jdoesnotexist", "", http.StatusNotFound},
		{"job results unknown", http.MethodGet, "/v1/jobs/jdoesnotexist/results", "", http.StatusNotFound},
		{"job delete unknown", http.MethodDelete, "/v1/jobs/jdoesnotexist", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec, _ := jobRequest(t, s, tc.method, tc.path, tc.body, nil)
			if rec.Code != tc.status {
				t.Fatalf("%s %s = %d, want %d: %s", tc.method, tc.path, rec.Code, tc.status, rec.Body)
			}
			if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("error content type = %q", ct)
			}
			var env api.ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
				t.Fatalf("error body is not the envelope: %v: %s", err, rec.Body)
			}
			if want := api.CodeForStatus(tc.status); env.Error.Code != want {
				t.Fatalf("code = %q, want %q", env.Error.Code, want)
			}
			if env.Error.Message == "" {
				t.Fatal("empty error message")
			}
			if env.Error.RequestID == "" || env.Error.RequestID != rec.Header().Get("X-Request-Id") {
				t.Fatalf("request_id %q does not echo X-Request-Id %q",
					env.Error.RequestID, rec.Header().Get("X-Request-Id"))
			}
		})
	}

	// The enveloped 405 still carries the Allow header the mux computed.
	rec, _ := jobRequest(t, s, http.MethodDelete, "/v1/domains", "", nil)
	if allow := rec.Header().Get("Allow"); !strings.Contains(allow, http.MethodGet) {
		t.Fatalf("405 Allow = %q, want GET listed", allow)
	}
}

// TestResultsParamRejections covers the results-endpoint parameter space:
// each bad value is a 400 with the envelope, before any read.
func TestResultsParamRejections(t *testing.T) {
	s := newTestServer(Config{})
	defer s.Close()

	rec, body := jobRequest(t, s, http.MethodPost, "/v1/jobs", jobSweepBody, nil)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d", rec.Code)
	}
	id := body["id"].(string)
	waitJobState(t, s, id, "succeeded")

	// A cursor minted for one job must not replay against another.
	rec2, body2 := jobRequest(t, s, http.MethodPost, "/v1/jobs", jobSweepBody, nil)
	if rec2.Code != http.StatusAccepted {
		t.Fatalf("second submit = %d", rec2.Code)
	}
	otherID := body2["id"].(string)
	pr, _ := jobRequest(t, s, http.MethodGet, "/v1/jobs/"+id+"/results?limit=3", "", nil)
	otherCursor := pr.Header().Get("X-Next-Cursor")

	for _, q := range []string{
		"limit=0", "limit=-1", "limit=zap",
		"start=-1", "start=zap",
		"cursor=!!!", "cursor=bm9wZQ", "format=yaml",
	} {
		r, _ := jobRequest(t, s, http.MethodGet, "/v1/jobs/"+id+"/results?"+q, "", nil)
		if r.Code != http.StatusBadRequest {
			t.Fatalf("?%s = %d, want 400: %s", q, r.Code, r.Body)
		}
	}
	r, _ := jobRequest(t, s, http.MethodGet, "/v1/jobs/"+otherID+"/results?cursor="+otherCursor, "", nil)
	if r.Code != http.StatusBadRequest {
		t.Fatalf("cross-job cursor = %d, want 400: %s", r.Code, r.Body)
	}

	// csv applies to sweep jobs only.
	pRec, pBody := jobRequest(t, s, http.MethodPost, "/v1/jobs",
		`{"type": "plan", "plan": {"domain": "wordlm", "accelerators": ["v100"],
		  "worker_counts": [1, 2], "subbatches": [32]}}`, nil)
	if pRec.Code != http.StatusAccepted {
		t.Fatalf("plan submit = %d %s", pRec.Code, pRec.Body)
	}
	planID := pBody["id"].(string)
	waitJobState(t, s, planID, "succeeded")
	cr, _ := jobRequest(t, s, http.MethodGet, "/v1/jobs/"+planID+"/results?format=csv", "", nil)
	if cr.Code != http.StatusBadRequest {
		t.Fatalf("csv on plan job = %d, want 400", cr.Code)
	}
}

// TestOpenAPICoversLiveRoutes is the drift gate: the generated document
// must describe exactly the patterns registered on the live mux — an
// undocumented route or a documented ghost fails the build.
func TestOpenAPICoversLiveRoutes(t *testing.T) {
	s := newTestServer(Config{})
	defer s.Close()

	doc := documentedPatterns()
	live := s.registeredPatterns()
	sort.Strings(doc)
	sort.Strings(live)
	if !reflect.DeepEqual(doc, live) {
		t.Fatalf("OpenAPI drift:\ndocumented: %v\nlive mux:   %v", doc, live)
	}
}

func TestOpenAPIDocument(t *testing.T) {
	s := newTestServer(Config{})
	defer s.Close()

	rec, body := get(t, s, "/v1/openapi.json")
	if rec.Code != http.StatusOK {
		t.Fatalf("openapi = %d %s", rec.Code, rec.Body)
	}
	if v, _ := body["openapi"].(string); !strings.HasPrefix(v, "3.0") {
		t.Fatalf("openapi version = %v", body["openapi"])
	}
	paths := body["paths"].(map[string]any)
	for _, p := range []string{"/v1/jobs", "/v1/jobs/{id}", "/v1/jobs/{id}/results", "/v1/sweep", "/v1/openapi.json"} {
		if _, ok := paths[p]; !ok {
			t.Fatalf("document missing path %s (has %d paths)", p, len(paths))
		}
	}
	// One path per documented pattern (method+path pairs collapse).
	want := map[string]bool{}
	for _, pat := range documentedPatterns() {
		_, path, _ := strings.Cut(pat, " ")
		want[path] = true
	}
	if len(paths) != len(want) {
		t.Fatalf("document has %d paths, want %d", len(paths), len(want))
	}
	// Schemas referenced by operations must resolve.
	comps := body["components"].(map[string]any)["schemas"].(map[string]any)
	raw, _ := json.Marshal(body["paths"])
	for _, m := range refPattern.FindAllStringSubmatch(string(raw), -1) {
		if _, ok := comps[m[1]]; !ok {
			t.Fatalf("dangling $ref %q", m[1])
		}
	}
	if _, ok := comps["api.ErrorResponse"]; !ok {
		t.Fatal("components missing the error envelope schema")
	}
}

// refPattern extracts component names from "$ref" values.
var refPattern = regexp.MustCompile(`"\$ref":"#/components/schemas/([^"]+)"`)

func TestJobMetricsExposed(t *testing.T) {
	s := newTestServer(Config{})
	defer s.Close()

	rec, body := jobRequest(t, s, http.MethodPost, "/v1/jobs", jobSweepBody, nil)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d", rec.Code)
	}
	waitJobState(t, s, body["id"].(string), "succeeded")

	mRec, _ := get(t, s, "/metrics")
	if mRec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", mRec.Code)
	}
	text := mRec.Body.String()
	for _, metric := range []string{
		"catamount_job_submitted_total",
		"catamount_job_points_total",
		"catamount_job_checkpoints_total",
		`catamount_job_completed_total{state="succeeded"}`,
		"catamount_job_running",
		"catamount_job_queued",
	} {
		if !strings.Contains(text, metric) {
			t.Fatalf("/metrics missing %s", metric)
		}
	}
	if !strings.Contains(text, fmt.Sprintf("catamount_stage_duration_seconds_count{stage=%q}", "job_run")) {
		t.Fatal("/metrics missing the job_run stage histogram")
	}
}
