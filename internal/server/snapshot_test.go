package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const snapTestPath = "/v1/analyze?domain=wordlm&params=1.03e9&batch=128"

// warmServer builds a server and fills its cache with one analyze
// response.
func warmServer(t *testing.T) *Server {
	t.Helper()
	s := newTestServer(Config{CacheEntries: 16})
	rec, _ := get(t, s, snapTestPath)
	if rec.Code != http.StatusOK {
		t.Fatalf("warm request = %d %s", rec.Code, rec.Body)
	}
	return s
}

// TestSnapshotRoundTrip pins the headline property: a snapshot written by
// one server restores into a fresh server whose first request for the
// saved key is a cache hit — zero recomputation.
func TestSnapshotRoundTrip(t *testing.T) {
	src := warmServer(t)
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	dst := newTestServer(Config{CacheEntries: 16})
	n, err := dst.ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d entries, want 1", n)
	}
	rec, body := get(t, dst, snapTestPath)
	if rec.Code != http.StatusOK {
		t.Fatalf("restored request = %d %s", rec.Code, rec.Body)
	}
	if body["step_seconds"] == nil {
		t.Fatalf("restored response missing payload: %s", rec.Body)
	}
	m := dst.Metrics()
	if m.CacheHits != 1 || m.CacheMisses != 0 {
		t.Fatalf("restored cache did not serve the hit: hits %d, misses %d", m.CacheHits, m.CacheMisses)
	}
}

// TestSnapshotFileSaveLoad exercises the atomic file path: save, reload,
// no temp files left behind, and a missing file surfaces os.ErrNotExist
// for the boot path to treat as a cold start.
func TestSnapshotFileSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.snap")

	src := warmServer(t)
	if err := src.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "cache.snap" {
		t.Fatalf("snapshot dir not clean after save: %v", entries)
	}

	dst := newTestServer(Config{CacheEntries: 16})
	if n, err := dst.LoadSnapshotFile(path); err != nil || n != 1 {
		t.Fatalf("load = (%d, %v), want (1, nil)", n, err)
	}

	cold := newTestServer(Config{CacheEntries: 16})
	if _, err := cold.LoadSnapshotFile(filepath.Join(dir, "absent.snap")); !os.IsNotExist(err) {
		t.Fatalf("missing snapshot: got %v, want fs.ErrNotExist", err)
	}
}

// TestSnapshotRejectsMismatch pins the staleness guards: a snapshot from a
// different schema version, binary revision, or analysis catalog is
// refused, leaving the cache cold rather than serving answers this build
// might compute differently.
func TestSnapshotRejectsMismatch(t *testing.T) {
	src := warmServer(t)
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	var good cacheSnapshot
	if err := json.Unmarshal(buf.Bytes(), &good); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(*cacheSnapshot)
		want   string
	}{
		{"schema", func(s *cacheSnapshot) { s.Schema = snapshotSchema + 1 }, "schema"},
		{"build", func(s *cacheSnapshot) { s.Build = "deadbeef" }, "revision"},
		{"catalog", func(s *cacheSnapshot) { s.Catalog = "0000000000000000" }, "catalog"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snap := good
			tc.mutate(&snap)
			b, err := json.Marshal(snap)
			if err != nil {
				t.Fatal(err)
			}
			dst := newTestServer(Config{CacheEntries: 16})
			n, err := dst.ReadSnapshot(bytes.NewReader(b))
			if err == nil {
				t.Fatalf("stale snapshot accepted (%d entries)", n)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if dst.Metrics().CacheEntries != 0 {
				t.Fatalf("cache warmed from a rejected snapshot: %d entries", dst.Metrics().CacheEntries)
			}
		})
	}
}

// TestSnapshotCorruptFile: a truncated or garbage snapshot errors without
// breaking the server — it just starts cold.
func TestSnapshotCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	if err := os.WriteFile(path, []byte("{\"schema\": 1, \"entr"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(Config{CacheEntries: 16})
	if _, err := s.LoadSnapshotFile(path); err == nil {
		t.Fatal("corrupt snapshot loaded without error")
	}
	rec, _ := get(t, s, snapTestPath)
	if rec.Code != http.StatusOK {
		t.Fatalf("server broken after corrupt snapshot: %d %s", rec.Code, rec.Body)
	}
}

// TestWarmupEndpoint replays a key list through POST /v1/admin/warmup and
// pins the contract: valid paths are computed into the cache (the next
// live request is a hit), invalid and admin paths are reported as
// failures without aborting the batch.
func TestWarmupEndpoint(t *testing.T) {
	s := newTestServer(Config{CacheEntries: 16})
	body, err := json.Marshal(warmupRequest{Paths: []string{
		snapTestPath,
		"/metrics",                // outside /v1: rejected
		"/v1/admin/warmup",        // recursion: rejected
		"http://evil/v1/analyze",  // absolute URL: rejected
		"/v1/analyze?domain=nope", // replays and fails with 400
	}})
	if err != nil {
		t.Fatal(err)
	}
	rec, resp := request(t, s, http.MethodPost, "/v1/admin/warmup", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("warmup = %d %s", rec.Code, rec.Body)
	}
	if got := resp["requested"].(float64); got != 5 {
		t.Fatalf("requested = %v, want 5", got)
	}
	if got := resp["warmed"].(float64); got != 1 {
		t.Fatalf("warmed = %v, want 1: %s", got, rec.Body)
	}
	if got := resp["failed"].(float64); got != 4 {
		t.Fatalf("failed = %v, want 4: %s", got, rec.Body)
	}

	rec, _ = get(t, s, snapTestPath)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-warmup request = %d", rec.Code)
	}
	if m := s.Metrics(); m.CacheHits < 1 {
		t.Fatalf("warmed key did not serve a hit: %+v", m)
	}
}

// TestWarmupValidation pins the request guards: a missing path list and an
// oversized one are both 400s.
func TestWarmupValidation(t *testing.T) {
	s := newTestServer(Config{})
	rec, _ := request(t, s, http.MethodPost, "/v1/admin/warmup", []byte(`{}`))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty warmup = %d, want 400", rec.Code)
	}

	paths := make([]string, maxWarmupPaths+1)
	for i := range paths {
		paths[i] = snapTestPath
	}
	body, _ := json.Marshal(warmupRequest{Paths: paths})
	rec, _ = request(t, s, http.MethodPost, "/v1/admin/warmup", body)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("oversized warmup = %d, want 400", rec.Code)
	}
}
