package server

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"catamount/internal/obs"
)

// This file serves the flight recorder: GET /v1/traces lists retained
// traces (slowest first, filterable by route and minimum duration) together
// with the per-stage slowest-trace exemplars that link the stage latency
// histograms back to concrete traces; GET /v1/traces/{id} returns one
// trace as a span tree, or as Chrome trace-event JSON for Perfetto when
// asked via ?format=perfetto or the Accept header.

// tracesResponse is the GET /v1/traces payload.
type tracesResponse struct {
	Traces []obs.TraceSummary `json:"traces"`
	Count  int                `json:"count"`
	// SlowestByStage maps each stage latency series to the trace that owns
	// its slowest observation — the histogram→trace pivot: spot a p99
	// regression on /metrics, fetch the trace that caused it here.
	SlowestByStage []obs.StageExemplar `json:"slowest_by_stage"`
}

// handleTraces lists retained traces. Filters: route (exact registered
// pattern, e.g. "POST /v1/sweep"), min_ms (minimum duration), limit.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var minDur time.Duration
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			apiError(w, r, http.StatusBadRequest, "min_ms must be a non-negative number")
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			apiError(w, r, http.StatusBadRequest, "limit must be a non-negative integer")
			return
		}
		limit = n
	}
	traces := obs.Flight.List(q.Get("route"), minDur, limit)
	writeJSON(w, tracesResponse{
		Traces:         traces,
		Count:          len(traces),
		SlowestByStage: obs.Default.StageSlowestTraces(),
	})
}

// handleTraceGet returns one retained trace. Default shape is the span
// tree (obs.TraceExport); ?format=perfetto — or an Accept header naming
// the Chrome trace-event type — switches to the trace-event JSON array
// that chrome://tracing and ui.perfetto.dev load directly.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	tr, ok := obs.Flight.Get(r.PathValue("id"))
	if !ok {
		apiError(w, r, http.StatusNotFound, "no such trace (the flight recorder keeps the slowest, errored, and most recent traces)")
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" && strings.Contains(r.Header.Get("Accept"), "trace-event") {
		format = "perfetto"
	}
	switch format {
	case "", "tree", "json":
		writeJSON(w, tr.Export())
	case "perfetto", "chrome", "trace-event":
		w.Header().Set("Content-Type", "application/json")
		if err := tr.WriteTraceEvents(w); err != nil {
			// Headers are gone; nothing better to do than log via the
			// request line's status (the write error usually means the
			// client went away).
			return
		}
	default:
		apiError(w, r, http.StatusBadRequest, "format must be tree or perfetto")
	}
}
