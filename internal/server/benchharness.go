package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	cat "catamount"
)

// This file is the concurrent-load bench harness behind BENCH_pr10.json:
// it drives the fully cached serving hot path at increasing goroutine
// counts, against both the sharded response cache and a single-mutex
// baseline (CacheShards: 1), and reports throughput, tail latency, and two
// scaling ratios. The CI bench job publishes the report as an artifact and
// gates on pinned floors (see TestServeBenchFloors).

// ServeBenchSchema versions the report format.
const ServeBenchSchema = "catamount-serve-bench/v1"

// ServeBenchPoint is one (configuration, concurrency) measurement: total
// requests served, wall-clock throughput, and per-request latency
// percentiles.
type ServeBenchPoint struct {
	Goroutines int     `json:"goroutines"`
	Requests   int     `json:"requests"`
	ReqPerSec  float64 `json:"req_per_sec"`
	P50Micros  float64 `json:"p50_us"`
	P99Micros  float64 `json:"p99_us"`
}

// ServeBenchReport is one harness run. Hot points exercise the sharded
// cache at its default fan-out; Baseline points re-run the same load with
// CacheShards: 1 — the pre-sharding single-mutex layout — so the lock-
// scaling ratio isolates what sharding buys at the top concurrency level.
type ServeBenchReport struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	Shards    int    `json:"cache_shards"`

	Hot      []ServeBenchPoint `json:"hot"`
	Baseline []ServeBenchPoint `json:"baseline"`

	// ScalingX is hot throughput at the highest concurrency level over hot
	// throughput single-threaded: how the cached read path scales with
	// goroutines on this machine.
	ScalingX float64 `json:"scaling_x"`
	// LockScalingX is hot over baseline throughput at the highest
	// concurrency level: the contention the sharded layout removes. ~1.0
	// on a single-core machine (one shard, nothing to contend on).
	LockScalingX float64 `json:"lock_scaling_x"`
}

// serveBenchLevels are the concurrency levels each configuration runs.
var serveBenchLevels = []int{1, 4, 8}

// serveBenchOps is the per-goroutine request count per measurement.
const serveBenchOps = 5000

// benchPaths is the hot working set: distinct canonical keys spread across
// cache shards, so the concurrent load exercises shard fan-out rather than
// hammering a single entry's lock.
func benchPaths() []string {
	paths := make([]string, 0, 32)
	for i := 0; i < 32; i++ {
		paths = append(paths, fmt.Sprintf(
			"/v1/analyze?domain=wordlm&params=1.03e9&batch=%d", 64+i))
	}
	return paths
}

// benchRequests warms every path through the server once (filling the
// cache) and returns the reusable request objects for the timed runs.
func benchRequests(s *Server, paths []string) ([]*http.Request, error) {
	reqs := make([]*http.Request, 0, len(paths))
	for _, p := range paths {
		req, err := http.NewRequest(http.MethodGet, p, nil)
		if err != nil {
			return nil, err
		}
		rec := &verdictRecorder{hdr: make(http.Header)}
		s.ServeHTTP(rec, req)
		if rec.status >= 400 {
			return nil, fmt.Errorf("warming %s: status %d", p, rec.status)
		}
		reqs = append(reqs, req)
	}
	return reqs, nil
}

// runServeLevel drives goroutines concurrent workers through the warmed
// request set, each issuing ops requests round-robin from a staggered
// offset, and reports wall-clock throughput plus merged latency
// percentiles.
func runServeLevel(s *Server, reqs []*http.Request, goroutines, ops int) (ServeBenchPoint, error) {
	lats := make([][]float64, goroutines)
	fails := make([]int, goroutines)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			lat := make([]float64, ops)
			rec := &verdictRecorder{hdr: make(http.Header)}
			for i := 0; i < ops; i++ {
				req := reqs[(g*7+i)%len(reqs)]
				t0 := time.Now()
				s.ServeHTTP(rec, req)
				lat[i] = float64(time.Since(t0).Nanoseconds()) / 1e3
				if rec.status >= 400 {
					fails[g]++
				}
				rec.status = 0
			}
			lats[g] = lat
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	for g, n := range fails {
		if n > 0 {
			return ServeBenchPoint{}, fmt.Errorf("bench worker %d: %d of %d requests failed", g, n, ops)
		}
	}

	merged := make([]float64, 0, goroutines*ops)
	for _, l := range lats {
		merged = append(merged, l...)
	}
	sort.Float64s(merged)
	total := goroutines * ops
	return ServeBenchPoint{
		Goroutines: goroutines,
		Requests:   total,
		ReqPerSec:  float64(total) / elapsed,
		P50Micros:  percentile(merged, 0.50),
		P99Micros:  percentile(merged, 0.99),
	}, nil
}

// percentile reads quantile q from an ascending-sorted sample.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// benchConfig measures one server configuration across every concurrency
// level, running each level twice and keeping the higher-throughput pass
// (the first pass also absorbs scheduler warmup).
func benchConfig(eng *cat.Engine, shards int) ([]ServeBenchPoint, error) {
	// MaxInFlight is raised above every concurrency level so the admission
	// limiter never sheds bench load — the measurement is cache contention,
	// not limiter behavior.
	s := New(Config{Engine: eng, CacheEntries: 1024, CacheShards: shards, MaxInFlight: 256})
	defer s.Close()
	reqs, err := benchRequests(s, benchPaths())
	if err != nil {
		return nil, err
	}
	points := make([]ServeBenchPoint, 0, len(serveBenchLevels))
	for _, g := range serveBenchLevels {
		best, err := runServeLevel(s, reqs, g, serveBenchOps)
		if err != nil {
			return nil, err
		}
		again, err := runServeLevel(s, reqs, g, serveBenchOps)
		if err != nil {
			return nil, err
		}
		if again.ReqPerSec > best.ReqPerSec {
			best = again
		}
		points = append(points, best)
	}
	if m := s.Metrics(); m.CacheMisses > int64(len(benchPaths())) {
		return nil, fmt.Errorf("hot path recomputed: %d misses for %d keys", m.CacheMisses, len(benchPaths()))
	}
	return points, nil
}

// RunServeBench measures the serving hot path under concurrent load: the
// sharded configuration and the single-mutex baseline, each at every
// concurrency level. eng == nil builds a fresh engine (and pays one model
// compile during warmup).
func RunServeBench(eng *cat.Engine) (*ServeBenchReport, error) {
	if eng == nil {
		eng = cat.NewEngine()
	}
	rep := &ServeBenchReport{
		Schema:    ServeBenchSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.GOMAXPROCS(0),
	}
	probe := New(Config{Engine: eng, CacheEntries: 1024})
	rep.Shards = probe.cache.ShardCount()
	probe.Close()

	var err error
	if rep.Hot, err = benchConfig(eng, 0); err != nil {
		return nil, err
	}
	if rep.Baseline, err = benchConfig(eng, 1); err != nil {
		return nil, err
	}

	last := len(serveBenchLevels) - 1
	if rep.Hot[0].ReqPerSec > 0 {
		rep.ScalingX = rep.Hot[last].ReqPerSec / rep.Hot[0].ReqPerSec
	}
	if rep.Baseline[last].ReqPerSec > 0 {
		rep.LockScalingX = rep.Hot[last].ReqPerSec / rep.Baseline[last].ReqPerSec
	}
	return rep, nil
}

// WriteServeBenchReport serializes a report as indented JSON (the
// BENCH_*.json file format), newline-terminated.
func WriteServeBenchReport(w io.Writer, rep *ServeBenchReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
