package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"

	"catamount/internal/shard"
)

// These property tests pin the sharded response cache to the original
// single-mutex lruCache, which stays in-tree as the behavioral oracle: a
// single-shard shard.LRU must be operation-for-operation identical to it,
// and a multi-shard one must be identical per shard (each shard is an
// independent LRU over its key subset and capacity slice).

// oracleOps drives n random get/add operations over k keys through both
// caches, failing on the first divergence.
func oracleOps(t *testing.T, rng *rand.Rand, sharded *shard.LRU[[]byte], oracle func(key string) *lruCache, n, k int) {
	t.Helper()
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", rng.Intn(k))
		if rng.Intn(2) == 0 {
			val := []byte(fmt.Sprintf("val-%d", i))
			sharded.Add(key, val)
			oracle(key).add(key, val)
			continue
		}
		got, gotOK := sharded.Get(key)
		want, wantOK := oracle(key).get(key)
		if gotOK != wantOK || string(got) != string(want) {
			t.Fatalf("op %d: Get(%q) = (%q, %v), oracle (%q, %v)", i, key, got, gotOK, want, wantOK)
		}
	}
}

// TestShardedLRUMatchesOracleSingleShard: with one shard, the sharded
// cache must reproduce the original LRU's observable behavior exactly —
// same hits, same misses, same evictions, on any operation sequence.
func TestShardedLRUMatchesOracleSingleShard(t *testing.T) {
	for _, capacity := range []int{1, 2, 7, 32} {
		capacity := capacity
		t.Run(fmt.Sprintf("cap%d", capacity), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(capacity)))
			sharded := shard.NewLRU[[]byte](capacity, 1)
			oracle := newLRU(capacity)
			oracleOps(t, rng, sharded, func(string) *lruCache { return oracle }, 4000, 3*capacity)
			if sharded.Len() != oracle.len() {
				t.Fatalf("Len() = %d, oracle %d", sharded.Len(), oracle.len())
			}
		})
	}
}

// TestShardedLRUMatchesPerShardOracle: with several shards, each shard is
// an independent single-mutex LRU over the keys that hash to it, sized to
// its slice of the capacity. One oracle per shard, routed by the same
// FNV-1a hash, must stay in lockstep.
func TestShardedLRUMatchesPerShardOracle(t *testing.T) {
	const capacity, shards = 61, 4 // deliberately not divisible: remainder spreads
	sharded := shard.NewLRU[[]byte](capacity, shards)
	if sharded.ShardCount() != shards {
		t.Fatalf("ShardCount() = %d, want %d", sharded.ShardCount(), shards)
	}
	oracles := make([]*lruCache, shards)
	for i := range oracles {
		per := capacity / shards
		if i < capacity%shards {
			per++
		}
		oracles[i] = newLRU(per)
	}
	route := func(key string) *lruCache {
		return oracles[shard.Hash(key)&uint32(shards-1)]
	}
	rng := rand.New(rand.NewSource(61))
	oracleOps(t, rng, sharded, route, 8000, 200)

	total := 0
	for i, o := range oracles {
		if got := sharded.ShardLen(i); got != o.len() {
			t.Fatalf("shard %d: len %d, oracle %d", i, got, o.len())
		}
		total += o.len()
	}
	if sharded.Len() != total {
		t.Fatalf("Len() = %d, oracles total %d", sharded.Len(), total)
	}
}

// TestServerConcurrentGetsDuringEvictionChurn is the -race hammer at the
// serving layer: a tiny cache forces every add to evict while concurrent
// readers hit the same key space, so any unsynchronized access in the
// cache, single-flight table, or counters trips the race detector.
func TestServerConcurrentGetsDuringEvictionChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer test recomputes under churn")
	}
	s := newTestServer(Config{CacheEntries: 2, MaxInFlight: 64})
	paths := make([]string, 8)
	for i := range paths {
		paths[i] = fmt.Sprintf("/v1/analyze?domain=wordlm&params=1.03e9&batch=%d", 96+i)
	}
	// Warm the model (not the responses: capacity 2 keeps evicting).
	rec, _ := get(t, s, paths[0])
	if rec.Code != http.StatusOK {
		t.Fatalf("warm = %d %s", rec.Code, rec.Body)
	}

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				req, err := http.NewRequest(http.MethodGet, paths[(g+i)%len(paths)], nil)
				if err != nil {
					errs <- err.Error()
					return
				}
				rec := &verdictRecorder{hdr: make(http.Header)}
				s.ServeHTTP(rec, req)
				if rec.status >= 400 {
					errs <- fmt.Sprintf("worker %d: status %d", g, rec.status)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	m := s.Metrics()
	if m.CacheEntries > 2 {
		t.Fatalf("cache exceeded capacity under churn: %d entries", m.CacheEntries)
	}
	if m.CacheEvictions == 0 {
		t.Fatalf("hammer produced no evictions: %+v", m)
	}
}
