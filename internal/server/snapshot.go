package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"time"

	cat "catamount"
	"catamount/internal/api"
	"catamount/internal/costmodel"
	"catamount/internal/hw"
)

// This file is the cache persistence layer: a response-cache snapshot that
// survives restarts, plus the POST /v1/admin/warmup endpoint that replays a
// saved key list through the serving stack. Together they close the cold-
// start gap — a redeployed catamountd answers its working set from the
// first request instead of recomputing it.

// snapshotSchema versions the snapshot file layout. Bump on any change to
// cacheSnapshot/snapshotEntry; readers refuse other versions outright
// rather than guessing.
const snapshotSchema = 1

// cacheSnapshot is the on-disk form: a schema version, the producing
// binary's VCS revision, a fingerprint of the analysis catalog, and the
// cached responses ordered least-recently-used first (so replaying them
// with Add reconstructs the recency order exactly).
type cacheSnapshot struct {
	Schema  int             `json:"schema"`
	Build   string          `json:"build"`
	Catalog string          `json:"catalog"`
	SavedAt string          `json:"saved_at,omitempty"`
	Entries []snapshotEntry `json:"entries"`
}

// snapshotEntry is one cached response: the canonical cache key and the
// marshaled JSON payload it mapped to.
type snapshotEntry struct {
	Key string          `json:"key"`
	Val json.RawMessage `json:"val"`
}

// errSnapshotStale marks a snapshot produced by a different binary or
// catalog: loading it would serve answers the current build might compute
// differently, so the loader refuses and the server starts cold.
var errSnapshotStale = errors.New("cache snapshot is stale")

// catalogFingerprint hashes everything a cached response can depend on
// besides the request itself: the domain list, every catalog accelerator's
// full parameter vector, and the step-time backend names. Any drift in
// these invalidates old cache entries even when the VCS revision is
// unavailable (e.g. non-VCS builds).
func catalogFingerprint() string {
	h := fnv.New64a()
	for _, d := range cat.Domains() {
		io.WriteString(h, string(d))
		io.WriteString(h, "\x00")
	}
	for _, a := range hw.Catalog() {
		io.WriteString(h, a.Fingerprint())
		io.WriteString(h, "\x00")
	}
	for _, info := range costmodel.Infos() {
		io.WriteString(h, info.Name)
		io.WriteString(h, "\x00")
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// WriteSnapshot serializes the response cache to w, least-recently-used
// entries first.
func (s *Server) WriteSnapshot(w io.Writer) error {
	dump := s.cache.Dump()
	snap := cacheSnapshot{
		Schema:  snapshotSchema,
		Catalog: catalogFingerprint(),
		SavedAt: time.Now().UTC().Format(time.RFC3339),
		Entries: make([]snapshotEntry, 0, len(dump)),
	}
	snap.Build, _ = buildRevision()
	for _, e := range dump {
		snap.Entries = append(snap.Entries, snapshotEntry{Key: e.Key, Val: json.RawMessage(e.Val)})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}

// ReadSnapshot loads a snapshot into the response cache, returning how
// many entries were restored. A snapshot from a different schema version,
// binary revision, or analysis catalog is refused with errSnapshotStale —
// a cold cache is recoverable, stale answers are not. Entries replay in
// dump order (least-recent first), so the restored cache evicts in the
// same order the saved one would have.
func (s *Server) ReadSnapshot(r io.Reader) (int, error) {
	var snap cacheSnapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return 0, fmt.Errorf("decode cache snapshot: %w", err)
	}
	if snap.Schema != snapshotSchema {
		return 0, fmt.Errorf("%w: schema %d, want %d", errSnapshotStale, snap.Schema, snapshotSchema)
	}
	build, _ := buildRevision()
	if snap.Build != build {
		return 0, fmt.Errorf("%w: built at revision %q, this binary is %q", errSnapshotStale, snap.Build, build)
	}
	if cf := catalogFingerprint(); snap.Catalog != cf {
		return 0, fmt.Errorf("%w: catalog fingerprint %q, this binary has %q", errSnapshotStale, snap.Catalog, cf)
	}
	n := 0
	for _, e := range snap.Entries {
		if e.Key == "" || !json.Valid(e.Val) {
			continue
		}
		s.cache.Add(e.Key, []byte(e.Val))
		n++
	}
	return n, nil
}

// SaveSnapshotFile writes the snapshot atomically: a temp file in the
// target directory, fsynced, then renamed over path. A crash mid-save
// leaves the previous snapshot intact, never a truncated one.
func (s *Server) SaveSnapshotFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := s.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadSnapshotFile restores the cache from path. A missing file is not an
// error to the caller's boot path (fs.ErrNotExist passes through for the
// caller to detect); a stale or corrupt file returns a descriptive error
// and leaves the cache untouched or partially warmed — either way the
// server serves correctly, just colder.
func (s *Server) LoadSnapshotFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return s.ReadSnapshot(f)
}

// ---------------------------------------------------------------------------
// Warmup endpoint

// maxWarmupPaths bounds one warmup request; larger key lists should be
// split by the operator rather than monopolizing the server.
const maxWarmupPaths = 4096

// warmupRequest is the POST /v1/admin/warmup body: GET request paths
// (path + query, e.g. "/v1/analyze?domain=word_lms&params=1e9") to replay
// internally so their responses land in the cache.
type warmupRequest struct {
	Paths []string `json:"paths"`
}

// warmupResult reports one replayed path.
type warmupResult struct {
	Path   string `json:"path"`
	Status int    `json:"status"`
}

// warmupResponse summarizes a warmup run.
type warmupResponse struct {
	Requested int            `json:"requested"`
	Warmed    int            `json:"warmed"`
	Failed    int            `json:"failed"`
	Failures  []warmupResult `json:"failures,omitempty"`
}

// handleWarmup replays a list of GET paths through the router so their
// responses populate the cache — the online half of snapshot warmup: a
// snapshot restores what was cached at shutdown, warmup precomputes a
// known working set on demand. Paths replay sequentially under the
// caller's deadline; each one runs the full handler (single-flight,
// compute semaphore, cache fill) but bypasses the admission limiter —
// warming must not compete with, or be shed by, live traffic admission.
func (s *Server) handleWarmup(w http.ResponseWriter, r *http.Request) {
	var req warmupRequest
	if err := api.DecodeJSON(w, r.Body, 1<<20, &req); err != nil {
		apiError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Paths) == 0 {
		apiError(w, r, http.StatusBadRequest, "missing required field \"paths\"")
		return
	}
	if len(req.Paths) > maxWarmupPaths {
		apiError(w, r, http.StatusBadRequest,
			fmt.Sprintf("too many paths: %d exceeds the per-request limit of %d", len(req.Paths), maxWarmupPaths))
		return
	}
	resp := warmupResponse{Requested: len(req.Paths)}
	for _, p := range req.Paths {
		u, err := url.ParseRequestURI(p)
		if err != nil || u.Scheme != "" || u.Host != "" || !strings.HasPrefix(u.Path, "/v1/") {
			resp.Failed++
			resp.Failures = append(resp.Failures, warmupResult{Path: p, Status: http.StatusBadRequest})
			continue
		}
		if strings.HasPrefix(u.Path, "/v1/admin/") {
			// No recursion: a warmup list cannot replay admin endpoints.
			resp.Failed++
			resp.Failures = append(resp.Failures, warmupResult{Path: p, Status: http.StatusBadRequest})
			continue
		}
		if err := r.Context().Err(); err != nil {
			// Deadline spent: report what was warmed rather than discarding
			// the accounting with a timeout error.
			break
		}
		inner, err := http.NewRequestWithContext(r.Context(), http.MethodGet, p, nil)
		if err != nil {
			resp.Failed++
			resp.Failures = append(resp.Failures, warmupResult{Path: p, Status: http.StatusBadRequest})
			continue
		}
		rec := &verdictRecorder{hdr: make(http.Header)}
		s.mux.ServeHTTP(rec, inner)
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		if status < 400 {
			resp.Warmed++
		} else {
			resp.Failed++
			resp.Failures = append(resp.Failures, warmupResult{Path: p, Status: status})
		}
	}
	writeJSON(w, resp)
}
