// Package server exposes a catamount.Engine as a concurrent HTTP/JSON
// analysis service — the serving layer the paper's "what will training at
// the accuracy frontier cost on hardware X?" question needs once queries
// arrive as traffic instead of batch scripts.
//
// Request flow: every query is reduced to a canonical key; a bounded LRU
// holds fully marshaled responses, and concurrent identical misses are
// coalesced through a single-flight group so K simultaneous requests cost
// one upstream computation. A semaphore bounds in-flight work, every
// request carries a deadline, and /metrics exposes hit/miss/coalesce/
// in-flight counters.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	cat "catamount"
	"catamount/internal/api"
	"catamount/internal/costmodel"
	"catamount/internal/graph"
	"catamount/internal/graphio"
	"catamount/internal/hw"
	"catamount/internal/jobs"
	"catamount/internal/obs"
	"catamount/internal/parallel"
	"catamount/internal/shard"
)

// Config parameterizes a Server. The zero value gets sensible defaults.
type Config struct {
	// Engine is the shared analysis session; nil creates a fresh one.
	Engine *cat.Engine
	// CacheEntries bounds the LRU response cache (default 1024).
	CacheEntries int
	// CacheShards overrides the response cache's shard fan-out (default:
	// a power of two derived from GOMAXPROCS). 1 forces the single-mutex
	// layout — the contention baseline the serve bench harness measures
	// the sharded layout against.
	CacheShards int
	// MaxInFlight bounds concurrently admitted requests
	// (default 4×GOMAXPROCS).
	MaxInFlight int
	// Timeout is the per-request deadline (default 30s).
	Timeout time.Duration
	// MaxSweepPoints bounds the grid size a single POST /v1/sweep may
	// stream (default 100000); larger grids belong on cmd/sweep.
	MaxSweepPoints int
	// Logger, when set, emits one structured line per request (method,
	// endpoint, status, bytes, duration, request ID). nil disables request
	// logging; metrics are recorded either way.
	Logger *slog.Logger
	// Jobs is the async job service behind /v1/jobs. Nil creates an
	// in-memory one over Engine (jobs then do not survive restarts);
	// catamountd passes a file-backed service when -jobs-dir is set.
	Jobs *jobs.Service
}

// Metrics is a point-in-time snapshot of the serving counters.
type Metrics struct {
	Requests     int64 `json:"requests"`
	InFlight     int64 `json:"in_flight"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"` // upstream computations started
	Coalesced    int64 `json:"coalesced"`    // requests that joined an in-flight computation
	Rejected     int64 `json:"rejected"`     // turned away by the concurrency limiter
	Timeouts     int64 `json:"timeouts"`
	SweepStreams int64 `json:"sweep_streams"` // POST /v1/sweep runs admitted
	SweepPoints  int64 `json:"sweep_points"`  // grid points streamed out
	PlanRuns     int64 `json:"plan_runs"`     // POST /v1/plan searches computed (cache misses)
	PlanPlans    int64 `json:"plan_plans"`    // candidate plans evaluated by those searches
	// CostModelRequests counts requests served per step-time backend
	// (canonical name), across every backend-routed endpoint.
	CostModelRequests map[string]int64 `json:"costmodel_requests"`
	CacheEntries      int              `json:"cache_entries"`
	CacheLimit        int              `json:"cache_limit"`
	CacheShards       int              `json:"cache_shards"`
	CacheEvictions    int64            `json:"cache_evictions"`
	MaxInFlight       int              `json:"max_in_flight"`
}

// Server is the HTTP analysis service. Create with New; safe for
// concurrent use.
type Server struct {
	eng *cat.Engine
	// cache is the sharded response LRU: a hot request locks only the
	// shard its canonical key hashes to, so the fully cached read path
	// scales with cores instead of serializing on one cache-wide mutex.
	cache   *shard.LRU[[]byte]
	flights *flightGroup
	sem     chan struct{}
	// computeSem bounds concurrently *running* upstream computations.
	// The request limiter alone cannot: a timed-out request frees its
	// slot while its detached single-flight computation keeps running,
	// so under sustained distinct-key slow traffic running computations
	// would otherwise grow without bound. Queued computations are cheap
	// (a parked goroutine); running ones are the expensive resource.
	computeSem     chan struct{}
	timeout        time.Duration
	maxSweepPoints int
	mux            *http.ServeMux
	logger         *slog.Logger
	start          time.Time
	jobsSvc        *jobs.Service

	// reg holds this server's HTTP-layer series: the per-endpoint
	// request-duration histograms and response-byte counters, plus sampled
	// occupancy gauges. Engine stage histograms live in obs.Default; the
	// /metrics exposition writes both.
	reg        *obs.Registry
	routeHist  map[string]*obs.Histogram
	routeBytes map[string]*obs.Counter
	otherHist  *obs.Histogram
	otherBytes *obs.Counter

	requests, inFlight, hits, misses atomic.Int64
	coalesced, rejected, timeouts    atomic.Int64
	sweepStreams, sweepPoints        atomic.Int64
	planRuns, planPlans              atomic.Int64
	cmGraph, cmPerop                 atomic.Int64

	// computeHook, when set, runs inside each upstream computation (after
	// the miss is counted, before the Engine call). Test seam for
	// verifying coalescing deterministically.
	computeHook func(key string)
}

// New builds a Server over cfg.
func New(cfg Config) *Server {
	if cfg.Engine == nil {
		cfg.Engine = cat.NewEngine()
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 1024
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.MaxSweepPoints <= 0 {
		cfg.MaxSweepPoints = 100000
	}
	if cfg.Jobs == nil {
		// An in-memory job service cannot fail to construct: the store
		// needs no I/O and the engine is already in hand.
		cfg.Jobs, _ = jobs.New(jobs.Config{Source: cfg.Engine, Logger: cfg.Logger})
	}
	s := &Server{
		eng:            cfg.Engine,
		cache:          shard.NewLRU[[]byte](cfg.CacheEntries, cfg.CacheShards),
		flights:        newFlightGroup(),
		sem:            make(chan struct{}, cfg.MaxInFlight),
		computeSem:     make(chan struct{}, cfg.MaxInFlight),
		timeout:        cfg.Timeout,
		maxSweepPoints: cfg.MaxSweepPoints,
		jobsSvc:        cfg.Jobs,
		mux:            http.NewServeMux(),
		logger:         cfg.Logger,
		start:          time.Now(),
		reg:            obs.NewRegistry(),
		routeHist:      make(map[string]*obs.Histogram),
		routeBytes:     make(map[string]*obs.Counter),
	}
	// handle registers a route and its per-endpoint series: one request-
	// duration histogram and one response-byte counter, labeled by the
	// route pattern. Requests that match no route record under "other".
	handle := func(pattern string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, h)
		lbl := obs.Label{Name: "endpoint", Value: pattern}
		s.routeHist[pattern] = s.reg.Histogram(reqDurationMetric,
			"HTTP request latency in seconds, by endpoint.", obs.DefBuckets, lbl)
		s.routeBytes[pattern] = s.reg.Counter(respBytesMetric,
			"HTTP response body bytes written, by endpoint.", lbl)
	}
	other := obs.Label{Name: "endpoint", Value: "other"}
	s.otherHist = s.reg.Histogram(reqDurationMetric,
		"HTTP request latency in seconds, by endpoint.", obs.DefBuckets, other)
	s.otherBytes = s.reg.Counter(respBytesMetric,
		"HTTP response body bytes written, by endpoint.", other)
	s.reg.GaugeFunc("catamount_http_in_flight",
		"Requests currently being served.", func() float64 { return float64(s.inFlight.Load()) })
	s.reg.GaugeFunc("catamount_cache_entries",
		"Response cache occupancy.", func() float64 { return float64(s.cache.Len()) })
	s.reg.GaugeFunc("catamount_cache_limit",
		"Response cache capacity.", func() float64 { return float64(s.cache.Capacity()) })
	s.reg.GaugeFunc("catamount_cache_shards",
		"Response cache shard fan-out.", func() float64 { return float64(s.cache.ShardCount()) })
	// One occupancy gauge per shard: a skewed key distribution (one shard
	// full, others idle) shows up directly instead of hiding in the total.
	for i := 0; i < s.cache.ShardCount(); i++ {
		i := i
		s.reg.GaugeFunc("catamount_cache_shard_entries",
			"Response cache occupancy, by shard.",
			func() float64 { return float64(s.cache.ShardLen(i)) },
			obs.Label{Name: "shard", Value: strconv.Itoa(i)})
	}
	s.reg.GaugeFunc("catamount_max_in_flight",
		"Concurrency limiter capacity.", func() float64 { return float64(cap(s.sem)) })

	handle("GET /healthz", s.handleHealthz)
	handle("GET /metrics", s.handleMetrics)
	handle("GET /metrics.json", s.handleMetricsJSON)
	handle("GET /v1/domains", s.handleDomains)
	handle("GET /v1/accelerators", s.handleAccelerators)
	handle("GET /v1/costmodels", s.handleCostModels)
	handle("GET /v1/analyze", s.handleAnalyze)
	handle("POST /v1/analyze", s.handleAnalyze)
	handle("GET /v1/profile", s.handleProfile)
	handle("GET /v1/asymptotics", s.handleAsymptotics)
	handle("GET /v1/frontier", s.handleFrontier)
	handle("POST /v1/frontier", s.handleFrontier)
	handle("GET /v1/subbatch", s.handleSubbatch)
	handle("POST /v1/subbatch", s.handleSubbatch)
	handle("GET /v1/casestudy", s.handleCaseStudy)
	handle("POST /v1/casestudy", s.handleCaseStudy)
	handle("GET /v1/figures/{fig}", s.handleFigure)
	handle("POST /v1/figures/{fig}", s.handleFigure)
	handle("POST /v1/checkpoint/analyze", s.handleCheckpoint)
	handle("POST /v1/sweep", s.handleSweep)
	handle("POST /v1/plan", s.handlePlan)
	handle("POST /v1/jobs", s.handleJobSubmit)
	handle("GET /v1/jobs", s.handleJobList)
	handle("GET /v1/jobs/{id}", s.handleJobGet)
	handle("GET /v1/jobs/{id}/results", s.handleJobResults)
	handle("DELETE /v1/jobs/{id}", s.handleJobDelete)
	handle("GET /v1/traces", s.handleTraces)
	handle("GET /v1/traces/{id}", s.handleTraceGet)
	handle("POST /v1/admin/warmup", s.handleWarmup)
	handle("GET /v1/openapi.json", s.handleOpenAPI)
	return s
}

// Close drains the job service: running jobs checkpoint and park back to
// queued (file-backed stores resume them on the next boot). The HTTP layer
// itself holds no other background state.
func (s *Server) Close() { s.jobsSvc.Close() }

// counterSet is the comparable image of every serving counter, so one
// stabilized read can feed both the JSON and Prometheus exposition paths.
type counterSet struct {
	requests, inFlight, hits, misses int64
	coalesced, rejected, timeouts    int64
	sweepStreams, sweepPoints        int64
	planRuns, planPlans              int64
	cmGraph, cmPerop                 int64
	cacheEntries                     int
	cacheEvictions                   int64
}

// readCounters loads every counter once, in a fixed order.
func (s *Server) readCounters() counterSet {
	cs := s.cache.Stats()
	entries := 0
	for _, n := range cs.ShardEntries {
		entries += n
	}
	return counterSet{
		requests:       s.requests.Load(),
		inFlight:       s.inFlight.Load(),
		hits:           s.hits.Load(),
		misses:         s.misses.Load(),
		coalesced:      s.coalesced.Load(),
		rejected:       s.rejected.Load(),
		timeouts:       s.timeouts.Load(),
		sweepStreams:   s.sweepStreams.Load(),
		sweepPoints:    s.sweepPoints.Load(),
		planRuns:       s.planRuns.Load(),
		planPlans:      s.planPlans.Load(),
		cmGraph:        s.cmGraph.Load(),
		cmPerop:        s.cmPerop.Load(),
		cacheEntries:   entries,
		cacheEvictions: cs.Evictions,
	}
}

// snapshot is the one consistent capture path every metrics consumer
// shares. The counters are independent atomics (the hot paths must stay
// lock-free), so a single pass can tear — e.g. a cache hit counted in
// cache_hits but not yet in requests. Re-reading until two consecutive
// passes agree yields a pass no increment interleaved with; under
// relentless churn it settles for the freshest pass after a few tries
// rather than spinning (in_flight may genuinely never sit still).
func (s *Server) snapshot() counterSet {
	cur := s.readCounters()
	for tries := 0; tries < 4; tries++ {
		again := s.readCounters()
		if again == cur {
			return cur
		}
		cur = again
	}
	return cur
}

// Metrics snapshots the serving counters through the consistent capture
// path.
func (s *Server) Metrics() Metrics {
	c := s.snapshot()
	return Metrics{
		Requests:     c.requests,
		InFlight:     c.inFlight,
		CacheHits:    c.hits,
		CacheMisses:  c.misses,
		Coalesced:    c.coalesced,
		Rejected:     c.rejected,
		Timeouts:     c.timeouts,
		SweepStreams: c.sweepStreams,
		SweepPoints:  c.sweepPoints,
		PlanRuns:     c.planRuns,
		PlanPlans:    c.planPlans,
		CostModelRequests: map[string]int64{
			costmodel.GraphName: c.cmGraph,
			costmodel.PerOpName: c.cmPerop,
		},
		CacheEntries:   c.cacheEntries,
		CacheLimit:     s.cache.Capacity(),
		CacheShards:    s.cache.ShardCount(),
		CacheEvictions: c.cacheEvictions,
		MaxInFlight:    cap(s.sem),
	}
}

// countCostModel meters a backend-routed request for /metrics.
func (s *Server) countCostModel(cm costmodel.Model) {
	if cm.Name() == costmodel.PerOpName {
		s.cmPerop.Add(1)
		return
	}
	s.cmGraph.Add(1)
}

// resolveCostModel reads the "costmodel" query parameter shared by the
// backend-routed endpoints ("" means the default graph-level Roofline) and
// meters the choice.
func (s *Server) resolveCostModel(r *http.Request) (costmodel.Model, error) {
	cm, err := costmodel.Parse(r.URL.Query().Get("costmodel"))
	if err != nil {
		return nil, err
	}
	s.countCostModel(cm)
	return cm, nil
}

// ServeHTTP applies the request deadline and concurrency limit, then
// dispatches. Analysis endpoints (/v1/...) load-shed with 503 once
// MaxInFlight requests are admitted; /healthz and /metrics always answer,
// so probes keep working while the service is saturated.
//
// Every request is tagged with a request ID (the client's X-Request-Id, or
// a freshly minted one) that rides the context into engine stage spans and
// the structured request log, and is echoed back as a response header.
// Duration and response bytes record into the per-endpoint series whatever
// path the request takes — shed, timed out, or served.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	begin := time.Now()
	rid := r.Header.Get("X-Request-Id")
	if rid == "" {
		rid = obs.NewRequestID()
	}
	w.Header().Set("X-Request-Id", rid)
	ctx, cancel := context.WithTimeout(obs.WithRequestID(r.Context(), rid), s.timeout)
	defer cancel()
	r = r.WithContext(ctx)

	muxHandler, pattern := s.mux.Handler(r)
	cw := countingWriter{ResponseWriter: w}

	// Root a trace per analysis request: the request ID is the trace ID
	// (a client-supplied X-Request-Id names its trace directly), the route
	// pattern is the retention bucket, and engine stages nest under the
	// "request" root via the context. Trace reads themselves are exempt so
	// inspecting the flight recorder never evicts the traces under study.
	if pattern != "" && strings.HasPrefix(r.URL.Path, "/v1/") &&
		pattern != "GET /v1/traces" && pattern != "GET /v1/traces/{id}" {
		tr := obs.NewTrace(rid, pattern)
		tctx := tr.Context(ctx)
		root := obs.StartSpan(tctx, "request", nil)
		r = r.WithContext(root.Attach(tctx))
		defer func() {
			root.End()
			tr.Finish(cw.statusOr200() >= 400)
			obs.Flight.Add(tr)
		}()
	}

	defer func() {
		elapsed := time.Since(begin)
		hist, bytesCtr := s.otherHist, s.otherBytes
		if h, ok := s.routeHist[pattern]; ok {
			hist, bytesCtr = h, s.routeBytes[pattern]
		}
		hist.Observe(elapsed.Seconds())
		bytesCtr.Add(cw.bytes)
		if s.logger != nil {
			s.logger.LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("endpoint", pattern),
				slog.Int("status", cw.statusOr200()),
				slog.Int64("bytes", cw.bytes),
				slog.Duration("duration", elapsed),
				slog.String("request_id", rid))
		}
	}()

	if pattern == "" {
		// No route matched: the mux's fallback would write a plain-text
		// 404 or 405. Replay its verdict through a body-discarding recorder
		// to learn the status (and the Allow header a 405 carries), then
		// emit the v1 error envelope with it instead.
		rec := &verdictRecorder{hdr: make(http.Header)}
		muxHandler.ServeHTTP(rec, r)
		status := rec.status
		if status == 0 {
			status = http.StatusNotFound
		}
		msg := "no such endpoint"
		if status == http.StatusMethodNotAllowed {
			msg = "method not allowed"
			if allow := rec.hdr.Get("Allow"); allow != "" {
				cw.Header().Set("Allow", allow)
			}
		}
		apiError(&cw, r, status, msg)
		return
	}

	if strings.HasPrefix(r.URL.Path, "/v1/") {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.rejected.Add(1)
			apiError(&cw, r, http.StatusServiceUnavailable, "server at capacity")
			return
		}
	}
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	s.mux.ServeHTTP(&cw, r)
}

// countingWriter meters status and bytes while passing flushes and write
// deadlines through: Flush keeps sweep streaming working and Unwrap keeps
// http.NewResponseController able to reach the real connection.
type countingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (c *countingWriter) WriteHeader(code int) {
	if c.status == 0 {
		c.status = code
	}
	c.ResponseWriter.WriteHeader(code)
}

func (c *countingWriter) Write(b []byte) (int, error) {
	if c.status == 0 {
		c.status = http.StatusOK
	}
	n, err := c.ResponseWriter.Write(b)
	c.bytes += int64(n)
	return n, err
}

func (c *countingWriter) Flush() {
	if f, ok := c.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (c *countingWriter) Unwrap() http.ResponseWriter { return c.ResponseWriter }

func (c *countingWriter) statusOr200() int {
	if c.status == 0 {
		return http.StatusOK
	}
	return c.status
}

// verdictRecorder captures a handler's status and headers while discarding
// the body — how ServeHTTP learns the mux fallback's 404-vs-405 verdict
// before writing the enveloped version itself.
type verdictRecorder struct {
	hdr    http.Header
	status int
}

func (v *verdictRecorder) Header() http.Header { return v.hdr }

func (v *verdictRecorder) WriteHeader(code int) {
	if v.status == 0 {
		v.status = code
	}
}

func (v *verdictRecorder) Write(b []byte) (int, error) {
	if v.status == 0 {
		v.status = http.StatusOK
	}
	return len(b), nil
}

// ---------------------------------------------------------------------------
// Cached single-flight dispatch

// respondCached serves key from the LRU, coalescing concurrent misses into
// one upstream computation whose marshaled response backfills the cache.
func (s *Server) respondCached(w http.ResponseWriter, r *http.Request, key string, compute func() (any, error)) {
	if b, ok := s.cache.Get(key); ok {
		s.hits.Add(1)
		writeJSONBytes(w, b)
		return
	}
	call, leader := s.flights.do(key, func() ([]byte, error) {
		s.computeSem <- struct{}{}
		defer func() { <-s.computeSem }()
		s.misses.Add(1)
		if hook := s.computeHook; hook != nil {
			hook(key)
		}
		v, err := compute()
		if err != nil {
			return nil, err
		}
		b, err := json.Marshal(v)
		if err != nil {
			return nil, err
		}
		s.cache.Add(key, b)
		return b, nil
	})
	if !leader {
		s.coalesced.Add(1)
	}
	select {
	case <-call.done:
		if call.err != nil {
			// Engine computations are deterministic: after request
			// validation, a compute error means this request cannot be
			// served as specified (e.g. an unreachable parameter target),
			// not that the server faulted — report it as the client's.
			// A recovered panic is the exception: that is ours.
			status := http.StatusUnprocessableEntity
			if errors.Is(call.err, errComputePanic) {
				status = http.StatusInternalServerError
			}
			apiError(w, r, status, call.err.Error())
			return
		}
		writeJSONBytes(w, call.val)
	case <-r.Context().Done():
		s.timeouts.Add(1)
		apiError(w, r, http.StatusGatewayTimeout, "request deadline exceeded")
	}
}

// ---------------------------------------------------------------------------
// Handlers

// healthResponse is the /healthz body: liveness plus enough build and
// occupancy detail to tell *which* binary is alive and how warm it is.
type healthResponse struct {
	Status              string         `json:"status"`
	UptimeSeconds       float64        `json:"uptime_seconds"`
	GoVersion           string         `json:"go_version"`
	Revision            string         `json:"vcs_revision,omitempty"`
	Modified            bool           `json:"vcs_modified,omitempty"`
	EngineCache         cat.CacheStats `json:"engine_cache"`
	ResponseCache       int            `json:"response_cache_entries"`
	ResponseCacheShards int            `json:"response_cache_shards"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	rev, modified := buildRevision()
	writeJSON(w, healthResponse{
		Status:              "ok",
		UptimeSeconds:       time.Since(s.start).Seconds(),
		GoVersion:           runtime.Version(),
		Revision:            rev,
		Modified:            modified,
		EngineCache:         s.eng.CacheStats(),
		ResponseCache:       s.cache.Len(),
		ResponseCacheShards: s.cache.ShardCount(),
	})
}

// handleMetrics negotiates the exposition format: Prometheus text by
// default, the legacy JSON snapshot when the client asks for JSON.
// /metrics.json always serves JSON, so dashboards that predate the text
// exposition keep a stable URL.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		s.handleMetricsJSON(w, r)
		return
	}
	s.writePrometheus(w)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Metrics())
}

func (s *Server) handleDomains(w http.ResponseWriter, _ *http.Request) {
	out := make([]string, 0, len(cat.Domains()))
	for _, d := range cat.Domains() {
		out = append(out, string(d))
	}
	writeJSON(w, map[string]any{"domains": out})
}

func (s *Server) handleAccelerators(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"accelerators": hw.Catalog(), "aliases": hw.Aliases()})
}

// handleCostModels lists the step-time backends with their aliases, so
// clients can discover what the "costmodel" request field accepts.
func (s *Server) handleCostModels(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"costmodels": costmodel.Infos()})
}

// analyzeResponse is one characterization plus its Roofline estimate under
// the request's cost-model backend.
type analyzeResponse struct {
	Requirements cat.Requirements `json:"requirements"`
	Accelerator  string           `json:"accelerator"`
	CostModel    string           `json:"costmodel"`
	StepSeconds  float64          `json:"step_seconds"`
	Utilization  float64          `json:"utilization"`
	ComputeBound bool             `json:"compute_bound"`
}

// parseModelPoint reads the (domain, params, batch) triple shared by the
// analyze and profile endpoints, resolving an omitted batch to the
// domain's default. On failure it writes the error response and reports
// ok=false.
func (s *Server) parseModelPoint(w http.ResponseWriter, r *http.Request) (d cat.Domain, params, batch float64, ok bool) {
	q := r.URL.Query()
	d, err := parseDomain(q)
	if err != nil {
		apiError(w, r, http.StatusBadRequest, err.Error())
		return d, 0, 0, false
	}
	params, err = parsePositiveFloat(q, "params", 0)
	if err != nil {
		apiError(w, r, http.StatusBadRequest, err.Error())
		return d, 0, 0, false
	}
	if params == 0 {
		apiError(w, r, http.StatusBadRequest, "missing required parameter \"params\"")
		return d, 0, 0, false
	}
	batch, err = parsePositiveFloat(q, "batch", 0)
	if err != nil {
		apiError(w, r, http.StatusBadRequest, err.Error())
		return d, 0, 0, false
	}
	if batch == 0 {
		m, err := s.eng.Model(d)
		if err != nil {
			apiError(w, r, http.StatusInternalServerError, err.Error())
			return d, 0, 0, false
		}
		batch = m.DefaultBatch
	}
	return d, params, batch, true
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	d, params, batch, ok := s.parseModelPoint(w, r)
	if !ok {
		return
	}
	acc, err := s.resolveAccelerator(r)
	if err != nil {
		apiError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	cm, err := s.resolveCostModel(r)
	if err != nil {
		apiError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	// The backend enters the key by canonical name, so alias spellings
	// ("perop", "per-op-roofline") share one cache entry.
	key := fmt.Sprintf("analyze|%s|%g|%g|%s|%s", d, params, batch, cm.Name(), accKey(acc))
	s.respondCached(w, r, key, func() (any, error) {
		req, est, err := s.eng.AnalyzeOn(r.Context(), d, params, batch, acc, cm)
		if err != nil {
			return nil, err
		}
		return analyzeResponse{
			Requirements: req,
			Accelerator:  acc.Name,
			CostModel:    est.CostModel,
			StepSeconds:  est.StepSeconds,
			Utilization:  est.Utilization,
			ComputeBound: est.ComputeBound,
		}, nil
	})
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	d, params, batch, ok := s.parseModelPoint(w, r)
	if !ok {
		return
	}
	key := fmt.Sprintf("profile|%s|%g|%g", d, params, batch)
	s.respondCached(w, r, key, func() (any, error) {
		return s.eng.Profile(d, params, batch)
	})
}

func (s *Server) handleAsymptotics(w http.ResponseWriter, r *http.Request) {
	s.respondCached(w, r, "asymptotics", func() (any, error) {
		return s.eng.AsymptoticTable()
	})
}

func (s *Server) handleFrontier(w http.ResponseWriter, r *http.Request) {
	acc, err := s.resolveAccelerator(r)
	if err != nil {
		apiError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	cm, err := s.resolveCostModel(r)
	if err != nil {
		apiError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	key := "frontier|" + cm.Name() + "|" + accKey(acc)
	s.respondCached(w, r, key, func() (any, error) {
		rows, err := s.eng.FrontierTableWith(acc, cm)
		if err != nil {
			return nil, err
		}
		return map[string]any{"accelerator": acc.Name, "costmodel": cm.Name(), "rows": rows}, nil
	})
}

// subbatchResponse is the Figure 11-style sweep for one domain/device pair
// with the §5.2.1 policy choices marked.
type subbatchResponse struct {
	cat.SubbatchSelection
	Accelerator string `json:"accelerator"`
}

func (s *Server) handleSubbatch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	d, err := parseDomain(q)
	if err != nil {
		apiError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	acc, err := s.resolveAccelerator(r)
	if err != nil {
		apiError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	tol, err := parsePositiveFloat(q, "tol", 0.05)
	if err != nil {
		apiError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	params, err := parsePositiveFloat(q, "params", 0)
	if err != nil {
		apiError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	policies, err := parsePolicies(q.Get("policy"))
	if err != nil {
		apiError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	cm, err := s.resolveCostModel(r)
	if err != nil {
		apiError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	// Key on the canonical parsed policies and backend name, so aliases
	// ("min-time", "min-time-per-sample"; "perop", "per-op-roofline") and
	// the "" / "all" pair share one entry. params == 0 resolves inside
	// SubbatchSelect to the domain's accuracy-frontier model size (Table 1).
	polNames := make([]string, len(policies))
	for i, pol := range policies {
		polNames[i] = pol.String()
	}
	key := fmt.Sprintf("subbatch|%s|%g|%g|%s|%s|%s", d, params, tol,
		strings.Join(polNames, "+"), cm.Name(), accKey(acc))
	s.respondCached(w, r, key, func() (any, error) {
		sel, err := s.eng.SubbatchSelectWith(d, params, acc, cm, policies, tol)
		if err != nil {
			return nil, err
		}
		return subbatchResponse{SubbatchSelection: *sel, Accelerator: acc.Name}, nil
	})
}

// caseStudyResponse is the Table 5 plan without the (non-serializable)
// model graph.
type caseStudyResponse struct {
	Accelerator     string                    `json:"accelerator"`
	CostModel       string                    `json:"costmodel"`
	Model           string                    `json:"model"`
	Size            float64                   `json:"size"`
	Params          float64                   `json:"params"`
	StepFLOPs       float64                   `json:"step_flops"`
	AlgBytes        float64                   `json:"alg_bytes"`
	CacheAwareBytes float64                   `json:"cache_aware_bytes"`
	StepSeconds     float64                   `json:"step_seconds"`
	Stages          []parallel.CaseStudyStage `json:"stages"`
}

func (s *Server) handleCaseStudy(w http.ResponseWriter, r *http.Request) {
	acc, err := s.resolveAccelerator(r)
	if err != nil {
		apiError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	cm, err := s.resolveCostModel(r)
	if err != nil {
		apiError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	key := "casestudy|" + cm.Name() + "|" + accKey(acc)
	s.respondCached(w, r, key, func() (any, error) {
		cs, err := s.eng.WordLMCaseStudyOnWith(acc, cm)
		if err != nil {
			return nil, err
		}
		return caseStudyResponse{
			Accelerator:     acc.Name,
			CostModel:       cs.CostModel,
			Model:           cs.Model.Name,
			Size:            cs.Size,
			Params:          cs.Params,
			StepFLOPs:       cs.StepFLOPs,
			AlgBytes:        cs.AlgBytes,
			CacheAwareBytes: cs.CacheAwareBytes,
			StepSeconds:     cs.StepSeconds,
			Stages:          cs.Stages,
		}, nil
	})
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	fig := r.PathValue("fig")
	q := r.URL.Query()
	switch fig {
	case "6", "curve":
		d, err := parseDomain(q)
		if err != nil {
			apiError(w, r, http.StatusBadRequest, err.Error())
			return
		}
		s.respondCached(w, r, "figure6|"+string(d), func() (any, error) {
			return cat.Figure6(d)
		})
	case "7", "8", "9", "sweeps":
		s.respondCached(w, r, "figuresweeps", func() (any, error) {
			return s.eng.FigureSweeps()
		})
	case "10", "footprint":
		s.respondCached(w, r, "figure10", func() (any, error) {
			return s.eng.Figure10()
		})
	case "11", "subbatch":
		acc, err := s.resolveAccelerator(r)
		if err != nil {
			apiError(w, r, http.StatusBadRequest, err.Error())
			return
		}
		cm, err := s.resolveCostModel(r)
		if err != nil {
			apiError(w, r, http.StatusBadRequest, err.Error())
			return
		}
		s.respondCached(w, r, "figure11|"+cm.Name()+"|"+accKey(acc), func() (any, error) {
			return s.eng.Figure11With(acc, cm)
		})
	case "12", "dataparallel":
		acc, err := s.resolveAccelerator(r)
		if err != nil {
			apiError(w, r, http.StatusBadRequest, err.Error())
			return
		}
		cm, err := s.resolveCostModel(r)
		if err != nil {
			apiError(w, r, http.StatusBadRequest, err.Error())
			return
		}
		s.respondCached(w, r, "figure12|"+cm.Name()+"|"+accKey(acc), func() (any, error) {
			return s.eng.Figure12OnWith(acc, cm)
		})
	default:
		apiError(w, r, http.StatusBadRequest,
			fmt.Sprintf("unknown figure %q (one of: 6..12, curve, sweeps, footprint, subbatch, dataparallel)", fig))
	}
}

// checkpointResponse characterizes an uploaded compute-graph checkpoint.
type checkpointResponse struct {
	Name            string             `json:"name"`
	Policy          string             `json:"policy"`
	Bindings        map[string]float64 `json:"bindings"`
	Params          float64            `json:"params"`
	FLOPs           float64            `json:"flops"`
	Bytes           float64            `json:"bytes"`
	Intensity       float64            `json:"intensity"`
	FootprintBytes  float64            `json:"footprint_bytes"`
	PersistentBytes float64            `json:"persistent_bytes"`
}

// handleCheckpoint analyzes a POSTed graphio JSON checkpoint. Every free
// symbolic dimension of the graph must be bound through a query parameter
// of the same name (e.g. ?b=128&h=2048); "policy" selects the footprint
// traversal (fifo | mem-greedy). A graph symbol that collides with a
// reserved parameter name binds through the "bind." prefix instead
// (?bind.policy=8). Uploads are not cached: the key space is the body
// itself.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	policy, err := parseSchedulePolicy(q.Get("policy"))
	if err != nil {
		apiError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	g, err := graphio.Load(http.MaxBytesReader(w, r.Body, 32<<20))
	if err != nil {
		apiError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	// Everything past the body read (compiling an arbitrary uploaded
	// graph, stats, footprint traversal) runs under the compute semaphore
	// and the request deadline like every other endpoint. The token is
	// acquired *before* the computation goroutine is spawned: a request
	// whose deadline fires while still queued exits without leaving a
	// parked goroutine (and its decoded graph) behind, so client-
	// controlled slow uploads cannot accumulate unbounded pending work.
	select {
	case s.computeSem <- struct{}{}:
	case <-r.Context().Done():
		s.timeouts.Add(1)
		apiError(w, r, http.StatusGatewayTimeout, "request deadline exceeded")
		return
	}
	type outcome struct {
		resp   checkpointResponse
		status int
		errMsg string
	}
	done := make(chan outcome, 1)
	go func() {
		// Outside net/http's recover: compiling a hostile upload may panic
		// (e.g. an op given the wrong arity passes graph validation but
		// trips cost derivation). One bad checkpoint must not kill the
		// process — surface it as a malformed-request error instead.
		defer func() {
			if r := recover(); r != nil {
				done <- outcome{status: http.StatusBadRequest,
					errMsg: fmt.Sprintf("invalid checkpoint graph: %v", r)}
			}
		}()
		defer func() { <-s.computeSem }()
		c := graph.Compile(g)
		slots := c.NewSlots()
		bindings := make(map[string]float64, len(c.Syms.Names()))
		var missing []string
		for _, name := range c.Syms.Names() {
			param := name
			if param == "policy" {
				// The schedule-policy selector owns the bare name; a graph
				// symbol called "policy" binds through the escape prefix.
				param = "bind.policy"
			}
			raw := q.Get(param)
			if raw == "" {
				missing = append(missing, param)
				continue
			}
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
				done <- outcome{status: http.StatusBadRequest,
					errMsg: fmt.Sprintf("binding %q: invalid value %q", name, raw)}
				return
			}
			slot, _ := c.Syms.Slot(name)
			slots[slot] = v
			bindings[name] = v
		}
		if len(missing) > 0 {
			done <- outcome{status: http.StatusBadRequest,
				errMsg: fmt.Sprintf("graph symbols need bindings via query parameters: %s", strings.Join(missing, ", "))}
			return
		}
		stats := c.EvalStats(slots)
		fp, err := c.Footprint(slots, policy, nil)
		if err != nil {
			done <- outcome{status: http.StatusUnprocessableEntity, errMsg: err.Error()}
			return
		}
		done <- outcome{resp: checkpointResponse{
			Name:            g.Name,
			Policy:          policy.String(),
			Bindings:        bindings,
			Params:          stats.Params,
			FLOPs:           stats.FLOPs,
			Bytes:           stats.Bytes,
			Intensity:       stats.Intensity,
			FootprintBytes:  fp.PeakBytes,
			PersistentBytes: fp.PersistentBytes,
		}}
	}()
	select {
	case res := <-done:
		if res.status != 0 {
			apiError(w, r, res.status, res.errMsg)
			return
		}
		writeJSON(w, res.resp)
	case <-r.Context().Done():
		s.timeouts.Add(1)
		apiError(w, r, http.StatusGatewayTimeout, "request deadline exceeded")
	}
}

// ---------------------------------------------------------------------------
// Parsing and serialization helpers

// resolveAccelerator picks the device for a request: a POSTed JSON body is
// a user-supplied custom accelerator (catalog interchange schema), the
// "accel" query parameter names a catalog entry, and absence means the
// paper's Table 4 target. Every path returns a validated device.
func (s *Server) resolveAccelerator(r *http.Request) (hw.Accelerator, error) {
	if r.Method == http.MethodPost && r.Body != nil && r.ContentLength != 0 {
		return hw.ReadAccelerator(http.MaxBytesReader(nil, r.Body, 1<<20))
	}
	name := r.URL.Query().Get("accel")
	if name == "" {
		return hw.TargetAccelerator(), nil
	}
	return hw.Lookup(name)
}

// accKey fingerprints a device for cache keys: the name alone is not
// enough once custom uploads can shadow catalog names. The name is
// user-controlled on uploads, so %q confines it to an escaped, quoted
// segment — a crafted name cannot forge other key components and poison
// the shared response cache.
func accKey(a hw.Accelerator) string {
	return fmt.Sprintf("%q/%g/%g/%g/%g/%g/%g/%g/%g/%g", a.Name, a.PeakFLOPS, a.CacheBytes,
		a.MemBandwidth, a.MemCapacity, a.InterconnectBW, a.AchievableCompute, a.AchievableMemBW,
		a.CostPerHourUSD, a.TDPWatts)
}

func parseDomain(q url.Values) (cat.Domain, error) {
	name := q.Get("domain")
	if name == "" {
		return "", errors.New("missing required parameter \"domain\"")
	}
	for _, d := range cat.Domains() {
		if string(d) == name {
			return d, nil
		}
	}
	known := make([]string, 0, len(cat.Domains()))
	for _, d := range cat.Domains() {
		known = append(known, string(d))
	}
	return "", fmt.Errorf("unknown domain %q (one of: %s)", name, strings.Join(known, ", "))
}

// parsePositiveFloat reads a strictly positive finite float parameter,
// returning def when absent.
func parsePositiveFloat(q url.Values, name string, def float64) (float64, error) {
	raw := q.Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: invalid number %q", name, raw)
	}
	if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("parameter %q: must be a positive finite number, got %q", name, raw)
	}
	return v, nil
}

// parsePolicies maps the "policy" parameter to subbatch policies; empty or
// "all" selects all three §5.2.1 candidates.
func parsePolicies(raw string) ([]hw.SubbatchPolicy, error) {
	switch raw {
	case "", "all":
		return []hw.SubbatchPolicy{hw.MinTimePerSample, hw.RidgePointMatch, hw.IntensitySaturation}, nil
	case "min-time-per-sample", "min-time":
		return []hw.SubbatchPolicy{hw.MinTimePerSample}, nil
	case "ridge-point-match", "ridge":
		return []hw.SubbatchPolicy{hw.RidgePointMatch}, nil
	case "intensity-saturation", "saturation":
		return []hw.SubbatchPolicy{hw.IntensitySaturation}, nil
	}
	return nil, fmt.Errorf("unknown subbatch policy %q (min-time-per-sample, ridge-point-match, intensity-saturation, all)", raw)
}

func parseSchedulePolicy(raw string) (graph.SchedulePolicy, error) {
	switch raw {
	case "", "mem-greedy":
		return graph.PolicyMemGreedy, nil
	case "fifo":
		return graph.PolicyFIFO, nil
	}
	return 0, fmt.Errorf("unknown schedule policy %q (fifo, mem-greedy)", raw)
}

func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		apiError(w, nil, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSONBytes(w, b)
}

func writeJSONBytes(w http.ResponseWriter, b []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
	if len(b) == 0 || b[len(b)-1] != '\n' {
		w.Write([]byte("\n"))
	}
}

// apiError emits the one v1 error envelope every non-2xx response uses:
//
//	{"error": {"code": "...", "message": "...", "request_id": "..."}}
//
// The code derives from the status (api.CodeForStatus) and the request ID
// from r's context (ServeHTTP tags it before dispatch), so a client error
// body alone is enough to find the matching server trace. r may be nil on
// the rare paths without a request in hand; the envelope then simply omits
// request_id.
func apiError(w http.ResponseWriter, r *http.Request, status int, msg string) {
	var rid string
	if r != nil {
		rid = obs.RequestID(r.Context())
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(api.ErrorResponse{Error: api.Error{
		Code:      api.CodeForStatus(status),
		Message:   msg,
		RequestID: rid,
	}})
}
