package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"

	"catamount/internal/obs"
)

// TestPrometheusExposition drives traffic through several endpoints and
// checks that GET /metrics serves a payload where every line matches the
// text-format grammar, the per-endpoint duration histograms and engine
// stage timings are present, and every histogram family satisfies the
// bucket-monotonicity and count/sum invariants.
func TestPrometheusExposition(t *testing.T) {
	s := newTestServer(Config{})
	get(t, s, "/v1/analyze?domain=wordlm&params=1e8&batch=64")
	get(t, s, "/v1/analyze?domain=wordlm&params=1e8&batch=64")
	get(t, s, "/healthz")

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q, want text exposition", ct)
	}
	body := rec.Body.String()
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("exposition format: %v", err)
	}

	for _, want := range []string{
		"# TYPE catamount_http_request_duration_seconds histogram",
		`catamount_http_request_duration_seconds_bucket{endpoint="GET /v1/analyze",le="+Inf"} 2`,
		`catamount_http_request_duration_seconds_count{endpoint="GET /healthz"} 1`,
		"# TYPE catamount_stage_duration_seconds histogram",
		`catamount_stage_duration_seconds_count{stage="characterize"}`,
		`catamount_stage_duration_seconds_count{stage="model_build"}`,
		// Three prior requests plus the scrape itself.
		"catamount_http_requests_total 4",
		"catamount_cache_hits_total 1",
		"catamount_cache_misses_total 1",
		`catamount_costmodel_requests_total{backend="graph"} 2`,
		`catamount_http_response_bytes_total{endpoint="GET /v1/analyze"}`,
		"catamount_cache_limit 1024",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}

	assertAllHistogramInvariants(t, body)
}

// assertAllHistogramInvariants walks every *_bucket series in a payload,
// grouped by (family, labels-without-le), and checks cumulative bucket
// monotonicity, that the +Inf bucket equals the family's _count sample,
// and that _sum is present.
func assertAllHistogramInvariants(t *testing.T, payload string) {
	t.Helper()
	type series struct {
		cumulative []float64
		count      float64
		hasCount   bool
		hasSum     bool
	}
	families := make(map[string]*series)
	at := func(key string) *series {
		if families[key] == nil {
			families[key] = &series{}
		}
		return families[key]
	}
	for _, line := range strings.Split(payload, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		name, valRaw := line[:sp], line[sp+1:]
		switch {
		case strings.Contains(name, "_bucket{"):
			v, err := strconv.ParseFloat(valRaw, 64)
			if err != nil {
				t.Fatalf("bad bucket value in %q: %v", line, err)
			}
			// Key by the series identity minus the le label, so buckets of
			// one histogram group together.
			key := stripLE(name)
			sr := at(key)
			sr.cumulative = append(sr.cumulative, v)
		case strings.Contains(name, "_count"):
			v, _ := strconv.ParseFloat(valRaw, 64)
			sr := at(countSumKey(name, "_count"))
			sr.count, sr.hasCount = v, true
		case strings.Contains(name, "_sum"):
			at(countSumKey(name, "_sum")).hasSum = true
		}
	}
	checked := 0
	for key, sr := range families {
		if len(sr.cumulative) == 0 {
			continue
		}
		checked++
		for i := 1; i < len(sr.cumulative); i++ {
			if sr.cumulative[i] < sr.cumulative[i-1] {
				t.Fatalf("%s: buckets not monotone: %v", key, sr.cumulative)
			}
		}
		if !sr.hasCount || !sr.hasSum {
			t.Fatalf("%s: missing _count or _sum", key)
		}
		if last := sr.cumulative[len(sr.cumulative)-1]; last != sr.count {
			t.Fatalf("%s: +Inf bucket %v != count %v", key, last, sr.count)
		}
	}
	if checked == 0 {
		t.Fatal("no histogram families found in payload")
	}
}

// countSumKey maps a _count/_sum series name onto the key its buckets group
// under: the suffix becomes _bucket, and a label-less series gains the empty
// brace set stripLE leaves behind on its buckets.
func countSumKey(name, suffix string) string {
	key := strings.Replace(name, suffix, "_bucket", 1)
	if !strings.Contains(key, "{") {
		key += "{}"
	}
	return key
}

// stripLE removes the le="..." pair from a bucket series name.
func stripLE(name string) string {
	i := strings.Index(name, `le="`)
	if i < 0 {
		return name
	}
	j := strings.IndexByte(name[i+4:], '"')
	end := i + 4 + j + 1
	// Swallow a separating comma on whichever side has one.
	if i > 0 && name[i-1] == ',' {
		i--
	} else if end < len(name) && name[end] == ',' {
		end++
	}
	return name[:i] + name[end:]
}

// TestMetricsAcceptNegotiation pins the JSON compatibility contract:
// GET /metrics with Accept: application/json and GET /metrics.json return
// byte-identical payloads with the same schema the endpoint served before
// the text exposition existed.
func TestMetricsAcceptNegotiation(t *testing.T) {
	s := newTestServer(Config{})
	get(t, s, "/v1/analyze?domain=wordlm&params=1e8&batch=64")

	reqJSON := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	reqJSON.Header.Set("Accept", "application/json")
	recNeg := httptest.NewRecorder()
	s.ServeHTTP(recNeg, reqJSON)
	if ct := recNeg.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("negotiated content type %q", ct)
	}

	recJSON, _ := get(t, s, "/metrics.json")

	// The two views must carry the same schema and counts. Each scrape is
	// itself a request, so normalize the request counter before comparing.
	var mNeg, m Metrics
	if err := json.Unmarshal(recNeg.Body.Bytes(), &mNeg); err != nil {
		t.Fatalf("negotiated body does not decode into Metrics: %v", err)
	}
	if err := json.Unmarshal(recJSON.Body.Bytes(), &m); err != nil {
		t.Fatalf("metrics.json does not decode into Metrics: %v", err)
	}
	mNeg.Requests, m.Requests = 0, 0
	if !reflect.DeepEqual(mNeg, m) {
		t.Fatalf("Accept-negotiated metrics differ from /metrics.json:\n%+v\nvs\n%+v", mNeg, m)
	}
	if m.CacheMisses != 1 || m.CacheLimit != 1024 {
		t.Fatalf("decoded metrics %+v", m)
	}
	if m.CostModelRequests["graph"] != 1 {
		t.Fatalf("costmodel counters missing: %+v", m.CostModelRequests)
	}
}

func TestHealthzReportsBuildAndOccupancy(t *testing.T) {
	s := newTestServer(Config{})
	get(t, s, "/v1/analyze?domain=wordlm&params=1e8&batch=64")
	rec, body := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
	if body["status"] != "ok" {
		t.Fatalf("status = %v", body["status"])
	}
	if _, ok := body["uptime_seconds"].(float64); !ok {
		t.Fatalf("uptime missing: %s", rec.Body)
	}
	if gv, _ := body["go_version"].(string); !strings.HasPrefix(gv, "go") {
		t.Fatalf("go_version = %q", gv)
	}
	ec, ok := body["engine_cache"].(map[string]any)
	if !ok {
		t.Fatalf("engine_cache missing: %s", rec.Body)
	}
	if ec["domains"].(float64) < 1 {
		t.Fatalf("engine cache should report the warmed wordlm model: %s", rec.Body)
	}
}

func TestRequestIDHeader(t *testing.T) {
	s := newTestServer(Config{})
	rec, _ := get(t, s, "/healthz")
	if rec.Header().Get("X-Request-Id") == "" {
		t.Fatal("response missing generated X-Request-Id")
	}
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set("X-Request-Id", "client-supplied-7")
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, req)
	if got := rec2.Header().Get("X-Request-Id"); got != "client-supplied-7" {
		t.Fatalf("X-Request-Id = %q, want the client's ID echoed", got)
	}
}

func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	logger, err := obs.NewLogger(&buf, "json", 0)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(Config{Logger: logger})
	get(t, s, "/healthz")
	line := buf.String()
	for _, want := range []string{`"msg":"request"`, `"endpoint":"GET /healthz"`,
		`"status":200`, `"request_id":"`, `"duration"`} {
		if !strings.Contains(line, want) {
			t.Fatalf("request log %q missing %q", line, want)
		}
	}
}

// TestMetricsConsistentUnderSweepLoad hammers both metrics views while
// sweep streams run, so the race detector crosses every snapshot path
// against the hot counters, and checks cross-counter invariants that a
// torn snapshot would violate.
func TestMetricsConsistentUnderSweepLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep-load hammer is a -race soak; skipped in short mode")
	}
	s := newTestServer(Config{})
	spec := []byte(`{"domains":["wordlm"],"params":[1e8,2e8,4e8],"subbatches":[32,64]}`)

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v1/sweep", bytes.NewReader(spec))
				s.ServeHTTP(httptest.NewRecorder(), req)
			}
		}()
	}
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
				if err := obs.ValidateExposition(rec.Body.String()); err != nil {
					errs <- err
					return
				}
				var m Metrics
				recJSON := httptest.NewRecorder()
				s.ServeHTTP(recJSON, httptest.NewRequest(http.MethodGet, "/metrics.json", nil))
				if err := json.Unmarshal(recJSON.Body.Bytes(), &m); err != nil {
					errs <- err
					return
				}
				if m.CacheHits < 0 || m.CacheMisses < 0 || m.Requests < 0 ||
					m.SweepPoints < 0 || m.InFlight < 0 {
					errs <- fmt.Errorf("negative counter in snapshot: %+v", m)
					return
				}
				if m.CacheEntries > m.CacheLimit {
					errs <- fmt.Errorf("cache entries %d over limit %d", m.CacheEntries, m.CacheLimit)
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
