package server

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"catamount/internal/api"
	"catamount/internal/costmodel"
	"catamount/internal/jobs"
	"catamount/internal/sweep"
)

// This file is the async half of the v1 surface: POST /v1/jobs accepts a
// sweep or plan spec and returns immediately with a job ID; the jobs
// service evaluates it in the background with checkpointed progress, and
// the job endpoints expose the lifecycle — status with progress and ETA,
// paginated results with cursor tokens and ETags, cancellation, deletion.
// Unlike POST /v1/sweep, a job is not bounded by the request deadline or
// MaxSweepPoints, and with a file-backed store it survives restarts.

// jobPageLimitDefault / Max bound the "limit" results-page parameter.
const (
	jobPageLimitDefault = 1000
	jobPageLimitMax     = 10000
)

// jobError maps a jobs-service error onto the v1 envelope.
func (s *Server) jobError(w http.ResponseWriter, r *http.Request, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, jobs.ErrQueueFull), errors.Is(err, jobs.ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, jobs.ErrNotTerminal), errors.Is(err, jobs.ErrTerminal):
		status = http.StatusConflict
	}
	apiError(w, r, status, err.Error())
}

// countCostModelName meters a job admission under the per-backend served
// counters, from the resolved canonical backend name.
func (s *Server) countCostModelName(name string) {
	if name == costmodel.PerOpName {
		s.cmPerop.Add(1)
		return
	}
	s.cmGraph.Add(1)
}

// handleJobSubmit accepts a JobSpec, folds the "costmodel" query parameter
// into it under the api precedence rule (query > spec field), validates it
// fully (every rejection is a 400 with the envelope), and queues it.
// Responds 202 with the job's status and a Location header.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var spec api.JobSpec
	if err := api.DecodeJSON(w, r.Body, 1<<20, &spec); err != nil {
		apiError(w, r, http.StatusBadRequest, "invalid job spec: "+err.Error())
		return
	}
	spec.ApplyCostModelParam(r.URL.Query().Get("costmodel"))
	m, err := s.jobsSvc.Submit(spec)
	if err != nil {
		s.jobError(w, r, err)
		return
	}
	s.countCostModelName(m.CostModel)
	st, err := s.jobsSvc.StatusOf(m.ID)
	if err != nil {
		st = jobs.Status{Meta: m}
	}
	w.Header().Set("Location", "/v1/jobs/"+m.ID)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	b, _ := json.Marshal(st)
	w.Write(append(b, '\n'))
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	metas := s.jobsSvc.List()
	sts := make([]jobs.Status, 0, len(metas))
	for _, m := range metas {
		if st, err := s.jobsSvc.StatusOf(m.ID); err == nil {
			sts = append(sts, st)
		}
	}
	writeJSON(w, map[string]any{"jobs": sts, "count": len(sts)})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.jobsSvc.StatusOf(r.PathValue("id"))
	if err != nil {
		s.jobError(w, r, err)
		return
	}
	writeJSON(w, st)
}

// handleJobDelete cancels an active job (the job transitions to cancelled,
// keeping its partial results readable) and deletes a terminal one.
func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	m, err := s.jobsSvc.Get(id)
	if err != nil {
		s.jobError(w, r, err)
		return
	}
	if m.State.Terminal() {
		if err := s.jobsSvc.Delete(id); err != nil {
			s.jobError(w, r, err)
			return
		}
		writeJSON(w, map[string]any{"id": id, "deleted": true})
		return
	}
	if _, err := s.jobsSvc.Cancel(id); err != nil {
		s.jobError(w, r, err)
		return
	}
	st, err := s.jobsSvc.StatusOf(id)
	if err != nil {
		s.jobError(w, r, err)
		return
	}
	writeJSON(w, st)
}

// ---------------------------------------------------------------------------
// Paginated results

// encodeJobCursor mints the opaque page token: versioned and bound to its
// job, so a token cannot be replayed against another job's stream.
func encodeJobCursor(id string, start int) string {
	return base64.RawURLEncoding.EncodeToString(fmt.Appendf(nil, "v1|%s|%d", id, start))
}

func decodeJobCursor(tok, id string) (int, error) {
	b, err := base64.RawURLEncoding.DecodeString(tok)
	if err != nil {
		return 0, fmt.Errorf("invalid cursor")
	}
	parts := strings.Split(string(b), "|")
	if len(parts) != 3 || parts[0] != "v1" {
		return 0, fmt.Errorf("invalid cursor")
	}
	if parts[1] != id {
		return 0, fmt.Errorf("cursor belongs to job %q", parts[1])
	}
	start, err := strconv.Atoi(parts[2])
	if err != nil || start < 0 {
		return 0, fmt.Errorf("invalid cursor")
	}
	return start, nil
}

// jobResultsJSON is the format=json page envelope.
type jobResultsJSON struct {
	JobID       string            `json:"job_id"`
	State       jobs.State        `json:"state"`
	Start       int               `json:"start"`
	Count       int               `json:"count"`
	DonePoints  int               `json:"done_points"`
	TotalPoints int               `json:"total_points"`
	NextCursor  string            `json:"next_cursor,omitempty"`
	Points      []json.RawMessage `json:"points"`
}

// handleJobResults serves one page of a job's checkpointed result stream.
//
// Paging: "cursor" (an opaque token from a previous page, or X-Next-Cursor)
// or "start" (explicit line index) select the window; "limit" bounds it.
// Pages never cross the job's checkpoint, so every page is a stable window
// into the deterministic output order — concatenating ndjson pages from 0
// until exhaustion reproduces the synchronous stream byte for byte.
//
// Formats: ndjson (default), json (enveloped with next_cursor), csv (sweep
// jobs; each page is a standalone CSV document with a header row).
//
// Caching: the response carries a strong ETag derived from the exact page
// identity (job, window, checkpoint state); If-None-Match answers 304 with
// no body. A page of a terminal job is immutable, so its ETag is final.
func (s *Server) handleJobResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	q := r.URL.Query()

	limit := jobPageLimitDefault
	if raw := q.Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			apiError(w, r, http.StatusBadRequest, fmt.Sprintf("parameter \"limit\": invalid value %q", raw))
			return
		}
		limit = min(v, jobPageLimitMax)
	}
	start := 0
	if tok := q.Get("cursor"); tok != "" {
		v, err := decodeJobCursor(tok, id)
		if err != nil {
			apiError(w, r, http.StatusBadRequest, "parameter \"cursor\": "+err.Error())
			return
		}
		start = v
	} else if raw := q.Get("start"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			apiError(w, r, http.StatusBadRequest, fmt.Sprintf("parameter \"start\": invalid value %q", raw))
			return
		}
		start = v
	}
	format := q.Get("format")
	if format == "" {
		if wantsCSV(r.Header.Get("Accept")) {
			format = "csv"
		} else {
			format = "ndjson"
		}
	}
	var isSweepJob bool
	if m, err := s.jobsSvc.Get(id); err == nil {
		isSweepJob = m.Spec.Type == api.JobTypeSweep
	}
	switch format {
	case "ndjson", "json":
	case "csv":
		if !isSweepJob {
			apiError(w, r, http.StatusBadRequest, "format \"csv\" applies to sweep jobs only")
			return
		}
	default:
		apiError(w, r, http.StatusBadRequest, fmt.Sprintf("unknown format %q (ndjson, json, csv)", format))
		return
	}

	pg, err := s.jobsSvc.Results(id, start, limit)
	if err != nil {
		s.jobError(w, r, err)
		return
	}

	// The ETag is the exact page identity: same job, same window, same
	// checkpoint, same state, same format → byte-identical body.
	etag := fmt.Sprintf("\"%s/%d/%d/%d/%s/%s\"", pg.JobID, pg.Start, pg.Count, pg.Done, pg.State, format)
	w.Header().Set("ETag", etag)
	w.Header().Set("X-Job-State", string(pg.State))
	w.Header().Set("X-Done-Points", strconv.Itoa(pg.Done))
	w.Header().Set("X-Total-Points", strconv.Itoa(pg.Total))
	nextCursor := ""
	if !pg.State.Terminal() || pg.NextStart < pg.Done {
		nextCursor = encodeJobCursor(pg.JobID, pg.NextStart)
		w.Header().Set("X-Next-Cursor", nextCursor)
	}
	if matchETag(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}

	switch format {
	case "ndjson":
		w.Header().Set("Content-Type", "application/x-ndjson")
		for _, line := range pg.Lines {
			w.Write(line)
			w.Write([]byte("\n"))
		}
	case "json":
		pts := make([]json.RawMessage, len(pg.Lines))
		for i, line := range pg.Lines {
			pts[i] = json.RawMessage(line)
		}
		writeJSON(w, jobResultsJSON{
			JobID:       pg.JobID,
			State:       pg.State,
			Start:       pg.Start,
			Count:       pg.Count,
			DonePoints:  pg.Done,
			TotalPoints: pg.Total,
			NextCursor:  nextCursor,
			Points:      pts,
		})
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		enc := sweep.NewLineEncoder(w)
		if err := enc.CSVHeader(); err != nil {
			return
		}
		for _, line := range pg.Lines {
			var p sweep.Point
			if err := json.Unmarshal(line, &p); err != nil {
				p = sweep.Point{Seq: -1, Error: "corrupt result line: " + err.Error()}
			}
			if err := enc.CSVRecord(p); err != nil {
				return
			}
		}
	}
}

// matchETag implements the subset of If-None-Match the results endpoint
// needs: "*", or a comma-separated list of (possibly weak) entity tags.
func matchETag(header, etag string) bool {
	if header == "" {
		return false
	}
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == etag {
			return true
		}
	}
	return false
}
