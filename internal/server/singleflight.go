package server

import (
	"errors"
	"fmt"
	"sync"
)

// errComputePanic marks computations that died in a panic rather than
// returning an error: an internal fault, not a property of the request.
var errComputePanic = errors.New("internal computation failure")

// flightCall is one in-flight (or just-completed) upstream computation.
// done is closed exactly once, after val/err are final.
type flightCall struct {
	done chan struct{}
	val  []byte
	err  error
}

// flightGroup implements single-flight request coalescing: concurrent
// computations for the same key share one execution. Unlike a synchronous
// singleflight, the computation runs in its own goroutine, so a waiter
// abandoning early (request timeout, client gone) never cancels the work
// for the callers still attached — nor the cache fill.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do returns the call for key, spawning fn if this caller is the first.
// leader reports whether this caller started the computation; followers
// coalesce onto the existing one. The key is unregistered before done is
// closed, so once a caller observes completion a new request computes
// afresh (or hits the response cache fn filled).
func (g *flightGroup) do(key string, fn func() ([]byte, error)) (c *flightCall, leader bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		return c, false
	}
	c = &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()
	go func() {
		// This goroutine is outside net/http's per-connection recover, so
		// an unrecovered panic here would kill the whole process — and a
		// recover that skipped the bookkeeping below would leave every
		// waiter for this key hung. Convert panics to errors, always
		// unregister the key, always close done.
		defer func() {
			if r := recover(); r != nil {
				c.err = fmt.Errorf("%w: %v", errComputePanic, r)
			}
			g.mu.Lock()
			delete(g.calls, key)
			g.mu.Unlock()
			close(c.done)
		}()
		c.val, c.err = fn()
	}()
	return c, true
}
