package server

import (
	"errors"
	"fmt"
	"sync"

	"catamount/internal/shard"
)

// errComputePanic marks computations that died in a panic rather than
// returning an error: an internal fault, not a property of the request.
var errComputePanic = errors.New("internal computation failure")

// flightCall is one in-flight (or just-completed) upstream computation.
// done is closed exactly once, after val/err are final.
type flightCall struct {
	done chan struct{}
	val  []byte
	err  error
}

// flightShard is one independently locked stripe of the in-flight table.
// The pad keeps adjacent stripes' mutexes off one cache line.
type flightShard struct {
	mu    sync.Mutex
	calls map[string]*flightCall
	_     [64]byte
}

// flightGroup implements single-flight request coalescing: concurrent
// computations for the same key share one execution. Unlike a synchronous
// singleflight, the computation runs in its own goroutine, so a waiter
// abandoning early (request timeout, client gone) never cancels the work
// for the callers still attached — nor the cache fill.
//
// The table is key-striped (FNV-1a of the canonical key → stripe, one
// mutex per stripe), so registration for distinct keys never serializes on
// a global lock — the same discipline as the sharded response cache it
// front-runs.
type flightGroup struct {
	shards []flightShard
	mask   uint32
}

func newFlightGroup() *flightGroup {
	n := shard.Count()
	g := &flightGroup{shards: make([]flightShard, n), mask: uint32(n - 1)}
	for i := range g.shards {
		g.shards[i].calls = make(map[string]*flightCall)
	}
	return g
}

// do returns the call for key, spawning fn if this caller is the first.
// leader reports whether this caller started the computation; followers
// coalesce onto the existing one. The key is unregistered before done is
// closed, so once a caller observes completion a new request computes
// afresh (or hits the response cache fn filled) — in particular, an error
// result is never retained beyond its in-flight window: the next request
// after a transient failure retries rather than replaying the stale error.
func (g *flightGroup) do(key string, fn func() ([]byte, error)) (c *flightCall, leader bool) {
	s := &g.shards[shard.Hash(key)&g.mask]
	s.mu.Lock()
	if c, ok := s.calls[key]; ok {
		s.mu.Unlock()
		return c, false
	}
	c = &flightCall{done: make(chan struct{})}
	s.calls[key] = c
	s.mu.Unlock()
	go func() {
		// This goroutine is outside net/http's per-connection recover, so
		// an unrecovered panic here would kill the whole process — and a
		// recover that skipped the bookkeeping below would leave every
		// waiter for this key hung. Convert panics to errors, always
		// unregister the key, always close done.
		defer func() {
			if r := recover(); r != nil {
				c.err = fmt.Errorf("%w: %v", errComputePanic, r)
			}
			s.mu.Lock()
			delete(s.calls, key)
			s.mu.Unlock()
			close(c.done)
		}()
		c.val, c.err = fn()
	}()
	return c, true
}
