package server

import (
	"net/http"
	"strings"
	"testing"
)

// TestCostModelsEndpoint: GET /v1/costmodels lists both backends with the
// default flagged.
func TestCostModelsEndpoint(t *testing.T) {
	s := newTestServer(Config{})
	rec, body := get(t, s, "/v1/costmodels")
	if rec.Code != http.StatusOK {
		t.Fatalf("costmodels = %d %s", rec.Code, rec.Body)
	}
	models := body["costmodels"].([]any)
	if len(models) != 2 {
		t.Fatalf("costmodels = %d entries, want 2", len(models))
	}
	names := map[string]bool{}
	defaults := 0
	for _, m := range models {
		entry := m.(map[string]any)
		names[entry["name"].(string)] = true
		if d, _ := entry["default"].(bool); d {
			defaults++
		}
	}
	if !names["graph"] || !names["perop"] || defaults != 1 {
		t.Fatalf("costmodels listing wrong: %v (defaults=%d)", names, defaults)
	}
}

// TestAnalyzeCostModelSelectable: the costmodel field selects the backend
// end-to-end, the per-op estimate is never faster than graph, and unknown
// backends are a 400.
func TestAnalyzeCostModelSelectable(t *testing.T) {
	s := newTestServer(Config{})
	const q = "/v1/analyze?domain=wordlm&params=1e8&batch=128"

	rec, body := get(t, s, q)
	if rec.Code != http.StatusOK {
		t.Fatalf("default analyze = %d %s", rec.Code, rec.Body)
	}
	if body["costmodel"] != "graph" {
		t.Fatalf("default costmodel = %v, want graph", body["costmodel"])
	}
	graphStep := body["step_seconds"].(float64)

	rec, body = get(t, s, q+"&costmodel=perop")
	if rec.Code != http.StatusOK {
		t.Fatalf("perop analyze = %d %s", rec.Code, rec.Body)
	}
	if body["costmodel"] != "perop" {
		t.Fatalf("perop costmodel = %v", body["costmodel"])
	}
	peropStep := body["step_seconds"].(float64)
	if peropStep < graphStep {
		t.Fatalf("per-op step %g faster than graph %g", peropStep, graphStep)
	}

	rec, _ = get(t, s, q+"&costmodel=quantum")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown costmodel = %d, want 400", rec.Code)
	}
}

// TestCostModelAliasesShareCache: alias spellings canonicalize into one
// cache key, so the second spelling is a pure cache hit.
func TestCostModelAliasesShareCache(t *testing.T) {
	s := newTestServer(Config{})
	const q = "/v1/analyze?domain=image&params=5e7&batch=32&costmodel="

	rec, _ := get(t, s, q+"perop")
	if rec.Code != http.StatusOK {
		t.Fatalf("first = %d %s", rec.Code, rec.Body)
	}
	misses := s.Metrics().CacheMisses
	for _, alias := range []string{"per-op", "perop-roofline", "per-op-roofline"} {
		rec, _ := get(t, s, q+alias)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s = %d %s", alias, rec.Code, rec.Body)
		}
	}
	if got := s.Metrics().CacheMisses; got != misses {
		t.Fatalf("alias spellings recomputed: misses %d -> %d", misses, got)
	}
	if hits := s.Metrics().CacheHits; hits < 3 {
		t.Fatalf("alias spellings hit the cache %d times, want >= 3", hits)
	}
}

// TestCostModelMetrics: per-backend counters meter every backend-routed
// endpoint, including the sweep and plan spec fields.
func TestCostModelMetrics(t *testing.T) {
	s := newTestServer(Config{})
	g0 := s.Metrics().CostModelRequests["graph"]
	p0 := s.Metrics().CostModelRequests["perop"]

	get(t, s, "/v1/analyze?domain=image&params=5e7")
	get(t, s, "/v1/frontier?costmodel=perop")
	request(t, s, http.MethodPost, "/v1/sweep",
		[]byte(`{"params":[5e7],"domains":["image"],"costmodel":"per-op"}`))
	request(t, s, http.MethodPost, "/v1/plan",
		[]byte(`{"domain":"image","worker_counts":[1],"subbatches":[32],"costmodel":"graph-roofline"}`))

	m := s.Metrics().CostModelRequests
	if got := m["graph"] - g0; got != 2 {
		t.Fatalf("graph requests = %d, want 2", got)
	}
	if got := m["perop"] - p0; got != 2 {
		t.Fatalf("perop requests = %d, want 2", got)
	}
}

// TestFrontierPerOpDominates: /v1/frontier rows under perop are never
// faster than the default rows, domain by domain.
func TestFrontierPerOpDominates(t *testing.T) {
	if testing.Short() {
		t.Skip("frontier projection sweep in -short mode")
	}
	s := newTestServer(Config{})
	rec, body := get(t, s, "/v1/frontier")
	if rec.Code != http.StatusOK {
		t.Fatalf("frontier = %d %s", rec.Code, rec.Body)
	}
	graphRows := body["rows"].([]any)

	rec, body = get(t, s, "/v1/frontier?costmodel=perop")
	if rec.Code != http.StatusOK {
		t.Fatalf("perop frontier = %d %s", rec.Code, rec.Body)
	}
	if body["costmodel"] != "perop" {
		t.Fatalf("frontier costmodel = %v", body["costmodel"])
	}
	peropRows := body["rows"].([]any)
	if len(peropRows) != len(graphRows) {
		t.Fatalf("row counts differ: %d vs %d", len(peropRows), len(graphRows))
	}
	for i := range graphRows {
		g := graphRows[i].(map[string]any)["step_seconds"].(float64)
		p := peropRows[i].(map[string]any)["step_seconds"].(float64)
		if p < g {
			t.Errorf("row %d: per-op step %g faster than graph %g", i, p, g)
		}
	}
}

// TestSweepCostModelField: the spec field labels streamed points and
// rejects unknown backends before the stream starts.
func TestSweepCostModelField(t *testing.T) {
	s := newTestServer(Config{})
	rec, _ := request(t, s, http.MethodPost, "/v1/sweep",
		[]byte(`{"params":[5e7],"domains":["image"],"costmodel":"warp-drive"}`))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown sweep costmodel = %d, want 400", rec.Code)
	}

	rec, _ = request(t, s, http.MethodPost, "/v1/sweep",
		[]byte(`{"params":[5e7],"domains":["image"],"costmodel":"perop"}`))
	if rec.Code != http.StatusOK {
		t.Fatalf("perop sweep = %d %s", rec.Code, rec.Body)
	}
	line := rec.Body.String()
	if !strings.Contains(line, `"costmodel":"perop"`) {
		t.Fatalf("streamed point missing costmodel label: %s", line)
	}
}
