package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchServer shares one warmed engine across benchmark iterations so the
// numbers isolate serving cost from one-time model compilation.
func benchServer(b *testing.B, cacheEntries int) *Server {
	b.Helper()
	s := New(Config{Engine: sharedEngine, CacheEntries: cacheEntries})
	// Warm the domain model outside the timed region.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
		"/v1/analyze?domain=wordlm&params=1.03e9&batch=128", nil))
	if rec.Code != http.StatusOK {
		b.Fatalf("warmup = %d %s", rec.Code, rec.Body)
	}
	return s
}

// BenchmarkServerAnalyzeCached serves one hot query from the LRU: the
// steady state of frontier-dashboard traffic.
func BenchmarkServerAnalyzeCached(b *testing.B) {
	s := benchServer(b, 1024)
	req := httptest.NewRequest(http.MethodGet,
		"/v1/analyze?domain=wordlm&params=1.03e9&batch=128", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("code %d", rec.Code)
		}
	}
	b.StopTimer()
	if m := s.Metrics(); m.CacheHits < int64(b.N) {
		b.Fatalf("expected all-hit serving, metrics %+v", m)
	}
}

// BenchmarkServerAnalyzeUncached forces a miss per iteration (a 1-entry
// cache and alternating keys), so every request pays the full upstream
// computation: size solve, characterization, footprint traversal, marshal.
func BenchmarkServerAnalyzeUncached(b *testing.B) {
	s := benchServer(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, fmt.Sprintf(
			"/v1/analyze?domain=wordlm&params=1.03e9&batch=%d", 128+i%2), nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("code %d", rec.Code)
		}
	}
}

// BenchmarkServerFrontierCached measures the heaviest cacheable query
// (the full Table 3 regeneration) served hot.
func BenchmarkServerFrontierCached(b *testing.B) {
	s := New(Config{Engine: sharedEngine})
	req := httptest.NewRequest(http.MethodGet, "/v1/frontier?accel=a100", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("warmup = %d %s", rec.Code, rec.Body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("code %d", rec.Code)
		}
	}
}

// TestCachedAtLeast10xFasterThanUncached pins the acceptance criterion:
// a cached request must be at least an order of magnitude cheaper than an
// uncached one. Benchmarks measure it precisely; this guards it in CI.
func TestCachedAtLeast10xFasterThanUncached(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison is not run in -short mode")
	}
	cached := testing.Benchmark(BenchmarkServerAnalyzeCached)
	uncached := testing.Benchmark(BenchmarkServerAnalyzeUncached)
	cn, un := cached.NsPerOp(), uncached.NsPerOp()
	t.Logf("cached %d ns/op, uncached %d ns/op (%.1fx)", cn, un, float64(un)/float64(cn))
	if un < 10*cn {
		t.Fatalf("cached path only %.1fx faster than uncached (cached %d ns, uncached %d ns)",
			float64(un)/float64(cn), cn, un)
	}
}
