package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
)

// benchServer shares one warmed engine across benchmark iterations so the
// numbers isolate serving cost from one-time model compilation.
func benchServer(b *testing.B, cacheEntries int) *Server {
	b.Helper()
	s := New(Config{Engine: sharedEngine, CacheEntries: cacheEntries})
	// Warm the domain model outside the timed region.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
		"/v1/analyze?domain=wordlm&params=1.03e9&batch=128", nil))
	if rec.Code != http.StatusOK {
		b.Fatalf("warmup = %d %s", rec.Code, rec.Body)
	}
	return s
}

// BenchmarkServerAnalyzeCached serves one hot query from the LRU: the
// steady state of frontier-dashboard traffic.
func BenchmarkServerAnalyzeCached(b *testing.B) {
	s := benchServer(b, 1024)
	req := httptest.NewRequest(http.MethodGet,
		"/v1/analyze?domain=wordlm&params=1.03e9&batch=128", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("code %d", rec.Code)
		}
	}
	b.StopTimer()
	if m := s.Metrics(); m.CacheHits < int64(b.N) {
		b.Fatalf("expected all-hit serving, metrics %+v", m)
	}
}

// BenchmarkServerAnalyzeUncached forces a miss per iteration (a 1-entry
// cache and alternating keys), so every request pays the full upstream
// computation: size solve, characterization, footprint traversal, marshal.
func BenchmarkServerAnalyzeUncached(b *testing.B) {
	s := benchServer(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, fmt.Sprintf(
			"/v1/analyze?domain=wordlm&params=1.03e9&batch=%d", 128+i%2), nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("code %d", rec.Code)
		}
	}
}

// BenchmarkServerFrontierCached measures the heaviest cacheable query
// (the full Table 3 regeneration) served hot.
func BenchmarkServerFrontierCached(b *testing.B) {
	s := New(Config{Engine: sharedEngine})
	req := httptest.NewRequest(http.MethodGet, "/v1/frontier?accel=a100", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("warmup = %d %s", rec.Code, rec.Body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("code %d", rec.Code)
		}
	}
}

// BenchmarkServerAnalyzeParallel drives the cached hot path from
// b.RunParallel workers over a spread of keys — the measurement that
// shows (run with -cpu 1,4) whether cached serving scales with cores or
// serializes on cache-wide locks.
func BenchmarkServerAnalyzeParallel(b *testing.B) {
	s := New(Config{Engine: sharedEngine, CacheEntries: 1024, MaxInFlight: 256})
	paths := benchPaths()
	reqs, err := benchRequests(s, paths)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rec := &verdictRecorder{hdr: make(http.Header)}
		i := 0
		for pb.Next() {
			s.ServeHTTP(rec, reqs[i%len(reqs)])
			if rec.status >= 400 {
				b.Errorf("status %d", rec.status)
				return
			}
			rec.status = 0
			i++
		}
	})
	b.StopTimer()
	if m := s.Metrics(); m.CacheMisses > int64(len(paths)) {
		b.Fatalf("hot path recomputed: %d misses for %d keys", m.CacheMisses, len(paths))
	}
}

// TestServeBenchFloors is the CI regression gate on the BENCH_pr10.json
// trajectory: single-threaded hot throughput must stay above a pinned
// floor, and on machines with enough cores the concurrent levels must
// actually scale (8 goroutines ≥3x single-threaded with GOMAXPROCS ≥ 8,
// ≥2x at 4 with GOMAXPROCS ≥ 4). On smaller machines — including the
// 1-core container this repo often tests in, where there is one shard and
// nothing to scale — the ratios are logged, not enforced. Set
// SERVE_BENCH_OUT to also write the BENCH json snapshot the CI bench job
// uploads.
func TestServeBenchFloors(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent-load harness is not run in -short mode")
	}
	rep, err := RunServeBench(sharedEngine)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Hot {
		t.Logf("hot      g=%d: %.0f req/s, p50 %.1fµs, p99 %.1fµs",
			p.Goroutines, p.ReqPerSec, p.P50Micros, p.P99Micros)
	}
	for _, p := range rep.Baseline {
		t.Logf("baseline g=%d: %.0f req/s, p50 %.1fµs, p99 %.1fµs",
			p.Goroutines, p.ReqPerSec, p.P50Micros, p.P99Micros)
	}
	t.Logf("scaling %.2fx (8g vs 1g), lock-scaling %.2fx (sharded vs single-mutex at 8g), %d shards, GOMAXPROCS %d",
		rep.ScalingX, rep.LockScalingX, rep.Shards, rep.CPUs)

	// Conservative single-threaded floor: roughly 10x under a 1-core
	// container's measured hot-path throughput, so it catches structural
	// regressions (a recompute on the hot path, an accidental O(n) scan),
	// not machine noise.
	const hotFloor = 10000.0 // req/s, single goroutine
	if rep.Hot[0].ReqPerSec < hotFloor {
		t.Errorf("hot single-threaded throughput %.0f req/s below pinned floor %.0f",
			rep.Hot[0].ReqPerSec, hotFloor)
	}

	ratio4 := 0.0
	if rep.Hot[0].ReqPerSec > 0 {
		ratio4 = rep.Hot[1].ReqPerSec / rep.Hot[0].ReqPerSec
	}
	switch {
	case runtime.GOMAXPROCS(0) >= 8:
		if rep.ScalingX < 3 {
			t.Errorf("8-goroutine scaling %.2fx below pinned floor 3x on %d-way machine",
				rep.ScalingX, runtime.GOMAXPROCS(0))
		}
	case runtime.GOMAXPROCS(0) >= 4:
		if ratio4 < 2 {
			t.Errorf("4-goroutine scaling %.2fx below pinned floor 2x on %d-way machine",
				ratio4, runtime.GOMAXPROCS(0))
		}
	default:
		t.Logf("GOMAXPROCS %d: scaling floors logged only", runtime.GOMAXPROCS(0))
	}
	// Sharding must never make contention worse than the single mutex it
	// replaced; the margin absorbs scheduler noise.
	if runtime.GOMAXPROCS(0) >= 4 && rep.LockScalingX < 0.8 {
		t.Errorf("lock-scaling %.2fx: sharded cache slower than single-mutex baseline", rep.LockScalingX)
	}

	if path := os.Getenv("SERVE_BENCH_OUT"); path != "" {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := WriteServeBenchReport(f, rep); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
	}
}

// TestCachedAtLeast10xFasterThanUncached pins the acceptance criterion:
// a cached request must be at least an order of magnitude cheaper than an
// uncached one. Benchmarks measure it precisely; this guards it in CI.
func TestCachedAtLeast10xFasterThanUncached(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison is not run in -short mode")
	}
	cached := testing.Benchmark(BenchmarkServerAnalyzeCached)
	uncached := testing.Benchmark(BenchmarkServerAnalyzeUncached)
	cn, un := cached.NsPerOp(), uncached.NsPerOp()
	t.Logf("cached %d ns/op, uncached %d ns/op (%.1fx)", cn, un, float64(un)/float64(cn))
	if un < 10*cn {
		t.Fatalf("cached path only %.1fx faster than uncached (cached %d ns, uncached %d ns)",
			float64(un)/float64(cn), cn, un)
	}
}
