package server

import (
	"catamount/internal/api"
	"fmt"
	"net/http"

	"catamount/internal/plan"
)

// This file is the capacity-planner endpoint: POST /v1/plan takes a
// plan.Spec JSON body (the inverse query: accuracy target + search space)
// and returns the full search result — resolved target, every candidate
// with infeasibility annotations, and the Pareto frontier. Unlike
// /v1/sweep the response is bounded and deterministic, so it rides the
// same cached single-flight path as the point endpoints: K concurrent
// identical searches cost one computation, and repeats are cache hits.
// The plan_runs / plan_plans counters meter it the way sweep_streams /
// sweep_points meter the sweep endpoint.

// handlePlan validates the spec (every validation failure is a 400 before
// any computation), bounds the search like handleSweep bounds grids, then
// dispatches through the cached single-flight group. The planner search
// itself is additionally memoized inside the Engine, so even a cache-
// evicted key recomputes only the JSON, not the search.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var spec plan.Spec
	if err := api.DecodeJSON(w, r.Body, 1<<20, &spec); err != nil {
		apiError(w, r, http.StatusBadRequest, "invalid plan spec: "+err.Error())
		return
	}
	// The "costmodel" query parameter wins over the spec field — the one
	// precedence rule, owned by internal/api.
	api.OverrideCostModel(&spec.CostModel, r.URL.Query().Get("costmodel"))
	p, err := plan.New(s.eng, spec)
	if err != nil {
		apiError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	if n := p.Candidates(); n > s.maxSweepPoints {
		// Same guard, same reasoning as /v1/sweep: the limit protects the
		// serving process; huge searches belong on cmd/plan.
		apiError(w, r, http.StatusBadRequest, fmt.Sprintf(
			"plan search has %d candidates, server limit is %d (shrink the grid or use cmd/plan)",
			n, s.maxSweepPoints))
		return
	}
	// Metered only once the search is admitted, mirroring handleSweep.
	s.countCostModel(p.CostModel())
	key := "plan|" + p.Key()
	s.respondCached(w, r, key, func() (any, error) {
		res, err := s.eng.Plan(spec)
		if err != nil {
			return nil, err
		}
		s.planRuns.Add(1)
		s.planPlans.Add(int64(res.Candidates))
		return res, nil
	})
}
