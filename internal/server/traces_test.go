package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"catamount/internal/obs"
)

// collectStages flattens a span tree into stage-name counts.
func collectStages(n *obs.SpanNode, into map[string]int) {
	if n == nil {
		return
	}
	into[n.Stage]++
	for _, c := range n.Children {
		collectStages(c, into)
	}
}

// TestTracesEndToEnd is the acceptance path: drive a real sweep request,
// then read its trace back as a tree whose root is the request span and
// whose leaves include characterize_batch and a steptime_* span, and as a
// schema-valid Perfetto export.
func TestTracesEndToEnd(t *testing.T) {
	obs.Flight.Reset()
	s := newTestServer(Config{})

	const rid = "trace-e2e-1"
	rec := postSweep(t, s, `{"domains":["wordlm"],"params":[1e8,2e8],"subbatches":[32]}`,
		map[string]string{"X-Request-Id": rid})
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep status = %d: %s", rec.Code, rec.Body.String())
	}

	// List: the request's trace is retained under its route pattern, and
	// the stage exemplars now link histograms back to trace IDs.
	lrec, _ := get(t, s, "/v1/traces?route="+strings.ReplaceAll("POST /v1/sweep", " ", "%20"))
	if lrec.Code != http.StatusOK {
		t.Fatalf("traces list status = %d", lrec.Code)
	}
	var list struct {
		Traces []obs.TraceSummary  `json:"traces"`
		Count  int                 `json:"count"`
		Slow   []obs.StageExemplar `json:"slowest_by_stage"`
	}
	if err := json.Unmarshal(lrec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list.Count != len(list.Traces) || list.Count == 0 {
		t.Fatalf("list count = %d with %d traces", list.Count, len(list.Traces))
	}
	found := false
	for _, tr := range list.Traces {
		if tr.ID == rid {
			found = true
			if tr.Route != "POST /v1/sweep" || tr.Spans < 3 || tr.Error {
				t.Fatalf("trace summary = %+v", tr)
			}
		}
	}
	if !found {
		t.Fatalf("trace %q not in list: %+v", rid, list.Traces)
	}
	stages := map[string]bool{}
	for _, ex := range list.Slow {
		if ex.TraceID == "" || ex.Seconds <= 0 {
			t.Fatalf("degenerate exemplar %+v", ex)
		}
		stages[ex.Stage] = true
	}
	if !stages["characterize_batch"] || !stages["sweep_chunk"] {
		t.Fatalf("slowest_by_stage missing sweep stages: %+v", list.Slow)
	}

	// Tree: root is the request span; under it the sweep chunk(s), with
	// characterization and step-time pricing as leaves.
	trec, _ := get(t, s, "/v1/traces/"+rid)
	if trec.Code != http.StatusOK {
		t.Fatalf("trace get status = %d: %s", trec.Code, trec.Body.String())
	}
	var ex obs.TraceExport
	if err := json.Unmarshal(trec.Body.Bytes(), &ex); err != nil {
		t.Fatal(err)
	}
	if ex.Root == nil || ex.Root.Stage != "request" {
		t.Fatalf("trace root = %+v, want request", ex.Root)
	}
	counts := map[string]int{}
	collectStages(ex.Root, counts)
	if counts["sweep_chunk"] == 0 || counts["characterize_batch"] == 0 || counts["footprint"] == 0 {
		t.Fatalf("tree missing sweep stages: %v", counts)
	}
	steptime := false
	for stage := range counts {
		if strings.HasPrefix(stage, "steptime_") {
			steptime = true
		}
	}
	if !steptime {
		t.Fatalf("tree has no steptime_* span: %v", counts)
	}
	// Chunks nest under the request, characterizations under chunks.
	if len(ex.Root.Children) == 0 || ex.Root.Children[0].Stage != "sweep_chunk" {
		t.Fatalf("request's first child = %+v, want sweep_chunk", ex.Root.Children)
	}

	// Perfetto view, via query param and via Accept.
	prec, _ := get(t, s, "/v1/traces/"+rid+"?format=perfetto")
	if prec.Code != http.StatusOK {
		t.Fatalf("perfetto status = %d", prec.Code)
	}
	if err := obs.ValidateTraceEvents(prec.Body.Bytes()); err != nil {
		t.Fatalf("perfetto export fails schema: %v", err)
	}
	areq := httptest.NewRequest(http.MethodGet, "/v1/traces/"+rid, nil)
	areq.Header.Set("Accept", "application/vnd.chrome.trace-event+json")
	arec := httptest.NewRecorder()
	s.ServeHTTP(arec, areq)
	if err := obs.ValidateTraceEvents(arec.Body.Bytes()); err != nil {
		t.Fatalf("Accept-negotiated export fails schema: %v", err)
	}
}

func TestTracesErrorsAndFilters(t *testing.T) {
	obs.Flight.Reset()
	s := newTestServer(Config{})

	rec, body := get(t, s, "/v1/traces/nope")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("missing trace status = %d", rec.Code)
	}
	if env, ok := body["error"].(map[string]any); !ok || env["code"] != "not_found" {
		t.Fatalf("404 not in the error envelope: %s", rec.Body.String())
	}

	for _, path := range []string{
		"/v1/traces?min_ms=-1",
		"/v1/traces?min_ms=abc",
		"/v1/traces?limit=-2",
		"/v1/traces?limit=many",
	} {
		rec, body := get(t, s, path)
		if rec.Code != http.StatusBadRequest || errMessage(body) == "" {
			t.Fatalf("%s status = %d, want enveloped 400", path, rec.Code)
		}
	}

	// A failing request (bad domain) must be retained as an errored trace.
	rec, _ = get(t, s, "/v1/analyze?domain=nope&params=1e8")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad analyze status = %d", rec.Code)
	}
	errRID := rec.Header().Get("X-Request-Id")
	trec, _ := get(t, s, "/v1/traces/"+errRID)
	if trec.Code != http.StatusOK {
		t.Fatalf("errored trace not retained: %d", trec.Code)
	}
	var ex obs.TraceExport
	if err := json.Unmarshal(trec.Body.Bytes(), &ex); err != nil {
		t.Fatal(err)
	}
	if !ex.Error {
		t.Fatalf("trace of a 400 response not flagged errored: %+v", ex.TraceSummary)
	}

	// Unknown format on a retained trace.
	frec, fbody := get(t, s, "/v1/traces/"+errRID+"?format=bogus")
	if frec.Code != http.StatusBadRequest || errMessage(fbody) == "" {
		t.Fatalf("bogus format status = %d", frec.Code)
	}

	// Trace reads are exempt from tracing: none of the /v1/traces requests
	// above may themselves appear in the recorder.
	lrec, _ := get(t, s, "/v1/traces")
	var list tracesResponse
	if err := json.Unmarshal(lrec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	for _, tr := range list.Traces {
		if strings.HasPrefix(tr.Route, "GET /v1/traces") {
			t.Fatalf("trace read recorded its own trace: %+v", tr)
		}
	}
}

// TestTracesConsistentUnderSweepLoad is the -race soak: trace reads (list,
// tree, Perfetto) hammer the flight recorder while sweep requests stream
// and record, crossing the claim/retain/read paths under the detector.
func TestTracesConsistentUnderSweepLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-read hammer is a -race soak; skipped in short mode")
	}
	obs.Flight.Reset()
	s := newTestServer(Config{})
	spec := `{"domains":["wordlm"],"params":[1e8,2e8,4e8],"subbatches":[32,64]}`

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				postSweep(t, s, spec,
					map[string]string{"X-Request-Id": fmt.Sprintf("soak-%d-%d", w, i)})
			}
		}(w)
	}
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/traces", nil))
				var list tracesResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
					errs <- err
					return
				}
				for _, tr := range list.Traces {
					if tr.ID == "" {
						errs <- fmt.Errorf("retained trace with empty ID: %+v", tr)
						return
					}
				}
				if len(list.Traces) == 0 {
					continue
				}
				id := list.Traces[len(list.Traces)-1].ID
				tree := httptest.NewRecorder()
				s.ServeHTTP(tree, httptest.NewRequest(http.MethodGet, "/v1/traces/"+id, nil))
				perf := httptest.NewRecorder()
				s.ServeHTTP(perf, httptest.NewRequest(http.MethodGet, "/v1/traces/"+id+"?format=perfetto", nil))
				// A trace can rotate out between list and get; only validate
				// the bodies of hits.
				if perf.Code == http.StatusOK {
					if err := obs.ValidateTraceEvents(perf.Body.Bytes()); err != nil {
						errs <- fmt.Errorf("trace %s: %w", id, err)
						return
					}
				}
				if tree.Code != http.StatusOK && tree.Code != http.StatusNotFound {
					errs <- fmt.Errorf("trace %s tree status %d", id, tree.Code)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
