package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"sort"
	"strings"
	"sync"
	"time"

	cat "catamount"
	"catamount/internal/api"
	"catamount/internal/hw"
	"catamount/internal/jobs"
	"catamount/internal/obs"
	"catamount/internal/plan"
	"catamount/internal/sweep"
)

// This file generates GET /v1/openapi.json: an OpenAPI 3 document derived
// by reflection from the same Go types the handlers decode and encode, so
// the document cannot drift from the structs. The route table below is the
// second half of the contract — a CI test asserts it matches the live mux
// registrations exactly (both directions), so adding an endpoint without
// documenting it, or documenting one that does not exist, fails the build.

// paramDoc documents one query parameter.
type paramDoc struct {
	name, typ, desc string
}

// routeDoc documents one registered route pattern.
type routeDoc struct {
	pattern  string // exactly as registered: "GET /v1/jobs/{id}"
	summary  string
	params   []paramDoc
	reqBody  any    // zero value of the request body type; nil = no body
	respBody any    // zero value of the response body type; nil = unspecified object
	respCT   string // response content type; "" = application/json
	status   int    // success status; 0 = 200
}

// costmodelParam is shared by every backend-routed endpoint.
var costmodelParam = paramDoc{"costmodel", "string",
	"Step-time backend (graph, perop, or an alias). Overrides any costmodel spec field."}

// accelParam is shared by every device-routed endpoint.
var accelParam = paramDoc{"accel", "string",
	"Catalog accelerator name or alias; absent means the paper's Table 4 target."}

// routeDocs is the documented surface. Every entry must correspond to a
// route registered in New, and vice versa — TestOpenAPICoversLiveRoutes
// pins the equivalence.
func routeDocs() []routeDoc {
	modelPoint := []paramDoc{
		{"domain", "string", "Table 1 domain: wordlm, charlm, nmt, speech, image."},
		{"params", "number", "Model parameter-count target (required)."},
		{"batch", "number", "Subbatch size; absent means the domain's profiling default."},
	}
	accBody := hw.Accelerator{}
	return []routeDoc{
		{pattern: "GET /healthz", summary: "Liveness, build identity, and cache warmth.",
			respBody: healthResponse{}},
		{pattern: "GET /metrics", summary: "Prometheus text exposition (JSON via Accept: application/json).",
			respCT: "text/plain"},
		{pattern: "GET /metrics.json", summary: "Legacy JSON metrics snapshot.",
			respBody: Metrics{}},
		{pattern: "GET /v1/domains", summary: "List the Table 1 domains."},
		{pattern: "GET /v1/accelerators", summary: "List the accelerator catalog and aliases."},
		{pattern: "GET /v1/costmodels", summary: "List the step-time backends and aliases."},
		{pattern: "GET /v1/analyze", summary: "Characterize one (domain, params, batch) point and price it.",
			params:   append(append([]paramDoc{}, modelPoint...), accelParam, costmodelParam),
			respBody: analyzeResponse{}},
		{pattern: "POST /v1/analyze", summary: "Analyze against a custom accelerator (catalog interchange JSON body).",
			params:  append(append([]paramDoc{}, modelPoint...), costmodelParam),
			reqBody: accBody, respBody: analyzeResponse{}},
		{pattern: "GET /v1/profile", summary: "Per-layer profile of one model point.",
			params: modelPoint},
		{pattern: "GET /v1/asymptotics", summary: "Asymptotic scaling table across domains."},
		{pattern: "GET /v1/frontier", summary: "Accuracy-frontier cost table (Table 4).",
			params: []paramDoc{accelParam, costmodelParam}},
		{pattern: "POST /v1/frontier", summary: "Frontier table against a custom accelerator.",
			params: []paramDoc{costmodelParam}, reqBody: accBody},
		{pattern: "GET /v1/subbatch", summary: "Subbatch sweep with the §5.2.1 policy choices marked.",
			params: []paramDoc{
				{"domain", "string", "Table 1 domain."},
				{"params", "number", "Model size; absent means the accuracy-frontier size."},
				{"policy", "string", "Subbatch policy: min-time-per-sample, ridge-point-match, intensity-saturation, all."},
				{"tol", "number", "Policy tolerance (default 0.05)."},
				accelParam, costmodelParam},
			respBody: subbatchResponse{}},
		{pattern: "POST /v1/subbatch", summary: "Subbatch sweep against a custom accelerator.",
			reqBody: accBody, respBody: subbatchResponse{}},
		{pattern: "GET /v1/casestudy", summary: "Word-LM case study (Table 5).",
			params: []paramDoc{accelParam, costmodelParam}, respBody: caseStudyResponse{}},
		{pattern: "POST /v1/casestudy", summary: "Case study against a custom accelerator.",
			reqBody: accBody, respBody: caseStudyResponse{}},
		{pattern: "GET /v1/figures/{fig}", summary: "Paper figure data (6..12 or a name alias).",
			params: []paramDoc{accelParam, costmodelParam}},
		{pattern: "POST /v1/figures/{fig}", summary: "Figure data against a custom accelerator.",
			reqBody: accBody},
		{pattern: "POST /v1/checkpoint/analyze", summary: "Characterize an uploaded compute-graph checkpoint.",
			params: []paramDoc{
				{"policy", "string", "Footprint schedule policy: fifo, mem-greedy."},
				{"<symbol>", "number", "One binding per free graph symbol (e.g. b=128)."}},
			respBody: checkpointResponse{}},
		{pattern: "POST /v1/sweep", summary: "Stream a sweep grid synchronously as NDJSON (CSV via Accept: text/csv).",
			params: []paramDoc{costmodelParam}, reqBody: api.SweepSpec{},
			respBody: sweep.Point{}, respCT: "application/x-ndjson"},
		{pattern: "POST /v1/plan", summary: "Run an inverse capacity-planning search.",
			params: []paramDoc{costmodelParam}, reqBody: api.PlanSpec{}, respBody: plan.Result{}},
		{pattern: "POST /v1/jobs", summary: "Submit an async sweep or plan job; returns 202 with the job status.",
			params: []paramDoc{costmodelParam}, reqBody: api.JobSpec{},
			respBody: jobs.Status{}, status: http.StatusAccepted},
		{pattern: "GET /v1/jobs", summary: "List jobs, oldest first."},
		{pattern: "GET /v1/jobs/{id}", summary: "Job status: state, progress, ETA, checkpoint counters.",
			respBody: jobs.Status{}},
		{pattern: "GET /v1/jobs/{id}/results", summary: "One page of a job's checkpointed results.",
			params: []paramDoc{
				{"cursor", "string", "Opaque page token from a previous page (or X-Next-Cursor)."},
				{"start", "integer", "Explicit first line index (alternative to cursor)."},
				{"limit", "integer", "Max lines per page (default 1000, max 10000)."},
				{"format", "string", "ndjson (default), json, csv (sweep jobs only)."}},
			respCT: "application/x-ndjson"},
		{pattern: "DELETE /v1/jobs/{id}", summary: "Cancel an active job, or delete a terminal one.",
			respBody: jobs.Status{}},
		{pattern: "GET /v1/traces", summary: "List flight-recorder traces (slowest first) with per-stage slowest-trace exemplars.",
			params: []paramDoc{
				{"route", "string", "Exact route pattern filter, e.g. \"POST /v1/sweep\" or \"job\"."},
				{"min_ms", "number", "Keep only traces at least this many milliseconds long."},
				{"limit", "integer", "Max traces returned; 0 or absent means all retained."},
			},
			respBody: tracesResponse{}},
		{pattern: "GET /v1/traces/{id}", summary: "One trace as a span tree, or Chrome trace-event JSON via ?format=perfetto.",
			params: []paramDoc{
				{"format", "string", "tree (default) or perfetto (Chrome trace-event array for ui.perfetto.dev)."},
			},
			respBody: obs.TraceExport{}},
		{pattern: "POST /v1/admin/warmup", summary: "Replay a list of GET paths internally to populate the response cache.",
			reqBody: warmupRequest{}, respBody: warmupResponse{}},
		{pattern: "GET /v1/openapi.json", summary: "This document.",
			respCT: "application/json"},
	}
}

// ---------------------------------------------------------------------------
// Reflection schema generation

var (
	timeType = reflect.TypeOf(time.Time{})
	rawType  = reflect.TypeOf(json.RawMessage{})
)

// schemaGen accumulates named component schemas while resolving types.
type schemaGen struct {
	comps    map[string]any
	visiting map[reflect.Type]bool
}

// schemaName keys a named type into components/schemas ("api.JobSpec").
func schemaName(t reflect.Type) string {
	s := t.String()
	return strings.ReplaceAll(s, "[", "_") // defensive: generics in keys
}

// schemaFor resolves t to an inline schema or a $ref, registering named
// struct components as it goes.
func (g *schemaGen) schemaFor(t reflect.Type) map[string]any {
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	switch {
	case t == timeType:
		return map[string]any{"type": "string", "format": "date-time"}
	case t == rawType:
		return map[string]any{} // any JSON value
	}
	switch t.Kind() {
	case reflect.Bool:
		return map[string]any{"type": "boolean"}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return map[string]any{"type": "integer"}
	case reflect.Float32, reflect.Float64:
		return map[string]any{"type": "number"}
	case reflect.String:
		return map[string]any{"type": "string"}
	case reflect.Slice, reflect.Array:
		return map[string]any{"type": "array", "items": g.schemaFor(t.Elem())}
	case reflect.Map:
		return map[string]any{"type": "object", "additionalProperties": g.schemaFor(t.Elem())}
	case reflect.Interface:
		return map[string]any{}
	case reflect.Struct:
		if t.Name() == "" {
			props := map[string]any{}
			g.structProps(t, props)
			return map[string]any{"type": "object", "properties": props}
		}
		name := schemaName(t)
		if _, done := g.comps[name]; !done && !g.visiting[t] {
			g.visiting[t] = true
			props := map[string]any{}
			g.structProps(t, props)
			g.comps[name] = map[string]any{"type": "object", "properties": props}
			delete(g.visiting, t)
		}
		return map[string]any{"$ref": "#/components/schemas/" + name}
	default:
		return map[string]any{}
	}
}

// structProps fills props with t's JSON-visible fields, inlining anonymous
// embeds the way encoding/json does.
func (g *schemaGen) structProps(t reflect.Type, props map[string]any) {
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		tag := f.Tag.Get("json")
		if tag == "-" || !f.IsExported() {
			continue
		}
		name, _, _ := strings.Cut(tag, ",")
		if f.Anonymous && name == "" {
			ft := f.Type
			for ft.Kind() == reflect.Pointer {
				ft = ft.Elem()
			}
			if ft.Kind() == reflect.Struct {
				g.structProps(ft, props)
				continue
			}
		}
		if name == "" {
			name = f.Name
		}
		props[name] = g.schemaFor(f.Type)
	}
}

// buildOpenAPI assembles the full document from routeDocs.
func buildOpenAPI() ([]byte, error) {
	g := &schemaGen{comps: map[string]any{}, visiting: map[reflect.Type]bool{}}
	// The error envelope is part of every operation's contract.
	errRef := g.schemaFor(reflect.TypeOf(api.ErrorResponse{}))

	paths := map[string]map[string]any{}
	for _, d := range routeDocs() {
		method, path, ok := strings.Cut(d.pattern, " ")
		if !ok {
			return nil, fmt.Errorf("openapi: malformed pattern %q", d.pattern)
		}
		op := map[string]any{
			"summary":     d.summary,
			"operationId": opID(method, path),
		}
		var params []any
		for _, seg := range strings.Split(path, "/") {
			if strings.HasPrefix(seg, "{") && strings.HasSuffix(seg, "}") {
				params = append(params, map[string]any{
					"name": strings.Trim(seg, "{}"), "in": "path", "required": true,
					"schema": map[string]any{"type": "string"},
				})
			}
		}
		for _, p := range d.params {
			params = append(params, map[string]any{
				"name": p.name, "in": "query", "required": false,
				"description": p.desc,
				"schema":      map[string]any{"type": p.typ},
			})
		}
		if params != nil {
			op["parameters"] = params
		}
		if d.reqBody != nil {
			op["requestBody"] = map[string]any{
				"required": true,
				"content": map[string]any{
					"application/json": map[string]any{
						"schema": g.schemaFor(reflect.TypeOf(d.reqBody)),
					},
				},
			}
		}
		ct := d.respCT
		if ct == "" {
			ct = "application/json"
		}
		var respSchema map[string]any
		if d.respBody != nil {
			respSchema = g.schemaFor(reflect.TypeOf(d.respBody))
			if ct == "application/x-ndjson" {
				// A stream is a sequence of these, one per line.
				respSchema = map[string]any{"type": "array", "items": respSchema}
			}
		} else {
			respSchema = map[string]any{"type": "object"}
		}
		status := d.status
		if status == 0 {
			status = http.StatusOK
		}
		op["responses"] = map[string]any{
			fmt.Sprintf("%d", status): map[string]any{
				"description": http.StatusText(status),
				"content":     map[string]any{ct: map[string]any{"schema": respSchema}},
			},
			"default": map[string]any{
				"description": "Error envelope: {\"error\": {\"code\", \"message\", \"request_id\"}}.",
				"content":     map[string]any{"application/json": map[string]any{"schema": errRef}},
			},
		}
		if paths[path] == nil {
			paths[path] = map[string]any{}
		}
		paths[path][strings.ToLower(method)] = op
	}

	doc := map[string]any{
		"openapi": "3.0.3",
		"info": map[string]any{
			"title":       "catamount v1",
			"description": "Deep-learning scaling / hardware-projection analysis service (Hestness et al., PPoPP 2019 reproduction).",
			"version":     "1.0.0",
		},
		"paths":      paths,
		"components": map[string]any{"schemas": g.comps},
	}
	return json.MarshalIndent(doc, "", "  ")
}

// opID derives a stable operationId: "GET /v1/jobs/{id}" → "getV1JobsId".
func opID(method, path string) string {
	var b strings.Builder
	b.WriteString(strings.ToLower(method))
	for _, seg := range strings.Split(path, "/") {
		seg = strings.Trim(seg, "{}")
		seg = strings.NewReplacer(".", " ", "-", " ", "_", " ").Replace(seg)
		for _, word := range strings.Fields(seg) {
			b.WriteString(strings.ToUpper(word[:1]) + word[1:])
		}
	}
	return b.String()
}

// openAPIDoc caches the generated document: the surface is fixed at
// compile time, so one build serves every request.
var openAPIDoc struct {
	once sync.Once
	body []byte
	err  error
}

func (s *Server) handleOpenAPI(w http.ResponseWriter, r *http.Request) {
	openAPIDoc.once.Do(func() {
		openAPIDoc.body, openAPIDoc.err = buildOpenAPI()
	})
	if openAPIDoc.err != nil {
		apiError(w, r, http.StatusInternalServerError, openAPIDoc.err.Error())
		return
	}
	writeJSONBytes(w, openAPIDoc.body)
}

// documentedPatterns returns the routeDocs patterns, sorted — the drift
// test compares this against the live mux registrations.
func documentedPatterns() []string {
	docs := routeDocs()
	out := make([]string, 0, len(docs))
	for _, d := range docs {
		out = append(out, d.pattern)
	}
	sort.Strings(out)
	return out
}

// registeredPatterns returns every pattern registered on the live mux,
// sorted (the per-route metric series are keyed by exactly these).
func (s *Server) registeredPatterns() []string {
	out := make([]string, 0, len(s.routeHist))
	for p := range s.routeHist {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// The cat import anchors the response types that reference engine structs.
var _ = cat.Domains
