package hw

import (
	"errors"
	"math"
	"testing"
)

func TestTargetAcceleratorRidgePoints(t *testing.T) {
	a := TargetAccelerator()
	// Paper §5.2: ridge point 17.4 FLOP/B, rising to 19.9 with achievable
	// throughputs.
	if r := a.RidgePoint(); math.Abs(r-17.45) > 0.1 {
		t.Fatalf("ridge = %.2f, want ~17.4", r)
	}
	if r := a.EffectiveRidgePoint(); math.Abs(r-19.94) > 0.1 {
		t.Fatalf("effective ridge = %.2f, want ~19.9", r)
	}
}

func TestStepTimeRoofline(t *testing.T) {
	a := TargetAccelerator()
	// Compute-bound: intensity far above ridge.
	flops, bytes := 1e15, 1e12
	want := flops / (0.8 * a.PeakFLOPS)
	if got := a.StepTime(flops, bytes); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("compute-bound time = %v, want %v", got, want)
	}
	if !a.ComputeBound(flops, bytes) {
		t.Fatal("should be compute bound")
	}
	// Bandwidth-bound: intensity far below ridge.
	flops, bytes = 1e12, 1e12
	want = bytes / (0.7 * a.MemBandwidth)
	if got := a.StepTime(flops, bytes); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("bw-bound time = %v, want %v", got, want)
	}
	if a.ComputeBound(flops, bytes) {
		t.Fatal("should be bandwidth bound")
	}
}

func TestUtilizationBestCase(t *testing.T) {
	a := TargetAccelerator()
	// A perfectly compute-bound workload achieves exactly the achievable
	// fraction (80%).
	flops := 1e15
	tm := a.StepTime(flops, 1) // negligible bytes
	if u := a.Utilization(flops, tm); math.Abs(u-0.8) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.8", u)
	}
	if a.Utilization(1, 0) != 0 {
		t.Fatal("zero-time utilization must be 0")
	}
}

func TestFits(t *testing.T) {
	a := TargetAccelerator()
	if !a.Fits(31e9) || a.Fits(33e9) {
		t.Fatal("Fits misjudges 32GB capacity")
	}
}

// syntheticEval mimics a recurrent model: flops ∝ b, bytes = fixed + c·b.
func syntheticEval(fixedBytes, bytesPerSample, flopsPerSample float64) StepEval {
	return func(b float64) (float64, float64, float64, error) {
		return flopsPerSample * b, fixedBytes + bytesPerSample*b, 1e9 + 1e7*b, nil
	}
}

func TestSubbatchSweepMonotoneIntensity(t *testing.T) {
	a := TargetAccelerator()
	eval := syntheticEval(4e9, 1e6, 481e9)
	pts, err := SubbatchSweep(eval, a, PowersOfTwo(18))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Intensity < pts[i-1].Intensity {
			t.Fatalf("intensity not monotone at %v", pts[i].Subbatch)
		}
		if pts[i].TimePerSample > pts[i-1].TimePerSample*1.0001 {
			t.Fatalf("time/sample increased at %v", pts[i].Subbatch)
		}
	}
	// Intensity saturates at flopsPerSample/bytesPerSample.
	last := pts[len(pts)-1]
	if limit := 481e9 / 1e6; last.Intensity > limit {
		t.Fatalf("intensity %v above saturation %v", last.Intensity, limit)
	}
}

func TestChooseSubbatchPolicies(t *testing.T) {
	a := TargetAccelerator()
	eval := syntheticEval(4e9, 1e6, 481e9)
	pts, err := SubbatchSweep(eval, a, PowersOfTwo(18))
	if err != nil {
		t.Fatal(err)
	}
	minT, err := ChooseSubbatch(pts, a, MinTimePerSample, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ridge, err := ChooseSubbatch(pts, a, RidgePointMatch, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	sat, err := ChooseSubbatch(pts, a, IntensitySaturation, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Paper §5.2.1: ridge-point match under-utilizes (picks a smaller
	// subbatch than min-time), and saturation needs a much larger subbatch
	// and footprint than min-time.
	if ridge.Subbatch > minT.Subbatch {
		t.Fatalf("ridge subbatch %v > min-time subbatch %v", ridge.Subbatch, minT.Subbatch)
	}
	if sat.Subbatch < minT.Subbatch {
		t.Fatalf("saturation subbatch %v < min-time subbatch %v", sat.Subbatch, minT.Subbatch)
	}
	if sat.FootprintBytes <= minT.FootprintBytes {
		t.Fatal("saturation should cost more footprint")
	}
	// Min-time subbatch should land ~1-2x above the ridge-match subbatch
	// (paper: about 1.5x) for recurrent-shaped workloads.
	ratio := minT.Subbatch / ridge.Subbatch
	if ratio < 1 || ratio > 8 {
		t.Fatalf("min-time/ridge subbatch ratio = %v, want small multiple", ratio)
	}
}

func TestChooseSubbatchEmpty(t *testing.T) {
	for _, pol := range []SubbatchPolicy{MinTimePerSample, RidgePointMatch, IntensitySaturation} {
		if _, err := ChooseSubbatch(nil, TargetAccelerator(), pol, 0.05); err == nil {
			t.Fatalf("%s: expected error for empty sweep", pol)
		}
	}
}

func TestChooseSubbatchSinglePoint(t *testing.T) {
	// A one-point sweep is its own optimum under every policy.
	pt := SubbatchPoint{Subbatch: 32, Intensity: 100, TimePerSample: 1e-6}
	for _, pol := range []SubbatchPolicy{MinTimePerSample, RidgePointMatch, IntensitySaturation} {
		got, err := ChooseSubbatch([]SubbatchPoint{pt}, TargetAccelerator(), pol, 0.05)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if got.Subbatch != 32 {
			t.Fatalf("%s: chose %v, want the only point", pol, got.Subbatch)
		}
	}
}

func TestChooseSubbatchDegenerateSweepErrors(t *testing.T) {
	// NaN costs used to fall through to "silently return the last point";
	// they must now surface as explicit errors for the tolerance policies.
	nanPts := []SubbatchPoint{
		{Subbatch: 1, TimePerSample: math.NaN(), Intensity: math.NaN()},
		{Subbatch: 2, TimePerSample: math.NaN(), Intensity: math.NaN()},
	}
	if _, err := ChooseSubbatch(nanPts, TargetAccelerator(), MinTimePerSample, 0.05); err == nil {
		t.Fatal("min-time-per-sample: expected error for all-NaN sweep")
	}
	if _, err := ChooseSubbatch(nanPts, TargetAccelerator(), IntensitySaturation, 0.05); err == nil {
		t.Fatal("intensity-saturation: expected error for all-NaN sweep")
	}
	// RidgePointMatch keeps its documented closest-approach fallback.
	got, err := ChooseSubbatch(nanPts, TargetAccelerator(), RidgePointMatch, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if got.Subbatch != 2 {
		t.Fatalf("ridge-point-match fallback = %v, want last point", got.Subbatch)
	}
}

func TestChooseSubbatchUnknownPolicy(t *testing.T) {
	pts := []SubbatchPoint{{Subbatch: 1, TimePerSample: 1, Intensity: 1}}
	if _, err := ChooseSubbatch(pts, TargetAccelerator(), SubbatchPolicy(99), 0.05); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

func TestSubbatchSweepPropagatesError(t *testing.T) {
	bad := func(float64) (float64, float64, float64, error) {
		return 0, 0, 0, errors.New("boom")
	}
	if _, err := SubbatchSweep(bad, TargetAccelerator(), []float64{1}); err == nil {
		t.Fatal("expected propagated error")
	}
}

func TestPowersOfTwo(t *testing.T) {
	p := PowersOfTwo(3)
	want := []float64{1, 2, 4, 8}
	if len(p) != len(want) {
		t.Fatalf("len = %d", len(p))
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("p[%d] = %v", i, p[i])
		}
	}
}
