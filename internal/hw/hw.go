// Package hw models target accelerators with the Roofline performance model
// (paper §5.2, after Williams et al.): training-step time is bounded by
// either achievable compute throughput or achievable memory bandwidth, and
// the subbatch size is chosen to minimize per-sample step time (§5.2.1).
package hw

import (
	"fmt"
	"math"
)

// Accelerator describes one compute device (paper Table 4). The JSON form
// is the catalog interchange format: catalog entries, user-supplied custom
// devices, and server payloads all use these field names.
type Accelerator struct {
	// Name identifies the configuration.
	Name string `json:"name"`
	// PeakFLOPS is dense compute throughput in FLOP/s at the device's
	// training precision — 32-bit for the paper's Table 4 target and the
	// GPU catalog entries; bf16 for the TPU entry, which has no dense
	// FP32 path.
	PeakFLOPS float64 `json:"peak_flops"`
	// CacheBytes is the on-chip (L2) cache capacity.
	CacheBytes float64 `json:"cache_bytes"`
	// MemBandwidth is off-chip memory bandwidth in B/s.
	MemBandwidth float64 `json:"mem_bandwidth"`
	// MemCapacity is off-chip memory capacity in bytes.
	MemCapacity float64 `json:"mem_capacity"`
	// InterconnectBW is the inter-device link bandwidth in B/s.
	InterconnectBW float64 `json:"interconnect_bw"`
	// AchievableCompute and AchievableMemBW are the attainable fractions of
	// peak (paper: 80% and 70%, consistent with existing hardware).
	AchievableCompute float64 `json:"achievable_compute"`
	AchievableMemBW   float64 `json:"achievable_mem_bw"`
	// CostPerHourUSD is the per-device-hour rental price used to cost
	// cluster plans. Zero means "unpriced": the capacity planner then
	// omits the cost objective for searches touching this device.
	CostPerHourUSD float64 `json:"cost_per_hour_usd,omitempty"`
	// TDPWatts is the per-device board power used for energy estimates.
	// Zero means unknown (plans report zero energy).
	TDPWatts float64 `json:"tdp_watts,omitempty"`
}

// Priced reports whether the device carries a rental price, making it
// eligible for cost-objective ranking in the capacity planner.
func (a Accelerator) Priced() bool { return a.CostPerHourUSD > 0 }

// Fingerprint canonically identifies a device configuration for cache
// keys: every projection-relevant field enters, so two devices sharing a
// name but differing anywhere memoize separately. The name is the one
// user-controlled component (custom uploads), so %q confines it to an
// escaped, quoted segment — a crafted name cannot forge other key
// components and poison a shared cache.
func (a Accelerator) Fingerprint() string {
	return fmt.Sprintf("%q/%g/%g/%g/%g/%g/%g/%g/%g/%g", a.Name, a.PeakFLOPS, a.CacheBytes,
		a.MemBandwidth, a.MemCapacity, a.InterconnectBW, a.AchievableCompute, a.AchievableMemBW,
		a.CostPerHourUSD, a.TDPWatts)
}

// Validate rejects configurations that would poison the Roofline and
// case-study math with NaN or Inf: non-positive peaks, bandwidths,
// capacities, caches or links (cache_bytes and interconnect_bw are
// divisors in the tile-traffic and allreduce models), and achievable
// fractions outside (0, 1].
func (a Accelerator) Validate() error {
	for _, c := range []struct {
		field string
		v     float64
	}{
		{"peak_flops", a.PeakFLOPS},
		{"mem_bandwidth", a.MemBandwidth},
		{"mem_capacity", a.MemCapacity},
		{"cache_bytes", a.CacheBytes},
		{"interconnect_bw", a.InterconnectBW},
		{"achievable_compute", a.AchievableCompute},
		{"achievable_mem_bw", a.AchievableMemBW},
	} {
		if math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return fmt.Errorf("hw: accelerator %q: %s must be finite, got %v", a.Name, c.field, c.v)
		}
		if c.v <= 0 {
			return fmt.Errorf("hw: accelerator %q: %s must be positive, got %v", a.Name, c.field, c.v)
		}
	}
	if a.AchievableCompute > 1 {
		return fmt.Errorf("hw: accelerator %q: achievable_compute %v above 1", a.Name, a.AchievableCompute)
	}
	if a.AchievableMemBW > 1 {
		return fmt.Errorf("hw: accelerator %q: achievable_mem_bw %v above 1", a.Name, a.AchievableMemBW)
	}
	// Cost and power are optional (zero = unpriced / unknown) but must be
	// finite and non-negative: a negative price would invert cost ranking.
	for _, c := range []struct {
		field string
		v     float64
	}{
		{"cost_per_hour_usd", a.CostPerHourUSD},
		{"tdp_watts", a.TDPWatts},
	} {
		if math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return fmt.Errorf("hw: accelerator %q: %s must be finite, got %v", a.Name, c.field, c.v)
		}
		if c.v < 0 {
			return fmt.Errorf("hw: accelerator %q: %s must be non-negative, got %v", a.Name, c.field, c.v)
		}
	}
	return nil
}

// TargetAccelerator returns the paper's Table 4 configuration
// (NVIDIA V100-class).
func TargetAccelerator() Accelerator {
	return Accelerator{
		Name:              "target-v100-class",
		PeakFLOPS:         15.67e12,
		CacheBytes:        6e6,
		MemBandwidth:      898e9,
		MemCapacity:       32e9,
		InterconnectBW:    56e9,
		AchievableCompute: 0.80,
		AchievableMemBW:   0.70,
		CostPerHourUSD:    3.06, // on-demand single-V100 cloud rate class
		TDPWatts:          300,
	}
}

// RidgePoint is the operational intensity (FLOP/B) at which peak compute and
// peak bandwidth balance (paper: 17.4 FLOP/B).
func (a Accelerator) RidgePoint() float64 {
	return a.PeakFLOPS / a.MemBandwidth
}

// EffectiveRidgePoint uses achievable throughputs (paper: 19.9 FLOP/B).
func (a Accelerator) EffectiveRidgePoint() float64 {
	return (a.AchievableCompute * a.PeakFLOPS) / (a.AchievableMemBW * a.MemBandwidth)
}

// StepTime is the Roofline estimate for a workload of the given algorithmic
// FLOPs and bytes (paper §5.2.2):
//
//	rt = max(ct / (80%·xc), at / (70%·xa))
//
// Zero (or negative, clamped) FLOPs and bytes are well-defined: a step
// that computes and moves nothing takes zero seconds. Callers feeding
// degenerate evaluations (a data-movement-only subgraph, an empty
// checkpoint) therefore never see NaN out of the Roofline.
func (a Accelerator) StepTime(flops, bytes float64) float64 {
	if !(flops > 0) && !(bytes > 0) {
		return 0
	}
	ct := flops / (a.AchievableCompute * a.PeakFLOPS)
	at := bytes / (a.AchievableMemBW * a.MemBandwidth)
	return math.Max(ct, at)
}

// ComputeBound reports whether the workload is limited by compute rather
// than bandwidth under the achievable-roofline model.
func (a Accelerator) ComputeBound(flops, bytes float64) bool {
	return flops/bytes >= a.EffectiveRidgePoint()
}

// Utilization is the algorithmic-FLOP utilization achieved when the workload
// runs in the given time: flops / (time · peak).
func (a Accelerator) Utilization(flops, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return flops / (seconds * a.PeakFLOPS)
}

// Fits reports whether a memory footprint fits in device memory.
func (a Accelerator) Fits(footprintBytes float64) bool {
	return footprintBytes <= a.MemCapacity
}

// ---------------------------------------------------------------------------
// Subbatch selection (paper §5.2.1, Figure 11)

// StepEval evaluates a training step at a given subbatch size, returning the
// per-step algorithmic FLOPs, bytes accessed, and memory footprint.
type StepEval func(subbatch float64) (flops, bytes, footprint float64, err error)

// SubbatchPoint is one sample of the Figure 11 sweep.
type SubbatchPoint struct {
	Subbatch       float64 `json:"subbatch"`
	FLOPs          float64 `json:"flops"`
	Bytes          float64 `json:"bytes"`
	Intensity      float64 `json:"intensity"` // graph-level operational intensity
	StepTime       float64 `json:"step_time"`
	TimePerSample  float64 `json:"time_per_sample"`
	FootprintBytes float64 `json:"footprint_bytes"`
	Utilization    float64 `json:"utilization"`
}

// SubbatchSweep evaluates the step across subbatch sizes (Figure 11's x axis).
// A zero-byte step reports zero intensity rather than dividing by zero:
// ±Inf/NaN intensities would poison ChooseSubbatch's policy scans and are
// not JSON-serializable, and "no traffic" has no meaningful operational
// intensity to rank on.
func SubbatchSweep(eval StepEval, acc Accelerator, subbatches []float64) ([]SubbatchPoint, error) {
	out := make([]SubbatchPoint, 0, len(subbatches))
	for _, b := range subbatches {
		f, by, fp, err := eval(b)
		if err != nil {
			return nil, fmt.Errorf("hw: subbatch %v: %w", b, err)
		}
		t := acc.StepTime(f, by)
		intensity := 0.0
		if by > 0 {
			intensity = f / by
		}
		out = append(out, SubbatchPoint{
			Subbatch:       b,
			FLOPs:          f,
			Bytes:          by,
			Intensity:      intensity,
			StepTime:       t,
			TimePerSample:  t / b,
			FootprintBytes: fp,
			Utilization:    acc.Utilization(f, t),
		})
	}
	return out, nil
}

// SubbatchPolicy selects among the three §5.2.1 points of interest.
type SubbatchPolicy int

// The paper's three candidate policies.
const (
	// MinTimePerSample picks the smallest subbatch whose per-sample time is
	// within tolerance of the sweep minimum (the paper's preferred policy).
	MinTimePerSample SubbatchPolicy = iota
	// RidgePointMatch picks the smallest subbatch whose graph-level
	// operational intensity reaches the accelerator's effective ridge point.
	RidgePointMatch
	// IntensitySaturation picks the smallest subbatch whose intensity is
	// within tolerance of the sweep's maximum intensity (large footprint).
	IntensitySaturation
)

func (p SubbatchPolicy) String() string {
	switch p {
	case MinTimePerSample:
		return "min-time-per-sample"
	case RidgePointMatch:
		return "ridge-point-match"
	case IntensitySaturation:
		return "intensity-saturation"
	}
	return "unknown"
}

// ChooseSubbatch applies a policy to a sweep. tol is the relative tolerance
// (e.g. 0.05) used by MinTimePerSample and IntensitySaturation. Those two
// policies fail with an explicit error when no sweep point lands within
// tolerance of the optimum (possible only with degenerate sweeps — NaN
// times or intensities, or a negative tolerance); RidgePointMatch falls
// back to the largest subbatch when the sweep never reaches the ridge,
// since that is the closest approach (the paper's CNNs behave this way).
func ChooseSubbatch(points []SubbatchPoint, acc Accelerator, policy SubbatchPolicy, tol float64) (SubbatchPoint, error) {
	if len(points) == 0 {
		return SubbatchPoint{}, fmt.Errorf("hw: %s: empty subbatch sweep", policy)
	}
	switch policy {
	case MinTimePerSample:
		best := math.Inf(1)
		for _, p := range points {
			if p.TimePerSample < best {
				best = p.TimePerSample
			}
		}
		for _, p := range points {
			if p.TimePerSample <= best*(1+tol) {
				return p, nil
			}
		}
		return SubbatchPoint{}, fmt.Errorf(
			"hw: %s: no subbatch within tolerance %v of minimum time/sample %v", policy, tol, best)
	case RidgePointMatch:
		ridge := acc.EffectiveRidgePoint()
		for _, p := range points {
			if p.Intensity >= ridge {
				return p, nil
			}
		}
		return points[len(points)-1], nil
	case IntensitySaturation:
		best := 0.0
		for _, p := range points {
			if p.Intensity > best {
				best = p.Intensity
			}
		}
		for _, p := range points {
			if p.Intensity >= best*(1-tol) {
				return p, nil
			}
		}
		return SubbatchPoint{}, fmt.Errorf(
			"hw: %s: no subbatch within tolerance %v of peak intensity %v", policy, tol, best)
	}
	return SubbatchPoint{}, fmt.Errorf("hw: unknown subbatch policy %d", int(policy))
}

// PowersOfTwo returns {1, 2, 4, ..., 2^max} as float64s — the standard
// Figure 11 sweep domain.
func PowersOfTwo(max int) []float64 {
	out := make([]float64, 0, max+1)
	for i := 0; i <= max; i++ {
		out = append(out, float64(int64(1)<<uint(i)))
	}
	return out
}
