package hw

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file holds the named accelerator catalog: Roofline presets spanning
// several hardware generations, so frontier projections, subbatch sweeps,
// and the case study can be replayed on more than the paper's single
// V100-class Table 4 part. Entries are modeling presets, not vendor spec
// sheets: 32-bit dense throughput, last-level on-chip cache, and the
// paper's 80% / 70% achievable fractions unless a class is known to
// behave differently.

// Catalog returns every named preset, sorted by name, with the paper's
// Table 4 target first. The slice is freshly allocated; callers may
// mutate it.
func Catalog() []Accelerator {
	out := make([]Accelerator, len(catalog))
	copy(out, catalog)
	return out
}

// Names lists the catalog entry names in Catalog order.
func Names() []string {
	out := make([]string, len(catalog))
	for i, a := range catalog {
		out[i] = a.Name
	}
	return out
}

// Aliases returns a copy of the short-name alias table (alias → catalog
// entry name), so catalogs can be listed with their accepted spellings.
func Aliases() map[string]string {
	out := make(map[string]string, len(aliases))
	for k, v := range aliases {
		out[k] = v
	}
	return out
}

// AliasesFor lists the short names resolving to a catalog entry, sorted.
func AliasesFor(name string) []string {
	var out []string
	for alias, target := range aliases {
		if target == name {
			out = append(out, alias)
		}
	}
	sort.Strings(out)
	return out
}

// Lookup finds a catalog entry by name (case-insensitive). Common aliases
// ("v100", "a100", ...) resolve to their "-class" entries.
func Lookup(name string) (Accelerator, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if alias, ok := aliases[key]; ok {
		key = alias
	}
	for _, a := range catalog {
		if strings.ToLower(a.Name) == key {
			return a, nil
		}
	}
	return Accelerator{}, fmt.Errorf("hw: unknown accelerator %q (catalog: %s)",
		name, strings.Join(Names(), ", "))
}

// ReadAccelerator decodes and validates a user-supplied custom device from
// its JSON form (the same schema Catalog entries serialize to).
func ReadAccelerator(r io.Reader) (Accelerator, error) {
	var a Accelerator
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&a); err != nil {
		return Accelerator{}, fmt.Errorf("hw: decode accelerator: %w", err)
	}
	if a.Name == "" {
		return Accelerator{}, fmt.Errorf("hw: accelerator JSON missing \"name\"")
	}
	if err := a.Validate(); err != nil {
		return Accelerator{}, err
	}
	return a, nil
}

// catalog is the preset list. The Table 4 target leads; the rest are
// sorted by name.
var catalog = func() []Accelerator {
	rest := []Accelerator{
		{
			// NVIDIA A100-80GB-class part: 19.5 TFLOP/s FP32 (non-tensor),
			// 40 MB L2, ~2 TB/s HBM2e, NVLink3.
			Name:              "a100-class",
			PeakFLOPS:         19.5e12,
			CacheBytes:        40e6,
			MemBandwidth:      2039e9,
			MemCapacity:       80e9,
			InterconnectBW:    300e9,
			AchievableCompute: 0.80,
			AchievableMemBW:   0.70,
			CostPerHourUSD:    4.10,
			TDPWatts:          400,
		},
		{
			// NVIDIA H100-SXM-class part: 67 TFLOP/s FP32, 50 MB L2,
			// 3.35 TB/s HBM3, NVLink4.
			Name:              "h100-class",
			PeakFLOPS:         67e12,
			CacheBytes:        50e6,
			MemBandwidth:      3352e9,
			MemCapacity:       80e9,
			InterconnectBW:    450e9,
			AchievableCompute: 0.80,
			AchievableMemBW:   0.70,
			CostPerHourUSD:    6.98,
			TDPWatts:          700,
		},
		{
			// TPUv3-class chip: 2 cores at ~61 TFLOP/s matrix throughput
			// each, 32 MB on-chip (CMEM+vector), 0.9 TB/s HBM per chip,
			// 32 GB HBM, ICI links. NOTE the precision basis: TPUs have no
			// dense FP32 matmul path, so this entry records the bf16 MXU
			// peak — the precision TPUs train at — while the GPU entries
			// record non-tensor FP32 like the paper's Table 4. Epoch-day
			// comparisons against GPU entries are therefore optimistic for
			// this part by roughly the mixed-precision speedup.
			Name:              "tpuv3-class",
			PeakFLOPS:         123e12,
			CacheBytes:        32e6,
			MemBandwidth:      900e9,
			MemCapacity:       32e9,
			InterconnectBW:    70e9,
			AchievableCompute: 0.80,
			AchievableMemBW:   0.70,
			CostPerHourUSD:    2.00,
			TDPWatts:          220,
		},
		{
			// Server-CPU-class node: two sockets of a wide-vector part
			// (~3 TFLOP/s FP32 aggregate), large LLC, 8-channel DDR, and
			// plentiful but slow DRAM behind a 100 GbE fabric. CPUs hit a
			// smaller fraction of peak on dense kernels but stream memory
			// efficiently.
			Name:              "cpu-class",
			PeakFLOPS:         3e12,
			CacheBytes:        77e6,
			MemBandwidth:      280e9,
			MemCapacity:       768e9,
			InterconnectBW:    12.5e9,
			AchievableCompute: 0.60,
			AchievableMemBW:   0.80,
			CostPerHourUSD:    1.90,
			TDPWatts:          770,
		},
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].Name < rest[j].Name })
	return append([]Accelerator{TargetAccelerator()}, rest...)
}()

// aliases maps short names to catalog entries.
var aliases = map[string]string{
	"v100":   "target-v100-class",
	"target": "target-v100-class",
	"a100":   "a100-class",
	"h100":   "h100-class",
	"tpuv3":  "tpuv3-class",
	"tpu":    "tpuv3-class",
	"cpu":    "cpu-class",
}
