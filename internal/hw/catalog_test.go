package hw

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestCatalogEntriesValidate(t *testing.T) {
	cat := Catalog()
	if len(cat) < 5 {
		t.Fatalf("catalog has %d entries, want >= 5", len(cat))
	}
	seen := map[string]bool{}
	for _, a := range cat {
		if err := a.Validate(); err != nil {
			t.Errorf("catalog entry %s invalid: %v", a.Name, err)
		}
		if seen[a.Name] {
			t.Errorf("duplicate catalog name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if cat[0].Name != "target-v100-class" {
		t.Fatalf("catalog[0] = %s, want the paper's target first", cat[0].Name)
	}
}

func TestCatalogTargetMatchesTable4(t *testing.T) {
	// The catalog must preserve the paper's Table 4 part exactly, so every
	// default-target analysis stays byte-identical.
	got, err := Lookup("target-v100-class")
	if err != nil {
		t.Fatal(err)
	}
	if got != TargetAccelerator() {
		t.Fatalf("catalog target %+v != TargetAccelerator %+v", got, TargetAccelerator())
	}
}

func TestLookupAliasesAndCase(t *testing.T) {
	for alias, want := range map[string]string{
		"v100": "target-v100-class", "A100": "a100-class", " h100 ": "h100-class",
		"tpu": "tpuv3-class", "CPU": "cpu-class", "a100-class": "a100-class",
	} {
		a, err := Lookup(alias)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", alias, err)
		}
		if a.Name != want {
			t.Fatalf("Lookup(%q) = %s, want %s", alias, a.Name, want)
		}
	}
	if _, err := Lookup("k80"); err == nil || !strings.Contains(err.Error(), "catalog:") {
		t.Fatalf("unknown lookup error should list the catalog, got %v", err)
	}
}

func TestAcceleratorJSONRoundTrip(t *testing.T) {
	for _, a := range Catalog() {
		b, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadAccelerator(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if got != a {
			t.Fatalf("round trip changed %s: %+v -> %+v", a.Name, a, got)
		}
	}
}

func TestReadAcceleratorRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"not json":       `{`,
		"unknown field":  `{"name":"x","peak_flops":1,"mem_bandwidth":1,"mem_capacity":1,"achievable_compute":0.8,"achievable_mem_bw":0.7,"bogus":1}`,
		"missing name":   `{"peak_flops":1e12,"mem_bandwidth":1e11,"mem_capacity":1e9,"achievable_compute":0.8,"achievable_mem_bw":0.7}`,
		"zero peak":      `{"name":"x","peak_flops":0,"mem_bandwidth":1e11,"mem_capacity":1e9,"achievable_compute":0.8,"achievable_mem_bw":0.7}`,
		"fraction above": `{"name":"x","peak_flops":1e12,"mem_bandwidth":1e11,"mem_capacity":1e9,"achievable_compute":1.2,"achievable_mem_bw":0.7}`,
	}
	for name, in := range cases {
		if _, err := ReadAccelerator(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestValidate(t *testing.T) {
	good := TargetAccelerator()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(*Accelerator)) Accelerator {
		a := TargetAccelerator()
		f(&a)
		return a
	}
	bad := []Accelerator{
		mutate(func(a *Accelerator) { a.PeakFLOPS = 0 }),
		mutate(func(a *Accelerator) { a.PeakFLOPS = -1 }),
		mutate(func(a *Accelerator) { a.PeakFLOPS = math.Inf(1) }),
		mutate(func(a *Accelerator) { a.MemBandwidth = 0 }),
		mutate(func(a *Accelerator) { a.MemBandwidth = math.NaN() }),
		mutate(func(a *Accelerator) { a.MemCapacity = 0 }),
		mutate(func(a *Accelerator) { a.CacheBytes = -1 }),
		// Zero cache or links would divide the tile-traffic and allreduce
		// models to +Inf.
		mutate(func(a *Accelerator) { a.CacheBytes = 0 }),
		mutate(func(a *Accelerator) { a.InterconnectBW = -5 }),
		mutate(func(a *Accelerator) { a.InterconnectBW = 0 }),
		mutate(func(a *Accelerator) { a.AchievableCompute = 0 }),
		mutate(func(a *Accelerator) { a.AchievableCompute = 1.01 }),
		mutate(func(a *Accelerator) { a.AchievableMemBW = -0.1 }),
		mutate(func(a *Accelerator) { a.AchievableMemBW = 2 }),
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, a)
		}
	}
	// A valid accelerator must produce finite Roofline numbers.
	if tm := good.StepTime(1e12, 1e9); math.IsNaN(tm) || math.IsInf(tm, 0) || tm <= 0 {
		t.Fatalf("step time %v not finite-positive", tm)
	}
}

func TestCatalogRidgePointsOrdered(t *testing.T) {
	// Sanity: the HBM-era GPU parts keep ridge points in the tens of
	// FLOP/B — the regime the paper's intensity analysis targets.
	for _, name := range []string{"target-v100-class", "a100-class", "h100-class"} {
		a, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if r := a.RidgePoint(); r < 5 || r > 50 {
			t.Errorf("%s ridge point %.1f outside plausible GPU range", name, r)
		}
	}
}
