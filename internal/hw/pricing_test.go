package hw

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestCatalogPresetsPriced pins the satellite contract: every catalog
// entry carries a positive price and TDP so capacity plans can be costed.
func TestCatalogPresetsPriced(t *testing.T) {
	for _, a := range Catalog() {
		if !a.Priced() {
			t.Errorf("%s: CostPerHourUSD = %g, want > 0", a.Name, a.CostPerHourUSD)
		}
		if a.TDPWatts <= 0 {
			t.Errorf("%s: TDPWatts = %g, want > 0", a.Name, a.TDPWatts)
		}
	}
}

func TestCostFieldsJSONRoundTrip(t *testing.T) {
	a := TargetAccelerator()
	a.CostPerHourUSD = 1.23
	a.TDPWatts = 456
	b, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"cost_per_hour_usd":1.23`, `"tdp_watts":456`} {
		if !strings.Contains(string(b), field) {
			t.Errorf("serialized form missing %s: %s", field, b)
		}
	}
	got, err := ReadAccelerator(strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("roundtrip: got %+v want %+v", got, a)
	}

	// Zero cost ("unpriced") roundtrips too, and omits the keys entirely.
	a.CostPerHourUSD, a.TDPWatts = 0, 0
	b, err = json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "cost_per_hour_usd") || strings.Contains(string(b), "tdp_watts") {
		t.Errorf("zero cost fields serialized: %s", b)
	}
	got, err = ReadAccelerator(strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Priced() {
		t.Fatalf("zero-cost device decoded as priced: %+v", got)
	}
}

func TestValidateRejectsNegativeCostAndPower(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*Accelerator)
	}{
		{"negative cost", func(a *Accelerator) { a.CostPerHourUSD = -1 }},
		{"NaN cost", func(a *Accelerator) { a.CostPerHourUSD = math.NaN() }},
		{"Inf cost", func(a *Accelerator) { a.CostPerHourUSD = math.Inf(1) }},
		{"negative TDP", func(a *Accelerator) { a.TDPWatts = -300 }},
		{"NaN TDP", func(a *Accelerator) { a.TDPWatts = math.NaN() }},
	} {
		a := TargetAccelerator()
		tc.mutate(&a)
		if err := a.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, a)
		}
	}
	// Zero stays valid: it means unpriced / unknown, not broken.
	a := TargetAccelerator()
	a.CostPerHourUSD, a.TDPWatts = 0, 0
	if err := a.Validate(); err != nil {
		t.Errorf("zero cost/TDP rejected: %v", err)
	}
}

func TestAliasAccessors(t *testing.T) {
	aliases := Aliases()
	if aliases["v100"] != "target-v100-class" {
		t.Fatalf("Aliases() missing v100: %v", aliases)
	}
	// The copy must be detached from the internal table.
	aliases["v100"] = "clobbered"
	if Aliases()["v100"] != "target-v100-class" {
		t.Fatal("Aliases() returned the internal map")
	}
	got := AliasesFor("target-v100-class")
	if len(got) != 2 || got[0] != "target" || got[1] != "v100" {
		t.Fatalf("AliasesFor(target-v100-class) = %v, want [target v100]", got)
	}
	if got := AliasesFor("no-such-entry"); len(got) != 0 {
		t.Fatalf("AliasesFor(no-such-entry) = %v", got)
	}
}
