package hw

import (
	"math"
	"testing"
)

// Regression tests for the divide-by-zero hazards: a step reporting zero
// bytes and/or zero FLOPs must flow through StepTime and SubbatchSweep
// without producing NaN or Inf anywhere in the point.

func TestStepTimeZeroWork(t *testing.T) {
	a := TargetAccelerator()
	if got := a.StepTime(0, 0); got != 0 {
		t.Fatalf("StepTime(0, 0) = %v, want 0", got)
	}
	if got := a.StepTime(1e12, 0); got != 1e12/(a.AchievableCompute*a.PeakFLOPS) {
		t.Fatalf("StepTime(1e12, 0) = %v, want pure compute time", got)
	}
	if got := a.StepTime(0, 1e9); got != 1e9/(a.AchievableMemBW*a.MemBandwidth) {
		t.Fatalf("StepTime(0, 1e9) = %v, want pure bandwidth time", got)
	}
}

func TestSubbatchSweepZeroBytes(t *testing.T) {
	a := TargetAccelerator()
	// A compute-only step: bytes stay zero at every subbatch.
	eval := func(b float64) (float64, float64, float64, error) { return 1e9 * b, 0, 0, nil }
	pts, err := SubbatchSweep(eval, a, PowersOfTwo(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		for name, v := range map[string]float64{
			"intensity": p.Intensity, "step_time": p.StepTime,
			"time_per_sample": p.TimePerSample, "utilization": p.Utilization,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("subbatch %g: %s = %v", p.Subbatch, name, v)
			}
		}
		if p.Intensity != 0 {
			t.Fatalf("subbatch %g: zero-byte intensity = %v, want 0", p.Subbatch, p.Intensity)
		}
	}
	// The zero-traffic points must still be rankable by every policy.
	for _, pol := range []SubbatchPolicy{MinTimePerSample, RidgePointMatch, IntensitySaturation} {
		if _, err := ChooseSubbatch(pts, a, pol, 0.05); err != nil {
			t.Fatalf("%s on zero-byte sweep: %v", pol, err)
		}
	}
}

func TestSubbatchSweepZeroWork(t *testing.T) {
	a := TargetAccelerator()
	// A fully degenerate step: no FLOPs, no bytes. Previously Intensity was
	// 0/0 = NaN, which broke JSON encoding and policy scans.
	eval := func(b float64) (float64, float64, float64, error) { return 0, 0, 0, nil }
	pts, err := SubbatchSweep(eval, a, PowersOfTwo(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if math.IsNaN(p.Intensity) || math.IsNaN(p.StepTime) || math.IsNaN(p.TimePerSample) {
			t.Fatalf("subbatch %g: NaN in %+v", p.Subbatch, p)
		}
		if p.StepTime != 0 || p.Intensity != 0 {
			t.Fatalf("subbatch %g: zero-work point = %+v, want zero time and intensity", p.Subbatch, p)
		}
	}
}
