package plan

import (
	"context"
	"os"
	"testing"
)

// TestPlanBenchFloors is the CI regression gate on the BENCH_pr4.json
// trajectory: the reference search must stay above a pinned warm
// throughput floor. The floor is conservative — an order of magnitude
// under typical dev-machine results — so only a real regression (losing
// characterization sharing, per-candidate allocation blowup) trips it,
// not machine noise. Set PLAN_BENCH_OUT to also write the snapshot.
func TestPlanBenchFloors(t *testing.T) {
	if testing.Short() {
		t.Skip("bench harness skipped in -short")
	}
	rep, err := RunBench(context.Background(), ReferenceSearch())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Candidates != 330 {
		t.Fatalf("reference search drifted: %d candidates, want 330", rep.Candidates)
	}
	if rep.FrontierSize == 0 {
		t.Fatal("reference search produced an empty frontier")
	}
	const warmFloor = 500.0 // plans/sec
	if rep.WarmPlansPerSec < warmFloor {
		t.Errorf("warm throughput %.1f plans/s below pinned floor %.0f", rep.WarmPlansPerSec, warmFloor)
	}
	t.Logf("%d candidates: cold %.2fs (%.0f plans/s), warm %.3fs (%.0f plans/s, %.1fx)",
		rep.Candidates, rep.ColdSeconds, rep.ColdPlansPerSec,
		rep.WarmSeconds, rep.WarmPlansPerSec, rep.ColdOverWarm)
	if path := os.Getenv("PLAN_BENCH_OUT"); path != "" {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := WriteReport(f, rep); err != nil {
			t.Fatal(err)
		}
	}
}

// BenchmarkPlanSearch measures one warm reference search end to end.
func BenchmarkPlanSearch(b *testing.B) {
	src := newBuildSource()
	p, err := New(src, ReferenceSearch())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.Run(context.Background()); err != nil {
		b.Fatal(err) // warm the source before timing
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}
