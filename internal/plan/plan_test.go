package plan

import (
	"context"
	"reflect"
	"sort"
	"strings"
	"testing"

	"catamount/internal/core"
	"catamount/internal/costmodel"
	"catamount/internal/graph"
	"catamount/internal/hw"
	"catamount/internal/models"
)

// smallSpec is a ≤200-candidate search used by the equivalence tests:
// 2 accelerators × 2 subbatches × 4 worker counts × 3 strategies = 48.
func smallSpec() Spec {
	return Spec{
		Domain:       "wordlm",
		Accelerators: []string{"v100", "cpu"},
		Subbatches:   []float64{32, 128},
		WorkerCounts: []int{1, 4, 16, 64},
	}
}

// bruteForce is the reference implementation: no sweep pool, no shared
// sessions — one fresh Analyzer, nested loops in search order, and an
// independently-written O(n²) Pareto pass. Equivalence with Planner.Run
// is exact because both sides share Evaluate and the same bisection.
func bruteForce(t *testing.T, spec Spec) *Result {
	t.Helper()
	d := models.Domain(spec.Domain)
	target, err := ResolveTarget(d, spec.TargetErr)
	if err != nil {
		t.Fatal(err)
	}
	m, err := models.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewAnalyzer(m)
	if err != nil {
		t.Fatal(err)
	}
	size, err := a.SizeForParams(target.Params)
	if err != nil {
		t.Fatal(err)
	}

	var accs []hw.Accelerator
	for _, name := range spec.Accelerators {
		acc, err := hw.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		accs = append(accs, acc)
	}
	accs = append(accs, spec.Custom...)

	strategies := AllStrategies()
	if len(spec.Strategies) > 0 {
		strategies = nil
		for _, name := range spec.Strategies {
			st, err := ParseStrategy(name)
			if err != nil {
				t.Fatal(err)
			}
			strategies = append(strategies, st)
		}
	}

	priced := true
	for _, acc := range accs {
		if !acc.Priced() {
			priced = false
		}
	}

	cm, err := costmodel.Parse(spec.CostModel)
	if err != nil {
		t.Fatal(err)
	}

	var plans []Plan
	for _, acc := range accs {
		for _, b := range spec.Subbatches {
			req, cerr := a.Characterize(context.Background(), size, b, graph.PolicyMemGreedy)
			for _, w := range spec.WorkerCounts {
				for _, st := range strategies {
					if cerr != nil {
						plans = append(plans, Evaluate(target, acc, w, b, st, nil, 0, cerr.Error(), spec))
					} else {
						r := req
						compute := cm.StepTime(acc, a.StepCosts(size, b, costmodel.NeedsOpCosts(cm)))
						plans = append(plans, Evaluate(target, acc, w, b, st, &r, compute, "", spec))
					}
				}
			}
		}
	}

	// Independent Pareto pass: collect feasible indices, test each pair.
	better := func(x, y Plan) bool { // x strictly dominates y
		le := x.TrainHours <= y.TrainHours && x.Devices <= y.Devices
		lt := x.TrainHours < y.TrainHours || x.Devices < y.Devices
		if priced {
			le = le && x.CostUSD <= y.CostUSD
			lt = lt || x.CostUSD < y.CostUSD
		}
		return le && lt
	}
	for i := range plans {
		if !plans[i].Feasible {
			continue
		}
		plans[i].OnFrontier = true
		for j := range plans {
			if j != i && plans[j].Feasible && better(plans[j], plans[i]) {
				plans[i].OnFrontier = false
				break
			}
		}
	}
	var frontier []Plan
	for _, p := range plans {
		if p.OnFrontier {
			frontier = append(frontier, p)
		}
	}
	sort.Slice(frontier, func(i, j int) bool {
		a, b := frontier[i], frontier[j]
		if a.TrainHours != b.TrainHours {
			return a.TrainHours < b.TrainHours
		}
		if a.Devices != b.Devices {
			return a.Devices < b.Devices
		}
		if a.CostUSD != b.CostUSD {
			return a.CostUSD < b.CostUSD
		}
		if a.Accelerator != b.Accelerator {
			return a.Accelerator < b.Accelerator
		}
		if a.Strategy != b.Strategy {
			return a.Strategy < b.Strategy
		}
		if a.Subbatch != b.Subbatch {
			return a.Subbatch < b.Subbatch
		}
		return a.Workers < b.Workers
	})
	objectives := []string{"train_hours", "devices"}
	if priced {
		objectives = append(objectives, "cost_usd")
	}
	return &Result{
		Target:     target,
		CostModel:  cm.Name(),
		Objectives: objectives,
		Candidates: len(plans),
		Frontier:   frontier,
		Plans:      plans,
	}
}

func runPlanner(t *testing.T, spec Spec) *Result {
	t.Helper()
	p, err := New(newBuildSource(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPlannerMatchesBruteForce(t *testing.T) {
	spec := smallSpec()
	got := runPlanner(t, spec)
	want := bruteForce(t, spec)

	if got.Candidates != want.Candidates || got.Candidates != 48 {
		t.Fatalf("candidates = %d, want %d", got.Candidates, want.Candidates)
	}
	if !reflect.DeepEqual(got.Plans, want.Plans) {
		for i := range got.Plans {
			if !reflect.DeepEqual(got.Plans[i], want.Plans[i]) {
				t.Fatalf("plan %d differs:\n got  %+v\n want %+v", i, got.Plans[i], want.Plans[i])
			}
		}
		t.Fatal("plans differ")
	}
	if !reflect.DeepEqual(got.Frontier, want.Frontier) {
		t.Fatalf("frontier differs:\n got  %+v\n want %+v", got.Frontier, want.Frontier)
	}
	if len(got.Frontier) == 0 {
		t.Fatal("empty frontier on the small grid")
	}
	if !reflect.DeepEqual(got.Frontier[0], want.Frontier[0]) {
		t.Fatalf("best plan differs: got %+v want %+v", got.Frontier[0], want.Frontier[0])
	}
}

// TestPlannerMatchesBruteForcePerOp replays the equivalence check under
// the per-op backend, and pins the macro consequence the paper warns
// about: per-op plans never train faster than graph-roofline plans for the
// same configuration.
func TestPlannerMatchesBruteForcePerOp(t *testing.T) {
	spec := smallSpec()
	spec.CostModel = "perop"
	got := runPlanner(t, spec)
	want := bruteForce(t, spec)
	if !reflect.DeepEqual(got.Plans, want.Plans) {
		for i := range got.Plans {
			if !reflect.DeepEqual(got.Plans[i], want.Plans[i]) {
				t.Fatalf("plan %d differs:\n got  %+v\n want %+v", i, got.Plans[i], want.Plans[i])
			}
		}
		t.Fatal("plans differ")
	}
	if got.CostModel != "perop" {
		t.Fatalf("result costmodel = %q, want perop", got.CostModel)
	}

	base := runPlanner(t, smallSpec())
	if len(base.Plans) != len(got.Plans) {
		t.Fatalf("grid sizes differ: %d vs %d", len(base.Plans), len(got.Plans))
	}
	for i := range got.Plans {
		g, p := base.Plans[i], got.Plans[i]
		if g.Accelerator != p.Accelerator || g.Workers != p.Workers || g.Subbatch != p.Subbatch || g.Strategy != p.Strategy {
			t.Fatalf("plan %d identity mismatch", i)
		}
		if p.ComputeSeconds < g.ComputeSeconds {
			t.Errorf("plan %d: per-op compute %.6g faster than graph %.6g", i, p.ComputeSeconds, g.ComputeSeconds)
		}
		if g.Feasible && p.Feasible && p.TrainHours < g.TrainHours {
			t.Errorf("plan %d: per-op train hours %.6g below graph %.6g", i, p.TrainHours, g.TrainHours)
		}
	}
}

func TestParetoInvariants(t *testing.T) {
	spec := smallSpec()
	res := runPlanner(t, spec)

	priced := len(res.Objectives) == 3
	// 1. No frontier member is dominated by any feasible plan.
	for _, f := range res.Frontier {
		for _, p := range res.Plans {
			if p.Feasible && dominates(p, f, priced) {
				t.Errorf("frontier plan %+v dominated by %+v", f, p)
			}
		}
	}
	// 2. Every feasible non-frontier plan is dominated by someone.
	for _, p := range res.Plans {
		if !p.Feasible || p.OnFrontier {
			continue
		}
		dominated := false
		for _, q := range res.Plans {
			if q.Feasible && dominates(q, p, priced) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Errorf("non-frontier feasible plan %+v dominated by nobody", p)
		}
	}
	// 3. The frontier is sorted by the documented outcome order.
	for i := 1; i < len(res.Frontier); i++ {
		a, b := res.Frontier[i-1], res.Frontier[i]
		if a.TrainHours > b.TrainHours {
			t.Errorf("frontier not sorted: %g hours before %g", a.TrainHours, b.TrainHours)
		}
	}
	// 4. Two runs are byte-identical (deterministic regardless of worker
	// scheduling inside the sweep pool).
	again := runPlanner(t, spec)
	if !reflect.DeepEqual(res, again) {
		t.Error("two identical searches returned different results")
	}
}

// TestMoreWorkersNeverIncreaseComputeTime is the monotonicity property:
// with a fixed per-worker subbatch, adding workers never increases the
// compute-only step time, and strictly decreases the compute-only
// end-to-end time.
func TestMoreWorkersNeverIncreaseComputeTime(t *testing.T) {
	res := runPlanner(t, smallSpec())

	type key struct {
		acc string
		b   float64
		st  Strategy
	}
	groups := make(map[key][]Plan)
	for _, p := range res.Plans {
		k := key{p.Accelerator, p.Subbatch, p.Strategy}
		groups[k] = append(groups[k], p)
	}
	for k, plans := range groups {
		sort.Slice(plans, func(i, j int) bool { return plans[i].Workers < plans[j].Workers })
		for i := 1; i < len(plans); i++ {
			prev, cur := plans[i-1], plans[i]
			if cur.ComputeSeconds > prev.ComputeSeconds {
				t.Errorf("%v: compute step time rose from %g (w=%d) to %g (w=%d)",
					k, prev.ComputeSeconds, prev.Workers, cur.ComputeSeconds, cur.Workers)
			}
			prevTotal := prev.Steps * prev.ComputeSeconds
			curTotal := cur.Steps * cur.ComputeSeconds
			if curTotal >= prevTotal {
				t.Errorf("%v: compute-only train time did not shrink: %g (w=%d) -> %g (w=%d)",
					k, prevTotal, prev.Workers, curTotal, cur.Workers)
			}
		}
	}
}

func TestInfeasiblePlansAnnotatedNotDropped(t *testing.T) {
	tiny := hw.TargetAccelerator()
	tiny.Name = "tiny-mem"
	tiny.MemCapacity = 1e9 // 1 GB: everything OOMs
	spec := Spec{
		Domain:       "wordlm",
		Custom:       []hw.Accelerator{tiny},
		Subbatches:   []float64{0.5, 32},
		WorkerCounts: []int{1, 8},
	}
	res := runPlanner(t, spec)
	if res.Candidates != 2*2*3 || len(res.Plans) != res.Candidates {
		t.Fatalf("plans dropped: %d of %d", len(res.Plans), res.Candidates)
	}
	if len(res.Frontier) != 0 {
		t.Fatalf("expected empty frontier, got %d", len(res.Frontier))
	}
	for _, p := range res.Plans {
		if p.Feasible || len(p.Infeasible) == 0 {
			t.Fatalf("plan %+v should be annotated infeasible", p)
		}
		wantOOM := false
		for _, r := range p.Infeasible {
			if strings.Contains(r, "GB per device") {
				wantOOM = true
			}
		}
		if !wantOOM {
			t.Errorf("plan %+v missing OOM annotation: %v", p, p.Infeasible)
		}
		if p.Subbatch == 0.5 {
			found := false
			for _, r := range p.Infeasible {
				if strings.Contains(r, "below minimum") {
					found = true
				}
			}
			if !found {
				t.Errorf("subbatch 0.5 plan missing below-minimum annotation: %v", p.Infeasible)
			}
		}
	}
}

func TestBudgetsAnnotate(t *testing.T) {
	spec := smallSpec()
	spec.BudgetHours = 1e-6 // everything is over budget
	res := runPlanner(t, spec)
	if len(res.Frontier) != 0 {
		t.Fatalf("expected empty frontier under impossible budget, got %d", len(res.Frontier))
	}
	over := 0
	for _, p := range res.Plans {
		for _, r := range p.Infeasible {
			if strings.Contains(r, "hour budget") {
				over++
			}
		}
	}
	if over == 0 {
		t.Fatal("no plan annotated over time budget")
	}
}

func TestUnpricedDeviceOmitsCostObjective(t *testing.T) {
	free := hw.TargetAccelerator()
	free.Name = "donated-cluster"
	free.CostPerHourUSD = 0
	spec := Spec{
		Domain:       "image", // small models: plans actually fit
		Custom:       []hw.Accelerator{free},
		Subbatches:   []float64{32},
		WorkerCounts: []int{1, 2},
	}
	res := runPlanner(t, spec)
	for _, obj := range res.Objectives {
		if obj == "cost_usd" {
			t.Fatalf("cost objective active with an unpriced device: %v", res.Objectives)
		}
	}
	for _, p := range res.Plans {
		if p.CostUSD != 0 {
			t.Errorf("unpriced device produced cost %g", p.CostUSD)
		}
	}
}

func TestResolveTarget(t *testing.T) {
	// Zero target resolves to the Table 1 desired SOTA.
	target, err := ResolveTarget(models.WordLM, 0)
	if err != nil {
		t.Fatal(err)
	}
	if target.TargetErr != 2.48 {
		t.Fatalf("default target err = %g, want 2.48", target.TargetErr)
	}
	// The computed growth should land near Table 1's published 100x data /
	// 23x model scale (the paper rounds its constants).
	if target.DataScale < 50 || target.DataScale > 200 {
		t.Errorf("data scale %.1fx implausibly far from Table 1's 100x", target.DataScale)
	}
	if target.ModelScale < 15 || target.ModelScale > 35 {
		t.Errorf("model scale %.1fx implausibly far from Table 1's 23x", target.ModelScale)
	}

	if _, err := ResolveTarget(models.WordLM, 1.0); err == nil {
		t.Error("target below irreducible error not rejected")
	}
	if _, err := ResolveTarget(models.WordLM, -1); err == nil {
		t.Error("negative target not rejected")
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{},                                 // missing domain
		{Domain: "tabular"},                // unknown domain
		{Domain: "wordlm", TargetErr: 0.1}, // below irreducible
		{Domain: "wordlm", WorkerCounts: []int{0}},
		{Domain: "wordlm", Subbatches: []float64{-4}},
		{Domain: "wordlm", Strategies: []string{"fsdp9000"}},
		{Domain: "wordlm", Accelerators: []string{"abacus"}},
		{Domain: "wordlm", BudgetHours: -1},
		{Domain: "wordlm", Epochs: -2},
		{Domain: "wordlm", OverlapBuckets: -1},
		{Domain: "wordlm", CostModel: "quantum"},
	}
	for i, spec := range bad {
		if _, err := New(newBuildSource(), spec); err == nil {
			t.Errorf("spec %d (%+v) not rejected", i, spec)
		}
	}
}

func TestKeyCanonicalAcrossAliases(t *testing.T) {
	a, err := New(newBuildSource(), Spec{Domain: "wordlm", Accelerators: []string{"v100"}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(newBuildSource(), Spec{Domain: "wordlm", Accelerators: []string{"target-v100-class"}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Errorf("alias spelling changed the key:\n %s\n %s", a.Key(), b.Key())
	}
	// The evaluation pool size must not affect the key.
	c, err := New(newBuildSource(), Spec{Domain: "wordlm", Accelerators: []string{"v100"}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != c.Key() {
		t.Error("worker-pool size leaked into the key")
	}
	// Cost-model aliases canonicalize into one key; distinct backends do
	// not share one.
	var keys []string
	for _, name := range []string{"perop", "per-op", "Perop-Roofline", "per-op-roofline"} {
		p, err := New(newBuildSource(), Spec{Domain: "wordlm", Accelerators: []string{"v100"}, CostModel: name})
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, p.Key())
	}
	for _, k := range keys[1:] {
		if k != keys[0] {
			t.Errorf("cost-model alias changed the key:\n %s\n %s", keys[0], k)
		}
	}
	if keys[0] == a.Key() {
		t.Error("perop and graph searches share a key")
	}
	g, err := New(newBuildSource(), Spec{Domain: "wordlm", Accelerators: []string{"v100"}, CostModel: "graph-roofline"})
	if err != nil {
		t.Fatal(err)
	}
	if g.Key() != a.Key() {
		t.Error("explicit graph alias diverged from the default key")
	}
}

func TestShardedReducesPerDeviceMemory(t *testing.T) {
	res := runPlanner(t, smallSpec())
	type key struct {
		acc string
		b   float64
		w   int
	}
	mem := make(map[key]map[Strategy]float64)
	for _, p := range res.Plans {
		k := key{p.Accelerator, p.Subbatch, p.Workers}
		if mem[k] == nil {
			mem[k] = make(map[Strategy]float64)
		}
		mem[k][p.Strategy] = p.MemPerDeviceGB
	}
	for k, byStrat := range mem {
		if k.w <= 1 {
			continue
		}
		if byStrat[StrategySharded] >= byStrat[StrategyAllReduce] {
			t.Errorf("%v: sharded mem %g GB not below allreduce %g GB",
				k, byStrat[StrategySharded], byStrat[StrategyAllReduce])
		}
	}
}

func TestCancelledContextStopsSearch(t *testing.T) {
	p, err := New(newBuildSource(), smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Run(ctx); err == nil {
		t.Fatal("cancelled search returned no error")
	}
}
