package plan

import (
	"context"
	"encoding/json"
	"io"
	"runtime"
	"sync"
	"time"

	"catamount/internal/core"
	"catamount/internal/models"
)

// This file is the planner benchmark harness behind BENCH_pr4.json: it
// runs a fixed reference search and reports plans/sec, cold (building and
// compiling the domain model — the first-request experience) and warm (the
// steady state Engine.Plan's memo and the serving layer live in). The CI
// bench job publishes the report and gates on a pinned floor
// (TestPlanBenchFloors); cmd/plan -bench writes it locally.

// BenchSchema versions the report format.
const BenchSchema = "catamount-plan-bench/v1"

// ReferenceSearch is the fixed search the bench trajectory tracks across
// PRs: the frontier word LM over the full five-entry catalog, two
// subbatches, eleven worker counts, and all three strategies — 330
// candidate plans composed from two characterizations and one size solve.
// Changing it breaks snapshot comparability; add a new named search
// instead.
func ReferenceSearch() Spec {
	var workers []int
	for w := 1; w <= 1024; w *= 2 {
		workers = append(workers, w)
	}
	return Spec{
		Domain: "wordlm",
		Accelerators: []string{
			"target-v100-class", "a100-class", "h100-class", "tpuv3-class", "cpu-class",
		},
		Subbatches:   []float64{32, 128},
		WorkerCounts: workers,
	}
}

// BenchReport is one harness run.
type BenchReport struct {
	Schema    string `json:"schema"`
	Search    string `json:"search"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`

	Candidates   int `json:"candidates"`
	FrontierSize int `json:"frontier_size"`

	ColdSeconds     float64 `json:"cold_seconds"`
	WarmSeconds     float64 `json:"warm_seconds"`
	ColdPlansPerSec float64 `json:"cold_plans_per_sec"`
	WarmPlansPerSec float64 `json:"warm_plans_per_sec"`
	// ColdOverWarm is the compile-amortization ratio: how much of a cold
	// search is one-time model build+compile rather than evaluation.
	ColdOverWarm float64 `json:"cold_over_warm_x"`
}

// buildSource is a minimal memoizing SessionSource for harness and test
// runs: a fresh one reproduces the cold (build+compile) experience without
// dragging the full Engine in.
type buildSource struct {
	mu sync.Mutex
	m  map[models.Domain]*buildEntry
}

type buildEntry struct {
	once sync.Once
	a    *core.Analyzer
	err  error
}

func newBuildSource() *buildSource {
	return &buildSource{m: make(map[models.Domain]*buildEntry)}
}

// Analyzer builds and compiles a domain's model at most once.
func (s *buildSource) Analyzer(d models.Domain) (*core.Analyzer, error) {
	s.mu.Lock()
	ent, ok := s.m[d]
	if !ok {
		ent = &buildEntry{}
		s.m[d] = ent
	}
	s.mu.Unlock()
	ent.once.Do(func() {
		m, err := models.Build(d)
		if err != nil {
			ent.err = err
			return
		}
		ent.a, ent.err = core.NewAnalyzer(m)
	})
	return ent.a, ent.err
}

// RunBench runs the reference search cold (fresh source) once and warm
// (same source) three times, keeping the best warm run.
func RunBench(ctx context.Context, spec Spec) (*BenchReport, error) {
	src := newBuildSource()
	p, err := New(src, spec)
	if err != nil {
		return nil, err
	}
	rep := &BenchReport{
		Schema:     BenchSchema,
		Search:     "reference",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.GOMAXPROCS(0),
		Candidates: p.Candidates(),
	}

	start := time.Now()
	res, err := p.Run(ctx)
	if err != nil {
		return nil, err
	}
	rep.ColdSeconds = time.Since(start).Seconds()
	rep.FrontierSize = len(res.Frontier)

	best := -1.0
	for rerun := 0; rerun < 3; rerun++ {
		start = time.Now()
		if _, err := p.Run(ctx); err != nil {
			return nil, err
		}
		if elapsed := time.Since(start).Seconds(); best < 0 || elapsed < best {
			best = elapsed
		}
	}
	rep.WarmSeconds = best
	rep.ColdPlansPerSec = float64(rep.Candidates) / rep.ColdSeconds
	rep.WarmPlansPerSec = float64(rep.Candidates) / rep.WarmSeconds
	rep.ColdOverWarm = rep.ColdSeconds / rep.WarmSeconds
	return rep, nil
}

// WriteReport serializes a report as indented JSON (the BENCH_*.json file
// format), newline-terminated.
func WriteReport(w io.Writer, rep *BenchReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
