// Package plan is the inverse-query capacity planner: where every other
// layer answers "what does this configuration require?", plan answers the
// paper's headline question — *what hardware do I need to reach desired
// SOTA?* A Spec names an accuracy target (§3 learning curves invert it
// into data and model size), optional time and dollar budgets, and a
// search space of (accelerator × worker count × per-worker subbatch ×
// parallelism strategy). The planner composes learning curve → data/model
// size → per-step compute (§4–§5 characterization) → allreduce or
// overlap-scheduled step time (§6) into end-to-end time-to-train, memory
// feasibility, dollar cost, and energy per candidate, then returns the
// deterministic Pareto frontier over {time, devices, cost}.
//
// Infeasible candidates (OOM, below minimum subbatch, over budget) are
// annotated, never dropped: the "why not" of a plan is part of the answer.
// Candidate characterization reuses the internal/sweep worker pool and its
// compiled core.Sessions, so a thousand-config search costs a handful of
// characterizations plus cheap per-candidate arithmetic; a brute-force
// reference implementation is kept in tests for equivalence.
package plan

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"catamount/internal/api"
	"catamount/internal/core"
	"catamount/internal/costmodel"
	"catamount/internal/hw"
	"catamount/internal/models"
	"catamount/internal/obs"
	"catamount/internal/parallel"
	"catamount/internal/scaling"
	"catamount/internal/sweep"
)

// stagePlanEval times the per-search candidate-composition loop (the cheap
// arithmetic after the sweep grid characterizes the search space).
var stagePlanEval = obs.Stage("plan_evaluate")

// stagePlanRun times a whole plan search — sweep grid plus composition —
// and roots the plan subtree inside a request or CLI trace.
var stagePlanRun = obs.Stage("plan_run")

// Strategy names one §6 parallelization scheme the planner searches over.
type Strategy string

// The searched strategies. All are synchronous-SGD data parallelism; they
// differ in how gradient communication is scheduled and where optimizer
// state lives.
const (
	// StrategyAllReduce is plain sync SGD: compute, then one monolithic
	// ring allreduce of the gradients (§6.2.1). Every worker holds the
	// full model state.
	StrategyAllReduce Strategy = "allreduce"
	// StrategyOverlap buckets the gradients and starts each bucket's ring
	// allreduce as backprop produces it, hiding communication behind the
	// remaining backward compute (§6.2.3). Full state per worker.
	StrategyOverlap Strategy = "overlap"
	// StrategySharded shards the persistent state (weights + optimizer)
	// across workers in the spirit of the paper's embedding sharding
	// (§6.2.2): per-worker memory drops to activations + state/workers,
	// at the same ring-collective volume (reduce-scatter + allgather),
	// serially scheduled.
	StrategySharded Strategy = "sharded"
)

// AllStrategies lists every searched strategy in canonical order.
func AllStrategies() []Strategy {
	return []Strategy{StrategyAllReduce, StrategyOverlap, StrategySharded}
}

// ParseStrategy resolves a strategy name.
func ParseStrategy(name string) (Strategy, error) {
	switch Strategy(strings.ToLower(strings.TrimSpace(name))) {
	case StrategyAllReduce:
		return StrategyAllReduce, nil
	case StrategyOverlap:
		return StrategyOverlap, nil
	case StrategySharded:
		return StrategySharded, nil
	}
	return "", fmt.Errorf("plan: unknown strategy %q (allreduce, overlap, sharded)", name)
}

// Spec describes one inverse query: the target and the search space. It
// is an alias of the versioned wire type in internal/api — the canonical
// JSON schema of POST /v1/plan, the plan half of POST /v1/jobs, and the
// flag schema of cmd/plan.
type Spec = api.PlanSpec

// Target is the resolved inverse query: the §3 learning-curve inversion of
// the requested accuracy into data and model size.
type Target struct {
	Domain     models.Domain `json:"domain"`
	Name       string        `json:"name"`
	Metric     string        `json:"metric"`
	TargetErr  float64       `json:"target_err"`
	SampleUnit string        `json:"sample_unit"`
	// DataSamples is the training-set size (in SampleUnit units) the
	// learning curve demands; TrainSamples converts it to training
	// sequences for step accounting.
	DataSamples  float64 `json:"data_samples"`
	TrainSamples float64 `json:"train_samples"`
	// Params is the model size the growth law demands.
	Params float64 `json:"params"`
	// DataScale / ModelScale are the growth multiples over current SOTA.
	DataScale  float64 `json:"data_scale"`
	ModelScale float64 `json:"model_scale"`
}

// ResolveTarget inverts a domain's learning curve at the requested error
// (0 = the Table 1 desired SOTA) into the data and model sizes the §3
// scaling laws demand.
func ResolveTarget(d models.Domain, targetErr float64) (Target, error) {
	spec, err := scaling.SpecFor(d)
	if err != nil {
		return Target{}, err
	}
	if targetErr == 0 {
		targetErr = spec.DesiredSOTA
	}
	if math.IsNaN(targetErr) || math.IsInf(targetErr, 0) || targetErr <= 0 {
		return Target{}, fmt.Errorf("plan: target error must be positive and finite, got %v", targetErr)
	}
	if targetErr < spec.IrreducibleError {
		return Target{}, fmt.Errorf("plan: target error %g %s below the irreducible error %g for %s",
			targetErr, spec.Metric, spec.IrreducibleError, spec.Name)
	}
	data, err := spec.Curve.DataForError(targetErr)
	if err != nil {
		return Target{}, err
	}
	curve := scaling.NormalizedModelCurve(spec.BetaP, spec.CurrentDataSamples, spec.CurrentParams)
	params := curve.Params(data)
	return Target{
		Domain:       d,
		Name:         spec.Name,
		Metric:       spec.Metric,
		TargetErr:    targetErr,
		SampleUnit:   spec.SampleUnit,
		DataSamples:  data,
		TrainSamples: data / spec.TokensPerSample,
		Params:       params,
		DataScale:    data / spec.CurrentDataSamples,
		ModelScale:   params / spec.CurrentParams,
	}, nil
}

// Plan is one evaluated candidate: a concrete cluster configuration with
// its end-to-end outcome. Infeasible plans carry their reasons and stay in
// the result.
type Plan struct {
	Accelerator string   `json:"accelerator"`
	Strategy    Strategy `json:"strategy"`
	Workers     int      `json:"workers"`
	Subbatch    float64  `json:"subbatch"`
	GlobalBatch float64  `json:"global_batch"`

	// ComputeSeconds is the per-worker Roofline step time; CommSeconds the
	// exposed (un-hidden) communication per step; StepSeconds their
	// schedule-dependent sum.
	ComputeSeconds float64 `json:"compute_seconds"`
	CommSeconds    float64 `json:"comm_seconds"`
	StepSeconds    float64 `json:"step_seconds"`
	// Steps and TrainHours are the end-to-end totals for the target
	// dataset; Devices the cluster size.
	Steps      float64 `json:"steps"`
	TrainHours float64 `json:"train_hours"`
	Devices    int     `json:"devices"`
	// CostUSD is Devices × TrainHours × the device's hourly price (0 when
	// the device is unpriced); EnergyKWh the TDP-based energy estimate.
	CostUSD   float64 `json:"cost_usd,omitempty"`
	EnergyKWh float64 `json:"energy_kwh,omitempty"`
	// Utilization is achieved algorithmic-FLOP utilization including
	// communication stalls; MemPerDeviceGB the per-device residency under
	// the plan's strategy.
	Utilization    float64 `json:"utilization"`
	MemPerDeviceGB float64 `json:"mem_per_device_gb"`

	// Feasible is true when Infeasible is empty; Infeasible lists every
	// violated constraint (OOM, below min subbatch, over budget, or a
	// characterization error).
	Feasible   bool     `json:"feasible"`
	Infeasible []string `json:"infeasible,omitempty"`
	// OnFrontier marks membership in the Pareto frontier.
	OnFrontier bool `json:"on_frontier"`
}

// Result is one full search: the resolved target, every candidate in
// deterministic order, and the Pareto frontier.
type Result struct {
	Target Target `json:"target"`
	// CostModel is the canonical name of the step-time backend every
	// candidate was priced with.
	CostModel string `json:"costmodel"`
	// Objectives names the Pareto dimensions: always train_hours and
	// devices, plus cost_usd when every searched device is priced.
	Objectives []string `json:"objectives"`
	Candidates int      `json:"candidates"`
	// Frontier is the Pareto set, sorted by train hours, then devices,
	// then cost (then identity fields for full determinism).
	Frontier []Plan `json:"frontier"`
	// Plans is every candidate in search order (accelerator-major, then
	// subbatch, then workers, then strategy), infeasible ones annotated.
	Plans []Plan `json:"plans"`
}

// Planner is a validated search bound to a session source. Create with
// New; Run may be called any number of times.
type Planner struct {
	src        sweep.SessionSource
	target     Target
	accs       []hw.Accelerator
	workers    []int
	subbatches []float64
	strategies []Strategy

	model       costmodel.Model
	epochs      float64
	budgetHours float64
	budgetUSD   float64
	minSubbatch float64
	buckets     int
	pool        int
	priced      bool
}

// New validates a spec against the domain registry and accelerator catalog
// and resolves the target and search grid. Every error out of New is a
// spec problem (the server maps them to 400).
func New(src sweep.SessionSource, spec Spec) (*Planner, error) {
	d, err := parseDomain(spec.Domain)
	if err != nil {
		return nil, err
	}
	target, err := ResolveTarget(d, spec.TargetErr)
	if err != nil {
		return nil, err
	}
	p := &Planner{src: src, target: target}

	for _, name := range spec.Accelerators {
		acc, err := hw.Lookup(name)
		if err != nil {
			return nil, err
		}
		p.accs = append(p.accs, acc)
	}
	for _, acc := range spec.Custom {
		if acc.Name == "" {
			return nil, fmt.Errorf("plan: custom accelerator missing \"name\"")
		}
		if err := acc.Validate(); err != nil {
			return nil, err
		}
		p.accs = append(p.accs, acc)
	}
	if len(p.accs) == 0 {
		p.accs = hw.Catalog()
	}
	p.priced = true
	for _, acc := range p.accs {
		if !acc.Priced() {
			p.priced = false
		}
	}

	if len(spec.WorkerCounts) == 0 {
		for w := 1; w <= 16384; w *= 2 {
			p.workers = append(p.workers, w)
		}
	}
	for _, w := range spec.WorkerCounts {
		if w < 1 {
			return nil, fmt.Errorf("plan: worker counts must be >= 1, got %d", w)
		}
		p.workers = append(p.workers, w)
	}

	if len(spec.Subbatches) == 0 {
		for b := 8.0; b <= 512; b *= 2 {
			p.subbatches = append(p.subbatches, b)
		}
	}
	for _, b := range spec.Subbatches {
		if !(b > 0) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("plan: subbatches must be positive finite, got %v", b)
		}
		p.subbatches = append(p.subbatches, b)
	}

	if len(spec.Strategies) == 0 {
		p.strategies = AllStrategies()
	}
	for _, name := range spec.Strategies {
		st, err := ParseStrategy(name)
		if err != nil {
			return nil, err
		}
		p.strategies = append(p.strategies, st)
	}

	cm, err := costmodel.Parse(spec.CostModel)
	if err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	p.model = cm

	p.epochs = spec.Epochs
	if p.epochs == 0 {
		p.epochs = 1
	}
	if !(p.epochs > 0) || math.IsInf(p.epochs, 0) {
		return nil, fmt.Errorf("plan: epochs must be positive finite, got %v", spec.Epochs)
	}
	for _, c := range []struct {
		field string
		v     float64
	}{{"budget_hours", spec.BudgetHours}, {"budget_usd", spec.BudgetUSD}, {"min_subbatch", spec.MinSubbatch}} {
		if c.v < 0 || math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return nil, fmt.Errorf("plan: %s must be non-negative finite, got %v", c.field, c.v)
		}
	}
	p.budgetHours = spec.BudgetHours
	p.budgetUSD = spec.BudgetUSD
	p.minSubbatch = spec.MinSubbatch
	if p.minSubbatch == 0 {
		p.minSubbatch = 1
	}
	p.buckets = spec.OverlapBuckets
	if p.buckets == 0 {
		p.buckets = 16
	}
	if p.buckets < 1 {
		return nil, fmt.Errorf("plan: overlap_buckets must be >= 1, got %d", spec.OverlapBuckets)
	}
	p.pool = spec.Workers
	return p, nil
}

// Target returns the resolved inverse query.
func (p *Planner) Target() Target { return p.target }

// CostModel returns the search's resolved step-time backend.
func (p *Planner) CostModel() costmodel.Model { return p.model }

// Candidates returns the search-space size: the number of Plans a Run
// yields.
func (p *Planner) Candidates() int {
	return len(p.accs) * len(p.subbatches) * len(p.workers) * len(p.strategies)
}

// Objectives names the active Pareto dimensions.
func (p *Planner) Objectives() []string {
	if p.priced {
		return []string{"train_hours", "devices", "cost_usd"}
	}
	return []string{"train_hours", "devices"}
}

// Key is a canonical fingerprint of the search: equal keys mean equal
// results, so memo layers (Engine.Plan, the server cache) can share
// entries across spellings. The cost-model backend enters by canonical
// name, so alias spellings ("perop", "per-op-roofline") share an entry.
// The evaluation pool size is deliberately excluded — it affects
// wall-clock, never the result.
func (p *Planner) Key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s|%g|%g|%g|%g|%g|%d|cm:%s", p.target.Domain, p.target.TargetErr,
		p.epochs, p.budgetHours, p.budgetUSD, p.minSubbatch, p.buckets, p.model.Name())
	sb.WriteString("|accs:")
	for _, acc := range p.accs {
		fmt.Fprintf(&sb, "%q/%g/%g/%g/%g/%g/%g/%g/%g/%g;", acc.Name, acc.PeakFLOPS,
			acc.CacheBytes, acc.MemBandwidth, acc.MemCapacity, acc.InterconnectBW,
			acc.AchievableCompute, acc.AchievableMemBW, acc.CostPerHourUSD, acc.TDPWatts)
	}
	fmt.Fprintf(&sb, "|w:%v|b:%v|s:%v", p.workers, p.subbatches, p.strategies)
	return sb.String()
}

// evalConfig bundles the per-search constants Evaluate composes each
// candidate against.
type evalConfig struct {
	target      Target
	epochs      float64
	minSubbatch float64
	buckets     int
	budgetHours float64
	budgetUSD   float64
}

func (p *Planner) config() evalConfig {
	return evalConfig{
		target:      p.target,
		epochs:      p.epochs,
		minSubbatch: p.minSubbatch,
		buckets:     p.buckets,
		budgetHours: p.budgetHours,
		budgetUSD:   p.budgetUSD,
	}
}

// Run evaluates the search. Characterizations fan out through the
// internal/sweep worker pool (one per unique subbatch, shared across
// every accelerator); the remaining per-candidate composition is cheap
// arithmetic. The context cancels the underlying sweep.
func (p *Planner) Run(ctx context.Context) (*Result, error) {
	rsp := obs.StartSpan(ctx, "plan_run", stagePlanRun)
	ctx = rsp.Attach(ctx)
	defer rsp.End()
	na, nb := len(p.accs), len(p.subbatches)

	// One sweep grid characterizes every (subbatch, accelerator) cell of
	// the search at the target model size: the size solve runs once, each
	// subbatch characterizes once, and sweep workers parallelize it all.
	grid := make([]sweep.Point, nb*na)
	runner, err := sweep.New(p.src, sweep.Spec{
		Domains:    []string{string(p.target.Domain)},
		Params:     []float64{p.target.Params},
		Subbatches: p.subbatches,
		Custom:     p.accs,
		CostModel:  p.model.Name(),
		Workers:    p.pool,
	})
	if err != nil {
		return nil, err
	}
	if err := runner.Run(ctx, func(pt sweep.Point) error {
		grid[pt.Seq] = pt
		return nil
	}); err != nil {
		return nil, err
	}

	cfg := p.config()
	esp := obs.StartSpan(ctx, "plan_evaluate", stagePlanEval)
	plans := make([]Plan, 0, p.Candidates())
	for ai, acc := range p.accs {
		for bi, b := range p.subbatches {
			pt := grid[bi*na+ai]
			for _, w := range p.workers {
				for _, st := range p.strategies {
					plans = append(plans, evaluate(cfg, acc, w, b, st,
						pt.Requirements, pt.StepSeconds, pt.Error))
				}
			}
		}
	}
	markFrontier(plans, p.priced)
	esp.End()
	return &Result{
		Target:     p.target,
		CostModel:  p.model.Name(),
		Objectives: p.Objectives(),
		Candidates: len(plans),
		Frontier:   sortedFrontier(plans),
		Plans:      plans,
	}, nil
}

// evaluate composes one candidate from its characterization: the cost-
// model backend's compute time (priced on the candidate's accelerator by
// the sweep grid), strategy-scheduled communication, end-to-end totals,
// and feasibility annotations. It is shared (via the exported Evaluate)
// with the brute-force reference so equivalence is exact, not approximate.
func evaluate(cfg evalConfig, acc hw.Accelerator, workers int, subbatch float64,
	strategy Strategy, req *core.Requirements, computeSeconds float64, reqErr string) Plan {

	pl := Plan{
		Accelerator: acc.Name,
		Strategy:    strategy,
		Workers:     workers,
		Subbatch:    subbatch,
		GlobalBatch: subbatch * float64(workers),
		Devices:     workers,
	}
	if reqErr != "" || req == nil {
		if reqErr == "" {
			reqErr = "characterization missing"
		}
		pl.Infeasible = append(pl.Infeasible, "characterize: "+reqErr)
		return pl
	}

	compute := computeSeconds
	link := parallel.Interconnect{
		BandwidthBytes: acc.InterconnectBW,
		LatencySec:     parallel.DefaultInterconnect().LatencySec,
	}
	gradBytes := 4 * req.Params
	step := compute
	switch strategy {
	case StrategyOverlap:
		total := req.FwdFLOPs + req.BwdFLOPs
		fwdFrac := 1.0 / 3
		if total > 0 {
			fwdFrac = req.FwdFLOPs / total
		}
		ov, err := parallel.SimulateOverlap(parallel.OverlapConfig{
			ForwardTime:  compute * fwdFrac,
			BackwardTime: compute * (1 - fwdFrac),
			GradBytes:    gradBytes,
			Buckets:      cfg.buckets,
			Workers:      workers,
			Link:         link,
			Reduce:       parallel.RingAllReduceTime,
		})
		if err != nil {
			pl.Infeasible = append(pl.Infeasible, "overlap: "+err.Error())
			return pl
		}
		step = ov.StepTime
	default: // allreduce, sharded: serial ring collective after backprop
		step = compute + parallel.RingAllReduceTime(gradBytes, workers, link)
	}
	pl.ComputeSeconds = compute
	pl.StepSeconds = step
	pl.CommSeconds = step - compute
	pl.Utilization = acc.Utilization(req.FLOPsPerStep, step)

	mem := req.FootprintBytes
	if strategy == StrategySharded {
		mem = (req.FootprintBytes - req.PersistentBytes) + req.PersistentBytes/float64(workers)
	}
	pl.MemPerDeviceGB = mem / 1e9

	pl.Steps = cfg.target.TrainSamples * cfg.epochs / pl.GlobalBatch
	pl.TrainHours = pl.Steps * step / 3600
	if acc.Priced() {
		pl.CostUSD = pl.TrainHours * float64(workers) * acc.CostPerHourUSD
	}
	pl.EnergyKWh = pl.TrainHours * float64(workers) * acc.TDPWatts / 1000

	if subbatch < cfg.minSubbatch {
		pl.Infeasible = append(pl.Infeasible,
			fmt.Sprintf("subbatch %g below minimum %g", subbatch, cfg.minSubbatch))
	}
	if mem > acc.MemCapacity {
		pl.Infeasible = append(pl.Infeasible,
			fmt.Sprintf("needs %.1f GB per device, %s has %.1f GB", mem/1e9, acc.Name, acc.MemCapacity/1e9))
	}
	if cfg.budgetHours > 0 && pl.TrainHours > cfg.budgetHours {
		pl.Infeasible = append(pl.Infeasible,
			fmt.Sprintf("%.1f train hours over the %.1f hour budget", pl.TrainHours, cfg.budgetHours))
	}
	if cfg.budgetUSD > 0 && acc.Priced() && pl.CostUSD > cfg.budgetUSD {
		pl.Infeasible = append(pl.Infeasible,
			fmt.Sprintf("$%.0f over the $%.0f budget", pl.CostUSD, cfg.budgetUSD))
	}
	pl.Feasible = len(pl.Infeasible) == 0
	return pl
}

// Evaluate composes one candidate exactly as Run does — exported so the
// brute-force reference (tests) and what-if callers share the arithmetic.
// req is the candidate subbatch's characterization (nil, with reqErr set,
// for failed cells) and computeSeconds its step time under the spec's
// cost-model backend on acc. The cfg knobs mirror Spec's defaults when
// zero.
func Evaluate(target Target, acc hw.Accelerator, workers int, subbatch float64,
	strategy Strategy, req *core.Requirements, computeSeconds float64, reqErr string,
	spec Spec) Plan {

	cfg := evalConfig{
		target:      target,
		epochs:      spec.Epochs,
		minSubbatch: spec.MinSubbatch,
		buckets:     spec.OverlapBuckets,
		budgetHours: spec.BudgetHours,
		budgetUSD:   spec.BudgetUSD,
	}
	if cfg.epochs == 0 {
		cfg.epochs = 1
	}
	if cfg.minSubbatch == 0 {
		cfg.minSubbatch = 1
	}
	if cfg.buckets == 0 {
		cfg.buckets = 16
	}
	return evaluate(cfg, acc, workers, subbatch, strategy, req, computeSeconds, reqErr)
}

// ---------------------------------------------------------------------------
// Pareto frontier

// dominates reports strict Pareto dominance of a over b on {train hours,
// devices[, cost]}: no worse everywhere, better somewhere.
func dominates(a, b Plan, priced bool) bool {
	if a.TrainHours > b.TrainHours || a.Devices > b.Devices {
		return false
	}
	if priced && a.CostUSD > b.CostUSD {
		return false
	}
	return a.TrainHours < b.TrainHours || a.Devices < b.Devices ||
		(priced && a.CostUSD < b.CostUSD)
}

// markFrontier sets OnFrontier on every feasible, non-dominated plan.
func markFrontier(plans []Plan, priced bool) {
	for i := range plans {
		if !plans[i].Feasible {
			continue
		}
		dominated := false
		for j := range plans {
			if i != j && plans[j].Feasible && dominates(plans[j], plans[i], priced) {
				dominated = true
				break
			}
		}
		plans[i].OnFrontier = !dominated
	}
}

// sortedFrontier copies the frontier members in outcome order: fastest
// first, ties broken by devices, cost, then identity fields so the order
// is fully deterministic.
func sortedFrontier(plans []Plan) []Plan {
	var out []Plan
	for _, p := range plans {
		if p.OnFrontier {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.TrainHours != b.TrainHours {
			return a.TrainHours < b.TrainHours
		}
		if a.Devices != b.Devices {
			return a.Devices < b.Devices
		}
		if a.CostUSD != b.CostUSD {
			return a.CostUSD < b.CostUSD
		}
		if a.Accelerator != b.Accelerator {
			return a.Accelerator < b.Accelerator
		}
		if a.Strategy != b.Strategy {
			return a.Strategy < b.Strategy
		}
		if a.Subbatch != b.Subbatch {
			return a.Subbatch < b.Subbatch
		}
		return a.Workers < b.Workers
	})
	return out
}

func parseDomain(name string) (models.Domain, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if key == "" {
		return "", fmt.Errorf("plan: spec needs a domain")
	}
	for _, d := range models.AllDomains {
		if string(d) == key {
			return d, nil
		}
	}
	known := make([]string, 0, len(models.AllDomains))
	for _, d := range models.AllDomains {
		known = append(known, string(d))
	}
	return "", fmt.Errorf("plan: unknown domain %q (one of: %s)", name, strings.Join(known, ", "))
}
