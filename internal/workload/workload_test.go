package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTextGenValidation(t *testing.T) {
	if _, err := NewTextGen(1, 1.2, 0); err == nil {
		t.Fatal("expected vocab error")
	}
	if _, err := NewTextGen(100, 0.9, 0); err == nil {
		t.Fatal("expected s error")
	}
}

func TestTextGenZipfShape(t *testing.T) {
	g, err := NewTextGen(1000, 1.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	ids := g.Sample(200000)
	counts := make([]int, 1000)
	for _, id := range ids {
		if id < 0 || int(id) >= 1000 {
			t.Fatalf("id %d out of range", id)
		}
		counts[id]++
	}
	// Zipf: token 0 strictly most frequent, head dominates tail.
	if counts[0] <= counts[10] {
		t.Fatalf("head not dominant: c0=%d c10=%d", counts[0], counts[10])
	}
	var head, tail int
	for i := 0; i < 10; i++ {
		head += counts[i]
	}
	for i := 500; i < 1000; i++ {
		tail += counts[i]
	}
	if head <= tail {
		t.Fatalf("top-10 (%d) should outweigh bottom-500 (%d)", head, tail)
	}
}

func TestTextGenDeterministic(t *testing.T) {
	g1, _ := NewTextGen(100, 1.2, 42)
	g2, _ := NewTextGen(100, 1.2, 42)
	a, b := g1.Sample(100), g2.Sample(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestNextTokenPairAligned(t *testing.T) {
	g, _ := NewTextGen(100, 1.2, 3)
	ids, labels := g.NextTokenPair(50)
	if len(ids) != 50 || len(labels) != 50 {
		t.Fatalf("lengths %d, %d", len(ids), len(labels))
	}
	for i := 0; i < 49; i++ {
		if labels[i] != ids[i+1] {
			t.Fatalf("labels not shifted at %d", i)
		}
	}
}

func TestLengthDistBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := SentenceLengths()
	for i := 0; i < 10000; i++ {
		n := d.Sample(rng)
		if n < d.Min || n > d.Max {
			t.Fatalf("length %d outside [%d, %d]", n, d.Min, d.Max)
		}
	}
}

func TestLengthDistMedianNearLogMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := UtteranceLengths()
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(rng))
	}
	mean := sum / n
	// Log-normal mean = exp(µ + σ²/2) ≈ 319 for utterances.
	want := math.Exp(d.LogMean + d.LogSigma*d.LogSigma/2)
	if math.Abs(mean-want)/want > 0.1 {
		t.Fatalf("mean = %v, want ~%v", mean, want)
	}
}

func TestMakeBatchAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := MakeBatch(SentenceLengths(), 64, rng)
	if len(b.Lengths) != 64 {
		t.Fatalf("lengths = %d", len(b.Lengths))
	}
	if b.PaddedTokens != b.MaxLen*64 {
		t.Fatal("padded token accounting wrong")
	}
	if b.RealTokens > b.PaddedTokens {
		t.Fatal("real tokens exceed padded tokens")
	}
	w := b.PaddingWaste()
	if w < 0 || w >= 1 {
		t.Fatalf("waste = %v", w)
	}
}

func TestPropPaddingWasteGrowsWithBatch(t *testing.T) {
	// Bigger batches pad to a longer max: expected waste is non-decreasing
	// in batch size (checked on expectation over many draws).
	d := SentenceLengths()
	waste := func(batch int, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		var sum float64
		for i := 0; i < 200; i++ {
			sum += MakeBatch(d, batch, rng).PaddingWaste()
		}
		return sum / 200
	}
	f := func(seed int64) bool {
		return waste(4, seed) <= waste(64, seed)+0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestProfileStepsMethodology(t *testing.T) {
	// Per-step cost proportional to unroll length: the profile's mean must
	// sit between the distribution min and max costs, with nonzero spread
	// (the paper's reason for averaging over 100-500 steps).
	st, err := ProfileSteps(SentenceLengths(), 32, 300, 5, func(unroll int) float64 {
		return float64(unroll) * 1e9
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Steps != 300 {
		t.Fatalf("steps = %d", st.Steps)
	}
	if st.Min >= st.Max {
		t.Fatal("no step-to-step variability")
	}
	if st.Mean < st.Min || st.Mean > st.Max {
		t.Fatal("mean outside [min, max]")
	}
	if st.Std <= 0 {
		t.Fatal("zero std")
	}
}

func TestProfileStepsErrors(t *testing.T) {
	if _, err := ProfileSteps(SentenceLengths(), 0, 10, 1, func(int) float64 { return 1 }); err == nil {
		t.Fatal("expected batch error")
	}
	if _, err := ProfileSteps(SentenceLengths(), 1, 0, 1, func(int) float64 { return 1 }); err == nil {
		t.Fatal("expected steps error")
	}
}

func TestAudioFramesShapeAndDeterminism(t *testing.T) {
	a := AudioFrames(300, 40, 9)
	if len(a) != 300*40 {
		t.Fatalf("len = %d", len(a))
	}
	b := AudioFrames(300, 40, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
	}
	var nonzero int
	for _, v := range a {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < len(a)/2 {
		t.Fatal("audio mostly zero")
	}
}

func TestImageBatchRange(t *testing.T) {
	img := ImageBatch(2, 8, 3, 4)
	if len(img) != 2*8*8*3 {
		t.Fatalf("len = %d", len(img))
	}
	for _, v := range img {
		if v < 0 || v >= 1 {
			t.Fatalf("pixel %v outside [0,1)", v)
		}
	}
}

func TestDatasetSpecBytes(t *testing.T) {
	d := DatasetSpec{Samples: 77e9, BytesPerSample: 5}
	if d.Bytes() != 385e9 {
		t.Fatalf("bytes = %v", d.Bytes())
	}
}
