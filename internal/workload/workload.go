// Package workload generates the synthetic training data that stands in for
// the paper's proprietary corpora (1B-word text, multi-terabyte speech,
// ImageNet-scale images). Only dataset sizes and per-step sequence-length
// variability enter the paper's analysis (§4.1 profiles 100–500 random steps
// and averages, because recurrent models unroll to the longest sample in
// each batch), so Zipf text, character streams, synthetic filterbank frames,
// and random images exercise the identical code paths.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// TextGen samples token ids from a Zipf distribution — the standard
// heavy-tailed model of natural-language token frequencies.
type TextGen struct {
	// Vocab is the vocabulary size.
	Vocab int

	rng  *rand.Rand
	zipf *rand.Zipf
}

// NewTextGen creates a Zipf(s) sampler over a vocabulary. s must be > 1;
// 1.2 approximates English word frequencies.
func NewTextGen(vocab int, s float64, seed int64) (*TextGen, error) {
	if vocab < 2 {
		return nil, fmt.Errorf("workload: vocab %d too small", vocab)
	}
	if s <= 1 {
		return nil, fmt.Errorf("workload: zipf s must exceed 1, got %v", s)
	}
	rng := rand.New(rand.NewSource(seed))
	return &TextGen{
		Vocab: vocab,
		rng:   rng,
		zipf:  rand.NewZipf(rng, s, 1, uint64(vocab-1)),
	}, nil
}

// Sample draws n token ids.
func (g *TextGen) Sample(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(g.zipf.Uint64())
	}
	return out
}

// NextTokenPair draws a sequence and its next-token labels (the LM training
// target): labels[i] is the token following ids[i].
func (g *TextGen) NextTokenPair(n int) (ids, labels []int32) {
	seq := g.Sample(n + 1)
	return seq[:n], seq[1:]
}

// LengthDist is a log-normal sequence-length distribution clipped to
// [Min, Max] — utterance and sentence lengths are classically log-normal.
type LengthDist struct {
	// LogMean and LogSigma parameterize ln(length).
	LogMean, LogSigma float64
	// Min and Max clip the support.
	Min, Max int
}

// SentenceLengths approximates NMT sentence lengths (~25 word pieces).
func SentenceLengths() LengthDist {
	return LengthDist{LogMean: math.Log(25), LogSigma: 0.4, Min: 4, Max: 100}
}

// UtteranceLengths approximates speech utterances (~300 frames).
func UtteranceLengths() LengthDist {
	return LengthDist{LogMean: math.Log(300), LogSigma: 0.35, Min: 50, Max: 1200}
}

// Sample draws one length.
func (d LengthDist) Sample(rng *rand.Rand) int {
	v := math.Exp(rng.NormFloat64()*d.LogSigma + d.LogMean)
	n := int(v + 0.5)
	if n < d.Min {
		n = d.Min
	}
	if n > d.Max {
		n = d.Max
	}
	return n
}

// Batch is one padded training batch: recurrent models unroll to the longest
// sample, so padding inflates per-step compute (§4.1).
type Batch struct {
	// Lengths are the raw sample lengths.
	Lengths []int
	// MaxLen is the unroll length for this step.
	MaxLen int
	// RealTokens and PaddedTokens count useful vs allocated tokens.
	RealTokens, PaddedTokens int
}

// MakeBatch samples a batch of the given size.
func MakeBatch(d LengthDist, batch int, rng *rand.Rand) Batch {
	b := Batch{Lengths: make([]int, batch)}
	for i := range b.Lengths {
		n := d.Sample(rng)
		b.Lengths[i] = n
		b.RealTokens += n
		if n > b.MaxLen {
			b.MaxLen = n
		}
	}
	b.PaddedTokens = b.MaxLen * batch
	return b
}

// PaddingWaste is the fraction of allocated tokens that are padding.
func (b Batch) PaddingWaste() float64 {
	if b.PaddedTokens == 0 {
		return 0
	}
	return 1 - float64(b.RealTokens)/float64(b.PaddedTokens)
}

// StepStats summarizes a per-step quantity over many profiled steps.
type StepStats struct {
	Mean, Std, Min, Max float64
	Steps               int
}

// ProfileSteps reproduces the paper's profiling methodology: sample `steps`
// random batches, evaluate a per-step cost that depends on the batch unroll
// length, and report the distribution. costAt receives the step's unroll
// length (MaxLen).
func ProfileSteps(d LengthDist, batch, steps int, seed int64,
	costAt func(unroll int) float64) (StepStats, error) {

	if steps < 1 || batch < 1 {
		return StepStats{}, fmt.Errorf("workload: need positive steps and batch")
	}
	rng := rand.New(rand.NewSource(seed))
	var sum, sumSq float64
	st := StepStats{Min: math.Inf(1), Max: math.Inf(-1), Steps: steps}
	for i := 0; i < steps; i++ {
		b := MakeBatch(d, batch, rng)
		c := costAt(b.MaxLen)
		sum += c
		sumSq += c * c
		if c < st.Min {
			st.Min = c
		}
		if c > st.Max {
			st.Max = c
		}
	}
	st.Mean = sum / float64(steps)
	st.Std = math.Sqrt(math.Max(0, sumSq/float64(steps)-st.Mean*st.Mean))
	return st, nil
}

// AudioFrames synthesizes filterbank-like features: smoothed noise with a
// slowly varying envelope, enough to exercise the speech input path.
func AudioFrames(frames, featDim int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, frames*featDim)
	prev := make([]float64, featDim)
	for t := 0; t < frames; t++ {
		env := 0.5 + 0.5*math.Sin(2*math.Pi*float64(t)/37)
		for f := 0; f < featDim; f++ {
			prev[f] = 0.8*prev[f] + 0.2*rng.NormFloat64()
			out[t*featDim+f] = float32(env * prev[f])
		}
	}
	return out
}

// ImageBatch synthesizes a batch of images in [0,1) NHWC layout.
func ImageBatch(n, hw, c int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n*hw*hw*c)
	for i := range out {
		out[i] = rng.Float32()
	}
	return out
}

// DatasetSpec sizes a synthetic dataset in both samples and bytes, used by
// the epoch accounting in examples.
type DatasetSpec struct {
	// Samples is the dataset size in the domain's sample unit.
	Samples float64
	// BytesPerSample converts to storage size.
	BytesPerSample float64
}

// Bytes returns the dataset's storage footprint.
func (d DatasetSpec) Bytes() float64 { return d.Samples * d.BytesPerSample }
