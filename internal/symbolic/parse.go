package symbolic

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse converts the canonical textual form back into an expression. It
// accepts everything String produces (and ordinary arithmetic beyond it):
// numbers (including scientific notation), symbols, + - * / ^, parentheses,
// and the function calls max(...), min(...), ceil(x), floor(x), log2(x),
// sqrt(x). Serialized graphs (package graphio) round-trip through this.
func Parse(src string) (Expr, error) {
	p := &parser{src: src}
	p.next()
	e, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("symbolic: unexpected %q at offset %d", p.tok.text, p.tok.pos)
	}
	return e, nil
}

// MustParse is Parse that panics on malformed input; for literals in tests
// and examples.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokNum
	tokIdent
	tokOp     // + - * / ^
	tokLParen // (
	tokRParen // )
	tokComma  // ,
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type parser struct {
	src string
	off int
	tok token
	err error
}

func (p *parser) next() {
	for p.off < len(p.src) && unicode.IsSpace(rune(p.src[p.off])) {
		p.off++
	}
	start := p.off
	if p.off >= len(p.src) {
		p.tok = token{kind: tokEOF, pos: start}
		return
	}
	c := p.src[p.off]
	switch {
	case c == '(':
		p.off++
		p.tok = token{kind: tokLParen, text: "(", pos: start}
	case c == ')':
		p.off++
		p.tok = token{kind: tokRParen, text: ")", pos: start}
	case c == ',':
		p.off++
		p.tok = token{kind: tokComma, text: ",", pos: start}
	case strings.ContainsRune("+-*/^", rune(c)):
		p.off++
		p.tok = token{kind: tokOp, text: string(c), pos: start}
	case c >= '0' && c <= '9' || c == '.':
		p.off++
		for p.off < len(p.src) {
			c := p.src[p.off]
			if c >= '0' && c <= '9' || c == '.' {
				p.off++
				continue
			}
			// Scientific notation: 1e+09, 2.5E-3.
			if (c == 'e' || c == 'E') && p.off+1 < len(p.src) {
				nc := p.src[p.off+1]
				if nc >= '0' && nc <= '9' {
					p.off += 2
					continue
				}
				if (nc == '+' || nc == '-') && p.off+2 < len(p.src) &&
					p.src[p.off+2] >= '0' && p.src[p.off+2] <= '9' {
					p.off += 3
					continue
				}
			}
			break
		}
		p.tok = token{kind: tokNum, text: p.src[start:p.off], pos: start}
	case unicode.IsLetter(rune(c)) || c == '_':
		p.off++
		for p.off < len(p.src) {
			r := rune(p.src[p.off])
			if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
				p.off++
				continue
			}
			break
		}
		p.tok = token{kind: tokIdent, text: p.src[start:p.off], pos: start}
	default:
		p.tok = token{kind: tokEOF, pos: start}
		p.err = fmt.Errorf("symbolic: invalid character %q at offset %d", c, start)
	}
}

// binding powers: + - < * / < unary minus < ^ (right associative).
func infixPower(op string) (int, int, bool) {
	switch op {
	case "+", "-":
		return 1, 2, true
	case "*", "/":
		return 3, 4, true
	case "^":
		return 8, 7, true // right associative
	}
	return 0, 0, false
}

func (p *parser) parseExpr(minBP int) (Expr, error) {
	if p.err != nil {
		return nil, p.err
	}
	lhs, err := p.parsePrefix()
	if err != nil {
		return nil, err
	}
	for {
		if p.err != nil {
			return nil, p.err
		}
		if p.tok.kind != tokOp {
			return lhs, nil
		}
		lbp, rbp, ok := infixPower(p.tok.text)
		if !ok || lbp < minBP {
			return lhs, nil
		}
		op := p.tok.text
		p.next()
		rhs, err := p.parseExpr(rbp)
		if err != nil {
			return nil, err
		}
		switch op {
		case "+":
			lhs = Add(lhs, rhs)
		case "-":
			lhs = Sub(lhs, rhs)
		case "*":
			lhs = Mul(lhs, rhs)
		case "/":
			lhs = Div(lhs, rhs)
		case "^":
			lhs = Pow(lhs, rhs)
		}
	}
}

func (p *parser) parsePrefix() (Expr, error) {
	if p.err != nil {
		return nil, p.err
	}
	switch p.tok.kind {
	case tokNum:
		v, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, fmt.Errorf("symbolic: bad number %q at offset %d", p.tok.text, p.tok.pos)
		}
		p.next()
		return Const(v), nil

	case tokIdent:
		name := p.tok.text
		p.next()
		if p.tok.kind != tokLParen {
			return Symbol(name), nil
		}
		// Function call.
		p.next()
		var args []Expr
		if p.tok.kind != tokRParen {
			for {
				a, err := p.parseExpr(0)
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.tok.kind != tokComma {
					break
				}
				p.next()
			}
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("symbolic: missing ) at offset %d", p.tok.pos)
		}
		p.next()
		return applyFunc(name, args)

	case tokOp:
		switch p.tok.text {
		case "-":
			p.next()
			e, err := p.parseExpr(5) // binds tighter than * but looser than ^
			if err != nil {
				return nil, err
			}
			return Mul(Const(-1), e), nil
		case "+":
			p.next()
			return p.parseExpr(5)
		}
		return nil, fmt.Errorf("symbolic: unexpected operator %q at offset %d", p.tok.text, p.tok.pos)

	case tokLParen:
		p.next()
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("symbolic: missing ) at offset %d", p.tok.pos)
		}
		p.next()
		return e, nil
	}
	return nil, fmt.Errorf("symbolic: unexpected %q at offset %d", p.tok.text, p.tok.pos)
}

func applyFunc(name string, args []Expr) (Expr, error) {
	switch name {
	case "max":
		if len(args) < 1 {
			return nil, fmt.Errorf("symbolic: max needs arguments")
		}
		return Max(args...), nil
	case "min":
		if len(args) < 1 {
			return nil, fmt.Errorf("symbolic: min needs arguments")
		}
		return Min(args...), nil
	case "ceil", "floor", "log2", "sqrt":
		if len(args) != 1 {
			return nil, fmt.Errorf("symbolic: %s needs exactly one argument", name)
		}
		switch name {
		case "ceil":
			return Ceil(args[0]), nil
		case "floor":
			return Floor(args[0]), nil
		case "log2":
			return Log2(args[0]), nil
		default:
			return Sqrt(args[0]), nil
		}
	}
	return nil, fmt.Errorf("symbolic: unknown function %q", name)
}
