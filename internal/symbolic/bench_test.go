package symbolic

import "testing"

func BenchmarkAddCollection(b *testing.B) {
	// Collecting many like terms is the hot path when summing per-node
	// costs over large graphs.
	terms := make([]Expr, 0, 1000)
	h := S("h")
	bsym := S("b")
	for i := 0; i < 1000; i++ {
		terms = append(terms, Mul(C(float64(i%7+1)), bsym, Pow(h, C(float64(i%3)))))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Add(terms...)
	}
}

func BenchmarkEvalPolynomial(b *testing.B) {
	e := MustParse("160079 + 2.88e+07*b + 320032*h + 1.920856e+07*b*h + 7680*b*h^2 + 64*h^2")
	env := Env{"h": 5903.5, "b": 128}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Eval(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeEval and BenchmarkCompiledEval compare the two evaluation
// strategies on the same word-LM-shaped cost polynomial. The compiled form
// must be allocation-free per call.
func BenchmarkTreeEval(b *testing.B) {
	e := MustParse("160079 + 2.88e+07*b + 320032*h + 1.920856e+07*b*h + 7680*b*h^2 + 64*h^2")
	env := Env{"h": 5903.5, "b": 128}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Eval(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompiledEval(b *testing.B) {
	e := MustParse("160079 + 2.88e+07*b + 320032*h + 1.920856e+07*b*h + 7680*b*h^2 + 64*h^2")
	st := SymTabFor(e)
	p := Compile(e, st)
	slots := st.NewSlots()
	if err := st.Bind(slots, Env{"h": 5903.5, "b": 128}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Eval(slots)
	}
}

func BenchmarkSubs(b *testing.B) {
	e := MustParse("16*h^2 + 80008*h + 40000")
	bind := map[string]Expr{"h": MustParse("2*g + 5")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Subs(bind)
	}
}

func BenchmarkParse(b *testing.B) {
	src := "b*p^0.5*(3.65*p^0.5 + 64*b)^(-1) + max(1, ceil(p/4096))"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}
