package symbolic

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseNumbers(t *testing.T) {
	cases := map[string]float64{
		"42":       42,
		"3.5":      3.5,
		"1e3":      1000,
		"1e+09":    1e9,
		"2.5E-3":   0.0025,
		"0.5":      0.5,
		"-7":       -7,
		"- 7":      -7,
		"+(3)":     3,
		"-(2 + 3)": -5,
	}
	for src, want := range cases {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		got, err := e.Eval(nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Parse(%q) = %v, want %v", src, got, want)
		}
	}
}

func TestParseArithmetic(t *testing.T) {
	cases := map[string]float64{
		"2 + 3*4":        14,
		"(2 + 3)*4":      20,
		"2^10":           1024,
		"2^3^2":          512, // right associative
		"10 - 4 - 3":     3,   // left associative
		"12/4/3":         1,
		"2*3 + 4*5":      26,
		"-2^2":           -4, // -(2^2), standard precedence
		"max(3, 7)":      7,
		"min(3, 7, 1)":   1,
		"ceil(9/4)":      3,
		"floor(9/4)":     2,
		"log2(64)":       6,
		"sqrt(49)":       7,
		"max(2*3, 5)":    6,
		"ceil(sqrt(10))": 4,
	}
	for src, want := range cases {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		got, err := e.Eval(nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Parse(%q) = %v, want %v", src, got, want)
		}
	}
}

func TestParseSymbols(t *testing.T) {
	e, err := Parse("16*h^2 + 80008*h + 40000")
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Eval(Env{"h": 10})
	if err != nil {
		t.Fatal(err)
	}
	if got != 16*100+80008*10+40000 {
		t.Fatalf("got %v", got)
	}
	// Canonical equality with the constructed form.
	want := Add(Mul(C(16), Pow(S("h"), C(2))), Mul(C(80008), S("h")), C(40000))
	if !Equal(e, want) {
		t.Fatalf("parsed %v, want %v", e, want)
	}
}

func TestParseUnderscoreIdent(t *testing.T) {
	e, err := Parse("hidden_dim * n_layers2")
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.Eval(Env{"hidden_dim": 4, "n_layers2": 3})
	if err != nil {
		t.Fatal(err)
	}
	if v != 12 {
		t.Fatalf("got %v", v)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"2 +",
		"(2 + 3",
		"2 + 3)",
		"foo(1)",
		"max()",
		"ceil(1, 2)",
		"sqrt()",
		"2 $ 3",
		"1..2",
		"* 3",
	} {
		if _, err := Parse(src); err == nil {
			t.Fatalf("Parse(%q) should fail", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("((")
}

func TestParseDivisionAsNegativePower(t *testing.T) {
	e := MustParse("x/y")
	v, err := e.Eval(Env{"x": 10, "y": 4})
	if err != nil {
		t.Fatal(err)
	}
	if v != 2.5 {
		t.Fatalf("got %v", v)
	}
}

// TestPropParseRoundTrip: parsing the canonical rendering reproduces the
// expression exactly — the property that makes graph serialization safe.
func TestPropParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randExpr(r, 4)
		parsed, err := Parse(e.String())
		if err != nil {
			t.Logf("render %q failed to parse: %v", e.String(), err)
			return false
		}
		return Equal(e, parsed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPropParseRoundTripWithFractionalPowers covers sqrt-style exponents,
// which render as x^0.5.
func TestPropParseRoundTripWithFractionalPowers(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := Mul(Sqrt(randExpr(r, 3)), randExpr(r, 2))
		// Sqrt of a generator-produced negative constant folds to a NaN
		// literal, which is outside the serializable domain (model cost
		// formulas are positive counts) and can never round-trip: NaN
		// renders as a bare word, and NaN != NaN regardless.
		if strings.Contains(e.String(), "NaN") {
			return true
		}
		parsed, err := Parse(e.String())
		if err != nil {
			return false
		}
		return Equal(e, parsed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseModelFormulas(t *testing.T) {
	// Real formulas produced by the model builders must round-trip.
	for _, src := range []string{
		"40000 + 80008*h + 16*h^2",
		"160079 + 2.88e+07*b + 320032*h + 1.920856e+07*b*h + 7680*b*h^2 + 64*h^2",
		"b*p^0.5*(3.65*p^0.5 + 64*b)^(-1)",
	} {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		re, err := Parse(e.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", e.String(), err)
		}
		if !Equal(e, re) {
			t.Fatalf("round trip changed %q -> %q", e.String(), re.String())
		}
	}
}
