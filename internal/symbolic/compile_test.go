package symbolic

import (
	"testing"
)

func TestCompileMatchesTreeEval(t *testing.T) {
	exprs := []string{
		"42",
		"h",
		"h + b",
		"2*h*b + 3*h - b",
		"16*h^2 + 80008*h + 40000",
		"160079 + 2.88e+07*b + 320032*h + 1.920856e+07*b*h + 7680*b*h^2 + 64*h^2",
		"h^0.5",
		"h^(-1)",
		"h^3*b^2",
		"b*h^0.5*(3.65*h^0.5 + 64*b)^(-1)",
		"max(h, b, 12)",
		"min(h, 2*b)",
		"ceil(h/128)*floor(b/2)",
		"log2(h)*b",
		"max(1, ceil(h/4096)) + min(h, b)^2",
		"(h + b)^(b/h)",
	}
	envs := []Env{
		{"h": 1, "b": 1},
		{"h": 512, "b": 128},
		{"h": 5903.5, "b": 32},
		{"h": 0.25, "b": 7},
		{"h": 1e6, "b": 3},
	}
	for _, src := range exprs {
		e := MustParse(src)
		st := SymTabFor(e)
		p := Compile(e, st)
		slots := st.NewSlots()
		for _, env := range envs {
			if err := st.Bind(slots, env); err != nil {
				t.Fatalf("%s: bind: %v", src, err)
			}
			want, err := e.Eval(env)
			if err != nil {
				t.Fatalf("%s: tree eval: %v", src, err)
			}
			got := p.Eval(slots)
			if !almostEqual(got, want) {
				t.Errorf("%s at %v: compiled %v, tree %v", src, env, got, want)
			}
		}
	}
}

func TestCompileAllSharesSymTab(t *testing.T) {
	a := MustParse("h^2 + b")
	b := MustParse("b*q + h")
	st := NewSymTab()
	progs := CompileAll([]Expr{a, b}, st)
	if st.Len() != 3 {
		t.Fatalf("symtab has %d symbols, want 3", st.Len())
	}
	slots := st.NewSlots()
	if err := st.Bind(slots, Env{"h": 3, "b": 5, "q": 7}); err != nil {
		t.Fatal(err)
	}
	if got := progs[0].Eval(slots); got != 14 {
		t.Fatalf("h^2+b = %v, want 14", got)
	}
	if got := progs[1].Eval(slots); got != 38 {
		t.Fatalf("b*q+h = %v, want 38", got)
	}
}

func TestSymTabBindErrors(t *testing.T) {
	st := NewSymTab("h", "b")
	if err := st.Bind(st.NewSlots(), Env{"h": 1}); err == nil {
		t.Fatal("expected unbound-symbol error")
	}
	if err := st.Bind(make([]float64, 1), Env{"h": 1, "b": 2}); err == nil {
		t.Fatal("expected short-buffer error")
	}
	// Extra env entries are ignored.
	if err := st.Bind(st.NewSlots(), Env{"h": 1, "b": 2, "z": 3}); err != nil {
		t.Fatal(err)
	}
}

func TestSymTabInternStable(t *testing.T) {
	st := NewSymTab("b", "h")
	if i := st.Intern("b"); i != 0 {
		t.Fatalf("re-intern moved slot: %d", i)
	}
	if i := st.Intern("q"); i != 2 {
		t.Fatalf("new symbol slot %d, want 2", i)
	}
	if i, ok := st.Slot("h"); !ok || i != 1 {
		t.Fatalf("Slot(h) = %d, %v", i, ok)
	}
	if got := st.Names(); len(got) != 3 || got[0] != "b" || got[2] != "q" {
		t.Fatalf("names = %v", got)
	}
}

func TestCompileDeepExpressionUsesHeapStack(t *testing.T) {
	// Nest powers past the inline stack bound to exercise the fallback.
	e := S("h")
	for i := 0; i < maxInlineStack+8; i++ {
		e = Pow(S("h"), Add(e, C(0)))
	}
	st := SymTabFor(e)
	p := Compile(e, st)
	if p.Depth() <= maxInlineStack {
		t.Skipf("expression did not exceed inline stack (depth %d)", p.Depth())
	}
	slots := st.NewSlots()
	if err := st.Bind(slots, Env{"h": 1}); err != nil {
		t.Fatal(err)
	}
	if got := p.Eval(slots); got != 1 {
		t.Fatalf("1^... = %v", got)
	}
}

func TestProgramDisassembly(t *testing.T) {
	e := MustParse("2*h + max(b, 3)")
	p := Compile(e, NewSymTab("h", "b"))
	dis := p.String()
	for _, want := range []string{"const 2", "load 0", "mul", "load 1", "max", "add"} {
		if !contains(dis, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, dis)
		}
	}
	if p.Len() == 0 || p.Expr() == nil {
		t.Fatal("empty program metadata")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
