package symbolic

import (
	"fmt"
	"math"
)

// This file adds batched structure-of-arrays evaluation: one compiled
// Program run over a vector of slot environments in a single pass. The
// instruction loop executes once per instruction for all rows, so the
// per-instruction decode/dispatch cost is amortized across the batch and
// the inner loops are tight float64 slices the compiler can keep in
// registers.
//
// Bit-for-bit contract: for every row i, EvalBatch produces exactly the
// float64 that Eval produces for the same slot binding. Each row runs the
// identical instruction sequence with identical scalar arithmetic (the
// opPowC fast paths — reciprocal, square root, squaring, cubing — are
// replicated per element), only interleaved across rows, so no
// re-association or fusing ever changes a result. The equivalence is
// enforced across every compiled domain program by the property tests in
// batch_domains_test.go and FuzzEvalBatch.

// Batch is a structure-of-arrays matrix of slot bindings: rows hold
// evaluation points, columns hold symbols, stored column-major so an
// opLoad touches one contiguous run. Build one with SymTab.NewBatch, fill
// columns via Col/Set/Fill, then evaluate any number of programs compiled
// against the same table.
//
// A Batch is a plain scratch buffer: not safe for concurrent mutation, but
// safe to read from concurrent EvalBatch calls once filled.
type Batch struct {
	rows  int
	slots int
	data  []float64 // column-major: data[slot*rows + row]
}

// NewBatch allocates a zeroed batch with one column per interned symbol.
// The batch is sized for the table's current symbol count; intern every
// symbol (compile every program) before sizing batches.
func (t *SymTab) NewBatch(rows int) *Batch {
	b := &Batch{slots: len(t.names)}
	b.Resize(rows)
	return b
}

// Rows returns the number of evaluation points in the batch.
func (b *Batch) Rows() int { return b.rows }

// Slots returns the number of symbol columns.
func (b *Batch) Slots() int { return b.slots }

// Resize sets the row count, reusing the backing array when it is large
// enough. Existing values are not preserved.
func (b *Batch) Resize(rows int) {
	if rows < 0 {
		panic("symbolic: negative batch size")
	}
	b.rows = rows
	need := b.slots * rows
	if cap(b.data) < need {
		b.data = make([]float64, need)
	}
	b.data = b.data[:need]
}

// Col returns the writable column for one slot index: element i is row i's
// value for that symbol.
func (b *Batch) Col(slot int) []float64 {
	return b.data[slot*b.rows : (slot+1)*b.rows]
}

// Set writes one (row, slot) value.
func (b *Batch) Set(row, slot int, v float64) {
	b.data[slot*b.rows+row] = v
}

// Fill broadcasts one value down a slot's column — the common case of a
// symbol held constant across the batch.
func (b *Batch) Fill(slot int, v float64) {
	col := b.Col(slot)
	for i := range col {
		col[i] = v
	}
}

// BindRow writes env values into one row, like SymTab.Bind for a single
// slot buffer. Every interned symbol must be bound.
func (t *SymTab) BindRow(b *Batch, row int, env Env) error {
	if b.slots < len(t.names) {
		return fmt.Errorf("symbolic: batch has %d columns, table needs %d", b.slots, len(t.names))
	}
	for i, name := range t.names {
		v, ok := env[name]
		if !ok {
			return fmt.Errorf("symbolic: unbound symbol %q", name)
		}
		b.Set(row, i, v)
	}
	return nil
}

// BatchScratch is the reusable operand stack for batched evaluation: one
// per evaluating goroutine, grown as needed and reused across any number
// of programs and batch shapes, so steady-state batched evaluation
// allocates nothing.
type BatchScratch struct {
	stack []float64
}

// grow returns a stack slab of at least n elements, reusing the previous
// allocation when possible.
func (s *BatchScratch) grow(n int) []float64 {
	if cap(s.stack) < n {
		s.stack = make([]float64, n)
	}
	s.stack = s.stack[:n]
	return s.stack
}

// EvalBatch runs the program once per batch row in one structure-of-arrays
// pass, writing row i's result to dst[i]. dst is grown as needed and
// returned. Results are bit-for-bit identical to calling Eval per row.
// For tight loops, use EvalBatchInto with a reused BatchScratch.
func (p *Program) EvalBatch(b *Batch, dst []float64) []float64 {
	var s BatchScratch
	return p.EvalBatchInto(b, dst, &s)
}

// EvalBatchInto is EvalBatch with a caller-owned operand-stack scratch, so
// sweeps evaluating many programs reuse one slab.
func (p *Program) EvalBatchInto(b *Batch, dst []float64, s *BatchScratch) []float64 {
	rows := b.rows
	if cap(dst) < rows {
		dst = make([]float64, rows)
	}
	dst = dst[:rows]
	if rows == 0 {
		return dst
	}
	stack := s.grow(p.depth * rows)
	sp := 0
	for _, in := range p.code {
		switch in.op {
		case opConst:
			top := stack[sp*rows : (sp+1)*rows]
			v := in.val
			for i := range top {
				top[i] = v
			}
			sp++
		case opLoad:
			lo := int(in.arg) * rows
			copy(stack[sp*rows:(sp+1)*rows], b.data[lo:lo+rows])
			sp++
		case opAdd:
			sp--
			a, c := stack[(sp-1)*rows:sp*rows], stack[sp*rows:(sp+1)*rows]
			for i := range a {
				a[i] += c[i]
			}
		case opMul:
			sp--
			a, c := stack[(sp-1)*rows:sp*rows], stack[sp*rows:(sp+1)*rows]
			for i := range a {
				a[i] *= c[i]
			}
		case opPow:
			sp--
			a, c := stack[(sp-1)*rows:sp*rows], stack[sp*rows:(sp+1)*rows]
			for i := range a {
				a[i] = math.Pow(a[i], c[i])
			}
		case opPowC:
			top := stack[(sp-1)*rows : sp*rows]
			// The constant-exponent fast paths mirror the scalar run loop
			// exactly so batched results stay bit-identical.
			switch in.val {
			case -1:
				for i := range top {
					top[i] = 1 / top[i]
				}
			case 0.5:
				for i := range top {
					top[i] = math.Sqrt(top[i])
				}
			case 2:
				for i := range top {
					v := top[i]
					top[i] = v * v
				}
			case 3:
				for i := range top {
					v := top[i]
					top[i] = v * v * v
				}
			default:
				e := in.val
				for i := range top {
					top[i] = math.Pow(top[i], e)
				}
			}
		case opMax:
			sp--
			a, c := stack[(sp-1)*rows:sp*rows], stack[sp*rows:(sp+1)*rows]
			for i := range a {
				if c[i] > a[i] {
					a[i] = c[i]
				}
			}
		case opMin:
			sp--
			a, c := stack[(sp-1)*rows:sp*rows], stack[sp*rows:(sp+1)*rows]
			for i := range a {
				if c[i] < a[i] {
					a[i] = c[i]
				}
			}
		case opCeil:
			top := stack[(sp-1)*rows : sp*rows]
			for i := range top {
				top[i] = math.Ceil(top[i])
			}
		case opFloor:
			top := stack[(sp-1)*rows : sp*rows]
			for i := range top {
				top[i] = math.Floor(top[i])
			}
		case opLog2:
			top := stack[(sp-1)*rows : sp*rows]
			for i := range top {
				top[i] = math.Log2(top[i])
			}
		}
	}
	copy(dst, stack[:rows])
	return dst
}

// EvalAllBatch is CompileAll's evaluation companion: it runs every program
// over one batch, writing program i's row vector into
// dst[i*rows : (i+1)*rows] (program-major). dst is grown as needed and
// returned; scratch holds the shared operand stack.
func EvalAllBatch(progs []*Program, b *Batch, dst []float64, s *BatchScratch) []float64 {
	rows := b.rows
	need := len(progs) * rows
	if cap(dst) < need {
		dst = make([]float64, need)
	}
	dst = dst[:need]
	for i, p := range progs {
		p.EvalBatchInto(b, dst[i*rows:(i+1)*rows], s)
	}
	return dst
}
