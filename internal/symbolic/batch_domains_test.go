// Batched-evaluation equivalence over the real workload: every node cost,
// tensor byte, and graph total expression of all five domain training
// graphs, evaluated at randomized and representative slot rows, must match
// the scalar path bit for bit — same summation order, same powc fast
// paths. External test package so it can import the model builders.
package symbolic_test

import (
	"math"
	"math/rand"
	"testing"

	"catamount/internal/models"
	"catamount/internal/symbolic"
)

// TestEvalBatchMatchesEvalAllDomains is the batched counterpart of
// TestCompiledEvalMatchesTreeEvalAllDomains: for each domain it compiles
// every expression of the graph and asserts EvalBatch row results are
// bit-identical to per-row Eval over a mix of sweep points and randomized
// (size, batch) rows.
func TestEvalBatchMatchesEvalAllDomains(t *testing.T) {
	if testing.Short() {
		t.Skip("builds all five domain graphs")
	}
	rng := rand.New(rand.NewSource(19))
	for _, d := range models.AllDomains {
		d := d
		t.Run(string(d), func(t *testing.T) {
			m := models.MustBuild(d)
			var exprs []symbolic.Expr
			var names []string
			for _, n := range m.Graph.Nodes() {
				exprs = append(exprs, n.FLOPs(), n.Bytes())
				names = append(names, n.Name+"/flops", n.Name+"/bytes")
			}
			for _, tn := range m.Graph.Tensors() {
				exprs = append(exprs, tn.Bytes())
				names = append(names, tn.Name+"/tensor-bytes")
			}
			exprs = append(exprs, m.ParamExpr(), m.FLOPsExpr(), m.BytesExpr())
			names = append(names, "params", "total-flops", "total-bytes")

			st := symbolic.NewSymTab()
			progs := symbolic.CompileAll(exprs, st)

			envs := domainEnvs(m)
			for i := 0; i < 8; i++ {
				size := math.Exp(rng.Float64()*8 + 2) // ~7 .. 160k
				batch := math.Ceil(rng.Float64()*512) + 1
				envs = append(envs, m.Env(size, batch))
			}

			rows := len(envs)
			batch := st.NewBatch(rows)
			for r, env := range envs {
				if err := st.BindRow(batch, r, env); err != nil {
					t.Fatalf("bind row %d: %v", r, err)
				}
			}

			slots := st.NewSlots()
			var scratch symbolic.BatchScratch
			var got []float64
			mismatches := 0
			for i, p := range progs {
				got = p.EvalBatchInto(batch, got, &scratch)
				for r, env := range envs {
					if err := st.Bind(slots, env); err != nil {
						t.Fatal(err)
					}
					want := p.Eval(slots)
					if math.Float64bits(got[r]) != math.Float64bits(want) {
						t.Errorf("%s at %v: batch %v (%#x) != scalar %v (%#x)",
							names[i], env, got[r], math.Float64bits(got[r]), want, math.Float64bits(want))
						if mismatches++; mismatches > 5 {
							t.Fatal("too many mismatches")
						}
					}
				}
			}
		})
	}
}
