package symbolic

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func evalOK(t *testing.T, e Expr, env Env) float64 {
	t.Helper()
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("Eval(%v) error: %v", e, err)
	}
	return v
}

func TestConstEval(t *testing.T) {
	if v := evalOK(t, C(3.5), nil); v != 3.5 {
		t.Fatalf("got %v, want 3.5", v)
	}
}

func TestSymbolEval(t *testing.T) {
	e := S("h")
	if v := evalOK(t, e, Env{"h": 8}); v != 8 {
		t.Fatalf("got %v, want 8", v)
	}
	if _, err := e.Eval(Env{}); err == nil {
		t.Fatal("expected unbound symbol error")
	}
}

func TestAddCollectsLikeTerms(t *testing.T) {
	x := S("x")
	e := Add(x, x, C(2), C(3))
	want := Add(Mul(C(2), x), C(5))
	if !Equal(e, want) {
		t.Fatalf("got %v, want %v", e, want)
	}
}

func TestAddCancellation(t *testing.T) {
	x := S("x")
	e := Add(x, Mul(C(-1), x))
	if !Equal(e, Zero) {
		t.Fatalf("x - x = %v, want 0", e)
	}
}

func TestAddSingleTermUnwraps(t *testing.T) {
	x := S("x")
	if !Equal(Add(x), x) {
		t.Fatalf("Add(x) != x")
	}
	if !Equal(Add(x, Zero), x) {
		t.Fatalf("Add(x, 0) != x")
	}
}

func TestMulMergesPowers(t *testing.T) {
	x := S("x")
	e := Mul(x, x, x)
	want := Pow(x, C(3))
	if !Equal(e, want) {
		t.Fatalf("got %v, want %v", e, want)
	}
}

func TestMulZeroAnnihilates(t *testing.T) {
	if !Equal(Mul(S("x"), Zero, S("y")), Zero) {
		t.Fatal("x*0*y != 0")
	}
}

func TestMulIdentity(t *testing.T) {
	x := S("x")
	if !Equal(Mul(x, One), x) {
		t.Fatal("x*1 != x")
	}
}

func TestPowRules(t *testing.T) {
	x := S("x")
	if !Equal(Pow(x, Zero), One) {
		t.Fatal("x^0 != 1")
	}
	if !Equal(Pow(x, One), x) {
		t.Fatal("x^1 != x")
	}
	if !Equal(Pow(Pow(x, C(2)), C(3)), Pow(x, C(6))) {
		t.Fatal("(x^2)^3 != x^6")
	}
	if !Equal(Pow(C(2), C(10)), C(1024)) {
		t.Fatal("2^10 != 1024")
	}
}

func TestPowDistributesOverMul(t *testing.T) {
	x, y := S("x"), S("y")
	e := Pow(Mul(x, y), C(2))
	want := Mul(Pow(x, C(2)), Pow(y, C(2)))
	if !Equal(e, want) {
		t.Fatalf("got %v, want %v", e, want)
	}
}

func TestSqrtTimesSqrt(t *testing.T) {
	p := S("p")
	e := Mul(Sqrt(p), Sqrt(p))
	if !Equal(e, p) {
		t.Fatalf("sqrt(p)*sqrt(p) = %v, want p", e)
	}
}

func TestDivCancel(t *testing.T) {
	x, y := S("x"), S("y")
	e := Div(Mul(x, y), x)
	if !Equal(e, y) {
		t.Fatalf("x*y/x = %v, want y", e)
	}
}

func TestSubs(t *testing.T) {
	h, v := S("h"), S("v")
	e := Add(Mul(C(8), Pow(h, C(2))), Mul(C(2), h, v))
	got := e.Subs(map[string]Expr{"v": C(10)})
	want := Add(Mul(C(8), Pow(h, C(2))), Mul(C(20), h))
	if !Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSubsWithExpr(t *testing.T) {
	x := S("x")
	e := Pow(x, C(2))
	got := e.Subs(map[string]Expr{"x": Add(S("a"), C(1))})
	// (a+1)^2 stays as a power of a sum; evaluate to check.
	v := evalOK(t, got, Env{"a": 3})
	if v != 16 {
		t.Fatalf("((a+1))^2 at a=3: got %v, want 16", v)
	}
}

func TestMaxFolding(t *testing.T) {
	if !Equal(Max(C(3), C(7)), C(7)) {
		t.Fatal("max(3,7) != 7")
	}
	x := S("x")
	if !Equal(Max(x, x), x) {
		t.Fatal("max(x,x) != x")
	}
	e := Max(x, Max(S("y"), C(2)), C(5))
	v := evalOK(t, e, Env{"x": 1, "y": 10})
	if v != 10 {
		t.Fatalf("nested max eval: got %v, want 10", v)
	}
}

func TestMinFolding(t *testing.T) {
	if !Equal(Min(C(3), C(7)), C(3)) {
		t.Fatal("min(3,7) != 3")
	}
	e := Min(S("x"), C(4))
	if v := evalOK(t, e, Env{"x": 9}); v != 4 {
		t.Fatalf("min(x,4) at x=9: got %v, want 4", v)
	}
}

func TestCeilFloorLog2(t *testing.T) {
	if !Equal(Ceil(C(2.3)), C(3)) {
		t.Fatal("ceil(2.3) != 3")
	}
	if !Equal(Floor(C(2.7)), C(2)) {
		t.Fatal("floor(2.7) != 2")
	}
	if !Equal(Log2(C(8)), C(3)) {
		t.Fatal("log2(8) != 3")
	}
	e := Ceil(Div(S("n"), C(4)))
	if v := evalOK(t, e, Env{"n": 9}); v != 3 {
		t.Fatalf("ceil(9/4): got %v, want 3", v)
	}
}

func TestSymbols(t *testing.T) {
	e := Add(Mul(S("b"), Sqrt(S("p"))), Max(S("a"), C(2)))
	got := Symbols(e)
	want := []string{"a", "b", "p"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestDegree(t *testing.T) {
	h, v := S("h"), S("v")
	e := Add(Mul(C(8), Pow(h, C(2)), S("l")), Mul(C(2), h, v))
	if d := Degree(e, "h"); d != 2 {
		t.Fatalf("degree in h: got %v, want 2", d)
	}
	if d := Degree(e, "v"); d != 1 {
		t.Fatalf("degree in v: got %v, want 1", d)
	}
	if d := Degree(e, "z"); d != 0 {
		t.Fatalf("degree in z: got %v, want 0", d)
	}
}

func TestPolyCoeff(t *testing.T) {
	x, y := S("x"), S("y")
	e := Add(Mul(C(3), Pow(x, C(2)), y), Mul(C(5), Pow(x, C(2))), Mul(C(7), x))
	got := PolyCoeff(e, "x", 2)
	want := Add(Mul(C(3), y), C(5))
	if !Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if !Equal(PolyCoeff(e, "x", 1), C(7)) {
		t.Fatalf("coeff deg1: got %v", PolyCoeff(e, "x", 1))
	}
	if !Equal(PolyCoeff(e, "x", 3), Zero) {
		t.Fatalf("coeff deg3: got %v", PolyCoeff(e, "x", 3))
	}
}

func TestStringCanonicalAndStable(t *testing.T) {
	a := Add(Mul(C(2), S("x")), S("y"), C(3))
	b := Add(C(3), S("y"), Mul(S("x"), C(2)))
	if a.String() != b.String() {
		t.Fatalf("canonical strings differ: %q vs %q", a, b)
	}
}

func TestNegativeRendering(t *testing.T) {
	e := Sub(S("x"), S("y"))
	if got := e.String(); got != "x - y" {
		t.Fatalf("got %q, want \"x - y\"", got)
	}
}

func TestMustEvalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unbound symbol")
		}
	}()
	MustEval(S("nope"), Env{})
}

func TestWordLMParameterFormula(t *testing.T) {
	// p = 8*h^2*l + 2*h*v (paper §4.2). Check symbolic construction and
	// evaluation at the paper's current-SOTA-like scale.
	h, l, v := S("h"), S("l"), S("v")
	p := Add(Mul(C(8), Pow(h, C(2)), l), Mul(C(2), h, v))
	got := evalOK(t, p, Env{"h": 2048, "l": 2, "v": 40000})
	want := 8*2048*2048*2 + 2*2048*40000.0
	if got != want {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// ---------------------------------------------------------------------------
// Property-based tests

// randExpr builds a random expression over symbols a, b, c with bounded depth.
func randExpr(r *rand.Rand, depth int) Expr {
	if depth == 0 {
		switch r.Intn(3) {
		case 0:
			return C(float64(r.Intn(9) - 4))
		default:
			return S(string(rune('a' + r.Intn(3))))
		}
	}
	switch r.Intn(6) {
	case 0:
		return Add(randExpr(r, depth-1), randExpr(r, depth-1))
	case 1:
		return Mul(randExpr(r, depth-1), randExpr(r, depth-1))
	case 2:
		return Pow(randExpr(r, depth-1), C(float64(r.Intn(3))))
	case 3:
		return Max(randExpr(r, depth-1), randExpr(r, depth-1))
	case 4:
		return Min(randExpr(r, depth-1), randExpr(r, depth-1))
	default:
		return Sub(randExpr(r, depth-1), randExpr(r, depth-1))
	}
}

func randEnv(r *rand.Rand) Env {
	return Env{
		"a": 1 + r.Float64()*4,
		"b": 1 + r.Float64()*4,
		"c": 1 + r.Float64()*4,
	}
}

func almostEqual(x, y float64) bool {
	if x == y {
		return true
	}
	diff := math.Abs(x - y)
	scale := math.Max(math.Abs(x), math.Abs(y))
	return diff <= 1e-9*math.Max(scale, 1)
}

func TestPropAddCommutes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y := randExpr(r, 3), randExpr(r, 3)
		return Equal(Add(x, y), Add(y, x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropMulCommutes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y := randExpr(r, 3), randExpr(r, 3)
		return Equal(Mul(x, y), Mul(y, x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropSimplifyPreservesValue(t *testing.T) {
	// Building (x + y) and Add(x, y) must agree numerically with direct
	// evaluation of the parts.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y := randExpr(r, 3), randExpr(r, 3)
		env := randEnv(r)
		xv, err1 := x.Eval(env)
		yv, err2 := y.Eval(env)
		if err1 != nil || err2 != nil {
			return true
		}
		sv, err := Add(x, y).Eval(env)
		if err != nil {
			return false
		}
		pv, err := Mul(x, y).Eval(env)
		if err != nil {
			return false
		}
		return almostEqual(sv, xv+yv) && almostEqual(pv, xv*yv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropSubsIdentity(t *testing.T) {
	// Substituting a symbol with itself leaves the value unchanged.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randExpr(r, 4)
		env := randEnv(r)
		before, err := e.Eval(env)
		if err != nil {
			return true
		}
		after, err := e.Subs(map[string]Expr{"a": S("a")}).Eval(env)
		if err != nil {
			return false
		}
		return almostEqual(before, after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropSubsConstMatchesEval(t *testing.T) {
	// e.Subs(a->const).Eval(env) == e.Eval(env with a=const).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randExpr(r, 4)
		env := randEnv(r)
		av := env["a"]
		sub := e.Subs(map[string]Expr{"a": C(av)})
		v1, err1 := e.Eval(env)
		v2, err2 := sub.Eval(env)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil || err1 == nil
		}
		return almostEqual(v1, v2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropCanonicalIdempotent(t *testing.T) {
	// Rebuilding an expression through Subs with an empty binding must give
	// an identical canonical form (simplification is a fixed point).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randExpr(r, 4)
		return Equal(e, e.Subs(map[string]Expr{}))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropDegreeAdditiveUnderMul(t *testing.T) {
	// deg(x^m * x^n) == m+n for polynomial powers.
	f := func(m, n uint8) bool {
		mi, ni := float64(m%5), float64(n%5)
		e := Mul(Pow(S("x"), C(mi)), Pow(S("x"), C(ni)))
		return Degree(e, "x") == mi+ni
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
