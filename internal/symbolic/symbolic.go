// Package symbolic implements a small computer-algebra system for the
// polynomial-with-functions expressions that compute-graph analysis needs.
//
// It is the Go counterpart of the sympy subset used by the Catamount artifact
// of Hestness et al. (PPoPP 2019): expressions are built from named symbols
// (tensor dimensions such as batch size or hidden width), rational constants,
// n-ary sums and products, real powers, and a few irregular functions
// (max, min, ceil, floor, log2). Every constructor returns a canonically
// simplified, immutable expression, so structural equality can be tested by
// comparing canonical string forms.
//
// All symbols are assumed to denote positive quantities (tensor dimensions),
// which licenses simplifications such as (x*y)^e == x^e * y^e.
package symbolic

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Env binds symbol names to concrete values for evaluation.
type Env map[string]float64

// Expr is an immutable symbolic expression in canonical form.
type Expr interface {
	// Eval computes the numeric value of the expression under env.
	// It returns an error if any symbol in the expression is unbound.
	Eval(env Env) (float64, error)
	// Subs returns the expression with each named symbol replaced by the
	// given expression. The result is re-simplified.
	Subs(bind map[string]Expr) Expr
	// CollectSymbols adds every symbol name appearing in the expression
	// to the set.
	CollectSymbols(set map[string]bool)
	// String renders the canonical form.
	String() string

	// key returns the canonical ordering/identity key.
	key() string
}

// Zero and One are the canonical constants 0 and 1.
var (
	Zero = Const(0)
	One  = Const(1)
)

// ---------------------------------------------------------------------------
// Constants

// Const is a numeric constant.
type Const float64

// C returns a constant expression.
func C(v float64) Expr { return Const(v) }

// Eval implements Expr.
func (c Const) Eval(Env) (float64, error) { return float64(c), nil }

// Subs implements Expr.
func (c Const) Subs(map[string]Expr) Expr { return c }

// CollectSymbols implements Expr.
func (c Const) CollectSymbols(map[string]bool) {}

func (c Const) String() string {
	return strconv.FormatFloat(float64(c), 'g', -1, 64)
}

func (c Const) key() string { return "#" + c.String() }

// ---------------------------------------------------------------------------
// Symbols

// Symbol is a named positive-valued variable, such as a tensor dimension.
type Symbol string

// S returns a symbol expression with the given name.
func S(name string) Expr { return Symbol(name) }

// Eval implements Expr.
func (s Symbol) Eval(env Env) (float64, error) {
	v, ok := env[string(s)]
	if !ok {
		return 0, fmt.Errorf("symbolic: unbound symbol %q", string(s))
	}
	return v, nil
}

// Subs implements Expr.
func (s Symbol) Subs(bind map[string]Expr) Expr {
	if e, ok := bind[string(s)]; ok {
		return e
	}
	return s
}

// CollectSymbols implements Expr.
func (s Symbol) CollectSymbols(set map[string]bool) { set[string(s)] = true }

func (s Symbol) String() string { return string(s) }

func (s Symbol) key() string { return "$" + string(s) }

// ---------------------------------------------------------------------------
// Sums

type add struct {
	terms []Expr // canonical: sorted, len >= 2, no nested adds, no zero terms
	str   string
}

// Add returns the canonical sum of the arguments. Like terms are collected:
// Add(x, x, C(2)) == Mul(C(2), x) + 2.
func Add(args ...Expr) Expr {
	type bucket struct {
		coef float64
		unit Expr // product part with coefficient 1; nil for pure constant
	}
	buckets := make(map[string]*bucket)
	order := make([]string, 0, len(args))
	var push func(e Expr)
	push = func(e Expr) {
		if a, ok := e.(add); ok {
			for _, t := range a.terms {
				push(t)
			}
			return
		}
		coef, unit := splitCoef(e)
		k := ""
		if unit != nil {
			k = unit.key()
		}
		b, ok := buckets[k]
		if !ok {
			b = &bucket{unit: unit}
			buckets[k] = b
			order = append(order, k)
		}
		b.coef += coef
	}
	for _, a := range args {
		push(a)
	}
	terms := make([]Expr, 0, len(buckets))
	for _, k := range sortedKeys(order) {
		b := buckets[k]
		if b.coef == 0 {
			continue
		}
		if b.unit == nil {
			terms = append(terms, Const(b.coef))
			continue
		}
		if b.coef == 1 {
			terms = append(terms, b.unit)
			continue
		}
		terms = append(terms, Mul(Const(b.coef), b.unit))
	}
	switch len(terms) {
	case 0:
		return Zero
	case 1:
		return terms[0]
	}
	return add{terms: terms, str: renderAdd(terms)}
}

// Sub returns a - b.
func Sub(a, b Expr) Expr { return Add(a, Mul(Const(-1), b)) }

// Eval implements Expr.
func (a add) Eval(env Env) (float64, error) {
	var sum float64
	for _, t := range a.terms {
		v, err := t.Eval(env)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum, nil
}

// Subs implements Expr.
func (a add) Subs(bind map[string]Expr) Expr {
	out := make([]Expr, len(a.terms))
	for i, t := range a.terms {
		out[i] = t.Subs(bind)
	}
	return Add(out...)
}

// CollectSymbols implements Expr.
func (a add) CollectSymbols(set map[string]bool) {
	for _, t := range a.terms {
		t.CollectSymbols(set)
	}
}

func (a add) String() string { return a.str }

func (a add) key() string { return "+" + a.str }

func renderAdd(terms []Expr) string {
	var sb strings.Builder
	for i, t := range terms {
		coef, _ := splitCoef(t)
		s := t.String()
		if i == 0 {
			sb.WriteString(s)
			continue
		}
		if coef < 0 {
			// Render "a - b" instead of "a + -1*b". When the negation
			// unwraps to a bare sum (e.g. -1*(c - d) -> c - d), it must be
			// parenthesized to survive re-parsing.
			neg := Mul(Const(-1), t)
			ns := neg.String()
			if _, ok := neg.(add); ok {
				ns = "(" + ns + ")"
			}
			sb.WriteString(" - ")
			sb.WriteString(ns)
			continue
		}
		sb.WriteString(" + ")
		sb.WriteString(s)
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Products

type mul struct {
	coef    float64 // never 0; omit-if-1 handled at render time
	factors []Expr  // canonical: sorted, no consts, no nested muls, len >= 1
	str     string
}

// Mul returns the canonical product of the arguments. Powers of identical
// bases are merged: Mul(x, x) == Pow(x, C(2)).
func Mul(args ...Expr) Expr {
	coef := 1.0
	type entry struct {
		base Expr
		exp  []Expr // summed exponents
	}
	entries := make(map[string]*entry)
	var push func(e Expr)
	push = func(e Expr) {
		switch v := e.(type) {
		case Const:
			coef *= float64(v)
		case mul:
			coef *= v.coef
			for _, f := range v.factors {
				push(f)
			}
		case pow:
			k := v.base.key()
			en, ok := entries[k]
			if !ok {
				en = &entry{base: v.base}
				entries[k] = en
			}
			en.exp = append(en.exp, v.exp)
		default:
			k := e.key()
			en, ok := entries[k]
			if !ok {
				en = &entry{base: e}
				entries[k] = en
			}
			en.exp = append(en.exp, One)
		}
	}
	for _, a := range args {
		push(a)
	}
	if coef == 0 {
		return Zero
	}
	factors := make([]Expr, 0, len(entries))
	for _, k := range sortedKeys(mapKeys(entries)) {
		en := entries[k]
		f := Pow(en.base, Add(en.exp...))
		switch fv := f.(type) {
		case Const:
			coef *= float64(fv)
		case mul:
			// Pow distributed over a product; merge its parts.
			coef *= fv.coef
			factors = append(factors, fv.factors...)
		default:
			factors = append(factors, f)
		}
	}
	sort.Slice(factors, func(i, j int) bool { return factors[i].key() < factors[j].key() })
	if len(factors) == 0 {
		return Const(coef)
	}
	if coef == 1 && len(factors) == 1 {
		return factors[0]
	}
	m := mul{coef: coef, factors: factors}
	m.str = renderMul(m)
	return m
}

// Div returns a / b, represented as a * b^-1.
func Div(a, b Expr) Expr { return Mul(a, Pow(b, Const(-1))) }

// Eval implements Expr.
func (m mul) Eval(env Env) (float64, error) {
	prod := m.coef
	for _, f := range m.factors {
		v, err := f.Eval(env)
		if err != nil {
			return 0, err
		}
		prod *= v
	}
	return prod, nil
}

// Subs implements Expr.
func (m mul) Subs(bind map[string]Expr) Expr {
	out := make([]Expr, 0, len(m.factors)+1)
	out = append(out, Const(m.coef))
	for _, f := range m.factors {
		out = append(out, f.Subs(bind))
	}
	return Mul(out...)
}

// CollectSymbols implements Expr.
func (m mul) CollectSymbols(set map[string]bool) {
	for _, f := range m.factors {
		f.CollectSymbols(set)
	}
}

func (m mul) String() string { return m.str }

func (m mul) key() string { return "*" + m.str }

func renderMul(m mul) string {
	parts := make([]string, 0, len(m.factors)+1)
	if m.coef != 1 {
		parts = append(parts, Const(m.coef).String())
	}
	for _, f := range m.factors {
		s := f.String()
		if _, ok := f.(add); ok {
			s = "(" + s + ")"
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, "*")
}

// ---------------------------------------------------------------------------
// Powers

type pow struct {
	base Expr
	exp  Expr
	str  string
}

// Pow returns base raised to exp, simplified. Because all symbols denote
// positive dimensions, (x*y)^e distributes over the factors.
func Pow(base, exp Expr) Expr {
	if ec, ok := exp.(Const); ok {
		switch float64(ec) {
		case 0:
			return One
		case 1:
			return base
		}
		if bc, ok := base.(Const); ok {
			return Const(math.Pow(float64(bc), float64(ec)))
		}
	}
	switch b := base.(type) {
	case pow:
		return Pow(b.base, Mul(b.exp, exp))
	case mul:
		parts := make([]Expr, 0, len(b.factors)+1)
		parts = append(parts, Pow(Const(b.coef), exp))
		for _, f := range b.factors {
			parts = append(parts, Pow(f, exp))
		}
		return Mul(parts...)
	case Const:
		if ec, ok := exp.(Const); ok {
			return Const(math.Pow(float64(b), float64(ec)))
		}
	}
	p := pow{base: base, exp: exp}
	p.str = renderPow(p)
	return p
}

// Sqrt returns the square root of e.
func Sqrt(e Expr) Expr { return Pow(e, Const(0.5)) }

// Eval implements Expr.
func (p pow) Eval(env Env) (float64, error) {
	b, err := p.base.Eval(env)
	if err != nil {
		return 0, err
	}
	e, err := p.exp.Eval(env)
	if err != nil {
		return 0, err
	}
	return math.Pow(b, e), nil
}

// Subs implements Expr.
func (p pow) Subs(bind map[string]Expr) Expr {
	return Pow(p.base.Subs(bind), p.exp.Subs(bind))
}

// CollectSymbols implements Expr.
func (p pow) CollectSymbols(set map[string]bool) {
	p.base.CollectSymbols(set)
	p.exp.CollectSymbols(set)
}

func (p pow) String() string { return p.str }

func (p pow) key() string { return "^" + p.str }

func renderPow(p pow) string {
	b := p.base.String()
	switch p.base.(type) {
	case add, mul:
		b = "(" + b + ")"
	}
	e := p.exp.String()
	switch p.exp.(type) {
	case add, mul, pow:
		e = "(" + e + ")"
	default:
		if c, ok := p.exp.(Const); ok && float64(c) < 0 {
			e = "(" + e + ")"
		}
	}
	return b + "^" + e
}

// ---------------------------------------------------------------------------
// Irregular functions: max, min, ceil, floor, log2

type call struct {
	fn   string
	args []Expr
	str  string
}

// Max returns the maximum of the arguments, folding constants and
// flattening nested maxima.
func Max(args ...Expr) Expr { return extremum("max", args) }

// Min returns the minimum of the arguments, folding constants and
// flattening nested minima.
func Min(args ...Expr) Expr { return extremum("min", args) }

func extremum(fn string, args []Expr) Expr {
	flat := make([]Expr, 0, len(args))
	var push func(e Expr)
	push = func(e Expr) {
		if c, ok := e.(call); ok && c.fn == fn {
			for _, a := range c.args {
				push(a)
			}
			return
		}
		flat = append(flat, e)
	}
	for _, a := range args {
		push(a)
	}
	// Deduplicate structurally identical arguments and fold constants.
	seen := make(map[string]bool)
	uniq := make([]Expr, 0, len(flat))
	haveConst := false
	var cv float64
	for _, e := range flat {
		if c, ok := e.(Const); ok {
			v := float64(c)
			if !haveConst {
				haveConst, cv = true, v
			} else if fn == "max" && v > cv {
				cv = v
			} else if fn == "min" && v < cv {
				cv = v
			}
			continue
		}
		k := e.key()
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, e)
		}
	}
	if haveConst {
		uniq = append(uniq, Const(cv))
	}
	if len(uniq) == 0 {
		return Zero
	}
	if len(uniq) == 1 {
		return uniq[0]
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i].key() < uniq[j].key() })
	c := call{fn: fn, args: uniq}
	c.str = renderCall(c)
	return c
}

// Ceil returns the ceiling of e, folding constants.
func Ceil(e Expr) Expr {
	if c, ok := e.(Const); ok {
		return Const(math.Ceil(float64(c)))
	}
	c := call{fn: "ceil", args: []Expr{e}}
	c.str = renderCall(c)
	return c
}

// Floor returns the floor of e, folding constants.
func Floor(e Expr) Expr {
	if c, ok := e.(Const); ok {
		return Const(math.Floor(float64(c)))
	}
	c := call{fn: "floor", args: []Expr{e}}
	c.str = renderCall(c)
	return c
}

// Log2 returns the base-2 logarithm of e, folding constants.
func Log2(e Expr) Expr {
	if c, ok := e.(Const); ok {
		return Const(math.Log2(float64(c)))
	}
	c := call{fn: "log2", args: []Expr{e}}
	c.str = renderCall(c)
	return c
}

// Eval implements Expr.
func (c call) Eval(env Env) (float64, error) {
	vals := make([]float64, len(c.args))
	for i, a := range c.args {
		v, err := a.Eval(env)
		if err != nil {
			return 0, err
		}
		vals[i] = v
	}
	switch c.fn {
	case "max":
		m := vals[0]
		for _, v := range vals[1:] {
			if v > m {
				m = v
			}
		}
		return m, nil
	case "min":
		m := vals[0]
		for _, v := range vals[1:] {
			if v < m {
				m = v
			}
		}
		return m, nil
	case "ceil":
		return math.Ceil(vals[0]), nil
	case "floor":
		return math.Floor(vals[0]), nil
	case "log2":
		return math.Log2(vals[0]), nil
	}
	return 0, fmt.Errorf("symbolic: unknown function %q", c.fn)
}

// Subs implements Expr.
func (c call) Subs(bind map[string]Expr) Expr {
	out := make([]Expr, len(c.args))
	for i, a := range c.args {
		out[i] = a.Subs(bind)
	}
	switch c.fn {
	case "max":
		return Max(out...)
	case "min":
		return Min(out...)
	case "ceil":
		return Ceil(out[0])
	case "floor":
		return Floor(out[0])
	case "log2":
		return Log2(out[0])
	}
	nc := call{fn: c.fn, args: out}
	nc.str = renderCall(nc)
	return nc
}

// CollectSymbols implements Expr.
func (c call) CollectSymbols(set map[string]bool) {
	for _, a := range c.args {
		a.CollectSymbols(set)
	}
}

func (c call) String() string { return c.str }

func (c call) key() string { return "@" + c.str }

func renderCall(c call) string {
	parts := make([]string, len(c.args))
	for i, a := range c.args {
		parts[i] = a.String()
	}
	return c.fn + "(" + strings.Join(parts, ", ") + ")"
}

// ---------------------------------------------------------------------------
// Helpers

// splitCoef factors e into a numeric coefficient and a unit-coefficient
// remainder. The remainder is nil when e is a pure constant.
func splitCoef(e Expr) (float64, Expr) {
	switch v := e.(type) {
	case Const:
		return float64(v), nil
	case mul:
		if v.coef == 1 {
			return 1, v
		}
		rest := make([]Expr, len(v.factors))
		copy(rest, v.factors)
		return v.coef, Mul(rest...)
	}
	return 1, e
}

func sortedKeys(keys []string) []string {
	out := make([]string, len(keys))
	copy(out, keys)
	sort.Strings(out)
	return out
}

func mapKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Equal reports whether two expressions have identical canonical forms.
func Equal(a, b Expr) bool { return a.key() == b.key() }

// Symbols returns the sorted list of symbol names appearing in e.
func Symbols(e Expr) []string {
	set := make(map[string]bool)
	e.CollectSymbols(set)
	out := mapKeys(set)
	sort.Strings(out)
	return out
}

// IsConst reports whether e is a constant, returning its value if so.
func IsConst(e Expr) (float64, bool) {
	c, ok := e.(Const)
	return float64(c), ok
}

// MustEval evaluates e and panics on unbound symbols. It is intended for
// analysis pipelines that have already validated their bindings.
func MustEval(e Expr, env Env) float64 {
	v, err := e.Eval(env)
	if err != nil {
		panic(err)
	}
	return v
}

// Degree returns the maximum exponent with which sym appears in a
// polynomial expression, or 0 when sym does not appear. Non-polynomial
// structure (functions, symbolic exponents) contributes the degree of its
// arguments.
func Degree(e Expr, sym string) float64 {
	switch v := e.(type) {
	case Const:
		return 0
	case Symbol:
		if string(v) == sym {
			return 1
		}
		return 0
	case add:
		var d float64
		for _, t := range v.terms {
			if td := Degree(t, sym); td > d {
				d = td
			}
		}
		return d
	case mul:
		var d float64
		for _, f := range v.factors {
			d += Degree(f, sym)
		}
		return d
	case pow:
		if ec, ok := v.exp.(Const); ok {
			return Degree(v.base, sym) * float64(ec)
		}
		return Degree(v.base, sym)
	case call:
		var d float64
		for _, a := range v.args {
			if ad := Degree(a, sym); ad > d {
				d = ad
			}
		}
		return d
	}
	return 0
}

// PolyCoeff returns the sum of the coefficients of every additive term of e
// whose total degree in sym is exactly deg, with sym divided out. For
// example, PolyCoeff(3*x^2*y + 5*x^2, x, 2) == 3*y + 5.
// Terms that are not pure products (e.g. max(...)) are skipped.
func PolyCoeff(e Expr, sym string, deg float64) Expr {
	terms := []Expr{e}
	if a, ok := e.(add); ok {
		terms = a.terms
	}
	var acc []Expr
	for _, t := range terms {
		d := Degree(t, sym)
		if d != deg {
			continue
		}
		acc = append(acc, Div(t, Pow(S(sym), Const(deg))))
	}
	if len(acc) == 0 {
		return Zero
	}
	return Add(acc...)
}
