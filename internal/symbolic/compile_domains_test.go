// Property-style equivalence tests for the expression compiler, run over
// every node expression of all five domain training graphs — the compiler's
// real workload. This is an external test package so it can import the
// model builders without an import cycle.
package symbolic_test

import (
	"math"
	"testing"

	"catamount/internal/models"
	"catamount/internal/symbolic"
)

// domainEnvs are representative (size, batch) points per domain, spanning
// profiling and frontier scales, including a non-integral solved size.
func domainEnvs(m *models.Model) []symbolic.Env {
	points := []struct{ size, batch float64 }{
		{16, 1},
		{512, 32},
		{1024, 128},
		{5903.5, 256},
	}
	envs := make([]symbolic.Env, 0, len(points))
	for _, p := range points {
		envs = append(envs, m.Env(p.size, p.batch))
	}
	return envs
}

func relClose(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-12*math.Max(scale, 1)
}

// TestCompiledEvalMatchesTreeEvalAllDomains compiles every node FLOPs/bytes
// expression and every tensor byte expression of each domain graph against
// one shared symbol table, and asserts Program.Eval matches the tree-walk
// Expr.Eval at several sweep points.
func TestCompiledEvalMatchesTreeEvalAllDomains(t *testing.T) {
	if testing.Short() {
		t.Skip("builds all five domain graphs")
	}
	for _, d := range models.AllDomains {
		d := d
		t.Run(string(d), func(t *testing.T) {
			m := models.MustBuild(d)
			var exprs []symbolic.Expr
			var names []string
			for _, n := range m.Graph.Nodes() {
				exprs = append(exprs, n.FLOPs(), n.Bytes())
				names = append(names, n.Name+"/flops", n.Name+"/bytes")
			}
			for _, tn := range m.Graph.Tensors() {
				exprs = append(exprs, tn.Bytes())
				names = append(names, tn.Name+"/tensor-bytes")
			}
			exprs = append(exprs, m.ParamExpr(), m.FLOPsExpr(), m.BytesExpr())
			names = append(names, "params", "total-flops", "total-bytes")

			st := symbolic.NewSymTab()
			progs := symbolic.CompileAll(exprs, st)
			slots := st.NewSlots()
			for _, env := range domainEnvs(m) {
				if err := st.Bind(slots, env); err != nil {
					t.Fatalf("bind %v: %v", env, err)
				}
				mismatches := 0
				for i, e := range exprs {
					want, err := e.Eval(env)
					if err != nil {
						t.Fatalf("%s: tree eval: %v", names[i], err)
					}
					got := progs[i].Eval(slots)
					if !relClose(got, want) {
						t.Errorf("%s at %v: compiled %v != tree %v", names[i], env, got, want)
						if mismatches++; mismatches > 5 {
							t.Fatal("too many mismatches")
						}
					}
				}
			}
		})
	}
}
