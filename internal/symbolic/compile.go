package symbolic

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// This file lowers canonical Expr trees into flat, slot-indexed postfix
// programs. A sweep then becomes "write slots, run programs": symbol lookup
// happens once at compile time (name -> slot index), and every subsequent
// evaluation is a tight loop over a []float64 with no map accesses, no
// interface dispatch, and no heap allocation.

// SymTab assigns each symbol name a dense slot index shared by every program
// compiled against it. Bind once per sweep point, then evaluate any number of
// programs against the same slot buffer.
type SymTab struct {
	slots map[string]int
	names []string
}

// NewSymTab creates a symbol table pre-populated with the given names, in
// order.
func NewSymTab(names ...string) *SymTab {
	t := &SymTab{slots: make(map[string]int, len(names))}
	for _, n := range names {
		t.Intern(n)
	}
	return t
}

// Intern returns the slot index for name, assigning the next free slot on
// first use.
func (t *SymTab) Intern(name string) int {
	if i, ok := t.slots[name]; ok {
		return i
	}
	i := len(t.names)
	t.slots[name] = i
	t.names = append(t.names, name)
	return i
}

// Slot returns the slot index for name, if interned.
func (t *SymTab) Slot(name string) (int, bool) {
	i, ok := t.slots[name]
	return i, ok
}

// Len returns the number of interned symbols.
func (t *SymTab) Len() int { return len(t.names) }

// Names returns the interned symbol names in slot order. The caller must not
// modify the returned slice.
func (t *SymTab) Names() []string { return t.names }

// NewSlots allocates a zeroed slot buffer sized for the table.
func (t *SymTab) NewSlots() []float64 { return make([]float64, len(t.names)) }

// Bind writes env values into slots. Every interned symbol must be bound;
// env entries for unknown symbols are ignored (an env may serve several
// tables).
func (t *SymTab) Bind(slots []float64, env Env) error {
	if len(slots) < len(t.names) {
		return fmt.Errorf("symbolic: slot buffer has %d slots, table needs %d", len(slots), len(t.names))
	}
	for i, name := range t.names {
		v, ok := env[name]
		if !ok {
			return fmt.Errorf("symbolic: unbound symbol %q", name)
		}
		slots[i] = v
	}
	return nil
}

// ---------------------------------------------------------------------------
// Program representation

type opcode uint8

const (
	opConst opcode = iota // push val
	opLoad                // push slots[arg]
	opAdd                 // pop b, a; push a + b
	opMul                 // pop b, a; push a * b
	opPow                 // pop exp, base; push base^exp
	opPowC                // pop base; push base^val (constant exponent)
	opMax                 // pop b, a; push max(a, b)
	opMin                 // pop b, a; push min(a, b)
	opCeil                // pop a; push ceil(a)
	opFloor               // pop a; push floor(a)
	opLog2                // pop a; push log2(a)
)

type instr struct {
	op  opcode
	arg int32
	val float64
}

// Program is a compiled expression: a postfix instruction sequence over a
// slot-indexed symbol buffer. Programs are immutable after compilation and
// safe for concurrent evaluation.
type Program struct {
	code  []instr
	depth int // maximum operand-stack depth
	src   Expr
}

// maxInlineStack bounds the operand stack that Eval keeps on the goroutine
// stack. N-ary sums and products are folded into binary ops at compile time,
// so depth grows with expression nesting, not term count; real analysis
// expressions stay far below this.
const maxInlineStack = 64

// Expr returns the expression the program was compiled from.
func (p *Program) Expr() Expr { return p.src }

// Depth returns the operand-stack depth Eval requires.
func (p *Program) Depth() int { return p.depth }

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.code) }

// String renders a readable disassembly, one instruction per line.
func (p *Program) String() string {
	var sb strings.Builder
	for i, in := range p.code {
		if i > 0 {
			sb.WriteByte('\n')
		}
		switch in.op {
		case opConst:
			fmt.Fprintf(&sb, "const %g", in.val)
		case opLoad:
			fmt.Fprintf(&sb, "load %d", in.arg)
		case opAdd:
			sb.WriteString("add")
		case opMul:
			sb.WriteString("mul")
		case opPow:
			sb.WriteString("pow")
		case opPowC:
			fmt.Fprintf(&sb, "powc %g", in.val)
		case opMax:
			sb.WriteString("max")
		case opMin:
			sb.WriteString("min")
		case opCeil:
			sb.WriteString("ceil")
		case opFloor:
			sb.WriteString("floor")
		case opLog2:
			sb.WriteString("log2")
		}
	}
	return sb.String()
}

// Eval runs the program against a slot buffer previously filled via
// SymTab.Bind (or written directly at known slot indices). It performs no
// heap allocation and is safe to call from multiple goroutines.
func (p *Program) Eval(slots []float64) float64 {
	if p.depth <= maxInlineStack {
		var buf [maxInlineStack]float64
		return p.run(slots, buf[:p.depth])
	}
	return p.run(slots, make([]float64, p.depth))
}

func (p *Program) run(slots, stack []float64) float64 {
	sp := 0
	for _, in := range p.code {
		switch in.op {
		case opConst:
			stack[sp] = in.val
			sp++
		case opLoad:
			stack[sp] = slots[in.arg]
			sp++
		case opAdd:
			sp--
			stack[sp-1] += stack[sp]
		case opMul:
			sp--
			stack[sp-1] *= stack[sp]
		case opPow:
			sp--
			stack[sp-1] = math.Pow(stack[sp-1], stack[sp])
		case opPowC:
			b := stack[sp-1]
			switch in.val {
			case -1:
				stack[sp-1] = 1 / b
			case 0.5:
				stack[sp-1] = math.Sqrt(b)
			case 2:
				stack[sp-1] = b * b
			case 3:
				stack[sp-1] = b * b * b
			default:
				stack[sp-1] = math.Pow(b, in.val)
			}
		case opMax:
			sp--
			if stack[sp] > stack[sp-1] {
				stack[sp-1] = stack[sp]
			}
		case opMin:
			sp--
			if stack[sp] < stack[sp-1] {
				stack[sp-1] = stack[sp]
			}
		case opCeil:
			stack[sp-1] = math.Ceil(stack[sp-1])
		case opFloor:
			stack[sp-1] = math.Floor(stack[sp-1])
		case opLog2:
			stack[sp-1] = math.Log2(stack[sp-1])
		}
	}
	return stack[sp-1]
}

// ---------------------------------------------------------------------------
// Compilation

// Compile lowers expr into a Program against symtab, interning any symbols
// the table has not seen. N-ary sums, products, and extrema fold into chains
// of binary ops in canonical term order, so compiled evaluation reproduces
// the tree walk's summation order. Constant-exponent powers use direct fast
// paths (reciprocal, square root, squaring), which may differ from
// math.Pow by an ulp.
func Compile(expr Expr, symtab *SymTab) *Program {
	c := compiler{symtab: symtab}
	c.emit(expr)
	return &Program{code: c.code, depth: c.maxDepth, src: expr}
}

// CompileAll compiles each expression against one shared table, so a batch
// of programs can be evaluated against a single slot buffer per sweep point.
func CompileAll(exprs []Expr, symtab *SymTab) []*Program {
	out := make([]*Program, len(exprs))
	for i, e := range exprs {
		out[i] = Compile(e, symtab)
	}
	return out
}

// SymTabFor builds a symbol table covering every symbol of the given
// expressions, in sorted order for determinism.
func SymTabFor(exprs ...Expr) *SymTab {
	set := make(map[string]bool)
	for _, e := range exprs {
		e.CollectSymbols(set)
	}
	names := mapKeys(set)
	sort.Strings(names)
	return NewSymTab(names...)
}

type compiler struct {
	symtab   *SymTab
	code     []instr
	depth    int
	maxDepth int
}

func (c *compiler) push(in instr, delta int) {
	c.code = append(c.code, in)
	c.depth += delta
	if c.depth > c.maxDepth {
		c.maxDepth = c.depth
	}
}

func (c *compiler) emit(e Expr) {
	switch v := e.(type) {
	case Const:
		c.push(instr{op: opConst, val: float64(v)}, 1)
	case Symbol:
		slot := c.symtab.Intern(string(v))
		c.push(instr{op: opLoad, arg: int32(slot)}, 1)
	case add:
		for i, t := range v.terms {
			c.emit(t)
			if i > 0 {
				c.push(instr{op: opAdd}, -1)
			}
		}
	case mul:
		first := true
		if v.coef != 1 {
			c.push(instr{op: opConst, val: v.coef}, 1)
			first = false
		}
		for _, f := range v.factors {
			c.emit(f)
			if !first {
				c.push(instr{op: opMul}, -1)
			}
			first = false
		}
	case pow:
		c.emit(v.base)
		if ec, ok := v.exp.(Const); ok {
			c.push(instr{op: opPowC, val: float64(ec)}, 0)
			return
		}
		c.emit(v.exp)
		c.push(instr{op: opPow}, -1)
	case call:
		switch v.fn {
		case "max", "min":
			op := opMax
			if v.fn == "min" {
				op = opMin
			}
			for i, a := range v.args {
				c.emit(a)
				if i > 0 {
					c.push(instr{op: op}, -1)
				}
			}
		case "ceil":
			c.emit(v.args[0])
			c.push(instr{op: opCeil}, 0)
		case "floor":
			c.emit(v.args[0])
			c.push(instr{op: opFloor}, 0)
		case "log2":
			c.emit(v.args[0])
			c.push(instr{op: opLog2}, 0)
		default:
			// Canonical constructors only build the functions above; reaching
			// this is a programming error in the symbolic package itself.
			panic(fmt.Sprintf("symbolic: cannot compile unknown function %q", v.fn))
		}
	default:
		panic(fmt.Sprintf("symbolic: cannot compile %T", e))
	}
}
