package symbolic

import (
	"math"
	"math/rand"
	"testing"
)

func TestBatchLayout(t *testing.T) {
	st := NewSymTab("x", "y")
	b := st.NewBatch(3)
	if b.Rows() != 3 || b.Slots() != 2 {
		t.Fatalf("rows=%d slots=%d", b.Rows(), b.Slots())
	}
	b.Fill(0, 7)
	b.Set(1, 1, 42)
	if got := b.Col(0); got[0] != 7 || got[1] != 7 || got[2] != 7 {
		t.Fatalf("Fill column = %v", got)
	}
	if got := b.Col(1); got[1] != 42 {
		t.Fatalf("Set column = %v", got)
	}
	if err := st.BindRow(b, 2, Env{"x": 1, "y": 2}); err != nil {
		t.Fatal(err)
	}
	if b.Col(0)[2] != 1 || b.Col(1)[2] != 2 {
		t.Fatal("BindRow wrote wrong cells")
	}
	if err := st.BindRow(b, 0, Env{"x": 1}); err == nil {
		t.Fatal("BindRow accepted an env missing a symbol")
	}

	// Resize reuses storage and keeps column addressing consistent.
	b.Resize(2)
	if b.Rows() != 2 || len(b.Col(1)) != 2 {
		t.Fatalf("after Resize: rows=%d col=%d", b.Rows(), len(b.Col(1)))
	}
}

func TestEvalBatchMatchesScalarRandomExprs(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	syms := []Expr{Symbol("x"), Symbol("y"), Symbol("z")}
	const rows = 17
	for trial := 0; trial < 200; trial++ {
		expr := batchRandExpr(rng, syms, 4)
		st := SymTabFor(expr)
		prog := Compile(expr, st)

		batch := st.NewBatch(rows)
		slots := st.NewSlots()
		want := make([]float64, rows)
		envs := make([]Env, rows)
		for r := 0; r < rows; r++ {
			env := Env{}
			for _, s := range syms {
				env[string(s.(Symbol))] = batchRandVal(rng)
			}
			envs[r] = env
			if err := st.BindRow(batch, r, env); err != nil {
				t.Fatal(err)
			}
		}
		for r := 0; r < rows; r++ {
			if err := st.Bind(slots, envs[r]); err != nil {
				t.Fatal(err)
			}
			want[r] = prog.Eval(slots)
		}
		got := prog.EvalBatch(batch, nil)
		for r := 0; r < rows; r++ {
			if math.Float64bits(got[r]) != math.Float64bits(want[r]) {
				t.Fatalf("trial %d row %d: EvalBatch %v (%#x) != Eval %v (%#x) for %s",
					trial, r, got[r], math.Float64bits(got[r]), want[r], math.Float64bits(want[r]), expr)
			}
		}
	}
}

func TestEvalAllBatchLayoutAndReuse(t *testing.T) {
	x, y := Symbol("x"), Symbol("y")
	exprs := []Expr{Add(x, y), Mul(x, y), Pow(x, Const(2))}
	st := NewSymTab()
	progs := CompileAll(exprs, st)

	const rows = 5
	b := st.NewBatch(rows)
	for r := 0; r < rows; r++ {
		if err := st.BindRow(b, r, Env{"x": float64(r + 1), "y": 10}); err != nil {
			t.Fatal(err)
		}
	}
	var scratch BatchScratch
	dst := EvalAllBatch(progs, b, nil, &scratch)
	if len(dst) != len(progs)*rows {
		t.Fatalf("dst len = %d", len(dst))
	}
	slots := st.NewSlots()
	for i, p := range progs {
		for r := 0; r < rows; r++ {
			if err := st.Bind(slots, Env{"x": float64(r + 1), "y": 10}); err != nil {
				t.Fatal(err)
			}
			if want := p.Eval(slots); dst[i*rows+r] != want {
				t.Fatalf("prog %d row %d: %v != %v", i, r, dst[i*rows+r], want)
			}
		}
	}
	// A second call must reuse both dst and the scratch slab.
	before := &dst[0]
	dst2 := EvalAllBatch(progs, b, dst, &scratch)
	if &dst2[0] != before {
		t.Fatal("EvalAllBatch reallocated a sufficient dst")
	}
}

func TestEvalBatchZeroRows(t *testing.T) {
	st := NewSymTab("x")
	p := Compile(Add(Symbol("x"), Const(1)), st)
	if got := p.EvalBatch(st.NewBatch(0), nil); len(got) != 0 {
		t.Fatalf("zero-row batch returned %v", got)
	}
}

// TestEvalBatchDeepStack exercises a program whose operand stack exceeds
// the scalar path's inline buffer, so both paths hit their grown-stack
// branches.
func TestEvalBatchDeepStack(t *testing.T) {
	x := Symbol("x")
	expr := Expr(x)
	for i := 0; i < maxInlineStack+8; i++ {
		expr = Max(Const(float64(i)), Mul(expr, Const(1)))
	}
	st := SymTabFor(expr)
	p := Compile(expr, st)
	if p.Depth() <= maxInlineStack {
		t.Skipf("depth %d does not exceed inline stack", p.Depth())
	}
	slots := st.NewSlots()
	slots[0] = 3.5
	b := st.NewBatch(4)
	b.Fill(0, 3.5)
	want := p.Eval(slots)
	for r, got := range p.EvalBatch(b, nil) {
		if got != want {
			t.Fatalf("row %d: %v != %v", r, got, want)
		}
	}
}

// batchRandExpr builds a random expression over syms with the full grammar the
// compiler supports, including constant exponents that trigger every powc
// fast path.
func batchRandExpr(rng *rand.Rand, syms []Expr, depth int) Expr {
	if depth == 0 || rng.Intn(5) == 0 {
		if rng.Intn(2) == 0 {
			return syms[rng.Intn(len(syms))]
		}
		return Const(batchRandVal(rng))
	}
	sub := func() Expr { return batchRandExpr(rng, syms, depth-1) }
	switch rng.Intn(8) {
	case 0:
		return Add(sub(), sub(), sub())
	case 1:
		return Mul(sub(), sub())
	case 2:
		exps := []float64{-1, 0.5, 2, 3, 1.37}
		return Pow(sub(), Const(exps[rng.Intn(len(exps))]))
	case 3:
		return Pow(sub(), sub())
	case 4:
		return Max(sub(), sub())
	case 5:
		return Min(sub(), sub())
	case 6:
		return Ceil(sub())
	default:
		return Log2(sub())
	}
}

func batchRandVal(rng *rand.Rand) float64 {
	// Positive, spanning many magnitudes: analysis expressions evaluate
	// sizes, batches, and byte counts.
	return math.Exp(rng.Float64()*20 - 4)
}

// FuzzEvalBatch drives the batched evaluator with fuzzer-chosen slot
// values on a fixed expression menu and requires bit-for-bit agreement
// with the scalar path.
func FuzzEvalBatch(f *testing.F) {
	x, y := Symbol("x"), Symbol("y")
	exprs := []Expr{
		Add(x, y, Const(3)),
		Mul(Const(2.5), x, y),
		Pow(x, Const(-1)), Pow(x, Const(0.5)), Pow(x, Const(2)),
		Pow(x, Const(3)), Pow(x, Const(1.7)), Pow(x, y),
		Max(x, Min(y, Const(128))),
		Ceil(Log2(Add(x, Const(1)))),
		Floor(Mul(x, Pow(y, Const(-1)))),
	}
	st := NewSymTab()
	progs := CompileAll(exprs, st)

	f.Add(1.0, 2.0, 3.0, 4.0)
	f.Add(0.0, -1.0, math.Inf(1), math.NaN())
	f.Add(1e300, 1e-300, -0.0, 65536.0)
	f.Fuzz(func(t *testing.T, x0, y0, x1, y1 float64) {
		b := st.NewBatch(2)
		slots := st.NewSlots()
		rows := [][2]float64{{x0, y0}, {x1, y1}}
		for _, p := range progs {
			got := p.EvalBatch(b, nil) // zero batch first: exercise dst reuse
			for r, vals := range rows {
				if err := st.BindRow(b, r, Env{"x": vals[0], "y": vals[1]}); err != nil {
					t.Fatal(err)
				}
			}
			got = p.EvalBatch(b, got)
			for r, vals := range rows {
				if err := st.Bind(slots, Env{"x": vals[0], "y": vals[1]}); err != nil {
					t.Fatal(err)
				}
				want := p.Eval(slots)
				if math.Float64bits(got[r]) != math.Float64bits(want) {
					t.Fatalf("%s at x=%v y=%v: batch %v != scalar %v", p.Expr(), vals[0], vals[1], got[r], want)
				}
			}
		}
	})
}
