package cache

import (
	"math"
	"testing"
	"testing/quick"

	"catamount/internal/hw"
	"catamount/internal/models"
	"catamount/internal/ops"
	"catamount/internal/symbolic"
	"catamount/internal/tensor"
)

func TestTileDim(t *testing.T) {
	tm := NewTileModel(6e6) // paper's 6 MB L2, shared by 64 resident tiles
	want := math.Sqrt(6e6 / 64 / 12)
	if got := tm.TileDim(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("tile = %v, want %v", got, want)
	}
	mono := TileModel{CacheBytes: 6e6, ElemSize: 4} // Concurrency 0 => 1
	if got := mono.TileDim(); math.Abs(got-math.Sqrt(6e6/12)) > 1e-9 {
		t.Fatalf("monolithic tile = %v", got)
	}
}

func TestSmallMatMulNoRestream(t *testing.T) {
	tm := NewTileModel(6e6)
	// 50x50x50 fits in one tile pass: factor ~1 (C counted once).
	f := tm.Restream(50, 50, 50)
	if f > 1.01 {
		t.Fatalf("restream = %v for in-cache GEMM", f)
	}
}

func TestLargeMatMulRestreams(t *testing.T) {
	tm := NewTileModel(6e6)
	// A word-LM-frontier-sized GEMM (m=128, k=2h, n=4h at h≈12000).
	f := tm.Restream(128, 24000, 48000)
	if f < 1.2 {
		t.Fatalf("restream = %v, want noticeable inflation", f)
	}
}

func TestBiggerCacheReducesTraffic(t *testing.T) {
	small := NewTileModel(6e6)
	big := NewTileModel(60e6)
	m, k, n := 4096.0, 8192.0, 8192.0
	if big.MatMulTraffic(m, k, n) >= small.MatMulTraffic(m, k, n) {
		t.Fatal("larger cache should reduce traffic")
	}
}

func TestPropTrafficAtLeastAlgorithmic(t *testing.T) {
	tm := NewTileModel(6e6)
	f := func(a, b, c uint16) bool {
		m, k, n := float64(a%4096+1), float64(b%4096+1), float64(c%4096+1)
		return tm.MatMulTraffic(m, k, n) >= tm.AlgorithmicBytes(m, k, n)*0.99
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphTrafficSimpleGEMM(t *testing.T) {
	b := ops.NewBuilder("g")
	x := b.Input("x", tensor.F32, 128, 8192)
	w := b.Param("w", 8192, 8192)
	y := b.MatMul(x, w)
	_ = y
	tm := NewTileModel(6e6)
	rep, err := GraphTraffic(b.G, nil, tm)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheAwareBytes < rep.AlgorithmicBytes {
		t.Fatal("cache-aware bytes below algorithmic")
	}
	if rep.GEMMTraffic == 0 {
		t.Fatal("GEMM not classified")
	}
	wantAlg := tm.AlgorithmicBytes(128, 8192, 8192)
	if math.Abs(rep.AlgorithmicBytes-wantAlg)/wantAlg > 1e-9 {
		t.Fatalf("alg bytes = %v, want %v", rep.AlgorithmicBytes, wantAlg)
	}
}

func TestGraphTrafficNonGEMMUnchanged(t *testing.T) {
	b := ops.NewBuilder("g")
	x := b.Input("x", tensor.F32, 1000)
	y := b.Input("y", tensor.F32, 1000)
	b.Add(x, y)
	rep, err := GraphTraffic(b.G, nil, NewTileModel(6e6))
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheAwareBytes != rep.AlgorithmicBytes {
		t.Fatal("pointwise op should not restream")
	}
	if rep.RestreamFactor != 1 {
		t.Fatalf("factor = %v", rep.RestreamFactor)
	}
}

func TestGraphTrafficUnboundSymbol(t *testing.T) {
	b := ops.NewBuilder("g")
	x := b.Input("x", tensor.F32, symbolic.S("b"), 10)
	w := b.Param("w", 10, 10)
	b.MatMul(x, w)
	if _, err := GraphTraffic(b.G, symbolic.Env{}, NewTileModel(6e6)); err == nil {
		t.Fatal("expected unbound symbol error")
	}
}

func TestWordLMCaseStudyUtilizationDrop(t *testing.T) {
	// Paper §6.1: moving from best-case Roofline to the cache-aware model
	// drops the frontier word LM from 80% to ~46% utilization. Verify the
	// direction and a material drop on a large projected word LM.
	m := models.BuildWordLM(models.CaseStudyWordLMConfig())
	size, err := m.SizeForParams(5e9) // large enough to exceed cache tiles
	if err != nil {
		t.Fatal(err)
	}
	acc := hw.TargetAccelerator()
	env := m.Env(size, 128)
	flops := symbolic.MustEval(m.FLOPsExpr(), env)
	rep, err := GraphTraffic(m.Graph, env, NewTileModel(acc.CacheBytes))
	if err != nil {
		t.Fatal(err)
	}
	best, aware := UtilizationDrop(flops, rep, acc.StepTime, acc.Utilization)
	if best < 0.7 {
		t.Fatalf("best-case utilization %.2f, want ~0.8 (compute bound)", best)
	}
	if aware >= best {
		t.Fatal("cache-aware utilization should drop")
	}
	if aware > 0.65 || aware < 0.3 {
		t.Fatalf("cache-aware utilization %.2f, paper reports ~0.46", aware)
	}
}

func TestConvGEMMClassified(t *testing.T) {
	b := ops.NewBuilder("g")
	x := b.Input("x", tensor.F32, 32, 56, 56, 256)
	w := b.Param("w", 3, 3, 256, 256)
	b.Conv2D(x, w, 1, 1)
	rep, err := GraphTraffic(b.G, nil, NewTileModel(6e6))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GEMMTraffic == 0 {
		t.Fatal("conv2d not classified as GEMM")
	}
}
