// Package cache models the memory-hierarchy effects the case study adds on
// top of algorithmic byte counts (paper §6.1): large tiled matrix multiplies
// must re-stream portions of their inputs from off-chip memory once the
// operands exceed on-chip cache, which lowers achievable utilization (the
// paper's word LM drops from 80% to 46% algorithmic-FLOP utilization).
//
// The tile selection follows the classic square-tile capacity rule (after
// Coleman & McKinley): one output tile plus one stripe of each input must
// fit in cache, giving T = sqrt(cache / (3·elemSize)).
package cache

import (
	"fmt"
	"math"

	"catamount/internal/graph"
	"catamount/internal/ops"
	"catamount/internal/symbolic"
)

// TileModel computes off-chip traffic for tiled GEMMs under a cache budget.
type TileModel struct {
	// CacheBytes is the on-chip cache capacity.
	CacheBytes float64
	// ElemSize is the operand element size in bytes.
	ElemSize float64
	// Concurrency is the number of tiles resident simultaneously: GPUs run
	// one output tile per SM, all sharing the L2, so each tile sees only
	// CacheBytes/Concurrency (~90 KB on a V100-class part — the per-SM
	// scratch size). Zero means 1 (a single monolithic tile).
	Concurrency int
}

// DefaultConcurrency approximates the number of simultaneously resident
// GEMM tiles on a V100-class accelerator.
const DefaultConcurrency = 64

// NewTileModel builds a TileModel for 4-byte elements at the default
// concurrency.
func NewTileModel(cacheBytes float64) TileModel {
	return TileModel{CacheBytes: cacheBytes, ElemSize: 4, Concurrency: DefaultConcurrency}
}

// effectiveCache is the per-tile cache budget.
func (t TileModel) effectiveCache() float64 {
	c := t.Concurrency
	if c < 1 {
		c = 1
	}
	return t.CacheBytes / float64(c)
}

// TileDim is the square tile edge fitting three tiles in the per-tile budget.
func (t TileModel) TileDim() float64 {
	return math.Sqrt(t.effectiveCache() / (3 * t.ElemSize))
}

// MatMulTraffic returns the off-chip bytes moved by a tiled
// C[m,n] = A[m,k]·B[k,n]: A is streamed once per column-tile of C, B once
// per row-tile of C, and each C tile is written once.
func (t TileModel) MatMulTraffic(m, k, n float64) float64 {
	tile := t.TileDim()
	aPasses := math.Max(1, math.Ceil(n/tile))
	bPasses := math.Max(1, math.Ceil(m/tile))
	elems := m*k*aPasses + k*n*bPasses + m*n
	return elems * t.ElemSize
}

// AlgorithmicBytes is the paper's §2.1 count for the same GEMM: inputs read
// once, output written once.
func (t TileModel) AlgorithmicBytes(m, k, n float64) float64 {
	return (m*k + k*n + m*n) * t.ElemSize
}

// Restream is the traffic inflation factor MatMulTraffic/AlgorithmicBytes
// (1.0 when the whole problem fits in one tile pass).
func (t TileModel) Restream(m, k, n float64) float64 {
	return t.MatMulTraffic(m, k, n) / t.AlgorithmicBytes(m, k, n)
}

// TrafficReport summarizes cache-aware traffic for a whole graph.
type TrafficReport struct {
	// AlgorithmicBytes is the §2.1 total.
	AlgorithmicBytes float64
	// CacheAwareBytes adds GEMM re-streaming.
	CacheAwareBytes float64
	// GEMMAlgorithmic and GEMMTraffic isolate the matrix-multiply subset.
	GEMMAlgorithmic, GEMMTraffic float64
	// RestreamFactor is CacheAwareBytes / AlgorithmicBytes.
	RestreamFactor float64
}

// GraphTraffic computes algorithmic and cache-aware byte totals for every
// node in the graph under the binding env. Matrix-multiply-like ops (matmul,
// batched matmul, convolutions and their gradients) use the tile model; all
// other ops stream their operands once.
func GraphTraffic(g *graph.Graph, env symbolic.Env, tm TileModel) (TrafficReport, error) {
	g.WarmCosts() // synchronize the per-node cost-cache fill
	var rep TrafficReport
	for _, n := range g.Nodes() {
		alg, err := n.Bytes().Eval(env)
		if err != nil {
			return rep, fmt.Errorf("cache: node %s: %w", n.Name, err)
		}
		rep.AlgorithmicBytes += alg
		dims, isGEMM, err := gemmDims(n, env)
		if err != nil {
			return rep, err
		}
		if !isGEMM {
			rep.CacheAwareBytes += alg
			continue
		}
		traffic := tm.MatMulTraffic(dims.m, dims.k, dims.n) * dims.batch
		// Never report less than the algorithmic bytes: the tile model
		// covers only the GEMM operands, while alg may include extras.
		if traffic < alg {
			traffic = alg
		}
		rep.GEMMAlgorithmic += alg
		rep.GEMMTraffic += traffic
		rep.CacheAwareBytes += traffic
	}
	if rep.AlgorithmicBytes > 0 {
		rep.RestreamFactor = rep.CacheAwareBytes / rep.AlgorithmicBytes
	}
	return rep, nil
}

type gemm struct {
	m, k, n float64
	batch   float64
}

// gemmDims extracts effective GEMM dimensions from matrix-multiply-like ops.
func gemmDims(n *graph.Node, env symbolic.Env) (gemm, bool, error) {
	eval := func(e symbolic.Expr) (float64, error) { return e.Eval(env) }
	switch op := n.Op.(type) {
	case ops.MatMul:
		out := n.Outputs[0]
		m, err := eval(out.Shape.Dim(0))
		if err != nil {
			return gemm{}, false, err
		}
		nn, err := eval(out.Shape.Dim(1))
		if err != nil {
			return gemm{}, false, err
		}
		kIdx := 1
		if op.TransA {
			kIdx = 0
		}
		k, err := eval(n.Inputs[0].Shape.Dim(kIdx))
		if err != nil {
			return gemm{}, false, err
		}
		return gemm{m: m, k: k, n: nn, batch: 1}, true, nil

	case ops.BatchedMatMul:
		out := n.Outputs[0]
		bd, err := eval(out.Shape.Dim(0))
		if err != nil {
			return gemm{}, false, err
		}
		m, err := eval(out.Shape.Dim(1))
		if err != nil {
			return gemm{}, false, err
		}
		nn, err := eval(out.Shape.Dim(2))
		if err != nil {
			return gemm{}, false, err
		}
		kIdx := 2
		if op.TransA {
			kIdx = 1
		}
		k, err := eval(n.Inputs[0].Shape.Dim(kIdx))
		if err != nil {
			return gemm{}, false, err
		}
		return gemm{m: m, k: k, n: nn, batch: bd}, true, nil

	case ops.Conv2D, ops.Conv2DGradInput, ops.Conv2DGradWeight:
		// Implicit GEMM: M = N·H'·W', K = R·S·C, N = K_out.
		var y, w *graph.Tensor
		switch n.Op.(type) {
		case ops.Conv2D:
			y, w = n.Outputs[0], n.Inputs[1]
		case ops.Conv2DGradInput:
			y, w = n.Inputs[1], n.Inputs[0]
		default: // grad weight: dims from dY and the produced dW
			y, w = n.Inputs[1], n.Outputs[0]
		}
		nb, err := eval(y.Shape.Dim(0))
		if err != nil {
			return gemm{}, false, err
		}
		hh, err := eval(y.Shape.Dim(1))
		if err != nil {
			return gemm{}, false, err
		}
		ww, err := eval(y.Shape.Dim(2))
		if err != nil {
			return gemm{}, false, err
		}
		r, err := eval(w.Shape.Dim(0))
		if err != nil {
			return gemm{}, false, err
		}
		s, err := eval(w.Shape.Dim(1))
		if err != nil {
			return gemm{}, false, err
		}
		c, err := eval(w.Shape.Dim(2))
		if err != nil {
			return gemm{}, false, err
		}
		kout, err := eval(w.Shape.Dim(3))
		if err != nil {
			return gemm{}, false, err
		}
		return gemm{m: nb * hh * ww, k: r * s * c, n: kout, batch: 1}, true, nil
	}
	return gemm{}, false, nil
}

// UtilizationDrop runs the paper's §6.1 comparison: best-case Roofline
// utilization with algorithmic bytes versus the cache-hierarchy-aware model.
// stepTime returns the roofline max(compute, bytes/bandwidth) terms.
func UtilizationDrop(flops float64, rep TrafficReport,
	stepTime func(flops, bytes float64) float64,
	utilization func(flops, seconds float64) float64) (best, cacheAware float64) {

	best = utilization(flops, stepTime(flops, rep.AlgorithmicBytes))
	cacheAware = utilization(flops, stepTime(flops, rep.CacheAwareBytes))
	return best, cacheAware
}
