package graphio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"catamount/internal/graph"
	"catamount/internal/models"
	"catamount/internal/symbolic"
)

// roundTrip saves and reloads a graph, asserting analytical equivalence.
func roundTrip(t *testing.T, g *graph.Graph, env symbolic.Env) *graph.Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, g); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(loaded.Nodes()) != len(g.Nodes()) {
		t.Fatalf("nodes: %d vs %d", len(loaded.Nodes()), len(g.Nodes()))
	}
	if len(loaded.Tensors()) != len(g.Tensors()) {
		t.Fatalf("tensors: %d vs %d", len(loaded.Tensors()), len(g.Tensors()))
	}
	if !symbolic.Equal(loaded.ParamCount(), g.ParamCount()) {
		t.Fatalf("param expr changed: %v vs %v", loaded.ParamCount(), g.ParamCount())
	}
	if !symbolic.Equal(loaded.TotalFLOPs(), g.TotalFLOPs()) {
		t.Fatal("FLOPs expr changed")
	}
	if !symbolic.Equal(loaded.TotalBytes(), g.TotalBytes()) {
		t.Fatal("bytes expr changed")
	}
	if env != nil {
		a, err := g.Footprint(env, graph.PolicyMemGreedy)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Footprint(env, graph.PolicyMemGreedy)
		if err != nil {
			t.Fatal(err)
		}
		if a.PeakBytes != b.PeakBytes {
			t.Fatalf("footprint changed: %v vs %v", a.PeakBytes, b.PeakBytes)
		}
	}
	return loaded
}

func TestRoundTripAllDomains(t *testing.T) {
	cfgs := []*models.Model{
		models.BuildWordLM(models.WordLMConfig{Layers: 2, SeqLen: 5, Vocab: 40}),
		models.BuildCharLM(models.CharLMConfig{RecurrenceDepth: 3, SeqLen: 4, Vocab: 20}),
		models.BuildNMT(models.NMTConfig{SrcLen: 3, TgtLen: 3, Vocab: 30, DecoderLayers: 1}),
		models.BuildSpeech(models.SpeechConfig{Frames: 6, FeatDim: 8, EncoderLayers: 2,
			PoolLayers: 1, TgtLen: 2, Vocab: 12, LocConvFilters: 4, LocConvWidth: 3}),
		models.BuildResNet(models.ResNetConfig{Blocks: [4]int{1, 1, 1, 1}, Classes: 10, Image: 32}),
	}
	for _, m := range cfgs {
		size := 32.0
		if m.Domain == models.ImageCl {
			size = 1
		}
		roundTrip(t, m.Graph, m.Env(size, 4))
	}
}

func TestRoundTripPreservesGroups(t *testing.T) {
	m := models.BuildWordLM(models.WordLMConfig{Layers: 1, SeqLen: 3, Vocab: 20})
	loaded := roundTrip(t, m.Graph, nil)
	want := m.Graph.Groups()
	got := loaded.Groups()
	if len(want) != len(got) {
		t.Fatalf("groups: %v vs %v", got, want)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("groups: %v vs %v", got, want)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	m := models.BuildWordLM(models.WordLMConfig{Layers: 1, SeqLen: 2, Vocab: 10})
	path := filepath.Join(t.TempDir(), "wordlm.json")
	if err := SaveFile(path, m.Graph); err != nil {
		t.Fatal(err)
	}
	g, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != m.Graph.Name {
		t.Fatalf("name %q", g.Name)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected missing-file error")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := Load(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("expected version error")
	}
}

func TestLoadRejectsUnknownOp(t *testing.T) {
	src := `{"version":1,"name":"g","tensors":[
	  {"name":"x","kind":"input","dtype":"f32","shape":["4"]},
	  {"name":"y","kind":"activation","dtype":"f32","shape":["4"]}],
	  "nodes":[{"name":"n","op":"warp-drive","inputs":["x"],"outputs":["y"]}]}`
	if _, err := Load(strings.NewReader(src)); err == nil {
		t.Fatal("expected unknown-op error")
	}
}

func TestLoadRejectsBadShapeExpr(t *testing.T) {
	src := `{"version":1,"name":"g","tensors":[
	  {"name":"x","kind":"input","dtype":"f32","shape":["(("]}],"nodes":[]}`
	if _, err := Load(strings.NewReader(src)); err == nil {
		t.Fatal("expected shape parse error")
	}
}

func TestLoadRejectsUnknownTensorRefs(t *testing.T) {
	src := `{"version":1,"name":"g","tensors":[
	  {"name":"y","kind":"activation","dtype":"f32","shape":["4"]}],
	  "nodes":[{"name":"n","op":"reshape","inputs":["ghost"],"outputs":["y"]}]}`
	if _, err := Load(strings.NewReader(src)); err == nil {
		t.Fatal("expected unknown-input error")
	}
}

func TestLoadRejectsBadKinds(t *testing.T) {
	src := `{"version":1,"name":"g","tensors":[
	  {"name":"x","kind":"mystery","dtype":"f32","shape":["4"]}],"nodes":[]}`
	if _, err := Load(strings.NewReader(src)); err == nil {
		t.Fatal("expected kind error")
	}
	src = `{"version":1,"name":"g","tensors":[
	  {"name":"x","kind":"input","dtype":"f128","shape":["4"]}],"nodes":[]}`
	if _, err := Load(strings.NewReader(src)); err == nil {
		t.Fatal("expected dtype error")
	}
}

func TestLoadRejectsMissingAttrs(t *testing.T) {
	src := `{"version":1,"name":"g","tensors":[
	  {"name":"x","kind":"input","dtype":"f32","shape":["4","4"]},
	  {"name":"w","kind":"param","dtype":"f32","shape":["4","4"]},
	  {"name":"y","kind":"activation","dtype":"f32","shape":["4","4"]}],
	  "nodes":[{"name":"n","op":"matmul","inputs":["x","w"],"outputs":["y"]}]}`
	if _, err := Load(strings.NewReader(src)); err == nil {
		t.Fatal("expected missing-attr error")
	}
}

func TestCheckpointContainsSymbolicShapes(t *testing.T) {
	m := models.BuildWordLM(models.WordLMConfig{Layers: 1, SeqLen: 2, Vocab: 10})
	var buf bytes.Buffer
	if err := Save(&buf, m.Graph); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"h"`, `"b"`, `"4*h"`, "matmul", "sgd-momentum"} {
		if !strings.Contains(out, want) {
			t.Fatalf("checkpoint missing %q", want)
		}
	}
}
