// Package graphio serializes compute graphs to a JSON checkpoint format and
// loads them back — the counterpart of the Catamount artifact's ability to
// save and re-load model definitions (TensorFlow MetaGraphDef checkpoints in
// the original; a self-describing JSON document here). Symbolic dimensions
// are stored in their canonical textual form and re-parsed on load, so a
// checkpointed graph analyzes identically to a freshly built one.
package graphio

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"catamount/internal/graph"
	"catamount/internal/ops"
	"catamount/internal/symbolic"
	"catamount/internal/tensor"
)

// FormatVersion identifies the checkpoint schema.
const FormatVersion = 1

type fileGraph struct {
	Version int          `json:"version"`
	Name    string       `json:"name"`
	Tensors []fileTensor `json:"tensors"`
	Nodes   []fileNode   `json:"nodes"`
}

type fileTensor struct {
	Name  string   `json:"name"`
	Kind  string   `json:"kind"`
	DType string   `json:"dtype"`
	Group string   `json:"group,omitempty"`
	Shape []string `json:"shape"`
}

type fileNode struct {
	Name    string         `json:"name"`
	Group   string         `json:"group,omitempty"`
	Kind    string         `json:"op"`
	Attrs   map[string]any `json:"attrs,omitempty"`
	Inputs  []string       `json:"inputs"`
	Outputs []string       `json:"outputs"`
}

// Save writes the graph as a JSON checkpoint.
func Save(w io.Writer, g *graph.Graph) error {
	fg := fileGraph{Version: FormatVersion, Name: g.Name}
	for _, t := range g.Tensors() {
		ft := fileTensor{
			Name:  t.Name,
			Kind:  t.Kind.String(),
			DType: t.DType.String(),
			Group: t.Group,
			Shape: make([]string, 0, t.Shape.Rank()),
		}
		for _, d := range t.Shape {
			ft.Shape = append(ft.Shape, d.String())
		}
		fg.Tensors = append(fg.Tensors, ft)
	}
	for _, n := range g.Nodes() {
		kind, attrs, err := encodeOp(n.Op)
		if err != nil {
			return fmt.Errorf("graphio: node %s: %w", n.Name, err)
		}
		fn := fileNode{Name: n.Name, Group: n.Group, Kind: kind, Attrs: attrs}
		for _, t := range n.Inputs {
			fn.Inputs = append(fn.Inputs, t.Name)
		}
		for _, t := range n.Outputs {
			fn.Outputs = append(fn.Outputs, t.Name)
		}
		fg.Nodes = append(fg.Nodes, fn)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(fg)
}

// Load reads a JSON checkpoint back into a graph.
func Load(r io.Reader) (*graph.Graph, error) {
	var fg fileGraph
	dec := json.NewDecoder(r)
	if err := dec.Decode(&fg); err != nil {
		return nil, fmt.Errorf("graphio: decode: %w", err)
	}
	if fg.Version != FormatVersion {
		return nil, fmt.Errorf("graphio: unsupported version %d", fg.Version)
	}
	g := graph.New(fg.Name)
	byName := make(map[string]*graph.Tensor, len(fg.Tensors))
	for _, ft := range fg.Tensors {
		kind, err := parseKind(ft.Kind)
		if err != nil {
			return nil, fmt.Errorf("graphio: tensor %s: %w", ft.Name, err)
		}
		dt, err := parseDType(ft.DType)
		if err != nil {
			return nil, fmt.Errorf("graphio: tensor %s: %w", ft.Name, err)
		}
		shape := make(tensor.Shape, 0, len(ft.Shape))
		for _, ds := range ft.Shape {
			e, err := symbolic.Parse(ds)
			if err != nil {
				return nil, fmt.Errorf("graphio: tensor %s dim %q: %w", ft.Name, ds, err)
			}
			shape = append(shape, e)
		}
		t := g.NewTensor(ft.Name, kind, dt, shape)
		if t.Name != ft.Name {
			return nil, fmt.Errorf("graphio: duplicate tensor name %q", ft.Name)
		}
		t.Group = ft.Group
	}
	for _, fn := range fg.Nodes {
		op, err := decodeOp(fn.Kind, fn.Attrs)
		if err != nil {
			return nil, fmt.Errorf("graphio: node %s: %w", fn.Name, err)
		}
		ins := make([]*graph.Tensor, 0, len(fn.Inputs))
		for _, name := range fn.Inputs {
			t, ok := byLookup(byName, g, name)
			if !ok {
				return nil, fmt.Errorf("graphio: node %s: unknown input %q", fn.Name, name)
			}
			ins = append(ins, t)
		}
		outs := make([]*graph.Tensor, 0, len(fn.Outputs))
		for _, name := range fn.Outputs {
			t, ok := byLookup(byName, g, name)
			if !ok {
				return nil, fmt.Errorf("graphio: node %s: unknown output %q", fn.Name, name)
			}
			outs = append(outs, t)
		}
		if _, err := g.AddNode(fn.Name, fn.Group, op, ins, outs); err != nil {
			return nil, fmt.Errorf("graphio: %w", err)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graphio: loaded graph invalid: %w", err)
	}
	return g, nil
}

func byLookup(cache map[string]*graph.Tensor, g *graph.Graph, name string) (*graph.Tensor, bool) {
	if t, ok := cache[name]; ok {
		return t, true
	}
	t, ok := g.TensorByName(name)
	if ok {
		cache[name] = t
	}
	return t, ok
}

// SaveFile writes the graph to path.
func SaveFile(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Save(f, g)
}

// LoadFile reads a graph from path.
func LoadFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

func parseKind(s string) (graph.TensorKind, error) {
	switch s {
	case "activation":
		return graph.Activation, nil
	case "input":
		return graph.Input, nil
	case "param":
		return graph.Param, nil
	case "state":
		return graph.State, nil
	}
	return 0, fmt.Errorf("unknown tensor kind %q", s)
}

func parseDType(s string) (tensor.DType, error) {
	switch s {
	case "f32":
		return tensor.F32, nil
	case "f16":
		return tensor.F16, nil
	case "i32":
		return tensor.I32, nil
	case "i64":
		return tensor.I64, nil
	}
	return 0, fmt.Errorf("unknown dtype %q", s)
}

// encodeOp maps a concrete op to its kind tag and attribute map.
func encodeOp(op graph.Op) (string, map[string]any, error) {
	switch o := op.(type) {
	case ops.MatMul:
		return "matmul", map[string]any{"transA": o.TransA, "transB": o.TransB}, nil
	case ops.BatchedMatMul:
		return "batched-matmul", map[string]any{"transA": o.TransA, "transB": o.TransB}, nil
	case ops.Conv2D:
		return "conv2d", map[string]any{"strideH": o.StrideH, "strideW": o.StrideW}, nil
	case ops.Conv2DGradInput:
		return "conv2d-grad-input", map[string]any{"strideH": o.StrideH, "strideW": o.StrideW}, nil
	case ops.Conv2DGradWeight:
		return "conv2d-grad-weight", map[string]any{"strideH": o.StrideH, "strideW": o.StrideW}, nil
	case ops.Unary:
		return "unary", map[string]any{"fn": o.Fn, "flops": o.FlopsPerElem, "factor": o.Factor}, nil
	case ops.UnaryGrad:
		return "unary-grad", map[string]any{"fn": o.Fn, "flops": o.FlopsPerElem, "factor": o.Factor}, nil
	case ops.Binary:
		return "binary", map[string]any{"fn": o.Fn}, nil
	case ops.BiasAdd:
		return "bias-add", nil, nil
	case ops.Embedding:
		return "embedding", nil, nil
	case ops.EmbeddingGrad:
		return "embedding-grad", nil, nil
	case ops.Softmax:
		return "softmax", nil, nil
	case ops.SoftmaxGrad:
		return "softmax-grad", nil, nil
	case ops.SoftmaxXent:
		return "softmax-xent", nil, nil
	case ops.SoftmaxXentGrad:
		return "softmax-xent-grad", nil, nil
	case ops.BatchNorm:
		return "batchnorm", nil, nil
	case ops.BatchNormGrad:
		return "batchnorm-grad", nil, nil
	case ops.Pool:
		return "pool", map[string]any{"kh": o.KH, "kw": o.KW, "sh": o.SH, "sw": o.SW, "max": o.Max}, nil
	case ops.PoolGrad:
		return "pool-grad", map[string]any{"kh": o.KH, "kw": o.KW, "sh": o.SH, "sw": o.SW, "max": o.Max}, nil
	case ops.Reduce:
		return "reduce", map[string]any{"keepDims": o.KeepDims, "mean": o.Mean}, nil
	case ops.Broadcast:
		return "broadcast", map[string]any{"scale": o.ScaleFlops}, nil
	case ops.Concat:
		return "concat", map[string]any{"axis": o.Axis}, nil
	case ops.Split:
		return "split", map[string]any{"axis": o.Axis, "n": o.N}, nil
	case ops.Transpose:
		return "transpose", map[string]any{"perm": o.Perm}, nil
	case ops.Reshape:
		return "reshape", nil, nil
	case ops.Fill:
		return "fill", map[string]any{"value": o.Value}, nil
	case ops.GradAccum:
		return "grad-accum", nil, nil
	case ops.SGDMomentum:
		return "sgd-momentum", map[string]any{"lr": o.LR, "mu": o.Mu}, nil
	}
	return "", nil, fmt.Errorf("unsupported op kind %q", op.Kind())
}

type attrReader struct {
	m   map[string]any
	err error
}

func (a *attrReader) float(key string) float64 {
	if a.err != nil {
		return 0
	}
	v, ok := a.m[key]
	if !ok {
		a.err = fmt.Errorf("missing attr %q", key)
		return 0
	}
	f, ok := v.(float64)
	if !ok {
		a.err = fmt.Errorf("attr %q is not numeric", key)
		return 0
	}
	return f
}

func (a *attrReader) integer(key string) int { return int(a.float(key)) }

func (a *attrReader) boolean(key string) bool {
	if a.err != nil {
		return false
	}
	v, ok := a.m[key]
	if !ok {
		a.err = fmt.Errorf("missing attr %q", key)
		return false
	}
	b, ok := v.(bool)
	if !ok {
		a.err = fmt.Errorf("attr %q is not boolean", key)
		return false
	}
	return b
}

func (a *attrReader) str(key string) string {
	if a.err != nil {
		return ""
	}
	v, ok := a.m[key]
	if !ok {
		a.err = fmt.Errorf("missing attr %q", key)
		return ""
	}
	s, ok := v.(string)
	if !ok {
		a.err = fmt.Errorf("attr %q is not a string", key)
		return ""
	}
	return s
}

func (a *attrReader) ints(key string) []int {
	if a.err != nil {
		return nil
	}
	v, ok := a.m[key]
	if !ok {
		a.err = fmt.Errorf("missing attr %q", key)
		return nil
	}
	list, ok := v.([]any)
	if !ok {
		a.err = fmt.Errorf("attr %q is not a list", key)
		return nil
	}
	out := make([]int, 0, len(list))
	for _, e := range list {
		f, ok := e.(float64)
		if !ok {
			a.err = fmt.Errorf("attr %q has non-numeric element", key)
			return nil
		}
		out = append(out, int(f))
	}
	return out
}

// decodeOp rebuilds a concrete op from its kind tag and attributes.
func decodeOp(kind string, attrs map[string]any) (graph.Op, error) {
	a := &attrReader{m: attrs}
	var op graph.Op
	switch kind {
	case "matmul":
		op = ops.MatMul{TransA: a.boolean("transA"), TransB: a.boolean("transB")}
	case "batched-matmul":
		op = ops.BatchedMatMul{TransA: a.boolean("transA"), TransB: a.boolean("transB")}
	case "conv2d":
		op = ops.Conv2D{StrideH: a.integer("strideH"), StrideW: a.integer("strideW")}
	case "conv2d-grad-input":
		op = ops.Conv2DGradInput{StrideH: a.integer("strideH"), StrideW: a.integer("strideW")}
	case "conv2d-grad-weight":
		op = ops.Conv2DGradWeight{StrideH: a.integer("strideH"), StrideW: a.integer("strideW")}
	case "unary":
		op = ops.Unary{Fn: a.str("fn"), FlopsPerElem: a.float("flops"), Factor: a.float("factor")}
	case "unary-grad":
		op = ops.UnaryGrad{Fn: a.str("fn"), FlopsPerElem: a.float("flops"), Factor: a.float("factor")}
	case "binary":
		op = ops.Binary{Fn: a.str("fn")}
	case "bias-add":
		op = ops.BiasAdd{}
	case "embedding":
		op = ops.Embedding{}
	case "embedding-grad":
		op = ops.EmbeddingGrad{}
	case "softmax":
		op = ops.Softmax{}
	case "softmax-grad":
		op = ops.SoftmaxGrad{}
	case "softmax-xent":
		op = ops.SoftmaxXent{}
	case "softmax-xent-grad":
		op = ops.SoftmaxXentGrad{}
	case "batchnorm":
		op = ops.BatchNorm{}
	case "batchnorm-grad":
		op = ops.BatchNormGrad{}
	case "pool":
		op = ops.Pool{KH: a.integer("kh"), KW: a.integer("kw"),
			SH: a.integer("sh"), SW: a.integer("sw"), Max: a.boolean("max")}
	case "pool-grad":
		op = ops.PoolGrad{KH: a.integer("kh"), KW: a.integer("kw"),
			SH: a.integer("sh"), SW: a.integer("sw"), Max: a.boolean("max")}
	case "reduce":
		op = ops.Reduce{KeepDims: a.integer("keepDims"), Mean: a.boolean("mean")}
	case "broadcast":
		op = ops.Broadcast{ScaleFlops: a.boolean("scale")}
	case "concat":
		op = ops.Concat{Axis: a.integer("axis")}
	case "split":
		op = ops.Split{Axis: a.integer("axis"), N: a.integer("n")}
	case "transpose":
		op = ops.Transpose{Perm: a.ints("perm")}
	case "reshape":
		op = ops.Reshape{}
	case "fill":
		op = ops.Fill{Value: a.float("value")}
	case "grad-accum":
		op = ops.GradAccum{}
	case "sgd-momentum":
		op = ops.SGDMomentum{LR: a.float("lr"), Mu: a.float("mu")}
	default:
		return nil, fmt.Errorf("unknown op kind %q", kind)
	}
	if a.err != nil {
		return nil, fmt.Errorf("op %q: %w", kind, a.err)
	}
	return op, nil
}
