// Package shard provides the contention-free building blocks the serving
// layer's hot read path is built on: an FNV-1a key hash, a shard-count
// heuristic derived from GOMAXPROCS, and a sharded LRU cache whose reads
// take one per-shard mutex only — no global ordering, no shared lock.
//
// The motivating workload (paper §1, ROADMAP "millions of users") is
// dominated by repeated projections over a small set of hot configurations:
// nearly every request is a cache hit, so on a many-core box the hit path
// must scale with cores instead of serializing on one cache-wide mutex.
package shard

import (
	"runtime"
	"sync"
)

// MinPerShard is the smallest per-shard capacity worth splitting for: a
// cache smaller than 2*MinPerShard stays single-sharded, where it behaves
// exactly like a classic global-mutex LRU (one lock, one recency order).
// That keeps tiny caches — and tests pinning exact global LRU eviction —
// byte-for-byte compatible with the pre-sharded implementation.
const MinPerShard = 8

// maxShards bounds the shard fan-out: beyond 64 ways the mutexes stop
// being the bottleneck long before the extra shards pay for their memory.
const maxShards = 64

// Hash is FNV-1a over the key bytes — cheap, allocation-free, and
// well-distributed for the canonical request-key strings it shards.
func Hash(key string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

// Count is the default shard fan-out: the smallest power of two covering
// GOMAXPROCS, clamped to [1, 64]. One shard per logical CPU is enough to
// make lock collisions on uniformly hashed keys rare.
func Count() int {
	return ceilPow2(runtime.GOMAXPROCS(0))
}

// ceilPow2 rounds n up to the next power of two, clamped to [1, maxShards].
func ceilPow2(n int) int {
	p := 1
	for p < n && p < maxShards {
		p <<= 1
	}
	return p
}

// Entry is one key/value pair from a cache dump.
type Entry[V any] struct {
	Key string
	Val V
}

// Stats is a point-in-time view of a sharded LRU's traffic and occupancy.
type Stats struct {
	Hits, Misses, Evictions int64
	// ShardEntries is the live entry count per shard.
	ShardEntries []int
}

// node is one intrusive doubly-linked recency-list element. The list is
// embedded directly in the cache entries (no container/list interface
// boxing): head side = most recent, tail side = least recent.
type node[V any] struct {
	key        string
	val        V
	prev, next *node[V]
}

// lruShard is one independently locked slice of the key space: its own
// mutex, map, recency list, and counters. The trailing pad keeps adjacent
// shards' hot fields off one cache line so uncontended shards do not
// false-share.
type lruShard[V any] struct {
	mu         sync.Mutex
	capacity   int
	items      map[string]*node[V]
	head, tail node[V] // list sentinels: head.next = MRU, tail.prev = LRU

	hits, misses, evictions int64

	_ [64]byte
}

func (s *lruShard[V]) init(capacity int) {
	s.capacity = capacity
	s.items = make(map[string]*node[V], capacity)
	s.head.next = &s.tail
	s.tail.prev = &s.head
}

func (s *lruShard[V]) unlink(n *node[V]) {
	n.prev.next = n.next
	n.next.prev = n.prev
}

func (s *lruShard[V]) pushFront(n *node[V]) {
	n.prev = &s.head
	n.next = s.head.next
	s.head.next.prev = n
	s.head.next = n
}

// evictOver drops least-recent entries until the shard fits its capacity.
func (s *lruShard[V]) evictOver() {
	for len(s.items) > s.capacity {
		oldest := s.tail.prev
		s.unlink(oldest)
		delete(s.items, oldest.key)
		s.evictions++
	}
}

// LRU is a bounded, sharded LRU cache. Keys hash to one of N power-of-two
// shards (FNV-1a), and every operation locks only that shard, so disjoint
// keys proceed in parallel. Capacity is partitioned across shards and
// recency is tracked per shard: the cache behaves as N independent LRUs
// over a hashed split of the key space (and exactly as one classic LRU
// when N == 1).
type LRU[V any] struct {
	shards   []lruShard[V]
	mask     uint32
	capacity int
}

// NewLRU builds a sharded LRU holding at most capacity entries. shards
// <= 0 picks the default fan-out (Count); any explicit value rounds up to
// a power of two. The fan-out then shrinks until every shard holds at
// least MinPerShard entries, so small caches degrade to the exact
// single-lock LRU rather than to N useless one-entry shards.
func NewLRU[V any](capacity, shards int) *LRU[V] {
	if capacity < 1 {
		capacity = 1
	}
	n := shards
	if n <= 0 {
		n = Count()
	}
	n = ceilPow2(n)
	for n > 1 && capacity/n < MinPerShard {
		n >>= 1
	}
	l := &LRU[V]{shards: make([]lruShard[V], n), mask: uint32(n - 1), capacity: capacity}
	// Distribute capacity exactly: the first capacity%n shards hold one
	// extra entry, so the shard capacities always sum to capacity.
	per, extra := capacity/n, capacity%n
	for i := range l.shards {
		c := per
		if i < extra {
			c++
		}
		l.shards[i].init(c)
	}
	return l
}

func (l *LRU[V]) shardFor(key string) *lruShard[V] {
	return &l.shards[Hash(key)&l.mask]
}

// Get returns the cached value and refreshes its recency, locking only the
// key's shard.
func (l *LRU[V]) Get(key string) (V, bool) {
	s := l.shardFor(key)
	s.mu.Lock()
	n, ok := s.items[key]
	if !ok {
		s.misses++
		s.mu.Unlock()
		var zero V
		return zero, false
	}
	s.hits++
	s.unlink(n)
	s.pushFront(n)
	v := n.val
	s.mu.Unlock()
	return v, true
}

// Add inserts (or refreshes) a value, evicting the shard's least-recently-
// used entries beyond its capacity share.
func (l *LRU[V]) Add(key string, val V) {
	s := l.shardFor(key)
	s.mu.Lock()
	if n, ok := s.items[key]; ok {
		n.val = val
		s.unlink(n)
		s.pushFront(n)
		s.mu.Unlock()
		return
	}
	n := &node[V]{key: key, val: val}
	s.items[key] = n
	s.pushFront(n)
	s.evictOver()
	s.mu.Unlock()
}

// GetOrCreate returns the value for key, calling create under the shard
// lock to insert one on a miss. Concurrent callers for the same key are
// guaranteed the same value — the memoization contract the Engine's
// build-once entries rely on. created reports whether this call inserted.
// create must be cheap (allocate a handle, not compute a result): it runs
// with the shard locked.
func (l *LRU[V]) GetOrCreate(key string, create func() V) (v V, created bool) {
	s := l.shardFor(key)
	s.mu.Lock()
	if n, ok := s.items[key]; ok {
		s.hits++
		s.unlink(n)
		s.pushFront(n)
		v = n.val
		s.mu.Unlock()
		return v, false
	}
	s.misses++
	v = create()
	n := &node[V]{key: key, val: v}
	s.items[key] = n
	s.pushFront(n)
	s.evictOver()
	s.mu.Unlock()
	return v, true
}

// Len reports the live entry count across every shard.
func (l *LRU[V]) Len() int {
	total := 0
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		total += len(s.items)
		s.mu.Unlock()
	}
	return total
}

// Capacity is the total entry bound the cache was built with.
func (l *LRU[V]) Capacity() int { return l.capacity }

// ShardCount is the shard fan-out the capacity is partitioned across.
func (l *LRU[V]) ShardCount() int { return len(l.shards) }

// ShardLen reports one shard's live entry count (occupancy gauges).
func (l *LRU[V]) ShardLen(i int) int {
	s := &l.shards[i]
	s.mu.Lock()
	n := len(s.items)
	s.mu.Unlock()
	return n
}

// Stats sums the per-shard counters into one traffic snapshot.
func (l *LRU[V]) Stats() Stats {
	st := Stats{ShardEntries: make([]int, len(l.shards))}
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.ShardEntries[i] = len(s.items)
		s.mu.Unlock()
	}
	return st
}

// Dump returns every entry ordered approximately least-recent first: each
// shard is walked LRU→MRU and the shards are merged round-robin by recency
// rank. Re-adding the dump in order into an empty cache reproduces the
// per-shard recency relation whatever the target's shard fan-out — the
// snapshot-persistence contract.
func (l *LRU[V]) Dump() []Entry[V] {
	perShard := make([][]Entry[V], len(l.shards))
	total := 0
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		es := make([]Entry[V], 0, len(s.items))
		for n := s.tail.prev; n != &s.head; n = n.prev {
			es = append(es, Entry[V]{Key: n.key, Val: n.val})
		}
		s.mu.Unlock()
		perShard[i] = es
		total += len(es)
	}
	out := make([]Entry[V], 0, total)
	for rank := 0; len(out) < total; rank++ {
		for _, es := range perShard {
			if rank < len(es) {
				out = append(out, es[rank])
			}
		}
	}
	return out
}
