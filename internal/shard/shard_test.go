package shard

import (
	"fmt"
	"sync"
	"testing"
)

func TestCountIsPowerOfTwo(t *testing.T) {
	n := Count()
	if n < 1 || n > maxShards || n&(n-1) != 0 {
		t.Fatalf("Count() = %d, want a power of two in [1, %d]", n, maxShards)
	}
}

func TestSmallCapacityStaysSingleSharded(t *testing.T) {
	for _, capacity := range []int{1, 2, MinPerShard, 2*MinPerShard - 1} {
		l := NewLRU[int](capacity, 8)
		if got := l.ShardCount(); got != 1 {
			t.Fatalf("capacity %d: %d shards, want 1 (exact global LRU)", capacity, got)
		}
	}
}

func TestShardCapacitiesSumExactly(t *testing.T) {
	for _, tc := range []struct{ capacity, shards int }{
		{1024, 8}, {100, 4}, {67, 4}, {1000, 0}, {64, 8},
	} {
		l := NewLRU[int](tc.capacity, tc.shards)
		sum := 0
		for i := range l.shards {
			sum += l.shards[i].capacity
		}
		if sum != tc.capacity {
			t.Fatalf("capacity %d/%d shards: shard capacities sum to %d",
				tc.capacity, tc.shards, sum)
		}
		if n := l.ShardCount(); n&(n-1) != 0 {
			t.Fatalf("shard count %d not a power of two", n)
		}
	}
}

func TestSingleShardExactLRU(t *testing.T) {
	l := NewLRU[string](2, 1)
	l.Add("a", "1")
	l.Add("b", "2")
	if v, ok := l.Get("a"); !ok || v != "1" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	l.Add("c", "3") // "b" is now least recent and must go
	if _, ok := l.Get("b"); ok {
		t.Fatal("b survived eviction at capacity 2")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := l.Get(k); !ok {
			t.Fatalf("%s missing after eviction of b", k)
		}
	}
	st := l.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if l.Len() != 2 {
		t.Fatalf("len = %d, want 2", l.Len())
	}
}

func TestAddRefreshesExisting(t *testing.T) {
	l := NewLRU[int](2, 1)
	l.Add("a", 1)
	l.Add("b", 2)
	l.Add("a", 10) // refresh, not insert: "a" becomes most recent
	l.Add("c", 3)  // evicts "b"
	if v, ok := l.Get("a"); !ok || v != 10 {
		t.Fatalf("Get(a) = %d, %v, want refreshed 10", v, ok)
	}
	if _, ok := l.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
}

func TestBoundedAcrossShards(t *testing.T) {
	const capacity = 64
	l := NewLRU[int](capacity, 4)
	for i := 0; i < 10*capacity; i++ {
		l.Add(fmt.Sprintf("key-%d", i), i)
	}
	if n := l.Len(); n > capacity {
		t.Fatalf("len = %d exceeds capacity %d", n, capacity)
	}
	st := l.Stats()
	if st.Evictions < int64(9*capacity) {
		t.Fatalf("evictions = %d, want >= %d", st.Evictions, 9*capacity)
	}
	sum := 0
	for i, n := range st.ShardEntries {
		if n > l.shards[i].capacity {
			t.Fatalf("shard %d holds %d > its capacity %d", i, n, l.shards[i].capacity)
		}
		sum += n
	}
	if sum != l.Len() {
		t.Fatalf("shard entries sum %d != Len %d", sum, l.Len())
	}
}

// TestGetOrCreateSharesOneValue pins the memoization contract: concurrent
// callers for one key must all receive the same created value.
func TestGetOrCreateSharesOneValue(t *testing.T) {
	l := NewLRU[*int](64, 4)
	const goroutines = 16
	got := make([]*int, goroutines)
	var created int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, madeIt := l.GetOrCreate("the-key", func() *int {
				mu.Lock()
				created++
				mu.Unlock()
				return new(int)
			})
			_ = madeIt
			got[g] = v
		}(g)
	}
	wg.Wait()
	if created != 1 {
		t.Fatalf("create ran %d times, want once", created)
	}
	for g := 1; g < goroutines; g++ {
		if got[g] != got[0] {
			t.Fatalf("goroutine %d received a different value", g)
		}
	}
}

func TestDumpOrderSingleShard(t *testing.T) {
	l := NewLRU[int](4, 1)
	for i, k := range []string{"a", "b", "c", "d"} {
		l.Add(k, i)
	}
	l.Get("a") // a becomes most recent: order is now b, c, d, a
	dump := l.Dump()
	want := []string{"b", "c", "d", "a"}
	if len(dump) != len(want) {
		t.Fatalf("dump has %d entries, want %d", len(dump), len(want))
	}
	for i, e := range dump {
		if e.Key != want[i] {
			t.Fatalf("dump[%d] = %s, want %s (least-recent first)", i, e.Key, want[i])
		}
	}
}

// TestDumpReloadRoundTrip checks the snapshot contract: re-adding a dump in
// order into a fresh cache (any fan-out) keeps every entry and leaves the
// most recently used keys most recent in their shards.
func TestDumpReloadRoundTrip(t *testing.T) {
	src := NewLRU[int](128, 4)
	for i := 0; i < 100; i++ {
		src.Add(fmt.Sprintf("key-%d", i), i)
	}
	dump := src.Dump()
	if len(dump) != 100 {
		t.Fatalf("dump has %d entries, want 100", len(dump))
	}
	dst := NewLRU[int](128, 1)
	for _, e := range dump {
		dst.Add(e.Key, e.Val)
	}
	if dst.Len() != 100 {
		t.Fatalf("reloaded %d entries, want 100", dst.Len())
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		if v, ok := dst.Get(k); !ok || v != i {
			t.Fatalf("reloaded %s = %d, %v", k, v, ok)
		}
	}
}

func TestHashMatchesFNV1a(t *testing.T) {
	// Reference vectors for 32-bit FNV-1a.
	cases := map[string]uint32{
		"":    2166136261,
		"a":   0xe40c292c,
		"foo": 0xa9f37ed7,
	}
	for in, want := range cases {
		if got := Hash(in); got != want {
			t.Fatalf("Hash(%q) = %#x, want %#x", in, got, want)
		}
	}
}

// TestConcurrentChurn hammers all operations from many goroutines under a
// tight capacity so eviction churn races with reads; run with -race.
func TestConcurrentChurn(t *testing.T) {
	l := NewLRU[int](128, 0)
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("key-%d", (g*31+i)%512)
				switch i % 3 {
				case 0:
					l.Add(k, i)
				case 1:
					l.Get(k)
				default:
					l.GetOrCreate(k, func() int { return i })
				}
			}
		}(g)
	}
	wg.Wait()
	if n := l.Len(); n > 128 {
		t.Fatalf("len = %d exceeds capacity under churn", n)
	}
}
