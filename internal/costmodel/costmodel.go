// Package costmodel is the pluggable step-time estimation subsystem. The
// paper's methodological core (§4.1, §5, Figure 8) is that run-time
// projection needs a per-operation view: individual ops land on different
// sides of the Roofline ridge point, so the graph-level estimate
// max(ΣFLOPs/xc, ΣBytes/xa) — which mixes compute-bound GEMMs with
// bandwidth-bound elementwise kernels into one aggregate intensity — is
// systematically optimistic. This package turns the single hard-coded
// formula into a Model interface with two deterministic backends:
//
//   - GraphRoofline ("graph"): the legacy §5.2.2 graph-level formula,
//     extracted verbatim and kept as the default so every golden table
//     stays byte-identical;
//   - PerOpRoofline ("perop"): sums per-op max(f_i/xc_i, b_i/xa_i) over the
//     compiled graph's node costs, with a per-op-kind achievable-efficiency
//     table (§5.1): tensor-core-eligible GEMM kernels attain the device's
//     full achievable compute but are derated by arithmetic intensity for
//     small/skinny shapes, vector-unit kernels run at a fraction of it, and
//     streaming/gather kernels (embedding, optimizer, gradient accumulation)
//     are effectively pinned to memory bandwidth.
//
// Every per-op efficiency is a multiplier in (0, 1] on the accelerator's
// achievable rates, and each op keeps the max(compute, bandwidth) form, so
// PerOpRoofline provably never reports a faster step than GraphRoofline:
// Σ_i max(f_i/(c_i·xc), b_i/(m_i·xa)) ≥ Σ_i max(f_i/xc, b_i/xa) ≥
// max(Σf_i/xc, Σb_i/xa). The gap between the two backends is exactly the
// projection optimism the paper warns about.
package costmodel

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"catamount/internal/hw"
)

// OpCost is one graph node's evaluated cost: its op kind plus algorithmic
// FLOPs and bytes at a concrete (size, batch) binding.
type OpCost struct {
	Kind  string  `json:"kind"`
	FLOPs float64 `json:"flops"`
	Bytes float64 `json:"bytes"`
}

// Costs is the evaluated cost vector of one training step. FLOPs and Bytes
// are the graph totals every backend can use; Ops carries the per-node
// breakdown the per-op backend needs. Ops may be nil when only a
// graph-level backend will consume the vector (see NeedsOpCosts).
type Costs struct {
	FLOPs float64
	Bytes float64
	Ops   []OpCost
}

// GraphCosts wraps graph totals into a cost vector with no per-op detail.
func GraphCosts(flops, bytes float64) Costs {
	return Costs{FLOPs: flops, Bytes: bytes}
}

// Bound names the limiting resource of a step-time estimate.
type Bound string

// The two Roofline regimes.
const (
	BoundCompute   Bound = "compute"
	BoundBandwidth Bound = "bandwidth"
)

// Model estimates training-step run time on an accelerator from a step's
// cost vector. Implementations are stateless values, deterministic, and
// safe for concurrent use.
type Model interface {
	// Name is the canonical backend name ("graph", "perop"), used in memo
	// keys, metrics and wire formats.
	Name() string
	// StepTime estimates seconds per training step. It is well-defined for
	// any non-negative cost vector: an all-zero step takes zero seconds.
	StepTime(acc hw.Accelerator, c Costs) float64
	// Bound reports which resource limits the estimate.
	Bound(acc hw.Accelerator, c Costs) Bound
}

// opCoster is the optional capability a backend declares when it consumes
// the per-op cost breakdown.
type opCoster interface{ NeedsOpCosts() bool }

// NeedsOpCosts reports whether the backend consumes Costs.Ops. Producers
// use it to skip evaluating per-node cost programs for graph-level
// backends.
func NeedsOpCosts(m Model) bool {
	if oc, ok := m.(opCoster); ok {
		return oc.NeedsOpCosts()
	}
	return false
}

// ---------------------------------------------------------------------------
// GraphRoofline

// GraphRoofline is the legacy graph-level Roofline backend (§5.2.2):
//
//	rt = max(ΣFLOPs / (xc·peak), ΣBytes / (xa·bw))
//
// It is the default backend; its estimates are bit-identical to the
// original hw.Accelerator.StepTime formula, keeping every golden table
// stable.
type GraphRoofline struct{}

// Name implements Model.
func (GraphRoofline) Name() string { return GraphName }

// StepTime implements Model with the §5.2.2 graph-level formula.
func (GraphRoofline) StepTime(acc hw.Accelerator, c Costs) float64 {
	return acc.StepTime(c.FLOPs, c.Bytes)
}

// Bound implements Model, matching hw.Accelerator.ComputeBound exactly
// (including its zero-cost behavior) so the default backend's sweep output
// is unchanged.
func (GraphRoofline) Bound(acc hw.Accelerator, c Costs) Bound {
	if acc.ComputeBound(c.FLOPs, c.Bytes) {
		return BoundCompute
	}
	return BoundBandwidth
}

// ---------------------------------------------------------------------------
// PerOpRoofline

// Class is one kernel class's achievable-efficiency entry: multipliers in
// (0, 1] applied to the accelerator's achievable compute and bandwidth
// when an op of the class runs alone (the per-op Roofline assumption).
type Class struct {
	// ComputeEff scales achievable compute (xc·peak).
	ComputeEff float64
	// MemEff scales achievable memory bandwidth (xa·bw).
	MemEff float64
	// IntensityDerate enables the small-GEMM derate: ComputeEff is further
	// scaled by I/(I + ridge), the classic half-peak-at-ridge saturation
	// curve, so skinny recurrent GEMMs near the ridge point achieve well
	// under peak (§5.1) while large square GEMMs approach it.
	IntensityDerate bool
}

// kernel classes, keyed by the op kinds of internal/ops.
var (
	// classGEMM: tensor-core-eligible dense linear algebra. At high
	// arithmetic intensity these attain the device's full achievable
	// compute — the mixed-precision-peak path of §5.1 — but the intensity
	// derate halves throughput at the ridge point, modeling tile
	// quantization and pipeline drain on small/skinny shapes.
	classGEMM = Class{ComputeEff: 1.0, MemEff: 1.0, IntensityDerate: true}
	// classVector: elementwise / normalization / softmax kernels on the
	// vector units. Their intensities sit far below the ridge, so they are
	// bandwidth-bound in practice; the compute efficiency matters only for
	// degenerate shapes.
	classVector = Class{ComputeEff: 0.50, MemEff: 1.0}
	// classGather: irregular-access kernels (embedding gather/scatter).
	// Random row access wastes DRAM burst transfers, so they attain a
	// reduced fraction of streaming bandwidth.
	classGather = Class{ComputeEff: 0.25, MemEff: 0.60}
	// classStream: pure data movement and optimizer updates — perfectly
	// streamable, pinned to bandwidth.
	classStream = Class{ComputeEff: 0.50, MemEff: 0.90}
)

// classes maps op kinds to kernel classes. Kinds absent from the table use
// defaultClass, a conservative vector-kernel assumption.
var classes = map[string]Class{
	"matmul":             classGEMM,
	"batched-matmul":     classGEMM,
	"conv2d":             classGEMM,
	"conv2d-grad-input":  classGEMM,
	"conv2d-grad-weight": classGEMM,

	"relu": classVector, "relu-grad": classVector,
	"sigmoid": classVector, "sigmoid-grad": classVector,
	"tanh": classVector, "tanh-grad": classVector,
	"scale": classVector, "scale-grad": classVector,
	"add": classVector, "sub": classVector, "mul": classVector,
	"bias-add":     classVector,
	"softmax":      classVector,
	"softmax-grad": classVector,
	"softmax-xent": classVector, "softmax-xent-grad": classVector,
	"batchnorm": classVector, "batchnorm-grad": classVector,
	"maxpool": classVector, "avgpool": classVector, "pool-grad": classVector,
	"reduce": classVector, "broadcast": classVector,

	"embedding":      classGather,
	"embedding-grad": classGather,

	"concat": classStream, "split": classStream, "transpose": classStream,
	"reshape": classStream, "fill": classStream, "grad-accum": classStream,
	"sgd-momentum": classStream,
}

var defaultClass = classVector

// ClassFor returns the efficiency entry for an op kind (defaultClass for
// unknown kinds).
func ClassFor(kind string) Class {
	if cl, ok := classes[kind]; ok {
		return cl
	}
	return defaultClass
}

// PerOpRoofline is the per-operation Roofline backend: each node's time is
// max(compute, bandwidth) at its kernel class's achievable efficiency, and
// the step is their sum (serial kernel execution, the framework-profiler
// view of §4.1). When the cost vector carries no per-op breakdown it
// degrades to the graph-level formula, so it is always well-defined.
type PerOpRoofline struct{}

// Name implements Model.
func (PerOpRoofline) Name() string { return PerOpName }

// NeedsOpCosts marks the backend as a per-op consumer.
func (PerOpRoofline) NeedsOpCosts() bool { return true }

// StepTime implements Model.
func (PerOpRoofline) StepTime(acc hw.Accelerator, c Costs) float64 {
	if len(c.Ops) == 0 {
		return acc.StepTime(c.FLOPs, c.Bytes)
	}
	xc := acc.AchievableCompute * acc.PeakFLOPS
	xa := acc.AchievableMemBW * acc.MemBandwidth
	ridge := xc / xa
	total := 0.0
	for _, op := range c.Ops {
		total += opTime(op, xc, xa, ridge)
	}
	return total
}

// Bound implements Model: the backend is compute-bound when the summed
// compute-side time across ops exceeds the summed bandwidth-side time.
func (PerOpRoofline) Bound(acc hw.Accelerator, c Costs) Bound {
	if len(c.Ops) == 0 {
		return GraphRoofline{}.Bound(acc, c)
	}
	tc, tb := perOpTimes(acc, c.Ops)
	if tc >= tb {
		return BoundCompute
	}
	return BoundBandwidth
}

// opSides is one node's per-op Roofline compute-side and bandwidth-side
// times at its class efficiencies — the single home of the efficiency-
// table math, so StepTime (max per op) and Bound (sum per side) can never
// disagree about an op's rates.
func opSides(op OpCost, xc, xa, ridge float64) (ct, at float64) {
	return opSidesClass(ClassFor(op.Kind), op.FLOPs, op.Bytes, xc, xa, ridge)
}

// opSidesClass is opSides with the class and values already in hand. The
// scalar and batched paths both go through it, so per-op arithmetic is
// identical instruction-for-instruction between them.
func opSidesClass(cl Class, flops, bytes, xc, xa, ridge float64) (ct, at float64) {
	if flops > 0 {
		ceff := cl.ComputeEff
		if cl.IntensityDerate && bytes > 0 {
			i := flops / bytes
			ceff *= i / (i + ridge)
		}
		ct = flops / (ceff * xc)
	}
	if bytes > 0 {
		at = bytes / (cl.MemEff * xa)
	}
	return ct, at
}

// opTime is one node's per-op Roofline time.
func opTime(op OpCost, xc, xa, ridge float64) float64 {
	ct, at := opSides(op, xc, xa, ridge)
	return math.Max(ct, at)
}

// perOpTimes sums the compute-side and bandwidth-side times separately,
// for the Bound verdict.
func perOpTimes(acc hw.Accelerator, ops []OpCost) (tc, tb float64) {
	xc := acc.AchievableCompute * acc.PeakFLOPS
	xa := acc.AchievableMemBW * acc.MemBandwidth
	ridge := xc / xa
	for _, op := range ops {
		ct, at := opSides(op, xc, xa, ridge)
		tc += ct
		tb += at
	}
	return tc, tb
}

// ---------------------------------------------------------------------------
// Registry

// Canonical backend names.
const (
	GraphName = "graph"
	PerOpName = "perop"
)

// aliases maps accepted spellings (lower-cased) to canonical names. The
// empty string resolves to the default backend, so every layer treats an
// omitted selector as "graph".
var aliases = map[string]string{
	"":                GraphName,
	"graph":           GraphName,
	"graph-roofline":  GraphName,
	"roofline":        GraphName,
	"perop":           PerOpName,
	"per-op":          PerOpName,
	"perop-roofline":  PerOpName,
	"per-op-roofline": PerOpName,
}

// Default returns the default backend: the legacy graph-level Roofline.
func Default() Model { return GraphRoofline{} }

// Parse resolves a backend name or alias (case-insensitively; "" means the
// default) to its Model. Every error out of Parse is a user-input problem.
func Parse(name string) (Model, error) {
	key, ok := aliases[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return nil, fmt.Errorf("costmodel: unknown cost model %q (one of: %s)",
			name, strings.Join(Names(), ", "))
	}
	switch key {
	case PerOpName:
		return PerOpRoofline{}, nil
	default:
		return GraphRoofline{}, nil
	}
}

// CanonicalName resolves a backend spelling to its canonical name, for
// memo keys: every alias of a backend produces the same key segment. It
// fails on unknown names like Parse.
func CanonicalName(name string) (string, error) {
	m, err := Parse(name)
	if err != nil {
		return "", err
	}
	return m.Name(), nil
}

// Names lists the canonical backend names in deterministic order.
func Names() []string { return []string{GraphName, PerOpName} }

// Info describes one backend for listings (GET /v1/costmodels, CLI help).
type Info struct {
	Name        string   `json:"name"`
	Aliases     []string `json:"aliases"`
	Description string   `json:"description"`
	Default     bool     `json:"default"`
}

// Infos lists every backend with its accepted spellings.
func Infos() []Info {
	byName := map[string][]string{}
	for alias, canon := range aliases {
		if alias == "" || alias == canon {
			continue
		}
		byName[canon] = append(byName[canon], alias)
	}
	for _, v := range byName {
		sort.Strings(v)
	}
	return []Info{
		{
			Name:        GraphName,
			Aliases:     byName[GraphName],
			Description: "graph-level roofline: max(ΣFLOPs/xc, ΣBytes/xa) over the whole step (§5.2.2; the paper's Table 3/5 formula)",
			Default:     true,
		},
		{
			Name:        PerOpName,
			Aliases:     byName[PerOpName],
			Description: "per-op roofline: Σ max(f_i/xc_i, b_i/xa_i) over graph nodes with a per-op-kind achievable-efficiency table (§4.1, §5.1); never faster than graph",
		},
	}
}
