package costmodel

import (
	"math"

	"catamount/internal/hw"
)

// Batched cost vectors: structure-of-arrays companions to Costs/OpCost for
// evaluating one backend over many sweep points at once. The per-op view
// exploits graph program deduplication — a training graph's thousands of
// nodes share a few dozen distinct cost expressions — so per-node values
// are (kind, index) gathers into a small unique-value matrix instead of
// materialized []OpCost slices per point.
//
// Bit-for-bit contract: for every row r, StepTimesBatch and the bounds it
// fills equal the scalar StepTime/Bound on the materialized Costs of that
// row. Both paths run the identical per-op arithmetic (opSidesClass) and
// accumulate per row in the same node order.

// OpsBatch is the per-op cost breakdown for a batch of rows. For node i at
// row r, FLOPs are Uniq[FLOPIx[i]*Rows + r] and bytes are
// Uniq[ByteIx[i]*Rows + r].
type OpsBatch struct {
	// Rows is the number of evaluation points.
	Rows int
	// Kinds holds each node's op kind, in graph Nodes() order.
	Kinds []string
	// Classes optionally holds each kind's resolved efficiency class.
	// Producers that price many batches should fill it once (Resolve);
	// per-op pricing then skips the per-node class lookup, which otherwise
	// dominates the batched hot loop.
	Classes []Class
	// FLOPIx / ByteIx map each node to its row vector in Uniq.
	FLOPIx []int32
	ByteIx []int32
	// Uniq holds the unique cost-program results, program-major:
	// Uniq[k*Rows : (k+1)*Rows] is unique program k across all rows.
	Uniq []float64
}

// Resolve fills Classes from Kinds. Kinds are static per graph, so callers
// typically resolve once and reuse the slice across batches.
func (ob *OpsBatch) Resolve() {
	if len(ob.Classes) == len(ob.Kinds) {
		return
	}
	ob.Classes = make([]Class, len(ob.Kinds))
	for i, k := range ob.Kinds {
		ob.Classes[i] = ClassFor(k)
	}
}

// At materializes one node's cost at one row.
func (ob *OpsBatch) At(node, row int) OpCost {
	return OpCost{
		Kind:  ob.Kinds[node],
		FLOPs: ob.Uniq[int(ob.FLOPIx[node])*ob.Rows+row],
		Bytes: ob.Uniq[int(ob.ByteIx[node])*ob.Rows+row],
	}
}

// CostsBatch is the evaluated cost vectors of a batch of training-step
// points. FLOPs and Bytes hold per-row graph totals; Ops carries the
// shared per-op breakdown and is nil when no per-op backend will consume
// the batch (see NeedsOpCosts).
type CostsBatch struct {
	Rows  int
	FLOPs []float64
	Bytes []float64
	Ops   *OpsBatch
}

// At materializes one row's graph-level cost vector (without per-op
// detail; per-op backends consume the batch directly).
func (c *CostsBatch) At(row int) Costs {
	return Costs{FLOPs: c.FLOPs[row], Bytes: c.Bytes[row]}
}

// BatchModel is the optional capability of backends that evaluate a whole
// batch of points in one pass. Both built-in backends implement it.
type BatchModel interface {
	Model
	// StepTimesBatch estimates seconds per training step for every row,
	// writing into dst (grown as needed and returned). When bounds is
	// non-nil it must hold Rows entries and receives each row's limiting
	// resource, matching the scalar Bound verdict.
	StepTimesBatch(acc hw.Accelerator, c *CostsBatch, dst []float64, bounds []Bound) []float64
}

func growFloat(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// StepTimesBatch implements BatchModel with the graph-level formula per
// row, bit-identical to StepTime/Bound on each row's totals.
func (GraphRoofline) StepTimesBatch(acc hw.Accelerator, c *CostsBatch, dst []float64, bounds []Bound) []float64 {
	dst = growFloat(dst, c.Rows)
	for r := 0; r < c.Rows; r++ {
		dst[r] = acc.StepTime(c.FLOPs[r], c.Bytes[r])
		if bounds != nil {
			if acc.ComputeBound(c.FLOPs[r], c.Bytes[r]) {
				bounds[r] = BoundCompute
			} else {
				bounds[r] = BoundBandwidth
			}
		}
	}
	return dst
}

// StepTimesBatch implements BatchModel: one pass over the node list, with
// each node's unique-value row vectors feeding every row's accumulator, so
// the program table is walked once per batch instead of once per point.
// Per-row accumulation runs in node order with the scalar arithmetic.
func (PerOpRoofline) StepTimesBatch(acc hw.Accelerator, c *CostsBatch, dst []float64, bounds []Bound) []float64 {
	if c.Ops == nil {
		return GraphRoofline{}.StepTimesBatch(acc, c, dst, bounds)
	}
	rows := c.Rows
	dst = growFloat(dst, rows)
	clear(dst)
	var tc, tb []float64
	if bounds != nil {
		tc = make([]float64, rows)
		tb = make([]float64, rows)
	}
	xc := acc.AchievableCompute * acc.PeakFLOPS
	xa := acc.AchievableMemBW * acc.MemBandwidth
	ridge := xc / xa
	ob := c.Ops
	classes := ob.Classes
	if len(classes) != len(ob.Kinds) {
		classes = nil
	}
	for n := range ob.Kinds {
		var cl Class
		if classes != nil {
			cl = classes[n]
		} else {
			cl = ClassFor(ob.Kinds[n])
		}
		f := ob.Uniq[int(ob.FLOPIx[n])*rows:][:rows]
		b := ob.Uniq[int(ob.ByteIx[n])*rows:][:rows]
		for r := 0; r < rows; r++ {
			ct, at := opSidesClass(cl, f[r], b[r], xc, xa, ridge)
			dst[r] += math.Max(ct, at)
			if bounds != nil {
				tc[r] += ct
				tb[r] += at
			}
		}
	}
	if bounds != nil {
		for r := 0; r < rows; r++ {
			if tc[r] >= tb[r] {
				bounds[r] = BoundCompute
			} else {
				bounds[r] = BoundBandwidth
			}
		}
	}
	return dst
}

// AsBatch returns the backend's batched evaluator. Both built-in backends
// implement BatchModel natively; for a third-party Model without the
// capability it returns a row-at-a-time adapter, so callers can always
// take the batched path.
func AsBatch(m Model) BatchModel {
	if bm, ok := m.(BatchModel); ok {
		return bm
	}
	return scalarAdapter{m}
}

// scalarAdapter runs a scalar-only backend row by row. Per-op rows are
// materialized one node at a time; this is the compatibility slow path.
type scalarAdapter struct{ Model }

func (a scalarAdapter) StepTimesBatch(acc hw.Accelerator, c *CostsBatch, dst []float64, bounds []Bound) []float64 {
	dst = growFloat(dst, c.Rows)
	var ops []OpCost
	needOps := NeedsOpCosts(a.Model) && c.Ops != nil
	for r := 0; r < c.Rows; r++ {
		cost := c.At(r)
		if needOps {
			ops = ops[:0]
			for n := range c.Ops.Kinds {
				ops = append(ops, c.Ops.At(n, r))
			}
			cost.Ops = ops
		}
		dst[r] = a.StepTime(acc, cost)
		if bounds != nil {
			bounds[r] = a.Bound(acc, cost)
		}
	}
	return dst
}
