package costmodel

import (
	"math"
	"math/rand"
	"testing"

	"catamount/internal/hw"
)

// TestGraphRooflineMatchesAccelerator pins the default backend to the
// legacy formula bit-for-bit: every golden table rides on this.
func TestGraphRooflineMatchesAccelerator(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := GraphRoofline{}
	for _, acc := range hw.Catalog() {
		for i := 0; i < 200; i++ {
			f := math.Pow(10, 9+6*rng.Float64())
			b := math.Pow(10, 8+5*rng.Float64())
			c := GraphCosts(f, b)
			if got, want := m.StepTime(acc, c), acc.StepTime(f, b); got != want {
				t.Fatalf("%s: StepTime(%g, %g) = %g, accelerator says %g", acc.Name, f, b, got, want)
			}
			wantBound := BoundBandwidth
			if acc.ComputeBound(f, b) {
				wantBound = BoundCompute
			}
			if got := m.Bound(acc, c); got != wantBound {
				t.Fatalf("%s: Bound(%g, %g) = %s, accelerator says %s", acc.Name, f, b, got, wantBound)
			}
		}
	}
}

// TestPerOpDominance checks the subsystem's structural guarantee on random
// op mixes: the per-op estimate is never faster than the graph-level one,
// because every per-op efficiency is ≤ the achievable rate and sum-of-max
// dominates max-of-sum.
func TestPerOpDominance(t *testing.T) {
	kinds := []string{"matmul", "batched-matmul", "conv2d", "sigmoid", "tanh",
		"softmax", "embedding", "embedding-grad", "grad-accum", "sgd-momentum",
		"add", "reshape", "transpose", "some-unknown-kind"}
	rng := rand.New(rand.NewSource(7))
	graph, perop := GraphRoofline{}, PerOpRoofline{}
	for _, acc := range hw.Catalog() {
		for trial := 0; trial < 100; trial++ {
			n := 1 + rng.Intn(40)
			c := Costs{Ops: make([]OpCost, 0, n)}
			for i := 0; i < n; i++ {
				op := OpCost{
					Kind:  kinds[rng.Intn(len(kinds))],
					FLOPs: math.Pow(10, 6+6*rng.Float64()),
					Bytes: math.Pow(10, 5+5*rng.Float64()),
				}
				if rng.Intn(5) == 0 {
					op.FLOPs = 0 // data-movement op
				}
				if rng.Intn(7) == 0 {
					op.Bytes = 0 // view op
				}
				c.FLOPs += op.FLOPs
				c.Bytes += op.Bytes
				c.Ops = append(c.Ops, op)
			}
			tg := graph.StepTime(acc, c)
			tp := perop.StepTime(acc, c)
			if math.IsNaN(tp) || math.IsInf(tp, 0) {
				t.Fatalf("%s: per-op time not finite: %v", acc.Name, tp)
			}
			if tp < tg {
				t.Fatalf("%s: per-op %.6g faster than graph %.6g (ops=%d)", acc.Name, tp, tg, n)
			}
		}
	}
}

// TestZeroCostsWellDefined: an all-zero step is instantaneous and finite
// under both backends (the divide-by-zero satellite's costmodel half).
func TestZeroCostsWellDefined(t *testing.T) {
	acc := hw.TargetAccelerator()
	zero := Costs{Ops: []OpCost{{Kind: "matmul"}, {Kind: "reshape"}}}
	for _, m := range []Model{GraphRoofline{}, PerOpRoofline{}} {
		if got := m.StepTime(acc, zero); got != 0 {
			t.Fatalf("%s: zero-cost step time = %v, want 0", m.Name(), got)
		}
		if got := m.StepTime(acc, Costs{}); got != 0 {
			t.Fatalf("%s: empty cost step time = %v, want 0", m.Name(), got)
		}
		if b := m.Bound(acc, zero); b != BoundCompute && b != BoundBandwidth {
			t.Fatalf("%s: zero-cost bound = %q", m.Name(), b)
		}
	}
}

// TestPerOpFallsBackWithoutOps: a cost vector without per-op detail still
// yields a well-defined (graph-level) estimate.
func TestPerOpFallsBackWithoutOps(t *testing.T) {
	acc := hw.TargetAccelerator()
	c := GraphCosts(1e12, 1e10)
	if got, want := (PerOpRoofline{}).StepTime(acc, c), acc.StepTime(1e12, 1e10); got != want {
		t.Fatalf("fallback StepTime = %g, want %g", got, want)
	}
}

// TestParseAliases: every documented alias resolves, canonicalizes, and
// round-trips through Name; unknown names fail.
func TestParseAliases(t *testing.T) {
	cases := map[string]string{
		"":                GraphName,
		"graph":           GraphName,
		"Graph-Roofline":  GraphName,
		" roofline ":      GraphName,
		"perop":           PerOpName,
		"per-op":          PerOpName,
		"PerOp-Roofline":  PerOpName,
		"per-op-roofline": PerOpName,
	}
	for in, want := range cases {
		m, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if m.Name() != want {
			t.Fatalf("Parse(%q).Name() = %q, want %q", in, m.Name(), want)
		}
		canon, err := CanonicalName(in)
		if err != nil || canon != want {
			t.Fatalf("CanonicalName(%q) = %q, %v; want %q", in, canon, err, want)
		}
	}
	if _, err := Parse("tpu-magic"); err == nil {
		t.Fatal("Parse accepted an unknown backend")
	}
	if _, err := CanonicalName("nope"); err == nil {
		t.Fatal("CanonicalName accepted an unknown backend")
	}
}

// TestClassTableSane: every efficiency multiplier sits in (0, 1] — the
// precondition of the dominance proof.
func TestClassTableSane(t *testing.T) {
	check := func(name string, cl Class) {
		if !(cl.ComputeEff > 0 && cl.ComputeEff <= 1) {
			t.Fatalf("%s: ComputeEff %v outside (0, 1]", name, cl.ComputeEff)
		}
		if !(cl.MemEff > 0 && cl.MemEff <= 1) {
			t.Fatalf("%s: MemEff %v outside (0, 1]", name, cl.MemEff)
		}
	}
	for kind, cl := range classes {
		check(kind, cl)
	}
	check("default", defaultClass)
	check("lookup-unknown", ClassFor("never-heard-of-it"))
}

// TestInfos: the listing covers every canonical name, flags exactly one
// default, and lists aliases deterministically.
func TestInfos(t *testing.T) {
	infos := Infos()
	if len(infos) != len(Names()) {
		t.Fatalf("Infos has %d entries, Names %d", len(infos), len(Names()))
	}
	defaults := 0
	for i, info := range infos {
		if info.Name != Names()[i] {
			t.Fatalf("Infos[%d].Name = %q, want %q", i, info.Name, Names()[i])
		}
		if info.Default {
			defaults++
		}
		for _, alias := range info.Aliases {
			canon, err := CanonicalName(alias)
			if err != nil || canon != info.Name {
				t.Fatalf("alias %q of %q resolves to %q, %v", alias, info.Name, canon, err)
			}
		}
	}
	if defaults != 1 {
		t.Fatalf("%d default backends, want exactly 1", defaults)
	}
	if Default().Name() != GraphName {
		t.Fatalf("Default() is %q, want %q", Default().Name(), GraphName)
	}
}

// TestSubbatchSweepMatchesHW: with the graph backend the costmodel sweep
// reproduces hw.SubbatchSweep point-for-point.
func TestSubbatchSweepMatchesHW(t *testing.T) {
	acc := hw.TargetAccelerator()
	hwEval := func(b float64) (float64, float64, float64, error) {
		return 2e9 * b, 1e9 + 5e7*b, b * 1e6, nil
	}
	cmEval := func(b float64) (Costs, float64, error) {
		f, by, fp, _ := hwEval(b)
		return GraphCosts(f, by), fp, nil
	}
	want, err := hw.SubbatchSweep(hwEval, acc, hw.PowersOfTwo(10))
	if err != nil {
		t.Fatal(err)
	}
	got, err := SubbatchSweep(cmEval, acc, GraphRoofline{}, hw.PowersOfTwo(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("length %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("point %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

// TestSubbatchSweepPerOpNotFaster: the per-op backend's sweep is pointwise
// no faster than the graph backend's.
func TestSubbatchSweepPerOpNotFaster(t *testing.T) {
	acc := hw.TargetAccelerator()
	eval := func(b float64) (Costs, float64, error) {
		ops := []OpCost{
			{Kind: "matmul", FLOPs: 1.6e9 * b, Bytes: 4e7 * b},
			{Kind: "sigmoid", FLOPs: 4e8 * b, Bytes: 1e9},
			{Kind: "embedding", Bytes: 1e7 * b},
		}
		c := Costs{Ops: ops}
		for _, op := range ops {
			c.FLOPs += op.FLOPs
			c.Bytes += op.Bytes
		}
		return c, 0, nil
	}
	g, err := SubbatchSweep(eval, acc, GraphRoofline{}, hw.PowersOfTwo(8))
	if err != nil {
		t.Fatal(err)
	}
	p, err := SubbatchSweep(eval, acc, PerOpRoofline{}, hw.PowersOfTwo(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range g {
		if p[i].StepTime < g[i].StepTime {
			t.Fatalf("subbatch %g: per-op %.6g faster than graph %.6g",
				g[i].Subbatch, p[i].StepTime, g[i].StepTime)
		}
	}
}
