package costmodel

import (
	"fmt"

	"catamount/internal/hw"
)

// StepEval evaluates a training step at a subbatch size, returning the
// step's cost vector and memory footprint. It is the cost-vector
// generalization of hw.StepEval: the per-op backend needs node costs, not
// just the (flops, bytes) scalars. A returned Costs is only read before
// the next call, so evaluators may reuse their Ops buffer across calls.
type StepEval func(subbatch float64) (Costs, float64, error)

// SubbatchSweep evaluates the step across subbatch sizes (Figure 11's x
// axis) with a pluggable step-time backend. With the GraphRoofline backend
// it reproduces hw.SubbatchSweep exactly; hw.ChooseSubbatch applies the
// §5.2.1 policies to the result either way.
func SubbatchSweep(eval StepEval, acc hw.Accelerator, m Model, subbatches []float64) ([]hw.SubbatchPoint, error) {
	out := make([]hw.SubbatchPoint, 0, len(subbatches))
	for _, b := range subbatches {
		c, fp, err := eval(b)
		if err != nil {
			return nil, fmt.Errorf("costmodel: subbatch %v: %w", b, err)
		}
		t := m.StepTime(acc, c)
		intensity := 0.0
		if c.Bytes > 0 {
			intensity = c.FLOPs / c.Bytes
		}
		out = append(out, hw.SubbatchPoint{
			Subbatch:       b,
			FLOPs:          c.FLOPs,
			Bytes:          c.Bytes,
			Intensity:      intensity,
			StepTime:       t,
			TimePerSample:  t / b,
			FootprintBytes: fp,
			Utilization:    acc.Utilization(c.FLOPs, t),
		})
	}
	return out, nil
}
