package parallel

import (
	"fmt"
	"math"

	"catamount/internal/cache"
	"catamount/internal/costmodel"
	"catamount/internal/fit"
	"catamount/internal/graph"
	"catamount/internal/hw"
	"catamount/internal/models"
	"catamount/internal/symbolic"
)

// CaseStudyConfig parameterizes the §6 word-LM case study.
type CaseStudyConfig struct {
	// TargetFootprintGB sizes the projected LSTM: the paper's Table 5 lists
	// a 113.8 GB per-step footprint for the optimized (projection + full
	// vocabulary) frontier word LM.
	TargetFootprintGB float64
	// Subbatch is the per-worker subbatch (128, from §5.2.1).
	Subbatch float64
	// EpochTokens is the frontier dataset size (77B words).
	EpochTokens float64
	// DataParallelOptions are the worker counts reported in Table 5.
	DataParallelOptions []int
	// LayerStages is the layer-parallel placement (§6.2.2: one stage per
	// model layer — embedding, each LSTM, output).
	LayerStages [][]string
	// Microbatches is the pipeline depth used for the fill factor.
	Microbatches int
	// Acc and Link describe the hardware.
	Acc  hw.Accelerator
	Link Interconnect
	// Reduce is the gradient collective (ring allreduce by default).
	Reduce AllReduce
	// SchedulePolicy selects the footprint traversal heuristic.
	SchedulePolicy graph.SchedulePolicy
	// Cost is the step-time backend for the Roofline stages (nil means the
	// default graph-level backend, reproducing Table 5 byte-for-byte).
	Cost costmodel.Model
}

// DefaultCaseStudyConfig reproduces the paper's Table 5 setup.
func DefaultCaseStudyConfig() CaseStudyConfig {
	return CaseStudyConfigFor(hw.TargetAccelerator())
}

// CaseStudyConfigFor is the Table 5 setup replayed on another accelerator:
// same model sizing, subbatch, dataset and placement, with the Roofline
// part, its cache, and its interconnect links swapped for the given
// device. For the paper's Table 4 target it is identical to
// DefaultCaseStudyConfig.
func CaseStudyConfigFor(acc hw.Accelerator) CaseStudyConfig {
	link := DefaultInterconnect()
	link.BandwidthBytes = acc.InterconnectBW
	return CaseStudyConfig{
		TargetFootprintGB:   113.8,
		Subbatch:            128,
		EpochTokens:         77e9,
		DataParallelOptions: []int{1024, 512},
		LayerStages:         [][]string{{"embed"}, {"lstm0"}, {"lstm1"}, {"output"}},
		Microbatches:        8,
		Acc:                 acc,
		Link:                link,
		Reduce:              RingAllReduceTime,
		SchedulePolicy:      graph.PolicyMemGreedy,
	}
}

// CaseStudyStage is one Table 5 row.
type CaseStudyStage struct {
	// Name describes the optimization stage.
	Name string `json:"name"`
	// Accels is the total accelerator count.
	Accels int `json:"accels"`
	// GlobalBatch is the aggregate batch size.
	GlobalBatch float64 `json:"global_batch"`
	// MemPerAccelGB is the per-accelerator memory requirement; one entry
	// when uniform, one per pipeline stage after layer parallelism.
	MemPerAccelGB []float64 `json:"mem_per_accel_gb"`
	// CacheMB is the modeled L2 capacity (0 = best-case, no cache model).
	CacheMB float64 `json:"cache_mb"`
	// DaysPerEpoch and Utilization are the Table 5 outcome columns.
	DaysPerEpoch float64 `json:"days_per_epoch"`
	Utilization  float64 `json:"utilization"`
	// Fits reports whether every accelerator's share is within capacity.
	Fits bool `json:"fits"`
}

// CaseStudyResult is the full Table 5 reproduction.
type CaseStudyResult struct {
	// Model is the optimized word LM (projection + production vocabulary).
	Model *models.Model
	// Size and Params describe the solved configuration.
	Size, Params float64
	// StepFLOPs and AlgBytes are per-worker per-step totals.
	StepFLOPs, AlgBytes float64
	// CacheAwareBytes includes GEMM re-streaming.
	CacheAwareBytes float64
	// CostModel names the step-time backend the stages were timed with;
	// StepSeconds is the cache-hierarchy-aware per-worker step time under
	// it (the base the data-parallel stages and Figure 12 scale from).
	CostModel   string
	StepSeconds float64
	// Stages are the Table 5 rows in order.
	Stages []CaseStudyStage
}

// RunWordLMCaseStudy executes the step-by-step parallelization plan.
func RunWordLMCaseStudy(cfg CaseStudyConfig) (*CaseStudyResult, error) {
	if err := cfg.Acc.Validate(); err != nil {
		return nil, fmt.Errorf("parallel: case study: %w", err)
	}
	m := models.BuildWordLM(models.CaseStudyWordLMConfig())
	res := &CaseStudyResult{Model: m}

	// Size the model so the per-step footprint matches the paper's 113.8 GB.
	target := cfg.TargetFootprintGB * 1e9
	footAt := func(size float64) float64 {
		fp, err := m.Graph.Footprint(m.Env(size, cfg.Subbatch), cfg.SchedulePolicy)
		if err != nil {
			return math.NaN()
		}
		return fp.PeakBytes
	}
	size, err := fit.Bisect(func(s float64) float64 { return footAt(s) - target },
		64, 1e6, 1e-6)
	if err != nil {
		return nil, fmt.Errorf("parallel: sizing case-study model: %w", err)
	}
	res.Size = size
	res.Params = m.Params(size)
	env := m.Env(size, cfg.Subbatch)

	res.StepFLOPs = symbolic.MustEval(m.FLOPsExpr(), env)
	res.AlgBytes = symbolic.MustEval(m.BytesExpr(), env)
	footprint := footAt(size)

	// Resolve the step-time backend. Per-op backends need the graph's node
	// costs, evaluated once through the compiled bundle; the cache-aware
	// stage scales every op's traffic by the same re-streaming factor the
	// graph-level total carries, which preserves the per-op ≥ graph-level
	// dominance for any uniform scale.
	cm := cfg.Cost
	if cm == nil {
		cm = costmodel.Default()
	}
	res.CostModel = cm.Name()
	var ops []costmodel.OpCost
	if costmodel.NeedsOpCosts(cm) {
		c := m.Graph.Compile()
		slots := c.NewSlots()
		if err := c.Bind(slots, env); err != nil {
			return nil, fmt.Errorf("parallel: case study: %w", err)
		}
		nf, nb := c.NodeCosts(slots, nil, nil)
		nodes := m.Graph.Nodes()
		ops = make([]costmodel.OpCost, len(nodes))
		for i, n := range nodes {
			ops[i] = costmodel.OpCost{Kind: n.Op.Kind(), FLOPs: nf[i], Bytes: nb[i]}
		}
	}
	costsWithBytes := func(bytes float64) costmodel.Costs {
		c := costmodel.Costs{FLOPs: res.StepFLOPs, Bytes: bytes}
		if ops == nil {
			return c
		}
		scale := 1.0
		if res.AlgBytes > 0 {
			scale = bytes / res.AlgBytes
		}
		scaled := make([]costmodel.OpCost, len(ops))
		for i, op := range ops {
			op.Bytes *= scale
			scaled[i] = op
		}
		c.Ops = scaled
		return c
	}

	tokensPerSample := float64(m.SeqLen)
	epochSamples := cfg.EpochTokens / tokensPerSample
	epochDays := func(stepTime, workers float64) float64 {
		steps := epochSamples / (cfg.Subbatch * workers)
		return steps * stepTime / 86400
	}
	uniformFits := func(gb float64) bool { return gb*1e9 <= cfg.Acc.MemCapacity }

	// Stage 1: best-case Roofline.
	tBest := cm.StepTime(cfg.Acc, costsWithBytes(res.AlgBytes))
	res.Stages = append(res.Stages, CaseStudyStage{
		Name:          "Best-case (Roofline) Baseline",
		Accels:        1,
		GlobalBatch:   cfg.Subbatch,
		MemPerAccelGB: []float64{footprint / 1e9},
		DaysPerEpoch:  epochDays(tBest, 1),
		Utilization:   cfg.Acc.Utilization(res.StepFLOPs, tBest),
		Fits:          uniformFits(footprint / 1e9),
	})

	// Stage 2: cache-hierarchy-aware.
	rep, err := cache.GraphTraffic(m.Graph, env, cache.NewTileModel(cfg.Acc.CacheBytes))
	if err != nil {
		return nil, err
	}
	res.CacheAwareBytes = rep.CacheAwareBytes
	tAware := cm.StepTime(cfg.Acc, costsWithBytes(rep.CacheAwareBytes))
	res.StepSeconds = tAware
	res.Stages = append(res.Stages, CaseStudyStage{
		Name:          "Cache-hierarchy-aware Baseline",
		Accels:        1,
		GlobalBatch:   cfg.Subbatch,
		MemPerAccelGB: []float64{footprint / 1e9},
		CacheMB:       cfg.Acc.CacheBytes / 1e6,
		DaysPerEpoch:  epochDays(tAware, 1),
		Utilization:   cfg.Acc.Utilization(res.StepFLOPs, tAware),
		Fits:          uniformFits(footprint / 1e9),
	})

	// Stage 3: data parallelism options.
	dp := DataParallelConfig{
		StepTime:          tAware,
		StepFLOPs:         res.StepFLOPs,
		GradientBytes:     4 * res.Params,
		SubbatchPerWorker: cfg.Subbatch,
		EpochSamples:      epochSamples,
		Acc:               cfg.Acc,
		Link:              cfg.Link,
		Reduce:            cfg.Reduce,
	}
	var lastDP DataParallelPoint
	for i, workers := range cfg.DataParallelOptions {
		pt := dp.Point(workers)
		lastDP = pt
		res.Stages = append(res.Stages, CaseStudyStage{
			Name:          fmt.Sprintf("w/ Data Parallelism (Option %d)", i+1),
			Accels:        workers,
			GlobalBatch:   pt.GlobalBatch,
			MemPerAccelGB: []float64{footprint / 1e9},
			CacheMB:       cfg.Acc.CacheBytes / 1e6,
			DaysPerEpoch:  pt.EpochDays,
			Utilization:   pt.Utilization,
			Fits:          uniformFits(footprint / 1e9),
		})
	}

	// Stage 4: layer-wise model parallelism on top of the last DP option.
	groupFLOPs := make(map[string]float64)
	for g, e := range m.Graph.GroupFLOPs() {
		groupFLOPs[g] = symbolic.MustEval(e, env)
	}
	groupFoot, err := m.Graph.GroupFootprints(env, cfg.SchedulePolicy)
	if err != nil {
		return nil, err
	}
	plan, err := PlanLayerParallel(groupFLOPs, groupFoot, cfg.LayerStages, cfg.Microbatches)
	if err != nil {
		return nil, err
	}
	k := len(plan.Stages)
	throughput := float64(k) * plan.Efficiency
	stageMem := make([]float64, k)
	for i, st := range plan.Stages {
		stageMem[i] = st.FootprintBytes / 1e9
	}
	layerStage := CaseStudyStage{
		Name:          fmt.Sprintf("+ Layer Parallelism (%dx)", k),
		Accels:        lastDP.Workers * k,
		GlobalBatch:   lastDP.GlobalBatch,
		MemPerAccelGB: stageMem,
		CacheMB:       cfg.Acc.CacheBytes / 1e6,
		DaysPerEpoch:  lastDP.EpochDays / throughput,
		Utilization:   lastDP.Utilization * plan.Efficiency,
		Fits:          MaxLoad(stageMem)*1e9 <= cfg.Acc.MemCapacity,
	}
	res.Stages = append(res.Stages, layerStage)

	// Stage 5: shard the embedding layer across stages to even memory.
	embedIdx := -1
	for i, groups := range cfg.LayerStages {
		for _, g := range groups {
			if g == "embed" {
				embedIdx = i
			}
		}
	}
	if embedIdx < 0 {
		return nil, fmt.Errorf("parallel: no embed stage in placement")
	}
	stageBytes := make([]float64, k)
	for i := range stageMem {
		stageBytes[i] = stageMem[i] * 1e9
	}
	balanced, err := ShardGroupBytes(stageBytes, embedIdx, stageBytes[embedIdx])
	if err != nil {
		return nil, err
	}
	balancedGB := make([]float64, k)
	for i, v := range balanced {
		balancedGB[i] = v / 1e9
	}
	res.Stages = append(res.Stages, CaseStudyStage{
		Name:          "+ Shard the Embedding Layer",
		Accels:        lastDP.Workers * k,
		GlobalBatch:   lastDP.GlobalBatch,
		MemPerAccelGB: balancedGB,
		CacheMB:       cfg.Acc.CacheBytes / 1e6,
		DaysPerEpoch:  layerStage.DaysPerEpoch,
		Utilization:   layerStage.Utilization,
		Fits:          MaxLoad(balancedGB)*1e9 <= cfg.Acc.MemCapacity,
	})
	return res, nil
}
