package parallel

import (
	"fmt"
	"math"
)

// OverlapConfig describes communication/computation overlap for synchronous
// SGD: gradients are grouped into buckets that begin their allreduce as soon
// as backprop produces them, hiding communication behind remaining backward
// compute (the optimization direction of the paper's cited gradient
// compression / communication works, §6.2.3).
type OverlapConfig struct {
	// ForwardTime, BackwardTime, UpdateTime are per-step compute phases in
	// seconds on one worker.
	ForwardTime, BackwardTime, UpdateTime float64
	// GradBytes is the total gradient payload.
	GradBytes float64
	// Buckets is the number of gradient buckets (1 = no overlap: a single
	// allreduce after backward completes).
	Buckets int
	// Workers and Link describe the cluster; Reduce the collective.
	Workers int
	Link    Interconnect
	Reduce  AllReduce
}

// OverlapResult reports the simulated step.
type OverlapResult struct {
	// StepTime is the overlapped step latency.
	StepTime float64
	// SerialStepTime is the no-overlap baseline (compute, then one
	// monolithic allreduce).
	SerialStepTime float64
	// ExposedCommTime is communication not hidden behind compute.
	ExposedCommTime float64
	// HiddenFraction is 1 - exposed/total communication.
	HiddenFraction float64
}

// SimulateOverlap runs a small event simulation: bucket i's gradients become
// available at forward + backward·(i+1)/B, and bucket allreduces serialize
// on the network interface.
func SimulateOverlap(cfg OverlapConfig) (OverlapResult, error) {
	if cfg.Buckets < 1 {
		return OverlapResult{}, fmt.Errorf("parallel: need >= 1 bucket")
	}
	if cfg.Workers < 1 {
		return OverlapResult{}, fmt.Errorf("parallel: need >= 1 worker")
	}
	reduce := cfg.Reduce
	if reduce == nil {
		reduce = RingAllReduceTime
	}
	bucketBytes := cfg.GradBytes / float64(cfg.Buckets)
	bucketComm := reduce(bucketBytes, cfg.Workers, cfg.Link)
	totalComm := reduce(cfg.GradBytes, cfg.Workers, cfg.Link)

	computeEnd := cfg.ForwardTime + cfg.BackwardTime
	var netFree float64
	var lastFinish float64
	for i := 0; i < cfg.Buckets; i++ {
		ready := cfg.ForwardTime + cfg.BackwardTime*float64(i+1)/float64(cfg.Buckets)
		start := math.Max(ready, netFree)
		netFree = start + bucketComm
		lastFinish = netFree
	}
	step := math.Max(computeEnd, lastFinish) + cfg.UpdateTime
	serial := computeEnd + totalComm + cfg.UpdateTime

	res := OverlapResult{
		StepTime:        step,
		SerialStepTime:  serial,
		ExposedCommTime: math.Max(0, step-computeEnd-cfg.UpdateTime),
	}
	bucketTotal := bucketComm * float64(cfg.Buckets)
	if bucketTotal > 0 {
		res.HiddenFraction = 1 - res.ExposedCommTime/bucketTotal
	}
	return res, nil
}
