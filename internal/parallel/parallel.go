// Package parallel models the paper's §6 parallelization strategies for
// frontier-scale training: synchronous-SGD data parallelism over a
// ring-allreduce (Figure 12), layer-wise model parallelism, and embedding
// sharding — composed into the step-by-step word-LM case study of Table 5.
package parallel

import (
	"fmt"
	"math"
	"sort"

	"catamount/internal/hw"
)

// Interconnect describes inter-accelerator links.
type Interconnect struct {
	// BandwidthBytes is the per-link bandwidth in B/s.
	BandwidthBytes float64
	// LatencySec is the per-hop latency.
	LatencySec float64
}

// DefaultInterconnect matches the paper's Table 4 (56 GB/s links,
// NVLink/InfiniBand-400Gb class).
func DefaultInterconnect() Interconnect {
	return Interconnect{BandwidthBytes: 56e9, LatencySec: 1.5e-6}
}

// AllReduce is any collective-time model.
type AllReduce func(payloadBytes float64, workers int, link Interconnect) float64

// RingAllReduceTime is the bandwidth-optimal ring collective (after
// Patarasuk & Yuan): each worker sends 2·(n−1)/n of the payload, in 2·(n−1)
// latency-bound steps.
func RingAllReduceTime(payloadBytes float64, workers int, link Interconnect) float64 {
	if workers <= 1 {
		return 0
	}
	n := float64(workers)
	return 2*(n-1)/n*payloadBytes/link.BandwidthBytes + 2*(n-1)*link.LatencySec
}

// NaiveAllReduceTime is the gather-broadcast strawman used as an ablation:
// a root receives and redistributes the full payload from every worker.
func NaiveAllReduceTime(payloadBytes float64, workers int, link Interconnect) float64 {
	if workers <= 1 {
		return 0
	}
	n := float64(workers)
	return 2*(n-1)*payloadBytes/link.BandwidthBytes + 2*(n-1)*link.LatencySec
}

// ---------------------------------------------------------------------------
// Data parallelism (Figure 12)

// DataParallelConfig describes one per-worker training step to scale out.
type DataParallelConfig struct {
	// StepTime is the per-worker compute time for one step (seconds).
	StepTime float64
	// StepFLOPs is the per-worker algorithmic FLOPs per step.
	StepFLOPs float64
	// GradientBytes is the allreduce payload (4 B per parameter for fp32).
	GradientBytes float64
	// SubbatchPerWorker is the per-worker samples per step.
	SubbatchPerWorker float64
	// EpochSamples is the number of training samples in one epoch.
	EpochSamples float64
	// Acc is the accelerator; Link the interconnect; Reduce the collective.
	Acc    hw.Accelerator
	Link   Interconnect
	Reduce AllReduce
}

// DataParallelPoint is one Figure 12 sample.
type DataParallelPoint struct {
	Workers     int     `json:"workers"`
	GlobalBatch float64 `json:"global_batch"`
	ComputeTime float64 `json:"compute_time"`
	CommTime    float64 `json:"comm_time"`
	StepTime    float64 `json:"step_time"`
	EpochDays   float64 `json:"epoch_days"`
	Utilization float64 `json:"utilization"`
}

// Point evaluates synchronous-SGD data parallelism at a worker count.
func (c DataParallelConfig) Point(workers int) DataParallelPoint {
	reduce := c.Reduce
	if reduce == nil {
		reduce = RingAllReduceTime
	}
	comm := reduce(c.GradientBytes, workers, c.Link)
	step := c.StepTime + comm
	global := c.SubbatchPerWorker * float64(workers)
	steps := c.EpochSamples / global
	return DataParallelPoint{
		Workers:     workers,
		GlobalBatch: global,
		ComputeTime: c.StepTime,
		CommTime:    comm,
		StepTime:    step,
		EpochDays:   steps * step / 86400,
		Utilization: c.StepFLOPs / (step * c.Acc.PeakFLOPS),
	}
}

// Sweep evaluates a list of worker counts.
func (c DataParallelConfig) Sweep(workers []int) []DataParallelPoint {
	out := make([]DataParallelPoint, 0, len(workers))
	for _, w := range workers {
		out = append(out, c.Point(w))
	}
	return out
}

// WorkersForEpochDays returns the smallest power-of-two worker count whose
// epoch time is at most targetDays, or an error if maxWorkers is too few.
func (c DataParallelConfig) WorkersForEpochDays(targetDays float64, maxWorkers int) (DataParallelPoint, error) {
	for w := 1; w <= maxWorkers; w *= 2 {
		p := c.Point(w)
		if p.EpochDays <= targetDays {
			return p, nil
		}
	}
	return DataParallelPoint{}, fmt.Errorf("parallel: %g days unreachable within %d workers",
		targetDays, maxWorkers)
}

// ---------------------------------------------------------------------------
// Layer-wise model parallelism (§6.2.2)

// Stage is one model-parallel pipeline stage.
type Stage struct {
	// Groups are the model layer groups placed on this stage.
	Groups []string
	// FLOPs is the stage's per-step compute load.
	FLOPs float64
	// FootprintBytes is the stage's resident memory.
	FootprintBytes float64
}

// LayerPlan is a layer-parallel placement with its pipeline efficiency.
type LayerPlan struct {
	Stages []Stage
	// Balance is Σt / (k·max t): 1.0 for perfectly balanced stages.
	Balance float64
	// Fill is the pipeline fill fraction m/(m+k−1) for m microbatches.
	Fill float64
	// Efficiency = Balance · Fill multiplies the data-parallel utilization.
	Efficiency float64
}

// PlanLayerParallel places layer groups onto pipeline stages and computes
// the efficiency loss. groupFLOPs and groupFoot map group name to per-step
// FLOPs and resident bytes; placement lists the groups for each stage.
func PlanLayerParallel(groupFLOPs, groupFoot map[string]float64,
	placement [][]string, microbatches int) (LayerPlan, error) {

	if len(placement) == 0 {
		return LayerPlan{}, fmt.Errorf("parallel: empty placement")
	}
	if microbatches < 1 {
		microbatches = 1
	}
	plan := LayerPlan{Stages: make([]Stage, 0, len(placement))}
	var total, maxStage float64
	seen := make(map[string]bool)
	for _, groups := range placement {
		st := Stage{Groups: groups}
		for _, g := range groups {
			f, ok := groupFLOPs[g]
			if !ok {
				return LayerPlan{}, fmt.Errorf("parallel: unknown group %q", g)
			}
			if seen[g] {
				return LayerPlan{}, fmt.Errorf("parallel: group %q placed twice", g)
			}
			seen[g] = true
			st.FLOPs += f
			st.FootprintBytes += groupFoot[g]
		}
		total += st.FLOPs
		if st.FLOPs > maxStage {
			maxStage = st.FLOPs
		}
		plan.Stages = append(plan.Stages, st)
	}
	for g := range groupFLOPs {
		if !seen[g] {
			return LayerPlan{}, fmt.Errorf("parallel: group %q not placed", g)
		}
	}
	k := float64(len(placement))
	if maxStage > 0 {
		plan.Balance = total / (k * maxStage)
	}
	m := float64(microbatches)
	plan.Fill = m / (m + k - 1)
	plan.Efficiency = plan.Balance * plan.Fill
	return plan, nil
}

// ---------------------------------------------------------------------------
// Embedding sharding (§6.2.2)

// ShardGroupBytes removes shardBytes from stage ownerIdx and water-fills it
// across all stages to minimize the maximum per-stage load — the paper's
// embedding split that evens {60,17,17,32} GB into {32,31,31,32} GB.
// Returns the balanced per-stage byte loads.
func ShardGroupBytes(stageBytes []float64, ownerIdx int, shardBytes float64) ([]float64, error) {
	if ownerIdx < 0 || ownerIdx >= len(stageBytes) {
		return nil, fmt.Errorf("parallel: owner index %d out of range", ownerIdx)
	}
	if shardBytes < 0 || shardBytes > stageBytes[ownerIdx] {
		return nil, fmt.Errorf("parallel: shard bytes %g exceed owner load %g",
			shardBytes, stageBytes[ownerIdx])
	}
	base := make([]float64, len(stageBytes))
	copy(base, stageBytes)
	base[ownerIdx] -= shardBytes

	// Water-fill: raise the lowest stages toward a common level until the
	// shard is fully distributed.
	type idxLoad struct {
		idx  int
		load float64
	}
	order := make([]idxLoad, len(base))
	for i, v := range base {
		order[i] = idxLoad{i, v}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].load < order[j].load })

	remaining := shardBytes
	out := make([]float64, len(base))
	copy(out, base)
	for i := 0; i < len(order) && remaining > 0; i++ {
		// Level the first i+1 stages up to the next stage's load (or
		// exhaust the remaining bytes evenly).
		level := math.Inf(1)
		if i+1 < len(order) {
			level = order[i+1].load
		}
		var need float64
		for j := 0; j <= i; j++ {
			need += level - out[order[j].idx]
		}
		if need >= remaining || math.IsInf(level, 1) {
			per := remaining / float64(i+1)
			// Equalize among the first i+1 stages.
			var cur float64
			for j := 0; j <= i; j++ {
				cur += out[order[j].idx]
			}
			target := (cur + remaining) / float64(i+1)
			for j := 0; j <= i; j++ {
				out[order[j].idx] = target
			}
			remaining = 0
			_ = per
			break
		}
		for j := 0; j <= i; j++ {
			out[order[j].idx] = level
		}
		remaining -= need
	}
	return out, nil
}

// MaxLoad returns the largest element (the per-accelerator memory
// requirement after placement).
func MaxLoad(loads []float64) float64 {
	var m float64
	for _, v := range loads {
		if v > m {
			m = v
		}
	}
	return m
}
