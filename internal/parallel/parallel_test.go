package parallel

import (
	"math"
	"testing"
	"testing/quick"

	"catamount/internal/hw"
)

func TestRingAllReduceSingleWorkerFree(t *testing.T) {
	if RingAllReduceTime(1e9, 1, DefaultInterconnect()) != 0 {
		t.Fatal("single worker should not communicate")
	}
}

func TestRingAllReduceBandwidthTerm(t *testing.T) {
	link := Interconnect{BandwidthBytes: 56e9}
	// n -> inf: time -> 2·payload/bw.
	got := RingAllReduceTime(56e9, 1<<20, link)
	if math.Abs(got-2) > 0.01 {
		t.Fatalf("asymptotic ring time = %v, want ~2s", got)
	}
	// Two workers reduce half the limit plus latency.
	got = RingAllReduceTime(56e9, 2, link)
	if math.Abs(got-1) > 0.01 {
		t.Fatalf("2-worker ring time = %v, want ~1s", got)
	}
}

func TestNaiveAllReduceWorseThanRing(t *testing.T) {
	link := DefaultInterconnect()
	for _, n := range []int{2, 8, 64, 1024} {
		ring := RingAllReduceTime(4e9, n, link)
		naive := NaiveAllReduceTime(4e9, n, link)
		if naive < ring {
			t.Fatalf("naive (%v) should not beat ring (%v) at n=%d", naive, ring, n)
		}
	}
}

func TestPropRingMonotoneInPayload(t *testing.T) {
	link := DefaultInterconnect()
	f := func(a, b uint32, n uint8) bool {
		workers := int(n%63) + 2
		p1, p2 := float64(a), float64(b)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return RingAllReduceTime(p1, workers, link) <= RingAllReduceTime(p2, workers, link)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func testDPConfig() DataParallelConfig {
	return DataParallelConfig{
		StepTime:          10.0,
		StepFLOPs:         0.46 * 10 * hw.TargetAccelerator().PeakFLOPS, // 46% util at 1 worker
		GradientBytes:     4 * 9.5e9,
		SubbatchPerWorker: 128,
		EpochSamples:      77e9 / 80,
		Acc:               hw.TargetAccelerator(),
		Link:              DefaultInterconnect(),
	}
}

func TestDataParallelScalingShape(t *testing.T) {
	// Figure 12: epoch time falls, utilization falls, as workers grow.
	cfg := testDPConfig()
	pts := cfg.Sweep([]int{1, 4, 16, 64, 256, 1024, 4096, 16384})
	for i := 1; i < len(pts); i++ {
		if pts[i].EpochDays >= pts[i-1].EpochDays {
			t.Fatalf("epoch days not decreasing at %d workers", pts[i].Workers)
		}
		if pts[i].Utilization > pts[i-1].Utilization+1e-12 {
			t.Fatalf("utilization increased at %d workers", pts[i].Workers)
		}
	}
	// Communication grows with workers but is bounded by 2·payload/bw.
	bound := 2*cfg.GradientBytes/cfg.Link.BandwidthBytes +
		2*16384*cfg.Link.LatencySec
	if last := pts[len(pts)-1]; last.CommTime > bound {
		t.Fatalf("comm %v above ring bound %v", last.CommTime, bound)
	}
}

func TestDataParallelEpochAccounting(t *testing.T) {
	cfg := testDPConfig()
	p := cfg.Point(512)
	steps := cfg.EpochSamples / (128 * 512)
	want := steps * p.StepTime / 86400
	if math.Abs(p.EpochDays-want)/want > 1e-12 {
		t.Fatalf("epoch days = %v, want %v", p.EpochDays, want)
	}
	if p.GlobalBatch != 128*512 {
		t.Fatalf("global batch = %v", p.GlobalBatch)
	}
}

func TestWorkersForEpochDays(t *testing.T) {
	cfg := testDPConfig()
	pt, err := cfg.WorkersForEpochDays(7, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if pt.EpochDays > 7 {
		t.Fatalf("epoch days %v > 7", pt.EpochDays)
	}
	if _, err := cfg.WorkersForEpochDays(1e-9, 2); err == nil {
		t.Fatal("expected unreachable error")
	}
}

func TestPlanLayerParallelBalanced(t *testing.T) {
	flops := map[string]float64{"a": 100, "b": 100, "c": 100, "d": 100}
	foot := map[string]float64{"a": 10, "b": 10, "c": 10, "d": 10}
	plan, err := PlanLayerParallel(flops, foot, [][]string{{"a"}, {"b"}, {"c"}, {"d"}}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Balance-1) > 1e-9 {
		t.Fatalf("balance = %v", plan.Balance)
	}
	if plan.Efficiency < 0.999 {
		t.Fatalf("efficiency = %v for perfectly balanced deep pipeline", plan.Efficiency)
	}
}

func TestPlanLayerParallelImbalanced(t *testing.T) {
	// One dominant stage halves the balance (paper: layer parallelism costs
	// ~23 points of utilization).
	flops := map[string]float64{"embed": 0, "l0": 100, "l1": 100, "out": 200}
	foot := map[string]float64{"embed": 60e9, "l0": 17e9, "l1": 17e9, "out": 32e9}
	plan, err := PlanLayerParallel(flops, foot, [][]string{{"embed"}, {"l0"}, {"l1"}, {"out"}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Balance-0.5) > 1e-9 {
		t.Fatalf("balance = %v, want 0.5", plan.Balance)
	}
	wantFill := 8.0 / 11.0
	if math.Abs(plan.Fill-wantFill) > 1e-9 {
		t.Fatalf("fill = %v, want %v", plan.Fill, wantFill)
	}
	if plan.Stages[0].FootprintBytes != 60e9 {
		t.Fatalf("stage footprint = %v", plan.Stages[0].FootprintBytes)
	}
}

func TestPlanLayerParallelErrors(t *testing.T) {
	flops := map[string]float64{"a": 1, "b": 1}
	foot := map[string]float64{"a": 1, "b": 1}
	if _, err := PlanLayerParallel(flops, foot, nil, 1); err == nil {
		t.Fatal("expected empty placement error")
	}
	if _, err := PlanLayerParallel(flops, foot, [][]string{{"a"}}, 1); err == nil {
		t.Fatal("expected unplaced-group error")
	}
	if _, err := PlanLayerParallel(flops, foot, [][]string{{"a"}, {"a"}, {"b"}}, 1); err == nil {
		t.Fatal("expected duplicate-placement error")
	}
	if _, err := PlanLayerParallel(flops, foot, [][]string{{"a"}, {"zzz"}}, 1); err == nil {
		t.Fatal("expected unknown-group error")
	}
}

func TestShardGroupBytesPaperExample(t *testing.T) {
	// Paper §6.2.2: {60, 17, 17, 32} GB evens out to ~{32, 31, 31, 32} GB
	// after splitting the embedding (the 60 GB stage holds ~59.5 GB of
	// embedding).
	stages := []float64{60e9, 17e9, 17e9, 32e9}
	out, err := ShardGroupBytes(stages, 0, 59.5e9)
	if err != nil {
		t.Fatal(err)
	}
	// Total preserved.
	var sum float64
	for _, v := range out {
		sum += v
	}
	if math.Abs(sum-126e9)/126e9 > 1e-9 {
		t.Fatalf("total changed: %v", sum)
	}
	// Max load drops from 60 GB to ~32 GB.
	if MaxLoad(out) > 33e9 {
		t.Fatalf("max load %v, want ~32 GB", MaxLoad(out))
	}
	if MaxLoad(out) < 31e9 {
		t.Fatalf("max load %v suspiciously low", MaxLoad(out))
	}
}

func TestShardGroupBytesErrors(t *testing.T) {
	if _, err := ShardGroupBytes([]float64{1, 2}, 5, 0); err == nil {
		t.Fatal("expected index error")
	}
	if _, err := ShardGroupBytes([]float64{1, 2}, 0, 5); err == nil {
		t.Fatal("expected excess-shard error")
	}
}

func TestPropShardNeverIncreasesMax(t *testing.T) {
	f := func(a, b, c, d uint16) bool {
		stages := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1, float64(d) + 1}
		before := MaxLoad(stages)
		out, err := ShardGroupBytes(stages, 0, stages[0]*0.9)
		if err != nil {
			return false
		}
		var sum, sumBefore float64
		for i := range out {
			sum += out[i]
			sumBefore += stages[i]
		}
		return MaxLoad(out) <= before+1e-9 && math.Abs(sum-sumBefore) < 1e-6*sumBefore+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWordLMCaseStudyTable5Shape(t *testing.T) {
	res, err := RunWordLMCaseStudy(DefaultCaseStudyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 6 {
		t.Fatalf("stages = %d, want 6 (Table 5 rows)", len(res.Stages))
	}
	best, aware := res.Stages[0], res.Stages[1]
	dp1, dp2 := res.Stages[2], res.Stages[3]
	layer, shard := res.Stages[4], res.Stages[5]

	// Row 1: best-case utilization 80%, footprint ~113.8 GB, doesn't fit.
	if math.Abs(best.Utilization-0.80) > 0.01 {
		t.Fatalf("best-case utilization = %.3f", best.Utilization)
	}
	if math.Abs(best.MemPerAccelGB[0]-113.8) > 1.5 {
		t.Fatalf("footprint = %.1f GB, want ~113.8", best.MemPerAccelGB[0])
	}
	if best.Fits {
		t.Fatal("113.8 GB must not fit in 32 GB")
	}
	// Row 2: cache-aware utilization drops markedly (paper: 46%).
	if aware.Utilization >= best.Utilization-0.1 {
		t.Fatalf("cache-aware utilization %.3f did not drop from %.3f",
			aware.Utilization, best.Utilization)
	}
	if aware.DaysPerEpoch <= best.DaysPerEpoch {
		t.Fatal("cache-aware epoch must take longer")
	}
	// Rows 3-4: data parallelism slashes epoch time, costs some utilization.
	if dp1.Accels != 1024 || dp2.Accels != 512 {
		t.Fatalf("DP accels = %d, %d", dp1.Accels, dp2.Accels)
	}
	if dp1.DaysPerEpoch >= aware.DaysPerEpoch/100 {
		t.Fatalf("1024-way DP days = %.1f, want ~3 orders below %f",
			dp1.DaysPerEpoch, aware.DaysPerEpoch)
	}
	if dp1.Utilization > aware.Utilization {
		t.Fatal("DP should not raise utilization")
	}
	if dp2.DaysPerEpoch <= dp1.DaysPerEpoch {
		t.Fatal("fewer workers must take longer")
	}
	// Row 5: layer parallelism multiplies accelerators, drops utilization,
	// reduces epoch time, and cuts per-accelerator memory.
	if layer.Accels != 2048 {
		t.Fatalf("layer accels = %d, want 2048", layer.Accels)
	}
	if layer.Utilization >= dp2.Utilization {
		t.Fatal("layer parallelism must cost utilization")
	}
	if layer.DaysPerEpoch >= dp2.DaysPerEpoch {
		t.Fatal("layer parallelism should reduce epoch days")
	}
	if len(layer.MemPerAccelGB) != 4 {
		t.Fatalf("stage memory entries = %d", len(layer.MemPerAccelGB))
	}
	if MaxLoad(layer.MemPerAccelGB) >= best.MemPerAccelGB[0] {
		t.Fatal("layer parallelism must cut per-accelerator memory")
	}
	// Row 6: sharding evens memory without changing time.
	if MaxLoad(shard.MemPerAccelGB) > MaxLoad(layer.MemPerAccelGB)+1e-9 {
		t.Fatal("sharding must not raise the max load")
	}
	if shard.DaysPerEpoch != layer.DaysPerEpoch {
		t.Fatal("sharding is free in the model")
	}
	// Water-fill optimality: the sharded max equals the larger of the
	// biggest non-embedding stage and the all-even average (the paper's
	// {60,17,17,32} -> {32,31,31,32} has the output stage as that bound).
	var total, maxNonEmbed float64
	for i, v := range layer.MemPerAccelGB {
		total += v
		if i != 0 && v > maxNonEmbed { // stage 0 holds the embedding
			maxNonEmbed = v
		}
	}
	optimal := math.Max(maxNonEmbed, total/float64(len(layer.MemPerAccelGB)))
	if MaxLoad(shard.MemPerAccelGB) > optimal*1.001 {
		t.Fatalf("sharded max %v above water-fill optimum %v: %v",
			MaxLoad(shard.MemPerAccelGB), optimal, shard.MemPerAccelGB)
	}
}
