package parallel

import (
	"math"
	"testing"
	"testing/quick"
)

func overlapBase() OverlapConfig {
	return OverlapConfig{
		ForwardTime:  1.0,
		BackwardTime: 2.0,
		UpdateTime:   0.1,
		GradBytes:    4 * 8e9,
		Buckets:      16,
		Workers:      512,
		Link:         DefaultInterconnect(),
	}
}

func TestSimulateOverlapValidation(t *testing.T) {
	cfg := overlapBase()
	cfg.Buckets = 0
	if _, err := SimulateOverlap(cfg); err == nil {
		t.Fatal("expected bucket error")
	}
	cfg = overlapBase()
	cfg.Workers = 0
	if _, err := SimulateOverlap(cfg); err == nil {
		t.Fatal("expected worker error")
	}
}

func TestOverlapBeatsSerial(t *testing.T) {
	res, err := SimulateOverlap(overlapBase())
	if err != nil {
		t.Fatal(err)
	}
	if res.StepTime >= res.SerialStepTime {
		t.Fatalf("overlap (%v) should beat serial (%v)", res.StepTime, res.SerialStepTime)
	}
	if res.HiddenFraction <= 0 || res.HiddenFraction > 1 {
		t.Fatalf("hidden fraction = %v", res.HiddenFraction)
	}
}

func TestOneBucketAlmostSerial(t *testing.T) {
	cfg := overlapBase()
	cfg.Buckets = 1
	res, err := SimulateOverlap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With one bucket the allreduce starts when backward ends — exactly the
	// serial schedule.
	if math.Abs(res.StepTime-res.SerialStepTime) > 1e-9 {
		t.Fatalf("1-bucket %v != serial %v", res.StepTime, res.SerialStepTime)
	}
}

func TestMoreBucketsHideMoreComm(t *testing.T) {
	var prev float64 = math.Inf(1)
	for _, buckets := range []int{1, 2, 4, 16, 64} {
		cfg := overlapBase()
		cfg.Buckets = buckets
		res, err := SimulateOverlap(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Ring latency terms grow with bucket count, so allow tiny noise.
		if res.StepTime > prev*1.001 {
			t.Fatalf("step time rose at %d buckets: %v > %v", buckets, res.StepTime, prev)
		}
		prev = res.StepTime
	}
}

func TestOverlapLowerBound(t *testing.T) {
	// Step time can never drop below compute time plus the trailing
	// bucket's communication.
	cfg := overlapBase()
	cfg.Buckets = 1024
	res, err := SimulateOverlap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	compute := cfg.ForwardTime + cfg.BackwardTime + cfg.UpdateTime
	if res.StepTime < compute {
		t.Fatalf("step %v below compute %v", res.StepTime, compute)
	}
}

func TestPropOverlapBetweenBounds(t *testing.T) {
	f := func(bRaw, wRaw uint8) bool {
		cfg := overlapBase()
		cfg.Buckets = int(bRaw%32) + 1
		cfg.Workers = int(wRaw%128) + 2
		res, err := SimulateOverlap(cfg)
		if err != nil {
			return false
		}
		compute := cfg.ForwardTime + cfg.BackwardTime + cfg.UpdateTime
		return res.StepTime >= compute-1e-9 && res.StepTime <= res.SerialStepTime+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
