package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"catamount/internal/costmodel"
	"catamount/internal/fit"
	"catamount/internal/graph"
	"catamount/internal/hw"
	"catamount/internal/models"
	"catamount/internal/obs"
	"catamount/internal/ops"
	"catamount/internal/scaling"
	"catamount/internal/symbolic"
)

// Stage histograms are resolved once at package init so hot-path spans
// (per-point characterizations, per-task batches) cost two clock reads and
// one lock-free Observe — nothing else. All record into obs.Default under
// catamount_stage_duration_seconds{stage="..."}.
var (
	stageCharacterize      = obs.Stage("characterize")
	stageCharacterizeBatch = obs.Stage("characterize_batch")
	stageFootprint         = obs.Stage("footprint")
)

// Analyzer is a compiled characterization session for one model. It is built
// once — deriving and compiling every cost expression of the model's graph —
// and then serves any number of evaluation points without re-deriving or
// tree-walking anything: each point is "write two slots, run programs".
//
// An Analyzer is immutable after construction and safe for concurrent use;
// sweep methods fan their points out across a bounded worker pool.
type Analyzer struct {
	Model *models.Model
	// Compiled is the model graph's precompiled program bundle.
	Compiled *graph.Compiled

	sizeSlot, batchSlot int

	// fwdFLOPs / bwdFLOPs split the step; the graph-level totals (params,
	// FLOPs, bytes, IO) come straight from Compiled.
	fwdFLOPs, bwdFLOPs *symbolic.Program

	// opKinds caches each node's op kind in Nodes() order, so building a
	// per-op cost vector never re-walks the graph; opClasses caches each
	// kind's resolved efficiency class so batched per-op pricing skips the
	// per-node lookup.
	opKinds   []string
	opClasses []costmodel.Class
}

// NewAnalyzer compiles a model into an analysis session. It fails if the
// graph's cost expressions reference symbols beyond the model's size and
// batch knobs, since sweeps bind exactly those two.
func NewAnalyzer(m *models.Model) (*Analyzer, error) {
	c := graph.Compile(m.Graph)
	for _, name := range c.Syms.Names() {
		if name != m.SizeSymbol && name != m.BatchSymbol {
			return nil, fmt.Errorf("core: model %s graph uses symbol %q beyond size %q and batch %q",
				m.Name, name, m.SizeSymbol, m.BatchSymbol)
		}
	}
	// Warm the model's lazy expression caches while construction is still
	// single-threaded: the Engine hands the same *Model to many goroutines,
	// and these accessors fill their caches unsynchronized on first call.
	m.ParamExpr()
	m.FLOPsExpr()
	m.BytesExpr()
	a := &Analyzer{
		Model:     m,
		Compiled:  c,
		sizeSlot:  c.Syms.Intern(m.SizeSymbol),
		batchSlot: c.Syms.Intern(m.BatchSymbol),
	}
	fwd, bwd := ops.ForwardBackwardFLOPs(m.Graph)
	a.fwdFLOPs = symbolic.Compile(fwd, c.Syms)
	a.bwdFLOPs = symbolic.Compile(bwd, c.Syms)
	a.opKinds = make([]string, 0, len(m.Graph.Nodes()))
	for _, n := range m.Graph.Nodes() {
		a.opKinds = append(a.opKinds, n.Op.Kind())
	}
	a.opClasses = make([]costmodel.Class, len(a.opKinds))
	for i, k := range a.opKinds {
		a.opClasses[i] = costmodel.ClassFor(k)
	}
	return a, nil
}

// newSlots allocates a slot buffer for one evaluating goroutine.
func (a *Analyzer) newSlots() []float64 { return a.Compiled.Syms.NewSlots() }

func (a *Analyzer) bind(slots []float64, size, batch float64) {
	slots[a.sizeSlot] = size
	slots[a.batchSlot] = batch
}

// Params evaluates the trainable parameter count at the given size.
func (a *Analyzer) Params(size float64) float64 {
	slots := a.newSlots()
	a.bind(slots, size, 1)
	return a.Compiled.ParamCount.Eval(slots)
}

// SizeForParams inverts Params with the compiled parameter program: the
// (continuous) size hyperparameter whose parameter count hits target.
func (a *Analyzer) SizeForParams(target float64) (float64, error) {
	size, err := a.sizeForParamsWith(a.newSlots(), target)
	if err != nil {
		return 0, fmt.Errorf("core: %s: %w", a.Model.Name, err)
	}
	return size, nil
}

// Characterize evaluates one (size, batch) point, including the footprint
// traversal, entirely through compiled programs. ctx threads the caller's
// trace (if any) into the stage spans; pass context.Background() outside a
// request.
func (a *Analyzer) Characterize(ctx context.Context, size, batch float64, policy graph.SchedulePolicy) (Requirements, error) {
	return a.characterize(ctx, a.newSlots(), &graph.FootprintScratch{}, size, batch, policy)
}

// characterize is Characterize with caller-owned scratch, so sweep workers
// reuse their buffers across points.
func (a *Analyzer) characterize(ctx context.Context, slots []float64, fp *graph.FootprintScratch,
	size, batch float64, policy graph.SchedulePolicy) (Requirements, error) {

	sp := obs.StartSpan(ctx, "characterize", stageCharacterize)
	ctx = sp.Attach(ctx)
	defer sp.End()
	a.bind(slots, size, batch)
	r := Requirements{
		Domain: a.Model.Domain,
		Name:   a.Model.Name,
		Size:   size,
		Batch:  batch,

		Params:       a.Compiled.ParamCount.Eval(slots),
		FLOPsPerStep: a.Compiled.TotalFLOPs.Eval(slots),
		BytesPerStep: a.Compiled.TotalBytes.Eval(slots),
		IOBytes:      a.Compiled.IO.Eval(slots),
		FwdFLOPs:     a.fwdFLOPs.Eval(slots),
		BwdFLOPs:     a.bwdFLOPs.Eval(slots),
	}
	r.FLOPsPerSample = r.FLOPsPerStep / batch
	if r.BytesPerStep > 0 {
		r.Intensity = r.FLOPsPerStep / r.BytesPerStep
	}
	fsp := obs.StartSpan(ctx, "footprint", stageFootprint)
	res, err := a.Compiled.FootprintInto(slots, policy, fp)
	fsp.End()
	if err != nil {
		return r, err
	}
	r.FootprintBytes = res.PeakBytes
	r.PersistentBytes = res.PersistentBytes
	return r, nil
}

// Session is a single-goroutine evaluation scratchpad over an Analyzer: one
// slot buffer, footprint scratch, and the batched-evaluation buffers,
// reused across any number of points so a tight evaluation loop (grid
// sweeps, serving workers) allocates nothing per point. Not safe for
// concurrent use; each worker holds its own.
type Session struct {
	a     *Analyzer
	slots []float64
	fp    graph.FootprintScratch

	// Batched-path state, allocated lazily on first CharacterizeBatch.
	batch *symbolic.Batch
	eval  symbolic.BatchScratch
	vals  struct {
		params, flops, bytes, io, fwd, bwd []float64
		tensUniq, nodeUniq                 []float64
	}
	costs costmodel.CostsBatch
	ops   costmodel.OpsBatch
}

// NewSession allocates an evaluation scratchpad for one goroutine.
func (a *Analyzer) NewSession() *Session {
	return &Session{a: a, slots: a.newSlots()}
}

// Analyzer returns the compiled session the scratchpad evaluates through.
func (s *Session) Analyzer() *Analyzer { return s.a }

// Characterize is Analyzer.Characterize over the session's reused buffers.
func (s *Session) Characterize(ctx context.Context, size, batch float64, policy graph.SchedulePolicy) (Requirements, error) {
	return s.a.characterize(ctx, s.slots, &s.fp, size, batch, policy)
}

// CharacterizeBatch evaluates a whole batch of (size, batch) points in one
// structure-of-arrays pass: every compiled total runs once over all rows,
// the unique tensor-byte programs feed per-row footprint simulations, and —
// when withOps is set — the unique node-cost programs fill a shared per-op
// matrix for batched step-time backends. Row i of the returned slice is
// bit-for-bit identical to Characterize(sizes[i], batches[i], policy).
//
// reqs is grown as needed and returned. The returned CostsBatch aliases
// session buffers and is valid until the next call on this session.
func (s *Session) CharacterizeBatch(ctx context.Context, sizes, batches []float64, policy graph.SchedulePolicy,
	withOps bool, reqs []Requirements) ([]Requirements, *costmodel.CostsBatch, error) {

	if len(sizes) != len(batches) {
		return nil, nil, fmt.Errorf("core: %d sizes but %d batches", len(sizes), len(batches))
	}
	// One span per batch (≤ ~32 rows), not per row: the whole point of the
	// batched path is that per-row work is a few array reads, so the timing
	// granularity matches the unit of work the scheduler dispatches.
	sp := obs.StartSpan(ctx, "characterize_batch", stageCharacterizeBatch)
	ctx = sp.Attach(ctx)
	defer sp.End()
	a := s.a
	rows := len(sizes)
	if cap(reqs) < rows {
		reqs = make([]Requirements, rows)
	}
	reqs = reqs[:rows]

	if s.batch == nil {
		s.batch = a.Compiled.NewBatch(rows)
	} else {
		s.batch.Resize(rows)
	}
	copy(s.batch.Col(a.sizeSlot), sizes)
	copy(s.batch.Col(a.batchSlot), batches)

	v := &s.vals
	v.params = a.Compiled.ParamCount.EvalBatchInto(s.batch, v.params, &s.eval)
	v.flops = a.Compiled.TotalFLOPs.EvalBatchInto(s.batch, v.flops, &s.eval)
	v.bytes = a.Compiled.TotalBytes.EvalBatchInto(s.batch, v.bytes, &s.eval)
	v.io = a.Compiled.IO.EvalBatchInto(s.batch, v.io, &s.eval)
	v.fwd = a.fwdFLOPs.EvalBatchInto(s.batch, v.fwd, &s.eval)
	v.bwd = a.bwdFLOPs.EvalBatchInto(s.batch, v.bwd, &s.eval)
	v.tensUniq = a.Compiled.TensorBytesBatch(s.batch, v.tensUniq, &s.eval)

	fsp := obs.StartSpan(ctx, "footprint", stageFootprint)
	for r := 0; r < rows; r++ {
		req := Requirements{
			Domain: a.Model.Domain,
			Name:   a.Model.Name,
			Size:   sizes[r],
			Batch:  batches[r],

			Params:       v.params[r],
			FLOPsPerStep: v.flops[r],
			BytesPerStep: v.bytes[r],
			IOBytes:      v.io[r],
			FwdFLOPs:     v.fwd[r],
			BwdFLOPs:     v.bwd[r],
		}
		req.FLOPsPerSample = req.FLOPsPerStep / batches[r]
		if req.BytesPerStep > 0 {
			req.Intensity = req.FLOPsPerStep / req.BytesPerStep
		}
		res, err := a.Compiled.FootprintFromBatch(v.tensUniq, rows, r, policy, &s.fp)
		if err != nil {
			fsp.End()
			return reqs, nil, err
		}
		req.FootprintBytes = res.PeakBytes
		req.PersistentBytes = res.PersistentBytes
		reqs[r] = req
	}
	fsp.End()

	s.costs = costmodel.CostsBatch{Rows: rows, FLOPs: v.flops, Bytes: v.bytes}
	if withOps {
		v.nodeUniq = a.Compiled.NodeCostsBatch(s.batch, v.nodeUniq, &s.eval)
		flopIx, byteIx := a.Compiled.CostIndexes()
		s.ops = costmodel.OpsBatch{
			Rows:    rows,
			Kinds:   a.opKinds,
			Classes: a.opClasses,
			FLOPIx:  flopIx,
			ByteIx:  byteIx,
			Uniq:    v.nodeUniq,
		}
		s.costs.Ops = &s.ops
	}
	return reqs, &s.costs, nil
}

// SizeForParams is Analyzer.SizeForParams over the session's reused buffers.
func (s *Session) SizeForParams(target float64) (float64, error) {
	size, err := s.a.sizeForParamsWith(s.slots, target)
	if err != nil {
		return 0, fmt.Errorf("core: %s: %w", s.a.Model.Name, err)
	}
	return size, nil
}

// SweepParams characterizes the model at a list of target parameter counts
// with a fixed subbatch, fanning contiguous chunks of points out across a
// bounded worker pool; each chunk is one batched characterize pass.
func (a *Analyzer) SweepParams(paramTargets []float64, batch float64,
	policy graph.SchedulePolicy) ([]Requirements, error) {

	out := make([]Requirements, len(paramTargets))
	err := a.parallelChunks(len(paramTargets), func(lo, hi int, s *Session) error {
		sizes := make([]float64, hi-lo)
		batches := make([]float64, hi-lo)
		for i := lo; i < hi; i++ {
			size, err := a.sizeForParamsWith(s.slots, paramTargets[i])
			if err != nil {
				return fmt.Errorf("core: %s at %g params: %w", a.Model.Domain, paramTargets[i], err)
			}
			sizes[i-lo] = size
			batches[i-lo] = batch
		}
		reqs, _, err := s.CharacterizeBatch(context.Background(), sizes, batches, policy, false, out[lo:hi:hi])
		if err != nil {
			return err
		}
		copy(out[lo:hi], reqs)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// sizeForParamsWith is SizeForParams over a caller-owned slot buffer.
func (a *Analyzer) sizeForParamsWith(slots []float64, target float64) (float64, error) {
	slots[a.batchSlot] = 1
	f := func(s float64) float64 {
		slots[a.sizeSlot] = s
		return a.Compiled.ParamCount.Eval(slots) - target
	}
	lo, hi := 1e-3, 1e-3
	for f(hi) < 0 {
		hi *= 2
		if hi > 1e12 {
			return 0, fmt.Errorf("target %g parameters unreachable", target)
		}
	}
	return fit.Bisect(f, lo, hi, 1e-9)
}

// parallelPoints runs fn for each index across min(GOMAXPROCS, n) workers,
// each with its own evaluation session. The first error wins.
func (a *Analyzer) parallelPoints(n int, fn func(i int, s *Session) error) error {
	return a.parallelRange(n, 1, func(lo, hi int, s *Session) error {
		for i := lo; i < hi; i++ {
			if err := fn(i, s); err != nil {
				return err
			}
		}
		return nil
	})
}

// parallelChunks partitions n indices into contiguous chunks and runs fn
// once per chunk with a worker-owned session, so each chunk can be one
// batched evaluation.
func (a *Analyzer) parallelChunks(n int, fn func(lo, hi int, s *Session) error) error {
	workers := runtime.GOMAXPROCS(0)
	chunk := 1
	if workers > 0 {
		chunk = (n + workers - 1) / workers
	}
	// Cap chunk length so a handful of points still spreads across workers
	// and batched buffers stay cache-sized.
	if chunk > 16 {
		chunk = 16
	}
	if chunk < 1 {
		chunk = 1
	}
	return a.parallelRange(n, chunk, fn)
}

// parallelRange dispatches [lo, hi) index ranges of the given chunk length
// to a bounded worker pool. The first error wins.
func (a *Analyzer) parallelRange(n, chunk int, fn func(lo, hi int, s *Session) error) error {
	tasks := (n + chunk - 1) / chunk
	workers := runtime.GOMAXPROCS(0)
	if workers > tasks {
		workers = tasks
	}
	if workers <= 1 {
		s := a.NewSession()
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if err := fn(lo, hi, s); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		next     = make(chan int)
		done     = make(chan struct{})
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := a.NewSession()
			for lo := range next {
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				if err := fn(lo, hi, s); err != nil {
					errOnce.Do(func() {
						firstErr = err
						close(done)
					})
				}
			}
		}()
	}
	// Stop dispatching once any worker fails; chunks already in flight
	// finish, the rest are never evaluated.
dispatch:
	for lo := 0; lo < n; lo += chunk {
		select {
		case next <- lo:
		case <-done:
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	return firstErr
}

// FitAsymptotics fits the Table 2 first-order models through the compiled
// session: γ from per-sample FLOPs at the largest sizes, (λ, µ) by two-term
// least squares over a size × batch grid, δ from the footprint slope.
func (a *Analyzer) FitAsymptotics(paramTargets, batches []float64,
	footBatch float64, policy graph.SchedulePolicy) (Asymptotics, error) {

	asym := Asymptotics{Domain: a.Model.Domain}
	if len(paramTargets) < 2 || len(batches) < 2 {
		return asym, fmt.Errorf("core: asymptotics need >=2 sizes and batches")
	}

	// Solve every target size once, in parallel (each is a bisection over
	// the compiled parameter program).
	sizes := make([]float64, len(paramTargets))
	err := a.parallelPoints(len(paramTargets), func(i int, s *Session) error {
		size, err := a.sizeForParamsWith(s.slots, paramTargets[i])
		sizes[i] = size
		return err
	})
	if err != nil {
		return asym, err
	}

	// γ from per-sample FLOPs at batch 1.
	slots := a.newSlots()
	ps := make([]float64, len(sizes))
	fs := make([]float64, len(sizes))
	for i, size := range sizes {
		a.bind(slots, size, 1)
		ps[i] = a.Compiled.ParamCount.Eval(slots)
		fs[i] = a.Compiled.TotalFLOPs.Eval(slots)
	}
	gamma, err := fit.AsymptoticSlope(ps, fs)
	if err != nil {
		return asym, err
	}
	asym.Gamma = gamma

	// (λ, µ) by two-term least squares over the grid.
	var us, vs, ys []float64
	for _, size := range sizes {
		for _, b := range batches {
			a.bind(slots, size, b)
			p := a.Compiled.ParamCount.Eval(slots)
			us = append(us, p)
			vs = append(vs, b*math.Sqrt(p))
			ys = append(ys, a.Compiled.TotalBytes.Eval(slots))
		}
	}
	tt, err := fit.TwoTermLeastSquares(us, vs, ys)
	if err != nil {
		return asym, err
	}
	asym.Lambda, asym.Mu, asym.BytesR2 = tt.A, tt.B, tt.R2

	// δ from the footprint slope at the profiling subbatch.
	var fps, foots []float64
	for _, size := range sizes[len(sizes)-2:] {
		a.bind(slots, size, footBatch)
		res, err := a.Compiled.Footprint(slots, policy, nil)
		if err != nil {
			return asym, err
		}
		fps = append(fps, a.Compiled.ParamCount.Eval(slots))
		foots = append(foots, res.PeakBytes)
	}
	delta, err := fit.AsymptoticSlope(fps, foots)
	if err != nil {
		return asym, err
	}
	asym.Delta = delta

	if asym.Gamma > 0 {
		asym.IntensityX = asym.Lambda / asym.Gamma
		asym.IntensityY = asym.Mu / asym.Gamma
	}
	return asym, nil
}

// StepEval builds an hw.StepEval closure at a fixed size over the compiled
// programs. The footprint traversal is skipped during sweeps (reported as 0)
// because only the chosen point needs it. The closure reuses one slot
// buffer and is not safe for concurrent calls.
func (a *Analyzer) StepEval(size float64) hw.StepEval {
	slots := a.newSlots()
	return func(b float64) (float64, float64, float64, error) {
		a.bind(slots, size, b)
		return a.Compiled.TotalFLOPs.Eval(slots), a.Compiled.TotalBytes.Eval(slots), 0, nil
	}
}

// costsAt evaluates the step's cost vector under the current slot binding.
// When full is true the per-node costs are filled into ops (grown as
// needed, returned for reuse) by evaluating the unique node-cost programs
// once into uniq and gathering by index; otherwise only the graph totals
// are filled and the buffers pass through untouched.
func (a *Analyzer) costsAt(slots []float64, ops []costmodel.OpCost, uniq []float64,
	full bool) (costmodel.Costs, []costmodel.OpCost, []float64) {

	c := costmodel.Costs{
		FLOPs: a.Compiled.TotalFLOPs.Eval(slots),
		Bytes: a.Compiled.TotalBytes.Eval(slots),
	}
	if !full {
		return c, ops, uniq
	}
	uniq = a.Compiled.CostValues(slots, uniq)
	flopIx, byteIx := a.Compiled.CostIndexes()
	n := len(flopIx)
	if cap(ops) < n {
		ops = make([]costmodel.OpCost, n)
	}
	ops = ops[:n]
	for i := range ops {
		ops[i] = costmodel.OpCost{
			Kind:  a.opKinds[i],
			FLOPs: uniq[flopIx[i]],
			Bytes: uniq[byteIx[i]],
		}
	}
	c.Ops = ops
	return c, ops, uniq
}

// StepCosts evaluates the cost vector at one (size, batch) point. The
// per-node breakdown is evaluated only when full is true — graph-level
// backends never pay for it. The returned Costs owns its Ops slice and may
// be retained.
func (a *Analyzer) StepCosts(size, batch float64, full bool) costmodel.Costs {
	slots := a.newSlots()
	a.bind(slots, size, batch)
	c, _, _ := a.costsAt(slots, nil, nil, full)
	return c
}

// StepCosts is Analyzer.StepCosts over the session's reused slot buffer.
// The returned Costs owns its Ops slice (freshly allocated per call when
// full), so callers may retain it across points.
func (s *Session) StepCosts(size, batch float64, full bool) costmodel.Costs {
	s.a.bind(s.slots, size, batch)
	c, _, _ := s.a.costsAt(s.slots, nil, nil, full)
	return c
}

// StepCostEval builds a costmodel.StepEval closure at a fixed size: the
// cost-vector generalization of StepEval for pluggable step-time backends.
// The closure reuses one slot buffer and one Ops buffer, so each returned
// Costs is valid only until the next call; it is not safe for concurrent
// use.
func (a *Analyzer) StepCostEval(size float64, full bool) costmodel.StepEval {
	slots := a.newSlots()
	var ops []costmodel.OpCost
	var uniq []float64
	return func(b float64) (costmodel.Costs, float64, error) {
		a.bind(slots, size, b)
		var c costmodel.Costs
		c, ops, uniq = a.costsAt(slots, ops, uniq, full)
		return c, 0, nil
	}
}

// ProjectFrontier computes one Table 3 row through the compiled session
// with the default (graph-level Roofline) step-time backend.
func (a *Analyzer) ProjectFrontier(proj scaling.Projection, acc hw.Accelerator,
	policy graph.SchedulePolicy) (Frontier, error) {
	return a.ProjectFrontierWith(proj, acc, costmodel.Default(), policy)
}

// ProjectFrontierWith is ProjectFrontier under a pluggable step-time
// backend: the §5.2.1 subbatch choice and the projected step time both
// route through the backend, so a per-op model shifts the whole row, not
// just the final column. The default backend reproduces the legacy output
// byte-for-byte.
func (a *Analyzer) ProjectFrontierWith(proj scaling.Projection, acc hw.Accelerator,
	cm costmodel.Model, policy graph.SchedulePolicy) (Frontier, error) {

	f := Frontier{
		Spec:              proj.Spec,
		TargetDataSamples: proj.TargetDataSamples,
		TargetParams:      proj.TargetParams,
	}
	size, err := a.SizeForParams(proj.TargetParams)
	if err != nil {
		return f, err
	}
	f.Size = size

	full := costmodel.NeedsOpCosts(cm)
	sweep, err := costmodel.SubbatchSweep(a.StepCostEval(size, full), acc, cm, hw.PowersOfTwo(10))
	if err != nil {
		return f, err
	}
	chosen, err := hw.ChooseSubbatch(sweep, acc, hw.MinTimePerSample, 0.05)
	if err != nil {
		return f, err
	}
	// Already-compute-bound models (CNNs) minimize per-sample time at any
	// subbatch; floor the choice at the paper's profiled subbatch, which
	// reflects kernel-occupancy needs the Roofline cannot see.
	f.Subbatch = math.Max(chosen.Subbatch, a.Model.DefaultBatch)

	r, err := a.Characterize(context.Background(), size, f.Subbatch, policy)
	if err != nil {
		return f, err
	}
	f.TFLOPsPerStep = r.FLOPsPerStep / 1e12
	f.TBPerStep = r.BytesPerStep / 1e12
	f.FootprintGB = r.FootprintBytes / 1e9
	f.StepSeconds = cm.StepTime(acc, a.StepCosts(size, f.Subbatch, full))
	f.Utilization = acc.Utilization(r.FLOPsPerStep, f.StepSeconds)
	f.MemoryMultiple = r.FootprintBytes / acc.MemCapacity

	samplesPerStep := f.Subbatch * proj.Spec.TokensPerSample
	steps := proj.TargetDataSamples / samplesPerStep
	f.EpochDays = steps * f.StepSeconds / 86400
	return f, nil
}

// FootprintSweep runs the Figure 10 sweep with a 12 GB / 80% allocator cap,
// fanning the points across the worker pool.
func (a *Analyzer) FootprintSweep(paramTargets []float64, batch float64,
	policy graph.SchedulePolicy) ([]FootprintPoint, error) {

	sim := graph.AllocatorSim{CapacityBytes: 12e9, UsableFraction: 0.8}
	out := make([]FootprintPoint, len(paramTargets))
	err := a.parallelPoints(len(paramTargets), func(i int, s *Session) error {
		size, err := a.sizeForParamsWith(s.slots, paramTargets[i])
		if err != nil {
			return err
		}
		a.bind(s.slots, size, batch)
		res, err := a.Compiled.FootprintInto(s.slots, policy, &s.fp)
		if err != nil {
			return err
		}
		out[i] = FootprintPoint{
			Params:          a.Compiled.ParamCount.Eval(s.slots),
			FootprintBytes:  res.PeakBytes,
			AllocatorReport: sim.Apply(res.PeakBytes),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Profile computes the per-op-kind and per-group breakdown at one
// (size, batch) point through the compiled node programs.
func (a *Analyzer) Profile(size, batch float64) (*Profile, error) {
	slots := a.newSlots()
	a.bind(slots, size, batch)
	return profileCompiled(a.Compiled, slots)
}
