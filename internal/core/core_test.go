package core

import (
	"math"
	"testing"

	"catamount/internal/graph"
	"catamount/internal/hw"
	"catamount/internal/models"
	"catamount/internal/scaling"
)

// testWordLM is a reduced word LM that keeps core tests fast while
// preserving the asymptotic structure (6q + 4 FLOPs/param, λ ≈ 6q·4).
func testWordLM() *models.Model {
	return models.BuildWordLM(models.WordLMConfig{Layers: 2, SeqLen: 10, Vocab: 200})
}

func TestCharacterizeBasics(t *testing.T) {
	m := testWordLM()
	r, err := Characterize(m, 512, 32, graph.PolicyMemGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if r.Params <= 0 || r.FLOPsPerStep <= 0 || r.BytesPerStep <= 0 {
		t.Fatalf("bad requirements: %+v", r)
	}
	if r.FLOPsPerSample*32 != r.FLOPsPerStep {
		t.Fatal("per-sample normalization wrong")
	}
	if math.Abs(r.Intensity-r.FLOPsPerStep/r.BytesPerStep) > 1e-12 {
		t.Fatal("intensity inconsistent")
	}
	if r.FootprintBytes < r.PersistentBytes {
		t.Fatal("footprint below persistent bytes")
	}
	ratio := r.BwdFLOPs / r.FwdFLOPs
	if ratio < 1.7 || ratio > 2.6 {
		t.Fatalf("bwd/fwd = %.2f", ratio)
	}
}

func TestSweepParamsMonotone(t *testing.T) {
	m := testWordLM()
	targets := LogSpace(1e6, 1e8, 5)
	rs, err := SweepParams(m, targets, 16, graph.PolicyMemGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 5 {
		t.Fatalf("points = %d", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Params <= rs[i-1].Params {
			t.Fatal("params not increasing")
		}
		if rs[i].FLOPsPerStep <= rs[i-1].FLOPsPerStep {
			t.Fatal("FLOPs not increasing")
		}
		if rs[i].FootprintBytes <= rs[i-1].FootprintBytes {
			t.Fatal("footprint not increasing")
		}
	}
	// Params should hit the targets.
	for i, r := range rs {
		if math.Abs(r.Params-targets[i])/targets[i] > 1e-6 {
			t.Fatalf("point %d params %.4g, want %.4g", i, r.Params, targets[i])
		}
	}
}

func TestLogSpace(t *testing.T) {
	v := LogSpace(1, 100, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if math.Abs(v[i]-want[i]) > 1e-9 {
			t.Fatalf("v[%d] = %v", i, v[i])
		}
	}
	if got := LogSpace(5, 50, 1); len(got) != 1 || got[0] != 5 {
		t.Fatalf("degenerate LogSpace = %v", got)
	}
}

func TestDefaultSweepTargetsCoverDomains(t *testing.T) {
	for _, d := range models.AllDomains {
		ts := DefaultSweepTargets(d)
		if len(ts) < 4 {
			t.Fatalf("%s: too few targets", d)
		}
		for i := 1; i < len(ts); i++ {
			if ts[i] <= ts[i-1] {
				t.Fatalf("%s: targets not increasing", d)
			}
		}
	}
}

func TestFitAsymptoticsWordLMShape(t *testing.T) {
	m := testWordLM()
	a, err := FitAsymptotics(m, LogSpace(1e7, 1e9, 4), []float64{8, 32, 128}, 32,
		graph.PolicyMemGreedy)
	if err != nil {
		t.Fatal(err)
	}
	// γ → 6q + 4 = 64 at q=10.
	if math.Abs(a.Gamma-64)/64 > 0.1 {
		t.Fatalf("gamma = %.1f, want ~64", a.Gamma)
	}
	// λ → ~6q·4 = 240 B/param (per-step weight traffic across fwd, bwd and
	// gradient aggregation), plus the ~26 B/param update/grad-write floor.
	if a.Lambda < 180 || a.Lambda > 320 {
		t.Fatalf("lambda = %.1f, want ~240", a.Lambda)
	}
	if a.Mu <= 0 {
		t.Fatalf("mu = %v, want positive batch-dependent traffic", a.Mu)
	}
	if a.BytesR2 < 0.98 {
		t.Fatalf("bytes fit R2 = %.4f", a.BytesR2)
	}
	// δ ≥ 12 B/param (weights + grads + momentum) and below ~3x that for a
	// small-vocab LM at moderate batch.
	if a.Delta < 11 || a.Delta > 40 {
		t.Fatalf("delta = %.1f B/param", a.Delta)
	}
	// Intensity formula: rises with b, saturates with p.
	if a.IntensityAt(1e9, 64) <= a.IntensityAt(1e9, 8) {
		t.Fatal("intensity not increasing in b")
	}
	lim := 64.0 / a.IntensityX // b/(λ/γ) as p→∞... scaled below
	_ = lim
	if a.IntensityForm() == "" {
		t.Fatal("empty intensity form")
	}
}

func TestIntensitySaturatesWithModelSize(t *testing.T) {
	a := Asymptotics{Gamma: 484, Lambda: 1755, Mu: 30784}
	a.IntensityX = a.Lambda / a.Gamma
	a.IntensityY = a.Mu / a.Gamma
	// For fixed b, intensity approaches γ·b/λ as p→∞ (paper §4.4).
	limit := 484.0 * 128 / 1755
	got := a.IntensityAt(1e13, 128)
	if math.Abs(got-limit)/limit > 0.05 {
		t.Fatalf("intensity at huge p = %.2f, want ~%.2f", got, limit)
	}
	if a.IntensityAt(1e8, 128) >= got {
		t.Fatal("intensity should grow toward the asymptote")
	}
}

func TestFitAsymptoticsNeedsEnoughPoints(t *testing.T) {
	m := testWordLM()
	if _, err := FitAsymptotics(m, []float64{1e7}, []float64{8, 16}, 8,
		graph.PolicyMemGreedy); err == nil {
		t.Fatal("expected too-few-sizes error")
	}
	if _, err := FitAsymptotics(m, []float64{1e7, 1e8}, []float64{8}, 8,
		graph.PolicyMemGreedy); err == nil {
		t.Fatal("expected too-few-batches error")
	}
}

func TestStepEvalAtMatchesCharacterize(t *testing.T) {
	m := testWordLM()
	eval := StepEvalAt(m, 512)
	f, by, _, err := eval(32)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Characterize(m, 512, 32, graph.PolicyMemGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-r.FLOPsPerStep) > 1 || math.Abs(by-r.BytesPerStep) > 1 {
		t.Fatal("StepEvalAt disagrees with Characterize")
	}
}

func TestProjectFrontierSmallModel(t *testing.T) {
	// Use the reduced model with a synthetic spec so the test stays fast
	// but exercises the full Table 3 pipeline.
	m := testWordLM()
	spec := scaling.DomainSpec{
		Domain: models.WordLM, Name: "test", TokensPerSample: 10,
	}
	proj := scaling.Projection{
		Spec:              spec,
		TargetDataSamples: 1e9,
		TargetParams:      2e8,
	}
	acc := hw.TargetAccelerator()
	fr, err := ProjectFrontier(m, proj, acc, graph.PolicyMemGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Subbatch < 1 {
		t.Fatalf("subbatch = %v", fr.Subbatch)
	}
	if fr.StepSeconds <= 0 || fr.EpochDays <= 0 {
		t.Fatalf("times: %+v", fr)
	}
	if fr.Utilization <= 0 || fr.Utilization > 0.8001 {
		t.Fatalf("utilization = %v", fr.Utilization)
	}
	// Epoch accounting: steps * stepTime.
	steps := proj.TargetDataSamples / (fr.Subbatch * spec.TokensPerSample)
	wantDays := steps * fr.StepSeconds / 86400
	if math.Abs(fr.EpochDays-wantDays)/wantDays > 1e-9 {
		t.Fatalf("epoch days %v, want %v", fr.EpochDays, wantDays)
	}
}

func TestFootprintSweepAllocatorCap(t *testing.T) {
	m := testWordLM()
	pts, err := FootprintSweep(m, LogSpace(1e7, 3e9, 4), 32, graph.PolicyMemGreedy)
	if err != nil {
		t.Fatal(err)
	}
	// The largest point (3e9 params ≈ 36 GB at 12 B/param) must exceed the
	// 9.6 GB usable cap and show swapping; the smallest must not.
	if pts[0].AllocatorReport.Swapping {
		t.Fatal("small model should not swap")
	}
	last := pts[len(pts)-1]
	if !last.AllocatorReport.Swapping {
		t.Fatalf("large model should swap (footprint %.3g)", last.FootprintBytes)
	}
	if last.AllocatorReport.DeviceBytes > 9.6e9+1 {
		t.Fatal("allocator-visible footprint must plateau at the cap")
	}
}
