package core

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"catamount/internal/graph"
	"catamount/internal/symbolic"
)

// OpKindProfile aggregates one op kind across the graph — the TFprof-style
// per-op view the paper's methodology is built on (§4.1).
type OpKindProfile struct {
	Kind       string  `json:"kind"`
	Count      int     `json:"count"`
	FLOPs      float64 `json:"flops"`
	Bytes      float64 `json:"bytes"`
	FLOPsShare float64 `json:"flops_share"`
	BytesShare float64 `json:"bytes_share"`
}

// GroupProfile aggregates one logical layer group.
type GroupProfile struct {
	Group      string  `json:"group"`
	FLOPs      float64 `json:"flops"`
	Bytes      float64 `json:"bytes"`
	ParamBytes float64 `json:"param_bytes"`
	FLOPsShare float64 `json:"flops_share"`
}

// Profile is a full per-op-kind and per-group breakdown of a training step.
type Profile struct {
	// ByKind is sorted by descending FLOPs.
	ByKind []OpKindProfile `json:"by_kind"`
	// ByGroup is sorted by group name.
	ByGroup []GroupProfile `json:"by_group"`
	// TotalFLOPs / TotalBytes are the step totals.
	TotalFLOPs float64 `json:"total_flops"`
	TotalBytes float64 `json:"total_bytes"`
	// IOBytes is the algorithmic IO staged into the step.
	IOBytes float64 `json:"io_bytes"`
}

// ProfileGraph computes the breakdown under the given bindings. The graph is
// compiled first, so arbitrary (including checkpoint-loaded) graphs profile
// through the same fast path as the domain models.
func ProfileGraph(g *graph.Graph, env symbolic.Env) (*Profile, error) {
	c := graph.Compile(g)
	slots := c.NewSlots()
	if err := c.Bind(slots, env); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return profileCompiled(c, slots)
}

// profileCompiled aggregates a compiled graph's per-node costs under one slot
// binding.
func profileCompiled(c *graph.Compiled, slots []float64) (*Profile, error) {
	g := c.Graph
	kind := make(map[string]*OpKindProfile)
	group := make(map[string]*GroupProfile)
	p := &Profile{}
	for i, n := range g.Nodes() {
		f := c.NodeFLOPs[i].Eval(slots)
		by := c.NodeBytes[i].Eval(slots)
		k := n.Op.Kind()
		kp, ok := kind[k]
		if !ok {
			kp = &OpKindProfile{Kind: k}
			kind[k] = kp
		}
		kp.Count++
		kp.FLOPs += f
		kp.Bytes += by

		gp, ok := group[n.Group]
		if !ok {
			gp = &GroupProfile{Group: n.Group}
			group[n.Group] = gp
		}
		gp.FLOPs += f
		gp.Bytes += by

		p.TotalFLOPs += f
		p.TotalBytes += by
	}
	for i, t := range g.Tensors() {
		if t.Kind != graph.Param {
			continue
		}
		by := c.TensorBytes[i].Eval(slots)
		if gp, ok := group[t.Group]; ok {
			gp.ParamBytes += by
		} else {
			group[t.Group] = &GroupProfile{Group: t.Group, ParamBytes: by}
		}
	}
	p.IOBytes = c.IO.Eval(slots)

	for _, kp := range kind {
		if p.TotalFLOPs > 0 {
			kp.FLOPsShare = kp.FLOPs / p.TotalFLOPs
		}
		if p.TotalBytes > 0 {
			kp.BytesShare = kp.Bytes / p.TotalBytes
		}
		p.ByKind = append(p.ByKind, *kp)
	}
	sort.Slice(p.ByKind, func(i, j int) bool {
		if p.ByKind[i].FLOPs != p.ByKind[j].FLOPs {
			return p.ByKind[i].FLOPs > p.ByKind[j].FLOPs
		}
		return p.ByKind[i].Kind < p.ByKind[j].Kind
	})
	for _, gp := range group {
		if p.TotalFLOPs > 0 {
			gp.FLOPsShare = gp.FLOPs / p.TotalFLOPs
		}
		p.ByGroup = append(p.ByGroup, *gp)
	}
	sort.Slice(p.ByGroup, func(i, j int) bool { return p.ByGroup[i].Group < p.ByGroup[j].Group })
	return p, nil
}

// KindCSVHeader is the column row matching KindCSVRecord,
// newline-terminated — the machine-readable form of the per-op-kind
// breakdown (cmd/catamount -profile -format csv), styled after the sweep
// encoders.
func KindCSVHeader() string {
	return "kind,count,flops,flops_share,bytes,bytes_share\n"
}

// KindCSVRecord renders one op-kind row as CSV, newline-terminated. Op
// kinds are identifier-like, so no field needs escaping.
func KindCSVRecord(kp OpKindProfile) string {
	return fmt.Sprintf("%s,%d,%.6g,%.6g,%.6g,%.6g\n",
		kp.Kind, kp.Count, kp.FLOPs, kp.FLOPsShare, kp.Bytes, kp.BytesShare)
}

// WriteKindCSV writes the per-op-kind breakdown as CSV rows in ByKind
// (descending-FLOPs) order.
func (p *Profile) WriteKindCSV(w io.Writer) error {
	if _, err := io.WriteString(w, KindCSVHeader()); err != nil {
		return err
	}
	for _, kp := range p.ByKind {
		if _, err := io.WriteString(w, KindCSVRecord(kp)); err != nil {
			return err
		}
	}
	return nil
}

// Print renders the profile as aligned text tables.
func (p *Profile) Print(w io.Writer, topK int) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Op kind\tCount\tFLOPs\tFLOPs %\tBytes\tBytes %")
	for i, kp := range p.ByKind {
		if topK > 0 && i >= topK {
			break
		}
		fmt.Fprintf(tw, "%s\t%d\t%.4g\t%.1f%%\t%.4g\t%.1f%%\n",
			kp.Kind, kp.Count, kp.FLOPs, 100*kp.FLOPsShare, kp.Bytes, 100*kp.BytesShare)
	}
	fmt.Fprintln(tw, "\nLayer group\tFLOPs\tFLOPs %\tBytes\tParam bytes")
	for _, gp := range p.ByGroup {
		fmt.Fprintf(tw, "%s\t%.4g\t%.1f%%\t%.4g\t%.4g\n",
			gp.Group, gp.FLOPs, 100*gp.FLOPsShare, gp.Bytes, gp.ParamBytes)
	}
	fmt.Fprintf(tw, "\nTotal\t\t%.4g\t\t%.4g\t(IO: %.4g B)\n",
		p.TotalFLOPs, p.TotalBytes, p.IOBytes)
	tw.Flush()
}
