package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"catamount/internal/graph"
	"catamount/internal/models"
	"catamount/internal/symbolic"
	"catamount/internal/tensor"
)

func TestProfileGraphBreakdown(t *testing.T) {
	m := models.BuildWordLM(models.WordLMConfig{Layers: 1, SeqLen: 4, Vocab: 50})
	env := symbolic.Env{"h": 256, "b": 8}
	p, err := ProfileGraph(m.Graph, env)
	if err != nil {
		t.Fatal(err)
	}
	// Matmuls dominate LSTM FLOPs (paper §2.3).
	if p.ByKind[0].Kind != "matmul" {
		t.Fatalf("top kind = %s, want matmul", p.ByKind[0].Kind)
	}
	if p.ByKind[0].FLOPsShare < 0.8 {
		t.Fatalf("matmul share = %.2f, want > 0.8", p.ByKind[0].FLOPsShare)
	}
	// Shares sum to ~1.
	var fsum, bsum float64
	for _, kp := range p.ByKind {
		fsum += kp.FLOPsShare
		bsum += kp.BytesShare
	}
	if math.Abs(fsum-1) > 1e-9 || math.Abs(bsum-1) > 1e-9 {
		t.Fatalf("shares sum to %v / %v", fsum, bsum)
	}
	// Totals agree with the graph-level evaluation.
	st, err := m.Graph.EvalStats(env)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.TotalFLOPs-st.FLOPs) > 1 || math.Abs(p.TotalBytes-st.Bytes) > 1 {
		t.Fatal("profile totals disagree with EvalStats")
	}
	// Groups cover the model structure with param attribution.
	var sawEmbed bool
	for _, gp := range p.ByGroup {
		if gp.Group == "embed" {
			sawEmbed = true
			if gp.ParamBytes <= 0 {
				t.Fatal("embed group has no param bytes")
			}
		}
	}
	if !sawEmbed {
		t.Fatal("no embed group in profile")
	}
}

func TestProfilePrint(t *testing.T) {
	m := models.BuildWordLM(models.WordLMConfig{Layers: 1, SeqLen: 3, Vocab: 20})
	p, err := ProfileGraph(m.Graph, symbolic.Env{"h": 16, "b": 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	p.Print(&buf, 5)
	out := buf.String()
	for _, want := range []string{"Op kind", "matmul", "Layer group", "Total", "IO:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("profile output missing %q:\n%s", want, out)
		}
	}
}

func TestProfileUnboundEnv(t *testing.T) {
	m := models.BuildWordLM(models.WordLMConfig{Layers: 1, SeqLen: 2, Vocab: 10})
	if _, err := ProfileGraph(m.Graph, symbolic.Env{}); err == nil {
		t.Fatal("expected unbound symbol error")
	}
}

func TestAlgorithmicIOBehaviour(t *testing.T) {
	// Paper §2.1: IO is proportional to batch size and fixed as the model
	// grows.
	m := models.BuildWordLM(models.WordLMConfig{Layers: 2, SeqLen: 8, Vocab: 100})
	io := func(h, b float64) float64 {
		return symbolic.MustEval(m.Graph.AlgorithmicIO(), m.Env(h, b))
	}
	if got, want := io(128, 64), 2*io(128, 32); math.Abs(got-want) > 1e-9 {
		t.Fatalf("IO not proportional to batch: %v vs %v", got, want)
	}
	if io(128, 32) != io(4096, 32) {
		t.Fatal("IO changed with model size")
	}
	// ids [b,q] i32 + labels [b,q] i32 = 2*b*q*4 bytes.
	if got, want := io(128, 32), float64(2*32*8*4); got != want {
		t.Fatalf("IO = %v, want %v", got, want)
	}
}

func TestCharacterizeReportsIO(t *testing.T) {
	m := models.BuildWordLM(models.WordLMConfig{Layers: 1, SeqLen: 4, Vocab: 20})
	r, err := Characterize(m, 64, 16, graph.PolicyMemGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if r.IOBytes != float64(2*16*4*4) {
		t.Fatalf("IOBytes = %v", r.IOBytes)
	}
	if r.IOBytes >= r.BytesPerStep {
		t.Fatal("IO should be tiny next to step bytes")
	}
}

func TestHalfPrecisionHalvesFootprint(t *testing.T) {
	// The paper's §6.2.3 low-precision direction: fp16 weights/activations
	// halve both footprint and bytes accessed.
	full := models.BuildWordLM(models.WordLMConfig{Layers: 1, SeqLen: 4, Vocab: 50})
	half := models.BuildWordLM(models.WordLMConfig{Layers: 1, SeqLen: 4, Vocab: 50,
		DType: tensor.F16})
	env32 := full.Env(256, 16)
	env16 := half.Env(256, 16)
	f32, err := full.Graph.Footprint(env32, graph.PolicyMemGreedy)
	if err != nil {
		t.Fatal(err)
	}
	f16, err := half.Graph.Footprint(env16, graph.PolicyMemGreedy)
	if err != nil {
		t.Fatal(err)
	}
	ratio := f32.PeakBytes / f16.PeakBytes
	if ratio < 1.8 || ratio > 2.1 {
		t.Fatalf("fp16 footprint ratio = %.2f, want ~2 (ids stay i32)", ratio)
	}
	// FLOPs unchanged.
	a := symbolic.MustEval(full.FLOPsExpr(), env32)
	c := symbolic.MustEval(half.FLOPsExpr(), env16)
	if a != c {
		t.Fatal("precision changed FLOPs")
	}
}

func TestHalfPrecisionAllDomainsBuild(t *testing.T) {
	ms := []*models.Model{
		models.BuildCharLM(models.CharLMConfig{RecurrenceDepth: 2, SeqLen: 3, Vocab: 20,
			DType: tensor.F16}),
		models.BuildResNet(models.ResNetConfig{Blocks: [4]int{1, 1, 1, 1}, Classes: 10,
			Image: 32, DType: tensor.F16}),
	}
	for _, m := range ms {
		if err := m.Graph.Validate(); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
	}
}
